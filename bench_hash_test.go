package sciborq

// Hash-path benchmarks: the flat open-addressing group-by and join
// stack (internal/hashtab) against permanent map-based reference arms
// that reproduce the pre-hashtab implementation. The */mapref arms ARE
// the old engine's algorithm — per-row string keys into
// map[string][]stats.Moments for GROUP BY, map[int64][]int32 build with
// per-key slice appends for joins — so BENCH_hash.json always records
// the map baseline next to the flat path on the same machine and data.
//
// Refresh the committed record with `make bench-json`.

import (
	"fmt"
	"sync"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/engine"
	"sciborq/internal/expr"
	"sciborq/internal/hashtab"
	"sciborq/internal/stats"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// hashBench holds one 1M-row {key, v} table per group-key shape
// (BIGINT and VARCHAR at three cardinalities — separate tables so each
// query snapshots only the columns it scans), a 1M-row join fact table
// with dense and sparse FK columns, and a 10k-row dimension. Built once
// per benchmark binary.
var hashBench = struct {
	once   sync.Once
	groups map[string]*table.Table // key column name -> {key, v} table
	fact   *table.Table
	dim    *table.Table
}{}

const (
	hashBenchRows = 1_000_000
	hashBenchDim  = 10_000
)

func hashBenchTables(b *testing.B) (groups map[string]*table.Table, fact, dim *table.Table) {
	b.Helper()
	hashBench.once.Do(func() {
		const n = hashBenchRows
		gb10 := make([]int64, n)
		gb1k := make([]int64, n)
		gb100k := make([]int64, n)
		fkd := make([]int64, n)
		fks := make([]int64, n)
		vs := make([]float64, n)
		gs10 := column.NewString("gs10")
		gs1k := column.NewString("gs1k")
		gs100k := column.NewString("gs100k")
		state := uint64(0x9E3779B97F4A7C15)
		for i := 0; i < n; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			gb10[i] = int64(state % 10)
			gb1k[i] = int64(state % 1000)
			gb100k[i] = int64(state % 100_000)
			fkd[i] = int64(state % hashBenchDim) // dense FK: every probe matches
			fks[i] = int64(state % uint64(n))    // sparse FK: ~1% match the 10k dim
			vs[i] = float64(int64(state>>20)%2001-1000) / 7
			gs10.Append(fmt.Sprintf("c%d", gb10[i]))
			gs1k.Append(fmt.Sprintf("cat%03d", gb1k[i]))
			gs100k.Append(fmt.Sprintf("cat%05d", gb100k[i]))
		}
		groups := make(map[string]*table.Table)
		addGroup := func(name string, key column.Column, typ column.Type) {
			tb := table.MustNew("hash_"+name, table.Schema{
				{Name: name, Type: typ},
				{Name: "v", Type: column.Float64},
			})
			if err := tb.AppendColumns([]column.Column{
				key,
				column.NewFloat64From("v", vs),
			}); err != nil {
				panic(err)
			}
			groups[name] = tb
		}
		addGroup("gb10", column.NewInt64From("gb10", gb10), column.Int64)
		addGroup("gb1k", column.NewInt64From("gb1k", gb1k), column.Int64)
		addGroup("gb100k", column.NewInt64From("gb100k", gb100k), column.Int64)
		addGroup("gs10", gs10, column.String)
		addGroup("gs1k", gs1k, column.String)
		addGroup("gs100k", gs100k, column.String)
		fact := table.MustNew("hashfact", table.Schema{
			{Name: "fkd", Type: column.Int64},
			{Name: "fks", Type: column.Int64},
			{Name: "v", Type: column.Float64},
		})
		if err := fact.AppendColumns([]column.Column{
			column.NewInt64From("fkd", fkd),
			column.NewInt64From("fks", fks),
			column.NewFloat64From("v", vs),
		}); err != nil {
			panic(err)
		}
		dk := make([]int64, hashBenchDim)
		dv := make([]float64, hashBenchDim)
		for i := range dk {
			dk[i] = int64(i)
			dv[i] = float64(i) / 11
		}
		dim := table.MustNew("hashdim", table.Schema{
			{Name: "key", Type: column.Int64},
			{Name: "attr", Type: column.Float64},
		})
		if err := dim.AppendColumns([]column.Column{
			column.NewInt64From("key", dk),
			column.NewFloat64From("attr", dv),
		}); err != nil {
			panic(err)
		}
		hashBench.groups, hashBench.fact, hashBench.dim = groups, fact, dim
	})
	return hashBench.groups, hashBench.fact, hashBench.dim
}

// maprefGroupBy reproduces the pre-hashtab GROUP BY: per-morsel
// map[string][]stats.Moments partials keyed by per-row strings
// (fmt.Sprintf for BIGINT, dictionary lookup for VARCHAR), merged in
// ascending morsel order. Returns the group count as a DCE sink.
func maprefGroupBy(b *testing.B, tb *table.Table, keyCol string) int {
	b.Helper()
	n := tb.Len()
	col, err := tb.Col(keyCol)
	if err != nil {
		b.Fatal(err)
	}
	var key func(i int32) string
	switch c := col.(type) {
	case *column.Int64Col:
		key = func(i int32) string { return fmt.Sprintf("%d", c.Data[i]) }
	case *column.StringCol:
		key = func(i int32) string { return c.Value(i) }
	default:
		b.Fatalf("unsupported key column type %s", col.Type())
	}
	vs, err := tb.Float64("v")
	if err != nil {
		b.Fatal(err)
	}
	type partial struct {
		groups map[string][]stats.Moments
		order  []string
	}
	var partials []partial
	for lo := 0; lo < n; lo += engine.DefaultMorselRows {
		hi := min(lo+engine.DefaultMorselRows, n)
		p := partial{groups: make(map[string][]stats.Moments)}
		for i := lo; i < hi; i++ {
			k := key(int32(i))
			ms, ok := p.groups[k]
			if !ok {
				ms = make([]stats.Moments, 2)
				p.order = append(p.order, k)
			}
			ms[0].Observe(1)
			ms[1].Observe(vs[i])
			p.groups[k] = ms
		}
		partials = append(partials, p)
	}
	groups := make(map[string][]stats.Moments)
	var order []string
	for _, p := range partials {
		for _, k := range p.order {
			ms, ok := groups[k]
			if !ok {
				groups[k] = p.groups[k]
				order = append(order, k)
				continue
			}
			for i := range ms {
				ms[i].Merge(p.groups[k][i])
			}
		}
	}
	return len(order)
}

// BenchmarkGroupByHash measures a COUNT + AVG(v) GROUP BY over 1M rows
// at 10 / 1k / 100k groups on BIGINT and VARCHAR keys: the flat arm is
// the real engine path (hashtab dense group ids, dict-coded VARCHAR),
// the mapref arm is the retired map[string]-keyed algorithm. Sequential
// (Parallelism 1) so the arms compare hash stacks, not scheduling.
func BenchmarkGroupByHash(b *testing.B) {
	groups, _, _ := hashBenchTables(b)
	cases := []struct{ name, col string }{
		{"bigint_g10", "gb10"},
		{"bigint_g1k", "gb1k"},
		{"bigint_g100k", "gb100k"},
		{"varchar_g10", "gs10"},
		{"varchar_g1k", "gs1k"},
		{"varchar_g100k", "gs100k"},
	}
	for _, c := range cases {
		tb := groups[c.col]
		q := engine.Query{
			Table:   tb.Name(),
			GroupBy: c.col,
			Aggs: []engine.AggSpec{
				{Func: engine.Count},
				{Func: engine.Avg, Arg: expr.ColRef{Name: "v"}, Alias: "m"},
			},
		}
		b.Run(c.name+"/flat", func(b *testing.B) {
			opts := engine.ExecOptions{Parallelism: 1}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.RunOnOpts(tb, q, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/mapref", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += maprefGroupBy(b, tb, c.col)
			}
			_ = sink
		})
	}
}

// BenchmarkHashJoinProbe measures the probe phase of the FK join — 1M
// fact rows against a prebuilt 10k-row dimension index — in the dense
// (every row matches) and sparse (~1% match) regimes. The flat arm is
// the engine's probe loop: hashtab.Int64Index chains appending into
// pooled vec.SelPool scratch, concatenated into pooled output. The
// mapref arm is the retired loop: map[int64][]int32 lookups appending
// into fresh per-morsel slices, concatenated into fresh output.
func BenchmarkHashJoinProbe(b *testing.B) {
	_, fact, dim := hashBenchTables(b)
	dk, err := dim.Int64("key")
	if err != nil {
		b.Fatal(err)
	}
	for _, arm := range []struct{ name, col string }{
		{"dense", "fkd"},
		{"sparse", "fks"},
	} {
		lk, err := fact.Int64(arm.col)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(arm.name+"/flat", func(b *testing.B) {
			ix := hashtab.BuildInt64Index(dk)
			b.ReportAllocs()
			b.ResetTimer()
			matches := 0
			for it := 0; it < b.N; it++ {
				matches = 0
				nparts := (len(lk) + engine.DefaultMorselRows - 1) / engine.DefaultMorselRows
				type part struct{ l, r vec.Sel }
				parts := make([]part, 0, nparts)
				for lo := 0; lo < len(lk); lo += engine.DefaultMorselRows {
					hi := min(lo+engine.DefaultMorselRows, len(lk))
					p := part{l: vec.GetSel(hi - lo), r: vec.GetSel(hi - lo)}
					for i := lo; i < hi; i++ {
						for rrow := ix.First(lk[i]); rrow >= 0; rrow = ix.Next(rrow) {
							p.l = append(p.l, int32(i))
							p.r = append(p.r, rrow)
						}
					}
					parts = append(parts, p)
				}
				total := 0
				for _, p := range parts {
					total += len(p.l)
				}
				lsel, rsel := vec.GetSel(total), vec.GetSel(total)
				for _, p := range parts {
					lsel = append(lsel, p.l...)
					rsel = append(rsel, p.r...)
					vec.PutSel(p.l)
					vec.PutSel(p.r)
				}
				matches = len(lsel)
				vec.PutSel(lsel)
				vec.PutSel(rsel)
			}
			b.ReportMetric(float64(matches), "matches")
		})
		b.Run(arm.name+"/mapref", func(b *testing.B) {
			build := make(map[int64][]int32, len(dk))
			for i, k := range dk {
				build[k] = append(build[k], int32(i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			matches := 0
			for it := 0; it < b.N; it++ {
				matches = 0
				nparts := (len(lk) + engine.DefaultMorselRows - 1) / engine.DefaultMorselRows
				type part struct{ l, r vec.Sel }
				parts := make([]part, 0, nparts)
				for lo := 0; lo < len(lk); lo += engine.DefaultMorselRows {
					hi := min(lo+engine.DefaultMorselRows, len(lk))
					var p part
					for i := lo; i < hi; i++ {
						for _, rrow := range build[lk[i]] {
							p.l = append(p.l, int32(i))
							p.r = append(p.r, rrow)
						}
					}
					parts = append(parts, p)
				}
				var lsel, rsel vec.Sel
				for _, p := range parts {
					lsel = append(lsel, p.l...)
					rsel = append(rsel, p.r...)
				}
				matches = len(lsel)
			}
			b.ReportMetric(float64(matches), "matches")
		})
	}
}

// BenchmarkHashJoinBuild measures building the dimension-side index:
// flat Int64Index (next-pointer arena) vs map[int64][]int32 with
// per-key slice appends, on unique keys and on a duplicate-heavy key
// column (10 build rows per key).
func BenchmarkHashJoinBuild(b *testing.B) {
	_, _, dim := hashBenchTables(b)
	dk, err := dim.Int64("key")
	if err != nil {
		b.Fatal(err)
	}
	dup := make([]int64, 10*len(dk))
	for i := range dup {
		dup[i] = int64(i % len(dk))
	}
	for _, arm := range []struct {
		name string
		keys []int64
	}{
		{"unique10k", dk},
		{"dup100k", dup},
	} {
		b.Run(arm.name+"/flat", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += hashtab.BuildInt64Index(arm.keys).Len()
			}
			_ = sink
		})
		b.Run(arm.name+"/mapref", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			sink := 0
			for i := 0; i < b.N; i++ {
				build := make(map[int64][]int32, len(arm.keys))
				for j, k := range arm.keys {
					build[k] = append(build[k], int32(j))
				}
				sink += len(build)
			}
			_ = sink
		})
	}
}

// BenchmarkHashJoinEngine measures the full engine join end to end
// (snapshot, flat build, pooled parallel probe, output materialisation)
// in the dense and sparse FK regimes.
func BenchmarkHashJoinEngine(b *testing.B) {
	_, fact, dim := hashBenchTables(b)
	for _, arm := range []struct{ name, col string }{
		{"dense", "fkd"},
		{"sparse", "fks"},
	} {
		b.Run(arm.name, func(b *testing.B) {
			opts := engine.ExecOptions{Parallelism: 1}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.HashJoinOpts(fact, dim, arm.col, "key", opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
