package sciborq

import (
	"math"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/engine"
	"sciborq/internal/estimate"
	"sciborq/internal/expr"
	"sciborq/internal/impression"
	"sciborq/internal/table"
	"sciborq/internal/xrand"
)

// BenchmarkBoundedQuery measures the paper's central code path — answer
// a bounded aggregate from an impression layer — on a 1M-row base with
// a 3-layer hierarchy, with the layer DIRTIED before every query (a
// nightly batch landed since the last one; the common steady state).
//
//   - selection: the live path. The layer refreshes its sorted view by
//     merging the reservoir's insertions/evictions (no sort, no copy)
//     and the filtered AVG runs as a zone-map-pruned selection-vector
//     scan over the base snapshot.
//   - matref: the retired path, kept permanently for comparison on any
//     machine. Every dirty query re-materialises the layer into a
//     standalone table (Impression.Materialize) and scans the copy with
//     no pruning — the cache-invalidation cliff this PR removes.
//
// The base is ra-clustered (as ingest-ordered sky scans are), so the
// selection arm's zone maps skip the granules the BETWEEN predicate
// cannot match in; the materialised copy has no zone coverage by
// construction (wrapped columns carry no granule summaries).

const (
	benchBaseRows  = 1 << 20
	benchLayerRows = 256 * 1024
	benchDirtyRows = 4096
)

type boundedBench struct {
	base  *table.Table
	layer *impression.Impression
	rng   *xrand.RNG
	next  int
}

func buildBoundedBench(b *testing.B) *boundedBench {
	b.Helper()
	bb := &boundedBench{rng: xrand.New(99)}
	bb.base = table.MustNew("Photo", table.Schema{
		{Name: "objID", Type: column.Int64},
		{Name: "ra", Type: column.Float64},
		{Name: "dec", Type: column.Float64},
		{Name: "r", Type: column.Float64},
		{Name: "z", Type: column.Float64},
	})
	if err := bb.base.AppendColumns(bb.makeChunk(benchBaseRows)); err != nil {
		b.Fatal(err)
	}
	l0, err := impression.New(bb.base, impression.Config{Name: "L0", Size: benchLayerRows, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	l1, err := impression.New(bb.base, impression.Config{Name: "L1", Size: benchLayerRows / 8, Seed: 8})
	if err != nil {
		b.Fatal(err)
	}
	l2, err := impression.New(bb.base, impression.Config{Name: "L2", Size: benchLayerRows / 64, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	// RefreshEvery beyond the benchmark's total ingest: the dirty step
	// must dirty the 256k stream layer, not rebuild the derived ones.
	h, err := impression.NewHierarchy([]*impression.Impression{l0, l1, l2}, 1<<40)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchBaseRows; i++ {
		h.Offer(int32(i))
	}
	if err := h.Refresh(); err != nil {
		b.Fatal(err)
	}
	bb.layer = l0
	bb.next = benchBaseRows
	return bb
}

// makeChunk synthesises n rows: ra climbs monotonically across the
// table (ingest order ≈ scan order, the clustered shape zone maps are
// built for), everything else is noise.
func (bb *boundedBench) makeChunk(n int) []column.Column {
	ids := make([]int64, n)
	ra := make([]float64, n)
	dec := make([]float64, n)
	r := make([]float64, n)
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		row := bb.next + i
		ids[i] = int64(row)
		ra[i] = 120 + 120*float64(row%benchBaseRows)/benchBaseRows
		dec[i] = bb.rng.Float64() * 60
		r[i] = 10 + bb.rng.Float64()*10
		z[i] = bb.rng.NormFloat64()
	}
	return []column.Column{
		column.NewInt64From("objID", ids),
		column.NewFloat64From("ra", ra),
		column.NewFloat64From("dec", dec),
		column.NewFloat64From("r", r),
		column.NewFloat64From("z", z),
	}
}

// dirty lands one nightly batch: append to base, offer to the layer.
func (bb *boundedBench) dirty(b *testing.B) {
	b.Helper()
	if err := bb.base.AppendColumns(bb.makeChunk(benchDirtyRows)); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchDirtyRows; i++ {
		bb.layer.Offer(int32(bb.next + i))
	}
	bb.next += benchDirtyRows
}

func benchQuery() engine.Query {
	return engine.Query{
		Table: "Photo",
		Where: expr.Between{Expr: expr.ColRef{Name: "ra"}, Lo: 150, Hi: 165},
		Aggs:  []engine.AggSpec{{Func: engine.Avg, Arg: expr.ColRef{Name: "r"}, Alias: "a"}},
	}
}

func checkBenchEstimate(b *testing.B, ests []estimate.Estimate) {
	b.Helper()
	if len(ests) != 1 || ests[0].SampleRows == 0 {
		b.Fatalf("estimate shape: %+v", ests)
	}
	if v := ests[0].Value(); math.IsNaN(v) || v < 10 || v > 20 {
		b.Fatalf("AVG(r) estimate %v out of range", v)
	}
}

func BenchmarkBoundedQuery(b *testing.B) {
	bb := buildBoundedBench(b)
	q := benchQuery()
	opts := engine.DefaultExecOptions()

	b.Run("selection", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			bb.dirty(b)
			b.StartTimer()
			v := bb.layer.View()
			snap := bb.base.Snapshot()
			sl := estimate.SelLayer{
				Name: bb.layer.Name(), Base: snap,
				Positions: v.Clamp(snap.Len()).Positions,
				Weights:   v.Weights, CountWeights: v.Pis,
				BaseRows: int64(snap.Len()),
			}
			ests, err := estimate.AggregateOnSelOpts(sl, q, 0.95, opts)
			if err != nil {
				b.Fatal(err)
			}
			checkBenchEstimate(b, ests)
		}
	})

	b.Run("matref", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			bb.dirty(b)
			b.StartTimer()
			m, err := bb.layer.Materialize()
			if err != nil {
				b.Fatal(err)
			}
			l := estimate.Layer{
				Name: bb.layer.Name(), Table: m.Table,
				BaseRows: int64(bb.base.Len()),
			}
			ests, err := estimate.AggregateOnOpts(l, q, 0.95, opts)
			if err != nil {
				b.Fatal(err)
			}
			checkBenchEstimate(b, ests)
		}
	})
}
