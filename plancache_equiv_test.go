package sciborq

import (
	"fmt"
	"testing"
)

// Plan-cache equivalence audit: execution through the plan cache must
// be bit-identical to the pre-cache path at every parallelism level.
// Each parallelism level runs a cached and an uncached DB over the same
// deterministic SkyServer load; every query runs twice on the cached DB
// so the second pass exercises the alias-tier (zero-parse) path, plus
// literal variants for the shape-binding path and commuted spellings
// for the canonical-tier path. String() renders exact decimal
// formatting, so equal strings mean equal floating-point bits.

func TestPlanCacheExecEquivalence(t *testing.T) {
	queries := []string{
		"SELECT COUNT(*) FROM PhotoObjAll",
		"SELECT COUNT(*), AVG(r) AS m, SUM(r) AS s FROM PhotoObjAll WHERE ra BETWEEN 150 AND 180",
		"SELECT MIN(r) AS lo, MAX(r) AS hi FROM PhotoObjAll WHERE dec > 10",
		"SELECT AVG(r) AS m FROM PhotoObjAll WHERE type = 'GALAXY'",
		"SELECT COUNT(*), AVG(r) AS m FROM PhotoObjAll WHERE ra BETWEEN 120 AND 240 GROUP BY type",
		"SELECT objID, ra FROM PhotoObjAll WHERE ra BETWEEN 170 AND 171 ORDER BY ra LIMIT 25",
		"SELECT COUNT(*) AS c FROM PhotoObjAll WHERE ra > 200 AND dec > 0",
	}
	// Literal variants of the cached shapes (shape-tier binding) and a
	// commuted spelling (canonical-tier aliasing).
	variants := []string{
		"SELECT COUNT(*), AVG(r) AS m, SUM(r) AS s FROM PhotoObjAll WHERE ra BETWEEN 140 AND 190",
		"SELECT MIN(r) AS lo, MAX(r) AS hi FROM PhotoObjAll WHERE dec > 25",
		"SELECT COUNT(*) AS c FROM PhotoObjAll WHERE dec > 0 AND ra > 200",
	}
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", workers), func(t *testing.T) {
			cached := equivDB(t, workers)
			uncached := equivDB(t, workers, WithPlanCacheBudget(-1))
			if cached.plans == nil {
				t.Fatal("cached DB has no plan cache")
			}
			if uncached.plans != nil {
				t.Fatal("uncached DB still has a plan cache")
			}
			run := func(db *DB, sql string) string {
				t.Helper()
				res, err := db.Exec(sql)
				if err != nil {
					t.Fatalf("%q: %v", sql, err)
				}
				return res.String()
			}
			for _, sql := range queries {
				want := run(uncached, sql)
				if got := run(cached, sql); got != want { // cold: full parse + admit
					t.Errorf("cold pass diverged on %q:\ncached:\n%s\nuncached:\n%s", sql, got, want)
				}
				if got := run(cached, sql); got != want { // warm: alias-tier hit
					t.Errorf("warm pass diverged on %q:\ncached:\n%s\nuncached:\n%s", sql, got, want)
				}
			}
			for _, sql := range variants {
				want := run(uncached, sql)
				if got := run(cached, sql); got != want {
					t.Errorf("variant diverged on %q:\ncached:\n%s\nuncached:\n%s", sql, got, want)
				}
			}
			st := cached.PlanCacheStats()
			if st.Hits == 0 {
				t.Errorf("warm passes never hit the alias tier: %+v", st)
			}
			if st.ShapeHits+st.CanonHits == 0 {
				t.Errorf("variants never hit shape/canonical tiers: %+v", st)
			}
		})
	}
}
