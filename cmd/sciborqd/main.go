// Command sciborqd serves a synthetic SkyServer catalogue with
// impressions over HTTP/JSON: a long-running, multi-tenant SciBORQ
// query server with admission control, per-query cancellation, and
// contention-aware WITHIN TIME pricing.
//
//	sciborqd -addr :8080 -rows 200000 -layers 20000,2000,200
//
// Then:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/query -d '{"sql": "SELECT COUNT(*) AS n FROM PhotoObjAll"}'
//	curl -s localhost:8080/stats
//
// The HTTP/JSON API is documented in docs/SERVER.md. With -wire-addr
// set, the same engine is additionally served over the binary wire
// protocol (streaming columnar results, prepared statements; see
// docs/PROTOCOL.md), sharing the HTTP listener's admission queue and
// load picture. SIGINT/SIGTERM drain gracefully on both listeners:
// queued queries are rejected (503 / draining frame), in-flight
// queries complete, then the listeners close and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sciborq"
	"sciborq/internal/server"
	"sciborq/internal/skyserver"
	"sciborq/internal/wire"
)

// options is the daemon's full configuration — a struct (rather than
// package-level flag state) so the drain test can run the real daemon
// in-process with a tiny dataset.
type options struct {
	addr            string
	wireAddr        string
	rows            int
	layers          string
	policy          string
	seed            uint64
	maxInFlight     int
	maxQueue        int
	maxQueryTime    time.Duration
	recyclerMB      int64
	tenantMB        int64
	maxTenants      int
	memoryMB        int64
	drainTimeout    time.Duration
	dataDir         string
	granuleCacheMB  int64
	wireIdleTimeout time.Duration
}

func main() {
	var opts options
	flag.StringVar(&opts.addr, "addr", ":8080", "listen address")
	flag.StringVar(&opts.wireAddr, "wire-addr", "", "binary wire protocol listen address (empty disables)")
	flag.IntVar(&opts.rows, "rows", 200_000, "synthetic PhotoObjAll rows")
	flag.StringVar(&opts.layers, "layers", "20000,2000,200", "impression layer sizes, comma separated, largest first")
	flag.StringVar(&opts.policy, "policy", "biased", "impression policy: uniform | biased | last-seen")
	flag.Uint64Var(&opts.seed, "seed", 2011, "random seed")
	flag.IntVar(&opts.maxInFlight, "max-inflight", 8, "max concurrently executing queries (negative: admit nothing)")
	flag.IntVar(&opts.maxQueue, "max-queue", 32, "max queries waiting for an execution slot")
	flag.DurationVar(&opts.maxQueryTime, "max-query-time", 30*time.Second, "per-query execution deadline (0 disables)")
	flag.Int64Var(&opts.recyclerMB, "recycler-mb", 16, "default recycler partition budget in MiB (0 disables recycling)")
	flag.Int64Var(&opts.tenantMB, "tenant-recycler-mb", 2, "per-tenant recycler partition budget in MiB")
	flag.IntVar(&opts.maxTenants, "max-tenants", 64, "max resident tenant recycler partitions (LRU beyond)")
	flag.Int64Var(&opts.memoryMB, "memory-mb", 0, "global cache memory budget in MiB under the governor (0 disables)")
	flag.DurationVar(&opts.drainTimeout, "drain-timeout", 30*time.Second, "max wait for in-flight queries on shutdown")
	flag.StringVar(&opts.dataDir, "data-dir", "", "durable storage directory: Load batches are WAL-acknowledged and survive restarts (empty: in-memory)")
	flag.Int64Var(&opts.granuleCacheMB, "granule-cache-mb", 0, "hot-granule residency budget in MiB for durable tables (0: track only, never evict)")
	flag.DurationVar(&opts.wireIdleTimeout, "wire-idle-timeout", 0, "close wire sessions idle longer than this (0: protocol default of 5m)")
	flag.Parse()
	if err := run(opts, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sciborqd:", err)
		os.Exit(1)
	}
}

// run is the daemon: build the DB, serve, and on SIGINT/SIGTERM drain
// the admission queue (queued waiters get 503 draining / a draining
// error frame) before shutting both listeners down, which waits for
// in-flight queries. ready, if non-nil, is called with the bound listen
// addresses once the server is accepting — the hook the drain test uses
// to find its ephemeral ports; wireAddr is empty when the wire listener
// is disabled.
func run(opts options, ready func(addr, wireAddr string)) error {
	sizes, err := parseSizes(opts.layers)
	if err != nil {
		return err
	}
	policy, err := parsePolicy(opts.policy)
	if err != nil {
		return err
	}

	db, err := buildDB(opts, sizes, policy)
	if err != nil {
		return err
	}
	// Final seal + file/mapping release for durable tables; a no-op for
	// in-memory runs. Runs after both listeners have shut down, so no
	// query snapshot still references the mappings it unmaps.
	defer db.Close()

	srv, err := server.New(server.Config{
		DB:           db,
		MaxInFlight:  opts.maxInFlight,
		MaxQueue:     opts.maxQueue,
		MaxQueryTime: opts.maxQueryTime,
	})
	if err != nil {
		return err
	}

	// Register the signal handler before accepting traffic, so a SIGTERM
	// arriving right after ready() always drains instead of killing.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("sciborqd: serving on %s (max-inflight=%d max-queue=%d max-query-time=%v)\n",
			ln.Addr(), opts.maxInFlight, opts.maxQueue, opts.maxQueryTime)
		errCh <- httpSrv.Serve(ln)
	}()

	// Optional binary wire listener: same DB, same admission queue, same
	// memory gate, so both transports share one load picture.
	var (
		wireSrv      *wire.Server
		wireAddr     string
		wireErrCh    = make(chan error, 1)
		wireDisabled = opts.wireAddr == ""
	)
	if !wireDisabled {
		wln, err := net.Listen("tcp", opts.wireAddr)
		if err != nil {
			ln.Close()
			return err
		}
		wireSrv = wire.NewServer(wire.Config{
			DB:           db,
			Core:         srv,
			MaxQueryTime: opts.maxQueryTime,
			IdleTimeout:  opts.wireIdleTimeout,
		})
		srv.SetWireStats(func() any { return wireSrv.Stats() })
		wireAddr = wln.Addr().String()
		go func() {
			fmt.Printf("sciborqd: wire protocol on %s\n", wln.Addr())
			wireErrCh <- wireSrv.Serve(wln)
		}()
	}
	if ready != nil {
		ready(ln.Addr().String(), wireAddr)
	}

	select {
	case <-ctx.Done():
		fmt.Println("sciborqd: shutting down, draining in-flight queries...")
		// Drain first: queued waiters wake with 503 / a draining error
		// frame immediately instead of holding connections open against
		// the Shutdown deadline; in-flight queries keep their slots and
		// finish on either transport.
		srv.Drain()
		shutCtx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			return err
		}
		if wireSrv != nil {
			if err := wireSrv.Shutdown(shutCtx); err != nil {
				return err
			}
			<-wireErrCh
		}
		fmt.Println("sciborqd: bye")
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case err := <-wireErrCh:
		if errors.Is(err, net.ErrClosed) {
			return nil
		}
		return err
	}
}

// buildDB assembles the same synthetic SkyServer setup as the sciborq
// shell: catalogue tables, a tracked (ra, dec) workload, a biased
// impression hierarchy, and the data loaded in nightly batches so the
// impressions build in the load path. With -data-dir, an existing
// directory short-circuits generation: attach recovers the acknowledged
// rows (sealed segments + WAL replay) and impressions are backfilled
// from the recovered table instead of rebuilt in a load loop.
func buildDB(opts options, sizes []int, policy sciborq.Policy) (*sciborq.DB, error) {
	cfg := skyserver.DefaultConfig(0)
	cfg.Seed = opts.seed
	sky, err := skyserver.New(cfg)
	if err != nil {
		return nil, err
	}
	dbOpts := []sciborq.Option{
		sciborq.WithSeed(opts.seed),
		sciborq.WithRecyclerBudget(opts.recyclerMB << 20),
		sciborq.WithTenantRecyclerBudget(opts.tenantMB << 20),
		sciborq.WithMaxTenants(opts.maxTenants),
		sciborq.WithMemoryBudget(opts.memoryMB << 20),
	}
	if opts.dataDir != "" {
		dbOpts = append(dbOpts,
			sciborq.WithDataDir(opts.dataDir),
			sciborq.WithGranuleCacheBudget(opts.granuleCacheMB<<20))
	}
	db := sciborq.Open(dbOpts...)
	for _, t := range []string{"PhotoObjAll", "Field", "PhotoTag"} {
		tb, err := sky.Catalog.Get(t)
		if err != nil {
			return nil, err
		}
		if err := db.AttachTable(tb); err != nil {
			return nil, err
		}
	}
	recovered := db.Recovered("PhotoObjAll")
	if err := db.TrackWorkload("PhotoObjAll",
		sciborq.Attr{Name: "ra", Min: cfg.RaMin, Max: cfg.RaMax, Beta: 30},
		sciborq.Attr{Name: "dec", Min: cfg.DecMin, Max: cfg.DecMax, Beta: 30},
	); err != nil {
		return nil, err
	}
	attrs := []string{"ra", "dec"}
	if policy != sciborq.Biased {
		attrs = nil
	}
	if err := db.BuildImpressions("PhotoObjAll", sciborq.ImpressionConfig{
		Sizes: sizes, Policy: policy, Attrs: attrs, K: 500, D: 1000,
		Backfill: recovered,
	}); err != nil {
		return nil, err
	}
	if recovered {
		tb, err := db.Table("PhotoObjAll")
		if err != nil {
			return nil, err
		}
		fmt.Printf("sciborqd: recovered %d durable rows from %s; impressions backfilled\n",
			tb.Len(), opts.dataDir)
		return db, nil
	}
	fmt.Printf("sciborqd: generating %d synthetic SkyServer objects...\n", opts.rows)
	gen := sky.Generator(nil)
	const night = 20_000
	for loaded := 0; loaded < opts.rows; loaded += night {
		n := night
		if opts.rows-loaded < n {
			n = opts.rows - loaded
		}
		if err := db.Load("PhotoObjAll", gen.NextBatch(n)); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("sciborqd: bad layer size %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func parsePolicy(s string) (sciborq.Policy, error) {
	switch strings.ToLower(s) {
	case "uniform":
		return sciborq.Uniform, nil
	case "biased":
		return sciborq.Biased, nil
	case "last-seen", "lastseen":
		return sciborq.LastSeen, nil
	}
	return 0, fmt.Errorf("sciborqd: unknown policy %q", s)
}
