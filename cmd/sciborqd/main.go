// Command sciborqd serves a synthetic SkyServer catalogue with
// impressions over HTTP/JSON: a long-running, multi-tenant SciBORQ
// query server with admission control, per-query cancellation, and
// contention-aware WITHIN TIME pricing.
//
//	sciborqd -addr :8080 -rows 200000 -layers 20000,2000,200
//
// Then:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/query -d '{"sql": "SELECT COUNT(*) AS n FROM PhotoObjAll"}'
//	curl -s localhost:8080/stats
//
// The wire protocol is documented in docs/SERVER.md. SIGINT/SIGTERM
// drain in-flight queries and shut down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sciborq"
	"sciborq/internal/server"
	"sciborq/internal/skyserver"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	rows := flag.Int("rows", 200_000, "synthetic PhotoObjAll rows")
	layersFlag := flag.String("layers", "20000,2000,200", "impression layer sizes, comma separated, largest first")
	policyFlag := flag.String("policy", "biased", "impression policy: uniform | biased | last-seen")
	seed := flag.Uint64("seed", 2011, "random seed")
	maxInFlight := flag.Int("max-inflight", 8, "max concurrently executing queries")
	maxQueue := flag.Int("max-queue", 32, "max queries waiting for an execution slot")
	maxQueryTime := flag.Duration("max-query-time", 30*time.Second, "per-query execution deadline (0 disables)")
	recyclerMB := flag.Int64("recycler-mb", 16, "default recycler partition budget in MiB (0 disables recycling)")
	tenantMB := flag.Int64("tenant-recycler-mb", 2, "per-tenant recycler partition budget in MiB")
	maxTenants := flag.Int("max-tenants", 64, "max resident tenant recycler partitions (LRU beyond)")
	flag.Parse()

	sizes, err := parseSizes(*layersFlag)
	if err != nil {
		fatal(err)
	}
	policy, err := parsePolicy(*policyFlag)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("sciborqd: generating %d synthetic SkyServer objects...\n", *rows)
	db, err := buildDB(*rows, sizes, policy, *seed, *recyclerMB<<20, *tenantMB<<20, *maxTenants)
	if err != nil {
		fatal(err)
	}

	srv, err := server.New(server.Config{
		DB:           db,
		MaxInFlight:  *maxInFlight,
		MaxQueue:     *maxQueue,
		MaxQueryTime: *maxQueryTime,
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("sciborqd: serving on %s (max-inflight=%d max-queue=%d max-query-time=%v)\n",
			*addr, *maxInFlight, *maxQueue, *maxQueryTime)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		fmt.Println("sciborqd: shutting down, draining in-flight queries...")
		shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fatal(err)
		}
		fmt.Println("sciborqd: bye")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

// buildDB assembles the same synthetic SkyServer setup as the sciborq
// shell: catalogue tables, a tracked (ra, dec) workload, a biased
// impression hierarchy, and the data loaded in nightly batches so the
// impressions build in the load path.
func buildDB(rows int, sizes []int, policy sciborq.Policy, seed uint64, recyclerBytes, tenantBytes int64, maxTenants int) (*sciborq.DB, error) {
	cfg := skyserver.DefaultConfig(0)
	cfg.Seed = seed
	sky, err := skyserver.New(cfg)
	if err != nil {
		return nil, err
	}
	db := sciborq.Open(
		sciborq.WithSeed(seed),
		sciborq.WithRecyclerBudget(recyclerBytes),
		sciborq.WithTenantRecyclerBudget(tenantBytes),
		sciborq.WithMaxTenants(maxTenants),
	)
	for _, t := range []string{"PhotoObjAll", "Field", "PhotoTag"} {
		tb, err := sky.Catalog.Get(t)
		if err != nil {
			return nil, err
		}
		if err := db.AttachTable(tb); err != nil {
			return nil, err
		}
	}
	if err := db.TrackWorkload("PhotoObjAll",
		sciborq.Attr{Name: "ra", Min: cfg.RaMin, Max: cfg.RaMax, Beta: 30},
		sciborq.Attr{Name: "dec", Min: cfg.DecMin, Max: cfg.DecMax, Beta: 30},
	); err != nil {
		return nil, err
	}
	attrs := []string{"ra", "dec"}
	if policy != sciborq.Biased {
		attrs = nil
	}
	if err := db.BuildImpressions("PhotoObjAll", sciborq.ImpressionConfig{
		Sizes: sizes, Policy: policy, Attrs: attrs, K: 500, D: 1000,
	}); err != nil {
		return nil, err
	}
	gen := sky.Generator(nil)
	const night = 20_000
	for loaded := 0; loaded < rows; loaded += night {
		n := night
		if rows-loaded < n {
			n = rows - loaded
		}
		if err := db.Load("PhotoObjAll", gen.NextBatch(n)); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("sciborqd: bad layer size %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func parsePolicy(s string) (sciborq.Policy, error) {
	switch strings.ToLower(s) {
	case "uniform":
		return sciborq.Uniform, nil
	case "biased":
		return sciborq.Biased, nil
	case "last-seen", "lastseen":
		return sciborq.LastSeen, nil
	}
	return 0, fmt.Errorf("sciborqd: unknown policy %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sciborqd:", err)
	os.Exit(1)
}
