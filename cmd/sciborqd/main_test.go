package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"strconv"
	"syscall"
	"testing"
	"time"

	"sciborq/internal/faultinject"
	"sciborq/internal/wire"
)

// postResult is one /query outcome observed by a test client goroutine.
type postResult struct {
	status int
	code   string
	err    error
}

// postAsync fires one query and delivers the outcome on a channel.
func postAsync(base, sql string) <-chan postResult {
	out := make(chan postResult, 1)
	go func() {
		body, _ := json.Marshal(map[string]string{"sql": sql})
		resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			out <- postResult{err: err}
			return
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		res := postResult{status: resp.StatusCode}
		if resp.StatusCode != http.StatusOK {
			var bad struct {
				Error struct {
					Code string `json:"code"`
				} `json:"error"`
			}
			_ = json.Unmarshal(raw, &bad)
			res.code = bad.Error.Code
		}
		out <- res
	}()
	return out
}

// admissionSnapshot reads the live occupancy from /stats.
func admissionSnapshot(base string) (inFlight, queued int, err error) {
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var st struct {
		Admission struct {
			InFlight int `json:"in_flight"`
			Queued   int `json:"queued"`
		} `json:"admission"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, 0, err
	}
	return st.Admission.InFlight, st.Admission.Queued, nil
}

// wireQueryAsync fires one query over the binary wire protocol and
// delivers the outcome on a channel.
func wireQueryAsync(addr, sql string) <-chan error {
	out := make(chan error, 1)
	go func() {
		c, err := wire.Dial(addr, "")
		if err != nil {
			out <- err
			return
		}
		defer c.Close()
		_, err = c.Query(sql)
		out <- err
	}()
	return out
}

// TestGracefulDrainOnSIGTERM runs the real daemon in-process with both
// listeners: with one query held in flight (injected latency) and one
// queued behind it on each transport, SIGTERM must reject the queued
// queries (503 draining over HTTP, a draining error frame over the
// wire), let the in-flight query complete with 200, close both
// listeners, and return nil — the exit-0 contract of graceful shutdown.
func TestGracefulDrainOnSIGTERM(t *testing.T) {
	opts := options{
		addr:         "127.0.0.1:0",
		wireAddr:     "127.0.0.1:0",
		rows:         4000,
		layers:       "400,40",
		policy:       "biased",
		seed:         7,
		maxInFlight:  1,
		maxQueue:     4,
		recyclerMB:   1,
		tenantMB:     1,
		maxTenants:   4,
		drainTimeout: 10 * time.Second,
	}

	// The latency injection holds the first query's admission slot long
	// enough to queue a second query and deliver the signal.
	faultinject.Enable(faultinject.NewPlan(faultinject.Fault{
		Point: faultinject.PointQuery, Hit: 1,
		Kind: faultinject.KindLatency, Latency: 1500 * time.Millisecond,
	}))
	defer faultinject.Disable()

	type addrs struct{ http, wire string }
	addrCh := make(chan addrs, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(opts, func(addr, wireAddr string) { addrCh <- addrs{addr, wireAddr} })
	}()
	var base, wireAddr string
	select {
	case a := <-addrCh:
		base = "http://" + a.http
		wireAddr = a.wire
	case err := <-runErr:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}
	if wireAddr == "" {
		t.Fatal("wire listener not started")
	}

	const sql = "SELECT COUNT(*) AS n FROM PhotoObjAll"
	q1 := postAsync(base, sql)
	waitFor(t, base, 1, 0) // q1 owns the only slot
	q2 := postAsync(base, sql)
	waitFor(t, base, 1, 1) // q2 queued behind it
	w1 := wireQueryAsync(wireAddr, sql)
	waitFor(t, base, 1, 2) // w1 queued on the same shared admission queue

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// The queued queries are rejected promptly — they do not wait out
	// the in-flight query's latency.
	select {
	case r := <-q2:
		if r.err != nil {
			t.Fatalf("queued query transport error: %v", r.err)
		}
		if r.status != http.StatusServiceUnavailable || r.code != "draining" {
			t.Fatalf("queued query: status %d code %q, want 503 draining", r.status, r.code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued query not rejected after SIGTERM")
	}
	select {
	case err := <-w1:
		var se *wire.ServerError
		if !errors.As(err, &se) || se.Code != "draining" {
			t.Fatalf("queued wire query: got %v, want a draining error frame", err)
		}
		if se.RetryAfter <= 0 {
			t.Fatalf("draining error frame carries no retry-after hint")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued wire query not rejected after SIGTERM")
	}

	// The in-flight query completes normally.
	select {
	case r := <-q1:
		if r.err != nil {
			t.Fatalf("in-flight query transport error: %v", r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("in-flight query: status %d code %q, want 200", r.status, r.code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight query never completed")
	}

	// run returns nil (exit 0) and the listener is closed.
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v after graceful drain, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
	if c, err := wire.Dial(wireAddr, ""); err == nil {
		c.Close()
		t.Fatal("wire listener still accepting after shutdown")
	}
}

// TestRestartRecoversDataDir is the daemon half of the durability
// acceptance: run sciborqd with -data-dir, stop it with SIGTERM, start
// it again on the same directory, and the acknowledged rows are served
// again — recovered from disk, not regenerated — with the storage
// section visible in /stats.
func TestRestartRecoversDataDir(t *testing.T) {
	dir := t.TempDir()
	opts := options{
		addr:           "127.0.0.1:0",
		rows:           6000,
		layers:         "400,40",
		policy:         "biased",
		seed:           7,
		maxInFlight:    2,
		maxQueue:       4,
		recyclerMB:     1,
		tenantMB:       1,
		maxTenants:     4,
		drainTimeout:   10 * time.Second,
		dataDir:        dir,
		granuleCacheMB: 1,
	}

	countRows := func(base string) float64 {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"sql": "SELECT COUNT(*) AS n FROM PhotoObjAll"})
		resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var res struct {
			Exact *struct {
				Rows [][]string `json:"rows"`
			} `json:"exact"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		if res.Exact == nil || len(res.Exact.Rows) != 1 || len(res.Exact.Rows[0]) != 1 {
			t.Fatalf("count query shape: %+v", res.Exact)
		}
		n, err := strconv.ParseFloat(res.Exact.Rows[0][0], 64)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	boot := func() (base string, runErr chan error) {
		t.Helper()
		addrCh := make(chan addrs, 1)
		runErr = make(chan error, 1)
		go func() {
			runErr <- run(opts, func(addr, wireAddr string) { addrCh <- addrs{addr, wireAddr} })
		}()
		select {
		case a := <-addrCh:
			return "http://" + a.http, runErr
		case err := <-runErr:
			t.Fatalf("daemon exited before ready: %v", err)
		case <-time.After(60 * time.Second):
			t.Fatal("daemon never became ready")
		}
		return "", nil
	}
	stop := func(runErr chan error) {
		t.Helper()
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-runErr:
			if err != nil {
				t.Fatalf("run returned %v, want nil", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}

	base, runErr := boot()
	if got := countRows(base); got != 6000 {
		t.Fatalf("first boot: COUNT(*) = %v, want 6000", got)
	}
	stop(runErr)

	// Second boot on the same directory: even with a different -rows
	// setting, the durable state wins — nothing is regenerated.
	opts.rows = 99
	base, runErr = boot()
	if got := countRows(base); got != 6000 {
		t.Fatalf("after restart: COUNT(*) = %v, want the 6000 recovered rows", got)
	}
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Storage *struct {
			Tables map[string]struct {
				Rows      int  `json:"rows"`
				Recovered bool `json:"recovered"`
			} `json:"tables"`
		} `json:"storage"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Storage == nil {
		t.Fatal("/stats has no storage section on a durable daemon")
	}
	ts, ok := st.Storage.Tables["PhotoObjAll"]
	if !ok || ts.Rows != 6000 || !ts.Recovered {
		t.Fatalf("storage stats after restart: %+v", st.Storage.Tables)
	}
	stop(runErr)
}

// addrs carries the two bound listen addresses out of run's ready hook.
type addrs struct{ http, wire string }

// waitFor polls /stats until the admission queue shows the wanted
// occupancy (or fails after a bounded wait).
func waitFor(t *testing.T, base string, inFlight, queued int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		gotIn, gotQ, err := admissionSnapshot(base)
		if err == nil && gotIn == inFlight && gotQ == queued {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	gotIn, gotQ, err := admissionSnapshot(base)
	t.Fatalf("admission never reached in_flight=%d queued=%d (last: %d/%d, err %v)",
		inFlight, queued, gotIn, gotQ, err)
}
