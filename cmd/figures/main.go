// Command figures regenerates the SciBORQ paper's evaluation figures as
// printed data series:
//
//	figures -fig 4            # Figure 4: predicate-set histograms + KDE curves
//	figures -fig 7            # Figure 7: base vs uniform vs biased impressions
//	figures -fig all          # both
//
// Figure 7 defaults to the paper's scale (>600 000 base tuples, 10 000-
// tuple impressions); -rows and -n scale it down for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"sciborq/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 4, 7, or all")
	queries := flag.Int("queries", 400, "Figure 4: number of logged queries (paper: 400)")
	beta := flag.Int("beta", 30, "histogram bins β")
	rows := flag.Int("rows", 600_000, "Figure 7: base table rows (paper: >600000)")
	n := flag.Int("n", 10_000, "Figure 7: impression size (paper: 10000)")
	seed := flag.Uint64("seed", 2011, "random seed")
	flag.Parse()

	run4 := *fig == "4" || *fig == "all"
	run7 := *fig == "7" || *fig == "all"
	if !run4 && !run7 {
		fmt.Fprintf(os.Stderr, "figures: unknown -fig %q (want 4, 7, or all)\n", *fig)
		os.Exit(2)
	}
	if run4 {
		res, err := experiments.Figure4(*queries, *beta, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
	}
	if run7 {
		res, err := experiments.Figure7(*rows, *n, *beta, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
	}
}
