// Command sciborq is an interactive shell over a synthetic SkyServer
// catalogue with impressions: generate data, type SQL (including the
// WITHIN ERROR / WITHIN TIME bounded clauses), and inspect how answers
// escalate through impression layers.
//
//	sciborq -rows 600000 -layers 60000,6000,600 -policy biased
//
// Then at the prompt:
//
//	sciborq> SELECT COUNT(*) FROM PhotoObjAll WHERE fGetNearbyObjEq(165, 20, 3) WITHIN ERROR 0.05
//	sciborq> SELECT AVG(r) FROM PhotoObjAll WITHIN TIME 2ms
//	sciborq> \layers      -- show the impression hierarchy
//	sciborq> \workload    -- show the logged predicate-set histograms
//	sciborq> \quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sciborq"
	"sciborq/internal/skyserver"
)

func main() {
	rows := flag.Int("rows", 200_000, "synthetic PhotoObjAll rows")
	layersFlag := flag.String("layers", "20000,2000,200", "impression layer sizes, comma separated, largest first")
	policyFlag := flag.String("policy", "biased", "impression policy: uniform | biased | last-seen")
	seed := flag.Uint64("seed", 2011, "random seed")
	flag.Parse()

	sizes, err := parseSizes(*layersFlag)
	if err != nil {
		fatal(err)
	}
	policy, err := parsePolicy(*policyFlag)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("generating %d synthetic SkyServer objects...\n", *rows)
	cfg := skyserver.DefaultConfig(0)
	cfg.Seed = *seed
	sky, err := skyserver.New(cfg)
	if err != nil {
		fatal(err)
	}
	db := sciborq.Open(sciborq.WithSeed(*seed))
	for _, t := range []string{"PhotoObjAll", "Field", "PhotoTag"} {
		tb, err := sky.Catalog.Get(t)
		if err != nil {
			fatal(err)
		}
		if err := db.AttachTable(tb); err != nil {
			fatal(err)
		}
	}
	if err := db.TrackWorkload("PhotoObjAll",
		sciborq.Attr{Name: "ra", Min: cfg.RaMin, Max: cfg.RaMax, Beta: 30},
		sciborq.Attr{Name: "dec", Min: cfg.DecMin, Max: cfg.DecMax, Beta: 30},
	); err != nil {
		fatal(err)
	}
	attrs := []string{"ra", "dec"}
	if policy != sciborq.Biased {
		attrs = nil
	}
	if err := db.BuildImpressions("PhotoObjAll", sciborq.ImpressionConfig{
		Sizes: sizes, Policy: policy, Attrs: attrs, K: 500, D: 1000,
	}); err != nil {
		fatal(err)
	}
	// Load in nightly batches so impressions build in the load path.
	gen := sky.Generator(nil)
	const night = 20_000
	for loaded := 0; loaded < *rows; loaded += night {
		n := night
		if *rows-loaded < n {
			n = *rows - loaded
		}
		if err := db.Load("PhotoObjAll", gen.NextBatch(n)); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("ready: %d rows, layers %v, policy %s (cost model %.1f ns/row)\n",
		*rows, sizes, policy, db.CostModel().NsPerRow)

	repl(db)
}

func repl(db *sciborq.DB) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("sciborq> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\layers`:
			printLayers(db)
			continue
		case line == `\workload`:
			printWorkload(db)
			continue
		}
		res, err := db.Exec(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Print(res.String())
		if res.Bounded != nil {
			for _, lr := range res.Bounded.Trail {
				fmt.Printf("  tried %-32s rows=%-8d ok=%t in %v\n",
					lr.Layer, lr.Rows, lr.Satisfied, lr.Elapsed)
			}
		}
	}
}

func printLayers(db *sciborq.DB) {
	h := db.Hierarchy("PhotoObjAll")
	if h == nil {
		fmt.Println("no impressions built")
		return
	}
	for i, im := range h.Layers() {
		fmt.Printf("  layer %d: %-34s policy=%-9s n=%d/%d offered=%d\n",
			i, im.Name(), im.Policy(), im.Len(), im.Cap(), im.Offered())
	}
}

func printWorkload(db *sciborq.DB) {
	lg := db.Logger("PhotoObjAll")
	if lg == nil {
		fmt.Println("no workload tracking")
		return
	}
	fmt.Printf("logged queries: %d\n", lg.Queries())
	for _, attr := range lg.Attrs() {
		h, err := lg.Histogram(attr)
		if err != nil {
			continue
		}
		fmt.Printf("  [%s] N=%d\n", attr, h.N)
		for i, b := range h.Bins {
			if b.Count == 0 {
				continue
			}
			bar := strings.Repeat("#", clamp(int(b.Count), 1, 60))
			fmt.Printf("    %7.1f %6d %s\n", h.BinLow(i), b.Count, bar)
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("sciborq: bad layer size %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func parsePolicy(s string) (sciborq.Policy, error) {
	switch strings.ToLower(s) {
	case "uniform":
		return sciborq.Uniform, nil
	case "biased":
		return sciborq.Biased, nil
	case "last-seen", "lastseen":
		return sciborq.LastSeen, nil
	}
	return 0, fmt.Errorf("sciborq: unknown policy %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sciborq:", err)
	os.Exit(1)
}
