// Command experiments runs the SciBORQ experiment suite E1–E8 (the
// quantified versions of the paper's qualitative claims; see DESIGN.md
// for the per-experiment index) and prints one table per experiment.
//
//	experiments            # run all
//	experiments -e 3       # run one
//	experiments -quick     # smaller inputs for a fast smoke run
package main

import (
	"flag"
	"fmt"
	"os"

	"sciborq/internal/experiments"
)

type renderer interface{ Render() string }

func main() {
	which := flag.Int("e", 0, "experiment number 1..8 (0 = all)")
	quick := flag.Bool("quick", false, "scale inputs down for a fast run")
	seed := flag.Uint64("seed", 2011, "random seed")
	flag.Parse()

	base := 200_000
	e3n := 10_000
	trials := 2000
	if *quick {
		base = 40_000
		e3n = 2_000
		trials = 300
	}

	runners := map[int]func() (renderer, error){
		1: func() (renderer, error) {
			return experiments.E1LayerError(base, []int{base / 200, base / 40, base / 20, base / 8, base / 2}, *seed)
		},
		2: func() (renderer, error) {
			return experiments.E2TimeBounds(base, []int{base / 100, base / 10, base / 2}, *seed)
		},
		3: func() (renderer, error) {
			return experiments.E3BiasedVsUniform(base, e3n, *seed)
		},
		4: func() (renderer, error) {
			return experiments.E4Adaptation(60, 3000, 2000, 30, *seed)
		},
		5: func() (renderer, error) {
			return experiments.E5Escalation(base, []int{20_000, 4000, 800}, []float64{0.1, 0.05, 0.02, 0.01, 0.001, 1e-9}, *seed)
		},
		6: func() (renderer, error) {
			return experiments.E6LastSeen(500_000, 10_000, 2000, []float64{0.25, 0.5, 1.0}, *seed)
		},
		7: func() (renderer, error) {
			return experiments.E7KDECost([]int{100, 1000, 10_000, 100_000}, 30, *seed)
		},
		8: func() (renderer, error) {
			return experiments.E8Fisher(60, 140, 40, trials, []float64{1, 2, 5, 10}, *seed)
		},
	}
	order := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if *which != 0 {
		if _, ok := runners[*which]; !ok {
			fmt.Fprintf(os.Stderr, "experiments: no experiment %d (want 1..8)\n", *which)
			os.Exit(2)
		}
		order = []int{*which}
	}
	for _, e := range order {
		res, err := runners[e]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: E%d: %v\n", e, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
	}
}
