package sciborq

import (
	"fmt"
	"testing"

	"sciborq/internal/governor"
	"sciborq/internal/xrand"
)

// govFixture builds a DB under a global memory governor with all three
// cache tiers populated: distinct statement spellings fill the plan and
// shape tiers, and their WHERE selections fill the recycler.
func govFixture(t *testing.T) *DB {
	t.Helper()
	db := Open(testCost(), WithSeed(5), WithMemoryBudget(1<<20))
	if _, err := db.CreateTable("T", Schema{
		{Name: "ra", Type: Float64},
		{Name: "r", Type: Float64},
	}); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(11)
	rows := make([]Row, 4000)
	for i := range rows {
		rows[i] = Row{rng.Float64(), rng.Float64() * 10}
	}
	if err := db.Load("T", rows); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		sql := fmt.Sprintf("SELECT COUNT(*) AS c FROM T WHERE ra < %g", 0.1+float64(i)*0.1)
		if _, err := db.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestGovernorShedsRealTiersInOrder drives the acceptance criterion
// end to end against the real caches: under an injected pressure
// signal the governor sheds shape → plan → recycler — cheapest
// replacement cost first — and every tier reports empty afterwards.
func TestGovernorShedsRealTiersInOrder(t *testing.T) {
	db := govFixture(t)
	g := db.Governor()
	if g == nil {
		t.Fatal("WithMemoryBudget did not install a governor")
	}

	s := g.Stats()
	for _, tier := range []string{"plancache.shapes", "plancache.plans", "recycler"} {
		if s.TierUsages[tier] <= 0 {
			t.Fatalf("tier %s empty before pressure: %+v", tier, s.TierUsages)
		}
	}

	g.InjectPressure(governor.Critical)
	if lv := g.Level(); lv != governor.Critical {
		t.Fatalf("level = %v, want Critical", lv)
	}
	if u := g.Usage(); u != 0 {
		t.Fatalf("forced critical left %d bytes across tiers", u)
	}
	log := g.ShedLog()
	if len(log) != 3 {
		t.Fatalf("shed log = %v, want one event per tier", log)
	}
	want := []string{"plancache.shapes", "plancache.plans", "recycler"}
	for i, ev := range log {
		if ev.Tier != want[i] || ev.Freed <= 0 {
			t.Fatalf("shed[%d] = %+v, want tier %s with freed > 0", i, ev, want[i])
		}
	}

	// Shed caches are an optimisation, never a dependency: queries still
	// answer correctly (and repopulate the tiers) after the purge.
	g.ReleasePressure()
	res, err := db.Exec("SELECT COUNT(*) AS c FROM T WHERE ra < 0.5")
	if err != nil {
		t.Fatalf("query after shed failed: %v", err)
	}
	if v, err := res.Scalar("c"); err != nil || v <= 0 || v >= 4000 {
		t.Fatalf("post-shed COUNT = %v, %v", v, err)
	}
	if lv := g.Level(); lv != governor.Nominal {
		t.Fatalf("released level = %v, want Nominal", lv)
	}
}

// TestGovernorLoadPathCheck: Load triggers a governor check, so real
// over-budget usage sheds without any serving-layer involvement.
func TestGovernorLoadPathCheck(t *testing.T) {
	db := govFixture(t)
	g := db.Governor()
	before := g.Stats().Checks
	if err := db.Load("T", []Row{{0.5, 5.0}}); err != nil {
		t.Fatal(err)
	}
	if after := g.Stats().Checks; after <= before {
		t.Fatalf("Load did not run a governor check: %d -> %d", before, after)
	}
}
