package sciborq

import (
	"sync"
	"testing"
)

// Recycler-under-ingest audit (run under -race in CI): N goroutines
// issue repeated and refined queries through one shared recycler while
// Load batches stream into the base table. The recycler keys cached
// selections by (table ID, version) captured from the query's own
// snapshot, so every answer must describe a batch-atomic prefix — a
// count can never mix rows from a half-applied batch, and a selection
// cached at one version can never be served for another.

const (
	raceBatchRows    = 64
	raceMatchPerLoad = 16 // rows per batch with v < 0.5
	raceBatches      = 50
)

// raceBatch builds one deterministic batch: exactly raceMatchPerLoad
// rows at v = 0.25 (matching v < 0.5, and v > 0.1), the rest at 0.75.
func raceBatch() []Row {
	rows := make([]Row, raceBatchRows)
	for i := range rows {
		v := 0.75
		if i < raceMatchPerLoad {
			v = 0.25
		}
		rows[i] = Row{v}
	}
	return rows
}

func TestRecyclerConcurrentExecWhileLoad(t *testing.T) {
	db := Open(testCost(), WithParallelism(2))
	if _, err := db.CreateTable("R", Schema{{Name: "v", Type: Float64}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Load("R", raceBatch()); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		// The dominant repeated predicate...
		"SELECT COUNT(*) AS c FROM R WHERE v < 0.5",
		// ...its refinement (answered by subsumption when versions align)...
		"SELECT COUNT(*) AS c FROM R WHERE v < 0.5 AND v > 0.1",
		// ...and a commuted spelling that must share the same entries.
		"SELECT COUNT(*) AS c FROM R WHERE v > 0.1 AND v < 0.5",
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < raceBatches; b++ {
			if err := db.Load("R", raceBatch()); err != nil {
				t.Errorf("load %d: %v", b, err)
				return
			}
		}
	}()

	const goroutines = 4
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				sql := queries[(g+i)%len(queries)]
				res, err := db.Exec(sql)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				c, err := res.Scalar("c")
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				n := int(c)
				// Every batch contributes exactly raceMatchPerLoad
				// matches, so any batch-atomic prefix count is a
				// multiple of it; a stale selection served across
				// versions or a torn batch would break the invariant.
				if n < raceMatchPerLoad || n > raceMatchPerLoad*(raceBatches+1) || n%raceMatchPerLoad != 0 {
					t.Errorf("goroutine %d: COUNT %d is not a batch-atomic prefix", g, n)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := db.RecyclerStats()
	if st.Hits+st.SubsumedHits+st.Misses == 0 {
		t.Fatalf("queries bypassed the recycler entirely: %+v", st)
	}
	// After loads quiesce, repeats must hit and land on the final count.
	final := raceMatchPerLoad * (raceBatches + 1)
	for _, sql := range queries {
		for i := 0; i < 2; i++ {
			res, err := db.Exec(sql)
			if err != nil {
				t.Fatal(err)
			}
			c, err := res.Scalar("c")
			if err != nil {
				t.Fatal(err)
			}
			if int(c) != final {
				t.Fatalf("post-quiesce %q = %d, want %d", sql, int(c), final)
			}
		}
	}
	quiesced := db.RecyclerStats()
	if quiesced.Hits <= st.Hits {
		t.Fatalf("post-quiesce repeats did not hit: before %+v after %+v", st, quiesced)
	}
}
