package sciborq

// The benchmark harness: one benchmark per paper artifact (Figure 4,
// Figure 7) and per experiment E1–E8, plus the ablations called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks measure the cost of regenerating each artifact; the
// artifact *content* checks live in internal/experiments tests and in
// EXPERIMENTS.md.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sciborq/internal/column"
	"sciborq/internal/engine"
	"sciborq/internal/experiments"
	"sciborq/internal/expr"
	"sciborq/internal/impression"
	"sciborq/internal/kde"
	"sciborq/internal/recycler"
	"sciborq/internal/reservoir"
	"sciborq/internal/skyserver"
	"sciborq/internal/sqlparse"
	"sciborq/internal/stats"
	"sciborq/internal/table"
	"sciborq/internal/vec"
	"sciborq/internal/workload"
	"sciborq/internal/xrand"
)

// BenchmarkFigure4 regenerates the Figure-4 pipeline: 400 logged
// queries, Figure-5 histograms, and all four density curves per
// attribute.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(400, 30, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7 at reduced scale (the paper's
// 600k-row version runs via cmd/figures; the benchmark tracks the cost
// shape at 60k).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(60_000, 2_000, 30, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1LayerError measures the error-vs-size sweep.
func BenchmarkE1LayerError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E1LayerError(40_000, []int{1000, 4000, 16_000}, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2TimeBounds measures the latency-promise experiment.
func BenchmarkE2TimeBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E2TimeBounds(30_000, []int{1000, 10_000}, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3BiasedVsUniform measures the central biased-vs-uniform
// comparison.
func BenchmarkE3BiasedVsUniform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E3BiasedVsUniform(60_000, 3_000, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4Adaptation measures the workload-shift experiment.
func BenchmarkE4Adaptation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E4Adaptation(20, 2000, 1000, 10, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5Escalation measures the quality-bound escalation sweep.
func BenchmarkE5Escalation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := experiments.E5Escalation(40_000, []int{8000, 2000, 400},
			[]float64{0.1, 0.01, 1e-9}, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6LastSeen measures the recency-bias profile run.
func BenchmarkE6LastSeen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E6LastSeen(200_000, 10_000, 1000, []float64{0.5, 1}, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7KDECost measures the f̂-vs-f̆ cost sweep.
func BenchmarkE7KDECost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E7KDECost([]int{100, 1000, 10_000}, 30, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8Fisher measures the Fisher NCH validation run.
func BenchmarkE8Fisher(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E8Fisher(60, 140, 40, 200, []float64{1, 5}, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Microbenchmarks of the core algorithms -------------------------

// BenchmarkReservoirR measures Algorithm R offers (Figure 2).
func BenchmarkReservoirR(b *testing.B) {
	r, err := reservoir.NewR[int32](10_000, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Offer(int32(i))
	}
}

// BenchmarkReservoirX measures Vitter's skip-based Algorithm X.
func BenchmarkReservoirX(b *testing.B) {
	x, err := reservoir.NewX[int32](10_000, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Offer(int32(i))
	}
}

// BenchmarkReservoirBiased measures Figure-6 offers including the f̆
// weight evaluation.
func BenchmarkReservoirBiased(b *testing.B) {
	hist := stats.MustNewHistogram(0, 100, 30)
	rng := xrand.New(2)
	for i := 0; i < 400; i++ {
		hist.Observe(25 + rng.NormFloat64()*5)
	}
	kd, err := kde.NewBinned(hist, nil)
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]float64, 1<<16)
	for i := range vals {
		vals[i] = rng.Float64() * 100
	}
	weight := func(i int32) float64 {
		return kd.Eval(vals[int(i)&(1<<16-1)]) * float64(hist.N)
	}
	sampler, err := reservoir.NewBiased[int32](10_000, weight, false, xrand.New(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampler.Offer(int32(i))
	}
}

// BenchmarkBinnedKDE measures one f̆ evaluation (β=30).
func BenchmarkBinnedKDE(b *testing.B) {
	hist := stats.MustNewHistogram(0, 100, 30)
	rng := xrand.New(4)
	for i := 0; i < 10_000; i++ {
		hist.Observe(40 + rng.NormFloat64()*10)
	}
	kd, err := kde.NewBinned(hist, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += kd.Eval(float64(i % 100))
	}
	_ = sink
}

// BenchmarkFullKDE measures one f̂ evaluation over N=10000 raw values —
// the cost f̆ avoids.
func BenchmarkFullKDE(b *testing.B) {
	rng := xrand.New(5)
	xs := make([]float64, 10_000)
	for i := range xs {
		xs[i] = 40 + rng.NormFloat64()*10
	}
	f, err := kde.NewFull(xs, 3, kde.Gaussian{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += f.Eval(float64(i % 100))
	}
	_ = sink
}

// BenchmarkSQLParse measures parsing of a bounded paper-style query.
func BenchmarkSQLParse(b *testing.B) {
	const q = "SELECT COUNT(*), AVG(r) AS m FROM PhotoObjAll WHERE type = 'GALAXY' AND fGetNearbyObjEq(185, 0, 3) WITHIN ERROR 0.05 CONFIDENCE 0.99"
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDB builds a loaded DB once per benchmark binary.
func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db := Open(WithCostModel(engine.CostModel{NsPerRow: 15, FixedNs: 5000}), WithSeed(6))
	sky, err := skyserver.New(skyserver.DefaultConfig(0))
	if err != nil {
		b.Fatal(err)
	}
	fact, err := sky.Catalog.Get("PhotoObjAll")
	if err != nil {
		b.Fatal(err)
	}
	if err := db.AttachTable(fact); err != nil {
		b.Fatal(err)
	}
	if err := db.BuildImpressions("PhotoObjAll", ImpressionConfig{
		Sizes: []int{rows / 10, rows / 100}, Policy: Uniform,
	}); err != nil {
		b.Fatal(err)
	}
	gen := sky.Generator(nil)
	if err := db.Load("PhotoObjAll", gen.NextBatch(rows)); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkExecExact measures a full exact aggregate over 100k rows.
func BenchmarkExecExact(b *testing.B) {
	db := benchDB(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("SELECT AVG(r) AS v FROM PhotoObjAll WHERE ra BETWEEN 150 AND 180"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecErrorBounded measures the same aggregate under a 5%
// quality bound (answered from an impression layer).
func BenchmarkExecErrorBounded(b *testing.B) {
	db := benchDB(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("SELECT AVG(r) AS v FROM PhotoObjAll WHERE ra BETWEEN 150 AND 180 WITHIN ERROR 0.05"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecTimeBounded measures the same aggregate under a 100µs
// runtime bound.
func BenchmarkExecTimeBounded(b *testing.B) {
	db := benchDB(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("SELECT AVG(r) AS v FROM PhotoObjAll WHERE ra BETWEEN 150 AND 180 WITHIN TIME 100us"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §3) ----------------------------------------

// BenchmarkAblationFaithfulVsCorrectedSlot quantifies the throughput
// difference between the paper's verbatim shared-random victim slot and
// the corrected independent slot (the distributional difference is
// asserted in reservoir tests).
func BenchmarkAblationFaithfulVsCorrectedSlot(b *testing.B) {
	for _, faithful := range []bool{true, false} {
		name := "corrected"
		if faithful {
			name = "faithful"
		}
		b.Run(name, func(b *testing.B) {
			s, err := reservoir.NewBiased[int32](4096, func(int32) float64 { return 1 }, faithful, xrand.New(7))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Offer(int32(i))
			}
		})
	}
}

// BenchmarkAblationBinnedBandwidth sweeps β to show the f̆ cost/fidelity
// trade (cost only here; fidelity asserted in kde tests).
func BenchmarkAblationBinnedBandwidth(b *testing.B) {
	rng := xrand.New(8)
	for _, beta := range []int{10, 30, 100, 300} {
		b.Run(fmt.Sprintf("beta%d", beta), func(b *testing.B) {
			hist := stats.MustNewHistogram(0, 100, beta)
			for i := 0; i < 10_000; i++ {
				hist.Observe(40 + rng.NormFloat64()*10)
			}
			kd, err := kde.NewBinned(hist, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			sink := 0.0
			for i := 0; i < b.N; i++ {
				sink += kd.Eval(float64(i % 100))
			}
			_ = sink
		})
	}
}

// BenchmarkAblationRecyclerOnOff measures repeated predicate evaluation
// with and without the intermediate recycler.
func BenchmarkAblationRecyclerOnOff(b *testing.B) {
	sky, err := skyserver.Generate(skyserver.DefaultConfig(100_000))
	if err != nil {
		b.Fatal(err)
	}
	pred := skyserver.FGetNearbyObjEq(165, 20, 3)
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pred.Filter(sky.PhotoObjAll, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		rec, err := recycler.New(recycler.DefaultBudget)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, _, err := rec.Filter(sky.PhotoObjAll, pred, engine.ExecOptions{Parallelism: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkImpressionOfferUniform measures the per-tuple load-path cost
// of maintaining a uniform impression.
func BenchmarkImpressionOfferUniform(b *testing.B) {
	sky, err := skyserver.Generate(skyserver.DefaultConfig(1000))
	if err != nil {
		b.Fatal(err)
	}
	im, err := impression.New(sky.PhotoObjAll, impression.Config{Name: "u", Size: 512, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im.Offer(int32(i % 1000))
	}
}

// BenchmarkImpressionOfferBiased measures the per-tuple load-path cost
// of maintaining a biased impression (f̆ evaluation included).
func BenchmarkImpressionOfferBiased(b *testing.B) {
	sky, err := skyserver.Generate(skyserver.DefaultConfig(1000))
	if err != nil {
		b.Fatal(err)
	}
	logger, err := workload.NewLogger([]workload.AttrSpec{
		{Name: "ra", Min: 120, Max: 240, Beta: 30},
	}, false)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(10)
	for i := 0; i < 400; i++ {
		logger.LogPoints([]expr.Point{{Attr: "ra", Value: 160 + rng.NormFloat64()*5}})
	}
	im, err := impression.New(sky.PhotoObjAll, impression.Config{
		Name: "b", Size: 512, Policy: impression.Biased,
		Logger: logger, Attrs: []string{"ra"}, Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im.Offer(int32(i % 1000))
	}
}

// BenchmarkLoadPath measures end-to-end nightly loading with a 3-layer
// hierarchy attached (rows/op reported through custom metric).
func BenchmarkLoadPath(b *testing.B) {
	sky, err := skyserver.New(skyserver.DefaultConfig(0))
	if err != nil {
		b.Fatal(err)
	}
	db := Open(WithCostModel(engine.CostModel{NsPerRow: 15, FixedNs: 5000}))
	fact, _ := sky.Catalog.Get("PhotoObjAll")
	if err := db.AttachTable(fact); err != nil {
		b.Fatal(err)
	}
	if err := db.BuildImpressions("PhotoObjAll", ImpressionConfig{
		Sizes: []int{10_000, 1_000, 100}, Policy: Uniform,
	}); err != nil {
		b.Fatal(err)
	}
	gen := sky.Generator(nil)
	const batchSize = 10_000
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := db.Load("PhotoObjAll", gen.NextBatch(batchSize)); err != nil {
			b.Fatal(err)
		}
	}
	if b.N > 0 {
		perRow := float64(time.Since(start).Nanoseconds()) / float64(b.N*batchSize)
		b.ReportMetric(perRow, "ns/row")
	}
}

// --- Morsel-driven parallel executor ---------------------------------

// scanTable builds the 1M-row synthetic scan target shared by the
// parallel-executor benchmarks (built once per benchmark binary).
var scanTable = struct {
	once sync.Once
	tb   *table.Table
}{}

func benchScanTable(b *testing.B) *table.Table {
	b.Helper()
	scanTable.once.Do(func() {
		const n = 1_000_000
		xs := make([]float64, n)
		vs := make([]float64, n)
		gs := make([]int64, n)
		state := uint64(0x9E3779B97F4A7C15)
		for i := 0; i < n; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			xs[i] = float64(state%1_000_003) / 1_000_003
			vs[i] = float64(int64(state>>20)%2001-1000) / 7
			gs[i] = int64(state>>61) % 8
		}
		tb := table.MustNew("scan", table.Schema{
			{Name: "x", Type: column.Float64},
			{Name: "v", Type: column.Float64},
			{Name: "g", Type: column.Int64},
		})
		if err := tb.AppendColumns([]column.Column{
			column.NewFloat64From("x", xs),
			column.NewFloat64From("v", vs),
			column.NewInt64From("g", gs),
		}); err != nil {
			panic(err)
		}
		scanTable.tb = tb
	})
	return scanTable.tb
}

// BenchmarkParallelFilteredAgg measures the tentpole hot path — a
// filtered AVG over 1M rows — at 1/2/4/8 workers. The workers1 case is
// the sequential baseline; speedup at workersN vs workers1 is the
// morsel executor's scaling figure (bounded by available cores).
func BenchmarkParallelFilteredAgg(b *testing.B) {
	tb := benchScanTable(b)
	q := engine.Query{
		Table: "scan",
		Where: expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 0.25, Hi: 0.75},
		Aggs:  []engine.AggSpec{{Func: engine.Avg, Arg: expr.ColRef{Name: "v"}, Alias: "m"}},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			opts := engine.ExecOptions{Parallelism: workers}
			b.SetBytes(int64(tb.Len()) * 16) // two float64 columns touched
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.RunOnOpts(tb, q, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelGroupBy measures the per-morsel hash-grouping path
// (filter + GROUP BY + two aggregates over 1M rows) at 1/2/4/8 workers.
func BenchmarkParallelGroupBy(b *testing.B) {
	tb := benchScanTable(b)
	q := engine.Query{
		Table:   "scan",
		Where:   expr.Cmp{Op: vec.Gt, Left: expr.ColRef{Name: "x"}, Right: 0.1},
		GroupBy: "g",
		Aggs: []engine.AggSpec{
			{Func: engine.Count},
			{Func: engine.Avg, Arg: expr.ColRef{Name: "v"}, Alias: "m"},
		},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			opts := engine.ExecOptions{Parallelism: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.RunOnOpts(tb, q, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelProjectionFilter measures the parallel-filter +
// sequential-materialise projection path at 1/2/4/8 workers.
func BenchmarkParallelProjectionFilter(b *testing.B) {
	tb := benchScanTable(b)
	q := engine.Query{
		Table:  "scan",
		Where:  expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 0.495, Hi: 0.505},
		Select: []string{"x", "v"},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			opts := engine.ExecOptions{Parallelism: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.RunOnOpts(tb, q, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSelectiveFilterSweep measures the range-native scan path at
// three predicate selectivities over 1M rows (filtered COUNT + SUM).
// Run with -benchmem: allocated bytes/op is the headline figure — the
// sel-gather path paid a ~256KB index vector per 64K morsel before the
// range refactor; the range kernels + scratch pool should hold the
// whole scan near zero.
func BenchmarkSelectiveFilterSweep(b *testing.B) {
	tb := benchScanTable(b)
	// x is uniform on [0,1): the Between width is the selectivity.
	for _, sv := range []struct {
		name  string
		width float64
	}{
		{"sel0.1pct", 0.001},
		{"sel1pct", 0.01},
		{"sel50pct", 0.5},
	} {
		q := engine.Query{
			Table: "scan",
			Where: expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 0.25, Hi: 0.25 + sv.width},
			Aggs: []engine.AggSpec{
				{Func: engine.Count},
				{Func: engine.Sum, Arg: expr.ColRef{Name: "v"}, Alias: "s"},
			},
		}
		b.Run(sv.name, func(b *testing.B) {
			opts := engine.ExecOptions{Parallelism: 4}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.RunOnOpts(tb, q, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// zoneBenchTable holds 1M rows with the same values clustered (xc =
// row index) and shuffled (xs = a permutation of the same domain), so
// the pruned and unpruned arms of BenchmarkZoneMapPruning do identical
// per-row work and differ only in what zone maps can prove.
var zoneBenchTable = struct {
	once sync.Once
	tb   *table.Table
}{}

func benchZoneTable(b *testing.B) *table.Table {
	b.Helper()
	zoneBenchTable.once.Do(func() {
		const n = 1 << 20 // 16 zone granules
		xc := make([]float64, n)
		xs := make([]float64, n)
		vs := make([]float64, n)
		for i := 0; i < n; i++ {
			xc[i] = float64(i)
			// A fixed odd multiplier mod 2^20 is a bijection: same value
			// set as xc, maximally de-clustered.
			xs[i] = float64((i * 1664525) & (n - 1))
			vs[i] = float64(i%4099) / 4099
		}
		tb := table.MustNew("zonescan", table.Schema{
			{Name: "xc", Type: column.Float64},
			{Name: "xs", Type: column.Float64},
			{Name: "v", Type: column.Float64},
		})
		if err := tb.AppendColumns([]column.Column{
			column.NewFloat64From("xc", xc),
			column.NewFloat64From("xs", xs),
			column.NewFloat64From("v", vs),
		}); err != nil {
			panic(err)
		}
		zoneBenchTable.tb = tb
	})
	return zoneBenchTable.tb
}

// BenchmarkZoneMapPruning measures morsel skipping on clustered data:
// the same one-granule range predicate over a clustered column (zone
// maps skip 15 of 16 morsels) and over a shuffled copy of the same
// values (every granule spans the domain — nothing prunes). The
// "morsels" metric reports how many morsels each arm evaluated.
func BenchmarkZoneMapPruning(b *testing.B) {
	tb := benchZoneTable(b)
	for _, arm := range []struct{ name, col string }{
		{"clustered", "xc"},
		{"shuffled", "xs"},
	} {
		q := engine.Query{
			Table: "zonescan",
			Where: expr.Between{Expr: expr.ColRef{Name: arm.col}, Lo: 131072, Hi: 196607},
			Aggs: []engine.AggSpec{
				{Func: engine.Count},
				{Func: engine.Sum, Arg: expr.ColRef{Name: "v"}, Alias: "s"},
			},
		}
		b.Run(arm.name, func(b *testing.B) {
			opts := engine.ExecOptions{Parallelism: 4}
			b.ReportAllocs()
			b.ResetTimer()
			var evaluated, morsels int
			for i := 0; i < b.N; i++ {
				res, err := engine.RunOnOpts(tb, q, opts)
				if err != nil {
					b.Fatal(err)
				}
				evaluated = res.Stats.Morsels - res.Stats.SkippedMorsels
				morsels = res.Stats.Morsels
			}
			if b.N > 0 {
				b.ReportMetric(float64(evaluated), "morsels-evaluated")
				b.ReportMetric(float64(morsels), "morsels-total")
			}
		})
	}
}

// BenchmarkAblationJointVsMarginalBias compares the per-offer cost of
// the correlation-aware joint (2-D) bias against the marginal
// (geometric-mean) bias; the cross-product suppression itself is
// asserted in the impression tests.
func BenchmarkAblationJointVsMarginalBias(b *testing.B) {
	sky, err := skyserver.Generate(skyserver.DefaultConfig(1000))
	if err != nil {
		b.Fatal(err)
	}
	mkLogger := func(joint bool) *workload.Logger {
		logger, err := workload.NewLogger([]workload.AttrSpec{
			{Name: "ra", Min: 120, Max: 240, Beta: 30},
			{Name: "dec", Min: 0, Max: 60, Beta: 30},
		}, false)
		if err != nil {
			b.Fatal(err)
		}
		if joint {
			if err := logger.TrackJoint("ra", "dec", 30, 30); err != nil {
				b.Fatal(err)
			}
		}
		rng := xrand.New(12)
		for i := 0; i < 400; i++ {
			logger.LogPoints([]expr.Point{
				{Attr: "ra", Value: 160 + rng.NormFloat64()*5},
				{Attr: "dec", Value: 20 + rng.NormFloat64()*5},
			})
		}
		return logger
	}
	for _, joint := range []bool{false, true} {
		name := "marginal"
		if joint {
			name = "joint"
		}
		b.Run(name, func(b *testing.B) {
			im, err := impression.New(sky.PhotoObjAll, impression.Config{
				Name: name, Size: 256, Policy: impression.Biased,
				Logger: mkLogger(joint), Attrs: []string{"ra", "dec"},
				Joint: joint, Seed: 13,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				im.Offer(int32(i % 1000))
			}
		})
	}
}
