package sciborq

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"sciborq/internal/skyserver"
)

// The end-to-end SQL grid: {Uniform, LastSeen, Biased} × {WITHIN ERROR,
// WITHIN TIME (tight and generous), both, neither} × {COUNT, SUM, AVG,
// MIN, MAX, STDDEV}, asserting through DB.Exec that
//
//   - bounded answers fall inside their reported confidence intervals
//     against the exact answers,
//   - BoundMet / Layer / Exact are coherent with each other,
//   - results are bit-identical at workers 1 and 4.
//
// Layer picks are deterministic by construction: the tight budget's
// MaxRowsWithin is 0 (smallest-layer fallback regardless of the
// learned per-row rate) and the generous budget fits the base table at
// any plausible learned rate — so the grid is stable run to run even
// though TimeBounded feeds latencies back into the cost model.

const (
	gridObjects = 20_000
	gridWhere   = "WHERE ra BETWEEN 150 AND 210"
	tightTime   = "1us"
	looseTime   = "5s"
)

// gridDB is openSky with explicit parallelism, so the workers-1 and
// workers-4 databases are built from identical data, seeds and layer
// sizes.
func gridDB(t *testing.T, policy Policy, workers int) *DB {
	t.Helper()
	db := Open(testCost(), WithSeed(42), WithParallelism(workers))
	sky, err := skyserver.Generate(skyserver.DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachTable(sky.PhotoObjAll); err != nil {
		t.Fatal(err)
	}
	if err := db.TrackWorkload("PhotoObjAll",
		Attr{Name: "ra", Min: 120, Max: 240, Beta: 30},
		Attr{Name: "dec", Min: 0, Max: 60, Beta: 30},
	); err != nil {
		t.Fatal(err)
	}
	attrs := []string{"ra", "dec"}
	if policy != Biased {
		attrs = nil
	}
	if err := db.BuildImpressions("PhotoObjAll", ImpressionConfig{
		Sizes:  []int{gridObjects / 10, gridObjects / 100},
		Policy: policy,
		Attrs:  attrs,
		K:      500, D: 1000,
	}); err != nil {
		t.Fatal(err)
	}
	gen := sky.Generator(nil)
	for loaded := 0; loaded < gridObjects; loaded += 5000 {
		if err := db.Load("PhotoObjAll", gen.NextBatch(5000)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// gridAggs names the aggregate list shared by every cell; the aliases
// double as result lookups.
var gridAggs = []struct{ sql, alias string }{
	{"COUNT(*) AS c", "c"},
	{"SUM(r) AS s", "s"},
	{"AVG(r) AS a", "a"},
	{"MIN(r) AS mn", "mn"},
	{"MAX(r) AS mx", "mx"},
	{"STDDEV(r) AS sd", "sd"},
}

// gridBounds names the bound variants of the grid.
var gridBounds = []struct{ name, clause string }{
	{"neither", ""},
	{"error", "WITHIN ERROR 0.15 CONFIDENCE 0.99"},
	{"time-tight", "WITHIN TIME " + tightTime},
	{"time-loose", "WITHIN TIME " + looseTime},
	{"both", "WITHIN ERROR 0.15 CONFIDENCE 0.99 WITHIN TIME " + tightTime},
}

func gridSQL(agg, clause string) string {
	sql := fmt.Sprintf("SELECT %s FROM PhotoObjAll %s", agg, gridWhere)
	if clause != "" {
		sql += " " + clause
	}
	return sql
}

// checkCoherence asserts the answer's bookkeeping is self-consistent.
func checkCoherence(t *testing.T, cell string, res *Result) {
	t.Helper()
	b := res.Bounded
	if b == nil {
		t.Fatalf("%s: no bounded answer", cell)
	}
	if len(b.Trail) == 0 {
		t.Errorf("%s: empty trail", cell)
	}
	if b.Exact != strings.HasPrefix(b.Layer, "base:") {
		t.Errorf("%s: Exact=%t but Layer=%q", cell, b.Exact, b.Layer)
	}
	if b.Layer != b.Trail[len(b.Trail)-1].Layer {
		t.Errorf("%s: Layer %q is not the last trail entry %q", cell, b.Layer, b.Trail[len(b.Trail)-1].Layer)
	}
	for _, e := range b.Estimates {
		if e.Exact && e.RelError() != 0 {
			t.Errorf("%s: exact estimate %s with nonzero error", cell, e.Spec.Name())
		}
		if b.Exact != e.Exact {
			t.Errorf("%s: answer Exact=%t, estimate %s Exact=%t", cell, b.Exact, e.Spec.Name(), e.Exact)
		}
	}
}

// TestSQLGrid runs the full grid on workers-1 and workers-4 databases
// per policy and cross-checks every cell.
func TestSQLGrid(t *testing.T) {
	for _, policy := range []Policy{Uniform, LastSeen, Biased} {
		t.Run(policy.String(), func(t *testing.T) {
			db1 := gridDB(t, policy, 1)
			db4 := gridDB(t, policy, 4)

			// Exact references, one per aggregate.
			exact := map[string]float64{}
			for _, agg := range gridAggs {
				res, err := db1.Exec(gridSQL(agg.sql, ""))
				if err != nil {
					t.Fatal(err)
				}
				v, err := res.Scalar(agg.alias)
				if err != nil {
					t.Fatal(err)
				}
				exact[agg.alias] = v
			}

			for _, bound := range gridBounds {
				for _, agg := range gridAggs {
					cell := fmt.Sprintf("%s/%s/%s", policy, bound.name, agg.alias)
					sql := gridSQL(agg.sql, bound.clause)
					r1, err := db1.Exec(sql)
					if err != nil {
						t.Fatalf("%s: %v", cell, err)
					}
					r4, err := db4.Exec(sql)
					if err != nil {
						t.Fatalf("%s: workers-4: %v", cell, err)
					}
					if bound.clause == "" {
						// Exact path: bit-identical scalars.
						v1, _ := r1.Scalar(agg.alias)
						v4, _ := r4.Scalar(agg.alias)
						if v1 != v4 {
							t.Errorf("%s: workers 1/4 differ: %v vs %v", cell, v1, v4)
						}
						if v1 != exact[agg.alias] {
							t.Errorf("%s: %v, want exact %v", cell, v1, exact[agg.alias])
						}
						continue
					}
					checkCoherence(t, cell, r1)
					checkCoherence(t, cell, r4)

					// Workers 1 vs 4: identical layers and bit-identical
					// estimates (intervals included).
					if r1.Bounded.Layer != r4.Bounded.Layer {
						t.Errorf("%s: layer %q vs %q at workers 1/4", cell, r1.Bounded.Layer, r4.Bounded.Layer)
					}
					if r1.Bounded.BoundMet != r4.Bounded.BoundMet && bound.name != "time-tight" && bound.name != "both" {
						// Tight-budget BoundMet compares wall clock to 1us
						// and may legitimately differ; every other variant
						// must agree.
						t.Errorf("%s: BoundMet %t vs %t", cell, r1.Bounded.BoundMet, r4.Bounded.BoundMet)
					}
					e1, e4 := r1.Bounded.Estimates, r4.Bounded.Estimates
					if len(e1) != 1 || len(e4) != 1 {
						t.Fatalf("%s: estimate counts %d/%d", cell, len(e1), len(e4))
					}
					if e1[0].Value() != e4[0].Value() || e1[0].Interval.HalfWidth != e4[0].Interval.HalfWidth {
						t.Errorf("%s: workers 1/4 estimates differ: %v±%v vs %v±%v", cell,
							e1[0].Value(), e1[0].Interval.HalfWidth, e4[0].Value(), e4[0].Interval.HalfWidth)
					}

					// Bounded answers cover the exact value.
					est := e1[0]
					want := exact[agg.alias]
					if est.Exact {
						if est.Value() != want {
							t.Errorf("%s: exact answer %v, want %v", cell, est.Value(), want)
						}
					} else if hw := est.Interval.HalfWidth; !math.IsInf(hw, 1) {
						if diff := math.Abs(est.Value() - want); diff > hw {
							t.Errorf("%s: |%v - %v| = %v outside ±%v (layer %s)",
								cell, est.Value(), want, diff, hw, r1.Bounded.Layer)
						}
					}

					// Bound-specific coherence.
					switch bound.name {
					case "error":
						if !r1.Bounded.BoundMet {
							t.Errorf("%s: error bound not met despite exact base fallback", cell)
						}
						for _, e := range r1.Bounded.Estimates {
							if e.RelError() > 0.15 {
								t.Errorf("%s: BoundMet with rel error %v > 0.15", cell, e.RelError())
							}
						}
					case "time-loose":
						if !r1.Bounded.Exact {
							t.Errorf("%s: generous budget did not pick the base table (layer %s)", cell, r1.Bounded.Layer)
						}
					case "time-tight":
						if r1.Bounded.Exact {
							t.Errorf("%s: 1us budget picked the base table", cell)
						}
						if r1.Bounded.Trail[0].Rows != gridObjects/100 {
							t.Errorf("%s: tight budget ran on %d rows, want smallest layer %d",
								cell, r1.Bounded.Trail[0].Rows, gridObjects/100)
						}
					}
				}
			}

			// The hierarchy was never materialised by any of the above:
			// bounded executions run selection scans over base snapshots.
			for _, im := range db1.Hierarchy("PhotoObjAll").Layers() {
				if im.Len() == 0 {
					t.Errorf("layer %s is empty", im.Name())
				}
			}
		})
	}
}

// TestSQLGridAllAggregatesOneStatement runs the whole aggregate list in
// one bounded statement per bound variant — the multi-aggregate shape
// of the paper's example queries — and checks escalation lands on base
// data whenever an unboundable aggregate (MIN/MAX/STDDEV) rides along
// with an error bound.
func TestSQLGridAllAggregatesOneStatement(t *testing.T) {
	db := gridDB(t, Uniform, 4)
	var aggList []string
	for _, a := range gridAggs {
		aggList = append(aggList, a.sql)
	}
	sql := fmt.Sprintf("SELECT %s FROM PhotoObjAll %s WITHIN ERROR 0.15 CONFIDENCE 0.99",
		strings.Join(aggList, ", "), gridWhere)
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bounded == nil || !res.Bounded.Exact {
		t.Fatalf("error-bounded MIN/MAX/STDDEV must escalate to base, got layer %q", res.Bounded.Layer)
	}
	if !res.Bounded.BoundMet {
		t.Error("bound not met on exact data")
	}
	ref, err := db.Exec(fmt.Sprintf("SELECT %s FROM PhotoObjAll %s", strings.Join(aggList, ", "), gridWhere))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range gridAggs {
		got, err := res.Scalar(a.alias)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Scalar(a.alias)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: %v, want %v", a.alias, got, want)
		}
	}
}
