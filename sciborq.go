// Package sciborq is a reproduction of "SciBORQ: Scientific data
// management with Bounds On Runtime and Quality" (Sidirourgos, Kersten,
// Boncz — CIDR 2011): a data-exploration engine for append-only science
// warehouses that answers queries from multi-layer, workload-biased
// samples called impressions, under user-specified bounds on runtime
// ("WITHIN TIME 5ms") or result quality ("WITHIN ERROR 0.05 CONFIDENCE
// 0.95").
//
// The DB type is the public façade. A typical session:
//
//	db := sciborq.Open()
//	db.AttachTable(factTable)
//	db.TrackWorkload("PhotoObjAll",
//	    sciborq.Attr{Name: "ra", Min: 0, Max: 360, Beta: 30},
//	    sciborq.Attr{Name: "dec", Min: -90, Max: 90, Beta: 30})
//	db.BuildImpressions("PhotoObjAll", sciborq.ImpressionConfig{
//	    Sizes: []int{100000, 10000, 1000}, Policy: sciborq.Biased,
//	    Attrs: []string{"ra", "dec"},
//	})
//	db.Load("PhotoObjAll", nightlyRows) // impressions maintained in-line
//	res, err := db.Exec(`SELECT AVG(r) FROM PhotoObjAll
//	    WHERE fGetNearbyObjEq(185, 0, 3) WITHIN ERROR 0.05`)
//
// # Concurrency model
//
// Query execution is morsel-driven and parallel by default: every scan
// is split into fixed-size morsels (64K rows), a worker pool sized by
// GOMAXPROCS pulls morsels from a shared queue, evaluates the predicate
// and folds partial aggregate states (COUNT/SUM/AVG/MIN/MAX/STDDEV and
// per-morsel GROUP BY hash tables), and the partials merge in ascending
// morsel order. Because the merge order depends only on the morsel
// layout — never on worker scheduling — results are bit-for-bit
// reproducible at every parallelism level, floating point included.
// WithParallelism(1) forces sequential execution; the cost model that
// drives WITHIN TIME layer picking is calibrated for the configured
// parallelism so time promises track the executor's real rows/sec.
//
// Bounded queries execute impressions natively: each layer is a sorted
// row-position view (impression.View) scanned directly against a base
// snapshot through the same morsel machinery (engine.FilterSel), with
// zone maps skipping granules no sampled position lands in. Loads
// running concurrently with bounded queries are safe — every
// escalation rung describes the one snapshot taken for the query, and
// layer views are clamped to it.
//
// # Serving and multi-tenancy
//
// ExecContext ties a query to a context: cancelling it (client
// disconnect, deadline) aborts the running scan cooperatively at the
// next morsel boundary and frees the worker pool. ExecTenant
// additionally routes the query's selection caching to a per-tenant
// recycler partition (WithTenantRecyclerBudget, WithMaxTenants), so
// concurrent tenants cannot evict each other's warm working sets.
// SetLoadProbe feeds live concurrency and queue wait into WITHIN TIME
// pricing — under load the executor picks smaller layers so the time
// promise still holds. internal/server + cmd/sciborqd package this as
// an HTTP/JSON query service (see docs/SERVER.md).
//
// # Local verification
//
// The Makefile mirrors CI exactly: `make build`, `make test`,
// `make race`, `make bench`, `make fmt`, and `make vet` run the same
// commands as .github/workflows/ci.yml, so a green local run means a
// green pipeline.
package sciborq

import (
	"fmt"
	"path/filepath"
	"sync"

	"sciborq/internal/bounded"
	"sciborq/internal/column"
	"sciborq/internal/engine"
	"sciborq/internal/faultinject"
	"sciborq/internal/governor"
	"sciborq/internal/impression"
	"sciborq/internal/loader"
	"sciborq/internal/plancache"
	"sciborq/internal/recycler"
	"sciborq/internal/segment"
	"sciborq/internal/sqlparse"
	"sciborq/internal/table"
	"sciborq/internal/workload"
)

// Re-exported names so that library users need only this package for
// common flows.
type (
	// Schema describes a table's columns.
	Schema = table.Schema
	// ColumnDef is one column of a Schema.
	ColumnDef = table.ColumnDef
	// Row is one tuple (float64, int64, string, or bool per column).
	Row = table.Row
	// Attr declares a tracked workload attribute.
	Attr = workload.AttrSpec
	// Policy selects an impression's sampling focus.
	Policy = impression.Policy
)

// Impression focus policies.
const (
	Uniform  = impression.Uniform
	LastSeen = impression.LastSeen
	Biased   = impression.Biased
)

// Column types.
const (
	Float64 = column.Float64
	Int64   = column.Int64
	String  = column.String
	Bool    = column.Bool
)

// DB is a SciBORQ database: a catalog of append-only tables, per-table
// workload loggers, impression hierarchies maintained during loads, and
// a bounded query executor.
type DB struct {
	mu          sync.Mutex
	catalog     *table.Catalog
	loaders     map[string]*loader.Loader
	loggers     map[string]*workload.Logger
	hiers       map[string]*impression.Hierarchy
	execs       map[string]*bounded.Executor
	recPool     *recycler.Pool     // nil when disabled
	plans       *plancache.Cache   // nil when disabled
	gov         *governor.Governor // nil when disabled
	stores      map[string]*segment.Store
	granules    *segment.Cache // nil unless WithDataDir
	dataDir     string
	granBytes   int64
	sealRows    int
	planBytes   int64
	recBytes    int64
	govBytes    int64
	tenantBytes int64
	maxTenants  int
	loadProbe   func() LoadInfo
	cost        engine.CostModel
	opts        engine.ExecOptions
	seed        uint64
}

// LoadInfo reports live serving-layer contention to the WITHIN TIME
// cost model; see DB.SetLoadProbe and bounded.LoadInfo.
type LoadInfo = bounded.LoadInfo

// Option customises Open.
type Option func(*DB)

// WithCostModel installs a pre-calibrated cost model (the default runs a
// quick on-machine calibration).
func WithCostModel(m engine.CostModel) Option {
	return func(db *DB) { db.cost = m }
}

// WithSeed fixes the seed for all impression sampling.
func WithSeed(seed uint64) Option {
	return func(db *DB) { db.seed = seed }
}

// WithParallelism sets the number of scan workers for query execution.
// The default (0) is one worker per CPU (GOMAXPROCS); 1 forces
// sequential execution. Results are identical at every setting — only
// latency changes.
func WithParallelism(workers int) Option {
	return func(db *DB) { db.opts.Parallelism = workers }
}

// WithExecOptions installs a full execution configuration (worker count
// and morsel granule) for query execution and cost calibration.
func WithExecOptions(opts engine.ExecOptions) Option {
	return func(db *DB) { db.opts = opts }
}

// WithRecyclerBudget sets the byte budget of the selection recycler —
// the §3.3-style cache that serves repeated and refined WHERE
// predicates without re-scanning. Selections charge 4 bytes per cached
// row position and evict LRU-by-bytes. Zero or negative disables the
// recycler entirely (every query re-filters from scratch); the default
// is recycler.DefaultBudget (32 MiB). The budget configured here backs
// the shared default partition; named tenants (ExecTenant) get their
// own partitions sized by WithTenantRecyclerBudget.
func WithRecyclerBudget(bytes int64) Option {
	return func(db *DB) { db.recBytes = bytes }
}

// WithPlanCacheBudget sets the byte budget of the statement/plan cache
// — the front-end cache that lets a repeated statement spelling skip
// parsing, canonicalisation, and predicate key encoding entirely, and
// lets literal variants ("x > 5" vs "x > 7") share one cached shape.
// Zero or negative disables the cache (every query runs the full
// front end); the default is plancache.DefaultBudget (8 MiB).
func WithPlanCacheBudget(bytes int64) Option {
	return func(db *DB) { db.planBytes = bytes }
}

// WithTenantRecyclerBudget sets the per-tenant recycler partition
// budget: every tenant named in ExecTenant gets an isolated selection
// cache of this size, so one tenant's churn cannot evict another's warm
// working set. Zero or negative means recycler.DefaultTenantBudget
// (4 MiB). Has no effect when the recycler is disabled.
func WithTenantRecyclerBudget(bytes int64) Option {
	return func(db *DB) { db.tenantBytes = bytes }
}

// WithMemoryBudget places every cache tier — the plan cache's shape
// templates, its plans, and the recycler's selections — under one
// global memory governor with the given total byte budget. When their
// combined usage crosses the budget's high-water mark the governor
// sheds tiers in fixed priority order (shapes first: cheapest to
// rebuild; recycler selections last: each costs a scan), and bounded
// queries degrade to smaller impression layers before the serving
// layer refuses any work. Zero or negative (the default) disables the
// governor; each cache then enforces only its own private budget.
func WithMemoryBudget(bytes int64) Option {
	return func(db *DB) { db.govBytes = bytes }
}

// WithDataDir makes every attached table durable under dir (one
// subdirectory per table): Load batches are WAL-acknowledged before
// they return, sealed columnar segments with their zone maps survive
// restarts (crash recovery replays the WAL on AttachTable), and column
// storage is served from read-only file mappings so tables can be
// larger than RAM. Empty (the default) keeps the in-memory behaviour.
// See docs/STORAGE.md.
func WithDataDir(dir string) Option {
	return func(db *DB) { db.dataDir = dir }
}

// WithGranuleCacheBudget caps the estimated resident bytes of durable
// tables' hot granules: beyond it, the coldest 64K-row granules are
// advised out of their file mappings and refault from disk on demand.
// Zero or negative (the default) tracks residency without evicting.
// Only meaningful with WithDataDir.
func WithGranuleCacheBudget(bytes int64) Option {
	return func(db *DB) { db.granBytes = bytes }
}

// WithSealRows sets the unsealed-tail row threshold at which durable
// tables seal (sync columns, rewrite the manifest, truncate the WAL).
// Zero or negative means segment.DefaultSealRows. Only meaningful with
// WithDataDir; tests use small values to exercise multi-segment state.
func WithSealRows(n int) Option {
	return func(db *DB) { db.sealRows = n }
}

// WithMaxTenants caps how many named tenant recycler partitions stay
// resident; beyond it the least-recently-used tenant's cache is dropped
// wholesale (selections are recomputable, never data). Zero or negative
// means recycler.DefaultMaxTenants (64). Worst-case recycler memory is
// recyclerBudget + maxTenants × tenantBudget.
func WithMaxTenants(n int) Option {
	return func(db *DB) { db.maxTenants = n }
}

// Open creates an empty database.
func Open(opts ...Option) *DB {
	db := &DB{
		catalog:   table.NewCatalog(),
		loaders:   make(map[string]*loader.Loader),
		loggers:   make(map[string]*workload.Logger),
		hiers:     make(map[string]*impression.Hierarchy),
		execs:     make(map[string]*bounded.Executor),
		stores:    make(map[string]*segment.Store),
		recBytes:  recycler.DefaultBudget,
		planBytes: plancache.DefaultBudget,
		seed:      1,
	}
	for _, o := range opts {
		o(db)
	}
	if db.dataDir != "" {
		db.granules = segment.NewCache(db.granBytes)
	}
	if db.planBytes > 0 {
		// The identity function is bound once so the per-query lookup
		// allocates no closure; Table.ID/Version are allocation-free.
		db.plans = plancache.New(db.planBytes, func(name string) (uint64, uint64, bool) {
			t, err := db.catalog.Get(name)
			if err != nil {
				return 0, 0, false
			}
			return t.ID(), t.Version(), true
		})
	}
	if db.recBytes > 0 {
		pool, err := recycler.NewPool(db.recBytes, db.tenantBytes, db.maxTenants)
		if err != nil {
			panic(err) // positive budget; cannot happen
		}
		db.recPool = pool
	}
	if db.govBytes > 0 {
		// Registration order IS shed priority: shape templates first (a
		// re-fingerprint to rebuild), then plans (one parse each), then
		// recycler selections (a scan each — shed last).
		db.gov = governor.New(db.govBytes)
		if db.plans != nil {
			db.gov.Register("plancache.shapes", db.plans.ShapeUsage, db.plans.ShedShapes)
			db.gov.Register("plancache.plans", db.plans.PlanUsage, db.plans.ShedPlans)
		}
		if db.granules != nil {
			// Hot granules shed before the recycler: releasing one is a
			// page-table zap and a refault later, not a rescan.
			db.gov.Register("storage.granules", db.granules.Usage, db.granules.Shed)
		}
		if db.recPool != nil {
			db.gov.Register("recycler", db.recPool.UsageBytes, db.recPool.Shed)
		}
	}
	if db.cost.NsPerRow <= 0 {
		// Calibrate the configured execution options, so WITHIN TIME
		// layer picks reflect parallel scan throughput.
		db.cost = engine.CalibrateOpts(100_000, db.opts)
	}
	return db
}

// Governor returns the global memory governor (nil unless
// WithMemoryBudget configured one). The serving layer uses it for its
// memory-pressure gate and /stats section; tests use InjectPressure to
// drive the shed and degrade paths.
func (db *DB) Governor() *governor.Governor { return db.gov }

// RecyclerStats reports the shared default recycler partition's
// effectiveness (zero Stats when the recycler is disabled).
func (db *DB) RecyclerStats() recycler.Stats {
	if db.recPool == nil {
		return recycler.Stats{}
	}
	return db.recPool.Default().Stats()
}

// TenantRecyclerStats snapshots every resident recycler partition's
// Stats keyed by tenant (the default partition under ""); nil when the
// recycler is disabled.
func (db *DB) TenantRecyclerStats() map[string]recycler.Stats {
	if db.recPool == nil {
		return nil
	}
	return db.recPool.StatsByTenant()
}

// PlanCacheStats reports the statement/plan cache's aggregate
// effectiveness and residency (zero Stats when disabled).
func (db *DB) PlanCacheStats() plancache.Stats {
	if db.plans == nil {
		return plancache.Stats{}
	}
	return db.plans.Stats()
}

// TenantPlanCacheStats snapshots per-tenant plan-cache counters (the
// default tenant under ""); nil when the cache is disabled.
func (db *DB) TenantPlanCacheStats() map[string]plancache.Stats {
	if db.plans == nil {
		return nil
	}
	return db.plans.StatsByTenant()
}

// CheckSQL reports whether sql is a well-formed statement without
// executing it — the serving layer's pre-admission syntax check. A
// statement already in the plan cache under its exact spelling is
// vouched for without re-parsing; the probe counts nothing, so
// per-tenant cache stats and LRU order reflect only executions.
func (db *DB) CheckSQL(sql string) error {
	if db.plans != nil && db.plans.Contains(sql) {
		return nil
	}
	_, err := sqlparse.Parse(sql)
	return err
}

// recyclerFor resolves the recycler partition a query should use: the
// tenant's own partition, or nil when recycling is disabled.
func (db *DB) recyclerFor(tenant string) *recycler.Recycler {
	if db.recPool == nil {
		return nil
	}
	return db.recPool.For(tenant)
}

// SetLoadProbe installs a contention probe consulted by every WITHIN
// TIME layer pick: the probe reports live in-flight queries and
// observed admission queue wait, and the cost model derates
// accordingly so time promises hold under concurrent load. The serving
// layer (internal/server) wires its admission queue here; library
// embedders running their own scheduler can do the same.
func (db *DB) SetLoadProbe(fn func() LoadInfo) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.loadProbe = fn
	for _, ex := range db.execs {
		ex.SetLoadProbe(fn)
	}
}

// CreateTable adds a new empty table.
func (db *DB) CreateTable(name string, schema Schema) (*table.Table, error) {
	t, err := table.New(name, schema)
	if err != nil {
		return nil, err
	}
	if err := db.AttachTable(t); err != nil {
		return nil, err
	}
	return t, nil
}

// AttachTable registers an existing table (e.g. a generated SkyServer
// catalogue). With WithDataDir configured, the table becomes durable:
// an existing data directory takes precedence over whatever rows t
// holds in memory (crash recovery — the manifest's sealed prefix plus
// the WAL replay are the truth), while a fresh directory imports t's
// current rows as the initial sealed segment.
func (db *DB) AttachTable(t *table.Table) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.catalog.Add(t); err != nil {
		return err
	}
	l, err := loader.New(t)
	if err != nil {
		return err
	}
	if db.dataDir != "" {
		st, err := segment.Open(t, segment.Options{
			Dir:      filepath.Join(db.dataDir, t.Name()),
			SealRows: db.sealRows,
			Cache:    db.granules,
		})
		if err != nil {
			db.catalog.Drop(t.Name())
			return fmt.Errorf("sciborq: attach %q: %w", t.Name(), err)
		}
		db.stores[t.Name()] = st
		l.SetAppender(st)
	}
	db.loaders[t.Name()] = l
	return nil
}

// Recovered reports whether the named table was restored from an
// existing data directory at attach time (false for in-memory tables
// and fresh directories) — the signal daemons use to skip regenerating
// data and backfill impressions instead.
func (db *DB) Recovered(tableName string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	st, ok := db.stores[tableName]
	return ok && st.Recovered()
}

// StorageStats reports durable-storage state for /stats: per-table
// store counters plus the shared granule cache. Nil when WithDataDir is
// not configured.
func (db *DB) StorageStats() *StorageStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.dataDir == "" {
		return nil
	}
	out := &StorageStats{
		Tables: make(map[string]segment.StoreStats, len(db.stores)),
		Cache:  db.granules.Stats(),
	}
	for name, st := range db.stores {
		out.Tables[name] = st.Stats()
	}
	return out
}

// StorageStats is the /stats storage section.
type StorageStats struct {
	Tables map[string]segment.StoreStats `json:"tables"`
	Cache  segment.CacheStats            `json:"granule_cache"`
}

// Close seals and releases every durable table's storage (final
// manifest, file handles, mappings). Call after queries have drained:
// outstanding snapshots hold views into the mappings Close unmaps. A DB
// without WithDataDir has nothing to release; Close is then a no-op.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	var first error
	for _, st := range db.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Table returns a registered table.
func (db *DB) Table(name string) (*table.Table, error) {
	return db.catalog.Get(name)
}

// Tables lists the registered table names.
func (db *DB) Tables() []string { return db.catalog.Names() }

// TrackWorkload starts predicate-set logging for the named table (§4).
// Must be called before BuildImpressions with a Biased policy.
func (db *DB) TrackWorkload(tableName string, attrs ...Attr) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, err := db.catalog.Get(tableName); err != nil {
		return err
	}
	if _, dup := db.loggers[tableName]; dup {
		return fmt.Errorf("sciborq: workload tracking already enabled for %q", tableName)
	}
	lg, err := workload.NewLogger(attrs, true)
	if err != nil {
		return err
	}
	db.loggers[tableName] = lg
	return nil
}

// Logger returns the workload logger of a table (nil if untracked).
func (db *DB) Logger(tableName string) *workload.Logger {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.loggers[tableName]
}

// ImpressionConfig configures a table's impression hierarchy.
type ImpressionConfig struct {
	// Sizes are the layer sizes, largest first (strictly decreasing).
	Sizes []int
	// Policy applies to every layer.
	Policy Policy
	// Attrs are the bias attributes (Biased policy).
	Attrs []string
	// K, D parameterise the LastSeen policy (acceptance K/D).
	K, D float64
	// RefreshEvery controls how often smaller layers are rebuilt from
	// their parent (offers between refreshes; 0 = default 4096).
	RefreshEvery int64
	// Backfill offers all pre-existing rows to the hierarchy.
	Backfill bool
}

// BuildImpressions creates and attaches an impression hierarchy for the
// named table; it is maintained automatically by subsequent Load calls.
func (db *DB) BuildImpressions(tableName string, cfg ImpressionConfig) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	base, err := db.catalog.Get(tableName)
	if err != nil {
		return err
	}
	if _, dup := db.hiers[tableName]; dup {
		return fmt.Errorf("sciborq: impressions already built for %q", tableName)
	}
	if len(cfg.Sizes) == 0 {
		return fmt.Errorf("sciborq: impression config needs at least one layer size")
	}
	layers := make([]*impression.Impression, 0, len(cfg.Sizes))
	for i, size := range cfg.Sizes {
		imCfg := impression.Config{
			Name:   fmt.Sprintf("%s/L%d(%s,%d)", tableName, i, cfg.Policy, size),
			Size:   size,
			Policy: cfg.Policy,
			Seed:   db.seed + uint64(i)*7919,
			Attrs:  cfg.Attrs,
			K:      cfg.K,
			D:      cfg.D,
			Logger: db.loggers[tableName],
		}
		im, err := impression.New(base, imCfg)
		if err != nil {
			return err
		}
		layers = append(layers, im)
	}
	h, err := impression.NewHierarchy(layers, cfg.RefreshEvery)
	if err != nil {
		return err
	}
	if cfg.Backfill {
		db.loaders[tableName].Backfill(h)
		if err := h.Refresh(); err != nil {
			return err
		}
	}
	if err := db.loaders[tableName].Attach(h); err != nil {
		return err
	}
	db.hiers[tableName] = h
	// Any cached bounded executor predates the hierarchy; rebuild it on
	// next use so bounded queries see the new layers.
	delete(db.execs, tableName)
	return nil
}

// Hierarchy returns a table's impression hierarchy (nil if absent).
func (db *DB) Hierarchy(tableName string) *impression.Hierarchy {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.hiers[tableName]
}

// Load appends one batch (a "nightly ingest") to the named table,
// maintaining its impressions in the load path.
func (db *DB) Load(tableName string, rows []Row) error {
	if err := faultinject.Fire(faultinject.PointLoad); err != nil {
		return fmt.Errorf("sciborq: load %q: %w", tableName, err)
	}
	db.mu.Lock()
	l, ok := db.loaders[tableName]
	db.mu.Unlock()
	if !ok {
		return fmt.Errorf("sciborq: no table %q", tableName)
	}
	err := l.LoadBatch(rows)
	if db.plans != nil {
		// The version bumped (even a failed batch may have rolled back
		// through a truncation): every cached plan for this table is
		// stale. Drop eagerly rather than letting each alias miss lazily.
		db.plans.InvalidateTable(tableName)
	}
	if db.gov != nil {
		// Loads are where memory moves fastest (cache invalidations, new
		// selections soon after); recheck pressure here.
		db.gov.CheckNow()
	}
	return err
}

// CostModel returns the active cost model.
func (db *DB) CostModel() engine.CostModel { return db.cost }

// ExecOptions returns the active execution options.
func (db *DB) ExecOptions() engine.ExecOptions { return db.opts }
