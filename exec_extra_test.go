package sciborq

import (
	"strings"
	"testing"

	"sciborq/internal/engine"
)

func TestResultStringTruncatesLongProjections(t *testing.T) {
	db := Open(WithCostModel(engine.CostModel{NsPerRow: 10, FixedNs: 100}))
	if _, err := db.CreateTable("t", Schema{{Name: "x", Type: Float64}}); err != nil {
		t.Fatal(err)
	}
	rows := make([]Row, 50)
	for i := range rows {
		rows[i] = Row{float64(i)}
	}
	if err := db.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT x FROM t")
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	if !strings.Contains(out, "... (50 rows)") {
		t.Fatalf("long result not truncated:\n%s", out)
	}
}

func TestBoundedProjectionWithoutHierarchyFallsToBase(t *testing.T) {
	db := Open(WithCostModel(engine.CostModel{NsPerRow: 10, FixedNs: 100}))
	if _, err := db.CreateTable("t", Schema{{Name: "x", Type: Float64}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Load("t", []Row{{1.0}, {2.0}, {3.0}}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT x FROM t WITHIN TIME 1m")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows == nil || res.Rows.Len() != 3 {
		t.Fatalf("hierless bounded projection = %+v", res)
	}
}

func TestBoundedGroupByRunsExact(t *testing.T) {
	// Bounds on grouped aggregates are not supported by the estimator;
	// the engine runs them exactly rather than failing.
	db := openSky(t, 10000, Uniform)
	res, err := db.Exec("SELECT COUNT(*) AS n FROM PhotoObjAll GROUP BY type WITHIN ERROR 0.1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows == nil || res.Bounded != nil {
		t.Fatal("grouped bounded query should degrade to exact execution")
	}
}

func TestStatementReuse(t *testing.T) {
	db := openSky(t, 10000, Uniform)
	// ExecStatement with a pre-parsed statement is the hot path for
	// repeated exploration queries.
	res1, err := db.Exec("SELECT COUNT(*) AS n FROM PhotoObjAll WHERE ra BETWEEN 150 AND 160")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := db.Exec("SELECT COUNT(*) AS n FROM PhotoObjAll WHERE ra BETWEEN 150 AND 160")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := res1.Scalar("n")
	b, _ := res2.Scalar("n")
	if a != b {
		t.Fatalf("repeated exact query disagreed: %v vs %v", a, b)
	}
}
