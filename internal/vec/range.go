package vec

import "sync"

// This file holds the range-native selection kernels: predicate
// evaluation over a contiguous row window [lo, hi) that appends into a
// caller-provided scratch buffer instead of gathering through an index
// vector. They are the hot path of the morsel executor — one morsel is
// exactly one [lo, hi) window — and are written write-then-advance
// ("branchless"): the candidate row index is stored unconditionally and
// the output cursor advances by the comparison outcome, so the inner
// loop carries no data-dependent branch for the CPU to mispredict.
//
// Every kernel takes dst as reusable scratch (its contents are
// overwritten; only its capacity matters) and returns the filled
// prefix. Pair with SelPool to make steady-state filtering allocation
// free.

// b2i converts a comparison outcome into an output-cursor increment;
// the compiler lowers it to SETcc, keeping selection loops branchless.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// grow returns dst with length n, reallocating only when the scratch
// capacity is insufficient (the once-per-pool-lifetime slow path).
func grow(dst Sel, n int) Sel {
	if cap(dst) < n {
		return make(Sel, n)
	}
	return dst[:n]
}

// SelPool recycles selection-vector scratch across morsels. It is
// backed by sync.Pool, whose per-P caches give each scan worker its own
// free list without cross-worker contention; after the first few
// morsels every Get is served from a worker-local buffer and the scan
// path allocates nothing.
type SelPool struct {
	p     sync.Pool // *Sel boxes holding a reusable buffer
	boxes sync.Pool // spent *Sel boxes awaiting the next Put
}

// Get returns a zero-length selection with capacity >= capacity.
func (sp *SelPool) Get(capacity int) Sel {
	if v := sp.p.Get(); v != nil {
		b := v.(*Sel)
		s := *b
		*b = nil
		sp.boxes.Put(b) // recycle the box so Put never re-allocates it
		if cap(s) >= capacity {
			return s[:0]
		}
	}
	return make(Sel, 0, capacity)
}

// Put returns a selection's backing buffer to the pool for reuse. s
// must not be used by the caller afterwards.
func (sp *SelPool) Put(s Sel) {
	if cap(s) == 0 {
		return
	}
	var b *Sel
	if v := sp.boxes.Get(); v != nil {
		b = v.(*Sel)
	} else {
		b = new(Sel)
	}
	*b = s[:0]
	sp.p.Put(b)
}

// ScratchPool is the package-level scratch pool the expression layer
// draws from; engine workers release morsel selections back into it.
var ScratchPool SelPool

// GetSel returns pooled scratch with at least the given capacity.
func GetSel(capacity int) Sel { return ScratchPool.Get(capacity) }

// PutSel releases a pooled selection obtained from GetSel (directly or
// through a FilterRange implementation). Safe on nil.
func PutSel(s Sel) { ScratchPool.Put(s) }

// SelectFloat64Range writes the rows i in [lo, hi) with data[i] op c
// into dst and returns the filled prefix. NaN values never match any
// operator except Ne, matching SelectFloat64.
func SelectFloat64Range(dst Sel, data []float64, lo, hi int, op CmpOp, c float64) Sel {
	if hi < lo {
		hi = lo
	}
	dst = grow(dst, hi-lo)
	d := data[:hi] // hoist the bound check
	k := 0
	switch op {
	case Eq:
		for i := lo; i < hi; i++ {
			dst[k] = int32(i)
			k += b2i(d[i] == c)
		}
	case Ne:
		for i := lo; i < hi; i++ {
			dst[k] = int32(i)
			k += b2i(d[i] != c)
		}
	case Lt:
		for i := lo; i < hi; i++ {
			dst[k] = int32(i)
			k += b2i(d[i] < c)
		}
	case Le:
		for i := lo; i < hi; i++ {
			dst[k] = int32(i)
			k += b2i(d[i] <= c)
		}
	case Gt:
		for i := lo; i < hi; i++ {
			dst[k] = int32(i)
			k += b2i(d[i] > c)
		}
	case Ge:
		for i := lo; i < hi; i++ {
			dst[k] = int32(i)
			k += b2i(d[i] >= c)
		}
	default:
		return dst[:0]
	}
	return dst[:k]
}

// SelectBetweenFloat64Range writes the rows i in [lo, hi) with
// blo <= data[i] <= bhi (inclusive, SQL BETWEEN) into dst.
func SelectBetweenFloat64Range(dst Sel, data []float64, lo, hi int, blo, bhi float64) Sel {
	if hi < lo {
		hi = lo
	}
	dst = grow(dst, hi-lo)
	d := data[:hi]
	k := 0
	for i := lo; i < hi; i++ {
		dst[k] = int32(i)
		v := d[i]
		k += b2i(v >= blo && v <= bhi)
	}
	return dst[:k]
}

// SelectEqInt32Range writes the rows i in [lo, hi) whose code equals
// (want) or differs from (!want) code into dst — the dictionary-coded
// string comparison over one morsel.
func SelectEqInt32Range(dst Sel, data []int32, lo, hi int, code int32, want bool) Sel {
	if hi < lo {
		hi = lo
	}
	dst = grow(dst, hi-lo)
	d := data[:hi]
	k := 0
	if want {
		for i := lo; i < hi; i++ {
			dst[k] = int32(i)
			k += b2i(d[i] == code)
		}
	} else {
		for i := lo; i < hi; i++ {
			dst[k] = int32(i)
			k += b2i(d[i] != code)
		}
	}
	return dst[:k]
}

// SelectFuncRange writes the rows i in [lo, hi) for which pred returns
// true into dst — the range shape of SelectFunc for predicates with no
// specialised kernel (e.g. the cone's angular separation).
func SelectFuncRange(dst Sel, lo, hi int, pred func(row int32) bool) Sel {
	if hi < lo {
		hi = lo
	}
	dst = grow(dst, hi-lo)
	k := 0
	for i := lo; i < hi; i++ {
		dst[k] = int32(i)
		k += b2i(pred(int32(i)))
	}
	return dst[:k]
}

// FillSelRange writes the full window [lo, hi) into dst — the
// range-native shape of NewSelRange over reusable scratch.
func FillSelRange(dst Sel, lo, hi int) Sel {
	if hi < lo {
		hi = lo
	}
	dst = grow(dst, hi-lo)
	for k := range dst {
		dst[k] = int32(lo + k)
	}
	return dst
}

// AndInto intersects two sorted selections into dst (neither may be
// nil); the allocation-free shape of And for range-filtered inputs.
func AndInto(dst, a, b Sel) Sel {
	dst = grow(dst, min(len(a), len(b)))
	k := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		av, bv := a[i], b[j]
		if av == bv {
			dst[k] = av
			k++
			i++
			j++
			continue
		}
		i += b2i(av < bv)
		j += b2i(av > bv)
	}
	return dst[:k]
}

// OrInto unions two sorted selections into dst (neither may be nil).
func OrInto(dst, a, b Sel) Sel {
	dst = grow(dst, len(a)+len(b))
	k := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst[k] = a[i]
			i++
		case a[i] > b[j]:
			dst[k] = b[j]
			j++
		default:
			dst[k] = a[i]
			i++
			j++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	k += copy(dst[k:], b[j:])
	return dst[:k]
}

// DiffRangeInto writes [lo, hi) \ b into dst, where b is a sorted
// selection within [lo, hi) — the complement of a morsel-local
// selection against its own window (range-native NOT).
func DiffRangeInto(dst Sel, lo, hi int, b Sel) Sel {
	if hi < lo {
		hi = lo
	}
	dst = grow(dst, hi-lo)
	k := 0
	j := 0
	for i := lo; i < hi; i++ {
		for j < len(b) && b[j] < int32(i) {
			j++
		}
		dst[k] = int32(i)
		k += b2i(j >= len(b) || b[j] != int32(i))
	}
	return dst[:k]
}
