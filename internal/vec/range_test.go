package vec

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// selEq treats nil and empty selections as equal.
func selEq(a, b Sel) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestSelectFloat64RangeMatchesSelGather cross-checks every operator of
// the range kernel against the sel-gather kernel over random windows.
func TestSelectFloat64RangeMatchesSelGather(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 1000)
	for i := range data {
		data[i] = rng.Float64()
	}
	data[17] = math.NaN()
	data[512] = 0.5
	for _, op := range []CmpOp{Eq, Ne, Lt, Le, Gt, Ge} {
		for trial := 0; trial < 50; trial++ {
			lo := rng.Intn(len(data) + 1)
			hi := lo + rng.Intn(len(data)+1-lo)
			c := rng.Float64()
			if trial%5 == 0 {
				c = 0.5 // exercise exact equality
			}
			want := SelectFloat64(data, NewSelRange(lo, hi), op, c)
			got := SelectFloat64Range(nil, data, lo, hi, op, c)
			if !selEq(want, got) {
				t.Fatalf("op %s [%d,%d) c=%g: range %v != gather %v", op, lo, hi, c, got, want)
			}
		}
	}
}

// TestSelectBetweenFloat64Range cross-checks the BETWEEN kernel,
// including inclusive endpoints and NaN rejection.
func TestSelectBetweenFloat64Range(t *testing.T) {
	data := []float64{0, 0.25, 0.5, math.NaN(), 0.75, 1}
	got := SelectBetweenFloat64Range(nil, data, 0, len(data), 0.25, 0.75)
	want := Sel{1, 2, 4}
	if !selEq(want, got) {
		t.Fatalf("between = %v, want %v", got, want)
	}
	if got := SelectBetweenFloat64Range(nil, data, 2, 5, 0.25, 0.75); !selEq(got, Sel{2, 4}) {
		t.Fatalf("windowed between = %v, want [2 4]", got)
	}
}

// TestSelectEqInt32Range cross-checks dictionary-code selection for
// both polarities over windows.
func TestSelectEqInt32Range(t *testing.T) {
	data := []int32{3, 1, 3, 2, 3, 1}
	if got := SelectEqInt32Range(nil, data, 0, len(data), 3, true); !selEq(got, Sel{0, 2, 4}) {
		t.Fatalf("eq = %v", got)
	}
	if got := SelectEqInt32Range(nil, data, 1, 5, 3, false); !selEq(got, Sel{1, 3}) {
		t.Fatalf("ne window = %v", got)
	}
}

// TestRangeKernelsEmptyAndInvertedWindows pins the empty-window and
// inverted-window (hi < lo) contracts.
func TestRangeKernelsEmptyAndInvertedWindows(t *testing.T) {
	data := []float64{1, 2, 3}
	if got := SelectFloat64Range(nil, data, 2, 2, Gt, 0); len(got) != 0 {
		t.Fatalf("empty window selected %v", got)
	}
	if got := SelectFloat64Range(nil, data, 3, 1, Gt, 0); len(got) != 0 {
		t.Fatalf("inverted window selected %v", got)
	}
	if got := SelectFuncRange(nil, 1, 1, func(int32) bool { return true }); len(got) != 0 {
		t.Fatalf("empty func window selected %v", got)
	}
}

// TestSetOpsInto cross-checks the into-scratch set operations against
// the allocating originals, including disjoint and nested inputs.
func TestSetOpsInto(t *testing.T) {
	cases := []struct{ a, b Sel }{
		{Sel{}, Sel{}},
		{Sel{1, 3, 5}, Sel{}},
		{Sel{1, 3, 5}, Sel{2, 4, 6}},       // disjoint interleaved
		{Sel{1, 2, 3}, Sel{7, 8, 9}},       // disjoint separated
		{Sel{1, 2, 3, 4}, Sel{2, 3}},       // nested
		{Sel{0, 2, 4, 6}, Sel{0, 2, 4, 6}}, // identical
	}
	for _, c := range cases {
		if got, want := AndInto(nil, c.a, c.b), And(c.a, c.b, 10); !selEq(got, want) {
			t.Errorf("AndInto(%v,%v) = %v, want %v", c.a, c.b, got, want)
		}
		if got, want := OrInto(nil, c.a, c.b), Or(c.a, c.b, 10); !selEq(got, want) {
			t.Errorf("OrInto(%v,%v) = %v, want %v", c.a, c.b, got, want)
		}
		if got, want := DiffRangeInto(nil, 0, 10, c.b), Diff(NewSelRange(0, 10), c.b); !selEq(got, want) {
			t.Errorf("DiffRangeInto(0,10,%v) = %v, want %v", c.b, got, want)
		}
	}
}

// TestDiffEdgeCases pins vec.Diff on empty, full, and disjoint inputs.
func TestDiffEdgeCases(t *testing.T) {
	if got := Diff(Sel{}, Sel{1, 2}); len(got) != 0 {
		t.Fatalf("Diff(empty, b) = %v", got)
	}
	if got := Diff(Sel{1, 2}, Sel{}); !selEq(got, Sel{1, 2}) {
		t.Fatalf("Diff(a, empty) = %v", got)
	}
	if got := Diff(Sel{1, 2, 3}, Sel{1, 2, 3}); len(got) != 0 {
		t.Fatalf("Diff(a, a) = %v", got)
	}
	if got := Diff(Sel{1, 3, 5}, Sel{0, 2, 6}); !selEq(got, Sel{1, 3, 5}) {
		t.Fatalf("Diff disjoint = %v", got)
	}
}

// TestNewSelRangeEdgeCases pins empty, inverted, and full ranges.
func TestNewSelRangeEdgeCases(t *testing.T) {
	if got := NewSelRange(4, 4); len(got) != 0 {
		t.Fatalf("NewSelRange(4,4) = %v", got)
	}
	if got := NewSelRange(5, 3); len(got) != 0 {
		t.Fatalf("NewSelRange(5,3) = %v", got)
	}
	if got := NewSelRange(0, 3); !selEq(got, Sel{0, 1, 2}) {
		t.Fatalf("NewSelRange(0,3) = %v", got)
	}
	if got, want := NewSelRange(0, 6), NewSelAll(6); !selEq(got, Sel(want)) {
		t.Fatalf("full range %v != all %v", got, want)
	}
}

// TestSelPoolReuse proves scratch round-trips through the pool and that
// undersized buffers are regrown rather than reused short.
func TestSelPoolReuse(t *testing.T) {
	var p SelPool
	s := p.Get(64)
	if len(s) != 0 || cap(s) < 64 {
		t.Fatalf("Get(64): len=%d cap=%d", len(s), cap(s))
	}
	s = append(s, 1, 2, 3)
	p.Put(s)
	s2 := p.Get(128)
	if len(s2) != 0 || cap(s2) < 128 {
		t.Fatalf("Get(128) after Put: len=%d cap=%d", len(s2), cap(s2))
	}
	PutSel(nil) // must not panic
}

// TestRangeKernelsZeroAlloc asserts the steady-state scan shape — get
// scratch, run a kernel, release — allocates nothing once the pool is
// warm.
func TestRangeKernelsZeroAlloc(t *testing.T) {
	data := make([]float64, 4096)
	for i := range data {
		data[i] = float64(i) / 4096
	}
	// Warm the pool.
	s := GetSel(len(data))
	PutSel(SelectFloat64Range(s, data, 0, len(data), Lt, 0.5))
	allocs := testing.AllocsPerRun(100, func() {
		s := GetSel(len(data))
		s = SelectFloat64Range(s, data, 0, len(data), Lt, 0.5)
		PutSel(s)
	})
	if allocs > 0 {
		t.Fatalf("steady-state range filter allocates %.1f objects/op, want 0", allocs)
	}
}
