package vec

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewSelAll(t *testing.T) {
	s := NewSelAll(4)
	want := Sel{0, 1, 2, 3}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("NewSelAll(4) = %v, want %v", s, want)
	}
}

func TestSelLen(t *testing.T) {
	if got := Sel(nil).Len(7); got != 7 {
		t.Fatalf("nil Sel Len = %d, want 7", got)
	}
	if got := (Sel{1, 3}).Len(7); got != 2 {
		t.Fatalf("Sel{1,3} Len = %d, want 2", got)
	}
}

func TestAnd(t *testing.T) {
	a := Sel{0, 2, 4, 6}
	b := Sel{2, 3, 4, 5}
	got := And(a, b, 8)
	want := Sel{2, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("And = %v, want %v", got, want)
	}
	if got := And(nil, b, 8); !reflect.DeepEqual(got, b) {
		t.Fatalf("And(nil, b) = %v, want %v", got, b)
	}
	if got := And(a, nil, 8); !reflect.DeepEqual(got, a) {
		t.Fatalf("And(a, nil) = %v, want %v", got, a)
	}
}

func TestOr(t *testing.T) {
	a := Sel{0, 2}
	b := Sel{1, 2, 5}
	got := Or(a, b, 8)
	want := Sel{0, 1, 2, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Or = %v, want %v", got, want)
	}
	if got := Or(nil, b, 8); got != nil {
		t.Fatalf("Or(nil, b) = %v, want nil (all rows)", got)
	}
}

func TestNot(t *testing.T) {
	a := Sel{1, 3}
	got := Not(a, 5)
	want := Sel{0, 2, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Not = %v, want %v", got, want)
	}
	if got := Not(nil, 3); len(got) != 0 {
		t.Fatalf("Not(nil) = %v, want empty", got)
	}
}

func TestDiff(t *testing.T) {
	a := Sel{0, 2, 4, 6, 8}
	b := Sel{2, 6, 7}
	got := Diff(a, b)
	want := Sel{0, 4, 8}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Diff = %v, want %v", got, want)
	}
	if got := Diff(a, Sel{}); !reflect.DeepEqual(got, a) {
		t.Fatalf("Diff(a, empty) = %v, want %v", got, a)
	}
	if got := Diff(a, a); len(got) != 0 {
		t.Fatalf("Diff(a, a) = %v, want empty", got)
	}
	// Diff must agree with the complement-then-intersect formulation
	// the Not predicate previously used.
	if got, want := Diff(a, b), And(Not(b, 9), a, 9); !reflect.DeepEqual(got, want) {
		t.Fatalf("Diff = %v, And(Not) = %v", got, want)
	}
}

func TestDeMorganProperty(t *testing.T) {
	// not(a and b) == not(a) or not(b) over a fixed domain.
	f := func(am, bm uint16) bool {
		const n = 16
		var a, b Sel
		for i := int32(0); i < n; i++ {
			if am&(1<<uint(i)) != 0 {
				a = append(a, i)
			}
			if bm&(1<<uint(i)) != 0 {
				b = append(b, i)
			}
		}
		lhs := Not(And(a, b, n), n)
		rhs := Or(Not(a, n), Not(b, n), n)
		if rhs == nil {
			rhs = NewSelAll(n)
		}
		if len(lhs) != len(rhs) {
			return false
		}
		for i := range lhs {
			if lhs[i] != rhs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectFloat64(t *testing.T) {
	data := []float64{1, 5, 3, 5, 2}
	cases := []struct {
		op   CmpOp
		c    float64
		want Sel
	}{
		{Eq, 5, Sel{1, 3}},
		{Ne, 5, Sel{0, 2, 4}},
		{Lt, 3, Sel{0, 4}},
		{Le, 3, Sel{0, 2, 4}},
		{Gt, 3, Sel{1, 3}},
		{Ge, 3, Sel{1, 2, 3}},
	}
	for _, c := range cases {
		got := SelectFloat64(data, nil, c.op, c.c)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("SelectFloat64(%v, %v) = %v, want %v", c.op, c.c, got, c.want)
		}
	}
}

func TestSelectFloat64WithSel(t *testing.T) {
	data := []float64{1, 5, 3, 5, 2}
	got := SelectFloat64(data, Sel{1, 2, 4}, Ge, 3)
	want := Sel{1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSelectInt64(t *testing.T) {
	data := []int64{10, 20, 30}
	got := SelectInt64(data, nil, Gt, 15)
	want := Sel{1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSelectRangeFloat64(t *testing.T) {
	data := []float64{0, 1, 2, 3, 4}
	got := SelectRangeFloat64(data, nil, 1, 3)
	want := Sel{1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v (half-open)", got, want)
	}
	got = SelectRangeFloat64(data, Sel{0, 2, 4}, 1, 5)
	want = Sel{2, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("with sel: got %v, want %v", got, want)
	}
}

func TestSelectBool(t *testing.T) {
	data := []bool{true, false, true}
	got := SelectBool(data, nil, true)
	want := Sel{0, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestSelectFunc(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	got := SelectFunc(len(data), nil, func(i int32) bool { return data[i] > 2 })
	want := Sel{2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestGather(t *testing.T) {
	f := []float64{10, 11, 12, 13}
	if got := GatherFloat64(f, Sel{0, 3}); !reflect.DeepEqual(got, []float64{10, 13}) {
		t.Fatalf("GatherFloat64 = %v", got)
	}
	got := GatherFloat64(f, nil)
	if !reflect.DeepEqual(got, f) {
		t.Fatalf("GatherFloat64 nil sel = %v", got)
	}
	got[0] = -1
	if f[0] == -1 {
		t.Fatal("GatherFloat64 with nil sel must copy, not alias")
	}
	i := []int64{1, 2, 3}
	if got := GatherInt64(i, Sel{2}); !reflect.DeepEqual(got, []int64{3}) {
		t.Fatalf("GatherInt64 = %v", got)
	}
	x := []int32{5, 6, 7}
	if got := GatherInt32(x, Sel{1}); !reflect.DeepEqual(got, []int32{6}) {
		t.Fatalf("GatherInt32 = %v", got)
	}
}

func TestSums(t *testing.T) {
	f := []float64{1, 2, 3}
	if got := SumFloat64(f, nil); got != 6 {
		t.Fatalf("SumFloat64 = %v", got)
	}
	if got := SumFloat64(f, Sel{0, 2}); got != 4 {
		t.Fatalf("SumFloat64 sel = %v", got)
	}
	i := []int64{1, 2, 3}
	if got := SumInt64(i, nil); got != 6 {
		t.Fatalf("SumInt64 = %v", got)
	}
	if got := SumInt64(i, Sel{1}); got != 2 {
		t.Fatalf("SumInt64 sel = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	f := []float64{3, 1, 4, 1, 5}
	lo, hi, ok := MinMaxFloat64(f, nil)
	if !ok || lo != 1 || hi != 5 {
		t.Fatalf("MinMax = %v %v %v", lo, hi, ok)
	}
	lo, hi, ok = MinMaxFloat64(f, Sel{0, 2})
	if !ok || lo != 3 || hi != 4 {
		t.Fatalf("MinMax sel = %v %v %v", lo, hi, ok)
	}
	if _, _, ok := MinMaxFloat64(f, Sel{}); ok {
		t.Fatal("MinMax of empty selection reported ok")
	}
}

func TestSelectResultSorted(t *testing.T) {
	// All Select kernels must return sorted selections so And/Or merges work.
	data := make([]float64, 100)
	for i := range data {
		data[i] = float64(i % 7)
	}
	got := SelectFloat64(data, nil, Eq, 3)
	if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] }) {
		t.Fatal("selection not sorted")
	}
}

func TestCmpOpString(t *testing.T) {
	ops := map[CmpOp]string{Eq: "=", Ne: "<>", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}
	for op, s := range ops {
		if op.String() != s {
			t.Fatalf("op %d String = %q, want %q", op, op.String(), s)
		}
	}
}
