package vec

import (
	"math"
	"math/rand"
	"testing"
)

// randomSel returns a sorted random subset of [0, n).
func randomSel(rng *rand.Rand, n int, p float64) Sel {
	s := make(Sel, 0, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			s = append(s, int32(i))
		}
	}
	return s
}

// TestSelectSelMatchesSelectRestricted cross-checks every sel kernel
// against the reference Select* functions restricted to the same
// selection.
func TestSelectSelMatchesSelectRestricted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 4096
	data := make([]float64, n)
	codes := make([]int32, n)
	for i := range data {
		data[i] = rng.NormFloat64()
		codes[i] = int32(rng.Intn(5))
	}
	data[17] = math.NaN()
	for _, p := range []float64{0, 0.03, 0.5, 1} {
		sel := randomSel(rng, n, p)
		for op := Eq; op <= Ge; op++ {
			got := SelectFloat64Sel(nil, data, sel, op, 0.25)
			want := SelectFloat64(data, sel, op, 0.25)
			assertSelEqual(t, "SelectFloat64Sel", got, want)
		}
		gotB := SelectBetweenFloat64Sel(nil, data, sel, -0.5, 0.5)
		wantB := SelectFunc(n, sel, func(i int32) bool {
			return data[i] >= -0.5 && data[i] <= 0.5
		})
		assertSelEqual(t, "SelectBetweenFloat64Sel", gotB, wantB)
		for _, want := range []bool{true, false} {
			gotE := SelectEqInt32Sel(nil, codes, sel, 2, want)
			w := want
			wantE := SelectFunc(n, sel, func(i int32) bool { return (codes[i] == 2) == w })
			assertSelEqual(t, "SelectEqInt32Sel", gotE, wantE)
		}
	}
}

// TestDiffIntoMatchesDiff cross-checks the pooled set difference.
func TestDiffIntoMatchesDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		a := randomSel(rng, 512, rng.Float64())
		b := randomSel(rng, 512, rng.Float64())
		got := DiffInto(nil, a, b)
		want := Diff(a, b)
		assertSelEqual(t, "DiffInto", got, want)
	}
}

// TestCopyInto checks scratch rehoming keeps content and independence.
func TestCopyInto(t *testing.T) {
	src := Sel{3, 5, 9}
	got := CopyInto(nil, src)
	assertSelEqual(t, "CopyInto", got, src)
	got[0] = 42
	if src[0] != 3 {
		t.Fatal("CopyInto aliased its source")
	}
	if empty := CopyInto(nil, nil); len(empty) != 0 {
		t.Fatalf("CopyInto(nil) = %v, want empty", empty)
	}
}

func assertSelEqual(t *testing.T, name string, got, want Sel) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows, want %d (got %v want %v)", name, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d = %d, want %d", name, i, got[i], want[i])
		}
	}
}
