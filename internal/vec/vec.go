// Package vec provides the vectorised kernels underneath the SciBORQ
// column store: typed value vectors, selection vectors, and the
// filter/gather/arithmetic primitives the execution engine is built from.
//
// The design follows the MonetDB/X100 column-at-a-time model the paper
// assumes: operators consume whole columns (or selections over them) and
// materialise whole intermediate results, which is what makes it possible
// to re-target a running query at a different impression layer.
package vec

// Sel is a selection vector: a sorted list of row positions into a column.
// A nil Sel means "all rows".
type Sel []int32

// NewSelAll returns a selection covering rows [0, n).
func NewSelAll(n int) Sel {
	s := make(Sel, n)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}

// NewSelRange returns a selection covering rows [lo, hi) — the base
// selection of one morsel in the parallel executor.
func NewSelRange(lo, hi int) Sel {
	if hi < lo {
		hi = lo
	}
	s := make(Sel, hi-lo)
	for i := range s {
		s[i] = int32(lo + i)
	}
	return s
}

// Len returns the number of selected rows, given the column length n
// (needed because a nil Sel means all n rows).
func (s Sel) Len(n int) int {
	if s == nil {
		return n
	}
	return len(s)
}

// And intersects two sorted selection vectors. Either may be nil (= all
// rows of a column of length n).
func And(a, b Sel, n int) Sel {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(Sel, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Or unions two sorted selection vectors. Either may be nil (= all rows),
// in which case the result is all rows.
func Or(a, b Sel, n int) Sel {
	if a == nil || b == nil {
		return nil
	}
	out := make(Sel, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Diff returns the sorted set difference a \ b of two sorted selection
// vectors (neither may be nil).
func Diff(a, b Sel) Sel {
	out := make(Sel, 0, len(a)-min(len(a), len(b))+4)
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j < len(b) && b[j] == v {
			j++
			continue
		}
		out = append(out, v)
	}
	return out
}

// Not complements a sorted selection vector with respect to [0, n).
func Not(a Sel, n int) Sel {
	if a == nil {
		return Sel{}
	}
	out := make(Sel, 0, n-len(a))
	j := 0
	for i := int32(0); i < int32(n); i++ {
		if j < len(a) && a[j] == i {
			j++
			continue
		}
		out = append(out, i)
	}
	return out
}

// CmpOp is a comparison operator used by the Select* kernels.
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

func cmpFloat(op CmpOp, v, c float64) bool {
	switch op {
	case Eq:
		return v == c
	case Ne:
		return v != c
	case Lt:
		return v < c
	case Le:
		return v <= c
	case Gt:
		return v > c
	case Ge:
		return v >= c
	}
	return false
}

func cmpInt(op CmpOp, v, c int64) bool {
	switch op {
	case Eq:
		return v == c
	case Ne:
		return v != c
	case Lt:
		return v < c
	case Le:
		return v <= c
	case Gt:
		return v > c
	case Ge:
		return v >= c
	}
	return false
}

// SelectFloat64 returns the rows of data (restricted to sel) whose value
// compares true against c under op.
func SelectFloat64(data []float64, sel Sel, op CmpOp, c float64) Sel {
	out := make(Sel, 0, 64)
	if sel == nil {
		for i, v := range data {
			if cmpFloat(op, v, c) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if cmpFloat(op, data[i], c) {
			out = append(out, i)
		}
	}
	return out
}

// SelectInt64 is SelectFloat64 for int64 columns.
func SelectInt64(data []int64, sel Sel, op CmpOp, c int64) Sel {
	out := make(Sel, 0, 64)
	if sel == nil {
		for i, v := range data {
			if cmpInt(op, v, c) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if cmpInt(op, data[i], c) {
			out = append(out, i)
		}
	}
	return out
}

// SelectRangeFloat64 selects rows with lo <= v < hi (half-open range);
// the common shape of the paper's focal-area predicates.
func SelectRangeFloat64(data []float64, sel Sel, lo, hi float64) Sel {
	out := make(Sel, 0, 64)
	if sel == nil {
		for i, v := range data {
			if v >= lo && v < hi {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if v := data[i]; v >= lo && v < hi {
			out = append(out, i)
		}
	}
	return out
}

// SelectBool selects rows whose bool value equals want.
func SelectBool(data []bool, sel Sel, want bool) Sel {
	out := make(Sel, 0, 64)
	if sel == nil {
		for i, v := range data {
			if v == want {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for _, i := range sel {
		if data[i] == want {
			out = append(out, i)
		}
	}
	return out
}

// SelectFunc selects rows (restricted to sel) for which pred returns true.
func SelectFunc(n int, sel Sel, pred func(row int32) bool) Sel {
	out := make(Sel, 0, 64)
	if sel == nil {
		for i := int32(0); i < int32(n); i++ {
			if pred(i) {
				out = append(out, i)
			}
		}
		return out
	}
	for _, i := range sel {
		if pred(i) {
			out = append(out, i)
		}
	}
	return out
}

// GatherFloat64 materialises data[sel] into a fresh slice.
func GatherFloat64(data []float64, sel Sel) []float64 {
	if sel == nil {
		out := make([]float64, len(data))
		copy(out, data)
		return out
	}
	out := make([]float64, len(sel))
	for k, i := range sel {
		out[k] = data[i]
	}
	return out
}

// GatherInt64 materialises data[sel] into a fresh slice.
func GatherInt64(data []int64, sel Sel) []int64 {
	if sel == nil {
		out := make([]int64, len(data))
		copy(out, data)
		return out
	}
	out := make([]int64, len(sel))
	for k, i := range sel {
		out[k] = data[i]
	}
	return out
}

// GatherInt32 materialises data[sel] into a fresh slice.
func GatherInt32(data []int32, sel Sel) []int32 {
	if sel == nil {
		out := make([]int32, len(data))
		copy(out, data)
		return out
	}
	out := make([]int32, len(sel))
	for k, i := range sel {
		out[k] = data[i]
	}
	return out
}

// SumFloat64 sums data over sel.
func SumFloat64(data []float64, sel Sel) float64 {
	var s float64
	if sel == nil {
		for _, v := range data {
			s += v
		}
		return s
	}
	for _, i := range sel {
		s += data[i]
	}
	return s
}

// SumInt64 sums data over sel.
func SumInt64(data []int64, sel Sel) int64 {
	var s int64
	if sel == nil {
		for _, v := range data {
			s += v
		}
		return s
	}
	for _, i := range sel {
		s += data[i]
	}
	return s
}

// MinMaxFloat64 returns the min and max of data over sel.
// ok is false when the selection is empty.
func MinMaxFloat64(data []float64, sel Sel) (lo, hi float64, ok bool) {
	first := true
	visit := func(v float64) {
		if first {
			lo, hi, first = v, v, false
			return
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if sel == nil {
		for _, v := range data {
			visit(v)
		}
	} else {
		for _, i := range sel {
			visit(data[i])
		}
	}
	return lo, hi, !first
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
