package vec

// Sel-native selection kernels: predicate evaluation restricted to an
// explicit sorted position vector, appending into caller-provided
// scratch. They are the hot path of selection-vector scans — an
// impression's sampled row positions evaluated directly against the
// base table — and follow the same write-then-advance ("branchless")
// shape as the range kernels in range.go: the candidate position is
// stored unconditionally and the output cursor advances by the
// comparison outcome.
//
// Every kernel takes dst as reusable scratch (contents overwritten;
// only capacity matters) and returns the filled prefix. Pair with
// SelPool to make steady-state sel filtering allocation free.

// SelectFloat64Sel writes the positions p in sel with data[p] op c into
// dst and returns the filled prefix. NaN values never match any
// operator except Ne, matching SelectFloat64.
func SelectFloat64Sel(dst Sel, data []float64, sel Sel, op CmpOp, c float64) Sel {
	dst = grow(dst, len(sel))
	k := 0
	switch op {
	case Eq:
		for _, p := range sel {
			dst[k] = p
			k += b2i(data[p] == c)
		}
	case Ne:
		for _, p := range sel {
			dst[k] = p
			k += b2i(data[p] != c)
		}
	case Lt:
		for _, p := range sel {
			dst[k] = p
			k += b2i(data[p] < c)
		}
	case Le:
		for _, p := range sel {
			dst[k] = p
			k += b2i(data[p] <= c)
		}
	case Gt:
		for _, p := range sel {
			dst[k] = p
			k += b2i(data[p] > c)
		}
	case Ge:
		for _, p := range sel {
			dst[k] = p
			k += b2i(data[p] >= c)
		}
	default:
		return dst[:0]
	}
	return dst[:k]
}

// SelectBetweenFloat64Sel writes the positions p in sel with
// blo <= data[p] <= bhi (inclusive, SQL BETWEEN) into dst.
func SelectBetweenFloat64Sel(dst Sel, data []float64, sel Sel, blo, bhi float64) Sel {
	dst = grow(dst, len(sel))
	k := 0
	for _, p := range sel {
		dst[k] = p
		v := data[p]
		k += b2i(v >= blo && v <= bhi)
	}
	return dst[:k]
}

// SelectEqInt32Sel writes the positions p in sel whose code equals
// (want) or differs from (!want) code into dst — the dictionary-coded
// string comparison over an explicit selection.
func SelectEqInt32Sel(dst Sel, data []int32, sel Sel, code int32, want bool) Sel {
	dst = grow(dst, len(sel))
	k := 0
	if want {
		for _, p := range sel {
			dst[k] = p
			k += b2i(data[p] == code)
		}
	} else {
		for _, p := range sel {
			dst[k] = p
			k += b2i(data[p] != code)
		}
	}
	return dst[:k]
}

// CopyInto copies src into dst scratch and returns the filled prefix —
// the pooled-output shape of "the whole selection matched".
func CopyInto(dst, src Sel) Sel {
	dst = grow(dst, len(src))
	copy(dst, src)
	return dst
}

// DiffInto writes the sorted set difference a \ b into dst (neither may
// be nil) — the allocation-free shape of Diff for pooled inputs.
func DiffInto(dst, a, b Sel) Sel {
	dst = grow(dst, len(a))
	k := 0
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		dst[k] = v
		k += b2i(j >= len(b) || b[j] != v)
	}
	return dst[:k]
}
