package impression

import (
	"sort"
	"testing"
)

// viewFromSamples builds the reference view by sorting Samples().
func viewFromSamples(im *Impression) ([]int32, map[int32]Sample) {
	samples := im.Samples()
	byPos := make(map[int32]Sample, len(samples))
	pos := make([]int32, len(samples))
	for i, s := range samples {
		pos[i] = s.Pos
		byPos[s.Pos] = s
	}
	sort.Slice(pos, func(a, b int) bool { return pos[a] < pos[b] })
	return pos, byPos
}

// assertViewMatches checks v against the impression's sample set:
// sorted positions, aligned weights.
func assertViewMatches(t *testing.T, im *Impression, v View) {
	t.Helper()
	want, byPos := viewFromSamples(im)
	if v.Positions == nil {
		t.Fatal("view has nil Positions")
	}
	if len(v.Positions) != len(want) {
		t.Fatalf("view has %d positions, samples have %d", len(v.Positions), len(want))
	}
	for i, p := range v.Positions {
		if p != want[i] {
			t.Fatalf("position %d = %d, want %d", i, p, want[i])
		}
		if i > 0 && v.Positions[i-1] >= p {
			t.Fatalf("positions not strictly ascending at %d", i)
		}
		s := byPos[p]
		if v.Weights == nil {
			if s.Weight != 1 {
				t.Fatalf("nil Weights but sample %d has weight %g", p, s.Weight)
			}
		} else if v.Weights[i] != s.Weight {
			t.Fatalf("weight at %d = %g, want %g", i, v.Weights[i], s.Weight)
		}
		if v.Pis == nil {
			if s.Pi != 1 {
				t.Fatalf("nil Pis but sample %d has pi %g", p, s.Pi)
			}
		} else if v.Pis[i] != s.Pi {
			t.Fatalf("pi at %d = %g, want %g", i, v.Pis[i], s.Pi)
		}
	}
}

// TestViewMatchesSamplesAcrossPolicies checks the view invariants for
// every focus policy, including the weight-bearing biased sampler.
func TestViewMatchesSamplesAcrossPolicies(t *testing.T) {
	base := buildBase(t, 6000, 4)
	lg := focusedLogger(t)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"uniform", Config{Name: "u", Size: 400, Seed: 5}},
		{"lastseen", Config{Name: "l", Size: 400, Policy: LastSeen, K: 1, D: 2, Seed: 6}},
		{"biased", Config{Name: "b", Size: 400, Policy: Biased, Logger: lg, Attrs: []string{"ra"}, Seed: 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			im, err := New(base, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < base.Len(); i++ {
				im.Offer(int32(i))
			}
			v := im.View()
			assertViewMatches(t, im, v)
			if v.Version != im.Version() {
				t.Fatalf("view version %d, impression version %d", v.Version, im.Version())
			}
			// A second call without mutations returns the same view.
			v2 := im.View()
			if v2.Version != v.Version || &v2.Positions[0] != &v.Positions[0] {
				t.Fatal("unchanged sample rebuilt its view")
			}
		})
	}
}

// TestViewIncrementalMatchesRebuild drives a uniform impression through
// interleaved offer/view rounds — each round small enough to stay on
// the delta path — and checks every incremental view equals the sorted
// sample set, that versions grow, and that previously returned views
// stay untouched (immutability).
func TestViewIncrementalMatchesRebuild(t *testing.T) {
	base := buildBase(t, 40_000, 9)
	im, err := New(base, Config{Name: "inc", Size: 8000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	offer := func(k int) {
		for ; k > 0 && next < base.Len(); k-- {
			im.Offer(int32(next))
			next++
		}
	}
	offer(20_000)
	prev := im.View()
	prevCopy := append([]int32(nil), prev.Positions...)
	for round := 0; round < 12; round++ {
		offer(500) // well under the Size/4 delta limit
		v := im.View()
		assertViewMatches(t, im, v)
		if v.Version <= prev.Version {
			t.Fatalf("round %d: version %d did not advance past %d", round, v.Version, prev.Version)
		}
		for i, p := range prevCopy {
			if prev.Positions[i] != p {
				t.Fatalf("round %d: earlier view mutated at %d", round, i)
			}
		}
		prev, prevCopy = v, append(prevCopy[:0], v.Positions...)
	}
}

// TestViewDeltaOverflowRebuilds floods the delta log past its cap in
// one go and checks the rebuilt view is still exact.
func TestViewDeltaOverflowRebuilds(t *testing.T) {
	base := buildBase(t, 30_000, 13)
	im, err := New(base, Config{Name: "ovf", Size: 512, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		im.Offer(int32(i))
	}
	im.View()
	for i := 1000; i < base.Len(); i++ {
		im.Offer(int32(i))
	}
	assertViewMatches(t, im, im.View())
}

// TestViewDerivedAndResume covers the hierarchy transitions: a
// ReplaceFrom bumps the version and rebuilds the view from the derived
// samples; the next direct Offer resumes stream sampling with another
// full rebuild.
func TestViewDerivedAndResume(t *testing.T) {
	base := buildBase(t, 8000, 19)
	parent, err := New(base, Config{Name: "p", Size: 2000, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	child, err := New(base, Config{Name: "c", Size: 200, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < base.Len(); i++ {
		parent.Offer(int32(i))
		child.Offer(int32(i))
	}
	v0 := child.View()
	if err := child.ReplaceFrom(parent.Samples()); err != nil {
		t.Fatal(err)
	}
	v1 := child.View()
	if v1.Version <= v0.Version {
		t.Fatalf("ReplaceFrom did not bump version (%d -> %d)", v0.Version, v1.Version)
	}
	assertViewMatches(t, child, v1)
	child.Offer(42)
	assertViewMatches(t, child, child.View())
}

// TestViewEmptyImpression checks the zero-sample view shape.
func TestViewEmptyImpression(t *testing.T) {
	base := buildBase(t, 16, 31)
	im, err := New(base, Config{Name: "empty", Size: 8, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	v := im.View()
	if v.Positions == nil || len(v.Positions) != 0 {
		t.Fatalf("empty view = %#v", v.Positions)
	}
}
