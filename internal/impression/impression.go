// Package impression implements the paper's primary contribution:
// impressions — large, workload-biased, incrementally maintained samples
// of a science warehouse, organised in multi-layer hierarchies (§3).
//
// An impression samples row positions of an append-only base table while
// the data is loaded (the construction "resides in the load process",
// §3.3). It never revisits base data: positions are stable because
// tables are append-only. Three focus policies are provided:
//
//   - Uniform: the classical reservoir of Figure 2.
//   - LastSeen: the recency-focused reservoir of Figure 3.
//   - Biased: the workload-steered reservoir of Figure 6, whose bias
//     factor is the binned KDE f̆ (package kde) over the predicate-set
//     histograms maintained by the workload logger.
//
// Hierarchies (see hierarchy.go) stack impressions of decreasing size;
// each smaller layer is refreshed exclusively from the layer below it.
package impression

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"sciborq/internal/kde"
	"sciborq/internal/reservoir"
	"sciborq/internal/table"
	"sciborq/internal/vec"
	"sciborq/internal/workload"
	"sciborq/internal/xrand"
)

// Policy selects the sampling focus of an impression.
type Policy int

// Focus policies.
const (
	Uniform Policy = iota
	LastSeen
	Biased
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case LastSeen:
		return "last-seen"
	case Biased:
		return "biased"
	}
	return "unknown"
}

// Config configures one impression.
type Config struct {
	Name   string
	Size   int
	Policy Policy
	Seed   uint64

	// Biased policy: Logger supplies the predicate-set histograms and
	// Attrs names the interesting attributes (must be DOUBLE columns of
	// the base table). The bias factor of a tuple is the product of
	// f̆_a(t.a)·N_a over the attributes — the paper's combine function
	// c(t) = f̆(t.att1) ◦ ... ◦ f̆(t.attm).
	Logger *workload.Logger
	Attrs  []string

	// Joint selects the multi-dimensional bias of the paper's future
	// work (§6): with exactly two Attrs whose pair is jointly tracked
	// on the Logger (workload.TrackJoint), the bias factor is the joint
	// binned KDE f̆(x, y) — preserving the correlation between the
	// attributes instead of multiplying marginals, so interest at
	// (a₁, b₁) and (a₂, b₂) does not leak onto the phantom
	// cross-products (a₁, b₂) and (a₂, b₁).
	Joint bool

	// LastSeen policy: acceptance probability K/D (Figure 3); D is
	// tuned to the expected daily ingest.
	K, D float64

	// UniformMix λ adds a defensive uniform component to the bias
	// factor: w = (1−λ)·Π f̆_a·N_a + λ, guaranteeing every tuple at
	// least λ times the uniform sampling rate so that estimates over
	// anti-focal regions keep finite variance (defensive importance
	// sampling). 0 selects the default of 0.10 — the smallest mix at
	// which anti-focal estimates keep nominal interval coverage in the
	// acceptance tests; PureBias disables it (the verbatim paper
	// behaviour).
	UniformMix float64
	PureBias   bool

	// Faithful selects the verbatim pseudo-code of Figures 3/6
	// including the shared-random victim slot; experiments use the
	// corrected variant (false).
	Faithful bool
}

// mix returns the effective uniform-mix λ.
func (c Config) mix() float64 {
	if c.PureBias {
		return 0
	}
	if c.UniformMix <= 0 {
		return 0.10
	}
	return c.UniformMix
}

// Sample is one sampled row with its two estimation weights (both 1 for
// uniform policies):
//
//   - Weight is the clamp-corrected bias factor, smooth within a region;
//     ratio estimators (AVG) use it because their variance depends on
//     weight dispersion and they are robust to weight misspecification.
//   - Pi is the estimated inclusion probability (acceptance × survival);
//     share estimators (COUNT, SUM) need it because the clamped
//     reservoir's composition is a nonlinear function of the bias
//     factor that only the inclusion model captures.
type Sample struct {
	Pos    int32
	Weight float64
	Pi     float64
}

// Impression is a single-layer sample over a base table.
type Impression struct {
	mu   sync.Mutex
	cfg  Config
	base *table.Table
	rng  *xrand.RNG

	uni  *reservoir.R[int32]
	last *reservoir.LastSeen[int32]
	bias *reservoir.Biased[int32]

	// derived holds the sample set of a layer rebuilt from its parent
	// (hierarchy maintenance); when non-nil it shadows the stream
	// samplers. A direct Offer clears it and resumes stream sampling.
	derived []Sample

	// version identifies the sample-set state: it bumps on every Offer
	// and ReplaceFrom, so any cache keyed by (impression, version) is
	// never stale.
	version uint64

	// view is the last built selection view (immutable once returned);
	// viewOK marks it current. The delta logs record reservoir
	// insertions/evictions since the view was built, so uniform-weight
	// stream samplers refresh it with one merge pass instead of a full
	// sort. viewFull forces the next refresh to rebuild from scratch
	// (weight-bearing policies, derived layers, overflowed logs).
	view     View
	viewOK   bool
	viewFull bool
	deltaAdd []int32
	deltaDel []int32

	// cache of the materialised layer table; invalidated on change
	cached  *table.Table
	weights []float64 // ratio weights aligned with cached rows
	pis     []float64 // inclusion weights aligned with cached rows
	dirty   bool
	offered int64
}

// New builds an impression over base.
func New(base *table.Table, cfg Config) (*Impression, error) {
	if base == nil {
		return nil, fmt.Errorf("impression: nil base table")
	}
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("impression %q: size must be positive, got %d", cfg.Name, cfg.Size)
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("impression(%s,%s,%d)", base.Name(), cfg.Policy, cfg.Size)
	}
	im := &Impression{cfg: cfg, base: base, rng: xrand.New(cfg.Seed ^ 0x5c1b09c9), dirty: true}
	var err error
	switch cfg.Policy {
	case Uniform:
		im.uni, err = reservoir.NewR[int32](cfg.Size, im.rng)
	case LastSeen:
		im.last, err = reservoir.NewLastSeen[int32](cfg.Size, cfg.K, cfg.D, cfg.Faithful, im.rng)
	case Biased:
		if cfg.Logger == nil || len(cfg.Attrs) == 0 {
			return nil, fmt.Errorf("impression %q: biased policy needs a workload logger and attributes", cfg.Name)
		}
		// Validate the attributes now; per-offer lookups then cannot fail.
		for _, a := range cfg.Attrs {
			if _, err := cfg.Logger.Live(a); err != nil {
				return nil, fmt.Errorf("impression %q: %w", cfg.Name, err)
			}
			if _, err := base.Float64(a); err != nil {
				return nil, fmt.Errorf("impression %q: %w", cfg.Name, err)
			}
		}
		factor := im.biasFactor
		if cfg.Joint {
			if len(cfg.Attrs) != 2 {
				return nil, fmt.Errorf("impression %q: joint bias needs exactly 2 attributes, got %d", cfg.Name, len(cfg.Attrs))
			}
			if _, err := cfg.Logger.LiveJoint(cfg.Attrs[0], cfg.Attrs[1]); err != nil {
				return nil, fmt.Errorf("impression %q: %w", cfg.Name, err)
			}
			factor = im.jointBiasFactor
		}
		im.bias, err = reservoir.NewBiased[int32](cfg.Size, factor, cfg.Faithful, im.rng)
	default:
		return nil, fmt.Errorf("impression %q: unknown policy %d", cfg.Name, cfg.Policy)
	}
	if err != nil {
		return nil, err
	}
	// Stream mutations feed the incremental view maintenance: the
	// uniform-weight samplers log position deltas; the biased sampler's
	// weights move with every offer (clamp cap, survival decay), so its
	// view always rebuilds and needs no log.
	hook := func(added int32, evicted *int32) { im.noteDelta(added, evicted) }
	switch cfg.Policy {
	case Uniform:
		im.uni.SetHook(hook)
	case LastSeen:
		im.last.SetHook(hook)
	}
	return im, nil
}

// biasFactor computes the Figure-6 acceptance weight for the base row at
// pos. Per attribute the factor is f̆_a(t.a)·N_a — the expected number of
// predicate values near the tuple. Multiple attributes are combined by
// geometric mean (the paper's combine function c(t) = f̆(att1)◦…◦f̆(attm)
// leaves ◦ open; the geometric mean keeps the combined factor on the
// same scale as a single attribute's, so the acceptance probability
// n·w/cnt stays meaningfully below 1 instead of clamping). The result is
// defensively mixed with a uniform floor (see Config.UniformMix).
func (im *Impression) biasFactor(pos int32) float64 {
	logW := 0.0
	for _, attr := range im.cfg.Attrs {
		data, err := im.base.Float64(attr)
		if err != nil || int(pos) >= len(data) {
			return 0
		}
		h, err := im.cfg.Logger.Live(attr)
		if err != nil {
			return 0
		}
		b, err := kde.NewBinned(h, nil)
		if err != nil {
			return 0
		}
		// f̆(v)·N: expected number of predicate values near v.
		f := b.Eval(data[pos]) * float64(h.N)
		if f <= 0 {
			logW = math.Inf(-1)
			break
		}
		logW += math.Log(f)
	}
	w := 0.0
	if !math.IsInf(logW, -1) && len(im.cfg.Attrs) > 0 {
		w = math.Exp(logW / float64(len(im.cfg.Attrs)))
	}
	lambda := im.cfg.mix()
	return (1-lambda)*w + lambda
}

// jointBiasFactor computes the acceptance weight from the joint binned
// KDE: the smoothed expected number of workload predicate points in the
// tuple's grid cell, f̆(x, y)·N·wx·wy — the same "how interesting is this
// neighbourhood" scale as the 1-D factor, but correlation-aware.
func (im *Impression) jointBiasFactor(pos int32) float64 {
	xs, err := im.base.Float64(im.cfg.Attrs[0])
	if err != nil || int(pos) >= len(xs) {
		return 0
	}
	ys, err := im.base.Float64(im.cfg.Attrs[1])
	if err != nil || int(pos) >= len(ys) {
		return 0
	}
	h, err := im.cfg.Logger.LiveJoint(im.cfg.Attrs[0], im.cfg.Attrs[1])
	if err != nil {
		return 0
	}
	b, err := kde.NewBinned2D(h, nil)
	if err != nil {
		return 0
	}
	w := b.Eval(xs[pos], ys[pos]) * float64(h.N) * h.WidthX * h.WidthY
	lambda := im.cfg.mix()
	return (1-lambda)*w + lambda
}

// Name returns the impression name.
func (im *Impression) Name() string { return im.cfg.Name }

// Policy returns the focus policy.
func (im *Impression) Policy() Policy { return im.cfg.Policy }

// Cap returns the configured sample size n.
func (im *Impression) Cap() int { return im.cfg.Size }

// Base returns the base table.
func (im *Impression) Base() *table.Table { return im.base }

// Offered returns the number of base rows offered so far.
func (im *Impression) Offered() int64 {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.offered
}

// Offer presents the base row at position pos to the impression; the
// loader calls this for every appended row (construction during load,
// §3.3).
func (im *Impression) Offer(pos int32) {
	im.mu.Lock()
	defer im.mu.Unlock()
	im.offered++
	im.dirty = true
	im.version++
	im.viewOK = false
	if im.derived != nil {
		// Direct offers resume stream sampling; the stream reservoir
		// diverged from the derived view, so deltas cannot bridge it.
		im.derived = nil
		im.markViewFullLocked()
	}
	switch im.cfg.Policy {
	case Uniform:
		im.uni.Offer(pos)
	case LastSeen:
		im.last.Offer(pos)
	case Biased:
		im.bias.Offer(pos)
		im.markViewFullLocked()
	}
}

// markViewFullLocked forces the next view refresh to rebuild from the
// sample set and drops the now-useless delta logs.
func (im *Impression) markViewFullLocked() {
	im.viewFull = true
	im.deltaAdd = im.deltaAdd[:0]
	im.deltaDel = im.deltaDel[:0]
}

// noteDelta records one reservoir mutation for incremental view
// maintenance. Logging is skipped while no view exists or a full
// rebuild is already pending, and overflows into a full rebuild when
// the log stops being cheaper than re-sorting.
func (im *Impression) noteDelta(added int32, evicted *int32) {
	if im.viewFull || im.view.Positions == nil {
		return
	}
	limit := im.cfg.Size / 4
	if limit < 1024 {
		limit = 1024
	}
	if len(im.deltaAdd) >= limit {
		im.markViewFullLocked()
		return
	}
	im.deltaAdd = append(im.deltaAdd, added)
	if evicted != nil {
		im.deltaDel = append(im.deltaDel, *evicted)
	}
}

// Samples returns the current sample set (positions and weights).
func (im *Impression) Samples() []Sample {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.samplesLocked()
}

func (im *Impression) samplesLocked() []Sample {
	if im.derived != nil {
		out := make([]Sample, len(im.derived))
		copy(out, im.derived)
		return out
	}
	switch im.cfg.Policy {
	case Uniform:
		items := im.uni.Items()
		out := make([]Sample, len(items))
		for i, p := range items {
			out[i] = Sample{Pos: p, Weight: 1, Pi: 1}
		}
		return out
	case LastSeen:
		items := im.last.Items()
		out := make([]Sample, len(items))
		for i, p := range items {
			out[i] = Sample{Pos: p, Weight: 1, Pi: 1}
		}
		return out
	case Biased:
		items := im.bias.Items()
		out := make([]Sample, len(items))
		// Estimation weights: the bias factor, clamp-corrected. The
		// Figure-6 acceptance probability is min(1, n·w/cnt), so every
		// tuple with w >= cnt/n is accepted identically — its effective
		// weight is cnt/n, not w. Capping at cnt/n makes the weights
		// proportional to the steady-state acceptance flux. The lower
		// end is bounded by the defensive uniform mix λ, so importance
		// ratios stay finite. (The survival-corrected per-tuple Pi in
		// the reservoir is exact but its orders-of-magnitude dispersion
		// destroys the Hájek estimator's effective sample size.)
		cap := float64(im.offered) / float64(im.cfg.Size)
		if cap < 1 {
			cap = 1
		}
		for i, it := range items {
			w := it.Weight
			if w > cap {
				w = cap
			}
			out[i] = Sample{Pos: it.Item, Weight: w, Pi: it.Pi}
		}
		return out
	}
	return nil
}

// Len returns the current number of sampled rows.
func (im *Impression) Len() int {
	im.mu.Lock()
	defer im.mu.Unlock()
	if im.derived != nil {
		return len(im.derived)
	}
	switch im.cfg.Policy {
	case Uniform:
		return len(im.uni.Items())
	case LastSeen:
		return len(im.last.Items())
	case Biased:
		return len(im.bias.Items())
	}
	return 0
}

// View is a stable, versioned selection view of an impression: the
// sampled base-row positions sorted ascending, with row-aligned
// estimation weights. It is what the engine's selection-vector scans
// consume — bounded queries execute directly over the base table
// restricted to Positions, so a changed sample never costs a table
// copy.
//
// The returned slices are immutable: refreshes build new arrays, so a
// View stays valid (describing the version it was taken at) while the
// impression keeps sampling.
type View struct {
	// Version identifies the sample-set state the view describes.
	Version uint64
	// Positions are the sampled base-row positions, sorted ascending.
	// Never nil (empty means an empty sample).
	Positions vec.Sel
	// Weights are the row-aligned ratio weights (AVG estimators); nil
	// means uniform (all 1).
	Weights []float64
	// Pis are the row-aligned inclusion weights (COUNT/SUM
	// estimators); nil means uniform.
	Pis []float64
}

// Clamp returns the view restricted to positions below n — the
// snapshot length of the base table a consumer is about to scan. The
// hierarchy may have sampled rows appended after that snapshot was
// taken; those positions must not reach the scan. Positions are
// sorted, so the cut is a prefix and the weight alignment survives.
// The receiver is unchanged (views are immutable).
func (v View) Clamp(n int) View {
	cut := sort.Search(len(v.Positions), func(i int) bool { return int(v.Positions[i]) >= n })
	if cut == len(v.Positions) {
		return v
	}
	v.Positions = v.Positions[:cut]
	if v.Weights != nil {
		v.Weights = v.Weights[:cut]
	}
	if v.Pis != nil {
		v.Pis = v.Pis[:cut]
	}
	return v
}

// Version returns the current sample-set version. It bumps on every
// Offer and ReplaceFrom, so consumers can detect staleness without
// taking a view.
func (im *Impression) Version() uint64 {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.version
}

// View returns the current selection view, refreshing it if the sample
// changed since the last call. Uniform-weight stream samplers refresh
// incrementally: the reservoir's insertions/evictions since the last
// view are applied as one merge pass over the previous sorted
// positions (O(n + deltas), allocation limited to the new position
// array) instead of re-sorting — the cache-invalidation cliff the
// materialised path pays is gone. Weight-bearing (biased) and derived
// layers rebuild, since their weights move with every offer.
func (im *Impression) View() View {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.viewLocked()
}

func (im *Impression) viewLocked() View {
	if im.viewOK {
		return im.view
	}
	if im.viewFull || im.view.Positions == nil || im.derived != nil || im.cfg.Policy == Biased {
		im.rebuildViewLocked()
	} else {
		im.applyDeltasLocked()
	}
	im.view.Version = im.version
	im.viewOK = true
	return im.view
}

// rebuildViewLocked sorts the full sample set into a fresh view.
func (im *Impression) rebuildViewLocked() {
	samples := im.samplesLocked() // fresh copy; safe to sort in place
	sort.Slice(samples, func(a, b int) bool { return samples[a].Pos < samples[b].Pos })
	pos := make(vec.Sel, len(samples))
	uniform := true
	for i, s := range samples {
		pos[i] = s.Pos
		if s.Weight != 1 || s.Pi != 1 {
			uniform = false
		}
	}
	var weights, pis []float64
	if !uniform {
		weights = make([]float64, len(samples))
		pis = make([]float64, len(samples))
		for i, s := range samples {
			weights[i] = s.Weight
			pis[i] = s.Pi
		}
	}
	im.view = View{Positions: pos, Weights: weights, Pis: pis}
	im.viewFull = false
	im.deltaAdd = im.deltaAdd[:0]
	im.deltaDel = im.deltaDel[:0]
}

// applyDeltasLocked refreshes a uniform-weight view by merging the
// logged reservoir insertions and evictions into the previous sorted
// positions: one O(n + deltas) pass, no sort.
func (im *Impression) applyDeltasLocked() {
	if len(im.deltaAdd) == 0 && len(im.deltaDel) == 0 {
		return // sample unchanged (rejected offers only)
	}
	add := append([]int32(nil), im.deltaAdd...)
	del := append([]int32(nil), im.deltaDel...)
	slices.Sort(add)
	slices.Sort(del)
	// Cancel intra-batch pairs: a position inserted and later evicted
	// between two views never reaches the merged result.
	add, del = cancelCommon(add, del)
	old := im.view.Positions
	merged := make(vec.Sel, 0, len(old)+len(add)-len(del))
	i, a, d := 0, 0, 0
	for i < len(old) || a < len(add) {
		if i < len(old) && (a >= len(add) || old[i] <= add[a]) {
			v := old[i]
			i++
			for d < len(del) && del[d] < v {
				d++
			}
			if d < len(del) && del[d] == v {
				d++
				continue
			}
			merged = append(merged, v)
		} else {
			merged = append(merged, add[a])
			a++
		}
	}
	im.view = View{Positions: merged}
	im.deltaAdd = im.deltaAdd[:0]
	im.deltaDel = im.deltaDel[:0]
}

// cancelCommon removes the elements the two sorted lists share (one
// cancellation per occurrence), returning the trimmed lists.
func cancelCommon(a, b []int32) ([]int32, []int32) {
	ai, bi := 0, 0
	outA := a[:0]
	outB := b[:0]
	for ai < len(a) && bi < len(b) {
		switch {
		case a[ai] < b[bi]:
			outA = append(outA, a[ai])
			ai++
		case a[ai] > b[bi]:
			outB = append(outB, b[bi])
			bi++
		default:
			ai++
			bi++
		}
	}
	outA = append(outA, a[ai:]...)
	outB = append(outB, b[bi:]...)
	return outA, outB
}

// Materialized is an impression rendered as a standalone table with its
// row-aligned estimation weight vectors.
type Materialized struct {
	Table *table.Table
	// RatioWeights feed ratio estimators (AVG): the clamp-corrected
	// bias factors.
	RatioWeights []float64
	// InclusionWeights feed share estimators (COUNT, SUM): estimated
	// inclusion probabilities.
	InclusionWeights []float64
}

// Materialize renders the impression as a standalone table; the result
// is cached until the sample changes. It is the fallback for consumers
// that genuinely need a table of their own (join synopses, examples,
// experiment drivers) — bounded query execution runs selection-vector
// scans over View instead and never pays this copy. The table name
// carries the sample version ("name@v7"), so caches keyed by table
// identity (e.g. the recycler) can never serve a selection computed on
// an older sample of the same size.
func (im *Impression) Materialize() (*Materialized, error) {
	im.mu.Lock()
	defer im.mu.Unlock()
	if !im.dirty && im.cached != nil {
		return &Materialized{Table: im.cached, RatioWeights: im.weights, InclusionWeights: im.pis}, nil
	}
	samples := im.samplesLocked()
	sel := make(vec.Sel, len(samples))
	weights := make([]float64, len(samples))
	pis := make([]float64, len(samples))
	for i, s := range samples {
		sel[i] = s.Pos
		weights[i] = s.Weight
		pis[i] = s.Pi
	}
	name := fmt.Sprintf("%s@v%d", im.cfg.Name, im.version)
	t, err := im.base.Project(name, im.base.Schema().Names(), sel)
	if err != nil {
		return nil, err
	}
	im.cached, im.weights, im.pis, im.dirty = t, weights, pis, false
	return &Materialized{Table: t, RatioWeights: weights, InclusionWeights: pis}, nil
}

// Table materialises the impression into a standalone table whose row i
// corresponds to the returned ratio weights[i]. See Materialize for the
// full weight set.
func (im *Impression) Table() (*table.Table, []float64, error) {
	m, err := im.Materialize()
	if err != nil {
		return nil, nil, err
	}
	return m.Table, m.RatioWeights, nil
}

// SampleFraction returns n/offered — the effective sampling rate.
func (im *Impression) SampleFraction() float64 {
	im.mu.Lock()
	defer im.mu.Unlock()
	if im.offered == 0 {
		return 0
	}
	n := float64(im.cfg.Size)
	if int64(im.cfg.Size) > im.offered {
		n = float64(im.offered)
	}
	return n / float64(im.offered)
}

// ReplaceFrom rebuilds this impression by subsampling the given parent
// samples (the layer below in a hierarchy) uniformly without
// replacement. The parent's focal point is inherited through its
// composition (§3.1), and uniform thinning keeps the inclusion weights
// valid: each chosen sample keeps weight parentWeight · n/len(parent),
// its inclusion probability through both stages.
func (im *Impression) ReplaceFrom(parent []Sample) error {
	im.mu.Lock()
	defer im.mu.Unlock()
	im.dirty = true
	im.version++
	im.viewOK = false
	im.markViewFullLocked()
	if len(parent) == 0 {
		im.derived = []Sample{}
		return nil
	}
	r, err := reservoir.NewR[Sample](im.cfg.Size, im.rng)
	if err != nil {
		return err
	}
	for _, s := range parent {
		r.Offer(s)
	}
	chosen := r.Items()
	thin := float64(len(chosen)) / float64(len(parent))
	if thin > 1 {
		thin = 1
	}
	derived := make([]Sample, len(chosen))
	for i, s := range chosen {
		// Uniform thinning multiplies inclusion probabilities by the
		// thinning rate; ratio weights are scale-free, so they carry
		// the same factor purely for interpretability.
		derived[i] = Sample{Pos: s.Pos, Weight: s.Weight * thin, Pi: s.Pi * thin}
	}
	im.derived = derived
	return nil
}
