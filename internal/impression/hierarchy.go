package impression

import (
	"fmt"
	"sort"
	"sync"
)

// Hierarchy is a multi-layer stack of impressions over one base table
// (§3.1 "Layers"): layer 0 is the largest and samples the load stream
// directly; every smaller layer ℓ+1 is refreshed exclusively from layer
// ℓ — maintenance of small impressions touches only the impression one
// layer below, never the base data, which is what gives them the "fast
// reflexes" the paper asks for.
type Hierarchy struct {
	mu           sync.Mutex
	layers       []*Impression // descending size; layers[0] largest
	refreshEvery int64
	sinceRefresh int64
}

// NewHierarchy stacks the given impressions. Sizes must be strictly
// decreasing and all impressions must share the base table.
func NewHierarchy(layers []*Impression, refreshEvery int64) (*Hierarchy, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("impression: hierarchy needs at least one layer")
	}
	if refreshEvery <= 0 {
		refreshEvery = 4096
	}
	base := layers[0].Base()
	for i := 1; i < len(layers); i++ {
		if layers[i].Base() != base {
			return nil, fmt.Errorf("impression: layer %d has a different base table", i)
		}
		if layers[i].Cap() >= layers[i-1].Cap() {
			return nil, fmt.Errorf("impression: layer sizes must strictly decrease (layer %d: %d >= %d)",
				i, layers[i].Cap(), layers[i-1].Cap())
		}
	}
	return &Hierarchy{layers: layers, refreshEvery: refreshEvery}, nil
}

// Layers returns the layer stack, largest first.
func (h *Hierarchy) Layers() []*Impression {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Impression, len(h.layers))
	copy(out, h.layers)
	return out
}

// Depth returns the number of layers.
func (h *Hierarchy) Depth() int { return len(h.layers) }

// Offer presents one freshly loaded base row to the hierarchy: the
// largest layer samples it directly; smaller layers are refreshed from
// their parent every refreshEvery offers.
func (h *Hierarchy) Offer(pos int32) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.layers[0].Offer(pos)
	h.sinceRefresh++
	if h.sinceRefresh >= h.refreshEvery {
		h.refreshLocked()
	}
}

// Refresh rebuilds all smaller layers from their parents immediately.
func (h *Hierarchy) Refresh() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.refreshLocked()
}

func (h *Hierarchy) refreshLocked() error {
	h.sinceRefresh = 0
	for i := 1; i < len(h.layers); i++ {
		if err := h.layers[i].ReplaceFrom(h.layers[i-1].Samples()); err != nil {
			return fmt.Errorf("impression: refreshing layer %d: %w", i, err)
		}
	}
	return nil
}

// Ascending returns the layers ordered smallest-first — the order in
// which bounded query processing escalates (§3.2: "query evaluation
// moves to an impression on a lower level, with a higher level of
// detail").
func (h *Hierarchy) Ascending() []*Impression {
	out := h.Layers()
	sort.SliceStable(out, func(a, b int) bool { return out[a].Cap() < out[b].Cap() })
	return out
}

// LargestWithin returns the biggest layer whose sample size does not
// exceed maxRows, used by time-bounded processing; ok is false when even
// the smallest layer is too large.
func (h *Hierarchy) LargestWithin(maxRows int) (*Impression, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var best *Impression
	for _, l := range h.layers {
		n := l.Len()
		if n <= maxRows && (best == nil || n > best.Len()) {
			best = l
		}
	}
	return best, best != nil
}
