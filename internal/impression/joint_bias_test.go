package impression

import (
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/workload"
	"sciborq/internal/xrand"
)

// crossBase builds a base table uniform over the square so the sampler
// alone decides what concentrates where.
func crossBase(t *testing.T, n int) *table.Table {
	t.Helper()
	tb := table.MustNew("base", table.Schema{
		{Name: "ra", Type: column.Float64},
		{Name: "dec", Type: column.Float64},
	})
	r := xrand.New(61)
	rows := make([]table.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, table.Row{120 + r.Float64()*120, r.Float64() * 60})
	}
	if err := tb.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	return tb
}

// correlatedLogger logs interest ONLY at (150, 10) and (210, 50): the
// cross-products (150, 50) and (210, 10) are never requested.
func correlatedLogger(t *testing.T, joint bool) *workload.Logger {
	t.Helper()
	l, err := workload.NewLogger([]workload.AttrSpec{
		{Name: "ra", Min: 120, Max: 240, Beta: 30},
		{Name: "dec", Min: 0, Max: 60, Beta: 30},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if joint {
		if err := l.TrackJoint("ra", "dec", 30, 30); err != nil {
			t.Fatal(err)
		}
	}
	r := xrand.New(62)
	for i := 0; i < 400; i++ {
		var ra, dec float64
		if i%2 == 0 {
			ra, dec = 150+r.NormFloat64()*3, 10+r.NormFloat64()*3
		} else {
			ra, dec = 210+r.NormFloat64()*3, 50+r.NormFloat64()*3
		}
		l.LogPoints([]expr.Point{{Attr: "ra", Value: ra}, {Attr: "dec", Value: dec}})
	}
	return l
}

// regionCount counts sampled tuples within ±8 of a centre.
func regionCount(t *testing.T, im *Impression, ra0, dec0 float64) int {
	t.Helper()
	lt, _, err := im.Table()
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := lt.Float64("ra")
	dec, _ := lt.Float64("dec")
	in := 0
	for i := range ra {
		if ra[i] > ra0-8 && ra[i] < ra0+8 && dec[i] > dec0-8 && dec[i] < dec0+8 {
			in++
		}
	}
	return in
}

func TestJointConfigValidation(t *testing.T) {
	base := crossBase(t, 100)
	l := correlatedLogger(t, false)
	// Joint without joint tracking on the logger.
	_, err := New(base, Config{
		Size: 10, Policy: Biased, Logger: l, Attrs: []string{"ra", "dec"}, Joint: true,
	})
	if err == nil {
		t.Fatal("joint bias without TrackJoint accepted")
	}
	// Joint with wrong attribute count.
	lj := correlatedLogger(t, true)
	_, err = New(base, Config{
		Size: 10, Policy: Biased, Logger: lj, Attrs: []string{"ra"}, Joint: true,
	})
	if err == nil {
		t.Fatal("joint bias with one attribute accepted")
	}
}

func TestJointBiasSuppressesCrossProducts(t *testing.T) {
	const n, size = 40000, 2000
	base := crossBase(t, n)

	// Marginal (product/geometric-mean) bias: cross-products leak.
	lm := correlatedLogger(t, false)
	marginal, err := New(base, Config{
		Name: "marginal", Size: size, Policy: Biased,
		Logger: lm, Attrs: []string{"ra", "dec"}, Seed: 63,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Joint bias: correlation preserved.
	lj := correlatedLogger(t, true)
	joint, err := New(base, Config{
		Name: "joint", Size: size, Policy: Biased,
		Logger: lj, Attrs: []string{"ra", "dec"}, Joint: true, Seed: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		marginal.Offer(int32(i))
		joint.Offer(int32(i))
	}

	// Both must concentrate on the true foci.
	jFocus := regionCount(t, joint, 150, 10) + regionCount(t, joint, 210, 50)
	mFocus := regionCount(t, marginal, 150, 10) + regionCount(t, marginal, 210, 50)
	if jFocus < size/5 || mFocus < size/5 {
		t.Fatalf("focus mass too small: joint=%d marginal=%d", jFocus, mFocus)
	}

	// Cross-products: the joint sampler must hold several times fewer
	// phantom tuples than the marginal sampler.
	jCross := regionCount(t, joint, 150, 50) + regionCount(t, joint, 210, 10)
	mCross := regionCount(t, marginal, 150, 50) + regionCount(t, marginal, 210, 10)
	if mCross < 50 {
		t.Fatalf("marginal sampler did not exhibit cross-product leakage (%d); fixture broken", mCross)
	}
	if jCross*3 >= mCross {
		t.Fatalf("joint bias did not suppress cross-products: joint=%d marginal=%d", jCross, mCross)
	}
}

func TestJointTrackingDecay(t *testing.T) {
	l := correlatedLogger(t, true)
	h, err := l.Joint("ra", "dec")
	if err != nil {
		t.Fatal(err)
	}
	if h.N == 0 {
		t.Fatal("joint histogram empty")
	}
	l.Decay(0)
	h2, _ := l.Joint("ra", "dec")
	if h2.N != 0 {
		t.Fatal("joint histogram survived decay")
	}
}

func TestJointSnapshotIsolation(t *testing.T) {
	l := correlatedLogger(t, true)
	snap, err := l.Joint("ra", "dec")
	if err != nil {
		t.Fatal(err)
	}
	before := snap.N
	l.LogPoints([]expr.Point{{Attr: "ra", Value: 150}, {Attr: "dec", Value: 10}})
	if snap.N != before {
		t.Fatal("snapshot observed later writes")
	}
	live, err := l.LiveJoint("ra", "dec")
	if err != nil {
		t.Fatal(err)
	}
	if live.N != before+1 {
		t.Fatal("live joint view missed write")
	}
}

func TestTrackJointValidation(t *testing.T) {
	l := correlatedLogger(t, false)
	if err := l.TrackJoint("ra", "zzz", 10, 10); err == nil {
		t.Fatal("untracked second attribute accepted")
	}
	if err := l.TrackJoint("zzz", "dec", 10, 10); err == nil {
		t.Fatal("untracked first attribute accepted")
	}
	if err := l.TrackJoint("ra", "ra", 10, 10); err == nil {
		t.Fatal("self-pair accepted")
	}
	if err := l.TrackJoint("ra", "dec", 10, 10); err != nil {
		t.Fatal(err)
	}
	if err := l.TrackJoint("ra", "dec", 10, 10); err == nil {
		t.Fatal("double joint tracking accepted")
	}
	if _, err := l.Joint("dec", "ra"); err == nil {
		t.Fatal("reversed pair lookup should miss (pairs are ordered)")
	}
}
