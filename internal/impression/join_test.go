package impression

import (
	"math"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/engine"
	"sciborq/internal/estimate"
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/vec"
	"sciborq/internal/xrand"
)

// joinFixture builds a fact table with an FK to a quality dimension.
func joinFixture(t *testing.T, n int) (*table.Table, *table.Table) {
	t.Helper()
	fact := table.MustNew("fact", table.Schema{
		{Name: "objID", Type: column.Int64},
		{Name: "fieldID", Type: column.Int64},
		{Name: "ra", Type: column.Float64},
	})
	r := xrand.New(31)
	rows := make([]table.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, table.Row{int64(i), int64(r.Intn(16)), 120 + r.Float64()*120})
	}
	if err := fact.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	dim := table.MustNew("Field", table.Schema{
		{Name: "fieldID", Type: column.Int64},
		{Name: "quality", Type: column.Float64},
	})
	for i := 0; i < 16; i++ {
		if err := dim.AppendRow(table.Row{int64(i), float64(i) / 16}); err != nil {
			t.Fatal(err)
		}
	}
	return fact, dim
}

func TestSynopsisPreservesRowsAndWeights(t *testing.T) {
	fact, dim := joinFixture(t, 5000)
	im, err := New(fact, Config{Name: "u", Size: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fact.Len(); i++ {
		im.Offer(int32(i))
	}
	joined, weights, err := Synopsis(im, []JoinSpec{{Dim: dim, FactKey: "fieldID", DimKey: "fieldID"}})
	if err != nil {
		t.Fatal(err)
	}
	// Complete FK dimension: no sample row is lost.
	if joined.Len() != 500 || len(weights) != 500 {
		t.Fatalf("joined %d rows, %d weights", joined.Len(), len(weights))
	}
	// The dimension column is present and consistent with the key.
	q, err := joined.Float64("quality")
	if err != nil {
		t.Fatal(err)
	}
	keys, err := joined.Int64("fieldID")
	if err != nil {
		t.Fatal(err)
	}
	for i := range q {
		if want := float64(keys[i]) / 16; q[i] != want {
			t.Fatalf("row %d: quality %v for fieldID %d", i, q[i], keys[i])
		}
	}
	// The reserved weight column must not leak into the result.
	if joined.Schema().Index(weightCol) != -1 {
		t.Fatal("weight column leaked into synopsis schema")
	}
}

func TestSynopsisDropsDanglingKeysLikeFullJoin(t *testing.T) {
	fact, dim := joinFixture(t, 2000)
	// Remove half the dimension rows: the sample join must drop exactly
	// the fact rows a full join would drop.
	halfDim := table.MustNew("Field", dim.Schema())
	for i := 0; i < 8; i++ {
		if err := halfDim.AppendRow(table.Row{int64(i), float64(i) / 16}); err != nil {
			t.Fatal(err)
		}
	}
	im, err := New(fact, Config{Name: "u", Size: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fact.Len(); i++ {
		im.Offer(int32(i))
	}
	joined, weights, err := Synopsis(im, []JoinSpec{{Dim: halfDim, FactKey: "fieldID", DimKey: "fieldID"}})
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() >= 400 || joined.Len() == 0 {
		t.Fatalf("half-dimension join kept %d of 400", joined.Len())
	}
	if len(weights) != joined.Len() {
		t.Fatal("weights misaligned after dropping rows")
	}
	keys, _ := joined.Int64("fieldID")
	for _, k := range keys {
		if k >= 8 {
			t.Fatalf("dangling key %d survived the join", k)
		}
	}
}

func TestSynopsisEstimatesJoinAggregates(t *testing.T) {
	// COUNT over a predicate that spans the join (fact.ra range AND
	// dim.quality threshold) estimated from the synopsis must cover the
	// exact full-join answer — the paper's "more precise query results"
	// from maintained correlations.
	fact, dim := joinFixture(t, 40000)
	fullJoin, err := engine.HashJoin(fact, dim, "fieldID", "fieldID")
	if err != nil {
		t.Fatal(err)
	}
	pred := expr.And{
		L: expr.Between{Expr: expr.ColRef{Name: "ra"}, Lo: 150, Hi: 200},
		R: expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: "quality"}, Right: 0.5},
	}
	exactSel, err := pred.Filter(fullJoin, nil)
	if err != nil {
		t.Fatal(err)
	}
	exact := len(exactSel)

	im, err := New(fact, Config{Name: "u", Size: 4000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fact.Len(); i++ {
		im.Offer(int32(i))
	}
	joined, weights, err := Synopsis(im, []JoinSpec{{Dim: dim, FactKey: "fieldID", DimKey: "fieldID"}})
	if err != nil {
		t.Fatal(err)
	}
	layer := estimate.Layer{
		Name: "synopsis", Table: joined, Weights: weights,
		BaseRows: int64(fullJoin.Len()),
	}
	q := engine.Query{
		Table: "synopsis",
		Where: pred,
		Aggs:  []engine.AggSpec{{Func: engine.Count}},
	}
	ests, err := estimate.AggregateOn(layer, q, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !ests[0].Interval.Contains(float64(exact)) {
		t.Fatalf("join-synopsis count [%v, %v] misses exact %d",
			ests[0].Interval.Lo(), ests[0].Interval.Hi(), exact)
	}
	if rel := math.Abs(ests[0].Value()-float64(exact)) / float64(exact); rel > 0.15 {
		t.Fatalf("join-synopsis count off by %.1f%%", rel*100)
	}
}

func TestJoinWithWeightsValidation(t *testing.T) {
	fact, dim := joinFixture(t, 100)
	if _, _, err := JoinWithWeights(fact, []float64{1}, nil); err == nil {
		t.Fatal("weight length mismatch accepted")
	}
	if _, _, err := JoinWithWeights(fact, nil, []JoinSpec{{Dim: nil}}); err == nil {
		t.Fatal("nil dimension accepted")
	}
	if _, _, err := JoinWithWeights(fact, nil, []JoinSpec{{Dim: dim, FactKey: "ra", DimKey: "fieldID"}}); err == nil {
		t.Fatal("non-integer join key accepted")
	}
	// nil weights default to 1.
	joined, w, err := JoinWithWeights(fact, nil, []JoinSpec{{Dim: dim, FactKey: "fieldID", DimKey: "fieldID"}})
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() != 100 {
		t.Fatalf("joined %d rows", joined.Len())
	}
	for _, v := range w {
		if v != 1 {
			t.Fatalf("default weight %v", v)
		}
	}
}

func TestSynopsisMultiJoin(t *testing.T) {
	fact, dim := joinFixture(t, 1000)
	tag := table.MustNew("Tag", table.Schema{
		{Name: "objID", Type: column.Int64},
		{Name: "petroRad", Type: column.Float64},
	})
	for i := 0; i < 1000; i++ {
		if err := tag.AppendRow(table.Row{int64(i), float64(i % 7)}); err != nil {
			t.Fatal(err)
		}
	}
	im, err := New(fact, Config{Name: "u", Size: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fact.Len(); i++ {
		im.Offer(int32(i))
	}
	joined, weights, err := Synopsis(im, []JoinSpec{
		{Dim: dim, FactKey: "fieldID", DimKey: "fieldID"},
		{Dim: tag, FactKey: "objID", DimKey: "objID"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() != 200 || len(weights) != 200 {
		t.Fatalf("multi-join synopsis: %d rows, %d weights", joined.Len(), len(weights))
	}
	if _, err := joined.Float64("quality"); err != nil {
		t.Fatal("first dimension column missing")
	}
	if _, err := joined.Float64("petroRad"); err != nil {
		t.Fatal("second dimension column missing")
	}
}
