package impression

import (
	"fmt"

	"sciborq/internal/column"
	"sciborq/internal/engine"
	"sciborq/internal/table"
)

// JoinSpec names one foreign-key join from the fact table to a
// dimension: fact.FactKey = dim.DimKey.
type JoinSpec struct {
	Dim     *table.Table
	FactKey string
	DimKey  string
}

// weightCol is the reserved column carrying sample weights through
// joins.
const weightCol = "__sciborq_weight"

// Synopsis materialises an impression joined with its dimension tables —
// the join synopses of §3.1 ("Correlations"): because dimensions are
// complete and the join follows foreign keys, joining the *sample* of
// the fact table with the full dimensions yields exactly a sample of the
// full join (Acharya et al. [3]); correlations between join attributes
// are preserved and per-tuple weights survive the join. The returned
// weights align with the returned table's rows.
//
// Fact rows whose key has no dimension match are dropped by the inner
// join, exactly as they would be in the full-join population.
func Synopsis(im *Impression, joins []JoinSpec) (*table.Table, []float64, error) {
	layer, weights, err := im.Table()
	if err != nil {
		return nil, nil, err
	}
	return JoinWithWeights(layer, weights, joins)
}

// JoinWithWeights joins an arbitrary weighted sample table through the
// given FK joins, threading the weights.
func JoinWithWeights(layer *table.Table, weights []float64, joins []JoinSpec) (*table.Table, []float64, error) {
	if weights != nil && len(weights) != layer.Len() {
		return nil, nil, fmt.Errorf("impression: %d weights for %d rows", len(weights), layer.Len())
	}
	if layer.Schema().Index(weightCol) != -1 {
		return nil, nil, fmt.Errorf("impression: layer already carries the reserved column %q", weightCol)
	}
	// Augment the layer with a weight column so HashJoin threads it.
	schema := append(table.Schema{}, layer.Schema()...)
	schema = append(schema, table.ColumnDef{Name: weightCol, Type: column.Float64})
	augmented, err := table.New(layer.Name(), schema)
	if err != nil {
		return nil, nil, err
	}
	chunks := make([]column.Column, 0, len(schema))
	for _, name := range layer.Schema().Names() {
		c, err := layer.Col(name)
		if err != nil {
			return nil, nil, err
		}
		chunks = append(chunks, c.Slice(nil))
	}
	w := weights
	if w == nil {
		w = make([]float64, layer.Len())
		for i := range w {
			w[i] = 1
		}
	}
	wCopy := make([]float64, len(w))
	copy(wCopy, w)
	chunks = append(chunks, column.NewFloat64From(weightCol, wCopy))
	if err := augmented.AppendColumns(chunks); err != nil {
		return nil, nil, err
	}
	joined := augmented
	for i, j := range joins {
		if j.Dim == nil {
			return nil, nil, fmt.Errorf("impression: join %d has nil dimension", i)
		}
		joined, err = engine.HashJoin(joined, j.Dim, j.FactKey, j.DimKey)
		if err != nil {
			return nil, nil, fmt.Errorf("impression: join %d (%s=%s.%s): %w",
				i, j.FactKey, j.Dim.Name(), j.DimKey, err)
		}
	}
	outW, err := joined.Float64(weightCol)
	if err != nil {
		return nil, nil, err
	}
	// Strip the weight column from the output schema.
	keep := make([]string, 0, len(joined.Schema())-1)
	for _, name := range joined.Schema().Names() {
		if name != weightCol {
			keep = append(keep, name)
		}
	}
	out, err := joined.Project(joined.Name(), keep, nil)
	if err != nil {
		return nil, nil, err
	}
	finalW := make([]float64, len(outW))
	copy(finalW, outW)
	return out, finalW, nil
}
