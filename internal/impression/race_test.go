package impression

import (
	"sync"
	"testing"
)

// TestConcurrentOfferViewRefresh hammers one hierarchy with concurrent
// offers, view reads and refreshes (run under -race in CI). Every view
// observed mid-stream must satisfy the contract: strictly ascending
// positions within the offered range, size within the layer cap, and a
// per-layer version that never goes backwards.
func TestConcurrentOfferViewRefresh(t *testing.T) {
	const rows = 60_000
	base := buildBase(t, rows, 3)
	l0, err := New(base, Config{Name: "L0", Size: 3000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := New(base, Config{Name: "L1", Size: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHierarchy([]*Impression{l0, l1}, 1024)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < rows; i++ {
			h.Offer(int32(i))
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := h.Refresh(); err != nil {
				t.Errorf("refresh: %v", err)
				return
			}
		}
	}()

	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastVersion := map[string]uint64{}
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, im := range h.Layers() {
					v := im.View()
					if len(v.Positions) > im.Cap() {
						t.Errorf("%s: view has %d positions, cap %d", im.Name(), len(v.Positions), im.Cap())
						return
					}
					for i := 1; i < len(v.Positions); i++ {
						if v.Positions[i] <= v.Positions[i-1] {
							t.Errorf("%s: positions not strictly ascending at %d", im.Name(), i)
							return
						}
					}
					if len(v.Positions) > 0 && int(v.Positions[len(v.Positions)-1]) >= rows {
						t.Errorf("%s: position beyond offered range", im.Name())
						return
					}
					if v.Weights != nil && (len(v.Weights) != len(v.Positions) || len(v.Pis) != len(v.Positions)) {
						t.Errorf("%s: weight alignment broken", im.Name())
						return
					}
					if last := lastVersion[im.Name()]; v.Version < last {
						t.Errorf("%s: version went backwards (%d -> %d)", im.Name(), last, v.Version)
						return
					}
					lastVersion[im.Name()] = v.Version
				}
			}
		}()
	}
	wg.Wait()

	// Quiesced: the final views equal the sample sets exactly.
	for _, im := range h.Layers() {
		assertViewMatches(t, im, im.View())
	}
}
