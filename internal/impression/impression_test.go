package impression

import (
	"math"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/workload"
	"sciborq/internal/xrand"
)

// buildBase creates a base table with a bimodal ra distribution and
// appends rows through the impression, as the loader would.
func buildBase(t *testing.T, n int, seed uint64) *table.Table {
	t.Helper()
	tb := table.MustNew("PhotoObjAll", table.Schema{
		{Name: "objID", Type: column.Int64},
		{Name: "ra", Type: column.Float64},
		{Name: "dec", Type: column.Float64},
	})
	r := xrand.New(seed)
	rows := make([]table.Row, 0, n)
	for i := 0; i < n; i++ {
		ra := 120 + r.Float64()*120 // uniform [120, 240)
		dec := r.Float64() * 60
		rows = append(rows, table.Row{int64(i), ra, dec})
	}
	if err := tb.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	return tb
}

func focusedLogger(t *testing.T) *workload.Logger {
	t.Helper()
	l, err := workload.NewLogger([]workload.AttrSpec{
		{Name: "ra", Min: 120, Max: 240, Beta: 30},
		{Name: "dec", Min: 0, Max: 60, Beta: 30},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(77)
	for i := 0; i < 400; i++ {
		// Interest focused tightly on ra≈160.
		l.LogQuery(expr.Cone{RaCol: "ra", DecCol: "dec",
			Ra0: 160 + r.NormFloat64()*4, Dec0: 30 + r.NormFloat64()*4, Radius: 2})
	}
	return l
}

func TestNewValidation(t *testing.T) {
	base := buildBase(t, 10, 1)
	if _, err := New(nil, Config{Size: 5}); err == nil {
		t.Fatal("nil base accepted")
	}
	if _, err := New(base, Config{Size: 0}); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := New(base, Config{Size: 5, Policy: Biased}); err == nil {
		t.Fatal("biased without logger accepted")
	}
	l := focusedLogger(t)
	if _, err := New(base, Config{Size: 5, Policy: Biased, Logger: l, Attrs: []string{"zzz"}}); err == nil {
		t.Fatal("untracked bias attribute accepted")
	}
	if _, err := New(base, Config{Size: 5, Policy: Policy(99)}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := New(base, Config{Size: 5, Policy: LastSeen, K: 5, D: 2}); err == nil {
		t.Fatal("k > D accepted")
	}
}

func TestDefaultName(t *testing.T) {
	base := buildBase(t, 10, 1)
	im, err := New(base, Config{Size: 5})
	if err != nil {
		t.Fatal(err)
	}
	if im.Name() == "" || im.Policy() != Uniform || im.Cap() != 5 {
		t.Fatalf("metadata: %q %v %d", im.Name(), im.Policy(), im.Cap())
	}
}

func TestUniformImpression(t *testing.T) {
	base := buildBase(t, 5000, 2)
	im, err := New(base, Config{Name: "u", Size: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < base.Len(); i++ {
		im.Offer(int32(i))
	}
	if im.Len() != 500 || im.Offered() != 5000 {
		t.Fatalf("len=%d offered=%d", im.Len(), im.Offered())
	}
	if got := im.SampleFraction(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("fraction = %v", got)
	}
	tb, weights, err := im.Table()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 500 || len(weights) != 500 {
		t.Fatalf("materialised %d rows, %d weights", tb.Len(), len(weights))
	}
	for _, w := range weights {
		if w != 1 {
			t.Fatalf("uniform weight = %v", w)
		}
	}
	// Sample mean of ra should approximate the population mean (~180).
	ra, err := tb.Float64("ra")
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range ra {
		sum += v
	}
	if mean := sum / float64(len(ra)); math.Abs(mean-180) > 5 {
		t.Fatalf("uniform sample ra mean = %v", mean)
	}
}

func TestTableCaching(t *testing.T) {
	base := buildBase(t, 100, 4)
	im, _ := New(base, Config{Size: 10, Seed: 1})
	for i := 0; i < 50; i++ {
		im.Offer(int32(i))
	}
	t1, _, err := im.Table()
	if err != nil {
		t.Fatal(err)
	}
	t2, _, _ := im.Table()
	if t1 != t2 {
		t.Fatal("cache miss without mutation")
	}
	im.Offer(50)
	t3, _, _ := im.Table()
	if t3 == t1 {
		t.Fatal("stale cache after mutation")
	}
}

func TestBiasedImpressionFocus(t *testing.T) {
	base := buildBase(t, 60000, 5)
	logger := focusedLogger(t)
	im, err := New(base, Config{
		Name: "b", Size: 2000, Policy: Biased,
		Logger: logger, Attrs: []string{"ra"}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < base.Len(); i++ {
		im.Offer(int32(i))
	}
	tb, weights, err := im.Table()
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := tb.Float64("ra")
	// The base is uniform on [120,240); interest is at ra≈160±4. The
	// biased impression must hold far more focal tuples than the 6.7%
	// a uniform sample would give for the window [152,168].
	focal := 0
	for _, v := range ra {
		if v >= 152 && v <= 168 {
			focal++
		}
	}
	frac := float64(focal) / float64(len(ra))
	if frac < 0.3 {
		t.Fatalf("focal fraction = %v, want >> 0.067 (uniform rate)", frac)
	}
	// Weights of focal tuples must exceed weights of anti-focal ones.
	var wFocal, wAnti, nFocal, nAnti float64
	for i, v := range ra {
		if v >= 152 && v <= 168 {
			wFocal += weights[i]
			nFocal++
		} else if v >= 200 {
			wAnti += weights[i]
			nAnti++
		}
	}
	if nFocal > 0 && nAnti > 0 && wFocal/nFocal <= wAnti/nAnti {
		t.Fatalf("focal weight %v not above anti-focal %v", wFocal/nFocal, wAnti/nAnti)
	}
}

func TestBiasedMultiAttribute(t *testing.T) {
	base := buildBase(t, 20000, 6)
	logger := focusedLogger(t)
	im, err := New(base, Config{
		Name: "b2", Size: 1000, Policy: Biased,
		Logger: logger, Attrs: []string{"ra", "dec"}, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < base.Len(); i++ {
		im.Offer(int32(i))
	}
	tb, _, err := im.Table()
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := tb.Float64("ra")
	dec, _ := tb.Float64("dec")
	both := 0
	for i := range ra {
		if math.Abs(ra[i]-160) < 10 && math.Abs(dec[i]-30) < 10 {
			both++
		}
	}
	// Uniform rate for that square is (20/120)*(20/60) ≈ 5.6%.
	if frac := float64(both) / float64(len(ra)); frac < 0.2 {
		t.Fatalf("2-D focal fraction = %v", frac)
	}
}

func TestLastSeenImpression(t *testing.T) {
	base := buildBase(t, 30000, 9)
	im, err := New(base, Config{
		Name: "ls", Size: 300, Policy: LastSeen, K: 150, D: 1000, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < base.Len(); i++ {
		im.Offer(int32(i))
	}
	recent := 0
	for _, s := range im.Samples() {
		if s.Pos >= 15000 {
			recent++
		}
	}
	if frac := float64(recent) / 300; frac < 0.9 {
		t.Fatalf("recent fraction = %v; Last Seen must favour fresh tuples", frac)
	}
}

func TestSamplesWeightAlignment(t *testing.T) {
	base := buildBase(t, 1000, 11)
	logger := focusedLogger(t)
	im, _ := New(base, Config{
		Name: "align", Size: 100, Policy: Biased,
		Logger: logger, Attrs: []string{"ra"}, Seed: 12,
	})
	for i := 0; i < base.Len(); i++ {
		im.Offer(int32(i))
	}
	samples := im.Samples()
	tb, weights, _ := im.Table()
	ra, _ := tb.Float64("ra")
	baseRa, _ := base.Float64("ra")
	for i, s := range samples {
		if ra[i] != baseRa[s.Pos] {
			t.Fatalf("row %d: materialised %v != base[%d]=%v", i, ra[i], s.Pos, baseRa[s.Pos])
		}
		if weights[i] != s.Weight {
			t.Fatalf("row %d: weight %v != sample weight %v", i, weights[i], s.Weight)
		}
	}
}

func TestHierarchyValidation(t *testing.T) {
	base := buildBase(t, 100, 13)
	l0, _ := New(base, Config{Name: "l0", Size: 50, Seed: 1})
	l1, _ := New(base, Config{Name: "l1", Size: 50, Seed: 2})
	if _, err := NewHierarchy(nil, 0); err == nil {
		t.Fatal("empty hierarchy accepted")
	}
	if _, err := NewHierarchy([]*Impression{l0, l1}, 0); err == nil {
		t.Fatal("non-decreasing sizes accepted")
	}
	other := buildBase(t, 100, 14)
	o1, _ := New(other, Config{Name: "o1", Size: 10, Seed: 3})
	if _, err := NewHierarchy([]*Impression{l0, o1}, 0); err == nil {
		t.Fatal("mixed base tables accepted")
	}
}

func TestHierarchyOfferAndRefresh(t *testing.T) {
	base := buildBase(t, 20000, 15)
	l0, _ := New(base, Config{Name: "l0", Size: 2000, Seed: 1})
	l1, _ := New(base, Config{Name: "l1", Size: 200, Seed: 2})
	l2, _ := New(base, Config{Name: "l2", Size: 20, Seed: 3})
	h, err := NewHierarchy([]*Impression{l0, l1, l2}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if h.Depth() != 3 {
		t.Fatalf("depth = %d", h.Depth())
	}
	for i := 0; i < base.Len(); i++ {
		h.Offer(int32(i))
	}
	if l0.Len() != 2000 {
		t.Fatalf("layer0 len = %d", l0.Len())
	}
	if l1.Len() != 200 || l2.Len() != 20 {
		t.Fatalf("derived layers: %d, %d", l1.Len(), l2.Len())
	}
	// Derived layers must contain only positions present in their parent.
	parent := make(map[int32]bool)
	for _, s := range l0.Samples() {
		parent[s.Pos] = true
	}
	for _, s := range l1.Samples() {
		if !parent[s.Pos] {
			t.Fatalf("layer1 holds position %d absent from layer0", s.Pos)
		}
	}
}

func TestHierarchyAscending(t *testing.T) {
	base := buildBase(t, 1000, 16)
	l0, _ := New(base, Config{Name: "l0", Size: 500, Seed: 1})
	l1, _ := New(base, Config{Name: "l1", Size: 50, Seed: 2})
	h, _ := NewHierarchy([]*Impression{l0, l1}, 100)
	asc := h.Ascending()
	if asc[0].Cap() != 50 || asc[1].Cap() != 500 {
		t.Fatalf("ascending order wrong: %d, %d", asc[0].Cap(), asc[1].Cap())
	}
}

func TestHierarchyLargestWithin(t *testing.T) {
	base := buildBase(t, 10000, 17)
	l0, _ := New(base, Config{Name: "l0", Size: 1000, Seed: 1})
	l1, _ := New(base, Config{Name: "l1", Size: 100, Seed: 2})
	h, _ := NewHierarchy([]*Impression{l0, l1}, 500)
	for i := 0; i < base.Len(); i++ {
		h.Offer(int32(i))
	}
	if _, ok := h.LargestWithin(50); ok {
		t.Fatal("found layer under impossible budget")
	}
	got, ok := h.LargestWithin(100)
	if !ok || got.Cap() != 100 {
		t.Fatalf("LargestWithin(100) = %v, %v", got, ok)
	}
	got, ok = h.LargestWithin(1_000_000)
	if !ok || got.Cap() != 1000 {
		t.Fatalf("LargestWithin(1M) picked %d", got.Cap())
	}
}

func TestBiasedHierarchyInheritsFocus(t *testing.T) {
	// §3.1: "the focal point of the larger impression is inherited by
	// the smaller". The small derived layer must still over-represent
	// the focal region.
	base := buildBase(t, 40000, 18)
	logger := focusedLogger(t)
	mk := func(name string, size int, seed uint64) *Impression {
		im, err := New(base, Config{
			Name: name, Size: size, Policy: Biased,
			Logger: logger, Attrs: []string{"ra"}, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return im
	}
	l0 := mk("l0", 4000, 1)
	l1 := mk("l1", 400, 2)
	h, _ := NewHierarchy([]*Impression{l0, l1}, 2000)
	for i := 0; i < base.Len(); i++ {
		h.Offer(int32(i))
	}
	if err := h.Refresh(); err != nil {
		t.Fatal(err)
	}
	tb, _, err := l1.Table()
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := tb.Float64("ra")
	focal := 0
	for _, v := range ra {
		if v >= 152 && v <= 168 {
			focal++
		}
	}
	if frac := float64(focal) / float64(len(ra)); frac < 0.25 {
		t.Fatalf("derived layer focal fraction = %v", frac)
	}
}

func TestPolicyString(t *testing.T) {
	if Uniform.String() != "uniform" || LastSeen.String() != "last-seen" ||
		Biased.String() != "biased" || Policy(9).String() != "unknown" {
		t.Fatal("policy names wrong")
	}
}
