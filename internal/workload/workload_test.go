package workload

import (
	"math"
	"testing"

	"sciborq/internal/expr"
	"sciborq/internal/vec"
	"sciborq/internal/xrand"
)

func raDecAttrs() []AttrSpec {
	return []AttrSpec{
		{Name: "ra", Min: 120, Max: 240, Beta: 30},
		{Name: "dec", Min: 0, Max: 60, Beta: 30},
	}
}

func TestNewLoggerValidation(t *testing.T) {
	if _, err := NewLogger(nil, false); err == nil {
		t.Fatal("empty attr list accepted")
	}
	if _, err := NewLogger([]AttrSpec{{Name: "a", Min: 0, Max: 1, Beta: 0}}, false); err == nil {
		t.Fatal("beta=0 accepted")
	}
	dup := []AttrSpec{
		{Name: "a", Min: 0, Max: 1, Beta: 2},
		{Name: "a", Min: 0, Max: 2, Beta: 2},
	}
	if _, err := NewLogger(dup, false); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
}

func TestLogQueryExtractsConePoints(t *testing.T) {
	l, err := NewLogger(raDecAttrs(), true)
	if err != nil {
		t.Fatal(err)
	}
	l.LogQuery(expr.Cone{RaCol: "ra", DecCol: "dec", Ra0: 185, Dec0: 30, Radius: 3})
	h, err := l.Histogram("ra")
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 1 {
		t.Fatalf("ra histogram N = %d", h.N)
	}
	if got := h.Bins[h.BinIndex(185)].Count; got != 1 {
		t.Fatalf("185 not recorded: %d", got)
	}
	hd, _ := l.Histogram("dec")
	if hd.N != 1 || hd.Bins[hd.BinIndex(30)].Count != 1 {
		t.Fatal("dec point not recorded")
	}
	if got := l.RawValues("ra"); len(got) != 1 || got[0] != 185 {
		t.Fatalf("raw values = %v", got)
	}
	if l.Queries() != 1 {
		t.Fatalf("queries = %d", l.Queries())
	}
}

func TestLogQueryIgnoresUntrackedAttrs(t *testing.T) {
	l, _ := NewLogger(raDecAttrs(), false)
	l.LogQuery(expr.Cmp{Op: vec.Gt, Left: expr.ColRef{Name: "rmag"}, Right: 17})
	ra, _ := l.Histogram("ra")
	if ra.N != 0 {
		t.Fatal("untracked attribute leaked into ra histogram")
	}
	if l.Queries() != 1 {
		t.Fatal("query not counted")
	}
}

func TestLogQueryNilAndCompound(t *testing.T) {
	l, _ := NewLogger(raDecAttrs(), false)
	l.LogQuery(nil)
	if l.Queries() != 0 {
		t.Fatal("nil query counted")
	}
	p := expr.And{
		L: expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: "ra"}, Right: 150},
		R: expr.Between{Expr: expr.ColRef{Name: "dec"}, Lo: 10, Hi: 20},
	}
	l.LogQuery(p)
	ra, _ := l.Histogram("ra")
	dec, _ := l.Histogram("dec")
	if ra.N != 1 || dec.N != 1 {
		t.Fatalf("compound points not logged: ra=%d dec=%d", ra.N, dec.N)
	}
	// Between logs its midpoint.
	if dec.Bins[dec.BinIndex(15)].Count != 1 {
		t.Fatal("between midpoint not logged")
	}
}

func TestHistogramUnknownAttr(t *testing.T) {
	l, _ := NewLogger(raDecAttrs(), false)
	if _, err := l.Histogram("nope"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if _, err := l.Live("nope"); err == nil {
		t.Fatal("unknown live attribute accepted")
	}
}

func TestHistogramSnapshotIsolation(t *testing.T) {
	l, _ := NewLogger(raDecAttrs(), false)
	snap, _ := l.Histogram("ra")
	l.LogPoints([]expr.Point{{Attr: "ra", Value: 130}})
	if snap.N != 0 {
		t.Fatal("snapshot observed later writes")
	}
	live, _ := l.Live("ra")
	if live.N != 1 {
		t.Fatal("live view missed write")
	}
}

func TestAttrsSorted(t *testing.T) {
	l, _ := NewLogger(raDecAttrs(), false)
	attrs := l.Attrs()
	if len(attrs) != 2 || attrs[0] != "dec" || attrs[1] != "ra" {
		t.Fatalf("attrs = %v", attrs)
	}
}

func TestLoggerDecay(t *testing.T) {
	l, _ := NewLogger(raDecAttrs(), true)
	for i := 0; i < 100; i++ {
		l.LogPoints([]expr.Point{{Attr: "ra", Value: 130}})
	}
	l.Decay(0.5)
	h, _ := l.Histogram("ra")
	if h.N != 50 {
		t.Fatalf("decayed N = %d", h.N)
	}
	if len(l.RawValues("ra")) != 0 {
		t.Fatal("raw values survived decay")
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	r := xrand.New(1)
	if _, err := NewGenerator(nil, r); err == nil {
		t.Fatal("no focal points accepted")
	}
	if _, err := NewGenerator(Figure4Focals(), nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	bad := []FocalPoint{{Ra: 1, Dec: 1, Weight: 0}}
	if _, err := NewGenerator(bad, r); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestGeneratorClustersAroundFocals(t *testing.T) {
	g, err := NewGenerator(Figure4Focals(), xrand.New(42))
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	nearA, nearB := 0, 0
	for _, c := range g.NextN(n) {
		if math.Abs(c.Ra0-160) < 24 {
			nearA++
		}
		if math.Abs(c.Ra0-210) < 15 {
			nearB++
		}
		if c.RaCol != "ra" || c.DecCol != "dec" {
			t.Fatal("generated cone misbound columns")
		}
	}
	if fa := float64(nearA) / n; fa < 0.45 || fa > 0.75 {
		t.Fatalf("focal A fraction = %v, want ~0.6", fa)
	}
	if fb := float64(nearB) / n; fb < 0.25 || fb > 0.55 {
		t.Fatalf("focal B fraction = %v, want ~0.4", fb)
	}
}

func TestGeneratorDefaultRadius(t *testing.T) {
	g, _ := NewGenerator([]FocalPoint{{Ra: 1, Dec: 1, Weight: 1}}, xrand.New(1))
	if c := g.Next(); c.Radius != 1 {
		t.Fatalf("default radius = %v", c.Radius)
	}
}

func TestGeneratorShift(t *testing.T) {
	g, _ := NewGenerator([]FocalPoint{{Ra: 150, Dec: 10, SigmaRa: 1, SigmaDec: 1, Weight: 1}}, xrand.New(7))
	if err := g.Shift([]FocalPoint{{Ra: 230, Dec: 50, SigmaRa: 1, SigmaDec: 1, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	for _, c := range g.NextN(100) {
		if math.Abs(c.Ra0-230) > 10 {
			t.Fatalf("post-shift query at ra=%v", c.Ra0)
		}
	}
	if err := g.Shift(nil); err == nil {
		t.Fatal("empty shift accepted")
	}
}

func TestGeneratorFeedsLoggerFigure4Shape(t *testing.T) {
	// End to end: 400 queries as in Figure 4, predicate set must be
	// bimodal on ra.
	l, _ := NewLogger(raDecAttrs(), false)
	g, _ := NewGenerator(Figure4Focals(), xrand.New(9))
	for _, c := range g.NextN(400) {
		l.LogQuery(c)
	}
	h, _ := l.Histogram("ra")
	if h.N != 400 {
		t.Fatalf("predicate set size = %d, want 400", h.N)
	}
	peakA := h.Bins[h.BinIndex(160)].Count
	peakB := h.Bins[h.BinIndex(210)].Count
	valley := h.Bins[h.BinIndex(185)].Count
	if peakA <= valley*2 || peakB <= valley*2 {
		t.Fatalf("not bimodal: peaks %d/%d valley %d", peakA, peakB, valley)
	}
}
