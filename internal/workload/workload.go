// Package workload implements SciBORQ's query-workload infrastructure
// (§4): a logger that extracts the predicate set — the attribute values
// requested by queries — into per-attribute Figure-5 histograms, and
// generators that produce SkyServer-like exploration workloads with
// static, drifting, or mixed focal points.
package workload

import (
	"fmt"
	"sort"
	"sync"

	"sciborq/internal/expr"
	"sciborq/internal/stats"
)

// AttrSpec declares one attribute whose predicate values are tracked.
type AttrSpec struct {
	Name string
	// Min, Max bound the histogram domain (values outside clamp).
	Min, Max float64
	// Beta is the number of equal-width bins (β in the paper).
	Beta int
}

// Logger maintains, per interesting attribute, the Figure-5 histogram
// over the predicate set, plus the raw logged values (used only by the
// full-KDE reference in Figure 4 — a real deployment would keep just the
// histograms).
type Logger struct {
	mu      sync.Mutex
	hists   map[string]*stats.Histogram
	joints  map[pairKey]*stats.Histogram2D
	raw     map[string][]float64
	keepRaw bool
	queries int64
	// gen counts histogram mutations; Live/LiveJoint cache one immutable
	// clone per generation so the per-tuple bias path never reads a
	// histogram another goroutine is writing.
	gen        int64
	snaps      map[string]histSnap
	jointSnaps map[pairKey]jointSnap
}

// histSnap is one generation-stamped immutable histogram clone.
type histSnap struct {
	gen int64
	h   *stats.Histogram
}

type jointSnap struct {
	gen int64
	h   *stats.Histogram2D
}

// NewLogger builds a logger for the given attributes. keepRaw retains
// the raw predicate values for the f̂ reference estimator.
func NewLogger(attrs []AttrSpec, keepRaw bool) (*Logger, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("workload: logger needs at least one attribute")
	}
	l := &Logger{
		hists:   make(map[string]*stats.Histogram, len(attrs)),
		raw:     make(map[string][]float64),
		keepRaw: keepRaw,
	}
	for _, a := range attrs {
		h, err := stats.NewHistogram(a.Min, a.Max, a.Beta)
		if err != nil {
			return nil, fmt.Errorf("workload: attribute %q: %w", a.Name, err)
		}
		if _, dup := l.hists[a.Name]; dup {
			return nil, fmt.Errorf("workload: duplicate attribute %q", a.Name)
		}
		l.hists[a.Name] = h
	}
	return l, nil
}

// LogQuery extracts the predicate points of pred and records them.
// Points on untracked attributes are ignored.
func (l *Logger) LogQuery(pred expr.Predicate) {
	if pred == nil {
		return
	}
	l.LogPoints(pred.Points())
}

// LogPoints records pre-extracted predicate points.
func (l *Logger) LogPoints(pts []expr.Point) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.queries++
	l.gen++
	tracked := make([]point, 0, len(pts))
	for _, pt := range pts {
		h, ok := l.hists[pt.Attr]
		if !ok {
			continue
		}
		h.Observe(pt.Value)
		tracked = append(tracked, point{attr: pt.Attr, value: pt.Value})
		if l.keepRaw {
			l.raw[pt.Attr] = append(l.raw[pt.Attr], pt.Value)
		}
	}
	l.observeJointsLocked(tracked)
}

// Histogram returns a snapshot (clone) of the predicate-set histogram
// for attr, or an error for untracked attributes.
func (l *Logger) Histogram(attr string) (*stats.Histogram, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	h, ok := l.hists[attr]
	if !ok {
		return nil, fmt.Errorf("workload: attribute %q is not tracked (have %v)", attr, l.attrsLocked())
	}
	return h.Clone(), nil
}

// Live returns the current histogram for attr as an immutable snapshot.
// The impression maintenance path reads it on every ingested tuple, so
// the snapshot is cached per mutation generation — a quiescent workload
// costs one clone total, not one per tuple — and a query logged by a
// concurrent session can never race the read (the snapshot is frozen;
// the next Live call after the mutation returns a fresh one). Callers
// must not mutate the result.
func (l *Logger) Live(attr string) (*stats.Histogram, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	h, ok := l.hists[attr]
	if !ok {
		return nil, fmt.Errorf("workload: attribute %q is not tracked", attr)
	}
	if s, ok := l.snaps[attr]; ok && s.gen == l.gen {
		return s.h, nil
	}
	if l.snaps == nil {
		l.snaps = make(map[string]histSnap)
	}
	s := histSnap{gen: l.gen, h: h.Clone()}
	l.snaps[attr] = s
	return s.h, nil
}

// RawValues returns a copy of the raw predicate values for attr
// (empty unless keepRaw was set).
func (l *Logger) RawValues(attr string) []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]float64, len(l.raw[attr]))
	copy(out, l.raw[attr])
	return out
}

// Queries returns the number of logged queries.
func (l *Logger) Queries() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.queries
}

// Attrs returns the tracked attribute names, sorted.
func (l *Logger) Attrs() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.attrsLocked()
}

func (l *Logger) attrsLocked() []string {
	out := make([]string, 0, len(l.hists))
	for a := range l.hists {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Decay ages all histograms by factor (see stats.Histogram.Decay); used
// by adaptive impressions to track workload shift.
func (l *Logger) Decay(factor float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.gen++
	for _, h := range l.hists {
		h.Decay(factor)
	}
	for _, h := range l.joints {
		h.Decay(factor)
	}
	if l.keepRaw {
		// Raw values are reference-only; drop them on decay so the f̂
		// reference follows the same recency horizon.
		for k := range l.raw {
			l.raw[k] = nil
		}
	}
}
