package workload

import (
	"fmt"

	"sciborq/internal/stats"
)

// pairKey identifies an ordered attribute pair.
type pairKey struct{ a, b string }

// TrackJoint starts joint (two-dimensional) predicate logging for an
// attribute pair — the multi-dimensional histograms the paper names as
// future work (§6). Both attributes must already be tracked; the joint
// grid reuses their declared ranges. After TrackJoint, every query that
// requests values on both attributes contributes one point to the joint
// histogram, so correlated interest ((ra₁, dec₁) and (ra₂, dec₂)) is
// distinguishable from its cross-products.
func (l *Logger) TrackJoint(attrA, attrB string, binsA, binsB int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ha, ok := l.hists[attrA]
	if !ok {
		return fmt.Errorf("workload: joint tracking needs tracked attribute %q", attrA)
	}
	hb, ok := l.hists[attrB]
	if !ok {
		return fmt.Errorf("workload: joint tracking needs tracked attribute %q", attrB)
	}
	if attrA == attrB {
		return fmt.Errorf("workload: joint tracking needs two distinct attributes")
	}
	if l.joints == nil {
		l.joints = make(map[pairKey]*stats.Histogram2D)
	}
	k := pairKey{attrA, attrB}
	if _, dup := l.joints[k]; dup {
		return fmt.Errorf("workload: joint tracking already enabled for (%s, %s)", attrA, attrB)
	}
	h2, err := stats.NewHistogram2D(ha.Min, ha.Max(), binsA, hb.Min, hb.Max(), binsB)
	if err != nil {
		return err
	}
	l.joints[k] = h2
	return nil
}

// LiveJoint returns the current joint histogram for the pair as an
// immutable generation-cached snapshot (same discipline as Live: one
// clone per workload mutation, never a torn read against a concurrent
// LogQuery). Callers must not mutate the result.
func (l *Logger) LiveJoint(attrA, attrB string) (*stats.Histogram2D, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	k := pairKey{attrA, attrB}
	h, ok := l.joints[k]
	if !ok {
		return nil, fmt.Errorf("workload: pair (%s, %s) is not jointly tracked", attrA, attrB)
	}
	if s, ok := l.jointSnaps[k]; ok && s.gen == l.gen {
		return s.h, nil
	}
	if l.jointSnaps == nil {
		l.jointSnaps = make(map[pairKey]jointSnap)
	}
	s := jointSnap{gen: l.gen, h: h.Clone()}
	l.jointSnaps[k] = s
	return s.h, nil
}

// Joint returns a snapshot (clone) of the joint histogram for the pair.
func (l *Logger) Joint(attrA, attrB string) (*stats.Histogram2D, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	h, ok := l.joints[pairKey{attrA, attrB}]
	if !ok {
		return nil, fmt.Errorf("workload: pair (%s, %s) is not jointly tracked", attrA, attrB)
	}
	return h.Clone(), nil
}

// observeJointsLocked records joint points for every tracked pair whose
// two attributes both appear in the query's predicate points. When an
// attribute appears several times in one query, each cross pairing is
// recorded (the predicate set semantics of §4 applied per dimension
// pair).
func (l *Logger) observeJointsLocked(pts []point) {
	if len(l.joints) == 0 {
		return
	}
	for k, h := range l.joints {
		for _, pa := range pts {
			if pa.attr != k.a {
				continue
			}
			for _, pb := range pts {
				if pb.attr != k.b {
					continue
				}
				h.Observe(pa.value, pb.value)
			}
		}
	}
}

// point mirrors expr.Point without the import (avoiding a cycle is not
// an issue here; the alias keeps observeJointsLocked decoupled).
type point struct {
	attr  string
	value float64
}
