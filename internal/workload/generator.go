package workload

import (
	"fmt"

	"sciborq/internal/expr"
	"sciborq/internal/xrand"
)

// FocalPoint is a centre of scientific interest on the sky with a
// dispersion (how tightly queries cluster around it) and a weight (how
// often it is queried relative to other focal points).
type FocalPoint struct {
	Ra, Dec    float64
	SigmaRa    float64
	SigmaDec   float64
	Weight     float64
	ConeRadius float64 // radius of generated cone queries, degrees
}

// Generator produces SkyServer-style cone queries clustered around focal
// points, reproducing the multi-modal predicate sets of Figure 4.
type Generator struct {
	focals []FocalPoint
	total  float64
	rng    *xrand.RNG
}

// NewGenerator builds a generator over the given focal points.
func NewGenerator(focals []FocalPoint, rng *xrand.RNG) (*Generator, error) {
	if len(focals) == 0 {
		return nil, fmt.Errorf("workload: generator needs at least one focal point")
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: nil rng")
	}
	g := &Generator{focals: append([]FocalPoint(nil), focals...), rng: rng}
	for i, f := range g.focals {
		if f.Weight <= 0 {
			return nil, fmt.Errorf("workload: focal point %d has non-positive weight %g", i, f.Weight)
		}
		if f.ConeRadius <= 0 {
			g.focals[i].ConeRadius = 1
		}
		g.total += f.Weight
	}
	return g, nil
}

// Next returns one cone query predicate drawn from the workload mix.
func (g *Generator) Next() expr.Cone {
	u := g.rng.Float64() * g.total
	var f FocalPoint
	for _, cand := range g.focals {
		if u < cand.Weight {
			f = cand
			break
		}
		u -= cand.Weight
		f = cand // fall through to last on numeric edge
	}
	return expr.Cone{
		RaCol:  "ra",
		DecCol: "dec",
		Ra0:    f.Ra + g.rng.NormFloat64()*f.SigmaRa,
		Dec0:   f.Dec + g.rng.NormFloat64()*f.SigmaDec,
		Radius: f.ConeRadius,
	}
}

// NextN returns n generated predicates.
func (g *Generator) NextN(n int) []expr.Cone {
	out := make([]expr.Cone, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Shift replaces the focal points — the workload drift of experiment E4
// (the scientist's attention moves to a different sky region).
func (g *Generator) Shift(focals []FocalPoint) error {
	ng, err := NewGenerator(focals, g.rng)
	if err != nil {
		return err
	}
	g.focals = ng.focals
	g.total = ng.total
	return nil
}

// Figure4Focals returns the focal-point mix used to regenerate Figure 4:
// predicate values for ra concentrated near 160 and 210 within [120,240],
// and for dec near 15 and 45 within [0,60] — the paper's two-humped
// predicate-set histograms.
func Figure4Focals() []FocalPoint {
	return []FocalPoint{
		{Ra: 160, Dec: 15, SigmaRa: 8, SigmaDec: 4, Weight: 0.6, ConeRadius: 2},
		{Ra: 210, Dec: 45, SigmaRa: 5, SigmaDec: 5, Weight: 0.4, ConeRadius: 2},
	}
}
