package recycler

import (
	"reflect"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/engine"
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

var seqOpts = engine.ExecOptions{Parallelism: 1}

func testTable(t *testing.T) *table.Table {
	t.Helper()
	tb := table.MustNew("t", table.Schema{{Name: "x", Type: column.Float64}})
	for i := 0; i < 10; i++ {
		if err := tb.AppendRow(table.Row{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func ge(col string, v float64) expr.Predicate {
	return expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: col}, Right: v}
}

func lt(col string, v float64) expr.Predicate {
	return expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: col}, Right: v}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := New(-1); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestHitAndMiss(t *testing.T) {
	tb := testTable(t)
	r, _ := New(1 << 20)
	pred := ge("x", 5)
	s1, scan1, err := r.Filter(tb, pred, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	if scan1.ScannedRows != tb.Len() {
		t.Fatalf("cold scan touched %d rows, want %d", scan1.ScannedRows, tb.Len())
	}
	s2, scan2, err := r.Filter(tb, pred, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	if scan2.ScannedRows != 0 {
		t.Fatalf("hit scanned %d rows, want 0", scan2.ScannedRows)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("cached selection differs")
	}
	st := r.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", st.HitRate())
	}
	if st.Bytes != int64(len(s1))*4 {
		t.Fatalf("bytes = %d, want %d", st.Bytes, len(s1)*4)
	}
}

func TestCommutedPredicateHits(t *testing.T) {
	tb := testTable(t)
	r, _ := New(1 << 20)
	a, b := ge("x", 2), lt("x", 7)
	if _, _, err := r.Filter(tb, expr.And{L: a, R: b}, seqOpts); err != nil {
		t.Fatal(err)
	}
	sel, _, err := r.Filter(tb, expr.And{L: b, R: a}, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("commuted AND did not share an entry: %+v", st)
	}
	// Both orders describe 2 <= x < 7 over x = 0..9.
	if want := (vec.Sel{2, 3, 4, 5, 6}); !reflect.DeepEqual(sel, want) {
		t.Fatalf("sel = %v, want %v", sel, want)
	}
	// Redundant bounds normalise away: adding a looser x < 9 on top of
	// x < 7 canonicalises to the same entry — a third lookup, second hit.
	redundant := expr.And{L: expr.And{L: a, R: b}, R: lt("x", 9)}
	if _, _, err := r.Filter(tb, redundant, seqOpts); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Entries != 1 || st.Hits != 2 {
		t.Fatalf("redundant bound did not normalise onto the entry: %+v", st)
	}
}

func TestAppendInvalidates(t *testing.T) {
	tb := testTable(t)
	r, _ := New(1 << 20)
	pred := ge("x", 5)
	s1, _, _ := r.Filter(tb, pred, seqOpts)
	if err := tb.AppendRow(table.Row{50.0}); err != nil {
		t.Fatal(err)
	}
	s2, _, _ := r.Filter(tb, pred, seqOpts)
	if len(s2) != len(s1)+1 {
		t.Fatalf("append not reflected: %v -> %v", s1, s2)
	}
	if r.Stats().Hits != 0 {
		t.Fatal("stale entry served after append")
	}
}

// TestVersionKeysNeverAliasSameLength is the aliasing regression the
// seed key discipline allowed: the old cache keyed hits by
// (name, length, predicate) read off the live table, so two distinct
// same-name same-length tables — a truncate/rebuild, a re-materialised
// sample — could serve each other's selections. ID+version keys cannot.
func TestVersionKeysNeverAliasSameLength(t *testing.T) {
	build := func(vals ...float64) *table.Table {
		tb := table.MustNew("rebuilt", table.Schema{{Name: "x", Type: column.Float64}})
		for _, v := range vals {
			if err := tb.AppendRow(table.Row{v}); err != nil {
				t.Fatal(err)
			}
		}
		return tb
	}
	// Same name, same length, different content.
	t1 := build(1, 2, 3, 4)
	t2 := build(9, 9, 9, 9)
	if t1.Name() != t2.Name() || t1.Len() != t2.Len() {
		t.Fatal("fixture must collide on name and length")
	}
	r, _ := New(1 << 20)
	pred := ge("x", 5)
	s1, _, _ := r.Filter(t1, pred, seqOpts)
	s2, _, _ := r.Filter(t2, pred, seqOpts)
	if len(s1) != 0 || len(s2) != 4 {
		t.Fatalf("selections aliased: %v vs %v", s1, s2)
	}
	if st := r.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("same-name same-length tables shared an entry: %+v", st)
	}
	// Same logical table, mutation that lands back on the same length:
	// a failed batch rolls back to the old row count but bumps the
	// version, so the cache conservatively refuses the old entry.
	v0 := t1.Version()
	if err := t1.AppendBatch([]table.Row{{7.0}, {"not a float"}}); err == nil {
		t.Fatal("bad batch accepted")
	}
	if t1.Len() != 4 {
		t.Fatalf("rollback left %d rows", t1.Len())
	}
	if t1.Version() == v0 {
		t.Fatal("rollback did not bump the version")
	}
	if _, _, err := r.Filter(t1, pred, seqOpts); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Hits != 0 {
		t.Fatalf("rolled-back table served a pre-rollback selection: %+v", st)
	}
}

func TestSubsumptionRefinement(t *testing.T) {
	tb := testTable(t)
	r, _ := New(1 << 20)
	base := ge("x", 2) // matches 2..9
	refined := expr.And{L: base, R: lt("x", 5)}
	if _, _, err := r.Filter(tb, base, seqOpts); err != nil {
		t.Fatal(err)
	}
	sel, scan, err := r.Filter(tb, refined, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	if want := (vec.Sel{2, 3, 4}); !reflect.DeepEqual(sel, want) {
		t.Fatalf("refined sel = %v, want %v", sel, want)
	}
	st := r.Stats()
	if st.SubsumedHits != 1 || st.Misses != 1 {
		t.Fatalf("refinement not subsumed: %+v", st)
	}
	// The residual ran over the 8 cached positions, not the 10-row table.
	if scan.ScannedRows != 8 {
		t.Fatalf("residual scanned %d rows, want 8 (|cached sel|)", scan.ScannedRows)
	}
	// The refined result was itself admitted: repeating it is an exact hit.
	if _, _, err := r.Filter(tb, refined, seqOpts); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Hits != 1 {
		t.Fatalf("refined entry not cached: %+v", st)
	}
}

// TestSubsumptionByImplication exercises the interval-containment arm:
// a narrower BETWEEN refines a cached wider one even though no conjunct
// key matches verbatim.
func TestSubsumptionByImplication(t *testing.T) {
	tb := testTable(t)
	r, _ := New(1 << 20)
	wide := expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 1, Hi: 8}
	narrow := expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 3, Hi: 4}
	if _, _, err := r.Filter(tb, wide, seqOpts); err != nil {
		t.Fatal(err)
	}
	sel, scan, err := r.Filter(tb, narrow, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	if want := (vec.Sel{3, 4}); !reflect.DeepEqual(sel, want) {
		t.Fatalf("sel = %v, want %v", sel, want)
	}
	if st := r.Stats(); st.SubsumedHits != 1 {
		t.Fatalf("implication not used: %+v", st)
	}
	if scan.ScannedRows > 8 {
		t.Fatalf("residual scanned %d rows, want <= |cached sel| = 8", scan.ScannedRows)
	}
	// The reverse direction must NOT subsume: widening re-scans.
	wider := expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 0, Hi: 9}
	if _, _, err := r.Filter(tb, wider, seqOpts); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.SubsumedHits != 1 || st.Misses != 2 {
		t.Fatalf("widened query wrongly subsumed: %+v", st)
	}
}

func TestByteBudgetEviction(t *testing.T) {
	tb := testTable(t)
	// Five 3-row selections (12 bytes each) against a 48-byte budget:
	// four fit exactly, the fifth forces an LRU eviction by bytes. Each
	// stays under the 48/4 = 12-byte admission bound.
	r, _ := New(48)
	var preds []expr.Predicate
	for i := 0; i < 5; i++ {
		preds = append(preds, expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: float64(i), Hi: float64(i + 2)})
	}
	for _, p := range preds {
		if _, _, err := r.Filter(tb, p, seqOpts); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Evictions == 0 || st.Bytes > 48 || st.AdmissionRejects != 0 {
		t.Fatalf("budget not enforced: %+v", st)
	}
	// The most recent entry survives...
	if _, _, err := r.Filter(tb, preds[4], seqOpts); err != nil {
		t.Fatal(err)
	}
	if r.Stats().Hits != 1 {
		t.Fatal("resident entry not served")
	}
	// ...while the LRU one was evicted (its lookup recomputes).
	if _, _, err := r.Filter(tb, preds[0], seqOpts); err != nil {
		t.Fatal(err)
	}
	if r.Stats().Hits != 1 {
		t.Fatal("evicted entry served")
	}
}

func TestAdmissionRejectsOversizedSelections(t *testing.T) {
	tb := testTable(t)
	// Budget 64: admission bound is 64/4 = 16 bytes = 4 rows.
	r, _ := New(64)
	big := ge("x", 0) // 10 rows = 40 bytes > 16
	if _, _, err := r.Filter(tb, big, seqOpts); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.AdmissionRejects != 1 || st.Entries != 0 {
		t.Fatalf("oversized selection admitted: %+v", st)
	}
	small := ge("x", 7) // 3 rows = 12 bytes
	if _, _, err := r.Filter(tb, small, seqOpts); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Entries != 1 {
		t.Fatalf("small selection rejected: %+v", st)
	}
}

func TestStaleVersionsEvictedEagerly(t *testing.T) {
	tb := testTable(t)
	r, _ := New(1 << 20)
	if _, _, err := r.Filter(tb, ge("x", 5), seqOpts); err != nil {
		t.Fatal(err)
	}
	if err := tb.AppendRow(table.Row{99.0}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Filter(tb, ge("x", 5), seqOpts); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Entries != 1 {
		t.Fatalf("stale version entry survived: %+v", st)
	}
	if st.Evictions != 1 {
		t.Fatalf("stale eviction not counted: %+v", st)
	}
}

// TestStragglerInsertDoesNotEvictFresh pins the stale-sweep direction:
// a query that snapshotted before a concurrent load finishes late and
// inserts at the old version — it must neither evict the fresh
// current-version entries nor park a never-hittable stale entry.
func TestStragglerInsertDoesNotEvictFresh(t *testing.T) {
	tb := testTable(t)
	r, _ := New(1 << 20)
	pred := ge("x", 5)
	old := tb.Snapshot() // straggler's view, taken before the load
	if err := tb.AppendRow(table.Row{99.0}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Filter(tb, pred, seqOpts); err != nil { // fresh entry
		t.Fatal(err)
	}
	if _, _, err := r.Filter(old, pred, seqOpts); err != nil { // straggler
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("straggler disturbed the fresh entry: %+v", st)
	}
	if _, _, err := r.Filter(tb, pred, seqOpts); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Hits != 1 {
		t.Fatalf("fresh entry lost to a straggler insert: %+v", st)
	}
}

func TestTruePredicateBypasses(t *testing.T) {
	tb := testTable(t)
	r, _ := New(1 << 20)
	for _, p := range []expr.Predicate{nil, expr.TruePred{}} {
		sel, _, err := r.Filter(tb, p, seqOpts)
		if err != nil {
			t.Fatal(err)
		}
		if sel != nil {
			t.Fatalf("TRUE predicate sel = %v, want nil (all rows)", sel)
		}
	}
	if st := r.Stats(); st.Entries != 0 || st.Misses != 0 {
		t.Fatalf("TRUE predicate touched the cache: %+v", st)
	}
}

// opaque is an unkeyable user-defined predicate: the recycler must
// evaluate it correctly without caching.
type opaque struct{ expr.Predicate }

func TestUnkeyablePredicateBypasses(t *testing.T) {
	tb := testTable(t)
	r, _ := New(1 << 20)
	p := opaque{ge("x", 5)}
	s1, _, err := r.Filter(tb, p, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	if want := (vec.Sel{5, 6, 7, 8, 9}); !reflect.DeepEqual(s1, want) {
		t.Fatalf("sel = %v, want %v", s1, want)
	}
	if st := r.Stats(); st.Entries != 0 || st.Hits+st.Misses != 0 {
		t.Fatalf("unkeyable predicate touched the cache: %+v", st)
	}
}

func TestErrorNotCached(t *testing.T) {
	tb := testTable(t)
	r, _ := New(1 << 20)
	bad := ge("missing", 1)
	if _, _, err := r.Filter(tb, bad, seqOpts); err == nil {
		t.Fatal("bad predicate succeeded")
	}
	if r.Stats().Entries != 0 {
		t.Fatal("error result cached")
	}
}

func TestReset(t *testing.T) {
	tb := testTable(t)
	r, _ := New(1 << 20)
	_, _, _ = r.Filter(tb, ge("x", 5), seqOpts)
	r.Reset()
	st := r.Stats()
	if st.Entries != 0 || st.Misses != 0 || st.Bytes != 0 {
		t.Fatalf("reset incomplete: %+v", st)
	}
}

func TestHitRateEmpty(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty hit rate not 0")
	}
}

func TestDistinctTablesDistinctKeys(t *testing.T) {
	ta := testTable(t)
	tb := table.MustNew("other", table.Schema{{Name: "x", Type: column.Float64}})
	_ = tb.AppendBatch([]table.Row{{100.0}})
	r, _ := New(1 << 20)
	pred := ge("x", 5)
	sa, _, _ := r.Filter(ta, pred, seqOpts)
	sb, _, _ := r.Filter(tb, pred, seqOpts)
	if len(sa) == len(sb) {
		t.Fatalf("selections suspiciously identical: %v vs %v", sa, sb)
	}
	if r.Stats().Misses != 2 {
		t.Fatal("different tables shared a cache entry")
	}
}
