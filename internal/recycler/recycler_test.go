package recycler

import (
	"reflect"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

func testTable(t *testing.T) *table.Table {
	t.Helper()
	tb := table.MustNew("t", table.Schema{{Name: "x", Type: column.Float64}})
	for i := 0; i < 10; i++ {
		if err := tb.AppendRow(table.Row{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
}

func TestHitAndMiss(t *testing.T) {
	tb := testTable(t)
	r, _ := New(4)
	pred := expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: "x"}, Right: 5}
	s1, err := r.Filter(tb, pred)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Filter(tb, pred)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("cached selection differs")
	}
	st := r.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", st.HitRate())
	}
}

func TestAppendInvalidates(t *testing.T) {
	tb := testTable(t)
	r, _ := New(4)
	pred := expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: "x"}, Right: 5}
	s1, _ := r.Filter(tb, pred)
	if err := tb.AppendRow(table.Row{50.0}); err != nil {
		t.Fatal(err)
	}
	s2, _ := r.Filter(tb, pred)
	if len(s2) != len(s1)+1 {
		t.Fatalf("append not reflected: %v -> %v", s1, s2)
	}
	if r.Stats().Hits != 0 {
		t.Fatal("stale entry served after append")
	}
}

func TestLRUEviction(t *testing.T) {
	tb := testTable(t)
	r, _ := New(2)
	preds := []expr.Predicate{
		expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: "x"}, Right: 1},
		expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: "x"}, Right: 2},
		expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: "x"}, Right: 3},
	}
	for _, p := range preds {
		if _, err := r.Filter(tb, p); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// preds[0] was evicted: filtering it again is a miss.
	_, _ = r.Filter(tb, preds[0])
	if r.Stats().Hits != 0 {
		t.Fatal("evicted entry served")
	}
	// preds[2] is still cached.
	_, _ = r.Filter(tb, preds[2])
	if r.Stats().Hits != 1 {
		t.Fatal("resident entry not served")
	}
}

func TestNilPredicate(t *testing.T) {
	tb := testTable(t)
	r, _ := New(2)
	sel, err := r.Filter(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sel != nil {
		t.Fatalf("TRUE predicate sel = %v, want nil (all rows)", sel)
	}
}

func TestErrorNotCached(t *testing.T) {
	tb := testTable(t)
	r, _ := New(2)
	bad := expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: "missing"}, Right: 1}
	if _, err := r.Filter(tb, bad); err == nil {
		t.Fatal("bad predicate succeeded")
	}
	if r.Stats().Entries != 0 {
		t.Fatal("error result cached")
	}
}

func TestReset(t *testing.T) {
	tb := testTable(t)
	r, _ := New(2)
	pred := expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: "x"}, Right: 5}
	_, _ = r.Filter(tb, pred)
	r.Reset()
	st := r.Stats()
	if st.Entries != 0 || st.Misses != 0 {
		t.Fatalf("reset incomplete: %+v", st)
	}
}

func TestHitRateEmpty(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty hit rate not 0")
	}
}

func TestDistinctTablesDistinctKeys(t *testing.T) {
	ta := testTable(t)
	tb := table.MustNew("other", table.Schema{{Name: "x", Type: column.Float64}})
	_ = tb.AppendBatch([]table.Row{{100.0}})
	r, _ := New(4)
	pred := expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: "x"}, Right: 5}
	sa, _ := r.Filter(ta, pred)
	sb, _ := r.Filter(tb, pred)
	if len(sa) == len(sb) {
		t.Fatalf("selections suspiciously identical: %v vs %v", sa, sb)
	}
	if r.Stats().Misses != 2 {
		t.Fatal("different tables shared a cache entry")
	}
}
