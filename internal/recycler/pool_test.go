package recycler

import (
	"fmt"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/engine"
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

func poolTable(t *testing.T, n int) *table.Table {
	t.Helper()
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i % 100)
	}
	tb := table.MustNew("pool", table.Schema{{Name: "x", Type: column.Float64}})
	if err := tb.AppendColumns([]column.Column{column.NewFloat64From("x", data)}); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestPoolPartitionsAreIsolated(t *testing.T) {
	p, err := NewPool(1<<20, 1<<20, 8)
	if err != nil {
		t.Fatal(err)
	}
	tb := poolTable(t, 10_000)
	pred := expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "x"}, Right: 50}
	opts := engine.ExecOptions{Parallelism: 1}

	// Warm tenant a, then issue the same predicate as tenant b: b must
	// miss — partitions share nothing.
	if _, _, err := p.For("a").Filter(tb, pred, opts); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.For("b").Filter(tb, pred, opts); err != nil {
		t.Fatal(err)
	}
	if hits := p.For("a").Stats().Hits; hits != 0 {
		t.Fatalf("tenant a has %d hits after two cold queries, want 0", hits)
	}
	if misses := p.For("b").Stats().Misses; misses != 1 {
		t.Fatalf("tenant b misses = %d, want 1", misses)
	}
	// Repeat as tenant a: exact hit inside a's partition only.
	if _, _, err := p.For("a").Filter(tb, pred, opts); err != nil {
		t.Fatal(err)
	}
	if hits := p.For("a").Stats().Hits; hits != 1 {
		t.Fatalf("tenant a hits = %d, want 1", hits)
	}
	if hits := p.For("b").Stats().Hits; hits != 0 {
		t.Fatalf("tenant b hits = %d, want 0", hits)
	}
}

func TestPoolDefaultPartition(t *testing.T) {
	p, err := NewPool(1<<20, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.For("") != p.Default() {
		t.Fatal("empty tenant must resolve to the default partition")
	}
	stats := p.StatsByTenant()
	if _, ok := stats[""]; !ok {
		t.Fatal("StatsByTenant must include the default partition under \"\"")
	}
}

func TestPoolEvictsLRUBeyondCap(t *testing.T) {
	p, err := NewPool(1<<20, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	ra := p.For("a")
	p.For("b")
	p.For("a") // refresh a: b is now LRU
	p.For("c") // evicts b
	tenants := p.Tenants()
	if len(tenants) != 2 {
		t.Fatalf("resident tenants = %v, want 2 entries", tenants)
	}
	for _, tn := range tenants {
		if tn == "b" {
			t.Fatalf("tenant b should have been evicted, got %v", tenants)
		}
	}
	if p.For("a") != ra {
		t.Fatal("tenant a should have survived eviction with its identity intact")
	}
}

func TestPoolConcurrentAccess(t *testing.T) {
	p, err := NewPool(1<<20, 1<<18, 4)
	if err != nil {
		t.Fatal(err)
	}
	tb := poolTable(t, 4096)
	opts := engine.ExecOptions{Parallelism: 1}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			tenant := fmt.Sprintf("t%d", g%5)
			var firstErr error
			for i := 0; i < 50; i++ {
				pred := expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "x"}, Right: float64(i % 7 * 10)}
				if _, _, err := p.For(tenant).Filter(tb, pred, opts); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			done <- firstErr
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
