package recycler

import (
	"math/rand"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/engine"
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// Property suite for the recycler's one correctness claim: however a
// selection is produced — cold scan, exact hit, or subsumption
// refinement over a cached superset — it is bit-identical to a cold
// full evaluation of the same predicate, at every parallelism level.

func randomTable(t *testing.T, rng *rand.Rand, rows int) *table.Table {
	t.Helper()
	tb := table.MustNew("prop", table.Schema{
		{Name: "x", Type: column.Float64},
		{Name: "y", Type: column.Float64},
		{Name: "s", Type: column.String},
	})
	words := []string{"a", "b", "zz"}
	batch := make([]table.Row, 0, rows)
	for i := 0; i < rows; i++ {
		batch = append(batch, table.Row{
			rng.Float64() * 10,
			rng.Float64()*20 - 10,
			words[rng.Intn(len(words))],
		})
	}
	if err := tb.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	return tb
}

// randLeaf builds a random keyable leaf predicate over the fixture
// columns; constants land inside the data range so selections are
// non-trivial.
func randLeaf(rng *rand.Rand) expr.Predicate {
	ops := []vec.CmpOp{vec.Eq, vec.Ne, vec.Lt, vec.Le, vec.Gt, vec.Ge}
	switch rng.Intn(4) {
	case 0:
		return expr.Cmp{Op: ops[rng.Intn(len(ops))], Left: expr.ColRef{Name: "x"}, Right: rng.Float64() * 10}
	case 1:
		lo := rng.Float64()*20 - 10
		return expr.Between{Expr: expr.ColRef{Name: "y"}, Lo: lo, Hi: lo + rng.Float64()*12}
	case 2:
		return expr.StrEq{Col: "s", Value: []string{"a", "b", "zz"}[rng.Intn(3)], Neg: rng.Intn(2) == 0}
	default:
		return expr.Cmp{Op: ops[rng.Intn(len(ops))], Left: expr.ColRef{Name: "y"}, Right: rng.Float64()*20 - 10}
	}
}

func randTree(rng *rand.Rand, depth int) expr.Predicate {
	if depth > 0 && rng.Intn(2) == 0 {
		switch rng.Intn(3) {
		case 0:
			return expr.And{L: randTree(rng, depth-1), R: randTree(rng, depth-1)}
		case 1:
			return expr.Or{L: randTree(rng, depth-1), R: randTree(rng, depth-1)}
		default:
			return expr.Not{P: randTree(rng, depth-1)}
		}
	}
	return randLeaf(rng)
}

func sameSel(a, b vec.Sel) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRecyclerRefinementMatchesColdScan draws random (p, p AND q)
// pairs over random tables and checks, at workers 1 and 4, that the
// recycler's answer — base entry, then the refinement that subsumes it
// — is bit-identical to an uncached full scan of the same predicate,
// and that Canonical holds its fixed-point and semantics contract on
// every predicate the recycler saw.
func TestRecyclerRefinementMatchesColdScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	subsumed := int64(0)
	for iter := 0; iter < 60; iter++ {
		tb := randomTable(t, rng, 1000+rng.Intn(2000))
		p := randTree(rng, 2)
		q := randLeaf(rng)
		refined := expr.And{L: p, R: q}
		for _, workers := range []int{1, 4} {
			// Small morsels so every table spans many granules.
			opts := engine.ExecOptions{Parallelism: workers, MorselRows: 256}
			r, err := New(1 << 22)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 2; round++ { // second round: exact hits
				for _, pred := range []expr.Predicate{p, refined} {
					got, _, err := r.Filter(tb, pred, opts)
					if err != nil {
						t.Fatal(err)
					}
					coldSel, _, err := engine.FilterStats(tb, pred, opts)
					if err != nil {
						t.Fatal(err)
					}
					if coldSel == nil {
						coldSel = vec.NewSelAll(tb.Len())
					}
					if got == nil {
						got = vec.NewSelAll(tb.Len())
					}
					if !sameSel(got, coldSel) {
						t.Fatalf("iter %d workers %d round %d: recycler != cold scan for %s (%d vs %d rows)",
							iter, workers, round, pred, len(got), len(coldSel))
					}
					// Fixed point of the canonical form the cache keyed on.
					c := expr.Canonical(pred)
					ck, _ := expr.PredKey(nil, c)
					cck, _ := expr.PredKey(nil, expr.Canonical(c))
					if string(ck) != string(cck) {
						t.Fatalf("iter %d: Canonical not a fixed point for %s", iter, pred)
					}
				}
			}
			st := r.Stats()
			subsumed += st.SubsumedHits
			// Round two repeated both predicates verbatim: exact hits.
			if st.Hits < 2 {
				t.Fatalf("iter %d workers %d: expected exact hits on repeat, stats %+v", iter, workers, st)
			}
		}
	}
	if subsumed == 0 {
		t.Fatal("no iteration exercised subsumption refinement")
	}
}

// TestRecyclerConcurrentSameTable hammers one recycler from many
// goroutines with a mix of repeated and refined predicates over one
// static table; every answer must equal the cold scan. Run with -race.
func TestRecyclerConcurrentSameTable(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tb := randomTable(t, rng, 4000)
	r, err := New(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	base := expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "x"}, Right: 7}
	opts := engine.ExecOptions{Parallelism: 2, MorselRows: 512}
	want := map[float64]vec.Sel{}
	for _, cut := range []float64{-5, 0, 5} {
		refined := expr.And{L: base, R: expr.Cmp{Op: vec.Gt, Left: expr.ColRef{Name: "y"}, Right: cut}}
		sel, _, err := engine.FilterStats(tb, refined, opts)
		if err != nil {
			t.Fatal(err)
		}
		want[cut] = sel
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			cuts := []float64{-5, 0, 5}
			for i := 0; i < 40; i++ {
				cut := cuts[(g+i)%3]
				refined := expr.And{L: base, R: expr.Cmp{Op: vec.Gt, Left: expr.ColRef{Name: "y"}, Right: cut}}
				got, _, err := r.Filter(tb, refined, opts)
				if err != nil {
					done <- err
					return
				}
				if !sameSel(got, want[cut]) {
					t.Errorf("goroutine %d: wrong selection for cut %g", g, cut)
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
