// Package recycler implements an intermediate-result cache in the style
// of the MonetDB recycler the paper builds on ([13], §3.3): selection
// vectors of recently evaluated predicates are memoised so that repeated
// exploration queries (the dominant SkyServer pattern) skip re-scanning,
// and so that predicate logging for impressions stays cheap.
//
// The cache is keyed by (table identity, table length, predicate
// rendering): because tables are append-only, a cached selection is
// valid exactly while the table length is unchanged.
package recycler

import (
	"container/list"
	"fmt"
	"sync"

	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// Stats reports cache effectiveness.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
}

// HitRate returns hits / (hits + misses), 0 when empty.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Recycler memoises predicate selections with LRU eviction.
type Recycler struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recent
	stats   Stats
}

type entry struct {
	key string
	sel vec.Sel
}

// New returns a recycler holding at most capacity selections.
func New(capacity int) (*Recycler, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("recycler: capacity must be positive, got %d", capacity)
	}
	return &Recycler{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		order:   list.New(),
	}, nil
}

// key builds the cache key; table length participates so appends
// invalidate implicitly.
func key(t *table.Table, pred expr.Predicate) string {
	return fmt.Sprintf("%s|%d|%s", t.Name(), t.Len(), pred)
}

// Filter evaluates pred over all rows of t, serving repeated predicates
// from the cache.
func (r *Recycler) Filter(t *table.Table, pred expr.Predicate) (vec.Sel, error) {
	if pred == nil {
		pred = expr.TruePred{}
	}
	// The hit path reads only name+length from the live table — no
	// snapshot cost for the dominant repeated-query case.
	k := key(t, pred)
	r.mu.Lock()
	if el, ok := r.entries[k]; ok {
		r.order.MoveToFront(el)
		r.stats.Hits++
		sel := el.Value.(*entry).sel
		r.mu.Unlock()
		return sel, nil
	}
	r.stats.Misses++
	r.mu.Unlock()

	// Miss: evaluate on a snapshot and re-key from it, so the stored
	// length and the cached selection describe the same row prefix even
	// if a load slipped in since the lookup.
	t = t.Snapshot()
	k = key(t, pred)
	sel, err := pred.Filter(t, nil)
	if err != nil {
		return nil, err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.entries[k]; ok {
		// Raced with another evaluation of the same predicate; keep one.
		r.order.MoveToFront(el)
		return el.Value.(*entry).sel, nil
	}
	el := r.order.PushFront(&entry{key: k, sel: sel})
	r.entries[k] = el
	if r.order.Len() > r.cap {
		oldest := r.order.Back()
		r.order.Remove(oldest)
		delete(r.entries, oldest.Value.(*entry).key)
		r.stats.Evictions++
	}
	return sel, nil
}

// Stats returns a snapshot of cache statistics.
func (r *Recycler) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Entries = r.order.Len()
	return s
}

// Reset clears the cache and statistics.
func (r *Recycler) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = make(map[string]*list.Element, r.cap)
	r.order = list.New()
	r.stats = Stats{}
}
