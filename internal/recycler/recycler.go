// Package recycler implements an intermediate-result cache in the style
// of the MonetDB recycler the paper builds on ([13], §3.3): selection
// vectors of recently evaluated predicates are memoised so that repeated
// exploration queries (the dominant SkyServer pattern) skip re-scanning,
// and refined queries (p AND q issued after p — the scientist zooming
// in) are answered by filtering only the cached superset selection.
//
// Identity discipline: entries are keyed by (table ID, table version,
// canonical predicate encoding). The ID is process-unique per logical
// table and the version bumps on every mutation, so a same-length
// truncate/rebuild or a re-materialised sample of equal size can never
// alias an older selection — the hit path never has to inspect row
// data. Keys are compact binary strings built by expr.PredKey: no fmt
// on the query hot path. expr.Canonical normalises commuted/nested
// conjunctions and merges redundant interval bounds first, so "a AND b"
// and "b AND a" share one entry.
//
// Memory discipline: entries charge len(sel)*4 bytes (the backing
// int32s) against a byte budget. Eviction is LRU by bytes, admission
// rejects any single selection larger than a fraction of the budget,
// and entries of superseded table versions are dropped eagerly the
// moment a newer version of the same table is inserted.
//
// Subsumption: a miss for a conjunction first searches the same table
// version for an entry whose conjuncts are a subset of (or are implied
// by, via interval containment) the query's. The residual conjuncts
// then evaluate sel-natively over the cached positions through
// engine.FilterSel — cost proportional to the cached selection (zone
// maps still prune granules), never to the base table.
package recycler

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"sync"

	"sciborq/internal/engine"
	"sciborq/internal/expr"
	"sciborq/internal/faultinject"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// DefaultBudget is the byte budget Open-style callers use when none is
// configured: 32 MiB of selection vectors.
const DefaultBudget = 32 << 20

// admissionDivisor bounds a single entry to budget/admissionDivisor
// bytes: one huge selection must not wipe the working set.
const admissionDivisor = 4

// subsumptionScanCap bounds how many same-table candidates one miss
// examines under the lock. The search is a reuse heuristic, not a
// correctness requirement: capping it keeps a miss O(cap) even when a
// large budget holds thousands of small entries, at the price of
// possibly overlooking a reusable superset in a very full bucket.
const subsumptionScanCap = 128

// Stats reports cache effectiveness.
type Stats struct {
	// Hits counts exact canonical-key hits (no evaluation at all).
	Hits int64
	// SubsumedHits counts misses answered by refining a cached
	// superset selection (evaluation cost ∝ cached selection).
	SubsumedHits int64
	// Misses counts cold evaluations over the base table.
	Misses int64
	// Evictions counts entries dropped for budget or version staleness.
	Evictions int64
	// AdmissionRejects counts selections denied entry for being larger
	// than the per-entry admission bound.
	AdmissionRejects int64
	// Entries is the resident entry count; Bytes their charged sum.
	Entries int
	Bytes   int64
	// Budget echoes the configured byte budget.
	Budget int64
}

// HitRate returns the fraction of lookups served from cached state
// (exact or subsumed), 0 when empty.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.SubsumedHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.SubsumedHits) / float64(total)
}

// conjunct is one canonical conjunct with its binary key.
type conjunct struct {
	key  string
	pred expr.Predicate
}

// entry is one cached selection.
type entry struct {
	key     string // full (id, version, predicate) key
	id, ver uint64
	sel     vec.Sel
	conj    []conjunct // canonical conjuncts, ascending by key
	bytes   int64
	elem    *list.Element
}

// Recycler memoises predicate selections with byte-budgeted LRU
// eviction and subsumption-aware reuse.
type Recycler struct {
	mu      sync.Mutex
	budget  int64
	entries map[string]*entry
	order   *list.List // front = most recent; Value = *entry
	byID    map[uint64]map[*entry]struct{}
	stats   Stats
}

// New returns a recycler charging selections against a byte budget.
func New(budgetBytes int64) (*Recycler, error) {
	if budgetBytes <= 0 {
		return nil, fmt.Errorf("recycler: budget must be positive, got %d", budgetBytes)
	}
	return &Recycler{
		budget:  budgetBytes,
		entries: make(map[string]*entry),
		order:   list.New(),
		byID:    make(map[uint64]map[*entry]struct{}),
	}, nil
}

// Admissible reports whether a selection of the given row count could
// pass admission. Callers with a cheap upper bound on the match count
// (e.g. engine.EstimateScanRows) use it to skip the recycler — and the
// full-selection materialisation feeding it — for queries whose result
// could never be cached anyway.
func (r *Recycler) Admissible(rows int) bool {
	return int64(rows)*4 <= r.budget/admissionDivisor
}

// keyPrefix encodes the (id, version) identity prefix of a cache key.
func keyPrefix(buf []byte, id, ver uint64) []byte {
	buf = binary.BigEndian.AppendUint64(buf, id)
	return binary.BigEndian.AppendUint64(buf, ver)
}

// Prepared is the canonicalisation work of Filter factored out: the
// canonical predicate, its keyed conjunct list, and the full binary
// cache key for one (table ID, table version) identity. The plan cache
// computes it once per cached statement so the per-query hit path does
// no canonicalisation, key encoding, or allocation at all.
type Prepared struct {
	orig    expr.Predicate // as written; evaluated when unkeyable
	canon   expr.Predicate
	conj    []conjunct
	key     string // full (id, version, predicate) key
	id, ver uint64
	keyable bool
	trivial bool // TRUE-equivalent: nothing to cache or evaluate
}

// Canon returns the canonical form of the prepared predicate (nil when
// the predicate is TRUE-equivalent).
func (p *Prepared) Canon() expr.Predicate {
	if p.trivial {
		return nil
	}
	return p.canon
}

// Key returns the full binary cache key ("" when the predicate shape
// cannot be keyed or is trivial).
func (p *Prepared) Key() string {
	if !p.keyable || p.trivial {
		return ""
	}
	return p.key
}

// Prepare canonicalises pred and encodes its cache key for the table
// identity (id, ver) — the values a snapshot of the target table
// reports. The result is immutable and safe for concurrent use.
func Prepare(id, ver uint64, pred expr.Predicate) Prepared {
	p := Prepared{orig: pred, id: id, ver: ver}
	if isTrue(pred) {
		p.trivial = true
		return p
	}
	p.canon = expr.Canonical(pred)
	if isTrue(p.canon) {
		p.trivial = true
		return p
	}
	keyBuf, keyable := expr.PredKey(keyPrefix(make([]byte, 0, 64), id, ver), p.canon)
	p.keyable = keyable
	if keyable {
		p.key = string(keyBuf)
		p.conj = conjuncts(p.canon)
	}
	return p
}

// Filter evaluates pred over all rows of t, serving repeated predicates
// from the cache and refined predicates from cached supersets. The
// returned selection is shared with the cache: callers must treat it as
// read-only. The ScanStats report what evaluation actually ran — zero
// for an exact hit. A nil or TRUE predicate returns (nil, …): "all
// rows" is free to recompute and is never cached.
func (r *Recycler) Filter(t *table.Table, pred expr.Predicate, opts engine.ExecOptions) (vec.Sel, engine.ScanStats, error) {
	if isTrue(pred) {
		return nil, engine.ScanStats{}, nil
	}
	// All work happens against one snapshot: the key's version and the
	// cached positions describe the same immutable row prefix even when
	// loads land mid-query.
	snap := t.Snapshot()
	prep := Prepare(snap.ID(), snap.Version(), pred)
	return r.FilterPrepared(snap, &prep, opts)
}

// FilterPrepared is Filter with the canonicalisation already done.
// snap must be a snapshot; prep is normally built for snap's exact
// (ID, Version) identity — when a load raced in between (the plan was
// version-checked against an older snapshot), the predicate is
// re-prepared here so cached selections can never be served against a
// longer row prefix than they describe.
func (r *Recycler) FilterPrepared(snap *table.Table, prep *Prepared, opts engine.ExecOptions) (vec.Sel, engine.ScanStats, error) {
	if prep.trivial {
		return nil, engine.ScanStats{}, nil
	}
	if prep.id != snap.ID() || prep.ver != snap.Version() {
		fresh := Prepare(snap.ID(), snap.Version(), prep.orig)
		prep = &fresh
		if prep.trivial {
			return nil, engine.ScanStats{}, nil
		}
	}
	if !prep.keyable || faultinject.Fire(faultinject.PointRecycler) != nil {
		// User-defined predicate shapes cannot be keyed safely — and an
		// injected cache failure must degrade the same way: evaluate
		// uncached (the cache is an optimisation, never a dependency).
		sel, scan, err := engine.FilterStats(snap, prep.orig, opts)
		if err != nil {
			return nil, scan, err
		}
		return concrete(sel, snap.Len()), scan, nil
	}

	r.mu.Lock()
	if e, ok := r.entries[prep.key]; ok {
		r.order.MoveToFront(e.elem)
		r.stats.Hits++
		sel := e.sel
		r.mu.Unlock()
		return sel, engine.ScanStats{}, nil
	}
	conj := prep.conj
	super, residual := r.findSupersetLocked(snap.ID(), snap.Version(), conj)
	if super != nil {
		r.stats.SubsumedHits++
	} else {
		r.stats.Misses++
	}
	r.mu.Unlock()

	var (
		sel  vec.Sel
		scan engine.ScanStats
		err  error
	)
	if super != nil {
		// Refinement: the cached selection is a superset of the answer;
		// only the residual conjuncts run, sel-natively, over it.
		sel, scan, err = engine.FilterSel(snap, expr.JoinAnd(residual), super, opts)
	} else {
		sel, scan, err = engine.FilterStats(snap, prep.canon, opts)
		sel = concrete(sel, snap.Len())
	}
	if err != nil {
		return nil, scan, err
	}
	r.insert(prep.key, snap.ID(), snap.Version(), conj, sel)
	return sel, scan, nil
}

// findSupersetLocked searches the (id, ver) bucket for the cheapest
// entry whose predicate is implied by the query conjunction — every
// cached conjunct either appears verbatim in the query (by key) or is
// implied by one of its conjuncts (interval containment). It returns
// that entry's selection and the query conjuncts that still need
// evaluating (those without a verbatim match). Caller holds r.mu; the
// returned selection stays valid after unlock because evicted entries
// are only unlinked, never mutated.
func (r *Recycler) findSupersetLocked(id, ver uint64, conj []conjunct) (vec.Sel, []expr.Predicate) {
	var best *entry
	examined := 0
	for e := range r.byID[id] {
		if examined++; examined > subsumptionScanCap {
			break
		}
		if e.ver != ver {
			continue
		}
		if best != nil && len(e.sel) >= len(best.sel) {
			continue
		}
		if covers(conj, e.conj) {
			best = e
		}
	}
	if best == nil {
		return nil, nil
	}
	residual := residualOf(conj, best.conj)
	if len(residual) == 0 {
		// Identical conjunct sets would have hit the exact key; implied-
		// only entries always leave a residual. Defensive: treat an
		// empty residual as no candidate rather than returning a
		// superset as the answer.
		return nil, nil
	}
	r.order.MoveToFront(best.elem)
	return best.sel, residual
}

// covers reports whether every cached conjunct is satisfied whenever
// the whole query conjunction is: a verbatim key match, or implication
// from some query conjunct. Both slices are ascending by key.
func covers(query []conjunct, cached []conjunct) bool {
	i := 0
	for _, c := range cached {
		for i < len(query) && query[i].key < c.key {
			i++
		}
		if i < len(query) && query[i].key == c.key {
			continue
		}
		implied := false
		for _, q := range query {
			if expr.Implies(q.pred, c.pred) {
				implied = true
				break
			}
		}
		if !implied {
			return false
		}
	}
	return true
}

// residualOf returns the query conjuncts without a verbatim match in
// the cached entry — the predicates that must still run over the
// cached selection. Both inputs are ascending by key.
func residualOf(query []conjunct, cached []conjunct) []expr.Predicate {
	var out []expr.Predicate
	j := 0
	for _, q := range query {
		for j < len(cached) && cached[j].key < q.key {
			j++
		}
		if j < len(cached) && cached[j].key == q.key {
			continue
		}
		out = append(out, q.pred)
	}
	return out
}

// insert admits a freshly computed selection, evicting stale versions
// of the same table and then LRU entries until the budget holds.
func (r *Recycler) insert(key string, id, ver uint64, conj []conjunct, sel vec.Sel) {
	bytes := int64(len(sel)) * 4
	r.mu.Lock()
	defer r.mu.Unlock()
	if bytes > r.budget/admissionDivisor {
		r.stats.AdmissionRejects++
		return
	}
	if e, ok := r.entries[key]; ok {
		// Raced with another evaluation of the same predicate; keep the
		// incumbent.
		r.order.MoveToFront(e.elem)
		return
	}
	bucket := r.byID[id]
	for o := range bucket {
		if o.ver > ver {
			// A straggler: the query snapshotted before a concurrent
			// load, and the cache already holds entries for a newer
			// version no future snapshot of this table will miss past.
			// Don't spend budget on a selection that can never be hit
			// again — and never evict the fresh entries.
			return
		}
	}
	e := &entry{key: key, id: id, ver: ver, sel: sel, conj: conj, bytes: bytes}
	e.elem = r.order.PushFront(e)
	r.entries[key] = e
	if bucket == nil {
		bucket = make(map[*entry]struct{})
		r.byID[id] = bucket
	}
	bucket[e] = struct{}{}
	r.stats.Bytes += bytes

	// A newer version of this table supersedes every older one — the
	// base is append-only, so strictly-older entries can only be hit by
	// straggler snapshots and are better spent on the budget.
	for o := range bucket {
		if o.ver < ver {
			r.evictLocked(o)
		}
	}
	for r.stats.Bytes > r.budget {
		oldest := r.order.Back()
		if oldest == nil {
			break
		}
		r.evictLocked(oldest.Value.(*entry))
	}
}

func (r *Recycler) evictLocked(e *entry) {
	r.order.Remove(e.elem)
	delete(r.entries, e.key)
	if bucket := r.byID[e.id]; bucket != nil {
		delete(bucket, e)
		if len(bucket) == 0 {
			delete(r.byID, e.id)
		}
	}
	r.stats.Bytes -= e.bytes
	r.stats.Evictions++
}

// UsageBytes reports the resident selection bytes — the usage feed for
// a global memory governor.
func (r *Recycler) UsageBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats.Bytes
}

// Shed evicts least-recently-used entries until roughly `bytes` bytes
// are freed (or the cache is empty), returning the bytes actually
// freed. The governor's coordinated-pressure hook: it fires regardless
// of this cache's own budget. Selections are recomputable (one scan
// each) — the most expensive cached state to rebuild, which is why the
// governor sheds this tier last.
func (r *Recycler) Shed(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	before := r.stats.Bytes
	for before-r.stats.Bytes < bytes {
		oldest := r.order.Back()
		if oldest == nil {
			break
		}
		r.evictLocked(oldest.Value.(*entry))
	}
	return before - r.stats.Bytes
}

// Stats returns a snapshot of cache statistics.
func (r *Recycler) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Entries = r.order.Len()
	s.Budget = r.budget
	return s
}

// Reset clears the cache and statistics.
func (r *Recycler) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = make(map[string]*entry)
	r.order = list.New()
	r.byID = make(map[uint64]map[*entry]struct{})
	r.stats = Stats{}
}

// conjuncts splits a canonical predicate into its keyed conjunct list
// (ascending by key — Canonical already sorts And chains).
func conjuncts(canon expr.Predicate) []conjunct {
	preds := expr.SplitAnd(canon)
	out := make([]conjunct, 0, len(preds))
	for _, p := range preds {
		key, ok := expr.PredKey(nil, p)
		if !ok {
			// Cannot happen: the whole predicate was keyable.
			continue
		}
		out = append(out, conjunct{key: string(key), pred: p})
	}
	return out
}

// concrete materialises the engine's nil-means-all-rows convention into
// an explicit selection so it can be cached and served uniformly.
func concrete(sel vec.Sel, n int) vec.Sel {
	if sel == nil {
		return vec.NewSelAll(n)
	}
	return sel
}

func isTrue(p expr.Predicate) bool {
	if p == nil {
		return true
	}
	_, ok := p.(expr.TruePred)
	return ok
}
