package recycler

import (
	"container/list"
	"fmt"
	"sync"
)

// DefaultTenantBudget is the per-tenant partition budget when none is
// configured: an eighth of DefaultBudget, so a handful of active
// tenants fit in the footprint one shared cache used to occupy.
const DefaultTenantBudget = DefaultBudget / 8

// DefaultMaxTenants bounds how many tenant partitions a Pool keeps
// resident at once.
const DefaultMaxTenants = 64

// Pool partitions the selection cache across tenants: every tenant gets
// an independent Recycler with its own byte budget, so one tenant's
// churny exploration session cannot evict another tenant's warm working
// set — the noisy-neighbour isolation a multi-tenant query server
// needs. The default partition (tenant "") carries the configured
// shared budget and serves library callers and untenanted queries;
// named tenants get DefaultTenantBudget-sized partitions (configurable)
// created lazily on first use.
//
// Residency is bounded: at most MaxTenants named partitions are kept,
// and creating one beyond the cap evicts the least-recently-used
// partition wholesale (its selections are recomputable state, never
// data). Worst-case memory is therefore
//
//	defaultBudget + MaxTenants × tenantBudget
//
// which operators size via the server's -recycler-mb / -tenant-cache-mb
// flags.
type Pool struct {
	mu     sync.Mutex
	def    *Recycler // tenant "" — the shared default partition
	budget int64     // per named-tenant partition budget
	max    int       // cap on resident named partitions
	parts  map[string]*poolPart
	order  *list.List // front = most recently used; Value = *poolPart
}

type poolPart struct {
	tenant string
	rec    *Recycler
	elem   *list.Element
}

// NewPool builds a tenant-partitioned recycler pool. defaultBudget is
// the budget of the shared default partition; tenantBudget the budget
// of each named tenant partition (<= 0 means DefaultTenantBudget);
// maxTenants caps resident named partitions (<= 0 means
// DefaultMaxTenants).
func NewPool(defaultBudget, tenantBudget int64, maxTenants int) (*Pool, error) {
	if defaultBudget <= 0 {
		return nil, fmt.Errorf("recycler: pool default budget must be positive, got %d", defaultBudget)
	}
	if tenantBudget <= 0 {
		tenantBudget = DefaultTenantBudget
	}
	if maxTenants <= 0 {
		maxTenants = DefaultMaxTenants
	}
	def, err := New(defaultBudget)
	if err != nil {
		return nil, err
	}
	return &Pool{
		def:    def,
		budget: tenantBudget,
		max:    maxTenants,
		parts:  make(map[string]*poolPart),
		order:  list.New(),
	}, nil
}

// For returns the tenant's recycler partition, creating it on first use
// and evicting the least-recently-used partition when the resident cap
// is exceeded. The empty tenant names the shared default partition.
func (p *Pool) For(tenant string) *Recycler {
	if tenant == "" {
		return p.def
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if part, ok := p.parts[tenant]; ok {
		p.order.MoveToFront(part.elem)
		return part.rec
	}
	rec, err := New(p.budget)
	if err != nil {
		// budget is validated positive in NewPool; cannot happen.
		panic(err)
	}
	part := &poolPart{tenant: tenant, rec: rec}
	part.elem = p.order.PushFront(part)
	p.parts[tenant] = part
	for len(p.parts) > p.max {
		oldest := p.order.Back()
		if oldest == nil {
			break
		}
		old := oldest.Value.(*poolPart)
		p.order.Remove(old.elem)
		delete(p.parts, old.tenant)
	}
	return rec
}

// Default returns the shared default partition (tenant "").
func (p *Pool) Default() *Recycler { return p.def }

// Tenants lists the resident named tenant partitions, most recently
// used first.
func (p *Pool) Tenants() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, p.order.Len())
	for e := p.order.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*poolPart).tenant)
	}
	return out
}

// UsageBytes sums the resident selection bytes across every partition —
// the pool's usage feed for a global memory governor.
func (p *Pool) UsageBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	sum := p.def.UsageBytes()
	for _, part := range p.parts {
		sum += part.rec.UsageBytes()
	}
	return sum
}

// Shed frees up to `bytes` bytes of cached selections across the pool,
// least-recently-used tenant partitions first (their working sets are
// the coldest), the shared default partition last. Returns the bytes
// actually freed.
func (p *Pool) Shed(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var freed int64
	for e := p.order.Back(); e != nil && freed < bytes; e = e.Prev() {
		freed += e.Value.(*poolPart).rec.Shed(bytes - freed)
	}
	if freed < bytes {
		freed += p.def.Shed(bytes - freed)
	}
	return freed
}

// StatsByTenant snapshots every resident partition's Stats keyed by
// tenant; the default partition appears under "".
func (p *Pool) StatsByTenant() map[string]Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]Stats, len(p.parts)+1)
	out[""] = p.def.Stats()
	for tenant, part := range p.parts {
		out[tenant] = part.rec.Stats()
	}
	return out
}
