package fisher

import (
	"math"
	"testing"

	"sciborq/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, 5, 2, 1); err == nil {
		t.Fatal("negative m1 accepted")
	}
	if _, err := New(5, -1, 2, 1); err == nil {
		t.Fatal("negative m2 accepted")
	}
	if _, err := New(5, 5, 11, 1); err == nil {
		t.Fatal("n > m1+m2 accepted")
	}
	if _, err := New(5, 5, -1, 1); err == nil {
		t.Fatal("negative n accepted")
	}
	for _, w := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := New(5, 5, 2, w); err == nil {
			t.Fatalf("omega=%v accepted", w)
		}
	}
}

func TestPMFSumsToOne(t *testing.T) {
	for _, w := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		d, err := New(30, 70, 20, w)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for x := d.SupportMin(); x <= d.SupportMax(); x++ {
			p := d.PMF(x)
			if p < 0 {
				t.Fatalf("negative pmf at %d", x)
			}
			s += p
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("omega=%v: pmf sums to %v", w, s)
		}
	}
}

func TestSupportBounds(t *testing.T) {
	d, _ := New(3, 4, 6, 2)
	// x >= n−m2 = 2, x <= min(n,m1) = 3.
	if d.SupportMin() != 2 || d.SupportMax() != 3 {
		t.Fatalf("support [%d, %d], want [2, 3]", d.SupportMin(), d.SupportMax())
	}
	if d.PMF(1) != 0 || d.PMF(4) != 0 {
		t.Fatal("pmf nonzero outside support")
	}
}

func TestCentralCaseMatchesHypergeometric(t *testing.T) {
	// omega=1 must reduce to the central hypergeometric distribution.
	d, _ := New(10, 20, 12, 1)
	wantMean := 12.0 * 10.0 / 30.0
	if math.Abs(d.Mean()-wantMean) > 1e-10 {
		t.Fatalf("central mean = %v, want %v", d.Mean(), wantMean)
	}
	// Var = n·p·(1−p)·(M−n)/(M−1) with p = m1/M.
	p := 10.0 / 30.0
	wantVar := 12 * p * (1 - p) * (30.0 - 12.0) / 29.0
	if math.Abs(d.Variance()-wantVar) > 1e-10 {
		t.Fatalf("central variance = %v, want %v", d.Variance(), wantVar)
	}
}

func TestMeanIncreasesWithOmega(t *testing.T) {
	prev := -1.0
	for _, w := range []float64{0.25, 0.5, 1, 2, 4, 8} {
		d, _ := New(50, 50, 30, w)
		m := d.Mean()
		if m <= prev {
			t.Fatalf("mean not increasing in omega: %v after %v", m, prev)
		}
		prev = m
	}
}

func TestMeanApproxCloseToExact(t *testing.T) {
	for _, w := range []float64{0.5, 1, 2, 5, 10} {
		d, _ := New(60, 140, 40, w)
		exact, approx := d.Mean(), d.MeanApprox()
		if math.Abs(exact-approx) > 0.5 {
			t.Fatalf("omega=%v: exact %v vs approx %v", w, exact, approx)
		}
	}
}

func TestCDF(t *testing.T) {
	d, _ := New(10, 10, 8, 2)
	if d.CDF(d.SupportMin()-1) != 0 {
		t.Fatal("CDF below support not 0")
	}
	if d.CDF(d.SupportMax()) != 1 {
		t.Fatal("CDF at max not 1")
	}
	prev := 0.0
	for x := d.SupportMin(); x <= d.SupportMax(); x++ {
		c := d.CDF(x)
		if c < prev-1e-12 {
			t.Fatal("CDF not monotone")
		}
		prev = c
	}
}

func TestModeNearMean(t *testing.T) {
	d, _ := New(40, 60, 30, 3)
	mode := d.Mode()
	if math.Abs(float64(mode)-d.Mean()) > 2 {
		t.Fatalf("mode %d far from mean %v", mode, d.Mean())
	}
}

func TestSampleMomentsMatchTheory(t *testing.T) {
	d, _ := New(30, 70, 25, 4)
	r := xrand.New(5)
	const trials = 50000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		x := float64(d.Sample(r))
		sum += x
		sumSq += x * x
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean-d.Mean()) > 0.05 {
		t.Fatalf("sample mean %v vs exact %v", mean, d.Mean())
	}
	if math.Abs(variance-d.Variance()) > 0.2 {
		t.Fatalf("sample variance %v vs exact %v", variance, d.Variance())
	}
}

func TestSampleWithinSupport(t *testing.T) {
	d, _ := New(5, 5, 7, 0.3)
	r := xrand.New(9)
	for i := 0; i < 10000; i++ {
		x := d.Sample(r)
		if x < d.SupportMin() || x > d.SupportMax() {
			t.Fatalf("sample %d outside support [%d,%d]", x, d.SupportMin(), d.SupportMax())
		}
	}
}

func TestDegenerateCases(t *testing.T) {
	// Sample everything: X = m1 always.
	d, _ := New(3, 4, 7, 2)
	if d.SupportMin() != 3 || d.SupportMax() != 3 {
		t.Fatalf("census support [%d,%d]", d.SupportMin(), d.SupportMax())
	}
	if d.Mean() != 3 || d.Variance() != 0 {
		t.Fatalf("census mean/var = %v/%v", d.Mean(), d.Variance())
	}
	// Empty sample.
	d0, _ := New(3, 4, 0, 2)
	if d0.Mean() != 0 || d0.Variance() != 0 {
		t.Fatalf("empty-sample moments = %v/%v", d0.Mean(), d0.Variance())
	}
	// One group empty.
	d1, _ := New(0, 10, 5, 2)
	if d1.Mean() != 0 {
		t.Fatalf("m1=0 mean = %v", d1.Mean())
	}
}

func TestLogChoose(t *testing.T) {
	if got := logChoose(5, 2); math.Abs(got-math.Log(10)) > 1e-12 {
		t.Fatalf("logC(5,2) = %v", got)
	}
	if !math.IsInf(logChoose(3, 5), -1) || !math.IsInf(logChoose(3, -1), -1) {
		t.Fatal("out-of-range choose not -Inf")
	}
	if logChoose(7, 0) != 0 || logChoose(7, 7) != 0 {
		t.Fatal("edge binomials wrong")
	}
}

func TestLargePopulationStability(t *testing.T) {
	// Large parameters must not overflow (log-space computation).
	d, err := New(500000, 1500000, 10000, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Mean()
	if math.IsNaN(m) || m <= 0 || m > 10000 {
		t.Fatalf("large-population mean = %v", m)
	}
	if math.Abs(m-d.MeanApprox()) > 1.0 {
		t.Fatalf("exact %v vs approx %v diverge", m, d.MeanApprox())
	}
}
