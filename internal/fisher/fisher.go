// Package fisher implements Fisher's noncentral hypergeometric
// distribution, the mathematical tool the paper cites ([6], Fog 2008) for
// reasoning about biased sampling: when tuples of one group are accepted
// with odds ω relative to another group, the number of group-1 tuples in
// the sample follows this distribution. SciBORQ uses it to derive the
// theoretical mean/variance of biased impressions (experiment E8).
package fisher

import (
	"fmt"
	"math"

	"sciborq/internal/xrand"
)

// Dist is a Fisher noncentral hypergeometric distribution with population
// group sizes M1 (weighted) and M2, sample size N, and odds ratio Omega.
// The support of X (number of group-1 items drawn) is
// [max(0, N−M2), min(N, M1)].
type Dist struct {
	M1, M2 int     // group sizes
	N      int     // sample size
	Omega  float64 // odds ratio ω ( > 0 )

	pmf  []float64 // pmf over the support, normalised
	xmin int       // support lower bound
}

// New constructs the distribution and precomputes its PMF.
func New(m1, m2, n int, omega float64) (*Dist, error) {
	if m1 < 0 || m2 < 0 {
		return nil, fmt.Errorf("fisher: negative group size (m1=%d, m2=%d)", m1, m2)
	}
	if n < 0 || n > m1+m2 {
		return nil, fmt.Errorf("fisher: sample size %d out of [0, %d]", n, m1+m2)
	}
	if !(omega > 0) || math.IsInf(omega, 0) || math.IsNaN(omega) {
		return nil, fmt.Errorf("fisher: odds ratio must be positive and finite, got %g", omega)
	}
	d := &Dist{M1: m1, M2: m2, N: n, Omega: omega}
	d.xmin = n - m2
	if d.xmin < 0 {
		d.xmin = 0
	}
	xmax := n
	if m1 < n {
		xmax = m1
	}
	// Unnormalised log-pmf: log C(m1,x) + log C(m2,n−x) + x·log ω.
	logs := make([]float64, xmax-d.xmin+1)
	maxLog := math.Inf(-1)
	for x := d.xmin; x <= xmax; x++ {
		l := logChoose(m1, x) + logChoose(m2, n-x) + float64(x)*math.Log(omega)
		logs[x-d.xmin] = l
		if l > maxLog {
			maxLog = l
		}
	}
	// Normalise in a numerically safe way (subtract max before exp).
	d.pmf = make([]float64, len(logs))
	var sum float64
	for i, l := range logs {
		d.pmf[i] = math.Exp(l - maxLog)
		sum += d.pmf[i]
	}
	for i := range d.pmf {
		d.pmf[i] /= sum
	}
	return d, nil
}

// logChoose returns log C(n, k) via log-gamma.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// SupportMin returns the smallest attainable x.
func (d *Dist) SupportMin() int { return d.xmin }

// SupportMax returns the largest attainable x.
func (d *Dist) SupportMax() int { return d.xmin + len(d.pmf) - 1 }

// PMF returns P(X = x); 0 outside the support.
func (d *Dist) PMF(x int) float64 {
	if x < d.xmin || x > d.SupportMax() {
		return 0
	}
	return d.pmf[x-d.xmin]
}

// CDF returns P(X <= x).
func (d *Dist) CDF(x int) float64 {
	if x < d.xmin {
		return 0
	}
	if x >= d.SupportMax() {
		return 1
	}
	var s float64
	for i := d.xmin; i <= x; i++ {
		s += d.pmf[i-d.xmin]
	}
	return s
}

// Mean returns E[X] computed exactly from the PMF.
func (d *Dist) Mean() float64 {
	var m float64
	for i, p := range d.pmf {
		m += float64(d.xmin+i) * p
	}
	return m
}

// Variance returns Var[X] computed exactly from the PMF.
func (d *Dist) Variance() float64 {
	mean := d.Mean()
	var v float64
	for i, p := range d.pmf {
		dlt := float64(d.xmin+i) - mean
		v += dlt * dlt * p
	}
	return v
}

// Mode returns the most probable x.
func (d *Dist) Mode() int {
	best, bx := -1.0, d.xmin
	for i, p := range d.pmf {
		if p > best {
			best, bx = p, d.xmin+i
		}
	}
	return bx
}

// Sample draws one variate by PMF inversion.
func (d *Dist) Sample(r *xrand.RNG) int {
	u := r.Float64()
	var c float64
	for i, p := range d.pmf {
		c += p
		if u < c {
			return d.xmin + i
		}
	}
	return d.SupportMax()
}

// MeanApprox returns the classical approximation to the mean (Fog 2008):
// the admissible root μ of the quadratic obtained from the odds identity
// ω·(M1−μ)(N−μ) = μ·(M2−N+μ), i.e.
//
//	(ω−1)·μ² − (ω(M1+N) + M2 − N)·μ + ω·M1·N = 0.
//
// It cross-checks the exact PMF-based Mean in tests.
func (d *Dist) MeanApprox() float64 {
	m1, m2, n := float64(d.M1), float64(d.M2), float64(d.N)
	w := d.Omega
	if w == 1 {
		// Central hypergeometric.
		if m1+m2 == 0 {
			return 0
		}
		return n * m1 / (m1 + m2)
	}
	a := w - 1
	b := -(w*(m1+n) + m2 - n)
	c := w * m1 * n
	disc := b*b - 4*a*c
	if disc < 0 {
		disc = 0
	}
	return (-b - math.Sqrt(disc)) / (2 * a)
}
