package bounded

import (
	"testing"
	"time"

	"sciborq/internal/engine"
	"sciborq/internal/sqlparse"
)

// TestTimeBoundedDegradesUnderMemoryPressure: with a memory probe
// reporting a degrade factor the same budget must pick a smaller
// impression layer than the unpressured executor — the governor's
// quality-before-availability knob, applied at layer-pick time.
func TestTimeBoundedDegradesUnderMemoryPressure(t *testing.T) {
	tb, h, _ := fixture(t, 50_000)
	model := engine.CostModel{NsPerRow: 100, FixedNs: 0}
	// 600µs at 100 ns/row affords 6_000 rows unpressured — the 5_000-row
	// L0 layer fits; under a ×4 degrade it affords 1_500 and the pick
	// must fall to L1.
	budget := 600 * time.Microsecond
	q := avgQuery()

	ex, err := NewExecutor(tb, h, model)
	if err != nil {
		t.Fatal(err)
	}
	calm, err := ex.TimeBounded(q, budget, sqlparse.Bounds{})
	if err != nil {
		t.Fatal(err)
	}

	// Fresh executor per pick: EWMA learning must not leak between the
	// compared runs.
	ex2, err := NewExecutor(tb, h, model)
	if err != nil {
		t.Fatal(err)
	}
	ex2.SetMemoryProbe(func() float64 { return 4 }) // Critical
	pressed, err := ex2.TimeBounded(q, budget, sqlparse.Bounds{})
	if err != nil {
		t.Fatal(err)
	}
	if pressed.Trail[0].Rows >= calm.Trail[0].Rows {
		t.Fatalf("pressured pick (%d rows) must be smaller than calm pick (%d rows)",
			pressed.Trail[0].Rows, calm.Trail[0].Rows)
	}

	// Factor 1 (Nominal) must be a no-op.
	ex3, err := NewExecutor(tb, h, model)
	if err != nil {
		t.Fatal(err)
	}
	ex3.SetMemoryProbe(func() float64 { return 1 })
	nominal, err := ex3.TimeBounded(q, budget, sqlparse.Bounds{})
	if err != nil {
		t.Fatal(err)
	}
	if nominal.Trail[0].Rows != calm.Trail[0].Rows {
		t.Fatalf("nominal probe changed the pick: %d vs %d rows",
			nominal.Trail[0].Rows, calm.Trail[0].Rows)
	}
}

// TestObserveDeflatesByMemoryFactor: latency measured under a degrade
// factor must not teach the model an inflated per-row rate — the probe
// factor folds into the same deflation the contention path uses.
func TestObserveDeflatesByMemoryFactor(t *testing.T) {
	tb, h, _ := fixture(t, 50_000)
	model := engine.CostModel{NsPerRow: 100, FixedNs: 0}
	ex, err := NewExecutor(tb, h, model)
	if err != nil {
		t.Fatal(err)
	}
	ex.SetMemoryProbe(func() float64 { return 4 })
	if _, err := ex.TimeBounded(avgQuery(), 2*time.Millisecond, sqlparse.Bounds{}); err != nil {
		t.Fatal(err)
	}
	// The real scan runs far faster than 100 ns/row, so an observation
	// NOT deflated by the factor would still drag the rate down; the
	// stronger invariant is that the learned rate stays within the
	// plausible uncontended band — specifically it must not exceed the
	// starting rate (pressure must never teach the model to be slower).
	if got := ex.CostModel().NsPerRow; got > model.NsPerRow {
		t.Fatalf("learned rate %v exceeds starting rate %v — pressure leaked into the EWMA", got, model.NsPerRow)
	}
}
