// Package bounded implements SciBORQ's bounded query processing (§3.2):
//
//   - Error-bounded execution evaluates an aggregate query on the
//     smallest impression layer first and escalates to ever more
//     detailed layers while any aggregate's confidence interval exceeds
//     the requested relative error ε — ultimately falling back to the
//     base columns for a zero error margin.
//
//   - Time-bounded execution uses a calibrated cost model to pick the
//     largest layer whose predicted latency fits the user's budget, runs
//     there, and reports both the promise and the measured latency. The
//     LIMIT-N behaviour the paper criticises ("the lucky N first
//     tuples") is available as a baseline for the ablation benchmarks.
package bounded

import (
	"fmt"
	"sync"
	"time"

	"sciborq/internal/engine"
	"sciborq/internal/estimate"
	"sciborq/internal/impression"
	"sciborq/internal/sqlparse"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// Executor runs bounded queries against an impression hierarchy and its
// base table. Every time-bounded execution feeds its measured latency
// back into the cost model (exponentially weighted), so layer choices
// converge to honest promises even when the initial calibration misses
// the true per-row cost of a query shape — the paper's future-work item
// of connecting processing time to impression size, made operational.
type Executor struct {
	base *table.Table
	hier *impression.Hierarchy
	opts engine.ExecOptions

	mu   sync.Mutex
	cost engine.CostModel
}

// learningRate is the EWMA weight of a new latency observation.
const learningRate = 0.3

// NewExecutor builds a bounded executor with default (parallel)
// execution options. hier may be nil, in which case every query runs on
// base data (exact, but unbounded in time).
func NewExecutor(base *table.Table, hier *impression.Hierarchy, cost engine.CostModel) (*Executor, error) {
	return NewExecutorOpts(base, hier, cost, engine.DefaultExecOptions())
}

// NewExecutorOpts is NewExecutor with explicit execution options. The
// supplied cost model must be calibrated for the same options (see
// engine.CalibrateOpts) — a sequentially calibrated model under a
// parallel executor would pessimistically pick impression layers that
// are smaller than the time bound affords.
func NewExecutorOpts(base *table.Table, hier *impression.Hierarchy, cost engine.CostModel, opts engine.ExecOptions) (*Executor, error) {
	if base == nil {
		return nil, fmt.Errorf("bounded: nil base table")
	}
	if cost.NsPerRow <= 0 {
		cost = engine.DefaultCostModel()
	}
	return &Executor{base: base, hier: hier, cost: cost, opts: opts}, nil
}

// LayerResult records one layer attempt during escalation.
type LayerResult struct {
	Layer     string
	Rows      int
	Estimates []estimate.Estimate
	Elapsed   time.Duration
	// Satisfied reports whether every aggregate met the error bound on
	// this layer.
	Satisfied bool
}

// Answer is the outcome of a bounded query.
type Answer struct {
	// Estimates holds the final per-aggregate estimates.
	Estimates []estimate.Estimate
	// Layer names the layer that produced the final answer.
	Layer string
	// Exact reports whether the answer came from base data.
	Exact bool
	// Trail records every layer attempted, in order.
	Trail []LayerResult
	// Promised is the cost-model latency prediction (time-bounded only).
	Promised time.Duration
	// Elapsed is the total wall-clock time spent.
	Elapsed time.Duration
	// BoundMet reports whether the requested bound was satisfied.
	BoundMet bool
}

// layerStack returns the evaluation targets smallest-first, ending with
// the exact base layer.
func (e *Executor) layerStack() ([]estimate.Layer, error) {
	var out []estimate.Layer
	if e.hier != nil {
		for _, im := range e.hier.Ascending() {
			m, err := im.Materialize()
			if err != nil {
				return nil, err
			}
			layer := estimate.Layer{
				Name:     im.Name(),
				Table:    m.Table,
				BaseRows: int64(e.base.Len()),
			}
			if im.Policy() == impression.Biased {
				layer.Weights = m.RatioWeights
				layer.CountWeights = m.InclusionWeights
			}
			out = append(out, layer)
		}
	}
	out = append(out, estimate.Layer{
		Name:     "base:" + e.base.Name(),
		Table:    e.base,
		BaseRows: int64(e.base.Len()),
		Exact:    true,
	})
	return out, nil
}

// Run executes a parsed statement under its bounds. Statements without
// bounds run exactly on base data.
func (e *Executor) Run(st *sqlparse.Statement) (*Answer, error) {
	switch {
	case st.Bounds.HasTimeBound():
		return e.TimeBounded(st.Query, st.Bounds.MaxTime, st.Bounds)
	case st.Bounds.HasErrorBound():
		return e.ErrorBounded(st.Query, st.Bounds.MaxRelError, st.Bounds.Confidence)
	default:
		return e.exact(st.Query)
	}
}

// exact evaluates on base data only.
func (e *Executor) exact(q engine.Query) (*Answer, error) {
	start := time.Now()
	layer := estimate.Layer{
		Name: "base:" + e.base.Name(), Table: e.base,
		BaseRows: int64(e.base.Len()), Exact: true,
	}
	ests, err := estimate.AggregateOnOpts(layer, q, 0.95, e.opts)
	if err != nil {
		return nil, err
	}
	el := time.Since(start)
	return &Answer{
		Estimates: ests, Layer: layer.Name, Exact: true,
		Trail:   []LayerResult{{Layer: layer.Name, Rows: e.base.Len(), Estimates: ests, Elapsed: el, Satisfied: true}},
		Elapsed: el, BoundMet: true,
	}, nil
}

// ErrorBounded escalates through the hierarchy until every aggregate's
// relative error is within eps at the given confidence level.
func (e *Executor) ErrorBounded(q engine.Query, eps, confidence float64) (*Answer, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("bounded: relative error bound must be positive, got %g", eps)
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	layers, err := e.layerStack()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ans := &Answer{}
	for _, l := range layers {
		ls := time.Now()
		ests, err := estimate.AggregateOnOpts(l, q, confidence, e.opts)
		if err != nil {
			return nil, err
		}
		ok := true
		for _, est := range ests {
			if est.RelError() > eps {
				ok = false
				break
			}
		}
		lr := LayerResult{
			Layer: l.Name, Rows: l.Table.Len(), Estimates: ests,
			Elapsed: time.Since(ls), Satisfied: ok,
		}
		ans.Trail = append(ans.Trail, lr)
		if ok {
			ans.Estimates = ests
			ans.Layer = l.Name
			ans.Exact = l.Exact
			ans.BoundMet = true
			break
		}
	}
	if !ans.BoundMet {
		// The base layer is exact, so this cannot happen; kept for
		// defensive completeness.
		last := ans.Trail[len(ans.Trail)-1]
		ans.Estimates, ans.Layer = last.Estimates, last.Layer
	}
	ans.Elapsed = time.Since(start)
	return ans, nil
}

// TimeBounded picks the largest layer predicted to finish within budget
// and evaluates there. When even the smallest layer is predicted to
// exceed the budget, the smallest layer is used anyway (best effort) and
// BoundMet reports the outcome against the wall clock.
func (e *Executor) TimeBounded(q engine.Query, budget time.Duration, b sqlparse.Bounds) (*Answer, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("bounded: time budget must be positive, got %v", budget)
	}
	layers, err := e.layerStack()
	if err != nil {
		return nil, err
	}
	model := e.CostModel()
	maxRows := model.MaxRowsWithin(budget)
	// Pick the largest layer whose PRUNED scan fits the budget; fall
	// back to the smallest. EstimateScanRows consults the same zone
	// maps the scan itself will, so a layer whose morsels are mostly
	// skippable for this predicate admits under a budget its raw row
	// count would blow — pruning-aware rows/sec, per layer.
	pick := layers[0]
	pickRows := 0
	for i, l := range layers {
		rows := engine.EstimateScanRows(l.Table, q.Pred(), e.opts)
		if i == 0 {
			pickRows = rows // smallest-layer fallback when nothing fits
		}
		if rows <= maxRows && l.Table.Len() >= pick.Table.Len() {
			pick, pickRows = l, rows
		}
	}
	confidence := b.Confidence
	if confidence == 0 {
		confidence = 0.95
	}
	promised := model.Predict(pickRows)
	start := time.Now()
	ests, err := estimate.AggregateOnOpts(pick, q, confidence, e.opts)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	e.observe(pickRows, elapsed)
	ans := &Answer{
		Estimates: ests,
		Layer:     pick.Name,
		Exact:     pick.Exact,
		Promised:  promised,
		Elapsed:   elapsed,
		BoundMet:  elapsed <= budget,
		Trail: []LayerResult{{
			Layer: pick.Name, Rows: pick.Table.Len(), Estimates: ests,
			Elapsed: elapsed, Satisfied: elapsed <= budget,
		}},
	}
	// If an error bound was also requested, report whether it held.
	if b.HasErrorBound() && ans.BoundMet {
		for _, est := range ests {
			if est.RelError() > b.MaxRelError {
				ans.BoundMet = false
				break
			}
		}
	}
	return ans, nil
}

// CostModel returns the executor's current (possibly learned) model.
func (e *Executor) CostModel() engine.CostModel {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cost
}

// observe feeds one measured (rows, latency) pair back into the cost
// model: the per-row rate moves toward the observation by the EWMA
// learning rate. Tiny inputs are skipped — their latency is dominated by
// fixed overheads and would corrupt the per-row estimate.
func (e *Executor) observe(rows int, elapsed time.Duration) {
	if rows < 64 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ns := float64(elapsed.Nanoseconds()) - e.cost.FixedNs
	if ns <= 0 {
		return
	}
	observed := ns / float64(rows)
	e.cost.NsPerRow = (1-learningRate)*e.cost.NsPerRow + learningRate*observed
}

// LimitFirstN is the baseline the paper criticises (§3.2): cut the scan
// after the first n matching tuples in storage order and aggregate only
// those — "the lucky N first tuples". Used by the ablation benchmarks to
// demonstrate why impressions answer LIMIT queries representatively.
func LimitFirstN(base *table.Table, q engine.Query, n int) (*engine.Result, error) {
	q.Limit = 0
	base = base.Snapshot() // selection and aggregation must agree on length
	sel, err := q.Pred().Filter(base, nil)
	if err != nil {
		return nil, err
	}
	if sel == nil {
		if n < base.Len() {
			sel = vec.NewSelAll(n)
		}
	} else if len(sel) > n {
		sel = sel[:n]
	}
	states, err := engine.AggregateStates(base, sel, q.Aggs)
	if err != nil {
		return nil, err
	}
	return engine.ResultFromStates(q, states)
}
