// Package bounded implements SciBORQ's bounded query processing (§3.2):
//
//   - Error-bounded execution evaluates an aggregate query on the
//     smallest impression layer first and escalates to ever more
//     detailed layers while any aggregate's confidence interval exceeds
//     the requested relative error ε — ultimately falling back to the
//     base columns for a zero error margin.
//
//   - Time-bounded execution uses a calibrated cost model to pick the
//     largest layer whose predicted latency fits the user's budget, runs
//     there, and reports both the promise and the measured latency. The
//     LIMIT-N behaviour the paper criticises ("the lucky N first
//     tuples") is available as a baseline for the ablation benchmarks.
//
// Impression layers execute as selection-vector scans over one shared
// base snapshot (estimate.AggregateOnSelOpts over impression.View):
// escalation never materialises a layer, so a dirty sample costs a
// view refresh — one merge pass over the reservoir's deltas — instead
// of a table copy.
//
// # Bounded execution under concurrent load
//
// A WITHIN TIME promise made against an idle-machine calibration is a
// lie the moment K queries share the cores. Executors therefore accept
// a load probe (SetLoadProbe) reporting the live in-flight query count
// and the admission queue's observed wait: at layer-pick time the
// per-row rate is inflated by the in-flight factor (K queries sharing
// the worker pool each see ~1/K of the machine) and the queue wait is
// added to the fixed overhead (dispatch delay the query will also
// suffer inside the scheduler), so contended picks degrade to smaller
// layers instead of blowing the bound. The EWMA latency feedback
// deflates its observations by the same factor, so the base model keeps
// tracking the uncontended per-row cost rather than double-counting
// contention.
//
// Per-query cancellation flows through RunWith's context into the
// morsel executor: a cancelled query frees its scan workers within one
// morsel boundary.
package bounded

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sciborq/internal/engine"
	"sciborq/internal/estimate"
	"sciborq/internal/impression"
	"sciborq/internal/recycler"
	"sciborq/internal/sqlparse"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// Executor runs bounded queries against an impression hierarchy and its
// base table. Every time-bounded execution feeds its measured latency
// back into the cost model (exponentially weighted), so layer choices
// converge to honest promises even when the initial calibration misses
// the true per-row cost of a query shape — the paper's future-work item
// of connecting processing time to impression size, made operational.
type Executor struct {
	base *table.Table
	hier *impression.Hierarchy
	opts engine.ExecOptions
	// rec, when set, serves and caches the exact-base WHERE selection —
	// the expensive rung of every escalation that falls through the
	// sample layers (see UseRecycler).
	rec *recycler.Recycler
	// load, when set, reports live contention for WITHIN TIME pricing
	// (see SetLoadProbe).
	load func() LoadInfo
	// mem, when set, reports the memory governor's degrade factor for
	// WITHIN TIME pricing (see SetMemoryProbe).
	mem func() float64

	mu   sync.Mutex
	cost engine.CostModel
}

// LoadInfo is a point-in-time contention report from the serving layer.
type LoadInfo struct {
	// InFlight is the number of queries currently executing, including
	// the one asking. Values above 1 inflate the per-row cost at layer
	// pick time: K concurrent scans each see roughly 1/K of the machine.
	InFlight int
	// QueueWait is the admission queue's observed wait (typically an
	// EWMA). It is charged as additional fixed overhead: a system whose
	// queue is backing up also delays the query's own goroutines.
	QueueWait time.Duration
}

// contentionModel derates a calibrated cost model by live load: per-row
// cost scales with the in-flight query count and the observed queue
// wait joins the fixed overhead. The returned factor (>= 1) is what the
// EWMA feedback must divide its observation by so the base model keeps
// learning the uncontended rate.
func contentionModel(model engine.CostModel, li LoadInfo) (engine.CostModel, float64) {
	factor := 1.0
	if li.InFlight > 1 {
		factor = float64(li.InFlight)
	}
	model.NsPerRow *= factor
	if li.QueueWait > 0 {
		model.FixedNs += float64(li.QueueWait.Nanoseconds())
	}
	return model, factor
}

// SetLoadProbe installs a callback reporting live load; WITHIN TIME
// layer picking consults it per query so time promises hold under
// contention, not just on an idle machine. A nil probe (the default)
// prices queries uncontended.
func (e *Executor) SetLoadProbe(fn func() LoadInfo) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.load = fn
}

// loadProbe returns the installed probe (nil when none).
func (e *Executor) loadProbe() func() LoadInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.load
}

// SetMemoryProbe installs a callback reporting the memory governor's
// degrade factor (>= 1). WITHIN TIME layer picking multiplies the
// per-row rate by it, so under memory pressure a time promise buys
// fewer rows and the pick degrades to a smaller impression layer — the
// paper's quality knob, spent on availability before the serving layer
// is allowed to refuse work. A nil probe (the default) prices queries
// unpressured.
func (e *Executor) SetMemoryProbe(fn func() float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mem = fn
}

// memoryProbe returns the installed probe (nil when none).
func (e *Executor) memoryProbe() func() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.mem
}

// learningRate is the EWMA weight of a new latency observation.
const learningRate = 0.3

// NewExecutor builds a bounded executor with default (parallel)
// execution options. hier may be nil, in which case every query runs on
// base data (exact, but unbounded in time).
func NewExecutor(base *table.Table, hier *impression.Hierarchy, cost engine.CostModel) (*Executor, error) {
	return NewExecutorOpts(base, hier, cost, engine.DefaultExecOptions())
}

// NewExecutorOpts is NewExecutor with explicit execution options. The
// supplied cost model must be calibrated for the same options (see
// engine.CalibrateOpts) — a sequentially calibrated model under a
// parallel executor would pessimistically pick impression layers that
// are smaller than the time bound affords.
func NewExecutorOpts(base *table.Table, hier *impression.Hierarchy, cost engine.CostModel, opts engine.ExecOptions) (*Executor, error) {
	if base == nil {
		return nil, fmt.Errorf("bounded: nil base table")
	}
	if cost.NsPerRow <= 0 {
		cost = engine.DefaultCostModel()
	}
	return &Executor{base: base, hier: hier, cost: cost, opts: opts}, nil
}

// LayerResult records one layer attempt during escalation.
type LayerResult struct {
	Layer     string
	Rows      int
	Estimates []estimate.Estimate
	Elapsed   time.Duration
	// Satisfied reports whether every aggregate met the error bound on
	// this layer.
	Satisfied bool
}

// Answer is the outcome of a bounded query.
type Answer struct {
	// Estimates holds the final per-aggregate estimates.
	Estimates []estimate.Estimate
	// Layer names the layer that produced the final answer.
	Layer string
	// Exact reports whether the answer came from base data.
	Exact bool
	// Trail records every layer attempted, in order.
	Trail []LayerResult
	// Promised is the cost-model latency prediction (time-bounded only).
	Promised time.Duration
	// Elapsed is the total wall-clock time spent.
	Elapsed time.Duration
	// BoundMet reports whether the requested bound was satisfied.
	BoundMet bool
}

// target is one rung of the escalation ladder: an impression layer
// evaluated as a selection-vector scan over the shared base snapshot,
// or the exact base layer itself. Building targets never materialises
// an impression — a layer whose sample changed since the last query
// costs a view refresh (one merge pass), not a table copy.
type target struct {
	name  string
	rows  int // sample rows (the Trail / layer-pick metric)
	exact bool
	// run evaluates the query's aggregates on this target. evalRows
	// reports how many rows the evaluation actually touched when that
	// differs from the scanRows prediction (a recycler-served base rung
	// touches 0 on a hit, |cached selection| on a refinement); -1 means
	// "as predicted". The cost model must learn from evalRows, never
	// the prediction — otherwise a cache-served latency charged against
	// a full-scan row count drags ns/row toward zero and poisons every
	// later time promise.
	run func(q engine.Query, confidence float64) ([]estimate.Estimate, int, error)
	// scanRows predicts the pruning-aware evaluated rows for the cost
	// model: |impression| positions for selection targets (never
	// |base|), zone-pruned base rows for the exact target.
	scanRows func(q engine.Query) int
}

// targets returns the evaluation ladder smallest-first, ending with the
// exact base layer. All targets share one base snapshot, so every rung
// of an escalation describes the same row prefix even under concurrent
// loads. opts carries the per-query context; rec (which may be nil)
// serves the exact-base rung's WHERE selection.
func (e *Executor) targets(opts engine.ExecOptions, rec *recycler.Recycler) []target {
	snap := e.base.Snapshot()
	baseRows := int64(snap.Len())
	var out []target
	if e.hier != nil {
		for _, im := range e.hier.Ascending() {
			v := im.View().Clamp(snap.Len())
			sl := estimate.SelLayer{
				Name:      im.Name(),
				Base:      snap,
				Positions: v.Positions,
				Weights:   v.Weights, CountWeights: v.Pis,
				BaseRows: baseRows,
			}
			out = append(out, target{
				name: sl.Name,
				rows: len(sl.Positions),
				run: func(q engine.Query, confidence float64) ([]estimate.Estimate, int, error) {
					ests, err := estimate.AggregateOnSelOpts(sl, q, confidence, opts)
					return ests, -1, err
				},
				scanRows: func(q engine.Query) int {
					return engine.EstimateSelScanRows(snap, q.Pred(), sl.Positions, opts)
				},
			})
		}
	}
	return append(out, e.baseTarget(snap, opts, rec))
}

// UseRecycler routes the exact-base rung's WHERE evaluation through a
// shared selection cache: an error-bounded escalation that exhausts the
// sample layers — or a repeated MIN/MAX/STDDEV query, which always
// needs exact base data — re-filters the base table every time without
// it. The recycler keys by (table ID, version), so answers stay
// batch-atomic under concurrent loads.
func (e *Executor) UseRecycler(r *recycler.Recycler) { e.rec = r }

// baseTarget builds the exact base rung alone — the whole ladder (and
// every layer's view refresh) is not needed for unbounded queries.
func (e *Executor) baseTarget(snap *table.Table, opts engine.ExecOptions, rec *recycler.Recycler) target {
	base := estimate.Layer{
		Name:     "base:" + e.base.Name(),
		Table:    snap,
		BaseRows: int64(snap.Len()),
		Exact:    true,
	}
	return target{
		name:  base.Name,
		rows:  snap.Len(),
		exact: true,
		run: func(q engine.Query, confidence float64) ([]estimate.Estimate, int, error) {
			if rec != nil && q.Where != nil {
				sel, scan, err := rec.Filter(snap, q.Where, opts)
				if err != nil {
					return nil, 0, err
				}
				ests, err := estimate.AggregateOnFiltered(base, q, confidence, sel)
				return ests, scan.ScannedRows, err
			}
			ests, err := estimate.AggregateOnOpts(base, q, confidence, opts)
			return ests, -1, err
		},
		scanRows: func(q engine.Query) int {
			return engine.EstimateScanRows(snap, q.Pred(), opts)
		},
	}
}

// Run executes a parsed statement under its bounds. Statements without
// bounds run exactly on base data.
func (e *Executor) Run(st *sqlparse.Statement) (*Answer, error) {
	return e.RunWith(context.Background(), st, nil)
}

// RunWith is Run with a per-query context and an optional recycler
// override. The context cancels the underlying morsel scans
// cooperatively (workers free within one morsel boundary); rec, when
// non-nil, replaces the executor's shared recycler for this query —
// the hook a multi-tenant server uses to give every tenant its own
// cache partition. A nil rec falls back to the UseRecycler default.
func (e *Executor) RunWith(ctx context.Context, st *sqlparse.Statement, rec *recycler.Recycler) (*Answer, error) {
	opts := e.opts
	opts.Ctx = ctx
	if rec == nil {
		rec = e.rec
	}
	switch {
	case st.Bounds.HasTimeBound():
		return e.timeBounded(st.Query, st.Bounds.MaxTime, st.Bounds, opts, rec)
	case st.Bounds.HasErrorBound():
		return e.errorBounded(st.Query, st.Bounds.MaxRelError, st.Bounds.Confidence, opts, rec)
	default:
		return e.exact(st.Query, opts, rec)
	}
}

// exact evaluates on base data only.
func (e *Executor) exact(q engine.Query, opts engine.ExecOptions, rec *recycler.Recycler) (*Answer, error) {
	start := time.Now()
	base := e.baseTarget(e.base.Snapshot(), opts, rec)
	ests, _, err := base.run(q, 0.95)
	if err != nil {
		return nil, err
	}
	el := time.Since(start)
	return &Answer{
		Estimates: ests, Layer: base.name, Exact: true,
		Trail:   []LayerResult{{Layer: base.name, Rows: base.rows, Estimates: ests, Elapsed: el, Satisfied: true}},
		Elapsed: el, BoundMet: true,
	}, nil
}

// ErrorBounded escalates through the hierarchy until every aggregate's
// relative error is within eps at the given confidence level.
func (e *Executor) ErrorBounded(q engine.Query, eps, confidence float64) (*Answer, error) {
	return e.errorBounded(q, eps, confidence, e.opts, e.rec)
}

func (e *Executor) errorBounded(q engine.Query, eps, confidence float64, opts engine.ExecOptions, rec *recycler.Recycler) (*Answer, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("bounded: relative error bound must be positive, got %g", eps)
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	start := time.Now()
	ans := &Answer{}
	for _, l := range e.targets(opts, rec) {
		ls := time.Now()
		ests, _, err := l.run(q, confidence)
		if err != nil {
			return nil, err
		}
		ok := true
		for _, est := range ests {
			if est.RelError() > eps {
				ok = false
				break
			}
		}
		lr := LayerResult{
			Layer: l.name, Rows: l.rows, Estimates: ests,
			Elapsed: time.Since(ls), Satisfied: ok,
		}
		ans.Trail = append(ans.Trail, lr)
		if ok {
			ans.Estimates = ests
			ans.Layer = l.name
			ans.Exact = l.exact
			ans.BoundMet = true
			break
		}
	}
	if !ans.BoundMet {
		// The base layer is exact, so this cannot happen; kept for
		// defensive completeness.
		last := ans.Trail[len(ans.Trail)-1]
		ans.Estimates, ans.Layer = last.Estimates, last.Layer
	}
	ans.Elapsed = time.Since(start)
	return ans, nil
}

// TimeBounded picks the largest layer predicted to finish within budget
// and evaluates there. When even the smallest layer is predicted to
// exceed the budget, the smallest layer is used anyway (best effort) and
// BoundMet reports the outcome against the wall clock.
//
// With a load probe installed (SetLoadProbe), the pick prices live
// contention: the per-row rate inflates by the in-flight query count
// and the observed queue wait joins the fixed overhead, so a promise
// made under K saturating neighbours degrades to a smaller layer
// instead of overshooting the budget.
func (e *Executor) TimeBounded(q engine.Query, budget time.Duration, b sqlparse.Bounds) (*Answer, error) {
	return e.timeBounded(q, budget, b, e.opts, e.rec)
}

func (e *Executor) timeBounded(q engine.Query, budget time.Duration, b sqlparse.Bounds, opts engine.ExecOptions, rec *recycler.Recycler) (*Answer, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("bounded: time budget must be positive, got %v", budget)
	}
	layers := e.targets(opts, rec)
	model := e.CostModel()
	factor := 1.0
	if probe := e.loadProbe(); probe != nil {
		model, factor = contentionModel(model, probe())
	}
	if probe := e.memoryProbe(); probe != nil {
		// Memory pressure degrades exactly like contention: the per-row
		// rate inflates, so the pick chooses a smaller layer, and the
		// EWMA feedback divides the same factor back out so the learned
		// model stays unpressured.
		if d := probe(); d > 1 {
			model.NsPerRow *= d
			factor *= d
		}
	}
	maxRows := model.MaxRowsWithin(budget)
	// Pick the largest layer whose PRUNED scan fits the budget; fall
	// back to the smallest. Selection targets price |impression|
	// positions minus the granules zone maps prove empty (the same
	// pruning the selection scan itself applies), so layer picking sees
	// sample-sized costs, never base-sized ones.
	pick := layers[0]
	pickRows := 0
	for i, l := range layers {
		rows := l.scanRows(q)
		if i == 0 {
			pickRows = rows // smallest-layer fallback when nothing fits
		}
		if rows <= maxRows && l.rows >= pick.rows {
			pick, pickRows = l, rows
		}
	}
	confidence := b.Confidence
	if confidence == 0 {
		confidence = 0.95
	}
	promised := model.Predict(pickRows)
	start := time.Now()
	ests, evalRows, err := pick.run(q, confidence)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	// Learn from what actually ran: a recycler-served base rung touched
	// evalRows rows (0 on a hit — observe skips tiny inputs), not the
	// predicted full scan. The observation deflates by the contention
	// factor so the base model tracks the uncontended per-row rate —
	// contention is re-applied per query at pick time, never baked into
	// the EWMA twice.
	if evalRows < 0 {
		evalRows = pickRows
	}
	e.observe(evalRows, elapsed, factor)
	ans := &Answer{
		Estimates: ests,
		Layer:     pick.name,
		Exact:     pick.exact,
		Promised:  promised,
		Elapsed:   elapsed,
		BoundMet:  elapsed <= budget,
		Trail: []LayerResult{{
			Layer: pick.name, Rows: pick.rows, Estimates: ests,
			Elapsed: elapsed, Satisfied: elapsed <= budget,
		}},
	}
	// If an error bound was also requested, report whether it held.
	if b.HasErrorBound() && ans.BoundMet {
		for _, est := range ests {
			if est.RelError() > b.MaxRelError {
				ans.BoundMet = false
				break
			}
		}
	}
	return ans, nil
}

// CostModel returns the executor's current (possibly learned) model.
func (e *Executor) CostModel() engine.CostModel {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cost
}

// observe feeds one measured (rows, latency) pair back into the cost
// model: the per-row rate moves toward the observation by the EWMA
// learning rate. Tiny inputs are skipped — their latency is dominated by
// fixed overheads and would corrupt the per-row estimate. factor (>= 1)
// is the contention inflation the pick priced with; dividing it out
// keeps the learned model uncontended.
func (e *Executor) observe(rows int, elapsed time.Duration, factor float64) {
	if rows < 64 {
		return
	}
	if factor < 1 {
		factor = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ns := float64(elapsed.Nanoseconds()) - e.cost.FixedNs
	if ns <= 0 {
		return
	}
	observed := ns / (float64(rows) * factor)
	e.cost.NsPerRow = (1-learningRate)*e.cost.NsPerRow + learningRate*observed
}

// LimitFirstN is the baseline the paper criticises (§3.2): cut the scan
// after the first n matching tuples in storage order and aggregate only
// those — "the lucky N first tuples". Used by the ablation benchmarks to
// demonstrate why impressions answer LIMIT queries representatively.
func LimitFirstN(base *table.Table, q engine.Query, n int) (*engine.Result, error) {
	q.Limit = 0
	base = base.Snapshot() // selection and aggregation must agree on length
	sel, err := q.Pred().Filter(base, nil)
	if err != nil {
		return nil, err
	}
	if sel == nil {
		if n < base.Len() {
			sel = vec.NewSelAll(n)
		}
	} else if len(sel) > n {
		sel = sel[:n]
	}
	states, err := engine.AggregateStates(base, sel, q.Aggs)
	if err != nil {
		return nil, err
	}
	return engine.ResultFromStates(q, states)
}
