package bounded

import (
	"testing"
	"time"

	"sciborq/internal/engine"
	"sciborq/internal/sqlparse"
)

// TestContentionModelDeratesPricing: the derated model predicts higher
// latency for the same rows, monotonically in both inflight count and
// queue wait.
func TestContentionModelDeratesPricing(t *testing.T) {
	base := engine.CostModel{NsPerRow: 10, FixedNs: 1000}
	idle, f := contentionModel(base, LoadInfo{InFlight: 1})
	if f != 1 || idle != base {
		t.Fatalf("idle load must not derate: got %+v factor %v", idle, f)
	}
	k4, f4 := contentionModel(base, LoadInfo{InFlight: 4})
	if f4 != 4 || k4.NsPerRow != 40 {
		t.Fatalf("4 in-flight queries must quadruple the per-row rate: got %+v factor %v", k4, f4)
	}
	qw, _ := contentionModel(base, LoadInfo{InFlight: 1, QueueWait: time.Millisecond})
	if qw.FixedNs != base.FixedNs+1e6 {
		t.Fatalf("queue wait must join the fixed overhead: got %v", qw.FixedNs)
	}
	// Monotonicity: more contention, fewer affordable rows.
	budget := 2 * time.Millisecond
	if k4.MaxRowsWithin(budget) >= base.MaxRowsWithin(budget) {
		t.Fatal("contended model must afford fewer rows than the idle one")
	}
	if qw.MaxRowsWithin(budget) >= base.MaxRowsWithin(budget) {
		t.Fatal("queue-delayed model must afford fewer rows than the idle one")
	}
}

// TestTimeBoundedPicksSmallerLayerUnderLoad: the same budget that
// affords a big layer idle must degrade to a smaller layer when the
// probe reports saturation — quality degrades, the promise holds.
func TestTimeBoundedPicksSmallerLayerUnderLoad(t *testing.T) {
	tb, h, _ := fixture(t, 50_000)
	// A deterministic model (no wall-clock calibration flakiness): 100
	// ns/row means a 2ms budget affords 20_000 rows — the 5_000-row L0
	// layer fits idle.
	ex, err := NewExecutor(tb, h, engine.CostModel{NsPerRow: 100, FixedNs: 0})
	if err != nil {
		t.Fatal(err)
	}
	budget := 2 * time.Millisecond
	q := avgQuery()

	idle, err := ex.TimeBounded(q, budget, sqlparse.Bounds{})
	if err != nil {
		t.Fatal(err)
	}
	// Learning may have nudged the model; rebuild for a clean contended
	// pick with the same starting model.
	ex2, err := NewExecutor(tb, h, engine.CostModel{NsPerRow: 100, FixedNs: 0})
	if err != nil {
		t.Fatal(err)
	}
	ex2.SetLoadProbe(func() LoadInfo { return LoadInfo{InFlight: 16} })
	loaded, err := ex2.TimeBounded(q, budget, sqlparse.Bounds{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Trail[0].Rows >= idle.Trail[0].Rows {
		t.Fatalf("contended pick (%d rows) must be smaller than idle pick (%d rows)",
			loaded.Trail[0].Rows, idle.Trail[0].Rows)
	}

	// A queue wait larger than the whole budget forces the smallest
	// layer (best effort) — never a bigger one.
	ex3, err := NewExecutor(tb, h, engine.CostModel{NsPerRow: 100, FixedNs: 0})
	if err != nil {
		t.Fatal(err)
	}
	ex3.SetLoadProbe(func() LoadInfo { return LoadInfo{InFlight: 2, QueueWait: time.Second} })
	swamped, err := ex3.TimeBounded(q, budget, sqlparse.Bounds{})
	if err != nil {
		t.Fatal(err)
	}
	if swamped.Trail[0].Rows > loaded.Trail[0].Rows {
		t.Fatalf("swamped pick (%d rows) exceeded the merely-contended pick (%d rows)",
			swamped.Trail[0].Rows, loaded.Trail[0].Rows)
	}
}

// TestObserveDeflatesByContentionFactor: a latency measured under a
// factor-K pick must feed the EWMA divided by K, so the base model does
// not double-count contention.
func TestObserveDeflatesByContentionFactor(t *testing.T) {
	_, _, ex := fixture(t, 2000)
	start := ex.CostModel()
	ex.observe(1000, time.Millisecond, 4)
	deflated := ex.CostModel().NsPerRow
	want := (1-learningRate)*start.NsPerRow + learningRate*(1e6-start.FixedNs)/(1000*4)
	if diff := deflated - want; diff > 1 || diff < -1 {
		t.Fatalf("deflated EWMA wrong: got %v, want %v", deflated, want)
	}
}
