package bounded

import (
	"testing"
	"time"

	"sciborq/internal/engine"
	"sciborq/internal/expr"
	"sciborq/internal/recycler"
	"sciborq/internal/sqlparse"
	"sciborq/internal/vec"
)

// TestRecyclerServedBaseDoesNotPoisonCostModel guards the learning
// loop: a time-bounded query whose exact-base rung is answered from
// the recycler finishes in cache-hit time, and that latency must not
// be charged against the full-scan row count — the EWMA would drag
// ns/row toward zero and inflate every later time promise.
func TestRecyclerServedBaseDoesNotPoisonCostModel(t *testing.T) {
	tb, _, _ := fixture(t, 20_000)
	rec, err := recycler.New(recycler.DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	// No hierarchy: every pick lands on the exact base rung.
	ex, err := NewExecutorOpts(tb, nil, engine.CostModel{NsPerRow: 10, FixedNs: 1000},
		engine.ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ex.UseRecycler(rec)
	q := avgQuery()
	q.Where = expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "ra"}, Right: 200}
	bounds := sqlparse.Bounds{MaxTime: time.Second}

	// First run: cold — the recycler misses, the scan really happens,
	// and the model may legitimately learn from it.
	if _, err := ex.TimeBounded(q, bounds.MaxTime, bounds); err != nil {
		t.Fatal(err)
	}
	learned := ex.CostModel().NsPerRow
	if learned <= 0 {
		t.Fatalf("cold run left ns/row = %v", learned)
	}
	// Warm runs: exact hits touch zero rows, so the model must not move.
	for i := 0; i < 5; i++ {
		if _, err := ex.TimeBounded(q, bounds.MaxTime, bounds); err != nil {
			t.Fatal(err)
		}
	}
	if st := rec.Stats(); st.Hits < 5 {
		t.Fatalf("warm runs did not hit the recycler: %+v", st)
	}
	if got := ex.CostModel().NsPerRow; got != learned {
		t.Fatalf("cache-served runs fed the cost model: ns/row %v -> %v", learned, got)
	}
}
