package bounded

import (
	"testing"
	"time"

	"sciborq/internal/engine"
	"sciborq/internal/sqlparse"
)

// TestParallelCalibratedModelNeverPicksSmallerLayer runs the same
// WITHIN TIME query through two executors that differ only in their
// cost model — one sequentially calibrated, one parallel-calibrated
// (lower ns/row, as a morsel-parallel scan measures) — and checks the
// parallel executor never settles for a smaller impression layer. This
// is the contract behind threading engine.CalibrateOpts into the façade:
// a stale single-core rate would make time promises pessimistic.
func TestParallelCalibratedModelNeverPicksSmallerLayer(t *testing.T) {
	tb, h, _ := fixture(t, 10_000)
	sequential := engine.CostModel{NsPerRow: 400, FixedNs: 2000}
	parallel := engine.CostModel{NsPerRow: 100, FixedNs: 2000}
	budgets := []time.Duration{
		10 * time.Microsecond,
		50 * time.Microsecond,
		200 * time.Microsecond,
		1 * time.Millisecond,
		20 * time.Millisecond,
	}
	for _, budget := range budgets {
		// Fresh executors per budget: TimeBounded feeds measured latency
		// back into the model, and the layer pick under test must depend
		// only on the initial calibration.
		exSeq, err := NewExecutorOpts(tb, h, sequential, engine.ExecOptions{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		exPar, err := NewExecutorOpts(tb, h, parallel, engine.ExecOptions{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		aSeq, err := exSeq.TimeBounded(avgQuery(), budget, sqlparse.Bounds{})
		if err != nil {
			t.Fatal(err)
		}
		aPar, err := exPar.TimeBounded(avgQuery(), budget, sqlparse.Bounds{})
		if err != nil {
			t.Fatal(err)
		}
		seqRows := aSeq.Trail[0].Rows
		parRows := aPar.Trail[0].Rows
		if parRows < seqRows {
			t.Errorf("budget %v: parallel-calibrated executor picked %d-row layer (%s), sequential picked %d-row layer (%s)",
				budget, parRows, aPar.Layer, seqRows, aSeq.Layer)
		}
	}
}

// TestParallelExecutorEquivalentAnswers checks bounded answers are
// row-identical across parallelism levels on every layer of the stack
// (layer contents are fixed by the hierarchy seed, so estimates from
// the same layer must match bit-for-bit).
func TestParallelExecutorEquivalentAnswers(t *testing.T) {
	tb, h, _ := fixture(t, 10_000)
	cost := engine.CostModel{NsPerRow: 10, FixedNs: 1000}
	exSeq, err := NewExecutorOpts(tb, h, cost, engine.ExecOptions{Parallelism: 1, MorselRows: 512})
	if err != nil {
		t.Fatal(err)
	}
	exPar, err := NewExecutorOpts(tb, h, cost, engine.ExecOptions{Parallelism: 4, MorselRows: 512})
	if err != nil {
		t.Fatal(err)
	}
	aSeq, err := exSeq.ErrorBounded(avgQuery(), 0.05, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	aPar, err := exPar.ErrorBounded(avgQuery(), 0.05, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if aSeq.Layer != aPar.Layer {
		t.Fatalf("layer choice diverged: %s vs %s", aSeq.Layer, aPar.Layer)
	}
	if len(aSeq.Estimates) != len(aPar.Estimates) {
		t.Fatalf("estimate counts diverged: %d vs %d", len(aSeq.Estimates), len(aPar.Estimates))
	}
	for i := range aSeq.Estimates {
		if aSeq.Estimates[i].Value() != aPar.Estimates[i].Value() {
			t.Errorf("estimate %d diverged: %v vs %v",
				i, aSeq.Estimates[i].Value(), aPar.Estimates[i].Value())
		}
	}
}
