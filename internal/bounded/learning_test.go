package bounded

import (
	"testing"
	"time"

	"sciborq/internal/engine"
	"sciborq/internal/sqlparse"
)

func TestObserveMovesModelTowardObservation(t *testing.T) {
	_, _, ex := fixture(t, 2000)
	before := ex.CostModel().NsPerRow // 10 in the fixture
	// Observe a much slower reality: 1000 rows in 1ms = 1000 ns/row.
	ex.observe(1000, time.Millisecond, 1)
	after := ex.CostModel().NsPerRow
	if after <= before {
		t.Fatalf("model did not learn: %v -> %v", before, after)
	}
	want := (1-learningRate)*before + learningRate*(1e6-ex.CostModel().FixedNs)/1000
	if diff := after - want; diff > 1 || diff < -1 {
		t.Fatalf("EWMA wrong: got %v, want %v", after, want)
	}
}

func TestObserveSkipsTinyAndNegativeInputs(t *testing.T) {
	_, _, ex := fixture(t, 2000)
	before := ex.CostModel()
	ex.observe(10, time.Second, 1) // below the 64-row floor
	ex.observe(1000, 0, 1)         // below fixed overhead
	after := ex.CostModel()
	if before != after {
		t.Fatalf("model changed on degenerate input: %+v -> %+v", before, after)
	}
}

func TestTimeBoundedLearnsFromRepeatedRuns(t *testing.T) {
	// Start with a model that wildly underestimates (0.01 ns/row): the
	// executor initially picks base data for small budgets; after a few
	// observed runs the learned rate rises by orders of magnitude.
	tb, h, _ := fixture(t, 50000)
	ex, err := NewExecutor(tb, h, engine.CostModel{NsPerRow: 0.01, FixedNs: 100})
	if err != nil {
		t.Fatal(err)
	}
	q := avgQuery()
	first, err := ex.TimeBounded(q, 200*time.Microsecond, sqlparse.Bounds{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := ex.TimeBounded(q, 200*time.Microsecond, sqlparse.Bounds{}); err != nil {
			t.Fatal(err)
		}
	}
	learned := ex.CostModel().NsPerRow
	if learned < 1 {
		t.Fatalf("model stayed at %v ns/row after observing real runs", learned)
	}
	last, err := ex.TimeBounded(q, 200*time.Microsecond, sqlparse.Bounds{})
	if err != nil {
		t.Fatal(err)
	}
	// With an honest model the promise for the chosen layer cannot be
	// the near-zero initial fantasy any more.
	if last.Promised <= first.Promised && last.Trail[0].Rows == first.Trail[0].Rows {
		t.Fatalf("promises did not adjust: first %v (%d rows), last %v (%d rows)",
			first.Promised, first.Trail[0].Rows, last.Promised, last.Trail[0].Rows)
	}
}

func TestLearningIsSharedAcrossQueries(t *testing.T) {
	// The executor's model is per-executor, so two queries benefit from
	// each other's observations.
	tb, h, _ := fixture(t, 30000)
	ex, err := NewExecutor(tb, h, engine.CostModel{NsPerRow: 0.01, FixedNs: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ex.TimeBounded(avgQuery(), time.Millisecond, sqlparse.Bounds{}); err != nil {
			t.Fatal(err)
		}
	}
	rate := ex.CostModel().NsPerRow
	if rate <= 0.01 {
		t.Fatal("no learning happened")
	}
}
