package bounded

import (
	"math"
	"testing"
	"time"

	"sciborq/internal/column"
	"sciborq/internal/engine"
	"sciborq/internal/expr"
	"sciborq/internal/impression"
	"sciborq/internal/sqlparse"
	"sciborq/internal/table"
	"sciborq/internal/vec"
	"sciborq/internal/xrand"
)

// fixture builds a base table, a 3-layer uniform hierarchy, and an
// executor.
func fixture(t *testing.T, n int) (*table.Table, *impression.Hierarchy, *Executor) {
	t.Helper()
	tb := table.MustNew("PhotoObjAll", table.Schema{
		{Name: "ra", Type: column.Float64},
		{Name: "x", Type: column.Float64},
	})
	r := xrand.New(100)
	rows := make([]table.Row, 0, n)
	for i := 0; i < n; i++ {
		ra := 120 + r.Float64()*120
		rows = append(rows, table.Row{ra, ra/10 + r.NormFloat64()})
	}
	if err := tb.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	mk := func(name string, size int, seed uint64) *impression.Impression {
		im, err := impression.New(tb, impression.Config{Name: name, Size: size, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return im
	}
	l0 := mk("L0", n/10, 1)
	l1 := mk("L1", n/100, 2)
	l2 := mk("L2", n/1000, 3)
	h, err := impression.NewHierarchy([]*impression.Impression{l0, l1, l2}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		h.Offer(int32(i))
	}
	if err := h.Refresh(); err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(tb, h, engine.CostModel{NsPerRow: 10, FixedNs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	return tb, h, ex
}

func avgQuery() engine.Query {
	return engine.Query{
		Table: "PhotoObjAll",
		Aggs:  []engine.AggSpec{{Func: engine.Avg, Arg: expr.ColRef{Name: "x"}, Alias: "a"}},
	}
}

func exactAvg(t *testing.T, tb *table.Table) float64 {
	t.Helper()
	xs, err := tb.Float64("x")
	if err != nil {
		t.Fatal(err)
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

func TestNewExecutorValidation(t *testing.T) {
	if _, err := NewExecutor(nil, nil, engine.CostModel{}); err == nil {
		t.Fatal("nil base accepted")
	}
	tb := table.MustNew("t", table.Schema{{Name: "x", Type: column.Float64}})
	ex, err := NewExecutor(tb, nil, engine.CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.cost.NsPerRow <= 0 {
		t.Fatal("degenerate cost model not replaced by default")
	}
}

func TestErrorBoundedLoosenedStopsEarly(t *testing.T) {
	tb, _, ex := fixture(t, 50000)
	ans, err := ex.ErrorBounded(avgQuery(), 0.05, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.BoundMet {
		t.Fatal("loose bound not met")
	}
	if ans.Exact {
		t.Fatal("5% bound should be satisfiable from a sample layer")
	}
	if len(ans.Trail) == 0 || ans.Trail[len(ans.Trail)-1].Layer != ans.Layer {
		t.Fatalf("trail inconsistent: %+v", ans.Trail)
	}
	truth := exactAvg(t, tb)
	if !ans.Estimates[0].Interval.Contains(truth) {
		t.Fatalf("interval misses truth %v", truth)
	}
}

func TestErrorBoundedEscalatesWithTighterBounds(t *testing.T) {
	_, _, ex := fixture(t, 50000)
	// Measure which layer satisfies each bound; tighter bounds must
	// never use a smaller layer than looser bounds.
	bounds := []float64{0.2, 0.05, 0.01, 0.001}
	prevRows := 0
	for _, eps := range bounds {
		ans, err := ex.ErrorBounded(avgQuery(), eps, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if !ans.BoundMet {
			t.Fatalf("eps=%v not met", eps)
		}
		rows := ans.Trail[len(ans.Trail)-1].Rows
		if rows < prevRows {
			t.Fatalf("eps=%v used smaller layer (%d rows) than looser bound (%d)", eps, rows, prevRows)
		}
		prevRows = rows
		if got := ans.Estimates[0].RelError(); got > eps {
			t.Fatalf("eps=%v: achieved error %v", eps, got)
		}
	}
}

func TestErrorBoundedImpossibleBoundFallsToBase(t *testing.T) {
	tb, _, ex := fixture(t, 20000)
	// A bound of 1e-9 forces base data (exact).
	ans, err := ex.ErrorBounded(avgQuery(), 1e-9, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Exact || !ans.BoundMet {
		t.Fatalf("expected exact base answer, got %+v", ans.Layer)
	}
	truth := exactAvg(t, tb)
	if math.Abs(ans.Estimates[0].Value()-truth) > 1e-12 {
		t.Fatalf("base answer %v != truth %v", ans.Estimates[0].Value(), truth)
	}
	// Must have tried every sample layer first.
	if len(ans.Trail) != 4 {
		t.Fatalf("trail length = %d, want 4 (3 layers + base)", len(ans.Trail))
	}
}

func TestErrorBoundedValidation(t *testing.T) {
	_, _, ex := fixture(t, 1000)
	if _, err := ex.ErrorBounded(avgQuery(), 0, 0.95); err == nil {
		t.Fatal("zero bound accepted")
	}
	if _, err := ex.ErrorBounded(avgQuery(), -0.1, 0.95); err == nil {
		t.Fatal("negative bound accepted")
	}
}

func TestErrorBoundedMinEscalatesToBase(t *testing.T) {
	// MIN cannot be bounded from a sample: any error bound forces base.
	_, _, ex := fixture(t, 10000)
	q := engine.Query{
		Table: "PhotoObjAll",
		Aggs:  []engine.AggSpec{{Func: engine.Min, Arg: expr.ColRef{Name: "x"}}},
	}
	ans, err := ex.ErrorBounded(q, 0.5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Exact {
		t.Fatal("MIN with error bound must fall through to base data")
	}
}

func TestTimeBoundedPicksLayerWithinBudget(t *testing.T) {
	_, _, ex := fixture(t, 50000)
	// Cost model: 10ns/row + 1µs fixed. Budget 60µs → ~5900 rows →
	// layer L0 (5000 rows) fits, base (50000) does not.
	ans, err := ex.TimeBounded(avgQuery(), 60*time.Microsecond, sqlparse.Bounds{})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Exact {
		t.Fatal("time budget should exclude base data")
	}
	if ans.Trail[0].Rows != 5000 {
		t.Fatalf("picked layer with %d rows, want 5000", ans.Trail[0].Rows)
	}
	if ans.Promised <= 0 {
		t.Fatal("no promise recorded")
	}
}

func TestTimeBoundedTinyBudgetBestEffort(t *testing.T) {
	_, _, ex := fixture(t, 50000)
	// 2µs budget fits nothing: best effort = smallest layer (50 rows).
	ans, err := ex.TimeBounded(avgQuery(), 2*time.Microsecond, sqlparse.Bounds{})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Trail[0].Rows != 50 {
		t.Fatalf("best effort used %d rows, want smallest layer 50", ans.Trail[0].Rows)
	}
}

func TestTimeBoundedHugeBudgetUsesBase(t *testing.T) {
	_, _, ex := fixture(t, 20000)
	ans, err := ex.TimeBounded(avgQuery(), time.Minute, sqlparse.Bounds{})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Exact {
		t.Fatal("huge budget should allow exact base evaluation")
	}
	if !ans.BoundMet {
		t.Fatal("minute budget must be met")
	}
}

func TestTimeBoundedValidation(t *testing.T) {
	_, _, ex := fixture(t, 1000)
	if _, err := ex.TimeBounded(avgQuery(), 0, sqlparse.Bounds{}); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestRunDispatch(t *testing.T) {
	tb, _, ex := fixture(t, 20000)
	truth := exactAvg(t, tb)

	// No bounds: exact.
	st := sqlparse.MustParse("SELECT AVG(x) AS a FROM PhotoObjAll")
	ans, err := ex.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Exact || math.Abs(ans.Estimates[0].Value()-truth) > 1e-12 {
		t.Fatalf("unbounded run: %+v", ans.Estimates[0])
	}

	// Error bound.
	st = sqlparse.MustParse("SELECT AVG(x) AS a FROM PhotoObjAll WITHIN ERROR 0.05")
	ans, err = ex.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Exact {
		t.Fatal("5% error bound should use a sample layer")
	}

	// Time bound.
	st = sqlparse.MustParse("SELECT AVG(x) AS a FROM PhotoObjAll WITHIN TIME 1m")
	ans, err = ex.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.BoundMet {
		t.Fatal("1-minute budget not met")
	}
}

func TestRunWithConeAndBothBounds(t *testing.T) {
	_, _, ex := fixture(t, 30000)
	st := sqlparse.MustParse(
		"SELECT COUNT(*) FROM PhotoObjAll WHERE ra BETWEEN 150 AND 210 WITHIN ERROR 0.2 WITHIN TIME 1m")
	ans, err := ex.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Estimates[0].Value() <= 0 {
		t.Fatal("count estimate not positive")
	}
}

func TestExecutorWithoutHierarchy(t *testing.T) {
	tb := table.MustNew("t", table.Schema{{Name: "x", Type: column.Float64}})
	_ = tb.AppendBatch([]table.Row{{1.0}, {2.0}, {3.0}})
	ex, err := NewExecutor(tb, nil, engine.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	q := engine.Query{Table: "t", Aggs: []engine.AggSpec{{Func: engine.Avg, Arg: expr.ColRef{Name: "x"}, Alias: "a"}}}
	ans, err := ex.ErrorBounded(q, 0.01, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Exact || ans.Estimates[0].Value() != 2 {
		t.Fatalf("hierless answer = %+v", ans.Estimates[0])
	}
}

func TestLimitFirstNIsUnrepresentative(t *testing.T) {
	// Demonstrate the paper's complaint: data loaded in sorted order
	// makes the first-N cut badly biased, while an impression is not.
	tb := table.MustNew("sorted", table.Schema{{Name: "x", Type: column.Float64}})
	const n = 10000
	rows := make([]table.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, table.Row{float64(i)}) // ascending insert order
	}
	if err := tb.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	q := engine.Query{Table: "sorted", Aggs: []engine.AggSpec{{Func: engine.Avg, Arg: expr.ColRef{Name: "x"}, Alias: "a"}}}
	res, err := LimitFirstN(tb, q, 100)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.Scalar("a")
	if got != 49.5 { // mean of 0..99: the lucky first tuples
		t.Fatalf("first-N avg = %v, want 49.5", got)
	}
	// True mean is 4999.5; the baseline is off by 100x. An impression
	// layer is not.
	im, _ := impression.New(tb, impression.Config{Name: "u", Size: 100, Seed: 9})
	for i := 0; i < n; i++ {
		im.Offer(int32(i))
	}
	lt, _, _ := im.Table()
	xs, _ := lt.Float64("x")
	var s float64
	for _, v := range xs {
		s += v
	}
	sampleAvg := s / float64(len(xs))
	if math.Abs(sampleAvg-4999.5) > 1500 {
		t.Fatalf("impression avg = %v, want near 4999.5", sampleAvg)
	}
}

func TestLimitFirstNWithPredicateAndNilSel(t *testing.T) {
	tb := table.MustNew("t", table.Schema{{Name: "x", Type: column.Float64}})
	rows := make([]table.Row, 0, 100)
	for i := 0; i < 100; i++ {
		rows = append(rows, table.Row{float64(i)})
	}
	_ = tb.AppendBatch(rows)
	q := engine.Query{
		Table: "t",
		Where: expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: "x"}, Right: 50},
		Aggs:  []engine.AggSpec{{Func: engine.Count}},
	}
	res, err := LimitFirstN(tb, q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Scalar("COUNT(*)"); got != 10 {
		t.Fatalf("limited count = %v", got)
	}
	// TRUE predicate path (nil selection).
	q.Where = nil
	res, err = LimitFirstN(tb, q, 25)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Scalar("COUNT(*)"); got != 25 {
		t.Fatalf("nil-sel limited count = %v", got)
	}
	// n larger than table.
	res, err = LimitFirstN(tb, q, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Scalar("COUNT(*)"); got != 100 {
		t.Fatalf("oversized limit count = %v", got)
	}
}
