package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"sciborq/internal/bounded"
	"sciborq/internal/engine"
	"sciborq/internal/estimate"
	"sciborq/internal/expr"
	"sciborq/internal/fisher"
	"sciborq/internal/impression"
	"sciborq/internal/kde"
	"sciborq/internal/reservoir"
	"sciborq/internal/skyserver"
	"sciborq/internal/stats"
	"sciborq/internal/vec"
	"sciborq/internal/workload"
	"sciborq/internal/xrand"
)

// fixture bundles the shared experiment substrate: a synthetic sky, a
// focused workload logger, and helpers.
type fixture struct {
	db     *skyserver.Database
	logger *workload.Logger
}

func newFixture(baseRows int, seed uint64) (*fixture, error) {
	cfg := skyserver.DefaultConfig(baseRows)
	cfg.Seed = seed
	db, err := skyserver.Generate(cfg)
	if err != nil {
		return nil, err
	}
	logger, err := workload.NewLogger([]workload.AttrSpec{
		{Name: "ra", Min: 120, Max: 240, Beta: 30},
		{Name: "dec", Min: 0, Max: 60, Beta: 30},
	}, false)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(workload.Figure4Focals(), xrand.New(seed+1))
	if err != nil {
		return nil, err
	}
	for _, c := range gen.NextN(400) {
		logger.LogQuery(c)
	}
	return &fixture{db: db, logger: logger}, nil
}

// uniformLayer builds one uniform impression layer of size n.
func (f *fixture) uniformLayer(n int, seed uint64) (estimate.Layer, error) {
	im, err := impression.New(f.db.PhotoObjAll, impression.Config{
		Name: fmt.Sprintf("uniform-%d", n), Size: n, Seed: seed,
	})
	if err != nil {
		return estimate.Layer{}, err
	}
	for i := 0; i < f.db.PhotoObjAll.Len(); i++ {
		im.Offer(int32(i))
	}
	t, _, err := im.Table()
	if err != nil {
		return estimate.Layer{}, err
	}
	return estimate.Layer{Name: im.Name(), Table: t, BaseRows: int64(f.db.PhotoObjAll.Len())}, nil
}

// biasedLayer builds one biased impression layer of size n steered by
// the fixture's workload.
func (f *fixture) biasedLayer(n int, seed uint64) (estimate.Layer, error) {
	im, err := impression.New(f.db.PhotoObjAll, impression.Config{
		Name: fmt.Sprintf("biased-%d", n), Size: n, Policy: impression.Biased,
		Logger: f.logger, Attrs: []string{"ra", "dec"}, Seed: seed,
	})
	if err != nil {
		return estimate.Layer{}, err
	}
	for i := 0; i < f.db.PhotoObjAll.Len(); i++ {
		im.Offer(int32(i))
	}
	t, w, err := im.Table()
	if err != nil {
		return estimate.Layer{}, err
	}
	return estimate.Layer{Name: im.Name(), Table: t, Weights: w, BaseRows: int64(f.db.PhotoObjAll.Len())}, nil
}

// avgRQuery is the standard probe: AVG(r) over an optional predicate.
func avgRQuery(where expr.Predicate) engine.Query {
	return engine.Query{
		Table: "PhotoObjAll",
		Where: where,
		Aggs:  []engine.AggSpec{{Func: engine.Avg, Arg: expr.ColRef{Name: "r"}, Alias: "avg_r"}},
	}
}

// exactAvg computes AVG(r) exactly under a predicate.
func (f *fixture) exactAvg(where expr.Predicate) (float64, error) {
	res, err := engine.RunOn(f.db.PhotoObjAll, avgRQuery(where))
	if err != nil {
		return 0, err
	}
	return res.Scalar("avg_r")
}

// E1Row is one row of experiment E1.
type E1Row struct {
	LayerSize    int
	PredictedRel float64 // CI half-width / estimate
	ObservedRel  float64 // |estimate − truth| / truth
	Covered      bool
}

// E1Result: error vs impression size (§3.1 "the larger the impression,
// the smaller the error bounds").
type E1Result struct {
	BaseRows int
	Truth    float64
	Rows     []E1Row
}

// E1LayerError runs AVG(r) on uniform layers of increasing size.
func E1LayerError(baseRows int, sizes []int, seed uint64) (*E1Result, error) {
	f, err := newFixture(baseRows, seed)
	if err != nil {
		return nil, err
	}
	truth, err := f.exactAvg(nil)
	if err != nil {
		return nil, err
	}
	out := &E1Result{BaseRows: baseRows, Truth: truth}
	for i, n := range sizes {
		layer, err := f.uniformLayer(n, seed+uint64(i)+10)
		if err != nil {
			return nil, err
		}
		ests, err := estimate.AggregateOn(layer, avgRQuery(nil), 0.95)
		if err != nil {
			return nil, err
		}
		e := ests[0]
		out.Rows = append(out.Rows, E1Row{
			LayerSize:    n,
			PredictedRel: e.RelError(),
			ObservedRel:  math.Abs(e.Value()-truth) / math.Abs(truth),
			Covered:      e.Interval.Contains(truth),
		})
	}
	return out, nil
}

// Render prints E1.
func (r *E1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E1 — error vs impression size (base=%d, truth AVG(r)=%.4f)\n", r.BaseRows, r.Truth)
	fmt.Fprintf(&b, "%10s %14s %14s %8s\n", "layer n", "CI rel err", "observed err", "covered")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10d %13.4f%% %13.4f%% %8t\n",
			row.LayerSize, row.PredictedRel*100, row.ObservedRel*100, row.Covered)
	}
	return b.String()
}

// E2Row is one row of experiment E2.
type E2Row struct {
	LayerRows int
	Promised  time.Duration
	Measured  time.Duration
	Met       bool
}

// E2Result: per-layer latency promises vs measurements.
type E2Result struct {
	Model engine.CostModel
	Rows  []E2Row
}

// E2TimeBounds measures actual layer latencies against the calibrated
// cost model's promises.
func E2TimeBounds(baseRows int, sizes []int, seed uint64) (*E2Result, error) {
	f, err := newFixture(baseRows, seed)
	if err != nil {
		return nil, err
	}
	model := engine.Calibrate(200_000)
	out := &E2Result{Model: model}
	cone := skyserver.FGetNearbyObjEq(165, 20, 5)
	for i, n := range sizes {
		layer, err := f.uniformLayer(n, seed+uint64(i)+40)
		if err != nil {
			return nil, err
		}
		// Median of 5 runs.
		var best time.Duration
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			if _, err := estimate.AggregateOn(layer, avgRQuery(cone), 0.95); err != nil {
				return nil, err
			}
			el := time.Since(start)
			if rep == 0 || el < best {
				best = el
			}
		}
		promised := model.Predict(n)
		out.Rows = append(out.Rows, E2Row{
			LayerRows: n,
			Promised:  promised,
			Measured:  best,
			// The promise holds if the measured time is within 4x of it
			// (cost models promise order of magnitude, not cycles).
			Met: best <= 4*promised || best < time.Millisecond,
		})
	}
	return out, nil
}

// Render prints E2.
func (r *E2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E2 — execution-time guarantees per layer (model: %.2f ns/row + %.0f ns)\n",
		r.Model.NsPerRow, r.Model.FixedNs)
	fmt.Fprintf(&b, "%10s %14s %14s %6s\n", "layer n", "promised", "measured", "ok")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10d %14v %14v %6t\n", row.LayerRows, row.Promised, row.Measured, row.Met)
	}
	return b.String()
}

// E3Result: biased vs uniform precision on focal and anti-focal queries.
type E3Result struct {
	SampleSize                   int
	FocalUniform, FocalBiased    float64 // CI relative errors
	AntiUniform, AntiBiased      float64
	FocalSupportU, FocalSupportB int // matching sample rows
}

// E3BiasedVsUniform runs the paper's central claim: biased impressions
// answer focal queries with tighter bounds than uniform ones of equal
// size, at the cost of looser anti-focal bounds.
func E3BiasedVsUniform(baseRows, sampleSize int, seed uint64) (*E3Result, error) {
	f, err := newFixture(baseRows, seed)
	if err != nil {
		return nil, err
	}
	uni, err := f.uniformLayer(sampleSize, seed+100)
	if err != nil {
		return nil, err
	}
	bia, err := f.biasedLayer(sampleSize, seed+101)
	if err != nil {
		return nil, err
	}
	focal := skyserver.FGetNearbyObjEq(165, 20, 3) // at the workload focus
	anti := expr.And{
		L: expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: "ra"}, Right: 225},
		R: expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "dec"}, Right: 10},
	} // far from any focal point
	run := func(l estimate.Layer, p expr.Predicate) (estimate.Estimate, error) {
		ests, err := estimate.AggregateOn(l, avgRQuery(p), 0.95)
		if err != nil {
			return estimate.Estimate{}, err
		}
		return ests[0], nil
	}
	fu, err := run(uni, focal)
	if err != nil {
		return nil, err
	}
	fb, err := run(bia, focal)
	if err != nil {
		return nil, err
	}
	au, err := run(uni, anti)
	if err != nil {
		return nil, err
	}
	ab, err := run(bia, anti)
	if err != nil {
		return nil, err
	}
	return &E3Result{
		SampleSize:    sampleSize,
		FocalUniform:  fu.RelError(),
		FocalBiased:   fb.RelError(),
		AntiUniform:   au.RelError(),
		AntiBiased:    ab.RelError(),
		FocalSupportU: fu.SampleRows,
		FocalSupportB: fb.SampleRows,
	}, nil
}

// Render prints E3.
func (r *E3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E3 — biased vs uniform (n=%d): CI relative error on AVG(r)\n", r.SampleSize)
	fmt.Fprintf(&b, "%18s %10s %10s\n", "query", "uniform", "biased")
	fmt.Fprintf(&b, "%18s %9.3f%% %9.3f%%   (support: %d vs %d sample rows)\n",
		"focal cone", r.FocalUniform*100, r.FocalBiased*100, r.FocalSupportU, r.FocalSupportB)
	fmt.Fprintf(&b, "%18s %9.3f%% %9.3f%%\n", "anti-focal box", r.AntiUniform*100, r.AntiBiased*100)
	return b.String()
}

// E4Point is the focal coverage after one load step.
type E4Point struct {
	Load      int
	FocalFrac float64 // fraction of the impression inside the active focus
}

// E4Result: adaptation to workload shift.
type E4Result struct {
	ShiftAt int
	Points  []E4Point
}

// E4Adaptation drifts the workload focus mid-stream and tracks how the
// biased impression follows it: queries focus on region A, then shift to
// region B at load `shiftAt`; the plot shows the fraction of impression
// tuples near B recovering after the shift.
func E4Adaptation(loads, rowsPerLoad, sampleSize, shiftAt int, seed uint64) (*E4Result, error) {
	cfg := skyserver.DefaultConfig(0)
	cfg.Seed = seed
	db, err := skyserver.New(cfg)
	if err != nil {
		return nil, err
	}
	logger, err := workload.NewLogger([]workload.AttrSpec{
		{Name: "ra", Min: 120, Max: 240, Beta: 30},
	}, false)
	if err != nil {
		return nil, err
	}
	focusA := []workload.FocalPoint{{Ra: 150, Dec: 20, SigmaRa: 4, SigmaDec: 4, Weight: 1, ConeRadius: 2}}
	focusB := []workload.FocalPoint{{Ra: 215, Dec: 40, SigmaRa: 4, SigmaDec: 4, Weight: 1, ConeRadius: 2}}
	gen, err := workload.NewGenerator(focusA, xrand.New(seed+1))
	if err != nil {
		return nil, err
	}
	im, err := impression.New(db.PhotoObjAll, impression.Config{
		Name: "adaptive", Size: sampleSize, Policy: impression.Biased,
		Logger: logger, Attrs: []string{"ra"}, Seed: seed + 2,
	})
	if err != nil {
		return nil, err
	}
	rowGen := db.Generator(xrand.New(seed + 3))
	out := &E4Result{ShiftAt: shiftAt}
	for load := 0; load < loads; load++ {
		if load == shiftAt {
			if err := gen.Shift(focusB); err != nil {
				return nil, err
			}
			// Age out stale interest so the new focus can dominate
			// (§3.1 "fast reflexes").
			logger.Decay(0.1)
		}
		// 20 queries per load window.
		for _, c := range gen.NextN(20) {
			logger.LogQuery(c)
		}
		batch := rowGen.NextBatch(rowsPerLoad)
		start := db.PhotoObjAll.Len()
		if err := db.PhotoObjAll.AppendBatch(batch); err != nil {
			return nil, err
		}
		for pos := start; pos < db.PhotoObjAll.Len(); pos++ {
			im.Offer(int32(pos))
		}
		// Focal fraction wrt the CURRENT focus (B after the shift).
		centre := 150.0
		if load >= shiftAt {
			centre = 215.0
		}
		t, _, err := im.Table()
		if err != nil {
			return nil, err
		}
		ra, err := t.Float64("ra")
		if err != nil {
			return nil, err
		}
		in := 0
		for _, v := range ra {
			if math.Abs(v-centre) < 10 {
				in++
			}
		}
		frac := 0.0
		if len(ra) > 0 {
			frac = float64(in) / float64(len(ra))
		}
		out.Points = append(out.Points, E4Point{Load: load, FocalFrac: frac})
	}
	return out, nil
}

// Render prints E4.
func (r *E4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E4 — adaptation to workload shift (focus moves at load %d)\n", r.ShiftAt)
	fmt.Fprintf(&b, "%6s %12s\n", "load", "focal frac")
	for _, p := range r.Points {
		marker := ""
		if p.Load == r.ShiftAt {
			marker = "  <- shift"
		}
		fmt.Fprintf(&b, "%6d %12.3f%s\n", p.Load, p.FocalFrac, marker)
	}
	return b.String()
}

// E5Row is one quality-bound escalation outcome.
type E5Row struct {
	Eps         float64
	LayerRows   int
	LayersTried int
	Exact       bool
	AchievedRel float64
}

// E5Result: which layer satisfies which error bound.
type E5Result struct {
	Rows []E5Row
}

// E5Escalation sweeps error bounds over a 3-layer hierarchy and records
// the layer that satisfied each (§3.2 escalation).
func E5Escalation(baseRows int, sizes []int, epss []float64, seed uint64) (*E5Result, error) {
	f, err := newFixture(baseRows, seed)
	if err != nil {
		return nil, err
	}
	layers := make([]*impression.Impression, 0, len(sizes))
	for i, n := range sizes {
		im, err := impression.New(f.db.PhotoObjAll, impression.Config{
			Name: fmt.Sprintf("L%d", i), Size: n, Seed: seed + uint64(i) + 60,
		})
		if err != nil {
			return nil, err
		}
		layers = append(layers, im)
	}
	h, err := impression.NewHierarchy(layers, 1<<30)
	if err != nil {
		return nil, err
	}
	for i := 0; i < f.db.PhotoObjAll.Len(); i++ {
		layers[0].Offer(int32(i))
	}
	if err := h.Refresh(); err != nil {
		return nil, err
	}
	ex, err := bounded.NewExecutor(f.db.PhotoObjAll, h, engine.DefaultCostModel())
	if err != nil {
		return nil, err
	}
	out := &E5Result{}
	q := avgRQuery(skyserver.FGetNearbyObjEq(165, 20, 8))
	for _, eps := range epss {
		ans, err := ex.ErrorBounded(q, eps, 0.95)
		if err != nil {
			return nil, err
		}
		last := ans.Trail[len(ans.Trail)-1]
		out.Rows = append(out.Rows, E5Row{
			Eps: eps, LayerRows: last.Rows, LayersTried: len(ans.Trail),
			Exact: ans.Exact, AchievedRel: ans.Estimates[0].RelError(),
		})
	}
	return out, nil
}

// Render prints E5.
func (r *E5Result) Render() string {
	var b strings.Builder
	fmt.Fprintln(&b, "E5 — quality-bound escalation across layers")
	fmt.Fprintf(&b, "%10s %12s %8s %8s %12s\n", "eps", "layer rows", "tried", "exact", "achieved")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%9.3f%% %12d %8d %8t %11.4f%%\n",
			row.Eps*100, row.LayerRows, row.LayersTried, row.Exact, row.AchievedRel*100)
	}
	return b.String()
}

// E6Row is the recency profile for one k/D setting.
type E6Row struct {
	KOverD      float64
	MeanAge     float64 // mean (stream length − position) of sampled tuples
	FracLastDay float64 // fraction from the final ingest window
}

// E6Result: Last Seen recency bias (Figure 3).
type E6Result struct {
	Stream int
	Day    int
	Rows   []E6Row
}

// E6LastSeen streams `stream` tuples with daily windows of size `day`
// and measures the recency profile of Last Seen impressions for several
// k/D ratios, plus a uniform reservoir baseline.
func E6LastSeen(stream, day, sampleSize int, ratios []float64, seed uint64) (*E6Result, error) {
	out := &E6Result{Stream: stream, Day: day}
	profile := func(items []int32) (meanAge, fracLast float64) {
		var ageSum float64
		last := 0
		for _, p := range items {
			ageSum += float64(stream - 1 - int(p))
			if int(p) >= stream-day {
				last++
			}
		}
		if len(items) == 0 {
			return 0, 0
		}
		return ageSum / float64(len(items)), float64(last) / float64(len(items))
	}
	// Uniform baseline (ratio reported as 0).
	uni, err := reservoir.NewR[int32](sampleSize, xrand.New(seed))
	if err != nil {
		return nil, err
	}
	for i := 0; i < stream; i++ {
		uni.Offer(int32(i))
	}
	mu, fu := profile(uni.Items())
	out.Rows = append(out.Rows, E6Row{KOverD: 0, MeanAge: mu, FracLastDay: fu})
	for i, ratio := range ratios {
		ls, err := reservoir.NewLastSeen[int32](sampleSize, ratio*float64(day), float64(day), false, xrand.New(seed+uint64(i)+1))
		if err != nil {
			return nil, err
		}
		for j := 0; j < stream; j++ {
			ls.Offer(int32(j))
		}
		m, fr := profile(ls.Items())
		out.Rows = append(out.Rows, E6Row{KOverD: ratio, MeanAge: m, FracLastDay: fr})
	}
	return out, nil
}

// Render prints E6.
func (r *E6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E6 — Last Seen recency bias (stream=%d, day=%d; k/D=0 is the uniform baseline)\n", r.Stream, r.Day)
	fmt.Fprintf(&b, "%8s %14s %14s\n", "k/D", "mean age", "frac last day")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8.2f %14.0f %14.3f\n", row.KOverD, row.MeanAge, row.FracLastDay)
	}
	return b.String()
}

// E7Row compares KDE evaluation costs at one predicate-set size.
type E7Row struct {
	N        int
	FullNs   float64 // ns per f̂ evaluation
	BinnedNs float64 // ns per f̆ evaluation
	Speedup  float64
}

// E7Result: f̆ is O(β) while f̂ is O(N).
type E7Result struct {
	Beta int
	Rows []E7Row
}

// E7KDECost measures per-evaluation cost of f̂ vs f̆ as the predicate set
// grows.
func E7KDECost(ns []int, beta int, seed uint64) (*E7Result, error) {
	out := &E7Result{Beta: beta}
	r := xrand.New(seed)
	for _, n := range ns {
		xs := make([]float64, n)
		hist := stats.MustNewHistogram(120, 240, beta)
		for i := range xs {
			v := 160 + r.NormFloat64()*10
			xs[i] = v
			hist.Observe(v)
		}
		full, err := kde.NewFull(xs, 4, kde.Gaussian{})
		if err != nil {
			return nil, err
		}
		binned, err := kde.NewBinned(hist, kde.Gaussian{})
		if err != nil {
			return nil, err
		}
		timeIt := func(f func(float64) float64) float64 {
			const evals = 2000
			start := time.Now()
			sink := 0.0
			for i := 0; i < evals; i++ {
				sink += f(120 + float64(i%120))
			}
			_ = sink
			return float64(time.Since(start).Nanoseconds()) / evals
		}
		fullNs := timeIt(full.Eval)
		binnedNs := timeIt(binned.Eval)
		sp := 0.0
		if binnedNs > 0 {
			sp = fullNs / binnedNs
		}
		out.Rows = append(out.Rows, E7Row{N: n, FullNs: fullNs, BinnedNs: binnedNs, Speedup: sp})
	}
	return out, nil
}

// Render prints E7.
func (r *E7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E7 — KDE evaluation cost: f̂ is O(N), f̆ is O(β=%d)\n", r.Beta)
	fmt.Fprintf(&b, "%10s %14s %14s %10s\n", "N", "f̂ ns/eval", "f̆ ns/eval", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10d %14.1f %14.1f %9.1fx\n", row.N, row.FullNs, row.BinnedNs, row.Speedup)
	}
	return b.String()
}

// E8Row compares empirical biased-sample composition against Fisher's
// noncentral hypergeometric theory at one odds ratio.
type E8Row struct {
	Omega         float64
	TheoryMean    float64
	EmpiricalMean float64
	TheoryVar     float64
	EmpiricalVar  float64
}

// E8Result: Fisher NCH validation (§4, reference [6]).
type E8Result struct {
	M1, M2, N int
	Trials    int
	Rows      []E8Row
}

// E8Fisher draws repeated biased samples over a two-group population
// with group-1 odds ω and compares the number of group-1 tuples in the
// sample against the Fisher NCH mean and variance. Sampling follows
// Fisher's defining construction: every item is drawn independently —
// group 1 with probability ωc/(1+ωc), group 2 with probability c/(1+c) —
// and the draw is kept only when exactly n items were selected (the
// conditioning that distinguishes Fisher's from Wallenius' NCH; see Fog
// 2008, the paper's reference [6]). c is tuned so E[#selected] = n.
func E8Fisher(m1, m2, n, trials int, omegas []float64, seed uint64) (*E8Result, error) {
	out := &E8Result{M1: m1, M2: m2, N: n, Trials: trials}
	for _, omega := range omegas {
		dist, err := fisher.New(m1, m2, n, omega)
		if err != nil {
			return nil, err
		}
		c := tuneBernoulliScale(m1, m2, n, omega)
		p1 := omega * c / (1 + omega*c)
		p2 := c / (1 + c)
		rng := xrand.New(seed + uint64(omega*1000))
		var sum, sumSq float64
		for tr := 0; tr < trials; tr++ {
			var total, x int
			for {
				total, x = 0, 0
				for i := 0; i < m1; i++ {
					if rng.Float64() < p1 {
						total++
						x++
					}
				}
				for i := 0; i < m2; i++ {
					if rng.Float64() < p2 {
						total++
					}
				}
				if total == n {
					break
				}
			}
			sum += float64(x)
			sumSq += float64(x) * float64(x)
		}
		mean := sum / float64(trials)
		out.Rows = append(out.Rows, E8Row{
			Omega:         omega,
			TheoryMean:    dist.Mean(),
			EmpiricalMean: mean,
			TheoryVar:     dist.Variance(),
			EmpiricalVar:  sumSq/float64(trials) - mean*mean,
		})
	}
	return out, nil
}

// tuneBernoulliScale bisects for the scale c with
// m1·ωc/(1+ωc) + m2·c/(1+c) = n.
func tuneBernoulliScale(m1, m2, n int, omega float64) float64 {
	expected := func(c float64) float64 {
		return float64(m1)*omega*c/(1+omega*c) + float64(m2)*c/(1+c)
	}
	lo, hi := 1e-9, 1e9
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection across decades
		if expected(mid) < float64(n) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}

// Render prints E8.
func (r *E8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E8 — biased composition vs Fisher NCH (m1=%d, m2=%d, n=%d, %d trials)\n",
		r.M1, r.M2, r.N, r.Trials)
	fmt.Fprintf(&b, "%8s %12s %12s %12s %12s\n", "omega", "E[X] theory", "E[X] emp", "Var theory", "Var emp")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8.2f %12.2f %12.2f %12.2f %12.2f\n",
			row.Omega, row.TheoryMean, row.EmpiricalMean, row.TheoryVar, row.EmpiricalVar)
	}
	return b.String()
}
