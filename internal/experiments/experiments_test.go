package experiments

import (
	"strings"
	"testing"
)

// The experiment suite is the reproduction's acceptance test: each test
// asserts the *shape* the paper reports (who wins, where the trends go),
// not absolute numbers.

func TestFigure4ShapeAndFidelity(t *testing.T) {
	res, err := Figure4(400, 30, 2011)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attrs) != 2 || res.Attrs[0].Attr != "ra" || res.Attrs[1].Attr != "dec" {
		t.Fatalf("attrs = %+v", res.Attrs)
	}
	for _, fa := range res.Attrs {
		if fa.Hist.N != 400 {
			t.Fatalf("[%s] predicate set size = %d, want 400 (as in the paper)", fa.Attr, fa.Hist.N)
		}
		// Paper: f̆ "almost identical" to f̂.
		if fa.L1 > 0.15 {
			t.Fatalf("[%s] L1(f̂, f̆) = %v, too far for 'almost identical'", fa.Attr, fa.L1)
		}
		// Oversmoothed peak below f̂ peak; undersmoothed above.
		peak := func(c Curve) float64 {
			best := 0.0
			for _, y := range c.Ys {
				if y > best {
					best = y
				}
			}
			return best
		}
		if peak(fa.Curves[1]) >= peak(fa.Curves[0]) {
			t.Fatalf("[%s] oversmoothed peak not reduced", fa.Attr)
		}
		if peak(fa.Curves[2]) <= peak(fa.Curves[0]) {
			t.Fatalf("[%s] undersmoothed peak not raised", fa.Attr)
		}
	}
	out := res.Render()
	for _, want := range []string{"Figure 4", "fhat", "fbreve", "[ra]", "[dec]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestFigure7BiasConcentratesFocalMass(t *testing.T) {
	// Scaled-down Figure 7 (full scale runs in cmd/figures): the biased
	// impression must carry clearly more focal mass than the uniform
	// one, which tracks the base distribution.
	res, err := Figure7(60000, 2000, 30, 2011)
	if err != nil {
		t.Fatal(err)
	}
	for _, fa := range res.Attrs {
		if fa.Uniform.N != 2000 || fa.Biased.N != 2000 {
			t.Fatalf("[%s] sample sizes %d/%d", fa.Attr, fa.Uniform.N, fa.Biased.N)
		}
		// Uniform tracks base within a few points.
		if d := fa.FocalMassUniform - fa.FocalMassBase; d > 0.08 || d < -0.08 {
			t.Fatalf("[%s] uniform focal mass %v far from base %v",
				fa.Attr, fa.FocalMassUniform, fa.FocalMassBase)
		}
		// Biased concentrates: paper's purple histograms.
		if fa.FocalMassBiased < fa.FocalMassUniform+0.15 {
			t.Fatalf("[%s] biased focal mass %v not above uniform %v",
				fa.Attr, fa.FocalMassBiased, fa.FocalMassUniform)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "biased") {
		t.Fatal("render incomplete")
	}
}

func TestE1ErrorShrinksWithLayerSize(t *testing.T) {
	res, err := E1LayerError(40000, []int{400, 2000, 10000}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// CI relative error must shrink monotonically with layer size.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].PredictedRel >= res.Rows[i-1].PredictedRel {
			t.Fatalf("error did not shrink: %+v", res.Rows)
		}
	}
	covered := 0
	for _, r := range res.Rows {
		if r.Covered {
			covered++
		}
	}
	if covered < 2 {
		t.Fatalf("only %d/3 intervals covered the truth", covered)
	}
	if !strings.Contains(res.Render(), "E1") {
		t.Fatal("render incomplete")
	}
}

func TestE2LatencyGrowsWithLayerSize(t *testing.T) {
	res, err := E2TimeBounds(30000, []int{500, 5000, 20000}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[2].Measured <= res.Rows[0].Measured {
		t.Fatalf("latency not increasing with layer size: %+v", res.Rows)
	}
	if !strings.Contains(res.Render(), "E2") {
		t.Fatal("render incomplete")
	}
}

func TestE3BiasedWinsOnFocalQueries(t *testing.T) {
	res, err := E3BiasedVsUniform(60000, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's central trade-off: biased tighter on focal...
	if res.FocalBiased >= res.FocalUniform {
		t.Fatalf("biased focal error %v not below uniform %v", res.FocalBiased, res.FocalUniform)
	}
	// ...because it holds far more focal tuples...
	if float64(res.FocalSupportB) < 1.5*float64(res.FocalSupportU) {
		t.Fatalf("biased focal support %d not well above uniform %d",
			res.FocalSupportB, res.FocalSupportU)
	}
	// ...and looser off-focus.
	if res.AntiBiased <= res.AntiUniform {
		t.Fatalf("biased anti-focal error %v not above uniform %v", res.AntiBiased, res.AntiUniform)
	}
	if !strings.Contains(res.Render(), "E3") {
		t.Fatal("render incomplete")
	}
}

func TestE4ImpressionFollowsShift(t *testing.T) {
	res, err := E4Adaptation(40, 2000, 1500, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 40 {
		t.Fatalf("points = %d", len(res.Points))
	}
	before := res.Points[19].FocalFrac    // settled on focus A
	justAfter := res.Points[20].FocalFrac // focus moved: coverage of B low
	recovered := res.Points[39].FocalFrac // after 20 more loads
	if before < 0.15 {
		t.Fatalf("never focused on A: %v", before)
	}
	if justAfter >= before {
		t.Fatalf("shift not visible: before=%v after=%v", before, justAfter)
	}
	if recovered < justAfter+0.05 {
		t.Fatalf("no recovery after shift: %v -> %v", justAfter, recovered)
	}
	if !strings.Contains(res.Render(), "shift") {
		t.Fatal("render incomplete")
	}
}

func TestE5EscalationMonotone(t *testing.T) {
	res, err := E5Escalation(40000, []int{8000, 2000, 400}, []float64{0.1, 0.02, 0.002, 1e-8}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].LayerRows < res.Rows[i-1].LayerRows {
			t.Fatalf("tighter bound used smaller layer: %+v", res.Rows)
		}
	}
	last := res.Rows[len(res.Rows)-1]
	if !last.Exact {
		t.Fatal("impossible bound did not reach base data")
	}
	if !strings.Contains(res.Render(), "E5") {
		t.Fatal("render incomplete")
	}
}

func TestE6RecencyIncreasesWithKOverD(t *testing.T) {
	res, err := E6LastSeen(100000, 5000, 1000, []float64{0.1, 0.5, 1.0}, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform baseline mean age ≈ stream/2; Last Seen much younger.
	if res.Rows[0].MeanAge < 40000 {
		t.Fatalf("uniform baseline mean age = %v", res.Rows[0].MeanAge)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].MeanAge >= res.Rows[0].MeanAge {
			t.Fatalf("Last Seen not younger than uniform: %+v", res.Rows)
		}
	}
	// Higher k/D → younger samples.
	if !(res.Rows[3].MeanAge < res.Rows[1].MeanAge) {
		t.Fatalf("mean age not decreasing in k/D: %+v", res.Rows)
	}
	if !strings.Contains(res.Render(), "E6") {
		t.Fatal("render incomplete")
	}
}

func TestE7BinnedConstantFullLinear(t *testing.T) {
	res, err := E7KDECost([]int{200, 2000, 20000}, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	// f̂ cost grows ~linearly with N.
	if res.Rows[2].FullNs < 10*res.Rows[0].FullNs {
		t.Fatalf("f̂ cost not linear in N: %+v", res.Rows)
	}
	// f̆ cost does not grow with N (allow 3x noise).
	if res.Rows[2].BinnedNs > 3*res.Rows[0].BinnedNs+100 {
		t.Fatalf("f̆ cost grew with N: %+v", res.Rows)
	}
	// At N=20000 the speedup is large.
	if res.Rows[2].Speedup < 20 {
		t.Fatalf("speedup at N=20000 only %vx", res.Rows[2].Speedup)
	}
	if !strings.Contains(res.Render(), "E7") {
		t.Fatal("render incomplete")
	}
}

func TestE8MatchesFisherTheory(t *testing.T) {
	res, err := E8Fisher(60, 140, 40, 400, []float64{1, 2, 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if d := row.EmpiricalMean - row.TheoryMean; d > 1.0 || d < -1.0 {
			t.Fatalf("omega=%v: empirical mean %v vs theory %v", row.Omega, row.EmpiricalMean, row.TheoryMean)
		}
	}
	// Mean increases with omega.
	if !(res.Rows[2].EmpiricalMean > res.Rows[0].EmpiricalMean+5) {
		t.Fatalf("omega effect missing: %+v", res.Rows)
	}
	if !strings.Contains(res.Render(), "E8") {
		t.Fatal("render incomplete")
	}
}
