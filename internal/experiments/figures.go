// Package experiments regenerates every evaluation artifact of the
// SciBORQ paper — Figure 4 and Figure 7 — and quantifies the paper's
// qualitative claims as experiments E1–E8 (see DESIGN.md for the
// experiment index). cmd/figures and cmd/experiments print the results;
// the root bench suite measures their cost.
package experiments

import (
	"fmt"
	"strings"

	"sciborq/internal/impression"
	"sciborq/internal/kde"
	"sciborq/internal/skyserver"
	"sciborq/internal/stats"
	"sciborq/internal/workload"
	"sciborq/internal/xrand"
)

// Curve is a named series sampled on a shared x grid.
type Curve struct {
	Name string
	Ys   []float64
}

// Figure4Attr holds the Figure-4 panels for one attribute: the
// predicate-set histogram and the four density curves (f̂ with a chosen
// bandwidth, oversmoothed, undersmoothed, and the paper's binned f̆).
type Figure4Attr struct {
	Attr      string
	Hist      *stats.Histogram
	Grid      []float64
	Curves    []Curve // fhat, oversmoothed, undersmoothed, fbreve
	L1        float64 // ∫|f̂ − f̆| — the "almost identical" claim
	MaxAbsDev float64
	Bandwidth float64 // the carefully chosen h for f̂
}

// Figure4Result bundles both attributes (ra, dec) as in the paper.
type Figure4Result struct {
	Queries int
	Attrs   []Figure4Attr
}

// Figure4 regenerates Figure 4: log `queries` cone queries around the
// paper-like focal points, build the Figure-5 histograms per attribute,
// and evaluate f̂ (reference, oversmoothed, undersmoothed) and f̆.
func Figure4(queries, beta int, seed uint64) (*Figure4Result, error) {
	logger, err := workload.NewLogger([]workload.AttrSpec{
		{Name: "ra", Min: 120, Max: 240, Beta: beta},
		{Name: "dec", Min: 0, Max: 60, Beta: beta},
	}, true)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(workload.Figure4Focals(), xrand.New(seed))
	if err != nil {
		return nil, err
	}
	for _, c := range gen.NextN(queries) {
		logger.LogQuery(c)
	}
	res := &Figure4Result{Queries: queries}
	for _, attr := range []string{"ra", "dec"} {
		fa, err := figure4Attr(logger, attr)
		if err != nil {
			return nil, err
		}
		res.Attrs = append(res.Attrs, fa)
	}
	return res, nil
}

func figure4Attr(logger *workload.Logger, attr string) (Figure4Attr, error) {
	hist, err := logger.Histogram(attr)
	if err != nil {
		return Figure4Attr{}, err
	}
	raw := logger.RawValues(attr)
	h, err := kde.SilvermanBandwidth(raw)
	if err != nil {
		return Figure4Attr{}, err
	}
	fhat, err := kde.NewFull(raw, h, kde.Gaussian{})
	if err != nil {
		return Figure4Attr{}, err
	}
	over, err := kde.NewFull(raw, h*kde.OversmoothFactor, kde.Gaussian{})
	if err != nil {
		return Figure4Attr{}, err
	}
	under, err := kde.NewFull(raw, h*kde.UndersmoothFactor, kde.Gaussian{})
	if err != nil {
		return Figure4Attr{}, err
	}
	fbreve, err := kde.NewBinned(hist, kde.Gaussian{})
	if err != nil {
		return Figure4Attr{}, err
	}
	// Fidelity reference: the paper's claim is that f̆ (whose bandwidth
	// is always the bin width w) matches f̂ evaluated at that same
	// bandwidth; the Silverman curve remains in the plot as the
	// "carefully chosen" reference.
	fhatW, err := kde.NewFull(raw, hist.Width, kde.Gaussian{})
	if err != nil {
		return Figure4Attr{}, err
	}
	const points = 121
	lo, hi := hist.Min, hist.Max()
	grid := make([]float64, points)
	step := (hi - lo) / float64(points-1)
	for i := range grid {
		grid[i] = lo + float64(i)*step
	}
	eval := func(f func(float64) float64) []float64 {
		ys := make([]float64, len(grid))
		for i, x := range grid {
			ys[i] = f(x)
		}
		return ys
	}
	return Figure4Attr{
		Attr: attr,
		Hist: hist,
		Grid: grid,
		Curves: []Curve{
			{Name: "fhat", Ys: eval(fhat.Eval)},
			{Name: "oversmoothed", Ys: eval(over.Eval)},
			{Name: "undersmoothed", Ys: eval(under.Eval)},
			{Name: "fbreve", Ys: eval(fbreve.Eval)},
		},
		L1:        kde.L1Distance(fhatW.Eval, fbreve.Eval, lo, hi, 1000),
		MaxAbsDev: kde.MaxAbsDiff(fhatW.Eval, fbreve.Eval, lo, hi, 500),
		Bandwidth: h,
	}, nil
}

// Render prints the figure as aligned data rows (one per grid point).
func (r *Figure4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — predicate-set histograms and density estimates (%d queries)\n", r.Queries)
	for _, fa := range r.Attrs {
		fmt.Fprintf(&b, "\n[%s] bandwidth(Silverman)=%.3f  L1(f̂,f̆)=%.4f  max|f̂−f̆|=%.5f\n",
			fa.Attr, fa.Bandwidth, fa.L1, fa.MaxAbsDev)
		fmt.Fprintf(&b, "%10s %8s %10s %10s %10s %10s\n",
			fa.Attr, "count", "fhat", "oversm", "undersm", "fbreve")
		for i, x := range fa.Grid {
			if i%4 != 0 { // print every 4th grid point for readability
				continue
			}
			count := int64(0)
			if x >= fa.Hist.Min && x < fa.Hist.Max() {
				count = fa.Hist.Bins[fa.Hist.BinIndex(x)].Count
			}
			fmt.Fprintf(&b, "%10.2f %8d %10.5f %10.5f %10.5f %10.5f\n",
				x, count, fa.Curves[0].Ys[i], fa.Curves[1].Ys[i], fa.Curves[2].Ys[i], fa.Curves[3].Ys[i])
		}
	}
	return b.String()
}

// Figure7Attr holds one attribute's three histograms of Figure 7.
type Figure7Attr struct {
	Attr    string
	Base    *stats.Histogram
	Uniform *stats.Histogram
	Biased  *stats.Histogram
	// FocalMassBase/Uniform/Biased are the fraction of tuples within
	// the focal windows; biased must exceed uniform ≈ base.
	FocalMassBase    float64
	FocalMassUniform float64
	FocalMassBiased  float64
}

// Figure7Result bundles both attributes.
type Figure7Result struct {
	BaseRows   int
	SampleSize int
	Attrs      []Figure7Attr
}

// focalWindows gives the interest windows per attribute implied by
// workload.Figure4Focals (±2σ around each focal point).
func focalWindows(attr string) [][2]float64 {
	if attr == "ra" {
		return [][2]float64{{144, 176}, {200, 220}}
	}
	return [][2]float64{{7, 23}, {35, 55}}
}

// Figure7 regenerates Figure 7: a >600k-tuple synthetic PhotoObjAll, a
// 400-query workload defining the interest (same focal mix as Figure 4),
// and two n-tuple impressions — uniform and biased — whose per-attribute
// histograms are returned next to the base data's.
func Figure7(baseRows, sampleSize, beta int, seed uint64) (*Figure7Result, error) {
	cfg := skyserver.DefaultConfig(baseRows)
	cfg.Seed = seed
	db, err := skyserver.Generate(cfg)
	if err != nil {
		return nil, err
	}
	logger, err := workload.NewLogger([]workload.AttrSpec{
		{Name: "ra", Min: 120, Max: 240, Beta: beta},
		{Name: "dec", Min: 0, Max: 60, Beta: beta},
	}, false)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(workload.Figure4Focals(), xrand.New(seed+1))
	if err != nil {
		return nil, err
	}
	for _, c := range gen.NextN(400) {
		logger.LogQuery(c)
	}
	uni, err := impression.New(db.PhotoObjAll, impression.Config{
		Name: "uniform", Size: sampleSize, Policy: impression.Uniform, Seed: seed + 2,
	})
	if err != nil {
		return nil, err
	}
	bia, err := impression.New(db.PhotoObjAll, impression.Config{
		Name: "biased", Size: sampleSize, Policy: impression.Biased,
		Logger: logger, Attrs: []string{"ra", "dec"}, Seed: seed + 3,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < db.PhotoObjAll.Len(); i++ {
		uni.Offer(int32(i))
		bia.Offer(int32(i))
	}
	res := &Figure7Result{BaseRows: baseRows, SampleSize: sampleSize}
	for _, attr := range []string{"ra", "dec"} {
		fa, err := figure7Attr(db, uni, bia, attr, beta)
		if err != nil {
			return nil, err
		}
		res.Attrs = append(res.Attrs, fa)
	}
	return res, nil
}

func figure7Attr(db *skyserver.Database, uni, bia *impression.Impression, attr string, beta int) (Figure7Attr, error) {
	min, max := 120.0, 240.0
	if attr == "dec" {
		min, max = 0, 60
	}
	mk := func() *stats.Histogram { return stats.MustNewHistogram(min, max, beta) }
	baseH, uniH, biaH := mk(), mk(), mk()
	baseVals, err := db.PhotoObjAll.Float64(attr)
	if err != nil {
		return Figure7Attr{}, err
	}
	baseH.ObserveAll(baseVals)
	ut, _, err := uni.Table()
	if err != nil {
		return Figure7Attr{}, err
	}
	uVals, err := ut.Float64(attr)
	if err != nil {
		return Figure7Attr{}, err
	}
	uniH.ObserveAll(uVals)
	bt, _, err := bia.Table()
	if err != nil {
		return Figure7Attr{}, err
	}
	bVals, err := bt.Float64(attr)
	if err != nil {
		return Figure7Attr{}, err
	}
	biaH.ObserveAll(bVals)
	mass := func(vals []float64) float64 {
		if len(vals) == 0 {
			return 0
		}
		in := 0
		for _, v := range vals {
			for _, w := range focalWindows(attr) {
				if v >= w[0] && v < w[1] {
					in++
					break
				}
			}
		}
		return float64(in) / float64(len(vals))
	}
	return Figure7Attr{
		Attr: attr, Base: baseH, Uniform: uniH, Biased: biaH,
		FocalMassBase:    mass(baseVals),
		FocalMassUniform: mass(uVals),
		FocalMassBiased:  mass(bVals),
	}, nil
}

// Render prints the three histograms side by side, one row per bin.
func (r *Figure7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — base data vs uniform vs biased impression (%d base rows, n=%d)\n",
		r.BaseRows, r.SampleSize)
	for _, fa := range r.Attrs {
		fmt.Fprintf(&b, "\n[%s] focal mass: base=%.3f uniform=%.3f biased=%.3f\n",
			fa.Attr, fa.FocalMassBase, fa.FocalMassUniform, fa.FocalMassBiased)
		fmt.Fprintf(&b, "%10s %12s %10s %10s\n", fa.Attr, "base", "uniform", "biased")
		for i := range fa.Base.Bins {
			fmt.Fprintf(&b, "%10.2f %12d %10d %10d\n",
				fa.Base.BinLow(i), fa.Base.Bins[i].Count,
				fa.Uniform.Bins[i].Count, fa.Biased.Bins[i].Count)
		}
	}
	return b.String()
}
