package hashtab

import (
	"testing"
)

// TestInt64TableDenseIDs checks slots are assigned densely in
// first-seen order and stay stable across lookups.
func TestInt64TableDenseIDs(t *testing.T) {
	tab := NewInt64Table(0)
	keys := []int64{42, -7, 0, 42, 1 << 60, -7, 42}
	wantSlots := []uint32{0, 1, 2, 0, 3, 1, 0}
	wantFresh := []bool{true, true, true, false, true, false, false}
	for i, k := range keys {
		slot, fresh := tab.GetOrInsert(k)
		if slot != wantSlots[i] || fresh != wantFresh[i] {
			t.Fatalf("GetOrInsert(%d) = (%d, %t), want (%d, %t)",
				k, slot, fresh, wantSlots[i], wantFresh[i])
		}
	}
	if tab.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", tab.Len())
	}
	wantKeys := []int64{42, -7, 0, 1 << 60}
	for slot, k := range wantKeys {
		if got := tab.Key(uint32(slot)); got != k {
			t.Fatalf("Key(%d) = %d, want %d", slot, got, k)
		}
		got, ok := tab.Get(k)
		if !ok || got != uint32(slot) {
			t.Fatalf("Get(%d) = (%d, %t), want (%d, true)", k, got, ok, slot)
		}
	}
	if _, ok := tab.Get(99); ok {
		t.Fatal("Get(99) found a key never inserted")
	}
	if tab.Contains(99) || !tab.Contains(-7) {
		t.Fatal("Contains disagrees with Get")
	}
}

// TestInt64TableGrowth inserts far past the initial bucket count and
// checks every dense id survives the rehashes.
func TestInt64TableGrowth(t *testing.T) {
	tab := NewInt64Table(0)
	const n = 10_000
	for i := 0; i < n; i++ {
		k := int64(i)*2654435761 - 5000 // spread, includes negatives
		slot, fresh := tab.GetOrInsert(k)
		if !fresh || slot != uint32(i) {
			t.Fatalf("insert %d: slot=%d fresh=%t, want slot=%d fresh=true", i, slot, fresh, i)
		}
	}
	if tab.Len() != n {
		t.Fatalf("Len() = %d, want %d", tab.Len(), n)
	}
	for i := 0; i < n; i++ {
		k := int64(i)*2654435761 - 5000
		slot, ok := tab.Get(k)
		if !ok || slot != uint32(i) {
			t.Fatalf("Get after growth: key %d -> (%d, %t), want (%d, true)", k, slot, ok, i)
		}
	}
	keys := tab.Keys()
	if len(keys) != n || keys[0] != -5000 {
		t.Fatalf("Keys() corrupted after growth: len=%d keys[0]=%d", len(keys), keys[0])
	}
}

// TestInt64TableCollisions forces long linear-probe chains: keys chosen
// to collide still resolve to distinct slots.
func TestInt64TableCollisions(t *testing.T) {
	tab := NewInt64Table(8)
	// Same low bits after masking happens post-hash, so emulate worst
	// case with a dense cluster plus sparse outliers.
	var keys []int64
	for i := 0; i < 200; i++ {
		keys = append(keys, int64(i), int64(i)<<32, int64(i)<<48)
	}
	seen := make(map[uint32]int64)
	distinct := make(map[int64]bool)
	for _, k := range keys {
		slot, _ := tab.GetOrInsert(k)
		if prev, dup := seen[slot]; dup && prev != k {
			t.Fatalf("slot %d assigned to both %d and %d", slot, prev, k)
		}
		seen[slot] = k
		distinct[k] = true
	}
	if tab.Len() != len(distinct) {
		t.Fatalf("Len() = %d, want %d distinct keys", tab.Len(), len(distinct))
	}
}

// TestInt64TableReset checks Reset empties the table but keeps it
// usable, and that the pool round-trips tables clean.
func TestInt64TableReset(t *testing.T) {
	tab := NewInt64Table(0)
	for i := 0; i < 1000; i++ {
		tab.GetOrInsert(int64(i))
	}
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatalf("Len() after Reset = %d, want 0", tab.Len())
	}
	if _, ok := tab.Get(5); ok {
		t.Fatal("Get found a key after Reset")
	}
	slot, fresh := tab.GetOrInsert(777)
	if slot != 0 || !fresh {
		t.Fatalf("first insert after Reset = (%d, %t), want (0, true)", slot, fresh)
	}

	pooled := GetTable()
	pooled.GetOrInsert(1)
	pooled.GetOrInsert(2)
	PutTable(pooled)
	again := GetTable()
	if again.Len() != 0 {
		t.Fatalf("pooled table not reset: Len() = %d", again.Len())
	}
	PutTable(again)
}

// TestInt64IndexChains checks duplicate chains iterate build rows in
// ascending order and absent keys return -1.
func TestInt64IndexChains(t *testing.T) {
	keys := []int64{7, 3, 7, 7, 3, 11}
	ix := BuildInt64Index(keys)
	if ix.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", ix.Len())
	}
	chain := func(k int64) []int32 {
		var rows []int32
		for r := ix.First(k); r >= 0; r = ix.Next(r) {
			rows = append(rows, r)
		}
		return rows
	}
	checks := []struct {
		key  int64
		want []int32
	}{
		{7, []int32{0, 2, 3}},
		{3, []int32{1, 4}},
		{11, []int32{5}},
		{99, nil},
	}
	for _, c := range checks {
		got := chain(c.key)
		if len(got) != len(c.want) {
			t.Fatalf("chain(%d) = %v, want %v", c.key, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("chain(%d) = %v, want %v", c.key, got, c.want)
			}
		}
	}
	if ix.Contains(99) || !ix.Contains(11) {
		t.Fatal("Contains disagrees with chains")
	}
}

// TestInt64IndexEmpty checks the empty build side degrades gracefully.
func TestInt64IndexEmpty(t *testing.T) {
	ix := BuildInt64Index(nil)
	if ix.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", ix.Len())
	}
	if r := ix.First(1); r != -1 {
		t.Fatalf("First on empty index = %d, want -1", r)
	}
	if ix.Contains(0) {
		t.Fatal("Contains(0) on empty index")
	}
}

// TestInt64TableAgainstMap cross-checks a large random workload against
// a Go map reference.
func TestInt64TableAgainstMap(t *testing.T) {
	tab := NewInt64Table(0)
	ref := make(map[int64]uint32)
	state := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 200_000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		k := int64(state % 30_000) // heavy duplication
		slot, fresh := tab.GetOrInsert(k)
		want, seen := ref[k]
		if fresh != !seen {
			t.Fatalf("key %d: fresh=%t but map seen=%t", k, fresh, seen)
		}
		if seen && slot != want {
			t.Fatalf("key %d: slot %d, want stable %d", k, slot, want)
		}
		if !seen {
			ref[k] = slot
		}
	}
	if tab.Len() != len(ref) {
		t.Fatalf("Len() = %d, want %d", tab.Len(), len(ref))
	}
}
