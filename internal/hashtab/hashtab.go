// Package hashtab provides the cache-conscious hash infrastructure
// underneath every hash-keyed operator in the engine: a flat
// open-addressing table mapping int64 keys to dense slot ids, a join
// index that stores duplicate-key chains in a next-pointer arena, and a
// pool that recycles per-morsel tables across scans.
//
// The design replaces Go's map[K]V on the hot paths. A Go map pays a
// pointer-chasing bucket walk, per-key tophash bookkeeping, and — for
// the engine's previous map[string][]stats.Moments grouping — a string
// key materialisation plus a slice header per key. The flat table here
// is two arrays: a power-of-two index of dense slot ids probed linearly
// (one cache line covers 16 probes) and a densely appended key array in
// first-seen order. Dense ids are the point: group-by partials index a
// flat []stats.Moments by slot, and join chains index arrays by build
// row, so the per-row inner loop touches no pointers at all.
package hashtab

import "sync"

// minBuckets is the smallest index size; small enough that a pooled
// table reset stays cheap, large enough to avoid immediate growth.
const minBuckets = 16

// maxLoadNum/maxLoadDen cap the bucket load factor at 1/2. Linear
// probing is miss-sensitive — a failed lookup walks to the first empty
// bucket, and FK-join probes are mostly misses on selective dimensions
// — and at load 0.5 the expected miss chain is ~1.5 entries (vs ~5 at
// 0.75). Buckets are 16 bytes, so even at half load the table spends
// ~32 bytes per key, still well under a Go map's per-entry footprint.
const (
	maxLoadNum = 1
	maxLoadDen = 2
)

// entry is one bucket: the key inlined next to its dense slot id, so a
// probe step is a single 16-byte read — no indirection into the dense
// key array on the compare path, and linear probing walks adjacent
// entries within the same or next cache line.
type entry struct {
	key  int64
	slot int32 // dense id; -1 = empty bucket
}

// Int64Table maps int64 keys to dense slot ids 0..Len()-1 in first-seen
// order, via open addressing with linear probing. The zero value is not
// ready for use; call NewInt64Table.
type Int64Table struct {
	buckets []entry // power-of-two bucket array
	keys    []int64 // dense key array: keys[slot], insertion order
	mask    uint64  // len(buckets) - 1
	max     int     // grow when Len() reaches this
}

// NewInt64Table returns a table pre-sized for hint distinct keys
// (hint <= 0 means "unknown, start small").
func NewInt64Table(hint int) *Int64Table {
	t := &Int64Table{}
	t.rebucket(bucketsFor(hint))
	return t
}

// bucketsFor returns the power-of-two bucket count whose load cap
// covers hint keys.
func bucketsFor(hint int) int {
	nb := minBuckets
	for nb*maxLoadNum/maxLoadDen < hint {
		nb <<= 1
	}
	return nb
}

// rebucket installs a fresh bucket array of nb slots (nb a power of
// two) and reinserts the dense keys; slot ids are stable across growth.
func (t *Int64Table) rebucket(nb int) {
	if cap(t.buckets) >= nb {
		t.buckets = t.buckets[:nb]
	} else {
		t.buckets = make([]entry, nb)
	}
	for i := range t.buckets {
		t.buckets[i] = entry{slot: -1}
	}
	t.mask = uint64(nb - 1)
	t.max = nb * maxLoadNum / maxLoadDen
	for slot, k := range t.keys {
		h := hash64(uint64(k)) & t.mask
		for t.buckets[h].slot >= 0 {
			h = (h + 1) & t.mask
		}
		t.buckets[h] = entry{key: k, slot: int32(slot)}
	}
}

// hash64 is the splitmix64 finalizer: full-avalanche int64 mixing in
// three multiplies/shifts, so sequential FK values spread across the
// whole bucket array.
func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Len returns the number of distinct keys.
func (t *Int64Table) Len() int { return len(t.keys) }

// Key returns the key stored at a dense slot.
func (t *Int64Table) Key(slot uint32) int64 { return t.keys[slot] }

// Keys returns the dense key array in first-seen order. Shared storage:
// callers must not modify it, and it is invalidated by Reset.
func (t *Int64Table) Keys() []int64 { return t.keys }

// GetOrInsert returns the dense slot for key, inserting it at slot
// Len() if absent; fresh reports whether this call inserted it.
func (t *Int64Table) GetOrInsert(key int64) (slot uint32, fresh bool) {
	if len(t.keys) >= t.max {
		t.rebucket(len(t.buckets) << 1)
	}
	h := hash64(uint64(key)) & t.mask
	for {
		e := t.buckets[h]
		if e.slot < 0 {
			id := int32(len(t.keys))
			t.buckets[h] = entry{key: key, slot: id}
			t.keys = append(t.keys, key)
			return uint32(id), true
		}
		if e.key == key {
			return uint32(e.slot), false
		}
		h = (h + 1) & t.mask
	}
}

// Get returns the dense slot for key, or ok=false if absent.
func (t *Int64Table) Get(key int64) (slot uint32, ok bool) {
	h := hash64(uint64(key)) & t.mask
	for {
		e := t.buckets[h]
		if e.slot < 0 {
			return 0, false
		}
		if e.key == key {
			return uint32(e.slot), true
		}
		h = (h + 1) & t.mask
	}
}

// Contains reports whether key is present.
func (t *Int64Table) Contains(key int64) bool {
	_, ok := t.Get(key)
	return ok
}

// Reset empties the table, keeping both arrays' capacity for reuse.
func (t *Int64Table) Reset() {
	for i := range t.buckets {
		t.buckets[i] = entry{slot: -1}
	}
	t.keys = t.keys[:0]
	t.max = len(t.buckets) * maxLoadNum / maxLoadDen
}

// tablePool recycles per-morsel group tables across scans. sync.Pool's
// per-P caches give each scan worker its own free list, so after the
// first few morsels the group-by path allocates no tables at all.
var tablePool = sync.Pool{New: func() any { return NewInt64Table(0) }}

// GetTable returns a pooled empty table (tables are Reset on Put, so
// Get is allocation- and clear-free in steady state).
func GetTable() *Int64Table { return tablePool.Get().(*Int64Table) }

// PutTable resets t and returns it to the pool. t must not be used by
// the caller afterwards (its Keys() storage is recycled too).
func PutTable(t *Int64Table) {
	t.Reset()
	tablePool.Put(t)
}

// Int64Index is a build-side join index over a key column: every key
// maps to the ascending chain of build rows carrying it. Duplicate
// chains live in a flat next-pointer arena (next[row] is the next build
// row with the same key, -1 at chain end) instead of per-key slices, so
// building is two appends per distinct key and one array write per
// duplicate — no per-key allocation, no rehash-time chain copying.
type Int64Index struct {
	tab  *Int64Table
	head []int32 // per slot: first (lowest) build row with the key
	tail []int32 // per slot: last build row so far (build bookkeeping)
	next []int32 // per build row: next row in its key chain, -1 at end
}

// BuildInt64Index indexes keys (one entry per build-side row).
func BuildInt64Index(keys []int64) *Int64Index {
	ix := &Int64Index{
		tab:  NewInt64Table(len(keys)),
		next: make([]int32, len(keys)),
	}
	if n := len(keys); n > 0 {
		ix.head = make([]int32, 0, n)
		ix.tail = make([]int32, 0, n)
	}
	for i, k := range keys {
		ix.next[i] = -1
		slot, fresh := ix.tab.GetOrInsert(k)
		if fresh {
			ix.head = append(ix.head, int32(i))
			ix.tail = append(ix.tail, int32(i))
			continue
		}
		ix.next[ix.tail[slot]] = int32(i)
		ix.tail[slot] = int32(i)
	}
	return ix
}

// First returns the lowest build row whose key equals key, or -1 if the
// key is absent. Iterate the full chain with Next.
func (ix *Int64Index) First(key int64) int32 {
	slot, ok := ix.tab.Get(key)
	if !ok {
		return -1
	}
	return ix.head[slot]
}

// Next returns the next build row in row's key chain, or -1 at the end.
func (ix *Int64Index) Next(row int32) int32 { return ix.next[row] }

// Contains reports whether any build row carries key.
func (ix *Int64Index) Contains(key int64) bool { return ix.tab.Contains(key) }

// Len returns the number of distinct keys in the index.
func (ix *Int64Index) Len() int { return ix.tab.Len() }
