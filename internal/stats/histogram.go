// Package stats provides the statistical substrate of SciBORQ: the
// equi-width histogram with per-bin count and mean from Figure 5 of the
// paper, streaming moments, normal quantiles, and the confidence-interval
// helpers used by the estimators in package estimate.
package stats

import (
	"fmt"
	"math"
)

// Bin holds the two statistics the paper maintains per histogram bin
// (Figure 5): the count of observed values and their running mean.
type Bin struct {
	Count int64
	Mean  float64
}

// Histogram is the paper's equi-width histogram over a predicate set
// (Figure 5): the attribute domain [Min, Min+Beta*Width) is divided into
// Beta bins; each bin tracks only count and mean — the histogram is never
// materialised as a full value list.
//
// Values below Min clamp into bin 0 and values at or above the upper edge
// clamp into the last bin, so a drifting workload cannot lose mass.
type Histogram struct {
	Min   float64
	Width float64
	Bins  []Bin
	N     int64 // total observed values (the paper's N)
}

// NewHistogram builds a histogram with beta equal-width bins covering
// [min, max). It returns an error for degenerate parameters.
func NewHistogram(min, max float64, beta int) (*Histogram, error) {
	if beta <= 0 {
		return nil, fmt.Errorf("stats: histogram needs beta > 0, got %d", beta)
	}
	if !(max > min) {
		return nil, fmt.Errorf("stats: histogram needs max > min, got [%g, %g)", min, max)
	}
	return &Histogram{
		Min:   min,
		Width: (max - min) / float64(beta),
		Bins:  make([]Bin, beta),
	}, nil
}

// MustNewHistogram is NewHistogram but panics on error.
func MustNewHistogram(min, max float64, beta int) *Histogram {
	h, err := NewHistogram(min, max, beta)
	if err != nil {
		panic(err)
	}
	return h
}

// Beta returns the number of bins.
func (h *Histogram) Beta() int { return len(h.Bins) }

// Max returns the upper edge of the histogram domain.
func (h *Histogram) Max() float64 { return h.Min + h.Width*float64(len(h.Bins)) }

// BinIndex returns the bin for value v, clamped to [0, beta).
func (h *Histogram) BinIndex(v float64) int {
	i := int(math.Floor((v - h.Min) / h.Width))
	if i < 0 {
		return 0
	}
	if i >= len(h.Bins) {
		return len(h.Bins) - 1
	}
	return i
}

// Observe records one value, maintaining the running per-bin count and
// mean exactly as Figure 5 of the paper:
//
//	hs[i].c++;
//	hs[i].m = (hs[i].m*(hs[i].c-1) + v) / hs[i].c;
func (h *Histogram) Observe(v float64) {
	h.N++
	b := &h.Bins[h.BinIndex(v)]
	b.Count++
	b.Mean = (b.Mean*float64(b.Count-1) + v) / float64(b.Count)
}

// ObserveAll records each value in vs.
func (h *Histogram) ObserveAll(vs []float64) {
	for _, v := range vs {
		h.Observe(v)
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Min + (float64(i)+0.5)*h.Width
}

// BinLow returns the lower edge of bin i.
func (h *Histogram) BinLow(i int) float64 {
	return h.Min + float64(i)*h.Width
}

// Counts returns the per-bin counts as a slice.
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.Bins))
	for i, b := range h.Bins {
		out[i] = b.Count
	}
	return out
}

// Density returns the normalised density of bin i: count / (N * width),
// so that the histogram integrates to one.
func (h *Histogram) Density(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Bins[i].Count) / (float64(h.N) * h.Width)
}

// Merge adds the contents of other (same geometry) into h.
func (h *Histogram) Merge(other *Histogram) error {
	if other.Min != h.Min || other.Width != h.Width || len(other.Bins) != len(h.Bins) {
		return fmt.Errorf("stats: merge of incompatible histograms ([%g w=%g beta=%d] vs [%g w=%g beta=%d])",
			h.Min, h.Width, len(h.Bins), other.Min, other.Width, len(other.Bins))
	}
	for i := range h.Bins {
		a, b := h.Bins[i], other.Bins[i]
		n := a.Count + b.Count
		if n > 0 {
			h.Bins[i].Mean = (a.Mean*float64(a.Count) + b.Mean*float64(b.Count)) / float64(n)
		}
		h.Bins[i].Count = n
	}
	h.N += other.N
	return nil
}

// Decay multiplies all bin counts (and N) by factor in [0, 1]; used by
// adaptive impressions to age out stale workload interest so the focal
// point can shift (paper §3.1 "fast reflexes").
func (h *Histogram) Decay(factor float64) {
	if factor < 0 || factor > 1 {
		panic(fmt.Sprintf("stats: decay factor %g out of [0,1]", factor))
	}
	var total int64
	for i := range h.Bins {
		c := int64(math.Floor(float64(h.Bins[i].Count) * factor))
		h.Bins[i].Count = c
		if c == 0 {
			h.Bins[i].Mean = 0
		}
		total += c
	}
	h.N = total
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	out := &Histogram{Min: h.Min, Width: h.Width, N: h.N, Bins: make([]Bin, len(h.Bins))}
	copy(out.Bins, h.Bins)
	return out
}

// TotalCount returns the sum of bin counts (equals N absent decay rounding).
func (h *Histogram) TotalCount() int64 {
	var t int64
	for _, b := range h.Bins {
		t += b.Count
	}
	return t
}
