package stats

import (
	"math"
	"testing"
	"testing/quick"

	"sciborq/internal/xrand"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("beta=0 accepted")
	}
	if _, err := NewHistogram(10, 10, 5); err == nil {
		t.Fatal("min==max accepted")
	}
	if _, err := NewHistogram(10, 5, 5); err == nil {
		t.Fatal("min>max accepted")
	}
}

func TestHistogramBinIndexAndClamp(t *testing.T) {
	h := MustNewHistogram(0, 10, 5) // width 2
	cases := map[float64]int{
		-5: 0, 0: 0, 1.9: 0, 2: 1, 9.99: 4, 10: 4, 100: 4,
	}
	for v, want := range cases {
		if got := h.BinIndex(v); got != want {
			t.Errorf("BinIndex(%v) = %d, want %d", v, got, want)
		}
	}
}

func TestHistogramObserveFigure5Semantics(t *testing.T) {
	// Bin statistics must be exactly count and running mean per bin.
	h := MustNewHistogram(0, 10, 5)
	for _, v := range []float64{1, 1.5, 3, 9, 9.5, 8.5} {
		h.Observe(v)
	}
	if h.N != 6 {
		t.Fatalf("N = %d", h.N)
	}
	if h.Bins[0].Count != 2 || math.Abs(h.Bins[0].Mean-1.25) > 1e-12 {
		t.Fatalf("bin0 = %+v", h.Bins[0])
	}
	if h.Bins[1].Count != 1 || h.Bins[1].Mean != 3 {
		t.Fatalf("bin1 = %+v", h.Bins[1])
	}
	if h.Bins[4].Count != 3 || math.Abs(h.Bins[4].Mean-9) > 1e-12 {
		t.Fatalf("bin4 = %+v", h.Bins[4])
	}
	if h.TotalCount() != 6 {
		t.Fatalf("TotalCount = %d", h.TotalCount())
	}
}

func TestHistogramBinMeanEqualsTrueMean(t *testing.T) {
	// Property: per-bin running mean equals the true mean of values
	// assigned to that bin.
	f := func(raw []float64) bool {
		h := MustNewHistogram(0, 1, 7)
		sums := make([]float64, 7)
		counts := make([]int64, 7)
		for _, r := range raw {
			v := math.Abs(math.Mod(r, 1))
			if math.IsNaN(v) {
				v = 0
			}
			h.Observe(v)
			i := h.BinIndex(v)
			sums[i] += v
			counts[i]++
		}
		for i := range sums {
			if counts[i] != h.Bins[i].Count {
				return false
			}
			if counts[i] > 0 {
				want := sums[i] / float64(counts[i])
				if math.Abs(want-h.Bins[i].Mean) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	h := MustNewHistogram(0, 100, 20)
	r := xrand.New(1)
	for i := 0; i < 10000; i++ {
		h.Observe(r.Float64() * 100)
	}
	sum := 0.0
	for i := range h.Bins {
		sum += h.Density(i) * h.Width
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("density integral = %v", sum)
	}
	empty := MustNewHistogram(0, 1, 3)
	if empty.Density(0) != 0 {
		t.Fatal("empty histogram density not 0")
	}
}

func TestHistogramGeometry(t *testing.T) {
	h := MustNewHistogram(120, 240, 30)
	if h.Beta() != 30 {
		t.Fatalf("Beta = %d", h.Beta())
	}
	if h.Max() != 240 {
		t.Fatalf("Max = %v", h.Max())
	}
	if h.BinLow(0) != 120 || math.Abs(h.BinCenter(0)-122) > 1e-12 {
		t.Fatalf("bin0 low=%v center=%v", h.BinLow(0), h.BinCenter(0))
	}
}

func TestHistogramMerge(t *testing.T) {
	a := MustNewHistogram(0, 10, 2)
	b := MustNewHistogram(0, 10, 2)
	a.ObserveAll([]float64{1, 2})    // bin0 mean 1.5
	b.ObserveAll([]float64{3, 7, 9}) // bin0: 3; bin1: 8
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N != 5 {
		t.Fatalf("merged N = %d", a.N)
	}
	if a.Bins[0].Count != 3 || math.Abs(a.Bins[0].Mean-2) > 1e-12 {
		t.Fatalf("merged bin0 = %+v", a.Bins[0])
	}
	if a.Bins[1].Count != 2 || a.Bins[1].Mean != 8 {
		t.Fatalf("merged bin1 = %+v", a.Bins[1])
	}
	c := MustNewHistogram(0, 20, 2)
	if err := a.Merge(c); err == nil {
		t.Fatal("incompatible merge accepted")
	}
}

func TestHistogramDecay(t *testing.T) {
	h := MustNewHistogram(0, 10, 2)
	for i := 0; i < 100; i++ {
		h.Observe(1)
	}
	h.Decay(0.5)
	if h.Bins[0].Count != 50 || h.N != 50 {
		t.Fatalf("decayed count=%d N=%d", h.Bins[0].Count, h.N)
	}
	h.Decay(0)
	if h.N != 0 || h.Bins[0].Mean != 0 {
		t.Fatal("full decay did not clear")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("decay factor > 1 did not panic")
		}
	}()
	h.Decay(1.5)
}

func TestHistogramClone(t *testing.T) {
	h := MustNewHistogram(0, 10, 2)
	h.Observe(1)
	c := h.Clone()
	c.Observe(9)
	if h.N != 1 || c.N != 2 {
		t.Fatal("clone shares state")
	}
}

func TestMomentsAgainstClosedForm(t *testing.T) {
	var m Moments
	vs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m.ObserveAll(vs)
	if m.N() != 8 || m.Mean() != 5 {
		t.Fatalf("n=%d mean=%v", m.N(), m.Mean())
	}
	// Unbiased variance of this classic dataset is 32/7.
	if math.Abs(m.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %v", m.Variance())
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Fatalf("min=%v max=%v", m.Min(), m.Max())
	}
}

func TestMomentsEmptyAndSingle(t *testing.T) {
	var m Moments
	if m.Variance() != 0 || m.StdDev() != 0 {
		t.Fatal("empty variance not 0")
	}
	m.Observe(3)
	if m.Variance() != 0 || m.Mean() != 3 {
		t.Fatal("single-value moments wrong")
	}
}

func TestMomentsMergeEqualsSequential(t *testing.T) {
	f := func(raw1, raw2 []float64) bool {
		clean := func(raw []float64) []float64 {
			out := make([]float64, 0, len(raw))
			for _, v := range raw {
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					out = append(out, math.Mod(v, 1e6))
				}
			}
			return out
		}
		a, b := clean(raw1), clean(raw2)
		var seq, m1, m2 Moments
		seq.ObserveAll(a)
		seq.ObserveAll(b)
		m1.ObserveAll(a)
		m2.ObserveAll(b)
		m1.Merge(m2)
		if seq.N() != m1.N() {
			return false
		}
		if seq.N() == 0 {
			return true
		}
		tol := 1e-7 * (1 + math.Abs(seq.Mean()))
		return math.Abs(seq.Mean()-m1.Mean()) < tol &&
			math.Abs(seq.Variance()-m1.Variance()) < 1e-6*(1+seq.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNormPDF(t *testing.T) {
	if math.Abs(NormPDF(0)-0.3989422804014327) > 1e-15 {
		t.Fatalf("phi(0) = %v", NormPDF(0))
	}
	if NormPDF(3) >= NormPDF(0) {
		t.Fatal("pdf not decreasing away from 0")
	}
	if math.Abs(NormPDF(1.5)-NormPDF(-1.5)) > 1e-15 {
		t.Fatal("pdf not symmetric")
	}
}

func TestNormCDFKnownValues(t *testing.T) {
	cases := map[float64]float64{
		0:      0.5,
		1.96:   0.9750021,
		-1.96:  0.0249979,
		2.5758: 0.995,
	}
	for x, want := range cases {
		if got := NormCDF(x); math.Abs(got-want) > 1e-4 {
			t.Errorf("Phi(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999} {
		x := NormQuantile(p)
		if got := NormCDF(x); math.Abs(got-p) > 1e-8 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormQuantile(%v) did not panic", p)
				}
			}()
			NormQuantile(p)
		}()
	}
}

func TestZForConfidence(t *testing.T) {
	if z := ZForConfidence(0.95); math.Abs(z-1.959964) > 1e-5 {
		t.Fatalf("z95 = %v", z)
	}
	if z := ZForConfidence(0.99); math.Abs(z-2.575829) > 1e-5 {
		t.Fatalf("z99 = %v", z)
	}
}

func TestInterval(t *testing.T) {
	iv := Interval{Estimate: 10, HalfWidth: 2, Level: 0.95}
	if iv.Lo() != 8 || iv.Hi() != 12 {
		t.Fatalf("bounds %v %v", iv.Lo(), iv.Hi())
	}
	if !iv.Contains(9) || iv.Contains(13) {
		t.Fatal("Contains wrong")
	}
	if iv.RelativeError() != 0.2 {
		t.Fatalf("rel err = %v", iv.RelativeError())
	}
	z := Interval{Estimate: 0, HalfWidth: 1}
	if !math.IsInf(z.RelativeError(), 1) {
		t.Fatal("zero estimate should give +Inf relative error")
	}
	zz := Interval{}
	if zz.RelativeError() != 0 {
		t.Fatal("zero/zero relative error should be 0")
	}
	s := iv.Scale(5)
	if s.Estimate != 50 || s.HalfWidth != 10 {
		t.Fatalf("scaled = %+v", s)
	}
	sn := iv.Scale(-5)
	if sn.Estimate != -50 || sn.HalfWidth != 10 {
		t.Fatalf("negative scale = %+v", sn)
	}
}

func TestFPC(t *testing.T) {
	if FPC(10, 0) != 1 || FPC(10, 1) != 1 {
		t.Fatal("degenerate N should give 1")
	}
	if FPC(100, 100) != 0 {
		t.Fatal("census should give 0")
	}
	got := FPC(50, 100)
	want := math.Sqrt(50.0 / 99.0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("FPC = %v, want %v", got, want)
	}
}

func TestMeanIntervalCoverage(t *testing.T) {
	// Empirical coverage of the 95% CLT interval over repeated samples
	// must be near nominal.
	r := xrand.New(99)
	const N = 20000
	pop := make([]float64, N)
	var popMean float64
	for i := range pop {
		pop[i] = r.NormFloat64()*3 + 10
		popMean += pop[i]
	}
	popMean /= N
	const trials, n = 400, 500
	covered := 0
	for tr := 0; tr < trials; tr++ {
		var m Moments
		for i := 0; i < n; i++ {
			m.Observe(pop[r.Intn(N)])
		}
		iv := MeanInterval(m.Mean(), m.StdDev(), n, N, 0.95)
		if iv.Contains(popMean) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.90 || rate > 0.99 {
		t.Fatalf("95%% interval covered %.3f of trials", rate)
	}
}

func TestMeanIntervalDegenerate(t *testing.T) {
	iv := MeanInterval(5, 1, 0, 100, 0.95)
	if !math.IsInf(iv.HalfWidth, 1) {
		t.Fatal("n=0 interval should be infinite")
	}
}

func TestProportionInterval(t *testing.T) {
	iv := ProportionInterval(25, 100, 0, 0.95)
	if math.Abs(iv.Estimate-0.25) > 1e-12 {
		t.Fatalf("p̂ = %v", iv.Estimate)
	}
	se := math.Sqrt(0.25 * 0.75 / 100)
	if math.Abs(iv.HalfWidth-1.959964*se) > 1e-4 {
		t.Fatalf("half width = %v", iv.HalfWidth)
	}
	inf := ProportionInterval(0, 0, 0, 0.95)
	if !math.IsInf(inf.HalfWidth, 1) {
		t.Fatal("n=0 proportion interval should be infinite")
	}
	count := iv.Scale(1000)
	if count.Estimate != 250 {
		t.Fatalf("count estimate = %v", count.Estimate)
	}
}
