package stats

import (
	"fmt"
	"math"
)

// Bin2D holds the Figure-5 statistics for one two-dimensional bin: the
// count and the running mean of each coordinate.
type Bin2D struct {
	Count int64
	MeanX float64
	MeanY float64
}

// Histogram2D is the multi-dimensional extension the paper names as
// future work (§6 and footnote 3): an equi-width grid over two
// attributes maintaining only per-cell count and mean, so that the
// binned KDE can capture the *joint* distribution of interest — two
// focal points at (ra₁, dec₁) and (ra₂, dec₂) are distinguishable from
// their cross-products, which independent per-attribute histograms
// cannot tell apart.
type Histogram2D struct {
	MinX, MinY     float64
	WidthX, WidthY float64
	BinsX, BinsY   int
	Cells          []Bin2D // row-major: cell(ix, iy) = Cells[iy*BinsX+ix]
	N              int64
}

// NewHistogram2D builds a grid of binsX × binsY equal-width cells over
// [minX, maxX) × [minY, maxY).
func NewHistogram2D(minX, maxX float64, binsX int, minY, maxY float64, binsY int) (*Histogram2D, error) {
	if binsX <= 0 || binsY <= 0 {
		return nil, fmt.Errorf("stats: 2D histogram needs positive bin counts, got %d×%d", binsX, binsY)
	}
	if !(maxX > minX) || !(maxY > minY) {
		return nil, fmt.Errorf("stats: 2D histogram needs non-empty ranges")
	}
	return &Histogram2D{
		MinX: minX, MinY: minY,
		WidthX: (maxX - minX) / float64(binsX),
		WidthY: (maxY - minY) / float64(binsY),
		BinsX:  binsX, BinsY: binsY,
		Cells: make([]Bin2D, binsX*binsY),
	}, nil
}

// MustNewHistogram2D is NewHistogram2D but panics on error.
func MustNewHistogram2D(minX, maxX float64, binsX int, minY, maxY float64, binsY int) *Histogram2D {
	h, err := NewHistogram2D(minX, maxX, binsX, minY, maxY, binsY)
	if err != nil {
		panic(err)
	}
	return h
}

// cellIndex returns the clamped cell coordinates for (x, y).
func (h *Histogram2D) cellIndex(x, y float64) (int, int) {
	ix := int(math.Floor((x - h.MinX) / h.WidthX))
	iy := int(math.Floor((y - h.MinY) / h.WidthY))
	if ix < 0 {
		ix = 0
	}
	if ix >= h.BinsX {
		ix = h.BinsX - 1
	}
	if iy < 0 {
		iy = 0
	}
	if iy >= h.BinsY {
		iy = h.BinsY - 1
	}
	return ix, iy
}

// Cell returns the statistics of cell (ix, iy).
func (h *Histogram2D) Cell(ix, iy int) Bin2D { return h.Cells[iy*h.BinsX+ix] }

// Observe records one point, maintaining per-cell count and running
// means exactly as Figure 5 does per dimension.
func (h *Histogram2D) Observe(x, y float64) {
	h.N++
	ix, iy := h.cellIndex(x, y)
	c := &h.Cells[iy*h.BinsX+ix]
	c.Count++
	c.MeanX = (c.MeanX*float64(c.Count-1) + x) / float64(c.Count)
	c.MeanY = (c.MeanY*float64(c.Count-1) + y) / float64(c.Count)
}

// Density returns the normalised joint density of cell (ix, iy).
func (h *Histogram2D) Density(ix, iy int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Cell(ix, iy).Count) / (float64(h.N) * h.WidthX * h.WidthY)
}

// Decay ages all cell counts by factor in [0, 1] (see Histogram.Decay).
func (h *Histogram2D) Decay(factor float64) {
	if factor < 0 || factor > 1 {
		panic(fmt.Sprintf("stats: decay factor %g out of [0,1]", factor))
	}
	var total int64
	for i := range h.Cells {
		c := int64(math.Floor(float64(h.Cells[i].Count) * factor))
		h.Cells[i].Count = c
		if c == 0 {
			h.Cells[i].MeanX, h.Cells[i].MeanY = 0, 0
		}
		total += c
	}
	h.N = total
}

// Clone returns a deep copy.
func (h *Histogram2D) Clone() *Histogram2D {
	out := *h
	out.Cells = make([]Bin2D, len(h.Cells))
	copy(out.Cells, h.Cells)
	return &out
}

// MarginalX collapses the grid onto the X axis as a 1-D histogram.
func (h *Histogram2D) MarginalX() *Histogram {
	out := MustNewHistogram(h.MinX, h.MinX+h.WidthX*float64(h.BinsX), h.BinsX)
	for iy := 0; iy < h.BinsY; iy++ {
		for ix := 0; ix < h.BinsX; ix++ {
			c := h.Cell(ix, iy)
			if c.Count == 0 {
				continue
			}
			b := &out.Bins[ix]
			n := b.Count + c.Count
			b.Mean = (b.Mean*float64(b.Count) + c.MeanX*float64(c.Count)) / float64(n)
			b.Count = n
		}
	}
	out.N = h.N
	return out
}
