package stats

import "math"

// Moments accumulates count, mean and variance in one pass using
// Welford's algorithm; numerically stable for the long streams produced
// by nightly ingests.
type Moments struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe adds one value.
func (m *Moments) Observe(v float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = v, v
	} else {
		if v < m.min {
			m.min = v
		}
		if v > m.max {
			m.max = v
		}
	}
	d := v - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (v - m.mean)
}

// ObserveAll adds each value of vs.
func (m *Moments) ObserveAll(vs []float64) {
	for _, v := range vs {
		m.Observe(v)
	}
}

// N returns the number of observations.
func (m *Moments) N() int64 { return m.n }

// Mean returns the sample mean (0 for empty).
func (m *Moments) Mean() float64 { return m.mean }

// Min returns the smallest observation (0 for empty).
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest observation (0 for empty).
func (m *Moments) Max() float64 { return m.max }

// Variance returns the unbiased sample variance (0 for n < 2).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Merge combines another accumulator into m (Chan et al. parallel update).
func (m *Moments) Merge(o Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	n := m.n + o.n
	d := o.mean - m.mean
	m.m2 += o.m2 + d*d*float64(m.n)*float64(o.n)/float64(n)
	m.mean += d * float64(o.n) / float64(n)
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
	m.n = n
}
