package stats

import (
	"math"
	"testing"

	"sciborq/internal/xrand"
)

func TestNewHistogram2DValidation(t *testing.T) {
	if _, err := NewHistogram2D(0, 1, 0, 0, 1, 5); err == nil {
		t.Fatal("zero binsX accepted")
	}
	if _, err := NewHistogram2D(0, 1, 5, 0, 1, -1); err == nil {
		t.Fatal("negative binsY accepted")
	}
	if _, err := NewHistogram2D(1, 1, 5, 0, 1, 5); err == nil {
		t.Fatal("empty X range accepted")
	}
	if _, err := NewHistogram2D(0, 1, 5, 3, 2, 5); err == nil {
		t.Fatal("inverted Y range accepted")
	}
}

func TestHistogram2DObserveAndCellStats(t *testing.T) {
	h := MustNewHistogram2D(0, 10, 5, 0, 10, 5) // 2×2 cells of width 2
	h.Observe(1, 1)
	h.Observe(1.5, 1.5)
	h.Observe(9, 9)
	if h.N != 3 {
		t.Fatalf("N = %d", h.N)
	}
	c := h.Cell(0, 0)
	if c.Count != 2 || math.Abs(c.MeanX-1.25) > 1e-12 || math.Abs(c.MeanY-1.25) > 1e-12 {
		t.Fatalf("cell(0,0) = %+v", c)
	}
	c = h.Cell(4, 4)
	if c.Count != 1 || c.MeanX != 9 || c.MeanY != 9 {
		t.Fatalf("cell(4,4) = %+v", c)
	}
}

func TestHistogram2DClamping(t *testing.T) {
	h := MustNewHistogram2D(0, 10, 2, 0, 10, 2)
	h.Observe(-100, 100)
	c := h.Cell(0, 1)
	if c.Count != 1 {
		t.Fatalf("out-of-range point not clamped: %+v", h.Cells)
	}
}

func TestHistogram2DDensityIntegratesToOne(t *testing.T) {
	h := MustNewHistogram2D(0, 4, 8, 0, 2, 4)
	r := xrand.New(3)
	for i := 0; i < 20000; i++ {
		h.Observe(r.Float64()*4, r.Float64()*2)
	}
	var sum float64
	for iy := 0; iy < h.BinsY; iy++ {
		for ix := 0; ix < h.BinsX; ix++ {
			sum += h.Density(ix, iy) * h.WidthX * h.WidthY
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("density integral = %v", sum)
	}
	empty := MustNewHistogram2D(0, 1, 2, 0, 1, 2)
	if empty.Density(0, 0) != 0 {
		t.Fatal("empty density not 0")
	}
}

func TestHistogram2DCapturesCorrelation(t *testing.T) {
	// Points only on the diagonal: off-diagonal cells must stay empty —
	// the property the product of marginals destroys.
	h := MustNewHistogram2D(0, 10, 10, 0, 10, 10)
	r := xrand.New(5)
	for i := 0; i < 1000; i++ {
		v := r.Float64() * 10
		h.Observe(v, v)
	}
	if h.Cell(2, 2).Count == 0 || h.Cell(7, 7).Count == 0 {
		t.Fatal("diagonal cells empty")
	}
	if h.Cell(2, 7).Count != 0 || h.Cell(7, 2).Count != 0 {
		t.Fatal("off-diagonal cells populated by diagonal data")
	}
}

func TestHistogram2DDecay(t *testing.T) {
	h := MustNewHistogram2D(0, 10, 2, 0, 10, 2)
	for i := 0; i < 100; i++ {
		h.Observe(1, 1)
	}
	h.Decay(0.5)
	if h.Cell(0, 0).Count != 50 || h.N != 50 {
		t.Fatalf("decayed: count=%d N=%d", h.Cell(0, 0).Count, h.N)
	}
	h.Decay(0)
	if h.N != 0 || h.Cell(0, 0).MeanX != 0 {
		t.Fatal("full decay incomplete")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad decay factor did not panic")
		}
	}()
	h.Decay(2)
}

func TestHistogram2DCloneIsolation(t *testing.T) {
	h := MustNewHistogram2D(0, 10, 2, 0, 10, 2)
	h.Observe(1, 1)
	c := h.Clone()
	c.Observe(9, 9)
	if h.N != 1 || c.N != 2 {
		t.Fatal("clone shares state")
	}
}

func TestHistogram2DMarginalX(t *testing.T) {
	h := MustNewHistogram2D(0, 10, 5, 0, 10, 5)
	h.Observe(1, 1)
	h.Observe(1.5, 9)
	h.Observe(9, 5)
	m := h.MarginalX()
	if m.N != 3 {
		t.Fatalf("marginal N = %d", m.N)
	}
	if m.Bins[0].Count != 2 || math.Abs(m.Bins[0].Mean-1.25) > 1e-12 {
		t.Fatalf("marginal bin0 = %+v", m.Bins[0])
	}
	if m.Bins[4].Count != 1 || m.Bins[4].Mean != 9 {
		t.Fatalf("marginal bin4 = %+v", m.Bins[4])
	}
}
