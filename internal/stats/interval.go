package stats

import "math"

// Interval is a symmetric confidence interval around a point estimate.
type Interval struct {
	Estimate  float64
	HalfWidth float64 // z * standard error
	Level     float64 // confidence level, e.g. 0.95
}

// Lo returns the lower bound.
func (iv Interval) Lo() float64 { return iv.Estimate - iv.HalfWidth }

// Hi returns the upper bound.
func (iv Interval) Hi() float64 { return iv.Estimate + iv.HalfWidth }

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool {
	return v >= iv.Lo() && v <= iv.Hi()
}

// RelativeError returns half-width / |estimate|; +Inf when the estimate
// is zero but the half-width is not, 0 when both are zero. This is the
// quantity the bounded executor compares against the user's ε.
func (iv Interval) RelativeError() float64 {
	if iv.Estimate == 0 {
		if iv.HalfWidth == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return iv.HalfWidth / math.Abs(iv.Estimate)
}

// FPC returns the finite-population correction sqrt((N-n)/(N-1)) applied
// to standard errors when sampling a fraction of a finite base table
// without replacement. It is 1 when N <= 1 or n >= N.
func FPC(n, N int64) float64 {
	if N <= 1 {
		return 1 // unknown or degenerate population: no correction
	}
	if n >= N {
		return 0 // census: no sampling error
	}
	return math.Sqrt(float64(N-n) / float64(N-1))
}

// MeanInterval returns the CLT confidence interval for a population mean
// from a uniform sample: mean ± z * (s/√n) * fpc.
func MeanInterval(mean, stddev float64, n, N int64, level float64) Interval {
	if n <= 0 {
		return Interval{Estimate: mean, HalfWidth: math.Inf(1), Level: level}
	}
	se := stddev / math.Sqrt(float64(n))
	if N > 0 {
		se *= FPC(n, N)
	}
	return Interval{Estimate: mean, HalfWidth: ZForConfidence(level) * se, Level: level}
}

// ProportionInterval returns the CLT interval for a population proportion
// (used for COUNT estimates: count = N * p̂).
func ProportionInterval(k, n, N int64, level float64) Interval {
	if n <= 0 {
		return Interval{HalfWidth: math.Inf(1), Level: level}
	}
	p := float64(k) / float64(n)
	se := math.Sqrt(p * (1 - p) / float64(n))
	if N > 0 {
		se *= FPC(n, N)
	}
	return Interval{Estimate: p, HalfWidth: ZForConfidence(level) * se, Level: level}
}

// Scale multiplies both the estimate and half-width by f (e.g. to turn a
// proportion interval into a count interval).
func (iv Interval) Scale(f float64) Interval {
	return Interval{Estimate: iv.Estimate * f, HalfWidth: iv.HalfWidth * math.Abs(f), Level: iv.Level}
}
