package stats

import "sync"

// MomentsPool recycles the flat []Moments arenas the engine's group-by
// partials aggregate into (one Moments per group × aggregate, indexed
// by dense group id). Mirrors vec.SelPool: sync.Pool per-P caches give
// each scan worker its own free list, so steady-state grouped scans
// allocate no per-morsel moment storage.
type MomentsPool struct {
	p     sync.Pool // *[]Moments boxes holding a reusable buffer
	boxes sync.Pool // spent boxes awaiting the next Put
}

// Get returns a zero-length arena with capacity >= capacity. Callers
// append zero-value Moments as groups appear, so recycled storage never
// leaks stale state.
func (mp *MomentsPool) Get(capacity int) []Moments {
	if v := mp.p.Get(); v != nil {
		b := v.(*[]Moments)
		ms := *b
		*b = nil
		mp.boxes.Put(b)
		if cap(ms) >= capacity {
			return ms[:0]
		}
	}
	return make([]Moments, 0, capacity)
}

// Put returns an arena's backing storage to the pool. ms must not be
// used by the caller afterwards.
func (mp *MomentsPool) Put(ms []Moments) {
	if cap(ms) == 0 {
		return
	}
	var b *[]Moments
	if v := mp.boxes.Get(); v != nil {
		b = v.(*[]Moments)
	} else {
		b = new([]Moments)
	}
	*b = ms[:0]
	mp.p.Put(b)
}

// ScratchMoments is the package-level arena pool the engine draws from.
var ScratchMoments MomentsPool

// GetMoments returns a pooled zero-length arena with at least the given
// capacity.
func GetMoments(capacity int) []Moments { return ScratchMoments.Get(capacity) }

// PutMoments releases an arena obtained from GetMoments. Safe on nil.
func PutMoments(ms []Moments) { ScratchMoments.Put(ms) }
