package expr

import (
	"fmt"

	"sciborq/internal/column"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// Sel-native predicate evaluation. The selection-vector scan evaluates
// each predicate directly over an explicit sorted position vector —
// an impression's sampled row positions into a base snapshot — through
// SelFilterer instead of gathering the sample into a standalone table
// first; together with the scratch pool in package vec this makes
// steady-state impression filtering allocation free.

// SelFilterer is the optional sel-native fast path of Predicate:
// evaluate the predicate over exactly the rows listed in sel.
//
// Contract: sel is sorted ascending and never nil; the result is
// sorted, a subset of sel, and never nil (an empty selection means no
// match). The returned selection is backed by vec's scratch pool: the
// caller owns it until it calls vec.PutSel, and must copy it before
// retaining it beyond that. sel itself is treated as read-only.
type SelFilterer interface {
	FilterSel(t *table.Table, sel vec.Sel) (vec.Sel, error)
}

// FilterSel evaluates pred over the rows of t listed in sel (sorted,
// non-nil), using the predicate's sel fast path when it has one and
// falling back to Predicate.Filter otherwise (user-defined predicate
// types). The pool-ownership contract of SelFilterer applies to the
// result either way.
func FilterSel(t *table.Table, pred Predicate, sel vec.Sel) (vec.Sel, error) {
	if sf, ok := pred.(SelFilterer); ok {
		return sf.FilterSel(t, sel)
	}
	out, err := pred.Filter(t, sel)
	if err != nil {
		return nil, err
	}
	if out == nil { // "all rows" from a sel-path predicate
		return vec.CopyInto(vec.GetSel(len(sel)), sel), nil
	}
	// Rehome the result in pooled scratch so the ownership contract is
	// uniform for callers.
	return vec.CopyInto(vec.GetSel(len(out)), out), nil
}

// FilterSel implements SelFilterer.
func (c Cmp) FilterSel(t *table.Table, sel vec.Sel) (vec.Sel, error) {
	vals, err := scalarVals(t, c.Left)
	if err != nil {
		return nil, err
	}
	return vec.SelectFloat64Sel(vec.GetSel(len(sel)), vals, sel, c.Op, c.Right), nil
}

// FilterSel implements SelFilterer.
func (b Between) FilterSel(t *table.Table, sel vec.Sel) (vec.Sel, error) {
	vals, err := scalarVals(t, b.Expr)
	if err != nil {
		return nil, err
	}
	return vec.SelectBetweenFloat64Sel(vec.GetSel(len(sel)), vals, sel, b.Lo, b.Hi), nil
}

// FilterSel implements SelFilterer.
func (s StrEq) FilterSel(t *table.Table, sel vec.Sel) (vec.Sel, error) {
	col, err := t.Col(s.Col)
	if err != nil {
		return nil, err
	}
	sc, ok := col.(*column.StringCol)
	if !ok {
		return nil, fmt.Errorf("expr: column %q is %s, want VARCHAR", s.Col, col.Type())
	}
	code, present := sc.Code(s.Value)
	if !present {
		if s.Neg {
			return vec.CopyInto(vec.GetSel(len(sel)), sel), nil
		}
		return vec.GetSel(0), nil
	}
	return vec.SelectEqInt32Sel(vec.GetSel(len(sel)), sc.Data, sel, code, !s.Neg), nil
}

// FilterSel implements SelFilterer.
func (c Cone) FilterSel(t *table.Table, sel vec.Sel) (vec.Sel, error) {
	ra, err := t.Float64(c.RaCol)
	if err != nil {
		return nil, err
	}
	dec, err := t.Float64(c.DecCol)
	if err != nil {
		return nil, err
	}
	// Inline loop rather than a closure kernel: a closure over ra/dec
	// would heap-allocate once per morsel.
	out := vec.GetSel(len(sel))
	for _, p := range sel {
		if AngularSeparation(c.Ra0, c.Dec0, ra[p], dec[p]) <= c.Radius {
			out = append(out, p)
		}
	}
	return out, nil
}

// FilterSel implements SelFilterer: evaluate L over sel, then R over
// L's survivors only — on explicit selections the restricted evaluation
// is strictly cheaper, unlike the contiguous-window case where the
// sequential scan wins.
func (a And) FilterSel(t *table.Table, sel vec.Sel) (vec.Sel, error) {
	ls, err := FilterSel(t, a.L, sel)
	if err != nil {
		return nil, err
	}
	if len(ls) == 0 {
		return ls, nil
	}
	rs, err := FilterSel(t, a.R, ls)
	if err != nil {
		vec.PutSel(ls)
		return nil, err
	}
	vec.PutSel(ls)
	return rs, nil
}

// FilterSel implements SelFilterer.
func (o Or) FilterSel(t *table.Table, sel vec.Sel) (vec.Sel, error) {
	ls, err := FilterSel(t, o.L, sel)
	if err != nil {
		return nil, err
	}
	rs, err := FilterSel(t, o.R, sel)
	if err != nil {
		vec.PutSel(ls)
		return nil, err
	}
	out := vec.OrInto(vec.GetSel(len(ls)+len(rs)), ls, rs)
	vec.PutSel(ls)
	vec.PutSel(rs)
	return out, nil
}

// FilterSel implements SelFilterer: the complement of the inner
// selection against sel itself, never the full table.
func (n Not) FilterSel(t *table.Table, sel vec.Sel) (vec.Sel, error) {
	ps, err := FilterSel(t, n.P, sel)
	if err != nil {
		return nil, err
	}
	out := vec.DiffInto(vec.GetSel(len(sel)), sel, ps)
	vec.PutSel(ps)
	return out, nil
}

// FilterSel implements SelFilterer.
func (TruePred) FilterSel(t *table.Table, sel vec.Sel) (vec.Sel, error) {
	return vec.CopyInto(vec.GetSel(len(sel)), sel), nil
}

// EvalScalarSel evaluates s at only the rows listed in sel, returning
// values aligned with sel — the sel-native analogue of Scalar.EvalF64.
// Selection consumers (sample estimators) read a handful of sampled
// rows out of a large base; evaluating the full column first would make
// an Int64 widening or an Arith intermediate cost O(base) per query
// where O(|sel|) suffices. Unknown scalar shapes fall back to a full
// evaluation plus gather.
func EvalScalarSel(t *table.Table, s Scalar, sel vec.Sel) ([]float64, error) {
	switch e := s.(type) {
	case ColRef:
		col, err := t.Col(e.Name)
		if err != nil {
			return nil, err
		}
		out := make([]float64, len(sel))
		switch cc := col.(type) {
		case *column.Float64Col:
			for i, p := range sel {
				out[i] = cc.Data[p]
			}
		case *column.Int64Col:
			for i, p := range sel {
				out[i] = float64(cc.Data[p])
			}
		default:
			return nil, fmt.Errorf("expr: column %q has non-numeric type %s", e.Name, col.Type())
		}
		return out, nil
	case Const:
		out := make([]float64, len(sel))
		for i := range out {
			out[i] = e.V
		}
		return out, nil
	case Materialized:
		out := make([]float64, len(sel))
		for i, p := range sel {
			out[i] = e.Vals[p]
		}
		return out, nil
	case Arith:
		l, err := EvalScalarSel(t, e.L, sel)
		if err != nil {
			return nil, err
		}
		r, err := EvalScalarSel(t, e.R, sel)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case Add:
			for i := range l {
				l[i] += r[i]
			}
		case Sub:
			for i := range l {
				l[i] -= r[i]
			}
		case Mul:
			for i := range l {
				l[i] *= r[i]
			}
		case Div:
			for i := range l {
				l[i] /= r[i] // IEEE semantics: x/0 = ±Inf
			}
		default:
			return nil, fmt.Errorf("expr: unknown arithmetic op %d", e.Op)
		}
		return l, nil
	default:
		vals, err := s.EvalF64(t)
		if err != nil {
			return nil, err
		}
		return vec.GatherFloat64(vals, sel), nil
	}
}
