package expr

import (
	"fmt"
	"math"

	"sciborq/internal/column"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// Range-native predicate evaluation. The morsel executor evaluates each
// predicate directly over its contiguous row window [lo, hi) through
// RangeFilterer instead of materialising a [lo, hi) index vector and
// taking the sel-gather path; together with the scratch pool in package
// vec this makes steady-state filtering allocation free.

// RangeFilterer is the optional fast path of Predicate: evaluate the
// predicate over the contiguous row window [lo, hi) of t.
//
// Contract: the result is sorted, contains only positions in [lo, hi),
// and is never nil (an empty selection means no match — unlike Filter,
// nil does not mean "all rows"). The returned selection is backed by
// vec's scratch pool: the caller owns it until it calls vec.PutSel, and
// must copy it before retaining it beyond that.
type RangeFilterer interface {
	FilterRange(t *table.Table, lo, hi int) (vec.Sel, error)
}

// FilterRange evaluates pred over rows [lo, hi) of t, using the
// predicate's range fast path when it has one and falling back to
// Filter over a materialised index vector otherwise (user-defined
// predicate types). The pool-ownership contract of RangeFilterer
// applies to the result either way.
func FilterRange(t *table.Table, pred Predicate, lo, hi int) (vec.Sel, error) {
	if rf, ok := pred.(RangeFilterer); ok {
		return rf.FilterRange(t, lo, hi)
	}
	sel, err := pred.Filter(t, vec.NewSelRange(lo, hi))
	if err != nil {
		return nil, err
	}
	if sel == nil { // "all rows" from a sel-path predicate
		sel = vec.NewSelRange(lo, hi)
	}
	return sel, nil
}

// scalarVals resolves a scalar to a shared full-column float64 slice
// without copying when possible: raw DOUBLE column references and
// already-materialised expressions. Anything else (Int64 widening,
// Arith, Const) evaluates — the morsel executor avoids hitting this per
// morsel by rewriting such scalars to Materialized up front.
func scalarVals(t *table.Table, s Scalar) ([]float64, error) {
	switch e := s.(type) {
	case ColRef:
		if data, err := t.Float64(e.Name); err == nil {
			return data, nil
		}
	case Materialized:
		return e.Vals, nil
	}
	return s.EvalF64(t)
}

// FilterRange implements RangeFilterer.
func (c Cmp) FilterRange(t *table.Table, lo, hi int) (vec.Sel, error) {
	vals, err := scalarVals(t, c.Left)
	if err != nil {
		return nil, err
	}
	return vec.SelectFloat64Range(vec.GetSel(hi-lo), vals, lo, hi, c.Op, c.Right), nil
}

// FilterRange implements RangeFilterer.
func (b Between) FilterRange(t *table.Table, lo, hi int) (vec.Sel, error) {
	vals, err := scalarVals(t, b.Expr)
	if err != nil {
		return nil, err
	}
	return vec.SelectBetweenFloat64Range(vec.GetSel(hi-lo), vals, lo, hi, b.Lo, b.Hi), nil
}

// FilterRange implements RangeFilterer.
func (s StrEq) FilterRange(t *table.Table, lo, hi int) (vec.Sel, error) {
	col, err := t.Col(s.Col)
	if err != nil {
		return nil, err
	}
	sc, ok := col.(*column.StringCol)
	if !ok {
		return nil, fmt.Errorf("expr: column %q is %s, want VARCHAR", s.Col, col.Type())
	}
	code, present := sc.Code(s.Value)
	if !present {
		if s.Neg {
			return vec.FillSelRange(vec.GetSel(hi-lo), lo, hi), nil
		}
		return vec.GetSel(0), nil
	}
	return vec.SelectEqInt32Range(vec.GetSel(hi-lo), sc.Data, lo, hi, code, !s.Neg), nil
}

// FilterRange implements RangeFilterer.
func (c Cone) FilterRange(t *table.Table, lo, hi int) (vec.Sel, error) {
	ra, err := t.Float64(c.RaCol)
	if err != nil {
		return nil, err
	}
	dec, err := t.Float64(c.DecCol)
	if err != nil {
		return nil, err
	}
	// Inline loop rather than SelectFuncRange: a closure over ra/dec
	// would heap-allocate once per morsel.
	out := vec.GetSel(hi - lo)
	for i := lo; i < hi; i++ {
		if AngularSeparation(c.Ra0, c.Dec0, ra[i], dec[i]) <= c.Radius {
			out = append(out, int32(i))
		}
	}
	return out, nil
}

// FilterRange implements RangeFilterer. Unlike the sel path — which
// evaluates R only on L's survivors — both conjuncts evaluate over the
// whole window with branchless kernels and intersect; for contiguous
// windows the sequential scan beats the gather unless L is extremely
// selective, in which case the len(ls)==0 shortcut skips R entirely.
func (a And) FilterRange(t *table.Table, lo, hi int) (vec.Sel, error) {
	ls, err := FilterRange(t, a.L, lo, hi)
	if err != nil {
		return nil, err
	}
	if len(ls) == 0 {
		return ls, nil
	}
	if len(ls) == hi-lo { // L matched the whole window
		vec.PutSel(ls)
		return FilterRange(t, a.R, lo, hi)
	}
	rs, err := FilterRange(t, a.R, lo, hi)
	if err != nil {
		vec.PutSel(ls)
		return nil, err
	}
	out := vec.AndInto(vec.GetSel(min(len(ls), len(rs))), ls, rs)
	vec.PutSel(ls)
	vec.PutSel(rs)
	return out, nil
}

// FilterRange implements RangeFilterer.
func (o Or) FilterRange(t *table.Table, lo, hi int) (vec.Sel, error) {
	ls, err := FilterRange(t, o.L, lo, hi)
	if err != nil {
		return nil, err
	}
	rs, err := FilterRange(t, o.R, lo, hi)
	if err != nil {
		vec.PutSel(ls)
		return nil, err
	}
	out := vec.OrInto(vec.GetSel(len(ls)+len(rs)), ls, rs)
	vec.PutSel(ls)
	vec.PutSel(rs)
	return out, nil
}

// FilterRange implements RangeFilterer: the complement of the inner
// selection against the window itself, never the full table.
func (n Not) FilterRange(t *table.Table, lo, hi int) (vec.Sel, error) {
	ps, err := FilterRange(t, n.P, lo, hi)
	if err != nil {
		return nil, err
	}
	out := vec.DiffRangeInto(vec.GetSel(hi-lo), lo, hi, ps)
	vec.PutSel(ps)
	return out, nil
}

// FilterRange implements RangeFilterer.
func (TruePred) FilterRange(t *table.Table, lo, hi int) (vec.Sel, error) {
	return vec.FillSelRange(vec.GetSel(hi-lo), lo, hi), nil
}

// --- Zone-map bounds --------------------------------------------------

// Bound is a necessary per-attribute interval: a row can satisfy the
// reporting predicate only if the attribute's value lies in [Lo, Hi]
// (closed; unbounded sides are ±Inf). Bounds are conservative — they
// may admit rows the predicate rejects, never the reverse — which is
// exactly what zone-map pruning needs: a storage granule whose min/max
// interval is disjoint from a bound cannot contain a match.
type Bound struct {
	Attr   string
	Lo, Hi float64
}

// Bounder is the optional Predicate interface reporting necessary
// column bounds (the zone-map analogue of Points). All returned bounds
// hold conjunctively for every matching row.
type Bounder interface {
	Bounds() []Bound
}

// BoundsOf returns pred's necessary column bounds, or nil when the
// predicate shape supports none.
func BoundsOf(p Predicate) []Bound {
	if b, ok := p.(Bounder); ok {
		return b.Bounds()
	}
	return nil
}

// Bounds implements Bounder: the comparison constant bounds the column
// from one side (both for equality). NOT-EQUAL excludes a point, which
// bounds nothing.
func (c Cmp) Bounds() []Bound {
	ref, ok := c.Left.(ColRef)
	if !ok {
		return nil
	}
	switch c.Op {
	case vec.Eq:
		return []Bound{{Attr: ref.Name, Lo: c.Right, Hi: c.Right}}
	case vec.Lt, vec.Le:
		return []Bound{{Attr: ref.Name, Lo: math.Inf(-1), Hi: c.Right}}
	case vec.Gt, vec.Ge:
		return []Bound{{Attr: ref.Name, Lo: c.Right, Hi: math.Inf(1)}}
	}
	return nil
}

// Bounds implements Bounder.
func (b Between) Bounds() []Bound {
	ref, ok := b.Expr.(ColRef)
	if !ok {
		return nil
	}
	return []Bound{{Attr: ref.Name, Lo: b.Lo, Hi: b.Hi}}
}

// Bounds implements Bounder: angular separation <= Radius implies
// |dec - Dec0| <= Radius, so the cone bounds its declination column.
// (Right ascension wraps at 0/360 and shrinks with cos(dec), so it is
// left unbounded.)
func (c Cone) Bounds() []Bound {
	return []Bound{{Attr: c.DecCol, Lo: c.Dec0 - c.Radius, Hi: c.Dec0 + c.Radius}}
}

// Bounds implements Bounder: a conjunction's matches satisfy both
// sides' bounds.
func (a And) Bounds() []Bound {
	return append(BoundsOf(a.L), BoundsOf(a.R)...)
}

// Bounds implements Bounder: a disjunction's matches satisfy L or R, so
// only the interval hull of bounds present on BOTH sides is necessary.
func (o Or) Bounds() []Bound {
	lb, rb := BoundsOf(o.L), BoundsOf(o.R)
	var out []Bound
	for _, l := range lb {
		for _, r := range rb {
			if l.Attr != r.Attr {
				continue
			}
			out = append(out, Bound{
				Attr: l.Attr,
				Lo:   math.Min(l.Lo, r.Lo),
				Hi:   math.Max(l.Hi, r.Hi),
			})
		}
	}
	return out
}
