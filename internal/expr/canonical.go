package expr

import (
	"bytes"
	"encoding/binary"
	"math"
	"sort"

	"sciborq/internal/vec"
)

// Predicate canonicalisation and key encoding for the recycler: two
// predicates that are syntactic permutations of each other ("a AND b"
// vs "b AND a", redundant bounds, nested conjunctions) normalise to one
// form and therefore to one cache key. The key is a compact binary
// encoding built with append-only writes — no fmt on the query hot
// path.
//
// Canonical preserves Filter semantics exactly: conjunction and
// disjunction are set intersection/union over sorted selection vectors,
// so reordering operands never changes the (sorted) result, and
// interval merging only replaces conjuncts by their algebraic
// intersection. NaN never satisfies any merged bound on either side of
// the rewrite (IEEE comparisons with NaN are false, and SQL BETWEEN is
// two such comparisons).

// Canonical returns the normal form of p:
//
//   - And/Or operands are flattened, deduplicated, and sorted by their
//     binary key, so commuted and re-associated predicates normalise to
//     one tree;
//   - conjoined interval bounds on the same column (Cmp Lt/Le/Gt/Ge,
//     Between) merge into their intersection — "x >= 2 AND x <= 5 AND
//     x <= 9" becomes "x BETWEEN 2 AND 5";
//   - TRUE conjuncts drop, TRUE absorbs disjunctions, and double
//     negation cancels.
//
// Canonical is a fixed point (Canonical(Canonical(p)) == Canonical(p))
// and semantics-preserving: Filter over the canonical form returns the
// same selection as over p. Predicates containing shapes this package
// cannot key (user-defined types, Materialized scalars) are returned
// unchanged.
func Canonical(p Predicate) Predicate {
	c, ok := canon(p)
	if !ok {
		return p
	}
	return c
}

// PredKey appends the canonical binary encoding of p to buf, returning
// the extended buffer and whether p is keyable. Callers canonicalise
// first: PredKey encodes the tree it is given. Unknown predicate or
// scalar shapes report ok=false (the recycler bypasses caching for
// them).
func PredKey(buf []byte, p Predicate) ([]byte, bool) {
	return appendPredKey(buf, p)
}

// SplitAnd returns the flattened conjunct list of p — the operands of
// its (nested) top-level AND chain, or [p] when p is not a conjunction.
// On a canonical predicate the conjuncts come out in canonical (key)
// order.
func SplitAnd(p Predicate) []Predicate {
	var out []Predicate
	var walk func(Predicate)
	walk = func(q Predicate) {
		if a, ok := q.(And); ok {
			walk(a.L)
			walk(a.R)
			return
		}
		out = append(out, q)
	}
	walk(p)
	return out
}

// JoinAnd folds conjuncts back into a left-associated AND chain; the
// inverse of SplitAnd for non-empty input, TRUE for empty.
func JoinAnd(conjuncts []Predicate) Predicate {
	if len(conjuncts) == 0 {
		return TruePred{}
	}
	acc := conjuncts[0]
	for _, c := range conjuncts[1:] {
		acc = And{L: acc, R: c}
	}
	return acc
}

// Implies conservatively reports whether p ⇒ q holds for every row:
// true only for single-column interval conjuncts (Cmp with an ordering
// operator or Eq, Between) over the same column where p's interval is
// contained in q's. False negatives are fine — callers use it to find
// reusable cached supersets, not to prove theorems.
func Implies(p, q Predicate) bool {
	pc, pi, ok := asInterval(p)
	if !ok {
		return false
	}
	qc, qi, ok := asInterval(q)
	if !ok || pc != qc {
		return false
	}
	// Lower side: q unbounded, or p at least as tight.
	if qi.hasLo {
		if !pi.hasLo {
			return false
		}
		if pi.lo < qi.lo || (pi.lo == qi.lo && qi.loStrict && !pi.loStrict) {
			return false
		}
	}
	if qi.hasHi {
		if !pi.hasHi {
			return false
		}
		if pi.hi > qi.hi || (pi.hi == qi.hi && qi.hiStrict && !pi.hiStrict) {
			return false
		}
	}
	return true
}

// interval is a one-column bound: lo/hi sides independently present and
// independently strict. Constants are never NaN (asInterval rejects
// those).
type interval struct {
	hasLo, hasHi       bool
	lo, hi             float64
	loStrict, hiStrict bool
}

// asInterval views p as a bound over a raw column reference, when it is
// one. Eq becomes the closed point interval; Ne bounds nothing.
func asInterval(p Predicate) (col string, iv interval, ok bool) {
	switch c := p.(type) {
	case Cmp:
		ref, isRef := c.Left.(ColRef)
		if !isRef || math.IsNaN(c.Right) {
			return "", interval{}, false
		}
		switch c.Op {
		case vec.Lt:
			return ref.Name, interval{hasHi: true, hi: c.Right, hiStrict: true}, true
		case vec.Le:
			return ref.Name, interval{hasHi: true, hi: c.Right}, true
		case vec.Gt:
			return ref.Name, interval{hasLo: true, lo: c.Right, loStrict: true}, true
		case vec.Ge:
			return ref.Name, interval{hasLo: true, lo: c.Right}, true
		case vec.Eq:
			return ref.Name, interval{hasLo: true, lo: c.Right, hasHi: true, hi: c.Right}, true
		}
		return "", interval{}, false
	case Between:
		ref, isRef := c.Expr.(ColRef)
		if !isRef || math.IsNaN(c.Lo) || math.IsNaN(c.Hi) {
			return "", interval{}, false
		}
		return ref.Name, interval{hasLo: true, lo: c.Lo, hasHi: true, hi: c.Hi}, true
	}
	return "", interval{}, false
}

// mergeable reports whether p participates in conjunction interval
// merging: an ordering bound (not Eq — point predicates stay their own
// conjunct so "x = 5" keys distinctly from "x BETWEEN 5 AND 5").
func mergeable(p Predicate) (string, interval, bool) {
	if c, isCmp := p.(Cmp); isCmp && c.Op == vec.Eq {
		return "", interval{}, false
	}
	return asInterval(p)
}

// canon is Canonical's recursive worker; ok=false marks a subtree with
// unkeyable shapes, which the caller propagates so the whole predicate
// is left untouched (a partially canonical tree would not be a fixed
// point).
func canon(p Predicate) (Predicate, bool) {
	switch c := p.(type) {
	case nil:
		return TruePred{}, true
	case And:
		return canonAnd(c)
	case Or:
		return canonOr(c)
	case Not:
		inner, ok := canon(c.P)
		if !ok {
			return nil, false
		}
		if n, isNot := inner.(Not); isNot {
			return n.P, true
		}
		return Not{P: inner}, true
	case Cmp:
		if !scalarKeyable(c.Left) {
			return nil, false
		}
		return c, true
	case Between:
		if !scalarKeyable(c.Expr) {
			return nil, false
		}
		return c, true
	case StrEq, Cone, TruePred:
		return p, true
	default:
		return nil, false
	}
}

// keyed pairs a canonical conjunct/disjunct with its binary key for
// sorting and deduplication.
type keyed struct {
	p   Predicate
	key []byte
}

func sortDedupe(ks []keyed) []keyed {
	sort.Slice(ks, func(i, j int) bool { return bytes.Compare(ks[i].key, ks[j].key) < 0 })
	out := ks[:0]
	for i, k := range ks {
		if i > 0 && bytes.Equal(k.key, ks[i-1].key) {
			continue
		}
		out = append(out, k)
	}
	return out
}

// canonAnd flattens a conjunction, merges per-column interval bounds,
// then sorts and deduplicates the surviving conjuncts by key.
func canonAnd(a And) (Predicate, bool) {
	var flat []Predicate
	var gather func(Predicate) bool
	gather = func(q Predicate) bool {
		cq, ok := canon(q)
		if !ok {
			return false
		}
		if inner, isAnd := cq.(And); isAnd {
			// canon of a nested And returns a flattened chain; split it
			// rather than re-recursing through canon.
			flat = append(flat, SplitAnd(inner)...)
			return true
		}
		if _, isTrue := cq.(TruePred); isTrue {
			return true
		}
		flat = append(flat, cq)
		return true
	}
	if !gather(a.L) || !gather(a.R) {
		return nil, false
	}

	// Merge interval bounds per column; everything else passes through.
	bounds := make(map[string]interval)
	var order []string // first-seen column order, for deterministic emit before sorting
	rest := flat[:0]
	for _, c := range flat {
		col, iv, ok := mergeable(c)
		if !ok {
			rest = append(rest, c)
			continue
		}
		if _, seen := bounds[col]; !seen {
			order = append(order, col)
		}
		bounds[col] = tighten(bounds[col], iv)
	}
	conjuncts := append([]Predicate(nil), rest...)
	for _, col := range order {
		conjuncts = append(conjuncts, emitBounds(col, bounds[col])...)
	}

	ks := make([]keyed, 0, len(conjuncts))
	for _, c := range conjuncts {
		key, ok := appendPredKey(nil, c)
		if !ok {
			return nil, false
		}
		ks = append(ks, keyed{p: c, key: key})
	}
	ks = sortDedupe(ks)
	switch len(ks) {
	case 0:
		return TruePred{}, true
	case 1:
		return ks[0].p, true
	}
	acc := ks[0].p
	for _, k := range ks[1:] {
		acc = And{L: acc, R: k.p}
	}
	return acc, true
}

// tighten intersects two interval bounds: the higher lower bound and
// the lower upper bound win; on equal constants the strict side wins.
func tighten(a, b interval) interval {
	if b.hasLo && (!a.hasLo || b.lo > a.lo || (b.lo == a.lo && b.loStrict)) {
		a.hasLo, a.lo, a.loStrict = true, b.lo, b.loStrict
	}
	if b.hasHi && (!a.hasHi || b.hi < a.hi || (b.hi == a.hi && b.hiStrict)) {
		a.hasHi, a.hi, a.hiStrict = true, b.hi, b.hiStrict
	}
	return a
}

// emitBounds renders a merged interval back into predicate conjuncts:
// a closed two-sided interval is BETWEEN, anything else one Cmp per
// present side. (An empty interval — lo > hi — stays as emitted: both
// forms match no row, so semantics hold without a dedicated FALSE.)
func emitBounds(col string, iv interval) []Predicate {
	ref := ColRef{Name: col}
	if iv.hasLo && iv.hasHi && !iv.loStrict && !iv.hiStrict {
		return []Predicate{Between{Expr: ref, Lo: iv.lo, Hi: iv.hi}}
	}
	var out []Predicate
	if iv.hasLo {
		op := vec.Ge
		if iv.loStrict {
			op = vec.Gt
		}
		out = append(out, Cmp{Op: op, Left: ref, Right: iv.lo})
	}
	if iv.hasHi {
		op := vec.Le
		if iv.hiStrict {
			op = vec.Lt
		}
		out = append(out, Cmp{Op: op, Left: ref, Right: iv.hi})
	}
	return out
}

// canonOr flattens a disjunction, lets TRUE absorb it, and sorts and
// deduplicates the operands by key.
func canonOr(o Or) (Predicate, bool) {
	var flat []Predicate
	absorbed := false
	var gather func(Predicate) bool
	gather = func(q Predicate) bool {
		cq, ok := canon(q)
		if !ok {
			return false
		}
		if inner, isOr := cq.(Or); isOr {
			return gatherFlat(inner, &flat, &absorbed)
		}
		if _, isTrue := cq.(TruePred); isTrue {
			absorbed = true
			return true
		}
		flat = append(flat, cq)
		return true
	}
	if !gather(o.L) || !gather(o.R) {
		return nil, false
	}
	if absorbed {
		return TruePred{}, true
	}
	ks := make([]keyed, 0, len(flat))
	for _, c := range flat {
		key, ok := appendPredKey(nil, c)
		if !ok {
			return nil, false
		}
		ks = append(ks, keyed{p: c, key: key})
	}
	ks = sortDedupe(ks)
	switch len(ks) {
	case 0:
		return TruePred{}, true
	case 1:
		return ks[0].p, true
	}
	acc := ks[0].p
	for _, k := range ks[1:] {
		acc = Or{L: acc, R: k.p}
	}
	return acc, true
}

// gatherFlat splits an already-canonical nested Or chain into flat.
func gatherFlat(o Or, flat *[]Predicate, absorbed *bool) bool {
	var walk func(Predicate) bool
	walk = func(q Predicate) bool {
		if inner, isOr := q.(Or); isOr {
			return walk(inner.L) && walk(inner.R)
		}
		if _, isTrue := q.(TruePred); isTrue {
			*absorbed = true
			return true
		}
		*flat = append(*flat, q)
		return true
	}
	return walk(o.L) && walk(o.R)
}

// --- binary key encoding ----------------------------------------------

// Key tags. Disjoint from each other and from scalar tags; every
// variable-length field is either length-delimited by a 0 terminator
// (column names, string constants — the column layer never stores NUL
// in identifiers or dictionary words that could otherwise collide) or
// fixed width (float64 bits).
const (
	kTrue    = 'T'
	kCmp     = 'C'
	kBetween = 'B'
	kStrEq   = 'S'
	kCone    = 'G'
	kAnd     = '&'
	kOr      = '|'
	kNot     = '!'
	kEnd     = ')'
	kColRef  = 'c'
	kConst   = 'k'
	kArith   = 'a'
)

func appendF64(buf []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
}

func appendStr(buf []byte, s string) []byte {
	buf = append(buf, s...)
	return append(buf, 0)
}

func appendPredKey(buf []byte, p Predicate) ([]byte, bool) {
	switch c := p.(type) {
	case nil:
		return append(buf, kTrue), true
	case TruePred:
		return append(buf, kTrue), true
	case Cmp:
		buf = append(buf, kCmp, byte(c.Op))
		buf, ok := appendScalarKey(buf, c.Left)
		if !ok {
			return nil, false
		}
		return appendF64(buf, c.Right), true
	case Between:
		buf = append(buf, kBetween)
		buf, ok := appendScalarKey(buf, c.Expr)
		if !ok {
			return nil, false
		}
		return appendF64(appendF64(buf, c.Lo), c.Hi), true
	case StrEq:
		neg := byte(0)
		if c.Neg {
			neg = 1
		}
		buf = append(buf, kStrEq, neg)
		return appendStr(appendStr(buf, c.Col), c.Value), true
	case Cone:
		buf = append(buf, kCone)
		buf = appendStr(appendStr(buf, c.RaCol), c.DecCol)
		return appendF64(appendF64(appendF64(buf, c.Ra0), c.Dec0), c.Radius), true
	case And:
		buf = append(buf, kAnd)
		var ok bool
		if buf, ok = appendPredKey(buf, c.L); !ok {
			return nil, false
		}
		if buf, ok = appendPredKey(buf, c.R); !ok {
			return nil, false
		}
		return append(buf, kEnd), true
	case Or:
		buf = append(buf, kOr)
		var ok bool
		if buf, ok = appendPredKey(buf, c.L); !ok {
			return nil, false
		}
		if buf, ok = appendPredKey(buf, c.R); !ok {
			return nil, false
		}
		return append(buf, kEnd), true
	case Not:
		buf = append(buf, kNot)
		return appendPredKey(buf, c.P)
	default:
		return nil, false
	}
}

func appendScalarKey(buf []byte, s Scalar) ([]byte, bool) {
	switch e := s.(type) {
	case ColRef:
		return appendStr(append(buf, kColRef), e.Name), true
	case Const:
		return appendF64(append(buf, kConst), e.V), true
	case Arith:
		buf = append(buf, kArith, byte(e.Op))
		buf, ok := appendScalarKey(buf, e.L)
		if !ok {
			return nil, false
		}
		buf, ok = appendScalarKey(buf, e.R)
		if !ok {
			return nil, false
		}
		return append(buf, kEnd), true
	default:
		// Materialized carries whole-column state; user-defined scalars
		// are opaque. Neither can be keyed by value.
		return nil, false
	}
}

func scalarKeyable(s Scalar) bool {
	_, ok := appendScalarKey(nil, s)
	return ok
}
