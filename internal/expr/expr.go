// Package expr defines the expression language of the SciBORQ query
// engine: scalar expressions over table columns and boolean predicates
// that evaluate to selection vectors, column-at-a-time.
//
// Predicates also know how to report the attribute values they request
// (Points), which is how the workload logger of §4 builds the predicate
// set that steers biased sampling.
package expr

import (
	"fmt"
	"math"
	"strings"

	"sciborq/internal/column"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// Scalar is a numeric expression evaluated over a whole table into a
// materialised float64 column (the column-at-a-time contract).
type Scalar interface {
	// EvalF64 returns the expression value for every row of t.
	EvalF64(t *table.Table) ([]float64, error)
	// String renders the expression in SQL-ish syntax.
	String() string
}

// Predicate is a boolean expression evaluated into a selection vector.
type Predicate interface {
	// Filter returns the subset of sel (nil = all rows) satisfying the
	// predicate on t.
	Filter(t *table.Table, sel vec.Sel) (vec.Sel, error)
	// Points reports the attribute values this predicate requests; the
	// workload logger feeds them into per-attribute histograms (§4).
	Points() []Point
	// String renders the predicate in SQL-ish syntax.
	String() string
}

// Point is one logged predicate value: the query asked about Value on
// attribute Attr.
type Point struct {
	Attr  string
	Value float64
}

// ColRef is a reference to a numeric column.
type ColRef struct{ Name string }

// EvalF64 implements Scalar. Int64 columns are widened to float64.
func (c ColRef) EvalF64(t *table.Table) ([]float64, error) {
	col, err := t.Col(c.Name)
	if err != nil {
		return nil, err
	}
	switch cc := col.(type) {
	case *column.Float64Col:
		return cc.Data, nil
	case *column.Int64Col:
		out := make([]float64, len(cc.Data))
		for i, v := range cc.Data {
			out[i] = float64(v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("expr: column %q has non-numeric type %s", c.Name, col.Type())
	}
}

// String implements Scalar.
func (c ColRef) String() string { return c.Name }

// Const is a numeric literal.
type Const struct{ V float64 }

// EvalF64 implements Scalar: a constant column.
func (c Const) EvalF64(t *table.Table) ([]float64, error) {
	out := make([]float64, t.Len())
	for i := range out {
		out[i] = c.V
	}
	return out, nil
}

// String implements Scalar.
func (c Const) String() string { return fmt.Sprintf("%g", c.V) }

// Materialized is a scalar whose values were evaluated once up front.
// The morsel-parallel executor rewrites predicate scalars into this
// form so one materialisation (e.g. an Int64 widening or an Arith
// intermediate) is shared by every morsel instead of being recomputed
// per morsel.
type Materialized struct {
	Vals []float64
	Desc string // original expression rendering, kept for messages
}

// EvalF64 implements Scalar.
func (m Materialized) EvalF64(t *table.Table) ([]float64, error) { return m.Vals, nil }

// String implements Scalar.
func (m Materialized) String() string { return m.Desc }

// ArithOp enumerates arithmetic operators.
type ArithOp int

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	}
	return "?"
}

// Arith applies an arithmetic operator element-wise.
type Arith struct {
	Op   ArithOp
	L, R Scalar
}

// EvalF64 implements Scalar.
func (a Arith) EvalF64(t *table.Table) ([]float64, error) {
	l, err := a.L.EvalF64(t)
	if err != nil {
		return nil, err
	}
	r, err := a.R.EvalF64(t)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(l))
	switch a.Op {
	case Add:
		for i := range out {
			out[i] = l[i] + r[i]
		}
	case Sub:
		for i := range out {
			out[i] = l[i] - r[i]
		}
	case Mul:
		for i := range out {
			out[i] = l[i] * r[i]
		}
	case Div:
		for i := range out {
			out[i] = l[i] / r[i] // IEEE semantics: x/0 = ±Inf
		}
	default:
		return nil, fmt.Errorf("expr: unknown arithmetic op %d", a.Op)
	}
	return out, nil
}

// String implements Scalar.
func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// Cmp compares a scalar expression against a constant.
type Cmp struct {
	Op    vec.CmpOp
	Left  Scalar
	Right float64
}

// Filter implements Predicate. The fast path compares a raw float64
// column without materialising the expression.
func (c Cmp) Filter(t *table.Table, sel vec.Sel) (vec.Sel, error) {
	if ref, ok := c.Left.(ColRef); ok {
		if data, err := t.Float64(ref.Name); err == nil {
			return vec.SelectFloat64(data, sel, c.Op, c.Right), nil
		}
	}
	vals, err := c.Left.EvalF64(t)
	if err != nil {
		return nil, err
	}
	return vec.SelectFloat64(vals, sel, c.Op, c.Right), nil
}

// Points implements Predicate: the requested value is the comparison
// constant on the referenced attribute.
func (c Cmp) Points() []Point {
	if ref, ok := c.Left.(ColRef); ok {
		return []Point{{Attr: ref.Name, Value: c.Right}}
	}
	return nil
}

// guardScalar renders a scalar for the head position of a predicate.
// A bare column reference that spells the cone-search function name
// must be parenthesised: unguarded, "fGetNearbyObjEq > 1" re-parses as
// a malformed fGetNearbyObjEq(...) call instead of a column comparison.
func guardScalar(s Scalar) string {
	if ref, ok := s.(ColRef); ok && strings.EqualFold(ref.Name, "fGetNearbyObjEq") {
		return "(" + ref.Name + ")"
	}
	return s.String()
}

// String implements Predicate.
func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %g", guardScalar(c.Left), c.Op, c.Right)
}

// Between selects lo <= expr <= hi (inclusive, SQL semantics).
type Between struct {
	Expr   Scalar
	Lo, Hi float64
}

// Filter implements Predicate.
func (b Between) Filter(t *table.Table, sel vec.Sel) (vec.Sel, error) {
	vals, err := b.Expr.EvalF64(t)
	if err != nil {
		return nil, err
	}
	return vec.SelectFunc(len(vals), sel, func(i int32) bool {
		v := vals[i]
		return v >= b.Lo && v <= b.Hi
	}), nil
}

// Points implements Predicate: a range request logs its midpoint, the
// centre of the area of interest.
func (b Between) Points() []Point {
	if ref, ok := b.Expr.(ColRef); ok {
		return []Point{{Attr: ref.Name, Value: (b.Lo + b.Hi) / 2}}
	}
	return nil
}

// String implements Predicate.
func (b Between) String() string {
	return fmt.Sprintf("%s BETWEEN %g AND %g", guardScalar(b.Expr), b.Lo, b.Hi)
}

// StrEq selects rows of a VARCHAR column equal to a string constant
// (dictionary-code comparison; no per-row string compare).
type StrEq struct {
	Col   string
	Value string
	Neg   bool // true for <>
}

// Filter implements Predicate.
func (s StrEq) Filter(t *table.Table, sel vec.Sel) (vec.Sel, error) {
	col, err := t.Col(s.Col)
	if err != nil {
		return nil, err
	}
	sc, ok := col.(*column.StringCol)
	if !ok {
		return nil, fmt.Errorf("expr: column %q is %s, want VARCHAR", s.Col, col.Type())
	}
	code, present := sc.Code(s.Value)
	if !present {
		if s.Neg {
			if sel == nil {
				return vec.NewSelAll(sc.Len()), nil
			}
			return sel, nil
		}
		return vec.Sel{}, nil
	}
	want := true
	if s.Neg {
		want = false
	}
	return vec.SelectFunc(sc.Len(), sel, func(i int32) bool {
		return (sc.Data[i] == code) == want
	}), nil
}

// Points implements Predicate: string predicates carry no numeric
// interest values.
func (s StrEq) Points() []Point { return nil }

// String implements Predicate.
func (s StrEq) String() string {
	op := "="
	if s.Neg {
		op = "<>"
	}
	return fmt.Sprintf("%s %s '%s'", guardScalar(ColRef{Name: s.Col}), op, s.Value)
}

// And is predicate conjunction.
type And struct{ L, R Predicate }

// Filter implements Predicate: evaluate L, then R on the survivors.
func (a And) Filter(t *table.Table, sel vec.Sel) (vec.Sel, error) {
	ls, err := a.L.Filter(t, sel)
	if err != nil {
		return nil, err
	}
	return a.R.Filter(t, ls)
}

// Points implements Predicate.
func (a And) Points() []Point { return append(a.L.Points(), a.R.Points()...) }

// String implements Predicate.
func (a And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }

// Or is predicate disjunction.
type Or struct{ L, R Predicate }

// Filter implements Predicate.
func (o Or) Filter(t *table.Table, sel vec.Sel) (vec.Sel, error) {
	ls, err := o.L.Filter(t, sel)
	if err != nil {
		return nil, err
	}
	rs, err := o.R.Filter(t, sel)
	if err != nil {
		return nil, err
	}
	return vec.Or(ls, rs, t.Len()), nil
}

// Points implements Predicate.
func (o Or) Points() []Point { return append(o.L.Points(), o.R.Points()...) }

// String implements Predicate.
func (o Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Not is predicate negation.
type Not struct{ P Predicate }

// Filter implements Predicate. With a restricted selection the
// complement stays within sel (sel \ ps), so the cost is O(|sel|)
// rather than a full-table complement per call — the property the
// morsel-parallel executor relies on.
func (n Not) Filter(t *table.Table, sel vec.Sel) (vec.Sel, error) {
	ps, err := n.P.Filter(t, sel)
	if err != nil {
		return nil, err
	}
	if sel == nil {
		return vec.Not(ps, t.Len()), nil
	}
	return vec.Diff(sel, ps), nil
}

// Points implements Predicate: a negated area is still an area the
// scientist reasoned about, so its points are logged.
func (n Not) Points() []Point { return n.P.Points() }

// String implements Predicate.
func (n Not) String() string { return fmt.Sprintf("NOT (%s)", n.P) }

// Cone is the fGetNearbyObjEq(ra, dec, r) predicate of the SkyServer
// workload: all objects within Radius degrees of (Ra0, Dec0) by angular
// separation on the celestial sphere.
type Cone struct {
	RaCol, DecCol string
	Ra0, Dec0     float64 // centre, degrees
	Radius        float64 // degrees
}

// Filter implements Predicate using the haversine angular separation.
func (c Cone) Filter(t *table.Table, sel vec.Sel) (vec.Sel, error) {
	ra, err := t.Float64(c.RaCol)
	if err != nil {
		return nil, err
	}
	dec, err := t.Float64(c.DecCol)
	if err != nil {
		return nil, err
	}
	return vec.SelectFunc(len(ra), sel, func(i int32) bool {
		return AngularSeparation(c.Ra0, c.Dec0, ra[i], dec[i]) <= c.Radius
	}), nil
}

// Points implements Predicate: a cone query logs its centre on both
// positional attributes — exactly the paper's SkyServer example where
// fGetNearbyObjEq(185, 0, 3) contributes ra=185 and dec=0 to the
// predicate set.
func (c Cone) Points() []Point {
	return []Point{{Attr: c.RaCol, Value: c.Ra0}, {Attr: c.DecCol, Value: c.Dec0}}
}

// String implements Predicate.
func (c Cone) String() string {
	return fmt.Sprintf("fGetNearbyObjEq(%g, %g, %g)", c.Ra0, c.Dec0, c.Radius)
}

// AngularSeparation returns the great-circle angle in degrees between
// two sky positions given in degrees (haversine formula).
func AngularSeparation(ra1, dec1, ra2, dec2 float64) float64 {
	const d2r = math.Pi / 180
	phi1, phi2 := dec1*d2r, dec2*d2r
	dPhi := (dec2 - dec1) * d2r
	dLam := (ra2 - ra1) * d2r
	a := math.Sin(dPhi/2)*math.Sin(dPhi/2) +
		math.Cos(phi1)*math.Cos(phi2)*math.Sin(dLam/2)*math.Sin(dLam/2)
	if a > 1 {
		a = 1
	}
	return 2 * math.Asin(math.Sqrt(a)) / d2r
}

// TruePred matches all rows; the WHERE-less query.
type TruePred struct{}

// Filter implements Predicate.
func (TruePred) Filter(t *table.Table, sel vec.Sel) (vec.Sel, error) { return sel, nil }

// Points implements Predicate.
func (TruePred) Points() []Point { return nil }

// String implements Predicate.
func (TruePred) String() string { return "TRUE" }
