package expr

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

func canonTable(t *testing.T, n int, seed int64) *table.Table {
	t.Helper()
	tb := table.MustNew("ct", table.Schema{
		{Name: "x", Type: column.Float64},
		{Name: "y", Type: column.Float64},
		{Name: "s", Type: column.String},
	})
	rng := rand.New(rand.NewSource(seed))
	words := []string{"a", "b", "c"}
	rows := make([]table.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, table.Row{rng.Float64() * 10, rng.Float64()*20 - 10, words[rng.Intn(len(words))]})
	}
	if err := tb.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	return tb
}

func mustKey(t *testing.T, p Predicate) string {
	t.Helper()
	k, ok := PredKey(nil, p)
	if !ok {
		t.Fatalf("predicate %s not keyable", p)
	}
	return string(k)
}

func TestCanonicalCommutesAndAssociates(t *testing.T) {
	a := Cmp{Op: vec.Gt, Left: ColRef{Name: "x"}, Right: 2}
	b := StrEq{Col: "s", Value: "a"}
	c := Cone{RaCol: "x", DecCol: "y", Ra0: 5, Dec0: 0, Radius: 1}
	perms := []Predicate{
		And{L: And{L: a, R: b}, R: c},
		And{L: a, R: And{L: b, R: c}},
		And{L: c, R: And{L: b, R: a}},
		And{L: And{L: c, R: a}, R: b},
	}
	want := mustKey(t, Canonical(perms[0]))
	for i, p := range perms[1:] {
		if got := mustKey(t, Canonical(p)); got != want {
			t.Fatalf("permutation %d keys differently", i+1)
		}
	}
	// OR permutations normalise too.
	o1 := mustKey(t, Canonical(Or{L: a, R: Or{L: b, R: c}}))
	o2 := mustKey(t, Canonical(Or{L: Or{L: c, R: b}, R: a}))
	if o1 != o2 {
		t.Fatal("OR permutations key differently")
	}
	// AND and OR of the same operands must NOT collide.
	if mustKey(t, Canonical(And{L: a, R: b})) == mustKey(t, Canonical(Or{L: a, R: b})) {
		t.Fatal("AND and OR keys collide")
	}
}

func TestCanonicalMergesIntervals(t *testing.T) {
	x := ColRef{Name: "x"}
	p := And{
		L: Cmp{Op: vec.Ge, Left: x, Right: 2},
		R: And{
			L: Cmp{Op: vec.Le, Left: x, Right: 5},
			R: Cmp{Op: vec.Le, Left: x, Right: 9},
		},
	}
	got := Canonical(p)
	want := Between{Expr: x, Lo: 2, Hi: 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged form = %#v, want %#v", got, want)
	}
	// Strict bounds survive as Cmp, tightest-and-strictest wins.
	q := And{
		L: Cmp{Op: vec.Gt, Left: x, Right: 2},
		R: Cmp{Op: vec.Ge, Left: x, Right: 2},
	}
	if got := Canonical(q); !reflect.DeepEqual(got, Cmp{Op: vec.Gt, Left: x, Right: 2}) {
		t.Fatalf("strict tie-break = %#v", got)
	}
	// Nested Between intersects with loose bounds.
	r := And{
		L: Between{Expr: x, Lo: 1, Hi: 8},
		R: Between{Expr: x, Lo: 3, Hi: 9},
	}
	if got := Canonical(r); !reflect.DeepEqual(got, Between{Expr: x, Lo: 3, Hi: 8}) {
		t.Fatalf("between intersection = %#v", got)
	}
	// NaN constants refuse to merge (comparison semantics are sticky).
	nan := And{
		L: Cmp{Op: vec.Ge, Left: x, Right: math.NaN()},
		R: Cmp{Op: vec.Le, Left: x, Right: 5},
	}
	if _, isBetween := Canonical(nan).(Between); isBetween {
		t.Fatal("NaN bound merged into BETWEEN")
	}
}

func TestCanonicalSimplifications(t *testing.T) {
	a := Cmp{Op: vec.Lt, Left: ColRef{Name: "x"}, Right: 3}
	if got := Canonical(And{L: a, R: TruePred{}}); !reflect.DeepEqual(got, a) {
		t.Fatalf("TRUE conjunct survived: %#v", got)
	}
	if got := Canonical(Or{L: a, R: TruePred{}}); !reflect.DeepEqual(got, TruePred{}) {
		t.Fatalf("TRUE did not absorb OR: %#v", got)
	}
	if got := Canonical(Not{P: Not{P: a}}); !reflect.DeepEqual(got, a) {
		t.Fatalf("double negation survived: %#v", got)
	}
	if got := Canonical(And{L: a, R: a}); !reflect.DeepEqual(got, a) {
		t.Fatalf("duplicate conjunct survived: %#v", got)
	}
	if got := Canonical(nil); !reflect.DeepEqual(got, TruePred{}) {
		t.Fatalf("nil did not canonicalise to TRUE: %#v", got)
	}
}

// opaquePred is an unkeyable user-defined predicate shape.
type opaquePred struct{ TruePred }

func TestCanonicalLeavesUnkeyableUntouched(t *testing.T) {
	p := And{L: opaquePred{}, R: Cmp{Op: vec.Lt, Left: ColRef{Name: "x"}, Right: 3}}
	if got := Canonical(p); !reflect.DeepEqual(got, p) {
		t.Fatalf("unkeyable predicate rewritten: %#v", got)
	}
	if _, ok := PredKey(nil, p); ok {
		t.Fatal("opaque predicate claimed keyable")
	}
	if _, ok := PredKey(nil, Cmp{Op: vec.Lt, Left: Materialized{Desc: "m"}, Right: 1}); ok {
		t.Fatal("Materialized scalar claimed keyable")
	}
}

func TestImplies(t *testing.T) {
	x := ColRef{Name: "x"}
	y := ColRef{Name: "y"}
	cases := []struct {
		p, q Predicate
		want bool
	}{
		{Between{Expr: x, Lo: 2, Hi: 3}, Between{Expr: x, Lo: 0, Hi: 10}, true},
		{Between{Expr: x, Lo: 2, Hi: 3}, Between{Expr: y, Lo: 0, Hi: 10}, false},
		{Between{Expr: x, Lo: 0, Hi: 10}, Between{Expr: x, Lo: 2, Hi: 3}, false},
		{Cmp{Op: vec.Lt, Left: x, Right: 5}, Cmp{Op: vec.Le, Left: x, Right: 5}, true},
		{Cmp{Op: vec.Le, Left: x, Right: 5}, Cmp{Op: vec.Lt, Left: x, Right: 5}, false},
		{Cmp{Op: vec.Gt, Left: x, Right: 3}, Cmp{Op: vec.Ge, Left: x, Right: 3}, true},
		{Cmp{Op: vec.Eq, Left: x, Right: 5}, Between{Expr: x, Lo: 0, Hi: 10}, true},
		{Cmp{Op: vec.Lt, Left: x, Right: 5}, Between{Expr: x, Lo: 0, Hi: 10}, false}, // no lower bound
		{StrEq{Col: "s", Value: "a"}, StrEq{Col: "s", Value: "a"}, false},            // non-interval: conservative no
	}
	for i, c := range cases {
		if got := Implies(c.p, c.q); got != c.want {
			t.Errorf("case %d: Implies(%s, %s) = %v, want %v", i, c.p, c.q, got, c.want)
		}
	}
}

// randPred builds random keyable predicates over x (in [0,10]) and y
// (in [-10,10]) with depth-bounded combinators.
func randPred(rng *rand.Rand, depth int) Predicate {
	if depth > 0 && rng.Intn(2) == 0 {
		switch rng.Intn(3) {
		case 0:
			return And{L: randPred(rng, depth-1), R: randPred(rng, depth-1)}
		case 1:
			return Or{L: randPred(rng, depth-1), R: randPred(rng, depth-1)}
		default:
			return Not{P: randPred(rng, depth-1)}
		}
	}
	ops := []vec.CmpOp{vec.Eq, vec.Ne, vec.Lt, vec.Le, vec.Gt, vec.Ge}
	switch rng.Intn(4) {
	case 0:
		return Cmp{Op: ops[rng.Intn(len(ops))], Left: ColRef{Name: "x"}, Right: rng.Float64() * 10}
	case 1:
		lo := rng.Float64()*20 - 10
		return Between{Expr: ColRef{Name: "y"}, Lo: lo, Hi: lo + rng.Float64()*10}
	case 2:
		return StrEq{Col: "s", Value: []string{"a", "b", "zz"}[rng.Intn(3)], Neg: rng.Intn(2) == 0}
	default:
		return Cmp{Op: ops[rng.Intn(len(ops))], Left: ColRef{Name: "y"}, Right: rng.Float64()*20 - 10}
	}
}

// TestCanonicalFixedPointAndSemantics is the canonicalisation half of
// the recycler property suite: for random predicates, Canonical is a
// fixed point and Filter over the canonical form returns the identical
// selection vector.
func TestCanonicalFixedPointAndSemantics(t *testing.T) {
	tb := canonTable(t, 500, 42)
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		p := randPred(rng, 3)
		c := Canonical(p)
		cc := Canonical(c)
		if !reflect.DeepEqual(c, cc) {
			t.Fatalf("iter %d: not a fixed point:\n  p  = %s\n  c  = %s\n  cc = %s", iter, p, c, cc)
		}
		kc := mustKey(t, c)
		if kcc := mustKey(t, cc); kc != kcc {
			t.Fatalf("iter %d: fixed-point keys differ", iter)
		}
		want, err := p.Filter(tb, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Filter(tb, nil)
		if err != nil {
			t.Fatal(err)
		}
		normalise := func(s vec.Sel) vec.Sel {
			if s == nil {
				s = vec.NewSelAll(tb.Len())
			}
			return s
		}
		w, g := normalise(want), normalise(got)
		if len(w) != len(g) {
			t.Fatalf("iter %d: |sel| %d vs %d for %s vs %s", iter, len(w), len(g), p, c)
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("iter %d: selection diverges at %d for %s vs %s", iter, i, p, c)
			}
		}
	}
}
