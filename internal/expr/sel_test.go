package expr

import (
	"math"
	"math/rand"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// selFixture builds a table with every column shape the predicate types
// touch.
func selFixture(t *testing.T, n int, seed int64) *table.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tb, err := table.New("sel_fixture", table.Schema{
		{Name: "x", Type: column.Float64},
		{Name: "i", Type: column.Int64},
		{Name: "s", Type: column.String},
		{Name: "ra", Type: column.Float64},
		{Name: "dec", Type: column.Float64},
	})
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"STAR", "GALAXY", "QSO"}
	for r := 0; r < n; r++ {
		row := table.Row{
			rng.NormFloat64(),
			int64(rng.Intn(10)),
			words[rng.Intn(len(words))],
			rng.Float64() * 360,
			rng.Float64()*180 - 90,
		}
		if err := tb.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// selPredicates returns the predicate shapes under test.
func selPredicates() []Predicate {
	x := ColRef{Name: "x"}
	return []Predicate{
		Cmp{Op: vec.Lt, Left: x, Right: 0.3},
		Cmp{Op: vec.Ge, Left: ColRef{Name: "i"}, Right: 5},
		Between{Expr: x, Lo: -0.5, Hi: 0.5},
		Between{Expr: Arith{Op: Add, L: x, R: Const{V: 1}}, Lo: 0.8, Hi: 1.2},
		StrEq{Col: "s", Value: "GALAXY"},
		StrEq{Col: "s", Value: "GALAXY", Neg: true},
		StrEq{Col: "s", Value: "NOWHERE"},
		StrEq{Col: "s", Value: "NOWHERE", Neg: true},
		Cone{RaCol: "ra", DecCol: "dec", Ra0: 180, Dec0: 0, Radius: 30},
		And{L: Cmp{Op: vec.Gt, Left: x, Right: -1}, R: Cmp{Op: vec.Lt, Left: x, Right: 1}},
		And{L: Cmp{Op: vec.Gt, Left: x, Right: 99}, R: Cmp{Op: vec.Lt, Left: x, Right: 1}},
		Or{L: Cmp{Op: vec.Lt, Left: x, Right: -1}, R: Cmp{Op: vec.Gt, Left: x, Right: 1}},
		Not{P: Between{Expr: x, Lo: -0.25, Hi: 0.25}},
		Not{P: Not{P: Cmp{Op: vec.Le, Left: x, Right: 0}}},
		TruePred{},
	}
}

// TestFilterSelMatchesFilter asserts FilterSel(t, pred, sel) returns
// exactly Filter(t, pred, sel) for every predicate type over random
// selections, including the empty one.
func TestFilterSelMatchesFilter(t *testing.T) {
	tb := selFixture(t, 2000, 3)
	rng := rand.New(rand.NewSource(5))
	sels := []vec.Sel{
		{},
		vec.NewSelAll(tb.Len()),
	}
	for _, p := range []float64{0.02, 0.3, 0.8} {
		var s vec.Sel
		for i := 0; i < tb.Len(); i++ {
			if rng.Float64() < p {
				s = append(s, int32(i))
			}
		}
		sels = append(sels, s)
	}
	for pi, pred := range selPredicates() {
		for si, sel := range sels {
			got, err := FilterSel(tb, pred, sel)
			if err != nil {
				t.Fatalf("pred %d (%s) sel %d: %v", pi, pred, si, err)
			}
			want, err := pred.Filter(tb, sel)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil { // "all rows" of the restricted selection
				want = sel
			}
			if len(got) != len(want) {
				t.Fatalf("pred %d (%s) sel %d: got %d rows, want %d", pi, pred, si, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("pred %d (%s) sel %d: row %d = %d, want %d", pi, pred, si, k, got[k], want[k])
				}
			}
			vec.PutSel(got)
		}
	}
}

// TestEvalScalarSelMatchesFull asserts sel-native scalar evaluation
// equals the full-column evaluation gathered at the same rows, for
// every scalar shape including the widening and arithmetic paths.
func TestEvalScalarSelMatchesFull(t *testing.T) {
	tb := selFixture(t, 500, 21)
	sel := vec.Sel{0, 3, 17, 255, 499}
	scalars := []Scalar{
		ColRef{Name: "x"},
		ColRef{Name: "i"}, // int64 widening
		Const{V: 2.5},
		Arith{Op: Mul, L: ColRef{Name: "x"}, R: Arith{Op: Add, L: ColRef{Name: "i"}, R: Const{V: 1}}},
		Arith{Op: Div, L: ColRef{Name: "x"}, R: Const{V: 0}}, // IEEE ±Inf
		Materialized{Vals: make([]float64, 500), Desc: "zeros"},
	}
	for _, s := range scalars {
		got, err := EvalScalarSel(tb, s, sel)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		full, err := s.EvalF64(tb)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(sel) {
			t.Fatalf("%s: %d values for %d rows", s, len(got), len(sel))
		}
		for i, p := range sel {
			w := full[p]
			if got[i] != w && !(math.IsNaN(got[i]) && math.IsNaN(w)) {
				t.Errorf("%s: row %d = %v, want %v", s, p, got[i], w)
			}
		}
	}
	if _, err := EvalScalarSel(tb, ColRef{Name: "missing"}, sel); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := EvalScalarSel(tb, ColRef{Name: "s"}, sel); err == nil {
		t.Error("non-numeric column accepted")
	}
}

// TestFilterSelErrors asserts bad column references surface as errors
// through every composite shape.
func TestFilterSelErrors(t *testing.T) {
	tb := selFixture(t, 64, 9)
	sel := vec.NewSelAll(tb.Len())
	bad := Cmp{Op: vec.Lt, Left: ColRef{Name: "missing"}, Right: 0}
	for _, pred := range []Predicate{
		bad,
		And{L: TruePred{}, R: bad},
		Or{L: bad, R: TruePred{}},
		Not{P: bad},
		StrEq{Col: "x", Value: "GALAXY"},
	} {
		if _, err := FilterSel(tb, pred, sel); err == nil {
			t.Errorf("FilterSel(%s) did not fail", pred)
		}
	}
}
