package expr

import (
	"math"
	"reflect"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

func testTable(t *testing.T) *table.Table {
	t.Helper()
	tb := table.MustNew("PhotoObjAll", table.Schema{
		{Name: "objID", Type: column.Int64},
		{Name: "ra", Type: column.Float64},
		{Name: "dec", Type: column.Float64},
		{Name: "type", Type: column.String},
	})
	rows := []table.Row{
		{int64(1), 185.0, 0.0, "GALAXY"},
		{int64(2), 185.5, 0.5, "GALAXY"},
		{int64(3), 190.0, 2.0, "STAR"},
		{int64(4), 120.0, 45.0, "QSO"},
		{int64(5), 186.0, -0.5, "GALAXY"},
	}
	if err := tb.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestColRefFloatAndInt(t *testing.T) {
	tb := testTable(t)
	ra, err := ColRef{"ra"}.EvalF64(tb)
	if err != nil {
		t.Fatal(err)
	}
	if ra[0] != 185.0 {
		t.Fatalf("ra[0] = %v", ra[0])
	}
	ids, err := ColRef{"objID"}.EvalF64(tb)
	if err != nil {
		t.Fatal(err)
	}
	if ids[2] != 3.0 {
		t.Fatalf("widened objID[2] = %v", ids[2])
	}
	if _, err := (ColRef{"type"}).EvalF64(tb); err == nil {
		t.Fatal("string column evaluated as numeric")
	}
	if _, err := (ColRef{"missing"}).EvalF64(tb); err == nil {
		t.Fatal("missing column evaluated")
	}
}

func TestConstAndArith(t *testing.T) {
	tb := testTable(t)
	c, err := Const{2}.EvalF64(tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 5 || c[4] != 2 {
		t.Fatalf("const column = %v", c)
	}
	sum, err := Arith{Add, ColRef{"ra"}, ColRef{"dec"}}.EvalF64(tb)
	if err != nil {
		t.Fatal(err)
	}
	if sum[1] != 186.0 {
		t.Fatalf("ra+dec = %v", sum[1])
	}
	diff, _ := Arith{Sub, ColRef{"ra"}, Const{100}}.EvalF64(tb)
	if diff[3] != 20 {
		t.Fatalf("ra-100 = %v", diff[3])
	}
	prod, _ := Arith{Mul, Const{2}, ColRef{"dec"}}.EvalF64(tb)
	if prod[3] != 90 {
		t.Fatalf("2*dec = %v", prod[3])
	}
	quot, _ := Arith{Div, ColRef{"ra"}, Const{0}}.EvalF64(tb)
	if !math.IsInf(quot[0], 1) {
		t.Fatalf("x/0 = %v, want +Inf", quot[0])
	}
	if s := (Arith{Add, ColRef{"ra"}, Const{1}}).String(); s != "(ra + 1)" {
		t.Fatalf("String = %q", s)
	}
}

func TestCmpFilter(t *testing.T) {
	tb := testTable(t)
	sel, err := Cmp{vec.Ge, ColRef{"ra"}, 185.5}.Filter(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := vec.Sel{1, 2, 4}
	if !reflect.DeepEqual(sel, want) {
		t.Fatalf("sel = %v, want %v", sel, want)
	}
	// Restricted by an input selection.
	sel, err = Cmp{vec.Ge, ColRef{"ra"}, 185.5}.Filter(tb, vec.Sel{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel, vec.Sel{1}) {
		t.Fatalf("restricted sel = %v", sel)
	}
	// Through a computed expression.
	sel, err = Cmp{vec.Gt, Arith{Add, ColRef{"ra"}, ColRef{"dec"}}, 190}.Filter(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel, vec.Sel{2}) {
		t.Fatalf("computed predicate sel = %v", sel)
	}
}

func TestCmpPointsAndString(t *testing.T) {
	c := Cmp{vec.Lt, ColRef{"dec"}, 30}
	pts := c.Points()
	if len(pts) != 1 || pts[0] != (Point{"dec", 30}) {
		t.Fatalf("Points = %v", pts)
	}
	if c.String() != "dec < 30" {
		t.Fatalf("String = %q", c.String())
	}
	if pts := (Cmp{vec.Lt, Const{1}, 2}).Points(); pts != nil {
		t.Fatalf("const cmp points = %v", pts)
	}
}

func TestBetween(t *testing.T) {
	tb := testTable(t)
	b := Between{ColRef{"ra"}, 185.0, 186.0}
	sel, err := b.Filter(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := vec.Sel{0, 1, 4} // inclusive both ends
	if !reflect.DeepEqual(sel, want) {
		t.Fatalf("between sel = %v, want %v", sel, want)
	}
	pts := b.Points()
	if len(pts) != 1 || pts[0] != (Point{"ra", 185.5}) {
		t.Fatalf("between points = %v", pts)
	}
	if b.String() != "ra BETWEEN 185 AND 186" {
		t.Fatalf("String = %q", b.String())
	}
}

func TestStrEq(t *testing.T) {
	tb := testTable(t)
	sel, err := StrEq{Col: "type", Value: "GALAXY"}.Filter(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel, vec.Sel{0, 1, 4}) {
		t.Fatalf("galaxy sel = %v", sel)
	}
	sel, err = StrEq{Col: "type", Value: "GALAXY", Neg: true}.Filter(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel, vec.Sel{2, 3}) {
		t.Fatalf("non-galaxy sel = %v", sel)
	}
	// Absent value: = gives empty, <> gives everything.
	sel, _ = StrEq{Col: "type", Value: "NEBULA"}.Filter(tb, nil)
	if len(sel) != 0 {
		t.Fatalf("absent value sel = %v", sel)
	}
	sel, _ = StrEq{Col: "type", Value: "NEBULA", Neg: true}.Filter(tb, vec.Sel{1, 2})
	if !reflect.DeepEqual(sel, vec.Sel{1, 2}) {
		t.Fatalf("absent <> sel = %v", sel)
	}
	if _, err := (StrEq{Col: "ra", Value: "x"}).Filter(tb, nil); err == nil {
		t.Fatal("StrEq on DOUBLE accepted")
	}
	if (StrEq{Col: "type", Value: "QSO"}).Points() != nil {
		t.Fatal("string predicate should log no numeric points")
	}
	if s := (StrEq{Col: "type", Value: "QSO", Neg: true}).String(); s != "type <> 'QSO'" {
		t.Fatalf("String = %q", s)
	}
}

func TestAndOrNot(t *testing.T) {
	tb := testTable(t)
	galaxy := StrEq{Col: "type", Value: "GALAXY"}
	nearEq := Cmp{vec.Le, ColRef{"dec"}, 0.0}

	and := And{galaxy, nearEq}
	sel, err := and.Filter(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel, vec.Sel{0, 4}) {
		t.Fatalf("AND sel = %v", sel)
	}

	or := Or{Cmp{vec.Gt, ColRef{"dec"}, 40.0}, Cmp{vec.Gt, ColRef{"ra"}, 189.0}}
	sel, err = or.Filter(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel, vec.Sel{2, 3}) {
		t.Fatalf("OR sel = %v", sel)
	}

	not := Not{galaxy}
	sel, err = not.Filter(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel, vec.Sel{2, 3}) {
		t.Fatalf("NOT sel = %v", sel)
	}
	// NOT respects the incoming selection.
	sel, err = not.Filter(tb, vec.Sel{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel, vec.Sel{2}) {
		t.Fatalf("NOT with sel = %v", sel)
	}
}

func TestBooleanPointsAggregation(t *testing.T) {
	p := And{
		Cmp{vec.Eq, ColRef{"ra"}, 185},
		Or{Cmp{vec.Eq, ColRef{"dec"}, 0}, Cmp{vec.Eq, ColRef{"dec"}, 10}},
	}
	pts := p.Points()
	if len(pts) != 3 {
		t.Fatalf("points = %v", pts)
	}
	n := Not{Cmp{vec.Eq, ColRef{"ra"}, 200}}
	if len(n.Points()) != 1 {
		t.Fatal("NOT should forward points")
	}
}

func TestCone(t *testing.T) {
	tb := testTable(t)
	cone := Cone{RaCol: "ra", DecCol: "dec", Ra0: 185, Dec0: 0, Radius: 3}
	sel, err := cone.Filter(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0,1,4 are within ~1.1 deg; row 2 is ~5.4 deg away; row 3 far.
	if !reflect.DeepEqual(sel, vec.Sel{0, 1, 4}) {
		t.Fatalf("cone sel = %v", sel)
	}
	pts := cone.Points()
	if len(pts) != 2 || pts[0] != (Point{"ra", 185}) || pts[1] != (Point{"dec", 0}) {
		t.Fatalf("cone points = %v", pts)
	}
	if cone.String() != "fGetNearbyObjEq(185, 0, 3)" {
		t.Fatalf("String = %q", cone.String())
	}
	if _, err := (Cone{RaCol: "missing", DecCol: "dec"}).Filter(tb, nil); err == nil {
		t.Fatal("missing ra column accepted")
	}
	if _, err := (Cone{RaCol: "ra", DecCol: "missing"}).Filter(tb, nil); err == nil {
		t.Fatal("missing dec column accepted")
	}
}

func TestAngularSeparation(t *testing.T) {
	if d := AngularSeparation(0, 0, 0, 0); d != 0 {
		t.Fatalf("zero separation = %v", d)
	}
	if d := AngularSeparation(0, 0, 90, 0); math.Abs(d-90) > 1e-9 {
		t.Fatalf("quarter turn = %v", d)
	}
	if d := AngularSeparation(0, 0, 180, 0); math.Abs(d-180) > 1e-9 {
		t.Fatalf("half turn = %v", d)
	}
	// At dec=60, one degree of ra is ~0.5 degrees of arc.
	d := AngularSeparation(10, 60, 11, 60)
	if math.Abs(d-0.5) > 0.01 {
		t.Fatalf("ra compression at high dec: %v", d)
	}
	// Symmetry.
	if AngularSeparation(1, 2, 3, 4) != AngularSeparation(3, 4, 1, 2) {
		t.Fatal("separation not symmetric")
	}
}

func TestTruePred(t *testing.T) {
	tb := testTable(t)
	sel, err := (TruePred{}).Filter(tb, nil)
	if err != nil || sel != nil {
		t.Fatalf("TruePred = %v, %v", sel, err)
	}
	if (TruePred{}).Points() != nil || (TruePred{}).String() != "TRUE" {
		t.Fatal("TruePred metadata wrong")
	}
}
