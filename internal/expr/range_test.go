package expr

import (
	"math/rand"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// rangeTestTable builds a mixed-type table exercising every predicate
// shape: DOUBLE (ra/dec/r), BIGINT (objID), VARCHAR (type).
func rangeTestTable(t *testing.T, n int) *table.Table {
	t.Helper()
	tb := table.MustNew("objects", table.Schema{
		{Name: "ra", Type: column.Float64},
		{Name: "dec", Type: column.Float64},
		{Name: "r", Type: column.Float64},
		{Name: "objID", Type: column.Int64},
		{Name: "type", Type: column.String},
	})
	rng := rand.New(rand.NewSource(7))
	kinds := []string{"GALAXY", "STAR", "QSO"}
	for i := 0; i < n; i++ {
		if err := tb.AppendRow(table.Row{
			120 + rng.Float64()*120,
			rng.Float64() * 60,
			14 + rng.Float64()*10,
			int64(i),
			kinds[rng.Intn(len(kinds))],
		}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// rangePredicates enumerates one instance of every predicate type,
// including nested compositions.
func rangePredicates() []Predicate {
	return []Predicate{
		TruePred{},
		Cmp{Op: vec.Lt, Left: ColRef{Name: "ra"}, Right: 180},
		Cmp{Op: vec.Ge, Left: ColRef{Name: "dec"}, Right: 30},
		Cmp{Op: vec.Eq, Left: ColRef{Name: "objID"}, Right: 41}, // Int64 widening path
		Cmp{Op: vec.Ne, Left: ColRef{Name: "r"}, Right: 15},
		Cmp{Op: vec.Gt, Left: Arith{Op: Add, L: ColRef{Name: "ra"}, R: ColRef{Name: "dec"}}, Right: 200},
		Between{Expr: ColRef{Name: "ra"}, Lo: 150, Hi: 170},
		Between{Expr: ColRef{Name: "r"}, Lo: 0, Hi: 1}, // empty match
		StrEq{Col: "type", Value: "GALAXY"},
		StrEq{Col: "type", Value: "GALAXY", Neg: true},
		StrEq{Col: "type", Value: "NEBULA"},            // absent value
		StrEq{Col: "type", Value: "NEBULA", Neg: true}, // absent value, negated: all rows
		Cone{RaCol: "ra", DecCol: "dec", Ra0: 185, Dec0: 30, Radius: 10},
		And{L: Between{Expr: ColRef{Name: "ra"}, Lo: 140, Hi: 200}, R: StrEq{Col: "type", Value: "STAR"}},
		And{L: TruePred{}, R: Cmp{Op: vec.Lt, Left: ColRef{Name: "dec"}, Right: 20}},
		Or{L: Cmp{Op: vec.Lt, Left: ColRef{Name: "ra"}, Right: 130}, R: Cmp{Op: vec.Gt, Left: ColRef{Name: "ra"}, Right: 230}},
		Not{P: Between{Expr: ColRef{Name: "dec"}, Lo: 10, Hi: 50}},
		Not{P: And{
			L: Cmp{Op: vec.Gt, Left: ColRef{Name: "ra"}, Right: 160},
			R: Or{L: StrEq{Col: "type", Value: "QSO"}, R: Cmp{Op: vec.Lt, Left: ColRef{Name: "dec"}, Right: 5}},
		}},
	}
}

// TestFilterRangeEquivalence is the tentpole property test: for every
// predicate type and random morsel boundaries,
// FilterRange(t, lo, hi) ≡ Filter(t, NewSelRange(lo, hi)).
func TestFilterRangeEquivalence(t *testing.T) {
	const n = 2000
	tb := rangeTestTable(t, n)
	rng := rand.New(rand.NewSource(99))
	windows := [][2]int{{0, n}, {0, 0}, {n, n}, {0, 1}, {n - 1, n}}
	for i := 0; i < 40; i++ {
		lo := rng.Intn(n + 1)
		hi := lo + rng.Intn(n+1-lo)
		windows = append(windows, [2]int{lo, hi})
	}
	for _, pred := range rangePredicates() {
		if _, ok := pred.(RangeFilterer); !ok {
			t.Errorf("%s does not implement RangeFilterer", pred)
			continue
		}
		for _, w := range windows {
			lo, hi := w[0], w[1]
			want, err := pred.Filter(tb, vec.NewSelRange(lo, hi))
			if err != nil {
				t.Fatalf("%s Filter[%d,%d): %v", pred, lo, hi, err)
			}
			got, err := FilterRange(tb, pred, lo, hi)
			if err != nil {
				t.Fatalf("%s FilterRange[%d,%d): %v", pred, lo, hi, err)
			}
			if got == nil {
				t.Fatalf("%s FilterRange[%d,%d) returned nil; the contract requires explicit selections", pred, lo, hi)
			}
			if !sameSel(want, got) {
				t.Errorf("%s [%d,%d): range=%v sel-gather=%v", pred, lo, hi, got, want)
			}
			// Copy-free results are pool-owned; release like the engine does.
			vec.PutSel(got)
		}
	}
}

// sameSel compares selections by content, treating nil as empty on the
// sel-gather side (TruePred returns its input unchanged).
func sameSel(want, got vec.Sel) bool {
	if len(want) != len(got) {
		return false
	}
	for i := range want {
		if want[i] != got[i] {
			return false
		}
	}
	return true
}

// TestFilterRangeFallback exercises the non-RangeFilterer fallback of
// the package-level FilterRange helper.
type oddRows struct{}

func (oddRows) Filter(t *table.Table, sel vec.Sel) (vec.Sel, error) {
	return vec.SelectFunc(t.Len(), sel, func(i int32) bool { return i%2 == 1 }), nil
}
func (oddRows) Points() []Point { return nil }
func (oddRows) String() string  { return "odd(rowid)" }

func TestFilterRangeFallback(t *testing.T) {
	tb := rangeTestTable(t, 64)
	got, err := FilterRange(tb, oddRows{}, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := oddRows{}.Filter(tb, vec.NewSelRange(10, 20))
	if !sameSel(want, got) {
		t.Fatalf("fallback = %v, want %v", got, want)
	}
}

// TestBounds pins the necessary-interval reporting per predicate shape.
func TestBounds(t *testing.T) {
	if b := BoundsOf(Cmp{Op: vec.Eq, Left: ColRef{Name: "x"}, Right: 3}); len(b) != 1 || b[0].Lo != 3 || b[0].Hi != 3 {
		t.Fatalf("Eq bounds = %v", b)
	}
	if b := BoundsOf(Cmp{Op: vec.Ne, Left: ColRef{Name: "x"}, Right: 3}); b != nil {
		t.Fatalf("Ne bounds = %v, want none", b)
	}
	if b := BoundsOf(Between{Expr: ColRef{Name: "x"}, Lo: 1, Hi: 2}); len(b) != 1 || b[0].Lo != 1 || b[0].Hi != 2 {
		t.Fatalf("Between bounds = %v", b)
	}
	if b := BoundsOf(Cone{RaCol: "ra", DecCol: "dec", Dec0: 10, Radius: 3}); len(b) != 1 || b[0].Attr != "dec" || b[0].Lo != 7 || b[0].Hi != 13 {
		t.Fatalf("Cone bounds = %v", b)
	}
	and := And{
		L: Between{Expr: ColRef{Name: "x"}, Lo: 1, Hi: 2},
		R: Cmp{Op: vec.Gt, Left: ColRef{Name: "y"}, Right: 5},
	}
	if b := BoundsOf(and); len(b) != 2 {
		t.Fatalf("And bounds = %v", b)
	}
	or := Or{
		L: Between{Expr: ColRef{Name: "x"}, Lo: 1, Hi: 2},
		R: Between{Expr: ColRef{Name: "x"}, Lo: 8, Hi: 9},
	}
	if b := BoundsOf(or); len(b) != 1 || b[0].Lo != 1 || b[0].Hi != 9 {
		t.Fatalf("Or hull bounds = %v", b)
	}
	// One-sided Or: the y bound exists only on one branch → no bound.
	mixed := Or{
		L: Between{Expr: ColRef{Name: "x"}, Lo: 1, Hi: 2},
		R: Cmp{Op: vec.Gt, Left: ColRef{Name: "y"}, Right: 5},
	}
	if b := BoundsOf(mixed); b != nil {
		t.Fatalf("mixed Or bounds = %v, want none", b)
	}
	if b := BoundsOf(Not{P: and}); b != nil {
		t.Fatalf("Not bounds = %v, want none", b)
	}
	if b := BoundsOf(StrEq{Col: "type", Value: "GALAXY"}); b != nil {
		t.Fatalf("StrEq bounds = %v, want none", b)
	}
}
