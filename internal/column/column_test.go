package column

import (
	"testing"

	"sciborq/internal/vec"
)

func TestFloat64Col(t *testing.T) {
	c := NewFloat64("ra")
	for _, v := range []float64{1.5, 2.5, 3.5} {
		c.Append(v)
	}
	if c.Len() != 3 || c.Name() != "ra" || c.Type() != Float64 {
		t.Fatalf("basic accessors wrong: %d %q %v", c.Len(), c.Name(), c.Type())
	}
	if c.ValueString(1) != "2.5" {
		t.Fatalf("ValueString = %q", c.ValueString(1))
	}
	s := c.Slice(vec.Sel{0, 2}).(*Float64Col)
	if len(s.Data) != 2 || s.Data[0] != 1.5 || s.Data[1] != 3.5 {
		t.Fatalf("Slice = %v", s.Data)
	}
}

func TestInt64Col(t *testing.T) {
	c := NewInt64("objID")
	c.Append(10)
	c.Append(20)
	if c.Type() != Int64 || c.ValueString(0) != "10" {
		t.Fatalf("int col accessors wrong")
	}
	other := NewInt64From("x", []int64{30, 40})
	if err := c.AppendFrom(other, nil); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 4 || c.Data[3] != 40 {
		t.Fatalf("AppendFrom: %v", c.Data)
	}
}

func TestAppendFromWithSel(t *testing.T) {
	src := NewFloat64From("a", []float64{0, 1, 2, 3})
	dst := NewFloat64("a")
	if err := dst.AppendFrom(src, vec.Sel{1, 3}); err != nil {
		t.Fatal(err)
	}
	if len(dst.Data) != 2 || dst.Data[0] != 1 || dst.Data[1] != 3 {
		t.Fatalf("AppendFrom sel = %v", dst.Data)
	}
}

func TestAppendFromTypeMismatch(t *testing.T) {
	f := NewFloat64("a")
	i := NewInt64("a")
	if err := f.AppendFrom(i, nil); err == nil {
		t.Fatal("float <- int append did not error")
	}
	if err := i.AppendFrom(f, nil); err == nil {
		t.Fatal("int <- float append did not error")
	}
	b := NewBool("a")
	if err := b.AppendFrom(f, nil); err == nil {
		t.Fatal("bool <- float append did not error")
	}
	s := NewString("a")
	if err := s.AppendFrom(f, nil); err == nil {
		t.Fatal("string <- float append did not error")
	}
}

func TestBoolCol(t *testing.T) {
	c := NewBool("flag")
	c.Append(true)
	c.Append(false)
	if c.ValueString(0) != "true" || c.ValueString(1) != "false" {
		t.Fatalf("bool rendering wrong")
	}
	s := c.Slice(vec.Sel{1}).(*BoolCol)
	if len(s.Data) != 1 || s.Data[0] != false {
		t.Fatalf("bool slice = %v", s.Data)
	}
}

func TestStringColDictionary(t *testing.T) {
	c := NewString("type")
	for _, v := range []string{"GALAXY", "STAR", "GALAXY", "QSO", "GALAXY"} {
		c.Append(v)
	}
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.DictSize() != 3 {
		t.Fatalf("DictSize = %d, want 3", c.DictSize())
	}
	if c.Value(0) != "GALAXY" || c.Value(2) != "GALAXY" || c.Value(3) != "QSO" {
		t.Fatal("dictionary decoding wrong")
	}
	if c.Data[0] != c.Data[2] {
		t.Fatal("equal strings got different codes")
	}
	code, ok := c.Code("STAR")
	if !ok || c.dict[code] != "STAR" {
		t.Fatal("Code lookup failed")
	}
	if _, ok := c.Code("NEBULA"); ok {
		t.Fatal("Code found absent value")
	}
	// Word decodes a code back to its dictionary string — the once-per-
	// group decode of dict-coded grouping.
	for i := int32(0); i < int32(c.Len()); i++ {
		if c.Word(c.Data[i]) != c.Value(i) {
			t.Fatalf("Word(Data[%d]) != Value(%d)", i, i)
		}
	}
}

func TestStringColSliceRebuildsDict(t *testing.T) {
	c := NewString("type")
	for _, v := range []string{"A", "B", "C", "B"} {
		c.Append(v)
	}
	s := c.Slice(vec.Sel{1, 3}).(*StringCol)
	if s.Len() != 2 || s.Value(0) != "B" || s.Value(1) != "B" {
		t.Fatalf("slice values wrong")
	}
	if s.DictSize() != 1 {
		t.Fatalf("slice dict size = %d, want 1", s.DictSize())
	}
}

func TestNewFactory(t *testing.T) {
	for _, typ := range []Type{Float64, Int64, String, Bool} {
		c := New("c", typ)
		if c.Type() != typ {
			t.Fatalf("New(%v) produced %v", typ, c.Type())
		}
		if c.Len() != 0 {
			t.Fatalf("new column not empty")
		}
	}
}

func TestTypeString(t *testing.T) {
	want := map[Type]string{Float64: "DOUBLE", Int64: "BIGINT", String: "VARCHAR", Bool: "BOOLEAN"}
	for typ, s := range want {
		if typ.String() != s {
			t.Fatalf("Type(%d).String() = %q, want %q", typ, typ.String(), s)
		}
	}
	if Type(99).String() != "UNKNOWN" {
		t.Fatal("unknown type string wrong")
	}
}

func TestSliceNilSelCopies(t *testing.T) {
	c := NewFloat64From("a", []float64{1, 2})
	s := c.Slice(nil).(*Float64Col)
	s.Data[0] = 99
	if c.Data[0] == 99 {
		t.Fatal("Slice(nil) aliases the source data")
	}
}
