package column

// Zone maps: per-granule min/max summaries over the numeric column
// types, maintained incrementally on every append path. The scan
// engine consults them per morsel to skip granules that provably
// cannot satisfy a predicate's column bounds.
//
// NaN handling: the zone min/max comparisons ignore NaN values, so a
// granule's bounds describe only its non-NaN rows. That is safe for
// pruning because every predicate shape that reports bounds
// (=, <, <=, >, >=, BETWEEN, cone) evaluates to false on NaN — a
// pruned granule can only hide NaN rows that would not have matched
// anyway.

// ZoneRows is the zone-map granule: one min/max pair summarises this
// many consecutive rows. It matches the default morsel size of the
// executor, so in the common configuration one morsel consults exactly
// one granule; other morsel sizes combine the covering granules
// (conservative, still correct).
const ZoneRows = 64 * 1024

// zoneMapF64 is the incremental per-granule min/max state shared by
// the float64 and int64 columns (int64 granules are tracked in float64
// space; exact for |v| < 2^53, conservative beyond).
type zoneMapF64 struct {
	zmin []float64
	zmax []float64
}

// observe folds value v at row index i into its granule. A new granule
// opens only at its first row (i divisible by ZoneRows, with every
// earlier granule present): appending to a column whose earlier rows
// were never observed — a From-column wrapping existing data carries no
// zones by design — must NOT open a granule that silently omits those
// rows, or pruning would skip matching data. Such columns simply stay
// zone-less (bounds reports no coverage, scans run unpruned), which is
// conservative and correct.
func (z *zoneMapF64) observe(i int, v float64) {
	g := i / ZoneRows
	if g >= len(z.zmin) {
		if g > len(z.zmin) || i%ZoneRows != 0 {
			return // gap below i: zones cannot summarise it
		}
		z.zmin = append(z.zmin, v)
		z.zmax = append(z.zmax, v)
		return
	}
	if v < z.zmin[g] {
		z.zmin[g] = v
	}
	if v > z.zmax[g] {
		z.zmax[g] = v
	}
}

// bounds returns conservative min/max over rows [lo, hi): the combined
// bounds of every granule overlapping the window. ok is false when the
// window is empty or extends past the zone-mapped prefix (callers must
// then scan unconditionally).
func (z *zoneMapF64) bounds(lo, hi int) (mn, mx float64, ok bool) {
	if hi <= lo || lo < 0 {
		return 0, 0, false
	}
	g0, g1 := lo/ZoneRows, (hi-1)/ZoneRows
	if g1 >= len(z.zmin) {
		return 0, 0, false
	}
	mn, mx = z.zmin[g0], z.zmax[g0]
	for g := g0 + 1; g <= g1; g++ {
		if z.zmin[g] < mn {
			mn = z.zmin[g]
		}
		if z.zmax[g] > mx {
			mx = z.zmax[g]
		}
	}
	return mn, mx, true
}

// snapshot returns a value copy of the granule arrays. The last
// (partial) granule of a live column is updated in place by concurrent
// appends, so snapshots must not share the backing arrays.
func (z *zoneMapF64) snapshot(nRows int) zoneMapF64 {
	g := (nRows + ZoneRows - 1) / ZoneRows
	if g > len(z.zmin) {
		g = len(z.zmin)
	}
	return zoneMapF64{
		zmin: append([]float64(nil), z.zmin[:g]...),
		zmax: append([]float64(nil), z.zmax[:g]...),
	}
}

// rebuild recomputes granules for rows [from, len(data)) of a float64
// column; used by bulk appends and wrap-existing-data constructors.
func (z *zoneMapF64) rebuildF64(data []float64, from int) {
	for i := from; i < len(data); i++ {
		z.observe(i, data[i])
	}
}

// rebuildI64 is rebuildF64 for int64 data.
func (z *zoneMapF64) rebuildI64(data []int64, from int) {
	for i := from; i < len(data); i++ {
		z.observe(i, float64(data[i]))
	}
}

// ZoneBounds returns conservative min/max over rows [lo, hi) of the
// column. ok is false when the window has no zone coverage.
func (c *Float64Col) ZoneBounds(lo, hi int) (mn, mx float64, ok bool) {
	return c.zones.bounds(lo, hi)
}

// ZoneBounds returns conservative min/max (in float64 space) over rows
// [lo, hi) of the column. ok is false when the window has no zone
// coverage.
func (c *Int64Col) ZoneBounds(lo, hi int) (mn, mx float64, ok bool) {
	return c.zones.bounds(lo, hi)
}

// ZoneArrays returns copies of the per-granule min/max arrays — what
// the durable segment store persists in its manifest so reopening a
// sealed column never rescans the data.
func (c *Float64Col) ZoneArrays() (zmin, zmax []float64) {
	return append([]float64(nil), c.zones.zmin...), append([]float64(nil), c.zones.zmax...)
}

// ZoneArrays is Float64Col.ZoneArrays for BIGINT columns.
func (c *Int64Col) ZoneArrays() (zmin, zmax []float64) {
	return append([]float64(nil), c.zones.zmin...), append([]float64(nil), c.zones.zmax...)
}

// InstallZones replaces the column's zone map with persisted granule
// bounds (the manifest's record of a sealed prefix). The arrays are
// adopted, not copied; subsequent appends observe into them in place.
func (c *Float64Col) InstallZones(zmin, zmax []float64) {
	c.zones = zoneMapF64{zmin: zmin, zmax: zmax}
}

// InstallZones is Float64Col.InstallZones for BIGINT columns.
func (c *Int64Col) InstallZones(zmin, zmax []float64) {
	c.zones = zoneMapF64{zmin: zmin, zmax: zmax}
}

// ZoneMapped is implemented by columns that maintain per-granule
// min/max summaries; the engine's morsel pruning consults it.
type ZoneMapped interface {
	// ZoneBounds returns conservative min/max over rows [lo, hi);
	// ok is false when the window has no zone coverage.
	ZoneBounds(lo, hi int) (mn, mx float64, ok bool)
	// ZoneArrays returns copies of the raw per-granule min/max arrays.
	ZoneArrays() (zmin, zmax []float64)
}
