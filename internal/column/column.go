// Package column implements the typed columns of the SciBORQ storage
// layer: append-only, in-memory arrays with per-column summary statistics,
// mirroring the BAT (binary association table) layout of MonetDB that the
// paper builds on. Impressions sample at column granularity, so columns
// expose cheap positional access and bulk kernels via package vec.
package column

import (
	"fmt"

	"sciborq/internal/vec"
)

// Type enumerates the supported column types.
type Type int

// Supported column types.
const (
	Float64 Type = iota
	Int64
	String
	Bool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Float64:
		return "DOUBLE"
	case Int64:
		return "BIGINT"
	case String:
		return "VARCHAR"
	case Bool:
		return "BOOLEAN"
	}
	return "UNKNOWN"
}

// Column is the interface implemented by every typed column.
type Column interface {
	// Name returns the column name.
	Name() string
	// Type returns the column type.
	Type() Type
	// Len returns the number of rows.
	Len() int
	// ValueString renders row i for display.
	ValueString(i int32) string
	// AppendFrom appends the rows of src selected by sel. src must have
	// the same concrete type.
	AppendFrom(src Column, sel vec.Sel) error
	// Slice returns a column containing only the rows in sel (materialised).
	Slice(sel vec.Sel) Column
	// SnapshotView returns a read-only view of the first n rows sharing
	// the value storage but owning every header the appender mutates
	// (slice headers, zone-map granules, string dictionaries), so the
	// view stays race-free while the source column keeps appending.
	// Callers must not append to the view.
	SnapshotView(n int) Column
}

// Float64Col is a column of float64 values.
type Float64Col struct {
	name  string
	Data  []float64
	zones zoneMapF64
}

// NewFloat64 returns an empty float64 column.
func NewFloat64(name string) *Float64Col { return &Float64Col{name: name} }

// NewFloat64From returns a float64 column wrapping data (not copied).
// The wrapper carries no zone map: From-columns are transient chunks —
// appending one into a table (AppendFrom) observes the values into the
// destination's zones, and Slice builds zones on its output — so an
// eager build here would be a dead second pass.
func NewFloat64From(name string, data []float64) *Float64Col {
	return &Float64Col{name: name, Data: data}
}

// Name implements Column.
func (c *Float64Col) Name() string { return c.name }

// Type implements Column.
func (c *Float64Col) Type() Type { return Float64 }

// Len implements Column.
func (c *Float64Col) Len() int { return len(c.Data) }

// Append adds one value.
func (c *Float64Col) Append(v float64) {
	c.zones.observe(len(c.Data), v)
	c.Data = append(c.Data, v)
}

// ValueString implements Column.
func (c *Float64Col) ValueString(i int32) string { return fmt.Sprintf("%g", c.Data[i]) }

// AppendFrom implements Column.
func (c *Float64Col) AppendFrom(src Column, sel vec.Sel) error {
	s, ok := src.(*Float64Col)
	if !ok {
		return fmt.Errorf("column %q: cannot append %s into DOUBLE", c.name, src.Type())
	}
	before := len(c.Data)
	if sel == nil {
		c.Data = append(c.Data, s.Data...)
	} else {
		for _, i := range sel {
			c.Data = append(c.Data, s.Data[i])
		}
	}
	c.zones.rebuildF64(c.Data, before)
	return nil
}

// Slice implements Column. The output gets its own zone map: sliced
// columns become queryable tables (Project results, impression
// layers), where granule pruning pays off on every re-scan.
func (c *Float64Col) Slice(sel vec.Sel) Column {
	out := &Float64Col{name: c.name, Data: vec.GatherFloat64(c.Data, sel)}
	out.zones.rebuildF64(out.Data, 0)
	return out
}

// SnapshotView implements Column.
func (c *Float64Col) SnapshotView(n int) Column {
	return &Float64Col{name: c.name, Data: c.Data[:n:n], zones: c.zones.snapshot(n)}
}

// SetMapped replaces the column's storage with data — typically a
// file-backed (mmap) slice owned by the durable segment store — and
// observes rows [from, len(data)) into the zone map. Rows below from
// must already be covered (by InstallZones or an earlier SetMapped);
// the store extends a mapped column by handing the same mapping with a
// longer length and from = previous length.
func (c *Float64Col) SetMapped(data []float64, from int) {
	c.Data = data
	c.zones.rebuildF64(data, from)
}

// Int64Col is a column of int64 values.
type Int64Col struct {
	name  string
	Data  []int64
	zones zoneMapF64
}

// NewInt64 returns an empty int64 column.
func NewInt64(name string) *Int64Col { return &Int64Col{name: name} }

// NewInt64From returns an int64 column wrapping data (not copied).
// No zone map, as with NewFloat64From — the destination of AppendFrom
// or the output of Slice builds its own.
func NewInt64From(name string, data []int64) *Int64Col {
	return &Int64Col{name: name, Data: data}
}

// Name implements Column.
func (c *Int64Col) Name() string { return c.name }

// Type implements Column.
func (c *Int64Col) Type() Type { return Int64 }

// Len implements Column.
func (c *Int64Col) Len() int { return len(c.Data) }

// Append adds one value.
func (c *Int64Col) Append(v int64) {
	c.zones.observe(len(c.Data), float64(v))
	c.Data = append(c.Data, v)
}

// ValueString implements Column.
func (c *Int64Col) ValueString(i int32) string { return fmt.Sprintf("%d", c.Data[i]) }

// AppendFrom implements Column.
func (c *Int64Col) AppendFrom(src Column, sel vec.Sel) error {
	s, ok := src.(*Int64Col)
	if !ok {
		return fmt.Errorf("column %q: cannot append %s into BIGINT", c.name, src.Type())
	}
	before := len(c.Data)
	if sel == nil {
		c.Data = append(c.Data, s.Data...)
	} else {
		for _, i := range sel {
			c.Data = append(c.Data, s.Data[i])
		}
	}
	c.zones.rebuildI64(c.Data, before)
	return nil
}

// Slice implements Column; see Float64Col.Slice for the zone rebuild.
func (c *Int64Col) Slice(sel vec.Sel) Column {
	out := &Int64Col{name: c.name, Data: vec.GatherInt64(c.Data, sel)}
	out.zones.rebuildI64(out.Data, 0)
	return out
}

// SnapshotView implements Column.
func (c *Int64Col) SnapshotView(n int) Column {
	return &Int64Col{name: c.name, Data: c.Data[:n:n], zones: c.zones.snapshot(n)}
}

// SetMapped is Float64Col.SetMapped for BIGINT storage.
func (c *Int64Col) SetMapped(data []int64, from int) {
	c.Data = data
	c.zones.rebuildI64(data, from)
}

// BoolCol is a column of bool values.
type BoolCol struct {
	name string
	Data []bool
}

// NewBool returns an empty bool column.
func NewBool(name string) *BoolCol { return &BoolCol{name: name} }

// Name implements Column.
func (c *BoolCol) Name() string { return c.name }

// Type implements Column.
func (c *BoolCol) Type() Type { return Bool }

// Len implements Column.
func (c *BoolCol) Len() int { return len(c.Data) }

// Append adds one value.
func (c *BoolCol) Append(v bool) { c.Data = append(c.Data, v) }

// ValueString implements Column.
func (c *BoolCol) ValueString(i int32) string { return fmt.Sprintf("%t", c.Data[i]) }

// AppendFrom implements Column.
func (c *BoolCol) AppendFrom(src Column, sel vec.Sel) error {
	s, ok := src.(*BoolCol)
	if !ok {
		return fmt.Errorf("column %q: cannot append %s into BOOLEAN", c.name, src.Type())
	}
	if sel == nil {
		c.Data = append(c.Data, s.Data...)
		return nil
	}
	for _, i := range sel {
		c.Data = append(c.Data, s.Data[i])
	}
	return nil
}

// SnapshotView implements Column.
func (c *BoolCol) SnapshotView(n int) Column {
	return &BoolCol{name: c.name, Data: c.Data[:n:n]}
}

// SetMapped replaces the column's storage with a file-backed slice;
// BOOLEAN columns carry no zone map, so this is a header swap.
func (c *BoolCol) SetMapped(data []bool) { c.Data = data }

// Slice implements Column.
func (c *BoolCol) Slice(sel vec.Sel) Column {
	out := NewBool(c.name)
	if sel == nil {
		out.Data = append(out.Data, c.Data...)
		return out
	}
	out.Data = make([]bool, len(sel))
	for k, i := range sel {
		out.Data[k] = c.Data[i]
	}
	return out
}

// StringCol is a dictionary-encoded string column: values are stored once
// in a dictionary and rows hold int32 codes, the standard read-optimised
// column-store layout for low-cardinality strings (object types, flags).
type StringCol struct {
	name  string
	dict  []string
	codes map[string]int32
	Data  []int32 // per-row dictionary codes
}

// NewString returns an empty dictionary-encoded string column.
func NewString(name string) *StringCol {
	return &StringCol{name: name, codes: make(map[string]int32)}
}

// Name implements Column.
func (c *StringCol) Name() string { return c.name }

// Type implements Column.
func (c *StringCol) Type() Type { return String }

// Len implements Column.
func (c *StringCol) Len() int { return len(c.Data) }

// Append adds one value, interning it in the dictionary.
func (c *StringCol) Append(v string) {
	code, ok := c.codes[v]
	if !ok {
		code = int32(len(c.dict))
		c.dict = append(c.dict, v)
		c.codes[v] = code
	}
	c.Data = append(c.Data, code)
}

// Value returns the string at row i.
func (c *StringCol) Value(i int32) string { return c.dict[c.Data[i]] }

// Word returns the dictionary string for a code — the decode step of
// dict-coded grouping, paid once per group instead of once per row.
func (c *StringCol) Word(code int32) string { return c.dict[code] }

// Code returns the dictionary code for v and whether v is present.
func (c *StringCol) Code(v string) (int32, bool) {
	code, ok := c.codes[v]
	return code, ok
}

// DictSize returns the number of distinct values seen.
func (c *StringCol) DictSize() int { return len(c.dict) }

// ValueString implements Column.
func (c *StringCol) ValueString(i int32) string { return c.Value(i) }

// AppendFrom implements Column.
func (c *StringCol) AppendFrom(src Column, sel vec.Sel) error {
	s, ok := src.(*StringCol)
	if !ok {
		return fmt.Errorf("column %q: cannot append %s into VARCHAR", c.name, src.Type())
	}
	if sel == nil {
		for i := range s.Data {
			c.Append(s.Value(int32(i)))
		}
		return nil
	}
	for _, i := range sel {
		c.Append(s.Value(i))
	}
	return nil
}

// SnapshotView implements Column.
func (c *StringCol) SnapshotView(n int) Column {
	// Codes and the dictionary prefix are immutable once written; only
	// the dictionary map is mutated in place by future interning, so the
	// view clones it (dictionaries are low-cardinality by design).
	codes := make(map[string]int32, len(c.codes))
	for v, code := range c.codes {
		codes[v] = code
	}
	return &StringCol{
		name:  c.name,
		dict:  c.dict[:len(c.dict):len(c.dict)],
		codes: codes,
		Data:  c.Data[:n:n],
	}
}

// SetMappedCodes replaces the code storage with a file-backed slice.
// The dictionary is unchanged: the durable store restores it first with
// LoadDict, and the codes in the mapping were written against exactly
// that word order.
func (c *StringCol) SetMappedCodes(codes []int32) { c.Data = codes }

// LoadDict installs the dictionary words in code order, replacing any
// existing dictionary. Used by the durable store when reopening a
// VARCHAR column whose codes live in a mapped file.
func (c *StringCol) LoadDict(words []string) {
	c.dict = append(c.dict[:0], words...)
	c.codes = make(map[string]int32, len(words))
	for i, w := range words {
		c.codes[w] = int32(i)
	}
}

// Intern returns the dictionary code for v, adding it to the dictionary
// if absent — the code-assignment half of Append, without appending a
// row. The durable store interns batch values and writes the codes to
// the column's mapped file itself.
func (c *StringCol) Intern(v string) int32 {
	code, ok := c.codes[v]
	if !ok {
		code = int32(len(c.dict))
		c.dict = append(c.dict, v)
		c.codes[v] = code
	}
	return code
}

// Dict returns the dictionary words in code order (shared; callers
// must not mutate). The durable store persists the suffix added since
// the last seal.
func (c *StringCol) Dict() []string { return c.dict }

// Slice implements Column.
func (c *StringCol) Slice(sel vec.Sel) Column {
	out := NewString(c.name)
	// The slice rebuilds its own (possibly smaller) dictionary.
	if err := out.AppendFrom(c, sel); err != nil {
		panic(err) // same concrete type; cannot happen
	}
	return out
}

// New returns an empty column of the given type.
func New(name string, t Type) Column {
	switch t {
	case Float64:
		return NewFloat64(name)
	case Int64:
		return NewInt64(name)
	case String:
		return NewString(name)
	case Bool:
		return NewBool(name)
	}
	panic(fmt.Sprintf("column: unknown type %d", t))
}
