package column

import (
	"math"
	"testing"
)

// TestZoneMapObserveAndBounds exercises granule construction across
// the ZoneRows boundary and the conservative multi-granule combine.
func TestZoneMapObserveAndBounds(t *testing.T) {
	var z zoneMapF64
	n := 2*ZoneRows + 100 // two full granules plus a partial one
	for i := 0; i < n; i++ {
		z.observe(i, float64(i))
	}
	if len(z.zmin) != 3 {
		t.Fatalf("granules = %d, want 3", len(z.zmin))
	}
	mn, mx, ok := z.bounds(0, ZoneRows)
	if !ok || mn != 0 || mx != float64(ZoneRows-1) {
		t.Fatalf("granule 0 bounds = %v..%v ok=%v", mn, mx, ok)
	}
	// Sub-granule windows report the covering granule (conservative).
	mn, mx, ok = z.bounds(10, 20)
	if !ok || mn != 0 || mx != float64(ZoneRows-1) {
		t.Fatalf("sub-granule bounds = %v..%v ok=%v", mn, mx, ok)
	}
	// A window spanning granules combines them.
	mn, mx, ok = z.bounds(ZoneRows-1, ZoneRows+1)
	if !ok || mn != 0 || mx != float64(2*ZoneRows-1) {
		t.Fatalf("spanning bounds = %v..%v ok=%v", mn, mx, ok)
	}
	// Beyond the zone-mapped prefix: no coverage.
	if _, _, ok := z.bounds(0, n+ZoneRows); ok {
		t.Fatal("bounds past the mapped prefix reported ok")
	}
	if _, _, ok := z.bounds(5, 5); ok {
		t.Fatal("empty window reported ok")
	}
}

// TestZoneMapIgnoresNaN documents that NaN rows are invisible to the
// granule min/max — safe because every bounds-reporting predicate
// rejects NaN anyway.
func TestZoneMapIgnoresNaN(t *testing.T) {
	var z zoneMapF64
	z.observe(0, 1)
	z.observe(1, math.NaN())
	z.observe(2, 3)
	mn, mx, ok := z.bounds(0, 3)
	if !ok || mn != 1 || mx != 3 {
		t.Fatalf("bounds = %v..%v ok=%v", mn, mx, ok)
	}
}

// TestZoneMapAppendPaths checks that row-wise Append, bulk AppendFrom,
// and Slice all build identical granule state, while the transient
// wrap-constructor carries none (AppendFrom's destination builds its
// own — no double pass on ingest).
func TestZoneMapAppendPaths(t *testing.T) {
	n := ZoneRows + 50
	data := make([]float64, n)
	for i := range data {
		data[i] = float64((i * 7919) % 1000)
	}
	rowWise := NewFloat64("a")
	for _, v := range data {
		rowWise.Append(v)
	}
	wrapped := NewFloat64From("b", data)
	if _, _, ok := wrapped.ZoneBounds(0, n); ok {
		t.Fatal("wrap-constructor built a zone map; it should stay transient")
	}
	bulk := NewFloat64("c")
	if err := bulk.AppendFrom(wrapped, nil); err != nil {
		t.Fatal(err)
	}
	sliced := rowWise.Slice(nil).(*Float64Col)
	for g := 0; g < 2; g++ {
		lo, hi := g*ZoneRows, (g+1)*ZoneRows
		if hi > n {
			hi = n
		}
		rm, rx, rok := rowWise.ZoneBounds(lo, hi)
		bm, bx, bok := bulk.ZoneBounds(lo, hi)
		sm, sx, sok := sliced.ZoneBounds(lo, hi)
		if !rok || !bok || !sok {
			t.Fatalf("granule %d missing coverage: row=%v bulk=%v slice=%v", g, rok, bok, sok)
		}
		if rm != bm || rx != bx || rm != sm || rx != sx {
			t.Fatalf("granule %d diverges: row(%v,%v) bulk(%v,%v) slice(%v,%v)", g, rm, rx, bm, bx, sm, sx)
		}
	}
}

// TestZoneMapInt64 checks the int64 column tracks bounds in float64
// space.
func TestZoneMapInt64(t *testing.T) {
	c := NewInt64("id")
	for i := 0; i < 100; i++ {
		c.Append(int64(i - 50))
	}
	mn, mx, ok := c.ZoneBounds(0, 100)
	if !ok || mn != -50 || mx != 49 {
		t.Fatalf("bounds = %v..%v ok=%v", mn, mx, ok)
	}
}

// TestSnapshotViewZoneIndependence proves a snapshot's zone map is
// decoupled from the live column's in-place partial-granule updates.
func TestSnapshotViewZoneIndependence(t *testing.T) {
	c := NewFloat64("x")
	for i := 0; i < 100; i++ {
		c.Append(float64(i))
	}
	snap := c.SnapshotView(100).(*Float64Col)
	c.Append(1e9) // updates the live partial granule in place
	if _, mx, ok := snap.ZoneBounds(0, 100); !ok || mx != 99 {
		t.Fatalf("snapshot zone max = %v (ok=%v), want 99", mx, ok)
	}
	if _, mx, ok := c.ZoneBounds(0, 101); !ok || mx != 1e9 {
		t.Fatalf("live zone max = %v (ok=%v), want 1e9", mx, ok)
	}
	if snap.Len() != 100 {
		t.Fatalf("snapshot len = %d", snap.Len())
	}
}

// TestZoneMapFromColumnAppendStaysUncovered pins the append-after-wrap
// contract: a From-column carries no zones (by design), so appending to
// it must NOT open a granule that omits the wrapped rows — the column
// stays zone-less (no pruning) instead of pruning incorrectly.
func TestZoneMapFromColumnAppendStaysUncovered(t *testing.T) {
	data := make([]float64, 100)
	for i := range data {
		data[i] = float64(i)
	}
	c := NewFloat64From("x", data)
	c.Append(-1000) // row 100, mid-granule, earlier rows unobserved
	if _, _, ok := c.ZoneBounds(0, c.Len()); ok {
		t.Fatal("gapped zone map claims coverage over unobserved rows")
	}
	// The same through the bulk-append path.
	d2 := NewFloat64From("y", data)
	if err := d2.AppendFrom(c, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := d2.ZoneBounds(0, d2.Len()); ok {
		t.Fatal("bulk append onto a From-column claims zone coverage")
	}
	// A wrapped column spanning a full granule must not panic on append.
	big := NewInt64From("z", make([]int64, ZoneRows+100))
	big.Append(7)
	if _, _, ok := big.ZoneBounds(0, big.Len()); ok {
		t.Fatal("granule-spanning From-column claims zone coverage")
	}
	// Control: a From-column with zero wrapped rows builds zones
	// normally from the first append.
	fresh := NewFloat64From("w", nil)
	fresh.Append(3)
	if mn, mx, ok := fresh.ZoneBounds(0, 1); !ok || mn != 3 || mx != 3 {
		t.Fatalf("empty From-column zones = %v..%v ok=%v, want 3..3 true", mn, mx, ok)
	}
}
