// Package server exposes a sciborq.DB over HTTP/JSON as a long-running
// multi-tenant query service.
//
// Three layers sit between the socket and the engine:
//
//   - An Admission queue caps concurrent query execution (FIFO, bounded
//     wait queue, immediate 429 beyond that) and measures what it does:
//     its live in-flight count and queue-wait EWMA feed the bounded
//     executor's WITHIN TIME pricing via sciborq.DB.SetLoadProbe, so a
//     time promise made under load accounts for the load.
//   - Per-request contexts propagate cancellation: a client disconnect
//     or the server's MaxQueryTime deadline aborts the running morsel
//     scan cooperatively and frees the worker pool within one morsel
//     boundary.
//   - The request's tenant name selects a recycler partition, so one
//     tenant's scan cache cannot evict another's warm working set.
//
// Endpoints: POST /query executes one SQL statement, GET /stats reports
// admission/recycler/per-tenant counters, GET /healthz is a liveness
// probe. The wire protocol is documented in docs/SERVER.md.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sciborq"
	"sciborq/internal/engine"
	"sciborq/internal/faultinject"
	"sciborq/internal/governor"
	"sciborq/internal/plancache"
	"sciborq/internal/recycler"
)

// DefaultMaxRows caps how many result rows /query returns for exact
// projections; the response reports the untruncated count.
const DefaultMaxRows = 10_000

// Config configures a Server.
type Config struct {
	// DB is the shared database every request executes against.
	DB *sciborq.DB
	// MaxInFlight caps concurrently executing queries (default 2×
	// available parallelism via sciborq's ExecOptions is NOT assumed;
	// 0 means a default of 8).
	MaxInFlight int
	// MaxQueue caps queries waiting for a slot (default 4×MaxInFlight).
	MaxQueue int
	// MaxQueryTime bounds one query's execution wall-clock (admission
	// wait excluded); 0 disables the server-side deadline.
	MaxQueryTime time.Duration
	// MaxRows caps rows returned by exact queries (default
	// DefaultMaxRows).
	MaxRows int
}

// govCheckEvery rate-limits the serving loop's governor pressure
// checks: every Nth request runs a full usage recomputation (and any
// shedding it implies); every request reads the cached level for free.
const govCheckEvery = 16

// Server is the HTTP face of one sciborq.DB.
type Server struct {
	db      *sciborq.DB
	adm     *Admission
	maxTime time.Duration
	maxRows int
	started time.Time
	mu      sync.Mutex
	tenants map[string]*tenantCounters

	// Resilience counters: handlerPanics counts panics recovered by the
	// HTTP middleware (anything that unwound out of a handler);
	// queryPanics counts engine-side panics already converted to
	// per-query errors by the morsel guard. reqCount gates the periodic
	// governor check.
	handlerPanics atomic.Int64
	queryPanics   atomic.Int64
	reqCount      atomic.Int64
	panicMu       sync.Mutex
	lastPanic     string // value + first stack frames of the latest panic

	// wireStats, when set, snapshots the binary wire listener's counters
	// for the /stats "wire" section. The hook keeps the dependency
	// one-way: package wire imports server, never the reverse.
	wireStats atomic.Pointer[func() any]
}

// notePanic records the latest panic for /stats — the observable signal
// operators correlate a 500 spike against.
func (s *Server) notePanic(p any, stack []byte) {
	const maxStack = 2048
	if len(stack) > maxStack {
		stack = stack[:maxStack]
	}
	s.panicMu.Lock()
	s.lastPanic = fmt.Sprintf("%v\n%s", p, stack)
	s.panicMu.Unlock()
}

// RecordHandlerPanic counts a panic recovered by a transport front end
// (the HTTP middleware or the wire listener's per-request guard) and
// records it for /stats.
func (s *Server) RecordHandlerPanic(p any, stack []byte) {
	s.handlerPanics.Add(1)
	s.notePanic(p, stack)
}

// RecordQueryPanic counts an engine-side panic already converted to a
// per-query error by the morsel guard and records it for /stats.
func (s *Server) RecordQueryPanic(p any, stack []byte) {
	s.queryPanics.Add(1)
	s.notePanic(p, stack)
}

// tenantCounters accumulates per-tenant latency and outcome counts.
// Errors counts real execution failures only; client cancellations and
// server-side deadline hits get their own counters, so a disconnecting
// client can never inflate the server-fault rate operators alert on.
type tenantCounters struct {
	Queries  int64 `json:"queries"`
	Errors   int64 `json:"errors"`
	Canceled int64 `json:"canceled"`
	TimedOut int64 `json:"timed_out"`
	Bounded  int64 `json:"bounded"`
	BoundMet int64 `json:"bound_met"`
	TotalNs  int64 `json:"total_ns"`
	MaxNs    int64 `json:"max_ns"`
}

// New builds a Server over db and registers the admission queue as the
// database's load probe, so WITHIN TIME layer picks price in the
// server's live concurrency and queue wait.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 8
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.MaxRows <= 0 {
		cfg.MaxRows = DefaultMaxRows
	}
	s := &Server{
		db:      cfg.DB,
		adm:     NewAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		maxTime: cfg.MaxQueryTime,
		maxRows: cfg.MaxRows,
		started: time.Now(),
		tenants: map[string]*tenantCounters{},
	}
	cfg.DB.SetLoadProbe(s.adm.Load)
	return s, nil
}

// Handler returns the routed HTTP handler (also usable under httptest).
// Every route runs under the panic-isolation middleware: a panic that
// unwinds out of a handler becomes a 500 JSON error for that request
// alone — deferred cleanup (admission release, context cancel) has
// already run during the unwind, and the daemon keeps serving.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return s.recoverWrap(mux)
}

// recoverWrap is the outermost resilience layer: one panicking request
// must cost exactly one 500, never the process. The recover runs after
// the handler's own defers (admission slot release, context cancel), so
// no slot or scratch leaks on the way out. http.ErrAbortHandler keeps
// its net/http meaning (client gone; nothing to write).
func (s *Server) recoverWrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			s.RecordHandlerPanic(p, debug.Stack())
			writeError(w, http.StatusInternalServerError, "internal_panic",
				"request handler panicked; the query was aborted")
		}()
		next.ServeHTTP(w, r)
	})
}

// Drain stops admitting queries: queued waiters get 503, in-flight
// queries complete. The daemon calls it on SIGTERM before closing the
// listener.
func (s *Server) Drain() { s.adm.Drain() }

// Admission exposes the server's admission queue (read-mostly: stats
// and load probing).
func (s *Server) Admission() *Admission { return s.adm }

// SetWireStats registers a stats snapshot for the binary wire listener;
// the returned value appears verbatim as the /stats "wire" section.
func (s *Server) SetWireStats(fn func() any) { s.wireStats.Store(&fn) }

// GateMemory is the transport-independent memory-pressure gate shared
// by the HTTP handler and the wire listener. The per-request check is
// one atomic level read; every govCheckEvery-th request runs a full
// usage recomputation (which sheds). It reports whether the request
// must be refused (only at Critical — caches already shed, bounded
// queries already degraded) and the Retry-After hint to attach.
func (s *Server) GateMemory() (retryAfter time.Duration, refuse bool) {
	gov := s.db.Governor()
	if gov == nil {
		return 0, false
	}
	if s.reqCount.Add(1)%govCheckEvery == 0 {
		gov.CheckNow()
	}
	if gov.Level() == governor.Critical {
		return s.adm.RetryAfter(), true
	}
	return 0, false
}

// CheckSQL validates a statement through the DB's plan-cache-backed
// front end — the shared pre-admission check both transports run before
// spending an admission slot on a malformed statement.
func (s *Server) CheckSQL(sql string) error { return s.db.CheckSQL(sql) }

// NoteOutcome folds one query outcome into the tenant's counters; the
// wire listener calls it so /stats tenant accounting spans both
// transports.
func (s *Server) NoteOutcome(tenant string, res *sciborq.Result, err error, elapsed time.Duration) {
	s.note(tenant, res, err, elapsed)
}

// queryRequest is the POST /query body.
type queryRequest struct {
	SQL    string `json:"sql"`
	Tenant string `json:"tenant,omitempty"`
}

// estimateJSON is one aggregate estimate on the wire.
type estimateJSON struct {
	Name       string  `json:"name"`
	Value      float64 `json:"value"`
	HalfWidth  float64 `json:"half_width"`
	Confidence float64 `json:"confidence"`
	RelError   float64 `json:"rel_error"`
	Exact      bool    `json:"exact"`
	SampleRows int     `json:"sample_rows"`
}

// trailJSON is one escalation-ladder rung on the wire.
type trailJSON struct {
	Layer     string `json:"layer"`
	Rows      int    `json:"rows"`
	ElapsedNs int64  `json:"elapsed_ns"`
	Satisfied bool   `json:"satisfied"`
}

// boundedJSON is the bounded-answer half of a query response.
type boundedJSON struct {
	Layer      string         `json:"layer"`
	Exact      bool           `json:"exact"`
	BoundMet   bool           `json:"bound_met"`
	PromisedNs int64          `json:"promised_ns"`
	Estimates  []estimateJSON `json:"estimates"`
	Trail      []trailJSON    `json:"trail"`
}

// exactJSON is the exact-result half of a query response. Values are
// rendered as strings (the engine's canonical decimal formatting).
type exactJSON struct {
	Columns   []string   `json:"columns"`
	Rows      [][]string `json:"rows"`
	RowCount  int        `json:"row_count"`
	Truncated bool       `json:"truncated"`
}

// queryResponse is the POST /query success body.
type queryResponse struct {
	SQL       string       `json:"sql"`
	Tenant    string       `json:"tenant,omitempty"`
	ElapsedNs int64        `json:"elapsed_ns"`
	QueueNs   int64        `json:"queue_ns"`
	Bounded   *boundedJSON `json:"bounded,omitempty"`
	Exact     *exactJSON   `json:"exact,omitempty"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// statsResponse is the GET /stats body.
type statsResponse struct {
	UptimeNs   int64                     `json:"uptime_ns"`
	Admission  AdmissionStats            `json:"admission"`
	Resilience resilienceJSON            `json:"resilience"`
	Governor   *governorJSON             `json:"governor,omitempty"`
	Storage    *sciborq.StorageStats     `json:"storage,omitempty"`
	Wire       any                       `json:"wire,omitempty"`
	Recycler   map[string]recyclerJSON   `json:"recycler"`
	PlanCache  map[string]plancacheJSON  `json:"plancache"`
	Tenants    map[string]tenantCounters `json:"tenants"`
}

// resilienceJSON reports the panic-isolation counters: how many times
// the process would have died without the recover guards.
type resilienceJSON struct {
	// HandlerPanics counts panics recovered by the HTTP middleware.
	HandlerPanics int64 `json:"handler_panics"`
	// QueryPanics counts engine-side panics converted to per-query
	// errors by the morsel guard.
	QueryPanics int64 `json:"query_panics"`
	// LastPanic is the most recent panic value and truncated stack.
	LastPanic string `json:"last_panic,omitempty"`
	// FaultsArmed reports whether a fault-injection plan is active
	// (true only under test/chaos harnesses, never in production).
	FaultsArmed bool `json:"faults_armed,omitempty"`
}

// governorJSON is governor.Stats on the wire.
type governorJSON struct {
	Budget     int64            `json:"budget_bytes"`
	Usage      int64            `json:"usage_bytes"`
	Level      string           `json:"level"`
	Forced     bool             `json:"forced,omitempty"`
	Sheds      int64            `json:"sheds"`
	ShedBytes  int64            `json:"shed_bytes"`
	TierUsages map[string]int64 `json:"tier_usages"`
}

// recyclerJSON is recycler.Stats on the wire.
type recyclerJSON struct {
	Hits             int64   `json:"hits"`
	SubsumedHits     int64   `json:"subsumed_hits"`
	Misses           int64   `json:"misses"`
	Evictions        int64   `json:"evictions"`
	AdmissionRejects int64   `json:"admission_rejects"`
	Entries          int     `json:"entries"`
	Bytes            int64   `json:"bytes"`
	Budget           int64   `json:"budget"`
	HitRate          float64 `json:"hit_rate"`
}

func toRecyclerJSON(st recycler.Stats) recyclerJSON {
	return recyclerJSON{
		Hits:             st.Hits,
		SubsumedHits:     st.SubsumedHits,
		Misses:           st.Misses,
		Evictions:        st.Evictions,
		AdmissionRejects: st.AdmissionRejects,
		Entries:          st.Entries,
		Bytes:            st.Bytes,
		Budget:           st.Budget,
		HitRate:          st.HitRate(),
	}
}

// plancacheJSON is plancache.Stats on the wire. Residency fields
// (entries/bytes/budget/evictions) are cache-wide and reported only on
// the "total" entry; per-tenant entries carry the counters.
type plancacheJSON struct {
	Hits          int64   `json:"hits"`
	CanonHits     int64   `json:"canon_hits"`
	ShapeHits     int64   `json:"shape_hits"`
	Misses        int64   `json:"misses"`
	Invalidations int64   `json:"invalidations"`
	Evictions     int64   `json:"evictions,omitempty"`
	Entries       int     `json:"entries,omitempty"`
	Bytes         int64   `json:"bytes,omitempty"`
	Budget        int64   `json:"budget,omitempty"`
	ShapeEntries  int     `json:"shape_entries,omitempty"`
	ShapeBytes    int64   `json:"shape_bytes,omitempty"`
	ShapeBudget   int64   `json:"shape_budget,omitempty"`
	ShapeEvicts   int64   `json:"shape_evictions,omitempty"`
	HitRate       float64 `json:"hit_rate"`
}

func toPlancacheJSON(st plancache.Stats) plancacheJSON {
	return plancacheJSON{
		Hits:          st.Hits,
		CanonHits:     st.CanonHits,
		ShapeHits:     st.ShapeHits,
		Misses:        st.Misses,
		Invalidations: st.Invalidations,
		Evictions:     st.Evictions,
		Entries:       st.Entries,
		Bytes:         st.Bytes,
		Budget:        st.Budget,
		ShapeEntries:  st.ShapeEntries,
		ShapeBytes:    st.ShapeBytes,
		ShapeBudget:   st.ShapeBudget,
		ShapeEvicts:   st.ShapeEvictions,
		HitRate:       st.HitRate(),
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the connection may be gone; nothing to do
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorResponse{Error: errorBody{Code: code, Message: msg}})
}

// writeErrorRetry is writeError with a Retry-After header — every 429
// and load-shedding 503 carries one, derived from the admission queue's
// observed wait EWMA so the hint tracks real queue behaviour.
func writeErrorRetry(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeError(w, status, code, msg)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	rec := map[string]recyclerJSON{}
	for tenant, st := range s.db.TenantRecyclerStats() {
		if tenant == "" {
			tenant = "default"
		}
		rec[tenant] = toRecyclerJSON(st)
	}
	pc := map[string]plancacheJSON{}
	for tenant, st := range s.db.TenantPlanCacheStats() {
		if tenant == "" {
			tenant = "default"
		}
		pc[tenant] = toPlancacheJSON(st)
	}
	if agg := s.db.PlanCacheStats(); agg != (plancache.Stats{}) {
		pc["total"] = toPlancacheJSON(agg)
	}
	s.mu.Lock()
	tenants := make(map[string]tenantCounters, len(s.tenants))
	for name, tc := range s.tenants {
		tenants[name] = *tc
	}
	s.mu.Unlock()
	s.panicMu.Lock()
	lastPanic := s.lastPanic
	s.panicMu.Unlock()
	resp := statsResponse{
		UptimeNs:  time.Since(s.started).Nanoseconds(),
		Admission: s.adm.Stats(),
		Resilience: resilienceJSON{
			HandlerPanics: s.handlerPanics.Load(),
			QueryPanics:   s.queryPanics.Load(),
			LastPanic:     lastPanic,
			FaultsArmed:   faultinject.Enabled(),
		},
		Recycler:  rec,
		PlanCache: pc,
		Tenants:   tenants,
	}
	if gov := s.db.Governor(); gov != nil {
		gov.CheckNow() // /stats is a natural pressure checkpoint
		gs := gov.Stats()
		resp.Governor = &governorJSON{
			Budget:     gs.Budget,
			Usage:      gs.Usage,
			Level:      gs.Level,
			Forced:     gs.Forced,
			Sheds:      gs.Sheds,
			ShedBytes:  gs.ShedBytes,
			TierUsages: gs.TierUsages,
		}
	}
	resp.Storage = s.db.StorageStats()
	if fn := s.wireStats.Load(); fn != nil {
		resp.Wire = (*fn)()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST")
		return
	}
	var req queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
		return
	}
	// Decode stops at the end of the first JSON document, so without an
	// explicit EOF check a body like {"sql":"..."}{"sql":"..."} would be
	// silently half-read — accepted as the first statement with the rest
	// discarded. Require exactly one document.
	var extra json.RawMessage
	if err := dec.Decode(&extra); !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, "bad_request",
			"request body must be exactly one JSON document")
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, http.StatusBadRequest, "bad_request", `missing "sql" field`)
		return
	}
	// Reject malformed SQL before spending an admission slot on it.
	// CheckSQL consults the plan cache first, so the hot serving path
	// (a cached statement spelling) validates without parsing at all.
	if err := s.db.CheckSQL(req.SQL); err != nil {
		writeError(w, http.StatusBadRequest, "parse_error", err.Error())
		return
	}

	// Memory-pressure gate, shared with the wire listener: quality
	// degrades (caches shed, bounded picks shrink) before availability
	// does, and only Critical refuses work.
	if retry, refuse := s.GateMemory(); refuse {
		writeErrorRetry(w, http.StatusServiceUnavailable, "memory_pressure",
			"server is under memory pressure; retry shortly", retry)
		return
	}

	release, queued, err := s.adm.Acquire(r.Context())
	if err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			writeErrorRetry(w, http.StatusTooManyRequests, "overloaded", err.Error(), s.adm.RetryAfter())
		case errors.Is(err, ErrDraining):
			writeErrorRetry(w, http.StatusServiceUnavailable, "draining", err.Error(), s.adm.RetryAfter())
		default:
			// The client gave up while queued (or an injected admission
			// fault); the status is cosmetic.
			writeErrorRetry(w, http.StatusServiceUnavailable, "canceled", err.Error(), s.adm.RetryAfter())
		}
		return
	}
	defer release()

	// The query fault point fires with the slot held and its release
	// deferred: an injected panic here unwinds through release into the
	// recover middleware — the exact path a real handler bug would take,
	// and the regression proof that a panic cannot leak a slot.
	if err := faultinject.Fire(faultinject.PointQuery); err != nil {
		writeError(w, http.StatusInternalServerError, "injected_fault", err.Error())
		return
	}

	ctx := r.Context()
	if s.maxTime > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.maxTime)
		defer cancel()
	}

	start := time.Now()
	res, err := s.db.ExecTenant(ctx, req.Tenant, req.SQL)
	elapsed := time.Since(start)
	s.note(req.Tenant, res, err, elapsed)
	if err != nil {
		var pe *engine.PanicError
		switch {
		case errors.As(err, &pe):
			// A morsel worker panicked; the engine's recover guard
			// confined it to this query. 500 for this request alone —
			// the daemon keeps serving.
			s.RecordQueryPanic(pe.Value, pe.Stack)
			writeError(w, http.StatusInternalServerError, "query_panic",
				"a query worker panicked; the query was aborted")
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "timeout", "query exceeded the server's max query time")
		case errors.Is(err, context.Canceled):
			writeError(w, http.StatusServiceUnavailable, "canceled", "query canceled by client")
		default:
			writeError(w, http.StatusUnprocessableEntity, "exec_error", err.Error())
		}
		return
	}

	resp := queryResponse{
		SQL:       req.SQL,
		Tenant:    req.Tenant,
		ElapsedNs: elapsed.Nanoseconds(),
		QueueNs:   queued.Nanoseconds(),
	}
	if ans := res.Bounded; ans != nil {
		b := &boundedJSON{
			Layer:      ans.Layer,
			Exact:      ans.Exact,
			BoundMet:   ans.BoundMet,
			PromisedNs: ans.Promised.Nanoseconds(),
			Estimates:  make([]estimateJSON, 0, len(ans.Estimates)),
			Trail:      make([]trailJSON, 0, len(ans.Trail)),
		}
		for _, e := range ans.Estimates {
			b.Estimates = append(b.Estimates, estimateJSON{
				Name:       e.Spec.Name(),
				Value:      e.Value(),
				HalfWidth:  e.Interval.HalfWidth,
				Confidence: e.Interval.Level,
				RelError:   e.RelError(),
				Exact:      e.Exact,
				SampleRows: e.SampleRows,
			})
		}
		for _, step := range ans.Trail {
			b.Trail = append(b.Trail, trailJSON{
				Layer:     step.Layer,
				Rows:      step.Rows,
				ElapsedNs: step.Elapsed.Nanoseconds(),
				Satisfied: step.Satisfied,
			})
		}
		resp.Bounded = b
	} else if res.Rows != nil {
		n := res.Rows.Len()
		show := n
		if show > s.maxRows {
			show = s.maxRows
		}
		// RowStrings takes an int32 row index; a MaxRows configured past
		// 2^31 over a giant result would otherwise wrap the cast below
		// into a negative index panic (or worse, silently alias row 0).
		if show > math.MaxInt32 {
			show = math.MaxInt32
		}
		ex := &exactJSON{
			Columns:   res.Rows.Table.Schema().Names(),
			Rows:      make([][]string, 0, show),
			RowCount:  n,
			Truncated: show < n,
		}
		for i := 0; i < show; i++ {
			ex.Rows = append(ex.Rows, res.Rows.Table.RowStrings(int32(i)))
		}
		resp.Exact = ex
	}
	writeJSON(w, http.StatusOK, resp)
}

// note folds one query outcome into the tenant's counters. Context
// outcomes are not server faults: a client that disconnected counts as
// Canceled and a server-deadline hit as TimedOut, so the Errors rate in
// /stats tracks real execution failures only.
func (s *Server) note(tenant string, res *sciborq.Result, err error, elapsed time.Duration) {
	if tenant == "" {
		tenant = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tc := s.tenants[tenant]
	if tc == nil {
		tc = &tenantCounters{}
		s.tenants[tenant] = tc
	}
	tc.Queries++
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled):
			tc.Canceled++
		case errors.Is(err, context.DeadlineExceeded):
			tc.TimedOut++
		default:
			tc.Errors++
		}
		return
	}
	ns := elapsed.Nanoseconds()
	tc.TotalNs += ns
	if ns > tc.MaxNs {
		tc.MaxNs = ns
	}
	if res != nil && res.Bounded != nil {
		tc.Bounded++
		if res.Bounded.BoundMet {
			tc.BoundMet++
		}
	}
}
