package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// TestAdmissionZeroCapacityRejects: a drained server admits nothing.
func TestAdmissionZeroCapacityRejects(t *testing.T) {
	a := NewAdmission(0, 10)
	if _, _, err := a.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("zero capacity must reject, got %v", err)
	}
	if st := a.Stats(); st.Rejected != 1 || st.Admitted != 0 {
		t.Fatalf("stats must count the rejection: %+v", st)
	}
}

// TestAdmissionCapEnforced: in-flight never exceeds MaxInFlight, the
// queue never exceeds MaxQueue, and overflow is rejected immediately.
func TestAdmissionCapEnforced(t *testing.T) {
	a := NewAdmission(2, 1)
	rel1, _, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, _, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.InFlight != 2 {
		t.Fatalf("want 2 in flight, got %+v", st)
	}
	admitted := make(chan struct{})
	go func() {
		rel3, _, err := a.Acquire(context.Background())
		if err != nil {
			t.Error(err)
			return
		}
		close(admitted)
		rel3()
	}()
	waitFor(t, func() bool { return a.Stats().Queued == 1 })
	if _, _, err := a.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue must reject, got %v", err)
	}
	rel1()
	<-admitted
	rel2()
	waitFor(t, func() bool { return a.Stats().InFlight == 0 })
	if st := a.Stats(); st.Admitted != 3 || st.Rejected != 1 {
		t.Fatalf("unexpected lifetime counters: %+v", st)
	}
}

// TestAdmissionFIFOOrder: queued waiters wake in arrival order.
func TestAdmissionFIFOOrder(t *testing.T) {
	a := NewAdmission(1, 8)
	hold, _, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 3)
	for i := 0; i < 3; i++ {
		i := i
		queued := a.Stats().Queued
		go func() {
			rel, _, err := a.Acquire(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			order <- i
			rel()
		}()
		// Enqueue deterministically: wait for this waiter to land in the
		// queue before launching the next one.
		waitFor(t, func() bool { return a.Stats().Queued == queued+1 })
	}
	hold()
	for want := 0; want < 3; want++ {
		if got := <-order; got != want {
			t.Fatalf("FIFO violated: waiter %d woke before waiter %d", got, want)
		}
	}
}

// TestAdmissionCancelWhileQueued: a waiter that gives up leaves the
// queue without consuming a slot.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := NewAdmission(1, 4)
	hold, _, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, _, err := a.Acquire(ctx)
		got <- err
	}()
	waitFor(t, func() bool { return a.Stats().Queued == 1 })
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	waitFor(t, func() bool { return a.Stats().Queued == 0 })
	hold()
	waitFor(t, func() bool { return a.Stats().InFlight == 0 })
	if st := a.Stats(); st.Canceled != 1 {
		t.Fatalf("cancellation must be counted: %+v", st)
	}
}

// TestAdmissionWaitEWMAMonotone: feeding increasing waits drives the
// reported queue-wait EWMA (and the load probe) monotonically upward.
func TestAdmissionWaitEWMAMonotone(t *testing.T) {
	a := NewAdmission(1, 1)
	var prev time.Duration
	for i := 1; i <= 5; i++ {
		a.mu.Lock()
		a.noteWaitLocked(time.Duration(i) * 10 * time.Millisecond)
		a.mu.Unlock()
		cur := a.Load().QueueWait
		if cur <= prev {
			t.Fatalf("EWMA must grow with growing waits: step %d got %v after %v", i, cur, prev)
		}
		prev = cur
	}
	if a.Load().InFlight != 0 {
		t.Fatalf("no query is running, InFlight must be 0")
	}
}

// TestAdmissionConcurrentStress: under churn the in-flight invariant
// holds and no slot leaks (run with -race).
func TestAdmissionConcurrentStress(t *testing.T) {
	const cap = 4
	a := NewAdmission(cap, 64)
	var running, peak int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rel, _, err := a.Acquire(context.Background())
				if err != nil {
					t.Error(err)
					return
				}
				n := atomic.AddInt64(&running, 1)
				for {
					p := atomic.LoadInt64(&peak)
					if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
						break
					}
				}
				atomic.AddInt64(&running, -1)
				rel()
				rel() // double release must be harmless
			}
		}()
	}
	wg.Wait()
	if p := atomic.LoadInt64(&peak); p > cap {
		t.Fatalf("in-flight invariant violated: peak %d > cap %d", p, cap)
	}
	waitFor(t, func() bool { return a.Stats().InFlight == 0 })
	if st := a.Stats(); st.Queued != 0 {
		t.Fatalf("queue must drain: %+v", st)
	}
}
