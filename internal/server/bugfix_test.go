package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"sciborq"
	"sciborq/internal/column"
	"sciborq/internal/engine"
	"sciborq/internal/faultinject"
	"sciborq/internal/table"
)

// TestQueryRejectsTrailingGarbage: the request body must be exactly one
// JSON document. Concatenated documents or trailing garbage used to be
// silently ignored — an easy way for a proxy-mangled or misframed client
// to execute the wrong half of its request.
func TestQueryRejectsTrailingGarbage(t *testing.T) {
	db, _ := newTestDB(t, 1)
	_, ts := newTestServer(t, db, Config{MaxInFlight: 2})

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var bad errorResponse
		_ = json.Unmarshal(raw, &bad)
		return resp.StatusCode, bad.Error.Code
	}

	good := `{"sql": "SELECT COUNT(*) AS n FROM PhotoObjAll"}`
	if status, _ := post(good); status != http.StatusOK {
		t.Fatalf("clean body: status %d, want 200", status)
	}
	// Trailing whitespace is not garbage.
	if status, _ := post(good + "\n  \t\n"); status != http.StatusOK {
		t.Fatalf("trailing whitespace: status %d, want 200", status)
	}
	for _, body := range []string{
		good + good,                    // two concatenated documents
		good + `{"sql": "DROP EVERY"}`, // second doc never executed
		good + "garbage",               // raw trailing bytes
		good + `["extra"]`,             // trailing array
	} {
		status, code := post(body)
		if status != http.StatusBadRequest || code != "bad_request" {
			t.Fatalf("body %q: status %d code %q, want 400 bad_request", body, status, code)
		}
	}
}

// TestOutcomeClassification: client cancellations and server-side
// deadline hits land in their own per-tenant counters, not Errors — a
// disconnecting client must not inflate the fault rate operators alert
// on.
func TestOutcomeClassification(t *testing.T) {
	// One worker over tiny morsels: the injected morsel latency is
	// followed by another morsel pull, where the cooperative deadline
	// check actually runs. The default one-morsel-per-table layout would
	// finish the scan before ever re-checking the context.
	x := column.NewFloat64("x")
	for i := 0; i < 4000; i++ {
		x.Append(float64(i))
	}
	tb, err := table.New("T", table.Schema{{Name: "x", Type: column.Float64}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AppendColumns([]column.Column{x}); err != nil {
		t.Fatal(err)
	}
	db := sciborq.Open(sciborq.WithExecOptions(engine.ExecOptions{Parallelism: 1, MorselRows: 256}))
	if err := db.AttachTable(tb); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, db, Config{MaxInFlight: 2, MaxQueryTime: 50 * time.Millisecond})

	// Query 1 stalls 400ms inside execution (first morsel), blowing the
	// server's 50ms deadline; query 2 stalls 400ms at the query point
	// (before the deadline clock starts) and its client hangs up at 50ms.
	faultinject.Enable(faultinject.NewPlan(
		faultinject.Fault{Point: faultinject.PointMorsel, Hit: 1,
			Kind: faultinject.KindLatency, Latency: 400 * time.Millisecond},
		faultinject.Fault{Point: faultinject.PointQuery, Hit: 2,
			Kind: faultinject.KindLatency, Latency: 400 * time.Millisecond},
	))
	defer faultinject.Disable()

	// The predicate forces a real scan: a bare COUNT(*) short-circuits
	// without pulling morsels, and the morsel fault (and the cooperative
	// deadline check at the next morsel boundary) would never run.
	const sql = `{"sql": "SELECT COUNT(*) AS n FROM T WHERE x > -1", "tenant": "carol"}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(sql))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var bad errorResponse
	_ = json.Unmarshal(raw, &bad)
	if resp.StatusCode != http.StatusGatewayTimeout || bad.Error.Code != "timeout" {
		t.Fatalf("deadline query: status %d code %q, want 504 timeout", resp.StatusCode, bad.Error.Code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query",
		bytes.NewReader([]byte(sql)))
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("canceled request unexpectedly completed")
	}

	// The canceled handler may still be unwinding; poll for the counter.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := getStats(t, ts.URL)
		carol := st.Tenants["carol"]
		if carol.Canceled == 1 && carol.TimedOut == 1 {
			if carol.Errors != 0 {
				t.Fatalf("cancel/timeout counted as errors: %+v", carol)
			}
			if carol.Queries != 2 {
				t.Fatalf("want 2 queries counted, got %+v", carol)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("counters never settled: %+v", carol)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMaxRowsBoundary: a result of exactly MaxRows rows ships complete
// with Truncated false — the off-by-one the int32 cast guard sits next
// to — and one fewer budget row truncates honestly.
func TestMaxRowsBoundary(t *testing.T) {
	const rows = 50
	x := column.NewFloat64("x")
	for i := 0; i < rows; i++ {
		x.Append(float64(i))
	}
	tb, err := table.New("T", table.Schema{{Name: "x", Type: column.Float64}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AppendColumns([]column.Column{x}); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		maxRows   int
		want      int
		truncated bool
	}{
		{maxRows: rows, want: rows, truncated: false},
		{maxRows: rows - 1, want: rows - 1, truncated: true},
	} {
		db := sciborq.Open()
		if err := db.AttachTable(tb); err != nil {
			t.Fatal(err)
		}
		_, ts := newTestServer(t, db, Config{MaxInFlight: 2, MaxRows: tc.maxRows})
		status, ok, _ := postQuery(t, ts.URL, "SELECT x FROM T", "")
		if status != http.StatusOK || ok.Exact == nil {
			t.Fatalf("maxRows=%d: status %d", tc.maxRows, status)
		}
		if len(ok.Exact.Rows) != tc.want || ok.Exact.RowCount != rows ||
			ok.Exact.Truncated != tc.truncated {
			t.Fatalf("maxRows=%d: %d rows shipped of %d, truncated=%t; want %d/%d truncated=%t",
				tc.maxRows, len(ok.Exact.Rows), ok.Exact.RowCount, ok.Exact.Truncated,
				tc.want, rows, tc.truncated)
		}
	}
}
