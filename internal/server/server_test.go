package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sciborq"
	"sciborq/internal/engine"
	"sciborq/internal/skyserver"
)

const (
	testTable = "PhotoObjAll"
	batchRows = 8000
)

// newTestDB builds a DB with SkyServer synthetic data, a focused
// workload, and a two-layer impression hierarchy — the smallest setup
// on which bounded, exact, and load paths are all exercisable.
func newTestDB(t *testing.T, nights int) (*sciborq.DB, *skyserver.Database) {
	t.Helper()
	db := sciborq.Open(
		sciborq.WithCostModel(engine.CostModel{NsPerRow: 12, FixedNs: 2000}),
		sciborq.WithSeed(99),
	)
	cfg := skyserver.DefaultConfig(0)
	sky, err := skyserver.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fact, err := sky.Catalog.Get(testTable)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachTable(fact); err != nil {
		t.Fatal(err)
	}
	if err := db.TrackWorkload(testTable,
		sciborq.Attr{Name: "ra", Min: cfg.RaMin, Max: cfg.RaMax, Beta: 30},
		sciborq.Attr{Name: "dec", Min: cfg.DecMin, Max: cfg.DecMax, Beta: 30},
	); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildImpressions(testTable, sciborq.ImpressionConfig{
		Sizes:  []int{4000, 400},
		Policy: sciborq.Biased,
		Attrs:  []string{"ra", "dec"},
	}); err != nil {
		t.Fatal(err)
	}
	gen := sky.Generator(nil)
	for night := 0; night < nights; night++ {
		if err := db.Load(testTable, gen.NextBatch(batchRows)); err != nil {
			t.Fatal(err)
		}
	}
	return db, sky
}

func newTestServer(t *testing.T, db *sciborq.DB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.DB = db
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postQuery runs one query and decodes the response; status is returned
// so error paths can assert on it.
func postQuery(t *testing.T, base, sql, tenant string) (int, queryResponse, errorResponse) {
	t.Helper()
	body, _ := json.Marshal(queryRequest{SQL: sql, Tenant: tenant})
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var ok queryResponse
	var bad errorResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &ok); err != nil {
			t.Fatalf("bad 200 body %s: %v", raw, err)
		}
	} else if err := json.Unmarshal(raw, &bad); err != nil {
		t.Fatalf("bad error body %s: %v", raw, err)
	}
	return resp.StatusCode, ok, bad
}

// TestServerEndpoints: the whole wire protocol — exact, bounded, stats,
// health, and every documented error shape.
func TestServerEndpoints(t *testing.T) {
	db, _ := newTestDB(t, 2)
	_, ts := newTestServer(t, db, Config{MaxInFlight: 4})

	// Exact aggregate.
	status, ok, _ := postQuery(t, ts.URL, "SELECT COUNT(*) AS n FROM PhotoObjAll", "")
	if status != http.StatusOK || ok.Exact == nil {
		t.Fatalf("exact query failed: status %d resp %+v", status, ok)
	}
	if ok.Exact.Columns[0] != "n" || ok.Exact.Rows[0][0] != "16000" {
		t.Fatalf("unexpected exact result: %+v", ok.Exact)
	}

	// Bounded aggregate: estimates + trail on the wire.
	status, ok, _ = postQuery(t, ts.URL,
		"SELECT COUNT(*) AS n FROM PhotoObjAll WHERE fGetNearbyObjEq(165, 20, 3) WITHIN ERROR 0.2 CONFIDENCE 0.95", "")
	if status != http.StatusOK || ok.Bounded == nil {
		t.Fatalf("bounded query failed: status %d resp %+v", status, ok)
	}
	if len(ok.Bounded.Estimates) != 1 || ok.Bounded.Estimates[0].Name != "n" {
		t.Fatalf("bounded estimates malformed: %+v", ok.Bounded)
	}
	if len(ok.Bounded.Trail) == 0 {
		t.Fatal("bounded answer must carry its escalation trail")
	}

	// Tenant routing: the tenant's partition shows up in /stats.
	if status, _, _ = postQuery(t, ts.URL,
		"SELECT AVG(ra) AS a FROM PhotoObjAll WHERE ra BETWEEN 150 AND 170", "alice"); status != http.StatusOK {
		t.Fatalf("tenant query failed: %d", status)
	}

	// Errors.
	if status, _, bad := postQuery(t, ts.URL, "SELEKT nonsense", ""); status != http.StatusBadRequest || bad.Error.Code != "parse_error" {
		t.Fatalf("want 400 parse_error, got %d %+v", status, bad)
	}
	if status, _, bad := postQuery(t, ts.URL, "   ", ""); status != http.StatusBadRequest || bad.Error.Code != "bad_request" {
		t.Fatalf("want 400 bad_request, got %d %+v", status, bad)
	}
	if status, _, bad := postQuery(t, ts.URL, "SELECT COUNT(*) FROM NoSuchTable", ""); status != http.StatusUnprocessableEntity || bad.Error.Code != "exec_error" {
		t.Fatalf("want 422 exec_error, got %d %+v", status, bad)
	}
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query must 405, got %d", resp.StatusCode)
	}

	// Health.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Stats: well-formed JSON carrying admission, recycler partitions,
	// and per-tenant latency counters.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.UptimeNs <= 0 || st.Admission.MaxInFlight != 4 {
		t.Fatalf("stats malformed: %+v", st)
	}
	if st.Admission.Admitted < 4 {
		t.Fatalf("admission must count the admitted queries: %+v", st.Admission)
	}
	if _, okDef := st.Recycler["default"]; !okDef {
		t.Fatalf("default recycler partition missing: %+v", st.Recycler)
	}
	if _, okT := st.Recycler["alice"]; !okT {
		t.Fatalf("tenant recycler partition missing: %+v", st.Recycler)
	}
	alice, okT := st.Tenants["alice"]
	if !okT || alice.Queries != 1 || alice.TotalNs <= 0 {
		t.Fatalf("per-tenant latency counters missing: %+v", st.Tenants)
	}
}

// TestServerConcurrentClientsDuringLoads: N clients fire bounded and
// unbounded queries while batches land; every exact COUNT(*) must see a
// batch-atomic prefix (a multiple of the batch size), and nothing may
// error out.
func TestServerConcurrentClientsDuringLoads(t *testing.T) {
	db, sky := newTestDB(t, 1)
	_, ts := newTestServer(t, db, Config{MaxInFlight: 4, MaxQueue: 64})

	const clients = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failures atomic.Int64
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%d", c%2)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var sql string
				if i%2 == 0 {
					sql = "SELECT COUNT(*) AS n FROM PhotoObjAll"
				} else {
					sql = "SELECT COUNT(*) AS n FROM PhotoObjAll WHERE fGetNearbyObjEq(165, 20, 3) WITHIN TIME 50ms"
				}
				status, ok, bad := postQuery(t, ts.URL, sql, tenant)
				if status != http.StatusOK {
					t.Errorf("client %d query %q failed: %d %+v", c, sql, status, bad)
					failures.Add(1)
					return
				}
				if ok.Exact != nil {
					var n int
					fmt.Sscanf(ok.Exact.Rows[0][0], "%d", &n)
					if n%batchRows != 0 {
						t.Errorf("non-batch-atomic count %d (batch %d)", n, batchRows)
						failures.Add(1)
						return
					}
				}
			}
		}()
	}

	gen := sky.Generator(nil)
	for night := 0; night < 4; night++ {
		if err := db.Load(testTable, gen.NextBatch(batchRows)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d client failures", failures.Load())
	}
}

// TestServerDeadlineFreesPool: a query killed by the server's
// MaxQueryTime deadline returns 504 and releases its admission slot —
// the pool is usable immediately after.
func TestServerDeadlineFreesPool(t *testing.T) {
	db, _ := newTestDB(t, 2)
	s, ts := newTestServer(t, db, Config{MaxInFlight: 1, MaxQueue: 4, MaxQueryTime: time.Nanosecond})

	status, _, bad := postQuery(t, ts.URL, "SELECT COUNT(*) AS n FROM PhotoObjAll", "")
	if status != http.StatusGatewayTimeout || bad.Error.Code != "timeout" {
		t.Fatalf("want 504 timeout, got %d %+v", status, bad)
	}
	waitFor(t, func() bool { return s.Admission().Stats().InFlight == 0 })
}

// TestServerClientCancelFreesPool: a client that disconnects mid-query
// frees the (single) worker slot; the next client is served normally.
func TestServerClientCancelFreesPool(t *testing.T) {
	db, _ := newTestDB(t, 2)
	s, ts := newTestServer(t, db, Config{MaxInFlight: 1, MaxQueue: 4})

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(queryRequest{SQL: "SELECT COUNT(*) AS n FROM PhotoObjAll WHERE fGetNearbyObjEq(165, 20, 3)"})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	cancel()
	<-done

	// The slot must come back regardless of how far the query got.
	waitFor(t, func() bool { return s.Admission().Stats().InFlight == 0 })
	status, ok, _ := postQuery(t, ts.URL, "SELECT COUNT(*) AS n FROM PhotoObjAll", "")
	if status != http.StatusOK || ok.Exact == nil {
		t.Fatalf("server wedged after client cancel: %d %+v", status, ok)
	}
}

// TestServerBoundMetHoldsUnderContention: with a generous budget, K
// concurrent clients must not push the WITHIN TIME BoundMet rate more
// than 5 points below the idle rate — the contention-aware pricing is
// what keeps the promise honest.
func TestServerBoundMetHoldsUnderContention(t *testing.T) {
	db, _ := newTestDB(t, 2)
	_, ts := newTestServer(t, db, Config{MaxInFlight: 8, MaxQueue: 128})
	const sql = "SELECT COUNT(*) AS n FROM PhotoObjAll WHERE fGetNearbyObjEq(165, 20, 3) WITHIN TIME 100ms"

	rate := func(met, total int64) float64 {
		if total == 0 {
			return 0
		}
		return float64(met) / float64(total)
	}

	// Idle: one client, sequential.
	var idleMet, idleTotal int64
	for i := 0; i < 20; i++ {
		status, ok, bad := postQuery(t, ts.URL, sql, "")
		if status != http.StatusOK || ok.Bounded == nil {
			t.Fatalf("idle bounded query failed: %d %+v", status, bad)
		}
		idleTotal++
		if ok.Bounded.BoundMet {
			idleMet++
		}
	}

	// Contended: K clients hammering concurrently.
	const k = 8
	var met, total atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < k; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				status, ok, bad := postQuery(t, ts.URL, sql, "")
				if status != http.StatusOK || ok.Bounded == nil {
					t.Errorf("contended bounded query failed: %d %+v", status, bad)
					return
				}
				total.Add(1)
				if ok.Bounded.BoundMet {
					met.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	idleRate := rate(idleMet, idleTotal)
	loadRate := rate(met.Load(), total.Load())
	t.Logf("BoundMet: idle %.2f (%d/%d), contended %.2f (%d/%d)",
		idleRate, idleMet, idleTotal, loadRate, met.Load(), total.Load())
	if loadRate < idleRate-0.05 {
		t.Fatalf("contention broke the time promise: idle %.2f vs contended %.2f", idleRate, loadRate)
	}
}
