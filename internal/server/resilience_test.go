package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"sciborq"
	"sciborq/internal/engine"
	"sciborq/internal/faultinject"
	"sciborq/internal/governor"
)

// postRaw is postQuery without the decoding conveniences: the tests that
// assert on headers (Retry-After) need the *http.Response itself.
func postRaw(t *testing.T, base, sql string) (*http.Response, errorResponse) {
	t.Helper()
	body, _ := json.Marshal(queryRequest{SQL: sql})
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var bad errorResponse
	if resp.StatusCode != http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&bad); err != nil {
			t.Fatalf("bad error body: %v", err)
		}
	}
	return resp, bad
}

// getStats fetches and decodes GET /stats.
func getStats(t *testing.T, base string) statsResponse {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats returned %d", resp.StatusCode)
	}
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestPanicReleasesAdmissionSlot is the slot-leak regression: a panic
// injected in the query handler — with the admission slot held and its
// release deferred — must unwind into the recover middleware as a 500
// for that request alone, and the slot must come back. Before the
// deferred release, this exact path leaked a slot per panic until the
// server wedged at MaxInFlight.
func TestPanicReleasesAdmissionSlot(t *testing.T) {
	db, _ := newTestDB(t, 1)
	srv, ts := newTestServer(t, db, Config{MaxInFlight: 2, MaxQueue: 2})

	faultinject.Enable(faultinject.NewPlan(
		faultinject.Fault{Point: faultinject.PointQuery, Hit: 1, Kind: faultinject.KindPanic},
	))
	defer faultinject.Disable()

	status, _, bad := postQuery(t, ts.URL, "SELECT COUNT(*) AS n FROM PhotoObjAll", "")
	if status != http.StatusInternalServerError || bad.Error.Code != "internal_panic" {
		t.Fatalf("panicking query: status %d code %q, want 500 internal_panic", status, bad.Error.Code)
	}
	if got := srv.Admission().Stats().InFlight; got != 0 {
		t.Fatalf("in-flight = %d after handler panic, want 0 (slot leaked)", got)
	}

	// The daemon keeps serving: the next query (no fault at hit 2)
	// succeeds on the same admission queue.
	status, ok, _ := postQuery(t, ts.URL, "SELECT COUNT(*) AS n FROM PhotoObjAll", "")
	if status != http.StatusOK || ok.Exact == nil {
		t.Fatalf("query after panic: status %d, want 200", status)
	}
	if got := srv.Admission().Stats().InFlight; got != 0 {
		t.Fatalf("in-flight = %d after recovery query, want 0", got)
	}

	st := getStats(t, ts.URL)
	if st.Resilience.HandlerPanics < 1 {
		t.Fatalf("handler_panics = %d, want >= 1", st.Resilience.HandlerPanics)
	}
	if st.Resilience.LastPanic == "" {
		t.Fatal("last_panic empty after a recovered handler panic")
	}
	if !st.Resilience.FaultsArmed {
		t.Fatal("faults_armed should report the active plan")
	}
}

// TestMorselPanicYields500 is the acceptance criterion for engine-side
// isolation: a panic in a morsel worker during POST /query costs that
// query a 500 (query_panic) — not the process — and /stats counts it.
func TestMorselPanicYields500(t *testing.T) {
	db, _ := newTestDB(t, 1)
	_, ts := newTestServer(t, db, Config{MaxInFlight: 2})

	faultinject.Enable(faultinject.NewPlan(
		faultinject.Fault{Point: faultinject.PointMorsel, Hit: 1, Kind: faultinject.KindPanic},
	))
	const sql = "SELECT COUNT(*) AS n FROM PhotoObjAll WHERE ra > 0"
	status, _, bad := postQuery(t, ts.URL, sql, "")
	faultinject.Disable()
	if status != http.StatusInternalServerError || bad.Error.Code != "query_panic" {
		t.Fatalf("morsel panic: status %d code %q, want 500 query_panic", status, bad.Error.Code)
	}

	// Only that query died; the same statement answers afterwards.
	status, ok, _ := postQuery(t, ts.URL, sql, "")
	if status != http.StatusOK || ok.Exact == nil {
		t.Fatalf("query after morsel panic: status %d, want 200", status)
	}
	if ok.Exact.Rows[0][0] != "8000" {
		t.Fatalf("post-panic COUNT = %s, want 8000", ok.Exact.Rows[0][0])
	}

	st := getStats(t, ts.URL)
	if st.Resilience.QueryPanics < 1 {
		t.Fatalf("query_panics = %d, want >= 1", st.Resilience.QueryPanics)
	}
}

// TestRetryAfterHeaders: every 429 and load-shedding 503 carries a
// Retry-After header with a positive whole-second value.
func TestRetryAfterHeaders(t *testing.T) {
	db, _ := newTestDB(t, 1)
	// MaxInFlight < 0 means zero capacity (New only defaults when the
	// field is exactly 0): every Acquire rejects with ErrOverloaded.
	srv, ts := newTestServer(t, db, Config{MaxInFlight: -1})

	resp, bad := postRaw(t, ts.URL, "SELECT COUNT(*) AS n FROM PhotoObjAll")
	if resp.StatusCode != http.StatusTooManyRequests || bad.Error.Code != "overloaded" {
		t.Fatalf("zero-capacity query: status %d code %q, want 429 overloaded", resp.StatusCode, bad.Error.Code)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 Retry-After = %q, want a positive whole-second value", ra)
	}

	srv.Drain()
	resp, bad = postRaw(t, ts.URL, "SELECT COUNT(*) AS n FROM PhotoObjAll")
	if resp.StatusCode != http.StatusServiceUnavailable || bad.Error.Code != "draining" {
		t.Fatalf("draining query: status %d code %q, want 503 draining", resp.StatusCode, bad.Error.Code)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("503 Retry-After = %q, want a positive whole-second value", ra)
	}
	if st := getStats(t, ts.URL); !st.Admission.Draining {
		t.Fatal("/stats should report draining")
	}
}

// TestGovernorPressure503Ordering pins the quality-before-availability
// ordering: under Elevated pressure queries still answer (bounded picks
// degrade silently), and only Critical refuses work — 503 with
// Retry-After — until the pressure releases.
func TestGovernorPressure503Ordering(t *testing.T) {
	db := sciborq.Open(
		sciborq.WithCostModel(engine.CostModel{NsPerRow: 12, FixedNs: 2000}),
		sciborq.WithSeed(7),
		sciborq.WithMemoryBudget(1<<20),
	)
	if _, err := db.CreateTable("T", sciborq.Schema{
		{Name: "x", Type: sciborq.Float64},
	}); err != nil {
		t.Fatal(err)
	}
	rows := make([]sciborq.Row, 2000)
	for i := range rows {
		rows[i] = sciborq.Row{float64(i)}
	}
	if err := db.Load("T", rows); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, db, Config{MaxInFlight: 2})
	gov := db.Governor()
	if gov == nil {
		t.Fatal("WithMemoryBudget did not install a governor")
	}

	const sql = "SELECT COUNT(*) AS n FROM T WHERE x < 1000"
	if status, _, _ := postQuery(t, ts.URL, sql, ""); status != http.StatusOK {
		t.Fatalf("baseline query: status %d", status)
	}

	// Elevated: degrade quality, keep availability.
	gov.InjectPressure(governor.Elevated)
	if status, _, bad := postQuery(t, ts.URL, sql, ""); status != http.StatusOK {
		t.Fatalf("elevated-pressure query: status %d code %q, want 200 (degrade before shed)", status, bad.Error.Code)
	}

	// Critical: shed load, honestly.
	gov.InjectPressure(governor.Critical)
	resp, bad := postRaw(t, ts.URL, sql)
	if resp.StatusCode != http.StatusServiceUnavailable || bad.Error.Code != "memory_pressure" {
		t.Fatalf("critical-pressure query: status %d code %q, want 503 memory_pressure", resp.StatusCode, bad.Error.Code)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("memory-pressure 503 Retry-After = %q, want a positive value", ra)
	}

	gov.ReleasePressure()
	if status, _, _ := postQuery(t, ts.URL, sql, ""); status != http.StatusOK {
		t.Fatalf("post-release query: status %d, want 200", status)
	}

	st := getStats(t, ts.URL)
	if st.Governor == nil {
		t.Fatal("/stats missing governor section on a budgeted DB")
	}
	if st.Governor.Budget != 1<<20 {
		t.Fatalf("governor budget = %d, want %d", st.Governor.Budget, 1<<20)
	}
}
