package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sync"
	"testing"

	"sciborq"
	"sciborq/internal/engine"
	"sciborq/internal/faultinject"
	"sciborq/internal/skyserver"
)

// chaosSeed is the schedule seed; a chaos failure replays from this
// number alone (same seed, same specs, same plan).
const chaosSeed = 2011

// chaosClients / chaosQueries size the load: 8 concurrent clients, 40
// queries each, against a 4-slot admission queue.
const (
	chaosClients = 8
	chaosQueries = 40
)

// chaosFixture builds the primary DB (all caches on, small morsels so
// the morsel fault point fires thousands of times) and an uncached
// mirror DB attached to the SAME table object — the reference for the
// bit-identical post-chaos check. Sharing the table means concurrent
// loads during chaos are visible to both sides without replaying them.
func chaosFixture(t *testing.T) (*sciborq.DB, *sciborq.DB, *skyserver.Generator) {
	t.Helper()
	cfg := skyserver.DefaultConfig(0)
	sky, err := skyserver.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fact, err := sky.Catalog.Get(testTable)
	if err != nil {
		t.Fatal(err)
	}
	execOpts := engine.ExecOptions{Parallelism: 4, MorselRows: 256}
	db := sciborq.Open(
		sciborq.WithCostModel(engine.CostModel{NsPerRow: 12, FixedNs: 2000}),
		sciborq.WithSeed(99),
		sciborq.WithExecOptions(execOpts),
	)
	if err := db.AttachTable(fact); err != nil {
		t.Fatal(err)
	}
	if err := db.TrackWorkload(testTable,
		sciborq.Attr{Name: "ra", Min: cfg.RaMin, Max: cfg.RaMax, Beta: 30},
		sciborq.Attr{Name: "dec", Min: cfg.DecMin, Max: cfg.DecMax, Beta: 30},
	); err != nil {
		t.Fatal(err)
	}
	if err := db.BuildImpressions(testTable, sciborq.ImpressionConfig{
		Sizes:  []int{4000, 400},
		Policy: sciborq.Biased,
		Attrs:  []string{"ra", "dec"},
	}); err != nil {
		t.Fatal(err)
	}
	gen := sky.Generator(nil)
	for night := 0; night < 2; night++ {
		if err := db.Load(testTable, gen.NextBatch(batchRows)); err != nil {
			t.Fatal(err)
		}
	}

	// Mirror: same table, same execution options (identical morsel merge
	// layout), every cache disabled — the pure recompute path.
	mirror := sciborq.Open(
		sciborq.WithCostModel(engine.CostModel{NsPerRow: 12, FixedNs: 2000}),
		sciborq.WithSeed(99),
		sciborq.WithExecOptions(execOpts),
		sciborq.WithRecyclerBudget(-1),
		sciborq.WithPlanCacheBudget(-1),
	)
	if err := mirror.AttachTable(fact); err != nil {
		t.Fatal(err)
	}
	return db, mirror, gen
}

// chaosPost is a goroutine-safe POST /query: it reports instead of
// failing the test (t.Fatal is illegal off the test goroutine).
func chaosPost(base, sql string) (int, string, error) {
	body, _ := json.Marshal(queryRequest{SQL: sql})
	resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, "", err
	}
	if resp.StatusCode == http.StatusOK {
		return resp.StatusCode, "", nil
	}
	var bad errorResponse
	if err := json.Unmarshal(raw, &bad); err != nil {
		return resp.StatusCode, "", fmt.Errorf("undecodable error body %q: %w", raw, err)
	}
	return resp.StatusCode, bad.Error.Code, nil
}

// chaosSQL picks client c's i-th statement: mostly exact WHERE
// aggregates with per-(client,query) literals — distinct spellings keep
// the caches churning and the scans real — plus a bounded query every
// fifth round. Deterministic, so a failure replays.
func chaosSQL(c, i int) string {
	switch i % 5 {
	case 4:
		return fmt.Sprintf(
			"SELECT COUNT(*) AS n FROM PhotoObjAll WHERE fGetNearbyObjEq(%d, %d, 3) WITHIN ERROR 0.3 CONFIDENCE 0.9",
			150+(c*7+i)%40, 10+(c+i)%20)
	case 3:
		return fmt.Sprintf("SELECT AVG(dec) AS a FROM PhotoObjAll WHERE ra < %d", 155+(c*11+i)%35)
	default:
		return fmt.Sprintf("SELECT COUNT(*) AS n FROM PhotoObjAll WHERE ra > %d", 150+(c*13+i)%40)
	}
}

// TestChaos drives the acceptance criterion: a seeded fault schedule —
// well over 100 injections across all six fault points (errors, panics,
// latency) — against a booted server under 8 concurrent clients and a
// concurrent ingest, asserting the resilience invariants afterwards:
// the process is alive, every admission slot came back, the stats are
// coherent, and results are bit-identical to the uncached mirror once
// the faults stop.
func TestChaos(t *testing.T) {
	db, mirror, gen := chaosFixture(t)
	srv, ts := newTestServer(t, db, Config{MaxInFlight: 4, MaxQueue: 8})
	_, mirrorTS := newTestServer(t, mirror, Config{MaxInFlight: 4})

	plan := faultinject.Schedule(chaosSeed, []faultinject.PointSpec{
		// Scan workers: errors and panics inside the morsel loop. Small
		// morsels mean thousands of hits, so every fault lands.
		{Point: faultinject.PointMorsel, Faults: 30, MaxHit: 1000,
			Kinds: []faultinject.Kind{faultinject.KindError, faultinject.KindPanic}},
		// Cache lookups: injected errors degrade to the uncached path (a
		// 200, not an error); panics unwind into the recover middleware.
		{Point: faultinject.PointRecycler, Faults: 20, MaxHit: 150,
			Kinds: []faultinject.Kind{faultinject.KindError, faultinject.KindPanic}},
		{Point: faultinject.PointPlanCache, Faults: 25, MaxHit: 400,
			Kinds: []faultinject.Kind{faultinject.KindError, faultinject.KindPanic}},
		// Admission: rejections, panics before any slot is owned, and
		// latency spikes that stretch the queue.
		{Point: faultinject.PointAdmission, Faults: 25, MaxHit: 250,
			Kinds: []faultinject.Kind{faultinject.KindError, faultinject.KindPanic, faultinject.KindLatency}},
		// Query handler: fires with the slot held — the leak-proof point.
		{Point: faultinject.PointQuery, Faults: 25, MaxHit: 250,
			Kinds: []faultinject.Kind{faultinject.KindError, faultinject.KindPanic, faultinject.KindLatency}},
		// Ingest: errors only — Load runs on this test's own goroutine,
		// which has no recover guard.
		{Point: faultinject.PointLoad, Faults: 10, MaxHit: 15,
			Kinds: []faultinject.Kind{faultinject.KindError}},
	})
	faultinject.Enable(plan)
	defer faultinject.Disable()

	// Concurrent ingest: 15 small batches while the clients hammer. The
	// shared table makes every appended row visible to the mirror too.
	var loadErrs []error
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		for b := 0; b < 15; b++ {
			if err := db.Load(testTable, gen.NextBatch(500)); err != nil {
				loadErrs = append(loadErrs, err)
			}
		}
	}()

	var (
		mu         sync.Mutex
		byStatus   = map[int]int{}
		byCode     = map[string]int{}
		clientErrs []error
	)
	var wg sync.WaitGroup
	for c := 0; c < chaosClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < chaosQueries; i++ {
				status, code, err := chaosPost(ts.URL, chaosSQL(c, i))
				mu.Lock()
				if err != nil {
					clientErrs = append(clientErrs, fmt.Errorf("client %d query %d: %w", c, i, err))
				}
				byStatus[status]++
				if code != "" {
					byCode[code]++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	<-loadDone

	fired := plan.FiredTotal()
	errsFired, panicsFired, latsFired := plan.Fired()
	faultinject.Disable()
	t.Logf("chaos seed %d: fired %d faults (%d errors, %d panics, %d latencies); statuses %v codes %v",
		chaosSeed, fired, errsFired, panicsFired, latsFired, byStatus, byCode)

	// Transport-level failures mean a dropped connection — the process
	// (or its listener) did not survive a fault.
	for _, err := range clientErrs {
		t.Error(err)
	}
	for _, err := range loadErrs {
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Errorf("load failed with a non-injected error: %v", err)
		}
	}

	// The schedule must have actually exercised the system.
	if fired < 100 {
		t.Fatalf("only %d faults fired, want >= 100 (replay with seed %d)", fired, chaosSeed)
	}
	for _, pt := range []string{
		faultinject.PointMorsel, faultinject.PointRecycler, faultinject.PointPlanCache,
		faultinject.PointAdmission, faultinject.PointQuery, faultinject.PointLoad,
	} {
		if plan.Hits(pt) == 0 {
			t.Errorf("fault point %s was never reached", pt)
		}
	}

	// Only documented outcomes, no invented statuses.
	for status := range byStatus {
		switch status {
		case http.StatusOK, http.StatusUnprocessableEntity, http.StatusTooManyRequests,
			http.StatusInternalServerError, http.StatusServiceUnavailable:
		default:
			t.Errorf("unexpected status %d under chaos", status)
		}
	}
	if byStatus[http.StatusOK] == 0 {
		t.Error("no query succeeded under chaos — the faults should be sparse, not total")
	}

	// Every admission slot came back, and the stats are coherent with
	// the plan's own counters.
	adm := srv.Admission().Stats()
	if adm.InFlight != 0 || adm.Queued != 0 {
		t.Fatalf("admission not drained after chaos: %+v", adm)
	}
	if adm.Admitted == 0 {
		t.Fatal("admission admitted nothing under chaos")
	}
	st := getStats(t, ts.URL)
	recovered := st.Resilience.HandlerPanics + st.Resilience.QueryPanics
	if panicsFired > 0 && recovered == 0 {
		t.Errorf("%d panics fired but none recovered in /stats", panicsFired)
	}
	if recovered > panicsFired {
		t.Errorf("recovered %d panics, more than the %d injected — a real panic slipped in: %s",
			recovered, panicsFired, st.Resilience.LastPanic)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after chaos: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	// Bit-identical recovery: with faults disarmed, the battered primary
	// (caches shed, repopulated, and fault-degraded throughout) must
	// answer exactly like the never-cached mirror over the same table.
	for i, sql := range []string{
		"SELECT COUNT(*) AS n FROM PhotoObjAll",
		"SELECT COUNT(*) AS n FROM PhotoObjAll WHERE ra > 165",
		"SELECT COUNT(*) AS n FROM PhotoObjAll WHERE ra BETWEEN 150 AND 170",
		"SELECT AVG(dec) AS a FROM PhotoObjAll WHERE ra < 180",
		"SELECT AVG(ra) AS a FROM PhotoObjAll WHERE dec > 0",
	} {
		status, got, _ := postQuery(t, ts.URL, sql, "")
		if status != http.StatusOK || got.Exact == nil {
			t.Fatalf("post-chaos query %d (%s): status %d", i, sql, status)
		}
		mStatus, want, _ := postQuery(t, mirrorTS.URL, sql, "")
		if mStatus != http.StatusOK || want.Exact == nil {
			t.Fatalf("mirror query %d (%s): status %d", i, sql, mStatus)
		}
		if !reflect.DeepEqual(got.Exact, want.Exact) {
			t.Errorf("post-chaos divergence on %q:\n  primary %+v\n  mirror  %+v", sql, got.Exact, want.Exact)
		}
	}
}
