package server

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"

	"sciborq/internal/bounded"
)

// ErrOverloaded is returned by Admission.Acquire when the server cannot
// take the query: the in-flight cap is zero, or the wait queue is full.
// The HTTP layer maps it to 429 Too Many Requests.
var ErrOverloaded = errors.New("server: overloaded, admission queue full")

// waitEWMAAlpha is the weight of a new queue-wait observation in the
// exponentially weighted moving average the load probe reports.
const waitEWMAAlpha = 0.2

// Admission is a FIFO admission queue bounding concurrent query
// execution: at most MaxInFlight queries run at once, at most MaxQueue
// more wait in arrival order, and everything beyond that is rejected
// immediately with ErrOverloaded — the back-pressure signal that keeps
// p99 latency bounded instead of letting every client time out at once.
//
// The queue measures what it does: live in-flight count and an EWMA of
// observed queue waits feed the bounded executor's contention pricing
// (bounded.LoadInfo), which is how a WITHIN TIME promise stays honest
// when K clients saturate the machine.
type Admission struct {
	mu          sync.Mutex
	maxInFlight int
	maxQueue    int
	inflight    int
	queue       *list.List // FIFO of chan struct{}; closed = slot handed over
	waitEWMANs  float64
	admitted    int64
	rejected    int64
	canceled    int64
}

// AdmissionStats is a point-in-time snapshot of the queue.
type AdmissionStats struct {
	// MaxInFlight and MaxQueue echo the configuration.
	MaxInFlight int `json:"max_in_flight"`
	MaxQueue    int `json:"max_queue"`
	// InFlight and Queued are the live occupancy.
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
	// Admitted, Rejected, Canceled count lifetime outcomes.
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	Canceled int64 `json:"canceled"`
	// QueueWaitEWMANs is the smoothed observed queue wait the load
	// probe feeds into WITHIN TIME pricing, in nanoseconds.
	QueueWaitEWMANs int64 `json:"queue_wait_ewma_ns"`
}

// NewAdmission builds an admission queue admitting at most maxInFlight
// concurrent queries with up to maxQueue waiters. maxInFlight <= 0
// means zero capacity: every Acquire is rejected (a drain/maintenance
// mode, and the configuration guard the tests pin down). maxQueue < 0
// is treated as 0 (no waiting — admit or reject).
func NewAdmission(maxInFlight, maxQueue int) *Admission {
	if maxInFlight < 0 {
		maxInFlight = 0
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{maxInFlight: maxInFlight, maxQueue: maxQueue, queue: list.New()}
}

// Acquire blocks until the query may run, FIFO behind earlier waiters.
// It returns a release closure (call exactly once, when the query
// finishes), the time spent queued, and an error: ErrOverloaded when
// capacity is zero or the queue is full, or ctx.Err() when the caller
// gave up waiting.
func (a *Admission) Acquire(ctx context.Context) (release func(), wait time.Duration, err error) {
	start := time.Now()
	a.mu.Lock()
	if a.maxInFlight <= 0 {
		a.rejected++
		a.mu.Unlock()
		return nil, 0, ErrOverloaded
	}
	// Fast path: a free slot and nobody queued ahead.
	if a.inflight < a.maxInFlight && a.queue.Len() == 0 {
		a.inflight++
		a.admitted++
		a.noteWaitLocked(0)
		a.mu.Unlock()
		return a.releaseOnce(), 0, nil
	}
	if a.queue.Len() >= a.maxQueue {
		a.rejected++
		a.mu.Unlock()
		return nil, 0, ErrOverloaded
	}
	slot := make(chan struct{})
	elem := a.queue.PushBack(slot)
	a.mu.Unlock()

	select {
	case <-slot:
		// release() handed us the slot: inflight already counts us.
		wait = time.Since(start)
		a.mu.Lock()
		a.admitted++
		a.noteWaitLocked(wait)
		a.mu.Unlock()
		return a.releaseOnce(), wait, nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-slot:
			// The handoff raced our cancellation: we own a slot and must
			// pass it on (or free it) rather than leak it.
			a.canceled++
			a.mu.Unlock()
			a.release()
		default:
			a.queue.Remove(elem)
			a.canceled++
			a.mu.Unlock()
		}
		return nil, time.Since(start), ctx.Err()
	}
}

// releaseOnce wraps release in a sync.Once so double-calls (e.g. a
// deferred release after an explicit one) cannot corrupt the counters.
func (a *Admission) releaseOnce() func() {
	var once sync.Once
	return func() { once.Do(a.release) }
}

// release frees one slot: the front waiter inherits it directly (FIFO,
// no thundering herd — inflight never dips), or the in-flight count
// drops when nobody waits.
func (a *Admission) release() {
	a.mu.Lock()
	if e := a.queue.Front(); e != nil {
		a.queue.Remove(e)
		close(e.Value.(chan struct{}))
		a.mu.Unlock()
		return
	}
	a.inflight--
	a.mu.Unlock()
}

// noteWaitLocked folds one observed wait into the EWMA. Caller holds
// a.mu.
func (a *Admission) noteWaitLocked(wait time.Duration) {
	ns := float64(wait.Nanoseconds())
	if a.waitEWMANs == 0 {
		a.waitEWMANs = ns
		return
	}
	a.waitEWMANs = (1-waitEWMAAlpha)*a.waitEWMANs + waitEWMAAlpha*ns
}

// Stats snapshots the queue.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		MaxInFlight:     a.maxInFlight,
		MaxQueue:        a.maxQueue,
		InFlight:        a.inflight,
		Queued:          a.queue.Len(),
		Admitted:        a.admitted,
		Rejected:        a.rejected,
		Canceled:        a.canceled,
		QueueWaitEWMANs: int64(a.waitEWMANs),
	}
}

// Load reports live contention in the shape the bounded executor's
// WITHIN TIME pricing consumes: the current in-flight query count and
// the smoothed observed queue wait.
func (a *Admission) Load() bounded.LoadInfo {
	a.mu.Lock()
	defer a.mu.Unlock()
	return bounded.LoadInfo{
		InFlight:  a.inflight,
		QueueWait: time.Duration(a.waitEWMANs),
	}
}
