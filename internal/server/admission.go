package server

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"

	"sciborq/internal/bounded"
	"sciborq/internal/faultinject"
)

// ErrOverloaded is returned by Admission.Acquire when the server cannot
// take the query: the in-flight cap is zero, or the wait queue is full.
// The HTTP layer maps it to 429 Too Many Requests.
var ErrOverloaded = errors.New("server: overloaded, admission queue full")

// ErrDraining is returned by Acquire once Drain has been called: the
// server is shutting down, in-flight queries are completing, and no new
// work is accepted. The HTTP layer maps it to 503 Service Unavailable.
var ErrDraining = errors.New("server: draining, not accepting new queries")

// waitEWMAAlpha is the weight of a new queue-wait observation in the
// exponentially weighted moving average the load probe reports.
const waitEWMAAlpha = 0.2

// retryAfterMin/Max clamp the Retry-After estimate: never tell a client
// to hammer sooner than a second, never to stay away a full minute.
const (
	retryAfterMin = time.Second
	retryAfterMax = 60 * time.Second
)

// waiter is one queued Acquire. The slot channel closing is the wake
// signal; err distinguishes a slot handoff (nil — the waiter now owns a
// slot) from a drain rejection (ErrDraining — it owns nothing). err is
// written before close under a.mu and read only after <-slot, so the
// channel provides the ordering.
type waiter struct {
	slot chan struct{}
	err  error
}

// Admission is a FIFO admission queue bounding concurrent query
// execution: at most MaxInFlight queries run at once, at most MaxQueue
// more wait in arrival order, and everything beyond that is rejected
// immediately with ErrOverloaded — the back-pressure signal that keeps
// p99 latency bounded instead of letting every client time out at once.
//
// The queue measures what it does: live in-flight count and an EWMA of
// observed queue waits feed the bounded executor's contention pricing
// (bounded.LoadInfo), which is how a WITHIN TIME promise stays honest
// when K clients saturate the machine. The same EWMA prices the
// Retry-After header on 429/503 responses.
//
// Drain flips the queue into shutdown mode: every waiter is woken with
// ErrDraining, new Acquires fail fast, and in-flight queries release
// normally — the graceful half of SIGTERM handling.
type Admission struct {
	mu          sync.Mutex
	maxInFlight int
	maxQueue    int
	inflight    int
	queue       *list.List // FIFO of *waiter
	draining    bool
	waitEWMANs  float64
	admitted    int64
	rejected    int64
	canceled    int64
	drained     int64
}

// AdmissionStats is a point-in-time snapshot of the queue.
type AdmissionStats struct {
	// MaxInFlight and MaxQueue echo the configuration.
	MaxInFlight int `json:"max_in_flight"`
	MaxQueue    int `json:"max_queue"`
	// InFlight and Queued are the live occupancy.
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
	// Admitted, Rejected, Canceled count lifetime outcomes; Drained
	// counts waiters flushed by Drain.
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	Canceled int64 `json:"canceled"`
	Drained  int64 `json:"drained"`
	// Draining reports shutdown mode.
	Draining bool `json:"draining"`
	// QueueWaitEWMANs is the smoothed observed queue wait the load
	// probe feeds into WITHIN TIME pricing, in nanoseconds.
	QueueWaitEWMANs int64 `json:"queue_wait_ewma_ns"`
}

// NewAdmission builds an admission queue admitting at most maxInFlight
// concurrent queries with up to maxQueue waiters. maxInFlight <= 0
// means zero capacity: every Acquire is rejected (a drain/maintenance
// mode, and the configuration guard the tests pin down). maxQueue < 0
// is treated as 0 (no waiting — admit or reject).
func NewAdmission(maxInFlight, maxQueue int) *Admission {
	if maxInFlight < 0 {
		maxInFlight = 0
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{maxInFlight: maxInFlight, maxQueue: maxQueue, queue: list.New()}
}

// Acquire blocks until the query may run, FIFO behind earlier waiters.
// It returns a release closure (call exactly once, when the query
// finishes), the time spent queued, and an error: ErrOverloaded when
// capacity is zero or the queue is full, ErrDraining during shutdown,
// or ctx.Err() when the caller gave up waiting.
func (a *Admission) Acquire(ctx context.Context) (release func(), wait time.Duration, err error) {
	// The fault point fires before the lock: an injected panic unwinds
	// through the handler's recover guard without wedging a.mu, and an
	// injected error is a rejection that never owned a slot.
	if err := faultinject.Fire(faultinject.PointAdmission); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	a.mu.Lock()
	if a.draining {
		a.rejected++
		a.mu.Unlock()
		return nil, 0, ErrDraining
	}
	if a.maxInFlight <= 0 {
		a.rejected++
		a.mu.Unlock()
		return nil, 0, ErrOverloaded
	}
	// Fast path: a free slot and nobody queued ahead.
	if a.inflight < a.maxInFlight && a.queue.Len() == 0 {
		a.inflight++
		a.admitted++
		a.noteWaitLocked(0)
		a.mu.Unlock()
		return a.releaseOnce(), 0, nil
	}
	if a.queue.Len() >= a.maxQueue {
		a.rejected++
		a.mu.Unlock()
		return nil, 0, ErrOverloaded
	}
	w := &waiter{slot: make(chan struct{})}
	elem := a.queue.PushBack(w)
	a.mu.Unlock()

	select {
	case <-w.slot:
		wait = time.Since(start)
		if w.err != nil {
			// Drain flushed the queue: woken with a rejection, not a slot.
			return nil, wait, w.err
		}
		// release() handed us the slot: inflight already counts us.
		a.mu.Lock()
		a.admitted++
		a.noteWaitLocked(wait)
		a.mu.Unlock()
		return a.releaseOnce(), wait, nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.slot:
			a.canceled++
			a.mu.Unlock()
			if w.err == nil {
				// The handoff raced our cancellation: we own a slot and
				// must pass it on (or free it) rather than leak it.
				a.release()
			}
		default:
			a.queue.Remove(elem)
			a.canceled++
			a.mu.Unlock()
		}
		return nil, time.Since(start), ctx.Err()
	}
}

// Drain flips the queue into shutdown mode: every queued waiter wakes
// with ErrDraining, and every subsequent Acquire fails fast with the
// same. In-flight queries are untouched — they finish and release
// normally. Idempotent.
func (a *Admission) Drain() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.draining = true
	for e := a.queue.Front(); e != nil; e = a.queue.Front() {
		a.queue.Remove(e)
		w := e.Value.(*waiter)
		w.err = ErrDraining
		close(w.slot)
		a.drained++
	}
}

// Draining reports whether Drain has been called.
func (a *Admission) Draining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// releaseOnce wraps release in a sync.Once so double-calls (e.g. a
// deferred release after an explicit one) cannot corrupt the counters.
func (a *Admission) releaseOnce() func() {
	var once sync.Once
	return func() { once.Do(a.release) }
}

// release frees one slot: the front waiter inherits it directly (FIFO,
// no thundering herd — inflight never dips), or the in-flight count
// drops when nobody waits.
func (a *Admission) release() {
	a.mu.Lock()
	if e := a.queue.Front(); e != nil {
		a.queue.Remove(e)
		close(e.Value.(*waiter).slot)
		a.mu.Unlock()
		return
	}
	a.inflight--
	a.mu.Unlock()
}

// noteWaitLocked folds one observed wait into the EWMA. Caller holds
// a.mu.
func (a *Admission) noteWaitLocked(wait time.Duration) {
	ns := float64(wait.Nanoseconds())
	if a.waitEWMANs == 0 {
		a.waitEWMANs = ns
		return
	}
	a.waitEWMANs = (1-waitEWMAAlpha)*a.waitEWMANs + waitEWMAAlpha*ns
}

// RetryAfter estimates when a rejected client should try again: the
// smoothed queue wait times the work queued ahead of it, clamped to
// [1s, 60s]. This is the honest version of a Retry-After header — it
// reflects what the queue actually observed, not a constant.
func (a *Admission) RetryAfter() time.Duration {
	a.mu.Lock()
	est := time.Duration(a.waitEWMANs) * time.Duration(a.queue.Len()+1)
	a.mu.Unlock()
	if est < retryAfterMin {
		return retryAfterMin
	}
	if est > retryAfterMax {
		return retryAfterMax
	}
	return est
}

// Stats snapshots the queue.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		MaxInFlight:     a.maxInFlight,
		MaxQueue:        a.maxQueue,
		InFlight:        a.inflight,
		Queued:          a.queue.Len(),
		Admitted:        a.admitted,
		Rejected:        a.rejected,
		Canceled:        a.canceled,
		Drained:         a.drained,
		Draining:        a.draining,
		QueueWaitEWMANs: int64(a.waitEWMANs),
	}
}

// Load reports live contention in the shape the bounded executor's
// WITHIN TIME pricing consumes: the current in-flight query count and
// the smoothed observed queue wait.
func (a *Admission) Load() bounded.LoadInfo {
	a.mu.Lock()
	defer a.mu.Unlock()
	return bounded.LoadInfo{
		InFlight:  a.inflight,
		QueueWait: time.Duration(a.waitEWMANs),
	}
}
