// Package loader implements the ingest pipeline of §3.3: nightly batches
// stream into the base table, and impressions are constructed and
// maintained inside the load path, "considering each tuple as it is
// being loaded, much like a stream" — base tables are never revisited.
package loader

import (
	"fmt"
	"sync"

	"sciborq/internal/impression"
	"sciborq/internal/table"
)

// Sink receives the positions of freshly loaded rows. Both
// *impression.Impression and *impression.Hierarchy satisfy it.
type Sink interface {
	Offer(pos int32)
}

var (
	_ Sink = (*impression.Impression)(nil)
	_ Sink = (*impression.Hierarchy)(nil)
)

// Appender is an alternative batch-append destination — the durable
// segment store. When installed, LoadBatch routes every batch through
// it (WAL, fold, seal) instead of appending to the table directly; the
// store extends the same table, so position accounting is unchanged.
type Appender interface {
	LoadBatch(rows []table.Row) error
}

// Loader appends batches to a base table and feeds every appended row to
// the registered sinks.
type Loader struct {
	mu      sync.Mutex
	base    *table.Table
	app     Appender // nil: append straight to base
	sinks   []Sink
	batches int64
	rows    int64
}

// New builds a loader for base.
func New(base *table.Table) (*Loader, error) {
	if base == nil {
		return nil, fmt.Errorf("loader: nil base table")
	}
	return &Loader{base: base}, nil
}

// Attach registers a sink. Rows already present in the base table are
// NOT replayed: impressions attach before loading starts (the paper's
// deployment) or are extracted from an existing database with Backfill.
func (l *Loader) Attach(s Sink) error {
	if s == nil {
		return fmt.Errorf("loader: nil sink")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sinks = append(l.sinks, s)
	return nil
}

// Backfill offers every existing base row to the sink — the paper's
// second deployment mode, "extracted from an existing database" (§3.3).
func (l *Loader) Backfill(s Sink) {
	n := l.base.Len()
	for i := 0; i < n; i++ {
		s.Offer(int32(i))
	}
}

// SetAppender routes subsequent batches through a (durable) appender
// instead of the table's direct append path. Install before loading
// starts.
func (l *Loader) SetAppender(a Appender) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.app = a
}

// LoadBatch appends one nightly batch and streams its positions to all
// sinks. The append is atomic; on error no sink sees any row. With an
// Appender installed, the batch is durable (WAL-acknowledged) before
// this returns.
func (l *Loader) LoadBatch(rows []table.Row) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	start := l.base.Len()
	var err error
	if l.app != nil {
		err = l.app.LoadBatch(rows)
	} else {
		err = l.base.AppendBatch(rows)
	}
	if err != nil {
		return fmt.Errorf("loader: %w", err)
	}
	end := l.base.Len()
	for pos := start; pos < end; pos++ {
		for _, s := range l.sinks {
			s.Offer(int32(pos))
		}
	}
	l.batches++
	l.rows += int64(end - start)
	return nil
}

// Batches returns the number of loaded batches (nights).
func (l *Loader) Batches() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.batches
}

// Rows returns the number of rows loaded through this loader.
func (l *Loader) Rows() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rows
}

// Base returns the base table.
func (l *Loader) Base() *table.Table { return l.base }
