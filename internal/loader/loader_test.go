package loader

import (
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/impression"
	"sciborq/internal/table"
)

func baseTable(t *testing.T) *table.Table {
	t.Helper()
	return table.MustNew("base", table.Schema{{Name: "x", Type: column.Float64}})
}

type recordingSink struct{ got []int32 }

func (r *recordingSink) Offer(pos int32) { r.got = append(r.got, pos) }

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil base accepted")
	}
}

func TestAttachValidation(t *testing.T) {
	l, _ := New(baseTable(t))
	if err := l.Attach(nil); err == nil {
		t.Fatal("nil sink accepted")
	}
}

func TestLoadBatchStreamsPositions(t *testing.T) {
	tb := baseTable(t)
	l, _ := New(tb)
	sink := &recordingSink{}
	if err := l.Attach(sink); err != nil {
		t.Fatal(err)
	}
	if err := l.LoadBatch([]table.Row{{1.0}, {2.0}}); err != nil {
		t.Fatal(err)
	}
	if err := l.LoadBatch([]table.Row{{3.0}}); err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 2}
	if len(sink.got) != 3 {
		t.Fatalf("sink saw %v", sink.got)
	}
	for i, p := range want {
		if sink.got[i] != p {
			t.Fatalf("sink saw %v, want %v", sink.got, want)
		}
	}
	if l.Batches() != 2 || l.Rows() != 3 {
		t.Fatalf("batches=%d rows=%d", l.Batches(), l.Rows())
	}
	if l.Base() != tb {
		t.Fatal("Base accessor wrong")
	}
}

func TestLoadBatchAtomicOnError(t *testing.T) {
	tb := baseTable(t)
	l, _ := New(tb)
	sink := &recordingSink{}
	_ = l.Attach(sink)
	if err := l.LoadBatch([]table.Row{{1.0}, {"bad"}}); err == nil {
		t.Fatal("bad batch accepted")
	}
	if len(sink.got) != 0 {
		t.Fatalf("sink saw rows from failed batch: %v", sink.got)
	}
	if tb.Len() != 0 || l.Rows() != 0 {
		t.Fatal("failed batch left state behind")
	}
}

func TestImpressionThroughLoader(t *testing.T) {
	tb := baseTable(t)
	l, _ := New(tb)
	im, err := impression.New(tb, impression.Config{Name: "u", Size: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Attach(im); err != nil {
		t.Fatal(err)
	}
	batch := make([]table.Row, 100)
	for night := 0; night < 10; night++ {
		for i := range batch {
			batch[i] = table.Row{float64(night*100 + i)}
		}
		if err := l.LoadBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if im.Len() != 50 || im.Offered() != 1000 {
		t.Fatalf("impression len=%d offered=%d", im.Len(), im.Offered())
	}
}

func TestBackfill(t *testing.T) {
	tb := baseTable(t)
	_ = tb.AppendBatch([]table.Row{{1.0}, {2.0}, {3.0}})
	l, _ := New(tb)
	sink := &recordingSink{}
	l.Backfill(sink)
	if len(sink.got) != 3 || sink.got[2] != 2 {
		t.Fatalf("backfill saw %v", sink.got)
	}
}

func TestHierarchyThroughLoader(t *testing.T) {
	tb := baseTable(t)
	l, _ := New(tb)
	l0, _ := impression.New(tb, impression.Config{Name: "l0", Size: 100, Seed: 1})
	l1, _ := impression.New(tb, impression.Config{Name: "l1", Size: 10, Seed: 2})
	h, err := impression.NewHierarchy([]*impression.Impression{l0, l1}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Attach(h); err != nil {
		t.Fatal(err)
	}
	batch := make([]table.Row, 500)
	for i := range batch {
		batch[i] = table.Row{float64(i)}
	}
	if err := l.LoadBatch(batch); err != nil {
		t.Fatal(err)
	}
	if l0.Len() != 100 {
		t.Fatalf("layer0 len = %d", l0.Len())
	}
	if l1.Len() != 10 {
		t.Fatalf("layer1 len = %d", l1.Len())
	}
}
