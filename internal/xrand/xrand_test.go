package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const n, trials = 10, 500000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(19)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element multiset: sum %d != %d", got, sum)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(23)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams overlap: %d matches", same)
	}
}

func TestUint64nProperty(t *testing.T) {
	r := New(29)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
