// Package xrand provides a small, deterministic pseudo-random number
// generator used by every sampling component in SciBORQ.
//
// Reproducibility is a hard requirement for the experiment harness: the
// paper's figures are regenerated from fixed seeds, and property tests
// compare sampler output across runs. We therefore implement our own
// generator (xoshiro256**, seeded via splitmix64) instead of relying on
// math/rand's unspecified evolution across Go releases.
package xrand

import "math"

// RNG is a xoshiro256** pseudo-random number generator.
// The zero value is not valid; use New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded deterministically from seed using
// splitmix64, as recommended by the xoshiro authors.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// Avoid the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's
// nearly-divisionless method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Rejection sampling over the multiply-shift range reduction.
	for {
		x := r.Uint64()
		hi, lo := mul64(x, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hiPart := t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi = aHi*bHi + hiPart + (t >> 32)
	return hi, lo
}

// NormFloat64 returns a standard normal variate using the
// Marsaglia polar method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly permutes the order of n elements,
// calling swap(i, j) for each exchanged pair.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split derives an independent generator from r's stream; useful for
// giving each table/column its own deterministic stream.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}
