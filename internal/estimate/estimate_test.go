package estimate

import (
	"math"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/engine"
	"sciborq/internal/expr"
	"sciborq/internal/impression"
	"sciborq/internal/table"
	"sciborq/internal/vec"
	"sciborq/internal/workload"
	"sciborq/internal/xrand"
)

// population builds a base table of n rows: x ~ Normal(mu, sigma) and a
// uniform position column for focal predicates.
func population(t *testing.T, n int, mu, sigma float64, seed uint64) *table.Table {
	t.Helper()
	tb := table.MustNew("base", table.Schema{
		{Name: "ra", Type: column.Float64},
		{Name: "x", Type: column.Float64},
	})
	r := xrand.New(seed)
	rows := make([]table.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, table.Row{120 + r.Float64()*120, mu + r.NormFloat64()*sigma})
	}
	if err := tb.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	return tb
}

func exactAvg(t *testing.T, tb *table.Table, col string) float64 {
	t.Helper()
	xs, err := tb.Float64(col)
	if err != nil {
		t.Fatal(err)
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

func TestLayerValidate(t *testing.T) {
	tb := population(t, 10, 0, 1, 1)
	if err := (Layer{}).Validate(); err == nil {
		t.Fatal("nil table accepted")
	}
	if err := (Layer{Table: tb, Weights: []float64{1}}).Validate(); err == nil {
		t.Fatal("weight length mismatch accepted")
	}
	if err := (Layer{Table: tb, BaseRows: -1}).Validate(); err == nil {
		t.Fatal("negative base rows accepted")
	}
	if err := (Layer{Table: tb, BaseRows: 100}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateOnRejections(t *testing.T) {
	tb := population(t, 10, 0, 1, 1)
	l := Layer{Table: tb, BaseRows: 10}
	if _, err := AggregateOn(l, engine.Query{Table: "x", Select: []string{"x"}}, 0.95); err == nil {
		t.Fatal("non-aggregate query accepted")
	}
	q := engine.Query{Table: "x", GroupBy: "g", Aggs: []engine.AggSpec{{Func: engine.Count}}}
	if _, err := AggregateOn(l, q, 0.95); err == nil {
		t.Fatal("grouped query accepted")
	}
}

func TestExactLayerZeroError(t *testing.T) {
	tb := population(t, 1000, 10, 2, 2)
	l := Layer{Name: "base", Table: tb, BaseRows: 1000, Exact: true}
	q := engine.Query{
		Table: "base",
		Aggs: []engine.AggSpec{
			{Func: engine.Count},
			{Func: engine.Avg, Arg: expr.ColRef{Name: "x"}, Alias: "a"},
		},
	}
	ests, err := AggregateOn(l, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !ests[0].Exact || ests[0].Value() != 1000 || ests[0].RelError() != 0 {
		t.Fatalf("exact count = %+v", ests[0])
	}
	want := exactAvg(t, tb, "x")
	if math.Abs(ests[1].Value()-want) > 1e-12 {
		t.Fatalf("exact avg = %v, want %v", ests[1].Value(), want)
	}
}

func TestUniformSampleEstimates(t *testing.T) {
	const N, n = 50000, 2000
	tb := population(t, N, 10, 2, 3)
	im, err := impression.New(tb, impression.Config{Name: "u", Size: n, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		im.Offer(int32(i))
	}
	lt, w, err := im.Table()
	if err != nil {
		t.Fatal(err)
	}
	l := Layer{Name: "u", Table: lt, Weights: w, BaseRows: N}
	q := engine.Query{
		Table: "u",
		Aggs: []engine.AggSpec{
			{Func: engine.Count},
			{Func: engine.Avg, Arg: expr.ColRef{Name: "x"}, Alias: "avg"},
			{Func: engine.Sum, Arg: expr.ColRef{Name: "x"}, Alias: "sum"},
		},
	}
	ests, err := AggregateOn(l, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// COUNT with TRUE predicate: estimate must be exactly N (indicator
	// is 1 everywhere, self-normalised mean is 1).
	if math.Abs(ests[0].Value()-N) > 1e-6 {
		t.Fatalf("count estimate = %v", ests[0].Value())
	}
	want := exactAvg(t, tb, "x")
	if !ests[1].Interval.Contains(want) {
		t.Fatalf("avg interval [%v, %v] misses truth %v",
			ests[1].Interval.Lo(), ests[1].Interval.Hi(), want)
	}
	if ests[1].RelError() <= 0 || ests[1].RelError() > 0.05 {
		t.Fatalf("avg relative error = %v", ests[1].RelError())
	}
	wantSum := want * N
	if !ests[2].Interval.Contains(wantSum) {
		t.Fatalf("sum interval [%v, %v] misses truth %v",
			ests[2].Interval.Lo(), ests[2].Interval.Hi(), wantSum)
	}
}

func TestCountWithPredicate(t *testing.T) {
	const N, n = 40000, 2000
	tb := population(t, N, 0, 1, 5)
	// Exact count of ra in [150, 180).
	ra, _ := tb.Float64("ra")
	exact := 0
	for _, v := range ra {
		if v >= 150 && v < 180 {
			exact++
		}
	}
	im, _ := impression.New(tb, impression.Config{Name: "u", Size: n, Seed: 6})
	for i := 0; i < N; i++ {
		im.Offer(int32(i))
	}
	lt, w, _ := im.Table()
	l := Layer{Table: lt, Weights: w, BaseRows: N}
	q := engine.Query{
		Table: "u",
		Where: expr.And{
			L: expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: "ra"}, Right: 150},
			R: expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "ra"}, Right: 180},
		},
		Aggs: []engine.AggSpec{{Func: engine.Count}},
	}
	ests, err := AggregateOn(l, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !ests[0].Interval.Contains(float64(exact)) {
		t.Fatalf("count interval [%v, %v] misses truth %d",
			ests[0].Interval.Lo(), ests[0].Interval.Hi(), exact)
	}
	if ests[0].SampleRows == 0 {
		t.Fatal("no sample support recorded")
	}
}

func TestMinMaxUnbounded(t *testing.T) {
	tb := population(t, 1000, 5, 1, 7)
	im, _ := impression.New(tb, impression.Config{Name: "u", Size: 100, Seed: 8})
	for i := 0; i < 1000; i++ {
		im.Offer(int32(i))
	}
	lt, w, _ := im.Table()
	l := Layer{Table: lt, Weights: w, BaseRows: 1000}
	q := engine.Query{Table: "u", Aggs: []engine.AggSpec{
		{Func: engine.Min, Arg: expr.ColRef{Name: "x"}},
		{Func: engine.Max, Arg: expr.ColRef{Name: "x"}},
		{Func: engine.StdDev, Arg: expr.ColRef{Name: "x"}},
	}}
	ests, err := AggregateOn(l, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ests {
		if !math.IsInf(e.Interval.HalfWidth, 1) {
			t.Fatalf("%s interval should be unbounded on a sample", e.Spec.Func)
		}
	}
}

func TestEmptyLayer(t *testing.T) {
	tb := table.MustNew("empty", table.Schema{{Name: "x", Type: column.Float64}})
	l := Layer{Table: tb, BaseRows: 1000}
	q := engine.Query{Table: "e", Aggs: []engine.AggSpec{{Func: engine.Avg, Arg: expr.ColRef{Name: "x"}}}}
	ests, err := AggregateOn(l, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(ests[0].Interval.HalfWidth, 1) {
		t.Fatal("empty layer should give unbounded interval")
	}
}

func TestEmptySelection(t *testing.T) {
	tb := population(t, 100, 0, 1, 9)
	l := Layer{Table: tb, BaseRows: 10000}
	q := engine.Query{
		Table: "u",
		Where: expr.Cmp{Op: vec.Gt, Left: expr.ColRef{Name: "ra"}, Right: 999},
		Aggs:  []engine.AggSpec{{Func: engine.Avg, Arg: expr.ColRef{Name: "x"}}},
	}
	ests, err := AggregateOn(l, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(ests[0].Interval.HalfWidth, 1) {
		t.Fatal("no-support AVG should be unbounded")
	}
}

// biasedLayer builds a biased impression focused on ra≈160 over a
// population whose x depends on ra, so bias matters.
func biasedLayer(t *testing.T, N, n int, seed uint64) (Layer, *table.Table) {
	t.Helper()
	tb := table.MustNew("base", table.Schema{
		{Name: "ra", Type: column.Float64},
		{Name: "x", Type: column.Float64},
	})
	r := xrand.New(seed)
	rows := make([]table.Row, 0, N)
	for i := 0; i < N; i++ {
		ra := 120 + r.Float64()*120
		// x correlates with ra: E[x | ra] = ra/10.
		x := ra/10 + r.NormFloat64()
		rows = append(rows, table.Row{ra, x})
	}
	if err := tb.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	logger, err := workload.NewLogger([]workload.AttrSpec{
		{Name: "ra", Min: 120, Max: 240, Beta: 30},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		logger.LogPoints([]expr.Point{{Attr: "ra", Value: 160 + r.NormFloat64()*5}})
	}
	im, err := impression.New(tb, impression.Config{
		Name: "b", Size: n, Policy: impression.Biased,
		Logger: logger, Attrs: []string{"ra"}, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		im.Offer(int32(i))
	}
	lt, w, err := im.Table()
	if err != nil {
		t.Fatal(err)
	}
	return Layer{Name: "b", Table: lt, Weights: w, BaseRows: int64(N)}, tb
}

func TestBiasedEstimatesCoverTruthOnFocalQuery(t *testing.T) {
	l, base := biasedLayer(t, 60000, 3000, 11)
	// Focal query: AVG(x) for ra in [150, 170).
	ra, _ := base.Float64("ra")
	x, _ := base.Float64("x")
	var sum float64
	cnt := 0
	for i := range ra {
		if ra[i] >= 150 && ra[i] < 170 {
			sum += x[i]
			cnt++
		}
	}
	truth := sum / float64(cnt)
	q := engine.Query{
		Table: "b",
		Where: expr.And{
			L: expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: "ra"}, Right: 150},
			R: expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "ra"}, Right: 170},
		},
		Aggs: []engine.AggSpec{{Func: engine.Avg, Arg: expr.ColRef{Name: "x"}, Alias: "a"}},
	}
	ests, err := AggregateOn(l, q, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !ests[0].Interval.Contains(truth) {
		t.Fatalf("focal AVG interval [%v, %v] misses truth %v",
			ests[0].Interval.Lo(), ests[0].Interval.Hi(), truth)
	}
	// With heavy focal oversampling the relative error must be small.
	if ests[0].RelError() > 0.02 {
		t.Fatalf("focal relative error = %v", ests[0].RelError())
	}
}

func TestBiasedGlobalCountUnbiased(t *testing.T) {
	// Weighted estimation must undo the bias for whole-table aggregates:
	// COUNT of ra >= 200 (anti-focal) should still cover the truth.
	l, base := biasedLayer(t, 60000, 3000, 13)
	ra, _ := base.Float64("ra")
	exact := 0
	for _, v := range ra {
		if v >= 200 {
			exact++
		}
	}
	q := engine.Query{
		Table: "b",
		Where: expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: "ra"}, Right: 200},
		Aggs:  []engine.AggSpec{{Func: engine.Count}},
	}
	ests, err := AggregateOn(l, q, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !ests[0].Interval.Contains(float64(exact)) {
		t.Fatalf("anti-focal count interval [%v, %v] misses truth %d",
			ests[0].Interval.Lo(), ests[0].Interval.Hi(), exact)
	}
	// Anti-focal queries must be *less* precise than focal ones — the
	// documented downside of biased sampling (§4).
	if ests[0].RelError() <= 0 {
		t.Fatal("anti-focal count has no error")
	}
}

func TestUniformIntervalCoverage(t *testing.T) {
	// Repeated uniform sampling: the 95% AVG interval must cover the
	// population mean at roughly the nominal rate.
	const N, n, trials = 20000, 500, 120
	tb := population(t, N, 10, 3, 17)
	truth := exactAvg(t, tb, "x")
	q := engine.Query{Table: "u", Aggs: []engine.AggSpec{
		{Func: engine.Avg, Arg: expr.ColRef{Name: "x"}, Alias: "a"}}}
	covered := 0
	for tr := 0; tr < trials; tr++ {
		im, _ := impression.New(tb, impression.Config{Name: "u", Size: n, Seed: uint64(1000 + tr)})
		for i := 0; i < N; i++ {
			im.Offer(int32(i))
		}
		lt, w, _ := im.Table()
		ests, err := AggregateOn(Layer{Table: lt, Weights: w, BaseRows: N}, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if ests[0].Interval.Contains(truth) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.88 {
		t.Fatalf("95%% interval covered only %.2f", rate)
	}
}
