package estimate

import (
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/engine"
	"sciborq/internal/expr"
	"sciborq/internal/impression"
	"sciborq/internal/table"
	"sciborq/internal/vec"
	"sciborq/internal/workload"
	"sciborq/internal/xrand"
)

// clampedFixture builds the regime where acceptance clamps: a biased
// impression at n/N = 10% with strong focal interest, where the bias
// factor alone misrepresents sample composition and CountWeights (the
// inclusion probabilities) are required for share estimates.
func clampedFixture(t *testing.T) (Layer, *table.Table) {
	t.Helper()
	const N, n = 40000, 4000
	tb := table.MustNew("base", table.Schema{
		{Name: "ra", Type: column.Float64},
	})
	r := xrand.New(51)
	rows := make([]table.Row, 0, N)
	for i := 0; i < N; i++ {
		rows = append(rows, table.Row{120 + r.Float64()*120})
	}
	if err := tb.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	logger, err := workload.NewLogger([]workload.AttrSpec{
		{Name: "ra", Min: 120, Max: 240, Beta: 30},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		logger.LogPoints([]expr.Point{{Attr: "ra", Value: 165 + r.NormFloat64()*4}})
	}
	im, err := impression.New(tb, impression.Config{
		Name: "clamped", Size: n, Policy: impression.Biased,
		Logger: logger, Attrs: []string{"ra"}, Seed: 52,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		im.Offer(int32(i))
	}
	m, err := im.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return Layer{
		Name: "clamped", Table: m.Table,
		Weights: m.RatioWeights, CountWeights: m.InclusionWeights,
		BaseRows: N,
	}, tb
}

func TestCountWeightsFixClampedCounts(t *testing.T) {
	layer, base := clampedFixture(t)
	ra, _ := base.Float64("ra")
	exact := 0
	for _, v := range ra {
		if v >= 160 && v < 170 {
			exact++
		}
	}
	pred := expr.And{
		L: expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: "ra"}, Right: 160},
		R: expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "ra"}, Right: 170},
	}
	q := engine.Query{Table: "c", Where: pred, Aggs: []engine.AggSpec{{Func: engine.Count}}}

	// With inclusion weights: the focal count must be in the right
	// ballpark (within 35% — the clamped regime is the documented worst
	// case) and covered at 99%.
	withPi, err := AggregateOn(layer, q, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	gotPi := withPi[0].Value()

	// Without them (ratio-weight fallback): the same count is far off —
	// the failure mode that motivated the two-vector design.
	noPi := layer
	noPi.CountWeights = nil
	withW, err := AggregateOn(noPi, q, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	gotW := withW[0].Value()

	relPi := abs(gotPi-float64(exact)) / float64(exact)
	relW := abs(gotW-float64(exact)) / float64(exact)
	if relPi > 0.35 {
		t.Fatalf("inclusion-weighted count off by %.0f%% (got %v, exact %d)", relPi*100, gotPi, exact)
	}
	if relW < relPi {
		t.Fatalf("ratio-weight fallback (%.0f%% error) beat inclusion weights (%.0f%%); fixture not in clamped regime",
			relW*100, relPi*100)
	}
}

func TestCountWeightsValidation(t *testing.T) {
	layer, _ := clampedFixture(t)
	layer.CountWeights = layer.CountWeights[:1]
	if err := layer.Validate(); err == nil {
		t.Fatal("count-weight length mismatch accepted")
	}
}

func TestAvgStillUsesRatioWeights(t *testing.T) {
	// AVG must be driven by Weights, not CountWeights: poisoning the
	// CountWeights must not change an AVG estimate.
	layer, _ := clampedFixture(t)
	q := engine.Query{Table: "c", Aggs: []engine.AggSpec{
		{Func: engine.Avg, Arg: expr.ColRef{Name: "ra"}, Alias: "a"}}}
	before, err := AggregateOn(layer, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := make([]float64, len(layer.CountWeights))
	for i := range poisoned {
		poisoned[i] = 1e-9
	}
	layer.CountWeights = poisoned
	after, err := AggregateOn(layer, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if before[0].Value() != after[0].Value() {
		t.Fatal("AVG estimate depends on CountWeights")
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
