// Package estimate turns query results computed on an impression into
// population estimates with confidence intervals — the "quality of
// results" machinery of §3.2.
//
// Uniform impressions use the classical CLT with finite-population
// correction. Biased impressions carry per-tuple bias weights w_i
// (proportional to inclusion probability); estimation uses the Hájek
// self-normalised estimator with importance weights u_i = 1/w_i and
// delta-method (linearisation) variance:
//
//	μ̂ = Σ u_i g_i / Σ u_i
//	Var(μ̂) ≈ Σ u_i² (g_i − μ̂)² / (Σ u_i)²
//
// which reduces to the classical estimator when all weights are equal.
// Interval coverage is validated empirically in the test suite.
package estimate

import (
	"fmt"
	"math"

	"sciborq/internal/engine"
	"sciborq/internal/stats"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// weightFloor guards against division by the zero weights that can only
// occur for tuples retained from a biased reservoir's fill phase.
const weightFloor = 1e-12

// Estimate is one aggregate estimated from a sample layer.
type Estimate struct {
	Spec     engine.AggSpec
	Interval stats.Interval
	// Exact marks estimates computed on base data (zero error).
	Exact bool
	// SampleRows is the number of sample rows that satisfied the query
	// predicate (the support of the estimate).
	SampleRows int
}

// Value returns the point estimate.
func (e Estimate) Value() float64 { return e.Interval.Estimate }

// RelError returns the relative half-width of the interval (0 if exact).
func (e Estimate) RelError() float64 {
	if e.Exact {
		return 0
	}
	return e.Interval.RelativeError()
}

// Layer describes one evaluation target for the estimators: a
// materialised sample (or the base table itself) plus metadata.
type Layer struct {
	Name  string
	Table *table.Table
	// Weights are per-row bias weights used by ratio estimators (AVG);
	// nil means uniform.
	Weights []float64
	// CountWeights are per-row inclusion probabilities used by share
	// estimators (COUNT, SUM); nil falls back to Weights. Biased
	// reservoirs need the distinction: their composition is a
	// nonlinear (clamped) function of the bias factor that only the
	// inclusion model captures, while ratio estimators prefer the
	// smooth bias factors whose dispersion is orders of magnitude
	// smaller.
	CountWeights []float64
	// BaseRows is the base-table cardinality N the sample represents.
	BaseRows int64
	// Exact marks the base table itself: estimates carry zero error.
	Exact bool
}

// Validate checks the layer invariants.
func (l Layer) Validate() error {
	if l.Table == nil {
		return fmt.Errorf("estimate: layer %q has no table", l.Name)
	}
	if l.Weights != nil && len(l.Weights) != l.Table.Len() {
		return fmt.Errorf("estimate: layer %q has %d weights for %d rows",
			l.Name, len(l.Weights), l.Table.Len())
	}
	if l.CountWeights != nil && len(l.CountWeights) != l.Table.Len() {
		return fmt.Errorf("estimate: layer %q has %d count weights for %d rows",
			l.Name, len(l.CountWeights), l.Table.Len())
	}
	if l.BaseRows < 0 {
		return fmt.Errorf("estimate: layer %q has negative base cardinality", l.Name)
	}
	return nil
}

// AggregateOn evaluates the aggregates of q against the layer and
// returns one Estimate per aggregate with intervals at the given
// confidence level. The layer scan uses the default (parallel)
// execution options.
func AggregateOn(l Layer, q engine.Query, level float64) ([]Estimate, error) {
	return AggregateOnOpts(l, q, level, engine.DefaultExecOptions())
}

// AggregateOnOpts is AggregateOn with explicit execution options: the
// predicate scan over the layer runs on the morsel-driven worker pool,
// which is what lets time-bounded execution promise the parallel
// executor's rows/sec rather than a single core's.
func AggregateOnOpts(l Layer, q engine.Query, level float64, opts engine.ExecOptions) ([]Estimate, error) {
	// One snapshot for the whole estimation: the filter selection, the
	// materialised aggregate arguments, and every Len() must describe
	// the same row prefix even while the layer's source table is being
	// loaded concurrently.
	l.Table = l.Table.Snapshot()
	if err := validateAggQuery(l, q); err != nil {
		return nil, err
	}
	sel, err := engine.Filter(l.Table, q.Pred(), opts)
	if err != nil {
		return nil, err
	}
	return estimateAll(l, q, level, sel)
}

// AggregateOnFiltered is AggregateOnOpts with the WHERE selection
// already computed — the recycler's hook into bounded execution. sel
// must list exactly the rows of l.Table satisfying q's predicate (nil =
// all rows), evaluated against the same snapshot state; the predicate
// is not re-evaluated here.
func AggregateOnFiltered(l Layer, q engine.Query, level float64, sel vec.Sel) ([]Estimate, error) {
	l.Table = l.Table.Snapshot()
	if err := validateAggQuery(l, q); err != nil {
		return nil, err
	}
	return estimateAll(l, q, level, sel)
}

func validateAggQuery(l Layer, q engine.Query) error {
	if err := l.Validate(); err != nil {
		return err
	}
	if len(q.Aggs) == 0 {
		return fmt.Errorf("estimate: query has no aggregates")
	}
	if q.GroupBy != "" {
		return fmt.Errorf("estimate: grouped bounded queries are not supported (run one query per group)")
	}
	return nil
}

// estimateAll computes every aggregate estimate of q from a predicate
// selection over the layer snapshot.
func estimateAll(l Layer, q engine.Query, level float64, sel vec.Sel) ([]Estimate, error) {
	matched := sel.Len(l.Table.Len())
	out := make([]Estimate, 0, len(q.Aggs))
	for _, spec := range q.Aggs {
		var full []float64
		if spec.Arg != nil {
			var err error
			full, err = spec.Arg.EvalF64(l.Table)
			if err != nil {
				return nil, err
			}
		}
		est, err := estimateOne(l, spec, full, sel, matched, level)
		if err != nil {
			return nil, err
		}
		out = append(out, est)
	}
	return out, nil
}

// estimateOne computes one aggregate estimate. full is the materialised
// aggregate argument over ALL layer rows (nil for COUNT(*)); sel is the
// predicate selection (nil = all rows); matched = |sel|.
func estimateOne(l Layer, spec engine.AggSpec, full []float64, sel vec.Sel, matched int, level float64) (Estimate, error) {
	if l.Exact {
		return exactEstimate(spec, full, sel, matched, level), nil
	}
	n := l.Table.Len()
	if n == 0 {
		return Estimate{
			Spec:     spec,
			Interval: stats.Interval{HalfWidth: math.Inf(1), Level: level},
		}, nil
	}
	fpc := stats.FPC(int64(n), l.BaseRows)
	switch spec.Func {
	case engine.Count:
		// COUNT(predicate) = N · E[1_A]; h is the membership indicator.
		u := inclusionImportance(l)
		h := indicator(n, sel, full, false)
		iv := hajekMean(u, h, level, fpc).Scale(float64(l.BaseRows))
		return Estimate{Spec: spec, Interval: iv, SampleRows: matched}, nil
	case engine.Sum:
		// SUM_A(g) = N · E[g·1_A]; h carries g on matching rows.
		u := inclusionImportance(l)
		h := indicator(n, sel, full, true)
		iv := hajekMean(u, h, level, fpc).Scale(float64(l.BaseRows))
		return Estimate{Spec: spec, Interval: iv, SampleRows: matched}, nil
	case engine.Avg:
		u := importanceWeights(l)
		iv := hajekMeanSubset(u, full, sel, level, fpc)
		return Estimate{Spec: spec, Interval: iv, SampleRows: matched}, nil
	case engine.Min, engine.Max, engine.StdDev:
		// Population extremes (and spread) cannot be bounded from a
		// sample without distributional assumptions: report the sample
		// statistic with an unbounded interval so the bounded executor
		// escalates to base data whenever a bound is requested.
		var m stats.Moments
		m.ObserveAll(vec.GatherFloat64(full, sel))
		st := engine.AggState{Spec: spec, Moments: m}
		return Estimate{
			Spec:       spec,
			Interval:   stats.Interval{Estimate: st.Value(), HalfWidth: math.Inf(1), Level: level},
			SampleRows: matched,
		}, nil
	}
	return Estimate{}, fmt.Errorf("estimate: unsupported aggregate %s", spec.Func)
}

// exactEstimate computes the aggregate exactly (base-data layer).
func exactEstimate(spec engine.AggSpec, full []float64, sel vec.Sel, matched int, level float64) Estimate {
	var value float64
	if spec.Func == engine.Count {
		value = float64(matched)
	} else {
		var m stats.Moments
		m.ObserveAll(vec.GatherFloat64(full, sel))
		value = (&engine.AggState{Spec: spec, Moments: m}).Value()
	}
	return Estimate{
		Spec:       spec,
		Interval:   stats.Interval{Estimate: value, Level: level},
		Exact:      true,
		SampleRows: matched,
	}
}

// importanceWeights returns u_i = 1/w_i over the ratio weights (all
// ones for uniform layers).
func importanceWeights(l Layer) []float64 {
	return invert(l.Weights, l.Table.Len())
}

// inclusionImportance returns u_i = 1/π_i over the inclusion weights,
// falling back to the ratio weights when none are recorded.
func inclusionImportance(l Layer) []float64 {
	if l.CountWeights != nil {
		return invert(l.CountWeights, l.Table.Len())
	}
	return invert(l.Weights, l.Table.Len())
}

// invert computes element-wise 1/w with a floor; nil weights mean
// uniform.
func invert(ws []float64, n int) []float64 {
	u := make([]float64, n)
	if ws == nil {
		for i := range u {
			u[i] = 1
		}
		return u
	}
	for i, w := range ws {
		if w < weightFloor || math.IsNaN(w) {
			w = weightFloor
		}
		u[i] = 1 / w
	}
	return u
}

// indicator builds the per-row vector h over all n rows: for rows in
// sel, h is the aggregate argument (when carry is true and full is
// non-nil) or 1; elsewhere 0.
func indicator(n int, sel vec.Sel, full []float64, carry bool) []float64 {
	h := make([]float64, n)
	set := func(pos int32) {
		if carry && full != nil {
			h[pos] = full[pos]
		} else {
			h[pos] = 1
		}
	}
	if sel == nil {
		for i := int32(0); i < int32(n); i++ {
			set(i)
		}
		return h
	}
	for _, pos := range sel {
		set(pos)
	}
	return h
}

// hajekMean returns the self-normalised estimate of E[h] over the whole
// population with importance weights u, and its delta-method interval.
func hajekMean(u, h []float64, level, fpc float64) stats.Interval {
	var sumU float64
	for _, v := range u {
		sumU += v
	}
	if sumU == 0 {
		return stats.Interval{HalfWidth: math.Inf(1), Level: level}
	}
	var mean float64
	for i := range h {
		mean += u[i] * h[i]
	}
	mean /= sumU
	var varSum float64
	for i := range h {
		d := h[i] - mean
		varSum += u[i] * u[i] * d * d
	}
	se := math.Sqrt(varSum) / sumU * fpc
	return stats.Interval{Estimate: mean, HalfWidth: stats.ZForConfidence(level) * se, Level: level}
}

// hajekMeanSubset returns the self-normalised estimate of E[g | A] using
// only the rows in sel.
func hajekMeanSubset(u, full []float64, sel vec.Sel, level, fpc float64) stats.Interval {
	idx := sel
	if idx == nil {
		idx = vec.NewSelAll(len(full))
	}
	if len(idx) == 0 {
		return stats.Interval{HalfWidth: math.Inf(1), Level: level}
	}
	var sumU float64
	for _, pos := range idx {
		sumU += u[pos]
	}
	if sumU == 0 {
		return stats.Interval{HalfWidth: math.Inf(1), Level: level}
	}
	var mean float64
	for _, pos := range idx {
		mean += u[pos] * full[pos]
	}
	mean /= sumU
	var varSum float64
	for _, pos := range idx {
		d := full[pos] - mean
		varSum += u[pos] * u[pos] * d * d
	}
	se := math.Sqrt(varSum) / sumU * fpc
	return stats.Interval{Estimate: mean, HalfWidth: stats.ZForConfidence(level) * se, Level: level}
}
