package estimate

import (
	"fmt"
	"math"

	"sciborq/internal/engine"
	"sciborq/internal/expr"
	"sciborq/internal/hashtab"
	"sciborq/internal/stats"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// Selection-native estimation: evaluate the aggregates of a bounded
// query directly over an impression's (positions, weights) view into a
// base-table snapshot — no standalone layer table, no per-query copy.
// The predicate runs through the engine's selection-vector scan
// (zone-map pruned, morsel-parallel, deterministic), and the Hájek
// estimators below consume the matched positions without materialising
// the indicator and importance arrays the table path builds: per query
// the only allocations are the matched selection itself.

// SelLayer describes one selection-native evaluation target: a sample
// of Base given by sorted row positions with row-aligned weights —
// exactly the shape of impression.View.
type SelLayer struct {
	Name string
	// Base is the base table (typically an already-taken snapshot; the
	// estimators snapshot defensively either way).
	Base *table.Table
	// Positions are the sampled row positions, sorted ascending and
	// within Base's snapshot length.
	Positions vec.Sel
	// Weights are per-row ratio weights used by ratio estimators
	// (AVG); nil means uniform.
	Weights []float64
	// CountWeights are per-row inclusion probabilities used by share
	// estimators (COUNT, SUM); nil falls back to Weights. See
	// Layer.CountWeights for why the two differ on biased reservoirs.
	CountWeights []float64
	// BaseRows is the base-table cardinality N the sample represents.
	BaseRows int64
}

// Validate checks the layer invariants that do not need row data.
func (sl SelLayer) Validate() error {
	if sl.Base == nil {
		return fmt.Errorf("estimate: selection layer %q has no base table", sl.Name)
	}
	if sl.Weights != nil && len(sl.Weights) != len(sl.Positions) {
		return fmt.Errorf("estimate: selection layer %q has %d weights for %d positions",
			sl.Name, len(sl.Weights), len(sl.Positions))
	}
	if sl.CountWeights != nil && len(sl.CountWeights) != len(sl.Positions) {
		return fmt.Errorf("estimate: selection layer %q has %d count weights for %d positions",
			sl.Name, len(sl.CountWeights), len(sl.Positions))
	}
	if sl.BaseRows < 0 {
		return fmt.Errorf("estimate: selection layer %q has negative base cardinality", sl.Name)
	}
	return nil
}

// AggregateOnSel evaluates the aggregates of q against the selection
// layer with default (parallel) execution options.
func AggregateOnSel(sl SelLayer, q engine.Query, level float64) ([]Estimate, error) {
	return AggregateOnSelOpts(sl, q, level, engine.DefaultExecOptions())
}

// AggregateOnSelOpts is AggregateOnSel with explicit execution options.
// The predicate scan runs the engine's selection-vector morsel path, so
// bounded execution over an impression pays |impression| rows — pruned
// further by zone maps — at the configured parallelism, never a layer
// materialisation.
func AggregateOnSelOpts(sl SelLayer, q engine.Query, level float64, opts engine.ExecOptions) ([]Estimate, error) {
	if err := sl.Validate(); err != nil {
		return nil, err
	}
	if len(q.Aggs) == 0 {
		return nil, fmt.Errorf("estimate: query has no aggregates")
	}
	if q.GroupBy != "" {
		return nil, fmt.Errorf("estimate: grouped bounded queries are not supported (run one query per group)")
	}
	snap := sl.Base.Snapshot()
	selBase, _, err := engine.FilterSel(snap, q.Pred(), sl.Positions, opts)
	if err != nil {
		return nil, err
	}
	selSamp := sampleIndices(sl.Positions, selBase, sl.Weights != nil || sl.CountWeights != nil)
	sumU, sumU2 := weightSums(shareWeights(sl), len(sl.Positions))
	out := make([]Estimate, 0, len(q.Aggs))
	for _, spec := range q.Aggs {
		var g []float64
		if spec.Arg != nil {
			// Sel-native argument evaluation: cost and allocation are
			// proportional to the matched sample, never the base table.
			g, err = expr.EvalScalarSel(snap, spec.Arg, selBase)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, estimateOneSel(sl, spec, g, selBase, selSamp, level, sumU, sumU2))
	}
	return out, nil
}

// GroupedAggregateOnSel evaluates a grouped aggregate query against a
// selection layer, producing per-group estimates — the selection-native
// form of GroupedAggregateOn. The matched sample rows are partitioned
// through the engine's dict-coded group-id path on the base snapshot,
// so keys and first-seen order agree with engine GROUP BY results over
// the same selection.
func GroupedAggregateOnSel(sl SelLayer, q engine.Query, level float64, opts engine.ExecOptions) ([]GroupEstimate, error) {
	if err := sl.Validate(); err != nil {
		return nil, err
	}
	if q.GroupBy == "" {
		return nil, fmt.Errorf("estimate: query has no GROUP BY")
	}
	if len(q.Aggs) == 0 {
		return nil, fmt.Errorf("estimate: grouped query has no aggregates")
	}
	snap := sl.Base.Snapshot()
	selBase, _, err := engine.FilterSel(snap, q.Pred(), sl.Positions, opts)
	if err != nil {
		return nil, err
	}
	selSamp := sampleIndices(sl.Positions, selBase, true)
	grp, err := engine.GroupingFor(snap, q.GroupBy)
	if err != nil {
		return nil, err
	}
	tab := hashtab.NewInt64Table(0)
	var gBase, gSamp []vec.Sel
	for i, bp := range selBase {
		gid, fresh := tab.GetOrInsert(grp.Key(bp))
		if fresh {
			gBase = append(gBase, nil)
			gSamp = append(gSamp, nil)
		}
		gBase[gid] = append(gBase[gid], bp)
		gSamp[gid] = append(gSamp[gid], selSamp[i])
	}
	// Share-weight sums describe the whole sample and are identical for
	// every group and aggregate: one pass, not groups x aggs passes.
	sumU, sumU2 := weightSums(shareWeights(sl), len(sl.Positions))
	out := make([]GroupEstimate, tab.Len())
	for gid, key := range tab.Keys() {
		ge := GroupEstimate{Key: grp.Render(key)}
		for _, spec := range q.Aggs {
			var g []float64
			if spec.Arg != nil {
				g, err = expr.EvalScalarSel(snap, spec.Arg, gBase[gid])
				if err != nil {
					return nil, err
				}
			}
			ge.Estimates = append(ge.Estimates, estimateOneSel(sl, spec, g, gBase[gid], gSamp[gid], level, sumU, sumU2))
		}
		out[gid] = ge
	}
	return out, nil
}

// sampleIndices maps matched base positions back to their indices in
// the sorted position vector — the alignment needed to look up
// per-sample weights. When no weights exist (want false) it returns nil
// and the estimators take the uniform path without the walk.
func sampleIndices(positions, selBase vec.Sel, want bool) vec.Sel {
	if !want {
		return nil
	}
	out := make(vec.Sel, len(selBase))
	j := 0
	for i, bp := range selBase {
		for j < len(positions) && positions[j] < bp {
			j++
		}
		out[i] = int32(j)
	}
	return out
}

// invWeight returns the importance weight u = 1/w for sample index si,
// with the same floor guard as the table path. nil weights are uniform.
func invWeight(ws []float64, selSamp vec.Sel, i int) float64 {
	if ws == nil {
		return 1
	}
	w := ws[selSamp[i]]
	if w < weightFloor || math.IsNaN(w) {
		w = weightFloor
	}
	return 1 / w
}

// weightSums returns Σ u_i and Σ u_i² over the whole sample.
func weightSums(ws []float64, k int) (sumU, sumU2 float64) {
	if ws == nil {
		return float64(k), float64(k)
	}
	for _, w := range ws {
		if w < weightFloor || math.IsNaN(w) {
			w = weightFloor
		}
		u := 1 / w
		sumU += u
		sumU2 += u * u
	}
	return sumU, sumU2
}

// estimateOneSel computes one aggregate estimate over the matched
// selection. g is the aggregate argument evaluated at the matched rows
// (aligned with selBase; nil for COUNT(*)); selSamp holds the matched
// rows' sample indices (nil when the layer is unweighted). sumU/sumU2
// are the share-weight sums over the whole sample (weightSums),
// computed once by the caller.
func estimateOneSel(sl SelLayer, spec engine.AggSpec, g []float64, selBase, selSamp vec.Sel, level, sumU, sumU2 float64) Estimate {
	k := len(sl.Positions)
	matched := len(selBase)
	if k == 0 {
		return Estimate{
			Spec:     spec,
			Interval: stats.Interval{HalfWidth: math.Inf(1), Level: level},
		}
	}
	fpc := stats.FPC(int64(k), sl.BaseRows)
	switch spec.Func {
	case engine.Count:
		// COUNT(predicate) = N · E[1_A].
		iv := selHajekShare(shareWeights(sl), selSamp, nil, matched, level, fpc, sumU, sumU2)
		return Estimate{Spec: spec, Interval: iv.Scale(float64(sl.BaseRows)), SampleRows: matched}
	case engine.Sum:
		// SUM_A(g) = N · E[g·1_A].
		iv := selHajekShare(shareWeights(sl), selSamp, g, matched, level, fpc, sumU, sumU2)
		return Estimate{Spec: spec, Interval: iv.Scale(float64(sl.BaseRows)), SampleRows: matched}
	case engine.Avg:
		iv := selHajekMean(sl.Weights, selSamp, g, level, fpc)
		return Estimate{Spec: spec, Interval: iv, SampleRows: matched}
	case engine.Min, engine.Max, engine.StdDev:
		// Population extremes (and spread) cannot be bounded from a
		// sample without distributional assumptions; the unbounded
		// interval makes the bounded executor escalate to base data
		// whenever a bound is requested.
		var m stats.Moments
		m.ObserveAll(g)
		st := engine.AggState{Spec: spec, Moments: m}
		return Estimate{
			Spec:       spec,
			Interval:   stats.Interval{Estimate: st.Value(), HalfWidth: math.Inf(1), Level: level},
			SampleRows: matched,
		}
	}
	return Estimate{
		Spec:     spec,
		Interval: stats.Interval{Estimate: math.NaN(), HalfWidth: math.Inf(1), Level: level},
	}
}

// shareWeights returns the weights share estimators divide by:
// inclusion probabilities, falling back to ratio weights.
func shareWeights(sl SelLayer) []float64 {
	if sl.CountWeights != nil {
		return sl.CountWeights
	}
	return sl.Weights
}

// selHajekShare is hajekMean over the membership vector h — h = 1 (or
// the carried argument g, aligned with the matched rows) on matched
// rows, 0 elsewhere — computed without materialising h or the
// importance array: unmatched rows contribute (Σu² − Σ_matched u²)·
// mean² to the variance in one closed form. sumU/sumU2 are the
// whole-sample weight sums, hoisted to the caller so grouped
// estimation pays one pass, not one per group per aggregate.
func selHajekShare(ws []float64, selSamp vec.Sel, g []float64, matched int, level, fpc, sumU, sumU2 float64) stats.Interval {
	if sumU == 0 {
		return stats.Interval{HalfWidth: math.Inf(1), Level: level}
	}
	var mean float64
	for i := 0; i < matched; i++ {
		u := invWeight(ws, selSamp, i)
		if g != nil {
			mean += u * g[i]
		} else {
			mean += u
		}
	}
	mean /= sumU
	var varSum, matchedU2 float64
	for i := 0; i < matched; i++ {
		u := invWeight(ws, selSamp, i)
		h := 1.0
		if g != nil {
			h = g[i]
		}
		d := h - mean
		varSum += u * u * d * d
		matchedU2 += u * u
	}
	varSum += (sumU2 - matchedU2) * mean * mean
	if varSum < 0 {
		varSum = 0 // float cancellation guard
	}
	se := math.Sqrt(varSum) / sumU * fpc
	return stats.Interval{Estimate: mean, HalfWidth: stats.ZForConfidence(level) * se, Level: level}
}

// selHajekMean is hajekMeanSubset computed over the matched selection
// directly: the self-normalised estimate of E[g | A] with ratio
// weights, g aligned with the matched rows.
func selHajekMean(ws []float64, selSamp vec.Sel, g []float64, level, fpc float64) stats.Interval {
	if len(g) == 0 {
		return stats.Interval{HalfWidth: math.Inf(1), Level: level}
	}
	var sumU float64
	for i := range g {
		sumU += invWeight(ws, selSamp, i)
	}
	if sumU == 0 {
		return stats.Interval{HalfWidth: math.Inf(1), Level: level}
	}
	var mean float64
	for i, v := range g {
		mean += invWeight(ws, selSamp, i) * v
	}
	mean /= sumU
	var varSum float64
	for i, v := range g {
		u := invWeight(ws, selSamp, i)
		d := v - mean
		varSum += u * u * d * d
	}
	se := math.Sqrt(varSum) / sumU * fpc
	return stats.Interval{Estimate: mean, HalfWidth: stats.ZForConfidence(level) * se, Level: level}
}
