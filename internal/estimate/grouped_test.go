package estimate

import (
	"math"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/engine"
	"sciborq/internal/expr"
	"sciborq/internal/impression"
	"sciborq/internal/table"
	"sciborq/internal/vec"
	"sciborq/internal/xrand"
)

// groupedFixture: 3 object types with different frequencies and means.
func groupedFixture(t *testing.T, N int) *table.Table {
	t.Helper()
	tb := table.MustNew("base", table.Schema{
		{Name: "type", Type: column.String},
		{Name: "x", Type: column.Float64},
	})
	r := xrand.New(71)
	rows := make([]table.Row, 0, N)
	for i := 0; i < N; i++ {
		u := r.Float64()
		switch {
		case u < 0.6:
			rows = append(rows, table.Row{"GALAXY", 10 + r.NormFloat64()})
		case u < 0.9:
			rows = append(rows, table.Row{"STAR", 20 + r.NormFloat64()})
		default:
			rows = append(rows, table.Row{"QSO", 30 + r.NormFloat64()})
		}
	}
	if err := tb.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestGroupedAggregateOnValidation(t *testing.T) {
	tb := groupedFixture(t, 100)
	l := Layer{Table: tb, BaseRows: 100}
	q := engine.Query{Table: "b", Aggs: []engine.AggSpec{{Func: engine.Count}}}
	if _, err := GroupedAggregateOn(l, q, 0.95); err == nil {
		t.Fatal("missing GROUP BY accepted")
	}
	q = engine.Query{Table: "b", GroupBy: "type"}
	if _, err := GroupedAggregateOn(l, q, 0.95); err == nil {
		t.Fatal("missing aggregates accepted")
	}
	q = engine.Query{Table: "b", GroupBy: "x", Aggs: []engine.AggSpec{{Func: engine.Count}}}
	if _, err := GroupedAggregateOn(l, q, 0.95); err == nil {
		t.Fatal("GROUP BY DOUBLE accepted")
	}
	q = engine.Query{Table: "b", GroupBy: "zzz", Aggs: []engine.AggSpec{{Func: engine.Count}}}
	if _, err := GroupedAggregateOn(l, q, 0.95); err == nil {
		t.Fatal("missing group column accepted")
	}
}

func TestGroupedEstimatesCoverExactGroups(t *testing.T) {
	const N, n = 60000, 3000
	base := groupedFixture(t, N)
	// Exact per-group counts and means.
	exactCount := map[string]float64{}
	exactMean := map[string]float64{}
	typeCol := base.MustCol("type").(*column.StringCol)
	xs, _ := base.Float64("x")
	for i := 0; i < base.Len(); i++ {
		k := typeCol.Value(int32(i))
		exactCount[k]++
		exactMean[k] += xs[i]
	}
	for k := range exactMean {
		exactMean[k] /= exactCount[k]
	}

	im, err := impression.New(base, impression.Config{Name: "u", Size: n, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < N; i++ {
		im.Offer(int32(i))
	}
	lt, w, _ := im.Table()
	l := Layer{Table: lt, Weights: w, BaseRows: N}
	q := engine.Query{
		Table:   "u",
		GroupBy: "type",
		Aggs: []engine.AggSpec{
			{Func: engine.Count},
			{Func: engine.Avg, Arg: expr.ColRef{Name: "x"}, Alias: "m"},
		},
	}
	groups, err := GroupedAggregateOn(l, q, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	for _, g := range groups {
		count, mean := g.Estimates[0], g.Estimates[1]
		if !count.Interval.Contains(exactCount[g.Key]) {
			t.Fatalf("[%s] count [%v, %v] misses %v",
				g.Key, count.Interval.Lo(), count.Interval.Hi(), exactCount[g.Key])
		}
		if !mean.Interval.Contains(exactMean[g.Key]) {
			t.Fatalf("[%s] mean [%v, %v] misses %v",
				g.Key, mean.Interval.Lo(), mean.Interval.Hi(), exactMean[g.Key])
		}
		// Rarer groups must carry wider relative count errors.
	}
	// QSO (10%) must have a wider count interval than GALAXY (60%).
	rel := map[string]float64{}
	for _, g := range groups {
		rel[g.Key] = g.Estimates[0].RelError()
	}
	if rel["QSO"] <= rel["GALAXY"] {
		t.Fatalf("rare group not wider: %v", rel)
	}
}

func TestGroupedWithPredicate(t *testing.T) {
	base := groupedFixture(t, 20000)
	l := Layer{Table: base, BaseRows: 20000, Exact: true}
	q := engine.Query{
		Table:   "b",
		Where:   expr.Cmp{Op: vec.Gt, Left: expr.ColRef{Name: "x"}, Right: 15},
		GroupBy: "type",
		Aggs:    []engine.AggSpec{{Func: engine.Count}},
	}
	groups, err := GroupedAggregateOn(l, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// x > 15 removes essentially all galaxies (mean 10): the surviving
	// groups are STAR and QSO plus a possible galaxy tail.
	for _, g := range groups {
		if g.Key == "GALAXY" && g.Estimates[0].Value() > 200 {
			t.Fatalf("galaxy tail too fat: %v", g.Estimates[0].Value())
		}
		if (g.Key == "STAR" || g.Key == "QSO") && g.Estimates[0].Value() == 0 {
			t.Fatalf("group %s lost", g.Key)
		}
	}
}

func TestGroupedGroupOrderIsFirstSeen(t *testing.T) {
	tb := table.MustNew("t", table.Schema{
		{Name: "g", Type: column.Int64},
		{Name: "x", Type: column.Float64},
	})
	for _, r := range []table.Row{
		{int64(7), 1.0}, {int64(3), 2.0}, {int64(7), 3.0}, {int64(1), 4.0},
	} {
		if err := tb.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	l := Layer{Table: tb, BaseRows: 4, Exact: true}
	q := engine.Query{Table: "t", GroupBy: "g", Aggs: []engine.AggSpec{{Func: engine.Count}}}
	groups, err := GroupedAggregateOn(l, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"7", "3", "1"}
	for i, g := range groups {
		if g.Key != want[i] {
			t.Fatalf("order = %v, want %v", groups, want)
		}
	}
	if math.Abs(groups[0].Estimates[0].Value()-2) > 1e-12 {
		t.Fatalf("group 7 count = %v", groups[0].Estimates[0].Value())
	}
}
