package estimate

import (
	"fmt"

	"sciborq/internal/column"
	"sciborq/internal/engine"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// GroupEstimate is the estimate set for one group key.
type GroupEstimate struct {
	Key       string
	Estimates []Estimate
}

// GroupedAggregateOn evaluates a grouped aggregate query against a
// layer, producing per-group estimates with confidence intervals: the
// layer is partitioned by the grouping column and each partition is
// estimated as an ordinary filtered aggregate. Groups that do not occur
// in the sample are necessarily absent (their population share is below
// the layer's resolution — exactly the paper's cue to escalate to a more
// detailed impression).
func GroupedAggregateOn(l Layer, q engine.Query, level float64) ([]GroupEstimate, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if q.GroupBy == "" {
		return nil, fmt.Errorf("estimate: query has no GROUP BY")
	}
	if len(q.Aggs) == 0 {
		return nil, fmt.Errorf("estimate: grouped query has no aggregates")
	}
	// Snapshot once so the selection, partitioning, and argument
	// materialisation all see the same row prefix under concurrent load.
	l.Table = l.Table.Snapshot()
	sel, err := q.Pred().Filter(l.Table, nil)
	if err != nil {
		return nil, err
	}
	groups, order, err := partition(l.Table, q.GroupBy, sel)
	if err != nil {
		return nil, err
	}
	// Materialise aggregate arguments once over the whole layer.
	fulls := make([][]float64, len(q.Aggs))
	for i, spec := range q.Aggs {
		if spec.Arg == nil {
			continue
		}
		full, err := spec.Arg.EvalF64(l.Table)
		if err != nil {
			return nil, err
		}
		fulls[i] = full
	}
	out := make([]GroupEstimate, 0, len(order))
	for _, key := range order {
		gsel := groups[key]
		ge := GroupEstimate{Key: key}
		for i, spec := range q.Aggs {
			est, err := estimateOne(l, spec, fulls[i], gsel, len(gsel), level)
			if err != nil {
				return nil, err
			}
			ge.Estimates = append(ge.Estimates, est)
		}
		out = append(out, ge)
	}
	return out, nil
}

// partition splits sel by the grouping column's value, preserving
// first-seen order.
func partition(t *table.Table, groupBy string, sel vec.Sel) (map[string]vec.Sel, []string, error) {
	col, err := t.Col(groupBy)
	if err != nil {
		return nil, nil, err
	}
	var key func(i int32) string
	switch c := col.(type) {
	case *column.Int64Col:
		key = func(i int32) string { return fmt.Sprintf("%d", c.Data[i]) }
	case *column.StringCol:
		key = func(i int32) string { return c.Value(i) }
	default:
		return nil, nil, fmt.Errorf("estimate: GROUP BY %q: unsupported type %s", groupBy, col.Type())
	}
	if sel == nil {
		sel = vec.NewSelAll(t.Len())
	}
	groups := make(map[string]vec.Sel)
	var order []string
	for _, pos := range sel {
		k := key(pos)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], pos)
	}
	return groups, order, nil
}
