package estimate

import (
	"fmt"

	"sciborq/internal/engine"
	"sciborq/internal/hashtab"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// GroupEstimate is the estimate set for one group key.
type GroupEstimate struct {
	Key       string
	Estimates []Estimate
}

// GroupedAggregateOn evaluates a grouped aggregate query against a
// layer, producing per-group estimates with confidence intervals: the
// layer is partitioned by the grouping column and each partition is
// estimated as an ordinary filtered aggregate. Groups that do not occur
// in the sample are necessarily absent (their population share is below
// the layer's resolution — exactly the paper's cue to escalate to a more
// detailed impression).
func GroupedAggregateOn(l Layer, q engine.Query, level float64) ([]GroupEstimate, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if q.GroupBy == "" {
		return nil, fmt.Errorf("estimate: query has no GROUP BY")
	}
	if len(q.Aggs) == 0 {
		return nil, fmt.Errorf("estimate: grouped query has no aggregates")
	}
	// Snapshot once so the selection, partitioning, and argument
	// materialisation all see the same row prefix under concurrent load.
	l.Table = l.Table.Snapshot()
	sel, err := q.Pred().Filter(l.Table, nil)
	if err != nil {
		return nil, err
	}
	groups, keys, err := partition(l.Table, q.GroupBy, sel)
	if err != nil {
		return nil, err
	}
	// Materialise aggregate arguments once over the whole layer.
	fulls := make([][]float64, len(q.Aggs))
	for i, spec := range q.Aggs {
		if spec.Arg == nil {
			continue
		}
		full, err := spec.Arg.EvalF64(l.Table)
		if err != nil {
			return nil, err
		}
		fulls[i] = full
	}
	out := make([]GroupEstimate, 0, len(keys))
	for gi, key := range keys {
		gsel := groups[gi]
		ge := GroupEstimate{Key: key}
		for i, spec := range q.Aggs {
			est, err := estimateOne(l, spec, fulls[i], gsel, len(gsel), level)
			if err != nil {
				return nil, err
			}
			ge.Estimates = append(ge.Estimates, est)
		}
		out = append(out, ge)
	}
	return out, nil
}

// partition splits sel by the grouping column's value, preserving
// first-seen order: groups[i] holds the row positions of the group
// whose rendered key is keys[i]. Rows hash through the engine's own
// dict-coded group-id path (engine.GroupingFor: BIGINT values and
// VARCHAR dictionary codes into a flat hashtab table assigning dense
// ids), so grouped estimates agree with engine GROUP BY results on
// keys and group order by construction; key strings materialise once
// per group, not once per row.
func partition(t *table.Table, groupBy string, sel vec.Sel) ([]vec.Sel, []string, error) {
	grp, err := engine.GroupingFor(t, groupBy)
	if err != nil {
		return nil, nil, err
	}
	tab := hashtab.NewInt64Table(0)
	var groups []vec.Sel
	add := func(pos int32) {
		gid, fresh := tab.GetOrInsert(grp.Key(pos))
		if fresh {
			groups = append(groups, nil)
		}
		groups[gid] = append(groups[gid], pos)
	}
	if sel == nil {
		for i, n := 0, t.Len(); i < n; i++ {
			add(int32(i))
		}
	} else {
		for _, pos := range sel {
			add(pos)
		}
	}
	keys := make([]string, tab.Len())
	for gid, k := range tab.Keys() {
		keys[gid] = grp.Render(k)
	}
	return groups, keys, nil
}
