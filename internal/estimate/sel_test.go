package estimate

import (
	"math"
	"math/rand"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/engine"
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// selEstFixture builds a base table, a sorted random position vector,
// and the equivalent materialised layer with aligned weights.
func selEstFixture(t *testing.T, n int, weighted bool, seed int64) (SelLayer, Layer) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	gs := make([]int64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.NormFloat64()*10 + 50
		gs[i] = int64(i % 5)
	}
	base := table.MustNew("base", table.Schema{
		{Name: "x", Type: column.Float64},
		{Name: "g", Type: column.Int64},
	})
	if err := base.AppendColumns([]column.Column{
		column.NewFloat64From("x", xs),
		column.NewInt64From("g", gs),
	}); err != nil {
		t.Fatal(err)
	}
	var positions vec.Sel
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.25 {
			positions = append(positions, int32(i))
		}
	}
	var weights, pis []float64
	if weighted {
		weights = make([]float64, len(positions))
		pis = make([]float64, len(positions))
		for i := range weights {
			weights[i] = 0.2 + rng.Float64()*5
			pis[i] = 0.05 + rng.Float64()*0.9
		}
	}
	layerTable, err := base.Project("layer", base.Schema().Names(), positions)
	if err != nil {
		t.Fatal(err)
	}
	sl := SelLayer{
		Name: "sel", Base: base, Positions: positions,
		Weights: weights, CountWeights: pis, BaseRows: int64(n),
	}
	l := Layer{
		Name: "mat", Table: layerTable,
		Weights: weights, CountWeights: pis, BaseRows: int64(n),
	}
	return sl, l
}

func allAggsQuery(pred expr.Predicate) engine.Query {
	arg := expr.ColRef{Name: "x"}
	return engine.Query{
		Table: "base",
		Where: pred,
		Aggs: []engine.AggSpec{
			{Func: engine.Count},
			{Func: engine.Sum, Arg: arg, Alias: "s"},
			{Func: engine.Avg, Arg: arg, Alias: "a"},
			{Func: engine.Min, Arg: arg, Alias: "mn"},
			{Func: engine.Max, Arg: arg, Alias: "mx"},
			{Func: engine.StdDev, Arg: arg, Alias: "sd"},
		},
	}
}

// closeEnough compares two floats to a relative tolerance, treating
// equal infinities and NaNs as matching.
func closeEnough(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

func assertEstimatesMatch(t *testing.T, got, want []Estimate) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d estimates, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.SampleRows != w.SampleRows {
			t.Errorf("%s: SampleRows %d, want %d", g.Spec.Name(), g.SampleRows, w.SampleRows)
		}
		if !closeEnough(g.Value(), w.Value()) {
			t.Errorf("%s: value %v, want %v", g.Spec.Name(), g.Value(), w.Value())
		}
		if !closeEnough(g.Interval.HalfWidth, w.Interval.HalfWidth) {
			t.Errorf("%s: half-width %v, want %v", g.Spec.Name(), g.Interval.HalfWidth, w.Interval.HalfWidth)
		}
	}
}

// TestAggregateOnSelMatchesMaterialized asserts the selection-native
// estimators agree with the materialised-layer path on every aggregate,
// for uniform and weighted layers, across predicates and parallelism.
func TestAggregateOnSelMatchesMaterialized(t *testing.T) {
	preds := []expr.Predicate{
		nil, // TRUE
		expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "x"}, Right: 50},
		expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 45, Hi: 55},
		expr.Cmp{Op: vec.Gt, Left: expr.ColRef{Name: "x"}, Right: 1e9}, // empty match
	}
	for _, weighted := range []bool{false, true} {
		sl, l := selEstFixture(t, 20_000, weighted, 41)
		for pi, pred := range preds {
			q := allAggsQuery(pred)
			want, err := AggregateOnOpts(l, q, 0.95, engine.ExecOptions{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				got, err := AggregateOnSelOpts(sl, q, 0.95, engine.ExecOptions{Parallelism: workers, MorselRows: 2048})
				if err != nil {
					t.Fatalf("weighted=%t pred %d: %v", weighted, pi, err)
				}
				assertEstimatesMatch(t, got, want)
			}
		}
	}
}

// TestAggregateOnSelDeterministicAcrossWorkers asserts bit-identical
// estimates at workers 1 vs 4 (same code path, deterministic filter).
func TestAggregateOnSelDeterministicAcrossWorkers(t *testing.T) {
	sl, _ := selEstFixture(t, 30_000, true, 43)
	q := allAggsQuery(expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "x"}, Right: 52})
	a, err := AggregateOnSelOpts(sl, q, 0.99, engine.ExecOptions{Parallelism: 1, MorselRows: 1024})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AggregateOnSelOpts(sl, q, 0.99, engine.ExecOptions{Parallelism: 4, MorselRows: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Value() != b[i].Value() || a[i].Interval.HalfWidth != b[i].Interval.HalfWidth {
			t.Errorf("%s: workers 1 vs 4 differ: %v±%v vs %v±%v", a[i].Spec.Name(),
				a[i].Value(), a[i].Interval.HalfWidth, b[i].Value(), b[i].Interval.HalfWidth)
		}
	}
}

// TestGroupedAggregateOnSelMatchesMaterialized asserts grouped
// selection-native estimates agree with GroupedAggregateOn: same keys,
// same order, same estimates.
func TestGroupedAggregateOnSelMatchesMaterialized(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		sl, l := selEstFixture(t, 15_000, weighted, 47)
		q := engine.Query{
			Table:   "base",
			Where:   expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "x"}, Right: 53},
			GroupBy: "g",
			Aggs: []engine.AggSpec{
				{Func: engine.Count},
				{Func: engine.Avg, Arg: expr.ColRef{Name: "x"}, Alias: "a"},
			},
		}
		want, err := GroupedAggregateOn(l, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		got, err := GroupedAggregateOnSel(sl, q, 0.95, engine.ExecOptions{Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("weighted=%t: %d groups, want %d", weighted, len(got), len(want))
		}
		for i := range got {
			if got[i].Key != want[i].Key {
				t.Fatalf("group %d key %q, want %q", i, got[i].Key, want[i].Key)
			}
			assertEstimatesMatch(t, got[i].Estimates, want[i].Estimates)
		}
	}
}

// TestAggregateOnSelValidation covers the SelLayer contract errors.
func TestAggregateOnSelValidation(t *testing.T) {
	sl, _ := selEstFixture(t, 256, true, 51)
	q := allAggsQuery(nil)
	bad := sl
	bad.Base = nil
	if _, err := AggregateOnSel(bad, q, 0.95); err == nil {
		t.Error("nil base accepted")
	}
	bad = sl
	bad.Weights = bad.Weights[:1]
	if _, err := AggregateOnSel(bad, q, 0.95); err == nil {
		t.Error("misaligned weights accepted")
	}
	bad = sl
	bad.Positions = vec.Sel{9, 3}
	bad.Weights, bad.CountWeights = nil, nil
	if _, err := AggregateOnSel(bad, q, 0.95); err == nil {
		t.Error("unsorted positions accepted")
	}
	if _, err := AggregateOnSel(sl, engine.Query{Table: "base", Select: []string{"x"}}, 0.95); err == nil {
		t.Error("aggregate-less query accepted")
	}
	if _, err := AggregateOnSel(sl, engine.Query{Table: "base", GroupBy: "g",
		Aggs: []engine.AggSpec{{Func: engine.Count}}}, 0.95); err == nil {
		t.Error("grouped query accepted on the ungrouped entry point")
	}
	// Empty layer: infinite intervals, no error.
	empty := SelLayer{Name: "e", Base: sl.Base, Positions: vec.Sel{}, BaseRows: sl.BaseRows}
	ests, err := AggregateOnSel(empty, q, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ests {
		if !math.IsInf(e.Interval.HalfWidth, 1) {
			t.Errorf("%s: empty layer half-width %v, want +Inf", e.Spec.Name(), e.Interval.HalfWidth)
		}
	}
}
