package engine

import (
	"fmt"
	"sync"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// TestIngestWhileQuery runs AppendBatch concurrently with aggregate,
// grouped, projection, and raw-filter queries on the same table. Under
// -race this proves the snapshot scan path is free of data races; the
// assertions prove every query saw a batch-atomic prefix of the table
// (COUNT(*) is always a whole number of batches) rather than a torn
// intermediate state.
func TestIngestWhileQuery(t *testing.T) {
	const (
		batchRows = 500
		batches   = 40
	)
	tb := table.MustNew("stream", table.Schema{
		{Name: "x", Type: column.Float64},
		{Name: "id", Type: column.Int64},
		{Name: "kind", Type: column.String},
	})
	kinds := []string{"GALAXY", "STAR", "QSO"}
	mkBatch := func(b int) []table.Row {
		rows := make([]table.Row, batchRows)
		for i := range rows {
			g := b*batchRows + i
			rows[i] = table.Row{float64(g % 997), int64(g), kinds[g%len(kinds)]}
		}
		return rows
	}
	// Seed one batch so early queries have rows to chew on.
	if err := tb.AppendBatch(mkBatch(0)); err != nil {
		t.Fatal(err)
	}

	opts := ExecOptions{Parallelism: 2, MorselRows: 1024}
	queries := []Query{
		{Table: "stream", Aggs: []AggSpec{{Func: Count}, {Func: Sum, Arg: expr.ColRef{Name: "x"}}}},
		{Table: "stream",
			Where: expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 100, Hi: 400},
			Aggs:  []AggSpec{{Func: Count}, {Func: Avg, Arg: expr.ColRef{Name: "x"}}}},
		{Table: "stream", GroupBy: "kind",
			Where: expr.Cmp{Op: vec.Gt, Left: expr.ColRef{Name: "id"}, Right: 10},
			Aggs:  []AggSpec{{Func: Count}}},
		{Table: "stream", Select: []string{"id", "x"},
			Where: expr.StrEq{Col: "kind", Value: "STAR"}, OrderBy: "x", Limit: 50},
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the nightly load, compressed
		defer wg.Done()
		defer close(done)
		for b := 1; b < batches; b++ {
			if err := tb.AppendBatch(mkBatch(b)); err != nil {
				t.Errorf("append batch %d: %v", b, err)
				return
			}
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prevCount := 0.0
			for i := 0; ; i++ {
				select {
				case <-done:
					if i > 0 {
						return
					}
				default:
				}
				q := queries[(w+i)%len(queries)]
				res, err := RunOnOpts(tb, q, opts)
				if err != nil {
					t.Errorf("worker %d query %d: %v", w, i, err)
					return
				}
				if len(q.Aggs) > 0 && q.GroupBy == "" && q.Where == nil {
					count, err := res.Scalar("COUNT(*)")
					if err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					if int(count)%batchRows != 0 {
						t.Errorf("worker %d saw torn batch: COUNT(*) = %v", w, count)
						return
					}
					if count < prevCount {
						t.Errorf("worker %d: COUNT(*) went backwards: %v -> %v", w, prevCount, count)
						return
					}
					prevCount = count
				}
				// Raw filter path on the shared table too.
				if _, err := Filter(tb, expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "x"}, Right: 250}, opts); err != nil {
					t.Errorf("worker %d filter: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	res, err := RunOnOpts(tb, Query{Table: "stream", Aggs: []AggSpec{{Func: Count}}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	count, err := res.Scalar("COUNT(*)")
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(batches * batchRows); count != want {
		t.Fatalf("final COUNT(*) = %v, want %v", count, want)
	}
}

// TestIngestWhileJoin appends to both join sides while HashJoinOpts
// probes them; snapshots must pin each side to a consistent prefix.
func TestIngestWhileJoin(t *testing.T) {
	fact := table.MustNew("fact", table.Schema{
		{Name: "key", Type: column.Int64},
		{Name: "v", Type: column.Float64},
	})
	dim := table.MustNew("dim", table.Schema{
		{Name: "key", Type: column.Int64},
		{Name: "label", Type: column.String},
	})
	for i := 0; i < 256; i++ {
		if err := fact.AppendRow(table.Row{int64(i % 16), float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		if err := dim.AppendRow(table.Row{int64(i), fmt.Sprintf("d%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for b := 0; b < 30; b++ {
			rows := make([]table.Row, 64)
			for i := range rows {
				rows[i] = table.Row{int64(i % 16), float64(b*64 + i)}
			}
			if err := fact.AppendBatch(rows); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		opts := ExecOptions{Parallelism: 2, MorselRows: 128}
		for {
			select {
			case <-done:
				return
			default:
			}
			joined, err := HashJoinOpts(fact, dim, "key", "key", opts)
			if err != nil {
				t.Errorf("join: %v", err)
				return
			}
			if joined.Len()%64 != 0 { // every key matches exactly once; batches are 64 rows
				t.Errorf("join saw torn fact prefix: %d rows", joined.Len())
				return
			}
		}
	}()
	// Semi-join on the same moving tables: SemiJoinSel snapshots both
	// sides itself, so it must also see only batch-atomic prefixes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			sel, err := SemiJoinSel(fact, "key", dim, "key", nil)
			if err != nil {
				t.Errorf("semi-join: %v", err)
				return
			}
			if len(sel)%64 != 0 { // every fact key exists in dim
				t.Errorf("semi-join saw torn fact prefix: %d rows", len(sel))
				return
			}
		}
	}()
	wg.Wait()
}
