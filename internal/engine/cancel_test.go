package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sciborq/internal/column"
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// gatePred is a user-defined predicate whose evaluation blocks until
// released, so tests can hold a scan mid-morsel, cancel it, and then
// observe exactly how many more morsels the pool evaluated.
type gatePred struct {
	started chan struct{} // closed when the first morsel enters Filter
	release chan struct{} // morsels block here until closed
	calls   atomic.Int64
	once    sync.Once
}

func newGatePred() *gatePred {
	return &gatePred{started: make(chan struct{}), release: make(chan struct{})}
}

func (p *gatePred) Filter(t *table.Table, sel vec.Sel) (vec.Sel, error) {
	p.calls.Add(1)
	p.once.Do(func() { close(p.started) })
	<-p.release
	return vec.Sel{}, nil
}

func (p *gatePred) Points() []expr.Point { return nil }
func (p *gatePred) String() string       { return "gate()" }

func cancelTestTable(t *testing.T, n int) *table.Table {
	t.Helper()
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i)
	}
	tb := table.MustNew("cancel", table.Schema{{Name: "x", Type: column.Float64}})
	if err := tb.AppendColumns([]column.Column{column.NewFloat64From("x", data)}); err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestScanCancellationFreesWorkers proves the acceptance property:
// cancelling a running scan aborts it and frees the worker pool within
// one morsel boundary — workers finish the morsel they hold and pull no
// further ones.
func TestScanCancellationFreesWorkers(t *testing.T) {
	const (
		rows    = 64
		morsel  = 4 // 16 morsels
		workers = 2
	)
	tb := cancelTestTable(t, rows)
	pred := newGatePred()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q := Query{Table: "cancel", Where: pred, Aggs: []AggSpec{{Func: Count}}}
	opts := ExecOptions{Parallelism: workers, MorselRows: morsel, Ctx: ctx}

	errc := make(chan error, 1)
	go func() {
		_, err := RunOnOpts(tb, q, opts)
		errc <- err
	}()

	<-pred.started // at least one worker is mid-morsel
	cancel()
	close(pred.release) // let the in-flight morsels finish

	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled scan returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled scan did not return: worker pool is stuck")
	}
	// Workers may each have held one morsel when cancel landed; none may
	// start another afterwards.
	if calls := pred.calls.Load(); calls > workers {
		t.Fatalf("pool evaluated %d morsels after holding cancellation, want <= %d (one per worker)", calls, workers)
	}
}

// TestScanCancellationBeforeStart: a context cancelled before the scan
// begins evaluates nothing at all.
func TestScanCancellationBeforeStart(t *testing.T) {
	tb := cancelTestTable(t, 64)
	pred := newGatePred()
	close(pred.release)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := Query{Table: "cancel", Where: pred, Aggs: []AggSpec{{Func: Count}}}
	for _, workers := range []int{1, 4} {
		_, err := RunOnOpts(tb, q, ExecOptions{Parallelism: workers, MorselRows: 4, Ctx: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: pre-cancelled scan returned %v, want context.Canceled", workers, err)
		}
	}
	if calls := pred.calls.Load(); calls != 0 {
		t.Fatalf("pre-cancelled scan evaluated %d morsels, want 0", calls)
	}
}

// TestSelScanCancellation covers the selection-vector scan path used by
// bounded layer evaluation and the recycler's refinement rung.
func TestSelScanCancellation(t *testing.T) {
	tb := cancelTestTable(t, 256)
	positions := make(vec.Sel, 0, 64)
	for i := int32(0); i < 256; i += 4 {
		positions = append(positions, i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pred := expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "x"}, Right: 1e9}
	_, _, err := FilterSel(tb, pred, positions, ExecOptions{Parallelism: 2, MorselRows: 16, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled FilterSel returned %v, want context.Canceled", err)
	}
}

// TestProjectionCancellation covers the filter+project path.
func TestProjectionCancellation(t *testing.T) {
	tb := cancelTestTable(t, 256)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := Query{Table: "cancel", Where: expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "x"}, Right: 1e9}, Select: []string{"x"}}
	_, err := RunOnOpts(tb, q, ExecOptions{Parallelism: 2, MorselRows: 16, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled projection returned %v, want context.Canceled", err)
	}
}
