package engine

import (
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// Prefiltered execution: run a query whose WHERE selection has already
// been computed — the recycler's hook into the executor. The selection
// is partitioned back into the same granule-aligned morsel layout a
// cold scan would produce and folded through the same per-morsel
// partial structures, so a query answered from a cached selection is
// bit-identical (floating point included) to the same query evaluated
// from scratch at any parallelism level.

// FilterStats is Filter, additionally reporting the scan statistics —
// what the recycler records for a miss. A nil selection means "all
// rows" (TRUE predicate), exactly like Filter.
func FilterStats(t *table.Table, pred expr.Predicate, opts ExecOptions) (vec.Sel, ScanStats, error) {
	return filterSnapshot(t.Snapshot(), pred, opts)
}

// selDriver adapts an already-computed selection to the scanDriver
// contract: positions are split into granule-aligned parts
// (partitionSel) and handed to the fold under their global morsel
// index, in parallel. Morsels no position lands in produce no partial —
// the same no-op merge a matchless morsel produces on the cold path.
// The ScanStats handed back is the caller's (the fold did not scan
// anything new).
func selDriver(t *table.Table, positions vec.Sel, n int, opts ExecOptions, scan ScanStats) scanDriver {
	return func(perMorsel func(m, lo, hi int, sel vec.Sel) error) (ScanStats, error) {
		parts := partitionSel(positions, n, opts)
		mr := opts.morselRows()
		// One scheduling unit per non-empty part, like scanSelMorsels.
		partOpts := ExecOptions{Parallelism: opts.workers(), MorselRows: 1, Ctx: opts.Ctx}
		err := forEachMorsel(len(parts), partOpts, func(i, _, _ int) error {
			p := parts[i]
			t.TouchRange(p.rowLo, p.rowHi)
			return perMorsel(p.rowLo/mr, p.rowLo, p.rowHi, positions[p.plo:p.phi])
		})
		return scan, err
	}
}

// RunOnFilteredOpts evaluates q against t given sel as the precomputed
// WHERE selection: exactly the rows of t satisfying q's predicate, in
// strictly ascending order (nil = all rows). The predicate itself is
// NOT re-evaluated. t must be the snapshot the selection was computed
// on (snapshotting again is a no-op); scan is attached to the result
// for cost-model accounting. Aggregates, GROUP BY, ORDER BY and LIMIT
// behave exactly like RunOnOpts — in particular LIMIT takes the
// storage-order prefix, not the selection-scan systematic subsample.
func RunOnFilteredOpts(t *table.Table, sel vec.Sel, q Query, scan ScanStats, opts ExecOptions) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	t = t.Snapshot()
	if sel == nil {
		sel = vec.NewSelAll(t.Len())
	}
	if len(q.Aggs) > 0 {
		drive := selDriver(t, sel, t.Len(), opts, scan)
		if q.GroupBy != "" {
			return groupByAggregate(t, q, opts, drive)
		}
		return aggregate(t, q, opts, drive)
	}
	return project(t, sel, q, scan)
}
