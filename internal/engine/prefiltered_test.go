package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

func prefilteredFixture(t *testing.T, n int) *table.Table {
	t.Helper()
	tb := table.MustNew("pf", table.Schema{
		{Name: "x", Type: column.Float64},
		{Name: "v", Type: column.Float64},
		{Name: "g", Type: column.Int64},
	})
	rng := rand.New(rand.NewSource(11))
	rows := make([]table.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, table.Row{rng.Float64() * 100, rng.NormFloat64(), int64(i % 7)})
	}
	if err := tb.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestRunOnFilteredMatchesRunOn asserts the prefiltered path is
// bit-identical to the cold path for every query shape it serves:
// feeding the cold scan's own selection back through RunOnFilteredOpts
// must reproduce the cold result exactly, at every parallelism level.
func TestRunOnFilteredMatchesRunOn(t *testing.T) {
	tb := prefilteredFixture(t, 3000)
	pred := expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 10, Hi: 60}
	queries := []Query{
		{Table: "pf", Where: pred, Aggs: []AggSpec{
			{Func: Count, Alias: "c"},
			{Func: Sum, Arg: expr.ColRef{Name: "v"}, Alias: "s"},
			{Func: Avg, Arg: expr.ColRef{Name: "v"}, Alias: "a"},
			{Func: StdDev, Arg: expr.ColRef{Name: "v"}, Alias: "sd"},
		}},
		{Table: "pf", Where: pred, GroupBy: "g", Aggs: []AggSpec{
			{Func: Avg, Arg: expr.ColRef{Name: "v"}, Alias: "a"},
			{Func: Count, Alias: "c"},
		}},
		{Table: "pf", Where: pred, Select: []string{"x", "v"}, OrderBy: "x", Limit: 25},
		{Table: "pf", Where: pred, Select: []string{"v"}, Limit: 10}, // prefix LIMIT, no sampling
	}
	for _, workers := range []int{1, 4} {
		// Small morsels so the 3000-row fixture spans many granules.
		opts := ExecOptions{Parallelism: workers, MorselRows: 256}
		for qi, q := range queries {
			snap := tb.Snapshot()
			sel, scan, err := FilterStats(snap, q.Pred(), opts)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := RunOnOpts(snap, q, opts)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := RunOnFilteredOpts(snap, sel, q, scan, opts)
			if err != nil {
				t.Fatal(err)
			}
			if cold.Len() != warm.Len() {
				t.Fatalf("workers=%d query %d: %d vs %d rows", workers, qi, cold.Len(), warm.Len())
			}
			for _, name := range cold.Table.Schema().Names() {
				cc, errC := cold.Table.Float64(name)
				wc, errW := warm.Table.Float64(name)
				if errC != nil || errW != nil {
					// Non-float column (group key): compare rendered rows below.
					continue
				}
				if !reflect.DeepEqual(cc, wc) {
					t.Fatalf("workers=%d query %d column %s: %v vs %v", workers, qi, name, cc, wc)
				}
			}
			for i := 0; i < cold.Len(); i++ {
				if !reflect.DeepEqual(cold.Table.RowStrings(int32(i)), warm.Table.RowStrings(int32(i))) {
					t.Fatalf("workers=%d query %d row %d differs", workers, qi, i)
				}
			}
		}
	}
}

// TestRunOnFilteredNilSelection covers the defensive "all rows" case.
func TestRunOnFilteredNilSelection(t *testing.T) {
	tb := prefilteredFixture(t, 100)
	q := Query{Table: "pf", Aggs: []AggSpec{{Func: Count, Alias: "c"}}}
	res, err := RunOnFilteredOpts(tb, nil, q, ScanStats{}, ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Scalar("c")
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Fatalf("COUNT over nil selection = %v, want 100", got)
	}
}

// TestSelDriverMorselLayout pins the property the bit-identical claim
// rests on: the prefiltered driver presents parts under the same morsel
// indices and windows a cold scan would use.
func TestSelDriverMorselLayout(t *testing.T) {
	positions := vec.Sel{0, 1, 255, 256, 700, 701, 999}
	opts := ExecOptions{Parallelism: 1, MorselRows: 256}
	type part struct {
		m, lo, hi int
		sel       vec.Sel
	}
	var got []part
	tb := table.MustNew("layout", table.Schema{{Name: "x", Type: column.Float64}})
	_, err := selDriver(tb, positions, 1000, opts, ScanStats{})(func(m, lo, hi int, sel vec.Sel) error {
		got = append(got, part{m, lo, hi, append(vec.Sel(nil), sel...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []part{
		{0, 0, 256, vec.Sel{0, 1, 255}},
		{1, 256, 512, vec.Sel{256}},
		{2, 512, 768, vec.Sel{700, 701}},
		{3, 768, 1000, vec.Sel{999}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parts = %+v, want %+v", got, want)
	}
}
