package engine

import (
	"runtime"
	"testing"
	"time"
)

// TestMaxRowsWithinMonotonicInRate pins the property the time-bounded
// layer picker depends on: a parallel-calibrated model (lower or equal
// ns/row) never affords fewer rows — and therefore never a smaller
// impression layer — than a sequential one for the same budget.
func TestMaxRowsWithinMonotonicInRate(t *testing.T) {
	sequential := CostModel{NsPerRow: 100, FixedNs: 10_000}
	parallel := CostModel{NsPerRow: 25, FixedNs: 10_000}
	budgets := []time.Duration{
		20 * time.Microsecond, // below fixed overhead: both afford 0 rows
		50 * time.Microsecond,
		500 * time.Microsecond,
		5 * time.Millisecond,
		500 * time.Millisecond,
	}
	for _, budget := range budgets {
		s := sequential.MaxRowsWithin(budget)
		p := parallel.MaxRowsWithin(budget)
		if p < s {
			t.Errorf("budget %v: parallel model affords %d rows < sequential %d", budget, p, s)
		}
	}
	if got := sequential.MaxRowsWithin(5 * time.Microsecond); got != 0 {
		t.Errorf("sub-overhead budget affords %d rows, want 0", got)
	}
}

// TestCalibrateOptsParallelNotPessimistic calibrates the real pipeline
// sequentially and in parallel and checks the parallel per-row rate is
// not meaningfully worse: morsel overhead must stay in the noise, so
// time-bounded layer picks never become more pessimistic just because
// parallelism was enabled. (On multi-core machines the parallel rate is
// strictly better; the generous factor keeps single-core CI honest.)
func TestCalibrateOptsParallelNotPessimistic(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration timing in -short mode")
	}
	seq := CalibrateOpts(200_000, ExecOptions{Parallelism: 1})
	par := CalibrateOpts(200_000, ExecOptions{Parallelism: runtime.GOMAXPROCS(0)})
	if par.NsPerRow <= 0 || seq.NsPerRow <= 0 {
		t.Fatalf("calibration produced non-positive rates: seq=%v par=%v", seq, par)
	}
	const slack = 1.5
	if par.NsPerRow > seq.NsPerRow*slack {
		t.Errorf("parallel calibration %.2f ns/row vs sequential %.2f ns/row exceeds %.1fx slack",
			par.NsPerRow, seq.NsPerRow, slack)
	}
}
