package engine

import (
	"fmt"
	"sync/atomic"

	"sciborq/internal/column"
	"sciborq/internal/expr"
	"sciborq/internal/hashtab"
	"sciborq/internal/stats"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// Selection-vector scans: execute directly over an explicit sorted row
// position vector into a base-table snapshot — the engine-native way to
// evaluate a query against an impression layer without materialising
// the sample into a standalone table first (no per-query copy, no cache
// invalidation cliff when the sample changes).
//
// The position vector is partitioned into morsels aligned to the base
// table's granule layout (positions p with p/MorselRows == m form
// morsel m), so zone maps prune granules no sampled position lands in
// and the partial merge order is fixed by the layout — results are
// bit-identical at every parallelism level, exactly like base scans.

// selPart is one morsel of a selection-vector scan: the contiguous
// slice positions[plo:phi) whose values all fall in base-row window
// [rowLo, rowHi).
type selPart struct {
	plo, phi     int
	rowLo, rowHi int
}

// partitionSel splits a sorted position vector into granule-aligned
// parts. Only non-empty granules produce parts, so the walk and the
// scheduling cost scale with the sample, not the base table.
func partitionSel(positions vec.Sel, n int, opts ExecOptions) []selPart {
	if len(positions) == 0 {
		return nil
	}
	mr := opts.morselRows()
	parts := make([]selPart, 0, opts.morselCount(n))
	start := 0
	g := int(positions[0]) / mr
	for i := 1; i < len(positions); i++ {
		if gi := int(positions[i]) / mr; gi != g {
			parts = append(parts, selPart{plo: start, phi: i, rowLo: g * mr, rowHi: min(g*mr+mr, n)})
			start, g = i, gi
		}
	}
	parts = append(parts, selPart{plo: start, phi: len(positions), rowLo: g * mr, rowHi: min(g*mr+mr, n)})
	return parts
}

// checkPositions validates the FilterSel contract without touching row
// data: strictly ascending (a duplicate would let the dense fast path
// treat the part as covering its whole row window and return rows that
// were never sampled), within [0, n).
func checkPositions(positions vec.Sel, n int) error {
	if len(positions) == 0 {
		return nil
	}
	if p := positions[0]; p < 0 {
		return fmt.Errorf("engine: selection scan position %d is negative", p)
	}
	for i := 1; i < len(positions); i++ {
		if positions[i] <= positions[i-1] {
			return fmt.Errorf("engine: selection scan positions not strictly ascending at index %d (%d after %d)",
				i, positions[i], positions[i-1])
		}
	}
	if last := int(positions[len(positions)-1]); last >= n {
		return fmt.Errorf("engine: selection scan position %d out of range (table has %d rows)", last, n)
	}
	return nil
}

// filterSelPart evaluates pred over one part. Dense parts — at least
// half of their base-row window sampled — evaluate the contiguous
// window with the branchless range kernels and intersect with the
// positions; a part covering its whole window skips the intersection
// entirely. Sparse parts take the sel-native kernels, whose cost is
// proportional to the part. The returned selection is pooled scratch.
func filterSelPart(t *table.Table, pred expr.Predicate, part vec.Sel) (vec.Sel, error) {
	wlo, whi := int(part[0]), int(part[len(part)-1])+1
	window := whi - wlo
	if len(part) == window {
		return expr.FilterRange(t, pred, wlo, whi)
	}
	if 2*len(part) >= window {
		rs, err := expr.FilterRange(t, pred, wlo, whi)
		if err != nil {
			return nil, err
		}
		out := vec.AndInto(vec.GetSel(min(len(rs), len(part))), rs, part)
		vec.PutSel(rs)
		return out, nil
	}
	return expr.FilterSel(t, pred, part)
}

// scanSelMorsels is the selection-scan analogue of scanMorsels: it
// partitions positions into granule-aligned parts, extracts zone-map
// checks from the original predicate, prepares it once, and runs
// perPart over every part with its filtered selection (pooled scratch,
// valid only for the duration of the call). Zone-pruned parts are
// skipped without evaluating the predicate; perPart never sees them.
//
// t must be a table snapshot and positions must satisfy the
// checkPositions contract.
func scanSelMorsels(t *table.Table, positions vec.Sel, pred expr.Predicate, opts ExecOptions, perPart func(m int, sel vec.Sel) error) (ScanStats, error) {
	parts := partitionSel(positions, t.Len(), opts)
	stats := ScanStats{Morsels: len(parts), ScannedRows: len(positions)}
	checks := zoneChecks(t, pred)
	if len(checks) > 0 {
		// Pruning may skip every evaluation; surface bad references
		// deterministically first.
		if err := validatePred(t, pred); err != nil {
			return stats, err
		}
	}
	if len(parts) > 1 {
		var err error
		if pred, err = preparePred(t, pred); err != nil {
			return stats, err
		}
	}
	var skippedMorsels, skippedRows atomic.Int64
	// Reuse the morsel scheduler with one "row" per part: workers pull
	// part indices from the shared counter and errors surface in part
	// order.
	partOpts := ExecOptions{Parallelism: opts.workers(), MorselRows: 1, Ctx: opts.Ctx}
	err := forEachMorsel(len(parts), partOpts, func(m, _, _ int) error {
		p := parts[m]
		for _, zc := range checks {
			if zc.canSkip(p.rowLo, p.rowHi) {
				skippedMorsels.Add(1)
				skippedRows.Add(int64(p.phi - p.plo))
				return nil
			}
		}
		// Surviving part: account granule residency before reading.
		t.TouchRange(p.rowLo, p.rowHi)
		sel, err := filterSelPart(t, pred, positions[p.plo:p.phi])
		if err != nil {
			return err
		}
		err = perPart(m, sel)
		vec.PutSel(sel)
		return err
	})
	stats.SkippedMorsels = int(skippedMorsels.Load())
	stats.SkippedRows = int(skippedRows.Load())
	stats.ScannedRows = len(positions) - stats.SkippedRows
	return stats, err
}

// FilterSel evaluates pred over only the rows of t listed in positions
// (strictly ascending, within range) with morsel-driven parallelism and
// zone-map granule pruning, returning the matching subset in ascending
// row order. The scan runs over a snapshot of t, so it is safe against
// concurrent appends. A TRUE predicate returns positions itself
// (shared, not copied); every other result is freshly allocated.
func FilterSel(t *table.Table, pred expr.Predicate, positions vec.Sel, opts ExecOptions) (vec.Sel, ScanStats, error) {
	t = t.Snapshot()
	n := t.Len()
	if err := checkPositions(positions, n); err != nil {
		return nil, ScanStats{}, err
	}
	if isTruePred(pred) {
		return positions, ScanStats{Morsels: len(partitionSel(positions, n, opts)), ScannedRows: len(positions)}, nil
	}
	if len(positions) == 0 {
		return vec.Sel{}, ScanStats{}, nil
	}
	partsOut := make([]vec.Sel, len(partitionSel(positions, n, opts)))
	stats, err := scanSelMorsels(t, positions, pred, opts, func(m int, sel vec.Sel) error {
		partsOut[m] = append(vec.Sel(nil), sel...) // sel is pooled scratch
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	total := 0
	for _, p := range partsOut {
		total += len(p)
	}
	out := make(vec.Sel, 0, total)
	for _, p := range partsOut {
		out = append(out, p...)
	}
	return out, stats, nil
}

// EstimateSelScanRows predicts how many sampled rows a selection scan
// of pred over positions will actually evaluate after zone-map granule
// pruning, without executing it — the prune-aware input to cost-model
// layer picking for impression layers (rows = |impression|, never
// |base|). The walk costs O(|positions| + granules), not O(base rows).
func EstimateSelScanRows(t *table.Table, pred expr.Predicate, positions vec.Sel, opts ExecOptions) int {
	t = t.Snapshot()
	if isTruePred(pred) {
		return len(positions)
	}
	checks := zoneChecks(t, pred)
	if len(checks) == 0 {
		return len(positions)
	}
	scanned := 0
	for _, p := range partitionSel(positions, t.Len(), opts) {
		skip := false
		for _, zc := range checks {
			if zc.canSkip(p.rowLo, p.rowHi) {
				skip = true
				break
			}
		}
		if !skip {
			scanned += p.phi - p.plo
		}
	}
	return scanned
}

// RunOnSel evaluates q against the rows of t listed in positions with
// default execution options — the hook that aims one logical query at
// an impression layer without materialising it. Aggregates are computed
// exactly over the selected subset (the estimate package turns them
// into population estimates); projections return the matching rows.
func RunOnSel(t *table.Table, positions vec.Sel, q Query) (*Result, error) {
	return RunOnSelOpts(t, positions, q, DefaultExecOptions())
}

// RunOnSelOpts is RunOnSel with explicit execution options. The whole
// query runs over a snapshot of t taken here.
func RunOnSelOpts(t *table.Table, positions vec.Sel, q Query, opts ExecOptions) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	t = t.Snapshot()
	sel, stats, err := FilterSel(t, q.Pred(), positions, opts)
	if err != nil {
		return nil, err
	}
	if len(q.Aggs) > 0 {
		if q.GroupBy != "" {
			return groupBySel(t, sel, q, stats)
		}
		states, err := AggregateStates(t, sel, q.Aggs)
		if err != nil {
			return nil, err
		}
		res, err := ResultFromStates(q, states)
		if err != nil {
			return nil, err
		}
		res.ScannedRows = stats.ScannedRows
		res.Stats = stats
		return res, nil
	}
	// A LIMIT without ORDER BY on a selection scan returns a systematic
	// (evenly spaced) subsample of the matches rather than the
	// storage-order prefix: the impression's answer to LIMIT N is N
	// representative sampled tuples, not "the lucky N first" ones the
	// paper criticises (§3.2). Deterministic, so results stay identical
	// at every parallelism level.
	if q.Limit > 0 && q.OrderBy == "" && len(sel) > q.Limit {
		sel = systematicSample(sel, q.Limit)
	}
	return project(t, sel, q, stats)
}

// systematicSample picks n evenly spaced rows of sel (which has more
// than n entries), preserving order.
func systematicSample(sel vec.Sel, n int) vec.Sel {
	out := make(vec.Sel, n)
	for i := 0; i < n; i++ {
		out[i] = sel[i*len(sel)/n]
	}
	return out
}

// groupBySel evaluates a grouped aggregate over an already-filtered
// selection sequentially — selection scans are sample-sized, so the
// morsel fan-out of the base path would be overhead, and the sequential
// walk keeps first-seen group order identical to it by construction.
func groupBySel(t *table.Table, sel vec.Sel, q Query, scan ScanStats) (*Result, error) {
	grp, err := GroupingFor(t, q.GroupBy)
	if err != nil {
		return nil, err
	}
	args, err := aggArgs(t, q.Aggs)
	if err != nil {
		return nil, err
	}
	naggs := len(q.Aggs)
	tab := hashtab.NewInt64Table(0)
	var gms []stats.Moments
	for _, row := range sel {
		gid, fresh := tab.GetOrInsert(grp.Key(row))
		if fresh {
			for i := 0; i < naggs; i++ {
				gms = append(gms, stats.Moments{})
			}
		}
		base := int(gid) * naggs
		for i := 0; i < naggs; i++ {
			if args[i] == nil {
				gms[base+i].Observe(1) // COUNT(*)
			} else {
				gms[base+i].Observe(args[i][row])
			}
		}
	}
	schema := make(table.Schema, 0, naggs+1)
	schema = append(schema, table.ColumnDef{Name: q.GroupBy, Type: column.String})
	for _, a := range q.Aggs {
		schema = append(schema, table.ColumnDef{Name: a.Name(), Type: column.Float64})
	}
	out, err := table.New(resultName(q), schema)
	if err != nil {
		return nil, err
	}
	for gid, key := range tab.Keys() {
		row := make(table.Row, 0, naggs+1)
		row = append(row, grp.Render(key))
		for i, a := range q.Aggs {
			st := AggState{Spec: a, Moments: gms[gid*naggs+i]}
			row = append(row, st.Value())
		}
		if err := out.AppendRow(row); err != nil {
			return nil, err
		}
	}
	res := &Result{Table: out, ScannedRows: scan.ScannedRows, Stats: scan}
	return sortGroupedResult(res, q)
}
