package engine

import (
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// clusteredTable builds granules*column.ZoneRows rows whose x column is
// sorted (x = row index) and whose v column is unordered — the shape
// zone maps are built for: time- or position-clustered science data.
func clusteredTable(t testing.TB, granules int) *table.Table {
	t.Helper()
	n := granules * column.ZoneRows
	xs := make([]float64, n)
	vs := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = float64(i)
		vs[i] = float64(i%1009) / 1009
	}
	tb := table.MustNew("clustered", table.Schema{
		{Name: "x", Type: column.Float64},
		{Name: "v", Type: column.Float64},
	})
	if err := tb.AppendColumns([]column.Column{
		column.NewFloat64From("x", xs),
		column.NewFloat64From("v", vs),
	}); err != nil {
		t.Fatal(err)
	}
	return tb
}

// unboundable wraps a predicate so it reports no Bounds (a double
// negation filters identically but defeats pruning) — the control arm
// of the pruning experiments.
func unboundable(p expr.Predicate) expr.Predicate {
	return expr.Not{P: expr.Not{P: p}}
}

// TestZoneMapPruningSkipsMorsels checks that a predicate confined to
// one granule of clustered data skips the other morsels entirely, that
// the pruned result is bit-identical to the unpruned control, and that
// EstimateScanRows predicts exactly what the scan then does.
func TestZoneMapPruningSkipsMorsels(t *testing.T) {
	const granules = 4
	tb := clusteredTable(t, granules)
	lo, hi := 10_000.0, 20_000.0
	pred := expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: lo, Hi: hi}
	q := Query{Table: "clustered", Where: pred,
		Aggs: []AggSpec{{Func: Count}, {Func: Sum, Arg: expr.ColRef{Name: "v"}, Alias: "s"}}}
	control := q
	control.Where = unboundable(pred)

	for _, workers := range []int{1, 4} {
		opts := ExecOptions{Parallelism: workers}
		res, err := RunOnOpts(tb, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Morsels != granules {
			t.Fatalf("workers=%d: %d morsels, want %d", workers, res.Stats.Morsels, granules)
		}
		if res.Stats.SkippedMorsels != granules-1 {
			t.Errorf("workers=%d: skipped %d morsels, want %d", workers, res.Stats.SkippedMorsels, granules-1)
		}
		if res.ScannedRows != column.ZoneRows {
			t.Errorf("workers=%d: scanned %d rows, want %d", workers, res.ScannedRows, column.ZoneRows)
		}
		if got := EstimateScanRows(tb, pred, opts); got != res.ScannedRows {
			t.Errorf("workers=%d: EstimateScanRows = %d, scan did %d", workers, got, res.ScannedRows)
		}
		ctl, err := RunOnOpts(tb, control, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ctl.Stats.SkippedMorsels != 0 {
			t.Fatalf("control was pruned: %+v", ctl.Stats)
		}
		for _, name := range []string{"COUNT(*)", "s"} {
			pv, err := res.Scalar(name)
			if err != nil {
				t.Fatal(err)
			}
			cv, err := ctl.Scalar(name)
			if err != nil {
				t.Fatal(err)
			}
			if pv != cv {
				t.Errorf("workers=%d %s: pruned %v != control %v", workers, name, pv, cv)
			}
		}
	}
}

// TestZoneMapPruningPredicateShapes checks pruning through Cmp, And,
// Or, and the projection/raw-filter paths, always against an
// equivalent unpruned control.
func TestZoneMapPruningPredicateShapes(t *testing.T) {
	tb := clusteredTable(t, 3)
	n := tb.Len()
	opts := ExecOptions{Parallelism: 2}
	preds := []expr.Predicate{
		expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "x"}, Right: 1000},
		expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: "x"}, Right: float64(n - 1000)},
		expr.And{
			L: expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 5000, Hi: 6000},
			R: expr.Cmp{Op: vec.Gt, Left: expr.ColRef{Name: "v"}, Right: 0.5},
		},
		expr.Or{
			L: expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 0, Hi: 100},
			R: expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 2000, Hi: 2100},
		},
	}
	for _, pred := range preds {
		want, err := Filter(tb, unboundable(pred), opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Filter(tb, pred, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Errorf("%s: pruned %d rows != control %d rows", pred, len(got), len(want))
			continue
		}
		for i := range want {
			if want[i] != got[i] {
				t.Errorf("%s: selection diverges at %d: %d != %d", pred, i, got[i], want[i])
				break
			}
		}
		if est := EstimateScanRows(tb, pred, opts); est >= n {
			t.Errorf("%s: EstimateScanRows = %d, expected pruning below %d", pred, est, n)
		}
	}
}

// TestPruningStillReportsBadReferences pins that a malformed predicate
// errors even when zone maps prune every morsel before evaluation —
// error reporting must not depend on the stored values.
func TestPruningStillReportsBadReferences(t *testing.T) {
	tb := clusteredTable(t, 2)
	// The x-bound is disjoint from the data, so every morsel prunes;
	// the bogus column reference must still surface.
	disjoint := expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 1e12, Hi: 2e12}
	bad := []expr.Predicate{
		expr.And{L: disjoint, R: expr.Cmp{Op: vec.Eq, Left: expr.ColRef{Name: "nope"}, Right: 1}},
		expr.And{L: disjoint, R: expr.StrEq{Col: "nope", Value: "x"}},
		expr.And{L: disjoint, R: expr.Cone{RaCol: "nope", DecCol: "x", Radius: 1}},
	}
	for _, pred := range bad {
		for _, workers := range []int{1, 4} {
			q := Query{Table: "clustered", Where: pred, Aggs: []AggSpec{{Func: Count}}}
			if _, err := RunOnOpts(tb, q, ExecOptions{Parallelism: workers}); err == nil {
				t.Errorf("workers=%d %s: pruned scan swallowed the bad reference", workers, pred)
			}
			if _, err := Filter(tb, pred, ExecOptions{Parallelism: workers}); err == nil {
				t.Errorf("workers=%d %s: pruned filter swallowed the bad reference", workers, pred)
			}
		}
		// Single-morsel path too (table fits one morsel).
		if _, err := Filter(tb, pred, ExecOptions{MorselRows: 1 << 30}); err == nil {
			t.Errorf("%s: single-morsel pruned filter swallowed the bad reference", pred)
		}
	}
}

// TestEstimateScanRowsUnprunable pins the no-bounds and TRUE cases.
func TestEstimateScanRowsUnprunable(t *testing.T) {
	tb := clusteredTable(t, 2)
	opts := ExecOptions{}
	if got := EstimateScanRows(tb, expr.TruePred{}, opts); got != tb.Len() {
		t.Fatalf("TRUE: %d, want %d", got, tb.Len())
	}
	noBounds := expr.StrEq{Col: "kind", Value: "x"}
	if got := EstimateScanRows(tb, noBounds, opts); got != tb.Len() {
		t.Fatalf("no-bounds: %d, want %d", got, tb.Len())
	}
	// A predicate overlapping every granule prunes nothing.
	wide := expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 0, Hi: float64(tb.Len())}
	if got := EstimateScanRows(tb, wide, opts); got != tb.Len() {
		t.Fatalf("wide: %d, want %d", got, tb.Len())
	}
}
