package engine

import (
	"fmt"
	"reflect"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// gridTable builds a deterministic synthetic table large enough to span
// many morsels at the test morsel granule.
func gridTable(t testing.TB, n int) *table.Table {
	t.Helper()
	tb := table.MustNew("grid", table.Schema{
		{Name: "id", Type: column.Int64},
		{Name: "g", Type: column.Int64},
		{Name: "cat", Type: column.String},
		{Name: "x", Type: column.Float64},
		{Name: "v", Type: column.Float64},
	})
	cats := []string{"GALAXY", "STAR", "QSO", "UNKNOWN"}
	ids := make([]int64, n)
	gs := make([]int64, n)
	xs := make([]float64, n)
	vs := make([]float64, n)
	cat := column.NewString("cat")
	state := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < n; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		ids[i] = int64(i)
		gs[i] = int64(state>>61) % 8
		cat.Append(cats[(state>>13)%4])
		xs[i] = float64(state%1_000_003) / 1_000_003
		vs[i] = float64(int64(state>>20)%2001-1000) / 7
	}
	if err := tb.AppendColumns([]column.Column{
		column.NewInt64From("id", ids),
		column.NewInt64From("g", gs),
		cat,
		column.NewFloat64From("x", xs),
		column.NewFloat64From("v", vs),
	}); err != nil {
		t.Fatal(err)
	}
	return tb
}

// sameResult asserts two results are identical: same schema, same row
// count, and bit-identical cell values (compared through RowStrings,
// which is exact for identical floating-point bits).
func sameResult(t *testing.T, want, got *Result) {
	t.Helper()
	if want.ScannedRows != got.ScannedRows {
		t.Fatalf("ScannedRows: want %d, got %d", want.ScannedRows, got.ScannedRows)
	}
	wantNames := want.Table.Schema().Names()
	gotNames := got.Table.Schema().Names()
	if !reflect.DeepEqual(wantNames, gotNames) {
		t.Fatalf("schema: want %v, got %v", wantNames, gotNames)
	}
	if want.Len() != got.Len() {
		t.Fatalf("rows: want %d, got %d", want.Len(), got.Len())
	}
	for i := 0; i < want.Len(); i++ {
		w := want.Table.RowStrings(int32(i))
		g := got.Table.RowStrings(int32(i))
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("row %d: want %v, got %v", i, w, g)
		}
	}
}

// gridQueries is the property grid: filters, every aggregate, GROUP BY
// on BIGINT and VARCHAR keys, boolean predicate combinators, and
// projections with ORDER BY / LIMIT.
func gridQueries() map[string]Query {
	between := expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 0.2, Hi: 0.7}
	tails := expr.Or{
		L: expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "x"}, Right: 0.1},
		R: expr.Cmp{Op: vec.Gt, Left: expr.ColRef{Name: "x"}, Right: 0.9},
	}
	allAggs := []AggSpec{
		{Func: Count},
		{Func: Sum, Arg: expr.ColRef{Name: "v"}},
		{Func: Avg, Arg: expr.ColRef{Name: "v"}},
		{Func: Min, Arg: expr.ColRef{Name: "v"}},
		{Func: Max, Arg: expr.ColRef{Name: "v"}},
		{Func: StdDev, Arg: expr.ColRef{Name: "v"}},
	}
	return map[string]Query{
		"count_star": {Table: "grid", Aggs: []AggSpec{{Func: Count}}},
		"all_aggs_between": {
			Table: "grid", Where: between, Aggs: allAggs,
		},
		"avg_or_tails": {
			Table: "grid", Where: tails,
			Aggs: []AggSpec{{Func: Avg, Arg: expr.ColRef{Name: "v"}, Alias: "a"}},
		},
		"sum_not": {
			Table: "grid", Where: expr.Not{P: between},
			Aggs: []AggSpec{{Func: Sum, Arg: expr.ColRef{Name: "v"}, Alias: "s"}},
		},
		"count_streq_and": {
			Table: "grid",
			Where: expr.And{L: expr.StrEq{Col: "cat", Value: "GALAXY"}, R: between},
			Aggs:  []AggSpec{{Func: Count}},
		},
		// Int64 comparison and Arith scalars exercise preparePred: their
		// materialisation is shared across morsels rather than rebuilt.
		"avg_int64_cmp": {
			Table: "grid",
			Where: expr.Cmp{Op: vec.Gt, Left: expr.ColRef{Name: "g"}, Right: 3},
			Aggs:  []AggSpec{{Func: Avg, Arg: expr.ColRef{Name: "v"}, Alias: "m"}},
		},
		"count_arith_between": {
			Table: "grid",
			Where: expr.Between{
				Expr: expr.Arith{Op: expr.Add, L: expr.ColRef{Name: "x"}, R: expr.Const{V: 0.25}},
				Lo:   0.5, Hi: 1.0,
			},
			Aggs: []AggSpec{{Func: Count}},
		},
		"group_by_int": {
			Table: "grid", Where: between, GroupBy: "g",
			Aggs: []AggSpec{
				{Func: Count},
				{Func: Avg, Arg: expr.ColRef{Name: "v"}, Alias: "m"},
			},
		},
		"group_by_string_ordered": {
			Table: "grid", GroupBy: "cat", OrderBy: "s", Desc: true,
			Aggs: []AggSpec{{Func: Sum, Arg: expr.ColRef{Name: "v"}, Alias: "s"}},
		},
		"projection_order_limit": {
			Table: "grid", Where: between,
			Select: []string{"id", "x"}, OrderBy: "x", Limit: 100,
		},
		"projection_star": {
			Table: "grid", Where: tails, Select: []string{"*"}, Limit: 50,
		},
	}
}

// TestParallelSequentialEquivalence runs the query grid at Parallelism
// 1 vs 2, 4 and 8 (morsel granule 4096, so ~12 morsels) and requires
// bit-identical results: parallelism must change latency only.
func TestParallelSequentialEquivalence(t *testing.T) {
	tb := gridTable(t, 50_000)
	for name, q := range gridQueries() {
		t.Run(name, func(t *testing.T) {
			seq, err := RunOnOpts(tb, q, ExecOptions{Parallelism: 1, MorselRows: 4096})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8} {
				par, err := RunOnOpts(tb, q, ExecOptions{Parallelism: workers, MorselRows: 4096})
				if err != nil {
					t.Fatal(err)
				}
				sameResult(t, seq, par)
			}
		})
	}
}

// TestSingleMorselMatchesLegacySequential checks that a table no larger
// than one morsel produces exactly what the original single-pass
// pipeline produced: the whole-table path must stay bit-identical.
func TestSingleMorselMatchesLegacySequential(t *testing.T) {
	tb := gridTable(t, 8192)
	for name, q := range gridQueries() {
		t.Run(name, func(t *testing.T) {
			// Default MorselRows (64K) > 8192 rows: one morsel.
			one, err := RunOnOpts(tb, q, ExecOptions{Parallelism: 8})
			if err != nil {
				t.Fatal(err)
			}
			// Legacy shape: filter everything, then aggregate via the
			// shared AggregateStates core.
			if len(q.Aggs) > 0 && q.GroupBy == "" {
				sel, err := q.Pred().Filter(tb, nil)
				if err != nil {
					t.Fatal(err)
				}
				states, err := AggregateStates(tb, sel, q.Aggs)
				if err != nil {
					t.Fatal(err)
				}
				legacy, err := ResultFromStates(q, states)
				if err != nil {
					t.Fatal(err)
				}
				legacy.ScannedRows = tb.Len()
				sameResult(t, legacy, one)
			}
		})
	}
}

// TestParallelFilterMatchesSequential checks engine.Filter returns the
// exact selection of an unrestricted sequential predicate evaluation.
func TestParallelFilterMatchesSequential(t *testing.T) {
	tb := gridTable(t, 30_000)
	pred := expr.Or{
		L: expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 0.4, Hi: 0.6},
		R: expr.StrEq{Col: "cat", Value: "QSO"},
	}
	want, err := pred.Filter(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Filter(tb, pred, ExecOptions{Parallelism: 4, MorselRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("parallel filter diverges: want %d rows, got %d", len(want), len(got))
	}
	// TRUE predicate short-circuits to nil (all rows).
	all, err := Filter(tb, expr.TruePred{}, ExecOptions{Parallelism: 4, MorselRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if all != nil {
		t.Fatalf("TRUE predicate: want nil selection, got %d rows", len(all))
	}
}

// TestPreparePredSharesMaterialisation checks the rewritten predicate
// filters identically to the original and that float64 column refs are
// left untouched (they already evaluate to shared storage).
func TestPreparePredSharesMaterialisation(t *testing.T) {
	tb := gridTable(t, 10_000)
	pred := expr.And{
		L: expr.Not{P: expr.Cmp{Op: vec.Le, Left: expr.ColRef{Name: "g"}, Right: 2}},
		R: expr.Between{
			Expr: expr.Arith{Op: expr.Mul, L: expr.ColRef{Name: "x"}, R: expr.Const{V: 2}},
			Lo:   0.5, Hi: 1.5,
		},
	}
	prepared, err := preparePred(tb, pred)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pred.Filter(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prepared.Filter(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("prepared predicate diverges: %d vs %d rows", len(want), len(got))
	}
	f64ref, err := prepareScalar(tb, expr.ColRef{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f64ref.(expr.ColRef); !ok {
		t.Fatalf("float64 ColRef rewritten to %T, want untouched", f64ref)
	}
	intRef, err := prepareScalar(tb, expr.ColRef{Name: "g"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := intRef.(expr.Materialized); !ok {
		t.Fatalf("int64 ColRef prepared to %T, want Materialized", intRef)
	}
}

// TestParallelFilterPropagatesErrors checks the deterministic
// first-morsel-in-order error reporting of the worker pool.
func TestParallelFilterPropagatesErrors(t *testing.T) {
	tb := gridTable(t, 30_000)
	bad := expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "nope"}, Right: 1}
	if _, err := Filter(tb, bad, ExecOptions{Parallelism: 4, MorselRows: 1000}); err == nil {
		t.Fatal("want error for unknown column, got nil")
	}
	q := Query{Table: "grid", Where: bad, Aggs: []AggSpec{{Func: Count}}}
	if _, err := RunOnOpts(tb, q, ExecOptions{Parallelism: 4, MorselRows: 1000}); err == nil {
		t.Fatal("want error for unknown column, got nil")
	}
}

// TestHashJoinParallelEquivalence checks the parallel probe emits rows
// in the exact sequential probe order.
func TestHashJoinParallelEquivalence(t *testing.T) {
	left := gridTable(t, 20_000)
	right := table.MustNew("dim", table.Schema{
		{Name: "g", Type: column.Int64},
		{Name: "label", Type: column.String},
	})
	for g := 0; g < 8; g += 2 { // half the keys match
		if err := right.AppendRow(table.Row{int64(g), fmt.Sprintf("group-%d", g)}); err != nil {
			t.Fatal(err)
		}
	}
	seq, err := HashJoinOpts(left, right, "g", "g", ExecOptions{Parallelism: 1, MorselRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	par, err := HashJoinOpts(left, right, "g", "g", ExecOptions{Parallelism: 4, MorselRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, &Result{Table: seq}, &Result{Table: par})
}

// TestExecOptionsDefaults pins the option resolution rules.
func TestExecOptionsDefaults(t *testing.T) {
	var o ExecOptions
	if w := o.workers(); w < 1 {
		t.Fatalf("default workers = %d, want >= 1", w)
	}
	if mr := o.morselRows(); mr != DefaultMorselRows {
		t.Fatalf("default morsel rows = %d, want %d", mr, DefaultMorselRows)
	}
	o = ExecOptions{Parallelism: 3, MorselRows: 128}
	if o.workers() != 3 || o.morselRows() != 128 {
		t.Fatalf("explicit options not honoured: %+v", o)
	}
	if got := o.morselCount(1000); got != 8 {
		t.Fatalf("morselCount(1000) = %d, want 8", got)
	}
	if got := o.morselCount(0); got != 0 {
		t.Fatalf("morselCount(0) = %d, want 0", got)
	}
}
