package engine

import (
	"math/rand"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// randPositions returns a sorted random subset of [0, n).
func randPositions(rng *rand.Rand, n int, p float64) vec.Sel {
	out := make(vec.Sel, 0, int(float64(n)*p)+1)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			out = append(out, int32(i))
		}
	}
	return out
}

// intersectSorted returns a ∩ b for sorted selections.
func intersectSorted(a, b vec.Sel) vec.Sel {
	out := make(vec.Sel, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// selScanTable builds n rows with a clustered x column (x = row index)
// and an unordered v column.
func selScanTable(t testing.TB, n int) *table.Table {
	t.Helper()
	xs := make([]float64, n)
	vs := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = float64(i)
		vs[i] = float64(i%1009) / 1009
	}
	tb := table.MustNew("selscan", table.Schema{
		{Name: "x", Type: column.Float64},
		{Name: "v", Type: column.Float64},
	})
	if err := tb.AppendColumns([]column.Column{
		column.NewFloat64From("x", xs),
		column.NewFloat64From("v", vs),
	}); err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestFilterSelMatchesFilterIntersection asserts, over random position
// densities, predicates, morsel granules and worker counts, that
// FilterSel returns exactly Filter ∩ positions, bit-identical at every
// parallelism level.
func TestFilterSelMatchesFilterIntersection(t *testing.T) {
	const n = 40_000
	tb := selScanTable(t, n)
	rng := rand.New(rand.NewSource(23))
	preds := []expr.Predicate{
		expr.TruePred{},
		expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "v"}, Right: 0.25},
		expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 5000, Hi: 9000},
		expr.And{
			L: expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 1000, Hi: 30_000},
			R: expr.Cmp{Op: vec.Gt, Left: expr.ColRef{Name: "v"}, Right: 0.5},
		},
		expr.Not{P: expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: "v"}, Right: 0.1}},
	}
	densities := []float64{0, 0.001, 0.2, 0.7, 1}
	for pi, pred := range preds {
		want, err := Filter(tb, pred, ExecOptions{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = vec.NewSelAll(n)
		}
		for _, d := range densities {
			positions := randPositions(rng, n, d)
			expect := intersectSorted(want, positions)
			for _, workers := range []int{1, 4} {
				for _, mr := range []int{0, 1024} {
					got, stats, err := FilterSel(tb, pred, positions, ExecOptions{Parallelism: workers, MorselRows: mr})
					if err != nil {
						t.Fatalf("pred %d density %g workers %d: %v", pi, d, workers, err)
					}
					if len(got) != len(expect) {
						t.Fatalf("pred %d density %g workers %d mr %d: got %d rows, want %d",
							pi, d, workers, mr, len(got), len(expect))
					}
					for k := range got {
						if got[k] != expect[k] {
							t.Fatalf("pred %d density %g workers %d: row %d = %d, want %d",
								pi, d, workers, k, got[k], expect[k])
						}
					}
					if scanned := stats.ScannedRows + stats.SkippedRows; scanned != len(positions) {
						t.Fatalf("pred %d: stats cover %d positions, want %d", pi, scanned, len(positions))
					}
				}
			}
		}
	}
}

// TestFilterSelZonePruning checks that a range predicate confined to a
// slice of clustered data skips the granules no sampled position can
// match in, that the pruned result matches the unprunable control, and
// that EstimateSelScanRows predicts exactly what the scan then does.
func TestFilterSelZonePruning(t *testing.T) {
	const granules = 4
	n := granules * column.ZoneRows
	tb := selScanTable(t, n)
	rng := rand.New(rand.NewSource(5))
	positions := randPositions(rng, n, 0.1)
	pred := expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 70_000, Hi: 90_000}
	opts := ExecOptions{Parallelism: 2}

	got, stats, err := FilterSel(tb, pred, positions, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SkippedMorsels == 0 || stats.SkippedRows == 0 {
		t.Fatalf("no pruning on clustered data: %+v", stats)
	}
	control, _, err := FilterSel(tb, unboundable(pred), positions, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(control) {
		t.Fatalf("pruned scan returned %d rows, control %d", len(got), len(control))
	}
	for i := range got {
		if got[i] != control[i] {
			t.Fatalf("row %d: pruned %d, control %d", i, got[i], control[i])
		}
	}
	if est := EstimateSelScanRows(tb, pred, positions, opts); est != stats.ScannedRows {
		t.Fatalf("EstimateSelScanRows = %d, scan evaluated %d", est, stats.ScannedRows)
	}
	if est := EstimateSelScanRows(tb, expr.TruePred{}, positions, opts); est != len(positions) {
		t.Fatalf("EstimateSelScanRows(TRUE) = %d, want %d", est, len(positions))
	}
}

// TestFilterSelContractErrors asserts the position-vector contract is
// enforced deterministically.
func TestFilterSelContractErrors(t *testing.T) {
	tb := selScanTable(t, 128)
	opts := DefaultExecOptions()
	pred := expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "v"}, Right: 0.5}
	if _, _, err := FilterSel(tb, pred, vec.Sel{5, 3}, opts); err == nil {
		t.Error("unsorted positions accepted")
	}
	if _, _, err := FilterSel(tb, pred, vec.Sel{5, 5, 7}, opts); err == nil {
		t.Error("duplicate positions accepted (dense fast path would leak unsampled rows)")
	}
	if _, _, err := FilterSel(tb, pred, vec.Sel{5, 400}, opts); err == nil {
		t.Error("out-of-range position accepted")
	}
	if _, _, err := FilterSel(tb, pred, vec.Sel{-1, 5}, opts); err == nil {
		t.Error("negative position accepted")
	}
	bad := expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "missing"}, Right: 0}
	if _, _, err := FilterSel(tb, bad, vec.Sel{1, 2}, opts); err == nil {
		t.Error("bad column reference accepted")
	}
}

// TestRunOnSelAggregatesAndProjection cross-checks RunOnSel against
// RunOnOpts over the materialised subset: aggregates and grouped
// aggregates over (positions ∧ predicate) must equal the same query on
// a standalone table holding exactly the selected rows.
func TestRunOnSelAggregatesAndProjection(t *testing.T) {
	const n = 10_000
	xs := make([]float64, n)
	vs := make([]float64, n)
	gs := make([]int64, n)
	for i := 0; i < n; i++ {
		xs[i] = float64(i)
		vs[i] = float64((i*31)%997) / 997
		gs[i] = int64(i % 7)
	}
	tb := table.MustNew("base", table.Schema{
		{Name: "x", Type: column.Float64},
		{Name: "v", Type: column.Float64},
		{Name: "g", Type: column.Int64},
	})
	if err := tb.AppendColumns([]column.Column{
		column.NewFloat64From("x", xs),
		column.NewFloat64From("v", vs),
		column.NewInt64From("g", gs),
	}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	positions := randPositions(rng, n, 0.3)
	sample, err := tb.Project("sample", tb.Schema().Names(), positions)
	if err != nil {
		t.Fatal(err)
	}
	pred := expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "v"}, Right: 0.4}

	aggQ := Query{Table: "base", Where: pred, Aggs: []AggSpec{
		{Func: Count}, {Func: Sum, Arg: expr.ColRef{Name: "v"}, Alias: "s"},
		{Func: Avg, Arg: expr.ColRef{Name: "v"}, Alias: "a"},
	}}
	wantAgg, err := RunOnOpts(sample, aggQ, ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, err := RunOnSelOpts(tb, positions, aggQ, ExecOptions{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"COUNT(*)", "s", "a"} {
			g, err := got.Scalar(name)
			if err != nil {
				t.Fatal(err)
			}
			w, err := wantAgg.Scalar(name)
			if err != nil {
				t.Fatal(err)
			}
			if g != w {
				t.Errorf("workers %d: %s = %v, want %v", workers, name, g, w)
			}
		}
	}

	grpQ := Query{Table: "base", Where: pred, GroupBy: "g", Aggs: []AggSpec{
		{Func: Count}, {Func: Avg, Arg: expr.ColRef{Name: "v"}, Alias: "a"},
	}}
	wantGrp, err := RunOnOpts(sample, grpQ, ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	gotGrp, err := RunOnSelOpts(tb, positions, grpQ, ExecOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if gotGrp.Len() != wantGrp.Len() {
		t.Fatalf("grouped: %d groups, want %d", gotGrp.Len(), wantGrp.Len())
	}
	for i := 0; i < wantGrp.Len(); i++ {
		g := gotGrp.Table.RowStrings(int32(i))
		w := wantGrp.Table.RowStrings(int32(i))
		for k := range g {
			if g[k] != w[k] {
				t.Errorf("grouped row %d col %d: %q, want %q", i, k, g[k], w[k])
			}
		}
	}

	projQ := Query{Table: "base", Where: pred, Select: []string{"x"}, OrderBy: "x", Desc: true, Limit: 25}
	wantProj, err := RunOnOpts(sample, projQ, ExecOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	gotProj, err := RunOnSelOpts(tb, positions, projQ, ExecOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	gw, err := wantProj.Float64Col("x")
	if err != nil {
		t.Fatal(err)
	}
	gg, err := gotProj.Float64Col("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(gg) != len(gw) {
		t.Fatalf("projection: %d rows, want %d", len(gg), len(gw))
	}
	for i := range gg {
		if gg[i] != gw[i] {
			t.Errorf("projection row %d: %v, want %v", i, gg[i], gw[i])
		}
	}
}
