package engine

import (
	"time"

	"sciborq/internal/column"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// CostModel predicts query latency from row counts. SciBORQ's
// time-bounded processing (§3.2) chooses the largest impression layer
// whose predicted latency fits the user's bound, so the model is
// calibrated on this machine rather than assumed.
type CostModel struct {
	// NsPerRow is the calibrated cost of scanning + filtering +
	// aggregating one row, in nanoseconds.
	NsPerRow float64
	// FixedNs is the per-query overhead independent of input size.
	FixedNs float64
}

// DefaultCostModel is a conservative fallback used before calibration.
func DefaultCostModel() CostModel {
	return CostModel{NsPerRow: 12, FixedNs: 20_000}
}

// Predict returns the predicted latency of scanning n rows.
func (c CostModel) Predict(n int) time.Duration {
	return time.Duration(c.FixedNs + c.NsPerRow*float64(n))
}

// MaxRowsWithin returns the largest row count whose predicted latency
// stays within budget (0 when even the fixed overhead exceeds it).
func (c CostModel) MaxRowsWithin(budget time.Duration) int {
	ns := float64(budget.Nanoseconds()) - c.FixedNs
	if ns <= 0 {
		return 0
	}
	if c.NsPerRow <= 0 {
		return int(^uint(0) >> 1)
	}
	return int(ns / c.NsPerRow)
}

// Calibrate measures the per-row cost of a representative
// filter+aggregate pipeline on this machine and returns a fitted model.
// rows controls the calibration table size (>= 2 sizes are probed).
func Calibrate(rows int) CostModel {
	if rows < 4096 {
		rows = 4096
	}
	small := rows / 4
	tSmall := calibrationRun(small)
	tBig := calibrationRun(rows)
	perRow := float64(tBig-tSmall) / float64(rows-small)
	if perRow <= 0 {
		perRow = 1
	}
	fixed := float64(tSmall) - perRow*float64(small)
	if fixed < 0 {
		fixed = 0
	}
	return CostModel{NsPerRow: perRow, FixedNs: fixed}
}

// calibrationRun times one scan+filter+sum over n synthetic rows and
// returns nanoseconds (the median of three runs).
func calibrationRun(n int) int64 {
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i%997) / 997
	}
	tb := table.MustNew("calibration", table.Schema{{Name: "x", Type: column.Float64}})
	if err := tb.AppendColumns([]column.Column{column.NewFloat64From("x", data)}); err != nil {
		panic(err)
	}
	var times []int64
	for r := 0; r < 3; r++ {
		start := time.Now()
		sel := vec.SelectFloat64(data, nil, vec.Lt, 0.5)
		_ = vec.SumFloat64(data, sel)
		times = append(times, time.Since(start).Nanoseconds())
	}
	// median of 3
	a, b, c := times[0], times[1], times[2]
	switch {
	case (a >= b && a <= c) || (a <= b && a >= c):
		return a
	case (b >= a && b <= c) || (b <= a && b >= c):
		return b
	default:
		return c
	}
}
