package engine

import (
	"time"

	"sciborq/internal/column"
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// CostModel predicts query latency from row counts. SciBORQ's
// time-bounded processing (§3.2) chooses the largest impression layer
// whose predicted latency fits the user's bound, so the model is
// calibrated on this machine rather than assumed.
type CostModel struct {
	// NsPerRow is the calibrated cost of scanning + filtering +
	// aggregating one row, in nanoseconds.
	NsPerRow float64
	// FixedNs is the per-query overhead independent of input size.
	FixedNs float64
}

// DefaultCostModel is a conservative fallback used before calibration.
func DefaultCostModel() CostModel {
	return CostModel{NsPerRow: 12, FixedNs: 20_000}
}

// Predict returns the predicted latency of scanning n rows.
func (c CostModel) Predict(n int) time.Duration {
	return time.Duration(c.FixedNs + c.NsPerRow*float64(n))
}

// MaxRowsWithin returns the largest row count whose predicted latency
// stays within budget (0 when even the fixed overhead exceeds it).
func (c CostModel) MaxRowsWithin(budget time.Duration) int {
	ns := float64(budget.Nanoseconds()) - c.FixedNs
	if ns <= 0 {
		return 0
	}
	if c.NsPerRow <= 0 {
		return int(^uint(0) >> 1)
	}
	return int(ns / c.NsPerRow)
}

// Calibrate measures the per-row cost of a representative
// filter+aggregate pipeline on this machine and returns a fitted model.
// rows controls the calibration table size (>= 2 sizes are probed).
// It calibrates the default (parallel) execution configuration, so the
// time-bound layer picker sees the rows/sec the morsel-driven executor
// actually delivers rather than a pessimistic single-core figure.
func Calibrate(rows int) CostModel {
	return CalibrateOpts(rows, DefaultExecOptions())
}

// CalibrateOpts is Calibrate for an explicit execution configuration.
// The probe runs the real morsel pipeline (RunOnOpts with a filter +
// SUM query), so goroutine fan-out and merge overheads are priced in.
func CalibrateOpts(rows int, opts ExecOptions) CostModel {
	if rows < 4096 {
		rows = 4096
	}
	// BOTH probes must run in the fully parallel regime at the caller's
	// real morsel granule: probing a shrunken granule would over-promise
	// small scans, and mixing a partially parallel small probe with a
	// fully parallel big probe would corrupt the secant fit (with
	// near-linear scaling the two wall times converge and the fitted
	// per-row rate collapses toward zero — an over-promise of orders of
	// magnitude). small = rows/4, so rows >= 4·workers·granule keeps
	// even the small probe spanning every worker. Capped so calibration
	// stays cheap on very wide machines; beyond the cap the probe spans
	// fewer morsels than workers and errs toward under-promising, the
	// safe direction for WITHIN TIME.
	if w := opts.workers(); w > 1 {
		span := 4 * w * opts.morselRows()
		const maxCalibrationRows = 4 << 20
		if span > maxCalibrationRows {
			span = maxCalibrationRows
		}
		if rows < span {
			rows = span
		}
	}
	small := rows / 4
	tSmall, scannedSmall := calibrationRun(small, opts)
	tBig, scannedBig := calibrationRun(rows, opts)
	if scannedBig <= scannedSmall {
		// Zone maps cannot prune the uniform calibration data, so this
		// is unreachable; guarded so a future probe change cannot make
		// the fit divide by zero.
		scannedSmall, scannedBig = small, rows
	}
	perRow := float64(tBig-tSmall) / float64(scannedBig-scannedSmall)
	if perRow <= 0 {
		perRow = 1
	}
	fixed := float64(tSmall) - perRow*float64(scannedSmall)
	if fixed < 0 {
		fixed = 0
	}
	return CostModel{NsPerRow: perRow, FixedNs: fixed}
}

// calibrationRun times one scan+filter+sum over n synthetic rows under
// opts and returns nanoseconds (the median of three runs) plus the
// rows the executor actually evaluated (after zone-map pruning), so
// the secant fit prices pruning-aware rows/sec.
func calibrationRun(n int, opts ExecOptions) (int64, int) {
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i%997) / 997
	}
	tb := table.MustNew("calibration", table.Schema{{Name: "x", Type: column.Float64}})
	if err := tb.AppendColumns([]column.Column{column.NewFloat64From("x", data)}); err != nil {
		panic(err)
	}
	q := Query{
		Table: "calibration",
		Where: expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "x"}, Right: 0.5},
		Aggs:  []AggSpec{{Func: Sum, Arg: expr.ColRef{Name: "x"}}},
	}
	var times []int64
	scanned := n
	for r := 0; r < 3; r++ {
		start := time.Now()
		res, err := RunOnOpts(tb, q, opts)
		if err != nil {
			panic(err) // static query over a static schema; cannot happen
		}
		times = append(times, time.Since(start).Nanoseconds())
		scanned = res.ScannedRows
	}
	// median of 3
	a, b, c := times[0], times[1], times[2]
	switch {
	case (a >= b && a <= c) || (a <= b && a >= c):
		return a, scanned
	case (b >= a && b <= c) || (b <= a && b >= c):
		return b, scanned
	default:
		return c, scanned
	}
}
