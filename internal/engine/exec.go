package engine

import (
	"fmt"
	"math"
	"sort"

	"sciborq/internal/column"
	"sciborq/internal/stats"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// Result is a fully materialised query result.
type Result struct {
	Table *table.Table
	// ScannedRows is the number of base rows the executor touched;
	// the cost model calibrates against it.
	ScannedRows int
}

// Len returns the number of result rows.
func (r *Result) Len() int { return r.Table.Len() }

// Float64Col returns a float64 result column by name.
func (r *Result) Float64Col(name string) ([]float64, error) { return r.Table.Float64(name) }

// Scalar returns the single value of a one-row, one-column aggregate
// result column.
func (r *Result) Scalar(name string) (float64, error) {
	col, err := r.Table.Float64(name)
	if err != nil {
		return 0, err
	}
	if len(col) != 1 {
		return 0, fmt.Errorf("engine: column %q has %d rows, want 1", name, len(col))
	}
	return col[0], nil
}

// Executor evaluates queries against a catalog.
type Executor struct {
	cat *table.Catalog
}

// NewExecutor returns an executor over the given catalog.
func NewExecutor(cat *table.Catalog) *Executor { return &Executor{cat: cat} }

// Run evaluates q against its table in the catalog.
func (e *Executor) Run(q Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	t, err := e.cat.Get(q.Table)
	if err != nil {
		return nil, err
	}
	return RunOn(t, q)
}

// RunOn evaluates q against an explicit table — the hook the bounded
// executor uses to aim one logical query at different impression layers.
func RunOn(t *table.Table, q Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	sel, err := q.Pred().Filter(t, nil)
	if err != nil {
		return nil, err
	}
	if len(q.Aggs) > 0 {
		if q.GroupBy != "" {
			return groupByAggregate(t, sel, q)
		}
		return aggregate(t, sel, q)
	}
	return project(t, sel, q)
}

// project materialises the selected columns, applying ORDER BY / LIMIT.
// A single "*" projection expands to the full schema.
func project(t *table.Table, sel vec.Sel, q Query) (*Result, error) {
	if len(q.Select) == 1 && q.Select[0] == "*" {
		q.Select = t.Schema().Names()
	}
	sel, err := orderAndLimit(t, sel, q)
	if err != nil {
		return nil, err
	}
	out, err := t.Project(resultName(q), q.Select, sel)
	if err != nil {
		return nil, err
	}
	return &Result{Table: out, ScannedRows: t.Len()}, nil
}

// orderAndLimit sorts sel by the ORDER BY column and truncates to LIMIT.
func orderAndLimit(t *table.Table, sel vec.Sel, q Query) (vec.Sel, error) {
	if sel == nil {
		sel = vec.NewSelAll(t.Len())
	}
	if q.OrderBy != "" {
		keys, err := t.Float64(q.OrderBy)
		if err != nil {
			return nil, err
		}
		sorted := make(vec.Sel, len(sel))
		copy(sorted, sel)
		sort.SliceStable(sorted, func(a, b int) bool {
			if q.Desc {
				return keys[sorted[a]] > keys[sorted[b]]
			}
			return keys[sorted[a]] < keys[sorted[b]]
		})
		sel = sorted
	}
	if q.Limit > 0 && len(sel) > q.Limit {
		sel = sel[:q.Limit]
	}
	return sel, nil
}

// AggState carries the moments of one aggregate's input; the estimate
// package turns it into confidence intervals.
type AggState struct {
	Spec    AggSpec
	Moments stats.Moments
}

// Value returns the aggregate's exact value over the observed input.
func (s *AggState) Value() float64 {
	m := &s.Moments
	switch s.Spec.Func {
	case Count:
		return float64(m.N())
	case Sum:
		return m.Mean() * float64(m.N())
	case Avg:
		return m.Mean()
	case Min:
		return m.Min()
	case Max:
		return m.Max()
	case StdDev:
		return m.StdDev()
	}
	return math.NaN()
}

// AggregateStates computes per-aggregate input moments for q on t
// restricted to sel. It is the common core of plain and bounded
// aggregation.
func AggregateStates(t *table.Table, sel vec.Sel, aggs []AggSpec) ([]AggState, error) {
	states := make([]AggState, len(aggs))
	for i, a := range aggs {
		states[i].Spec = a
		if a.Arg == nil {
			// COUNT(*): every selected row contributes 1.
			n := sel.Len(t.Len())
			for k := 0; k < n; k++ {
				states[i].Moments.Observe(1)
			}
			continue
		}
		vals, err := a.Arg.EvalF64(t)
		if err != nil {
			return nil, err
		}
		states[i].Moments.ObserveAll(vec.GatherFloat64(vals, sel))
	}
	return states, nil
}

// aggregate evaluates a global (ungrouped) aggregate query.
func aggregate(t *table.Table, sel vec.Sel, q Query) (*Result, error) {
	states, err := AggregateStates(t, sel, q.Aggs)
	if err != nil {
		return nil, err
	}
	res, err := ResultFromStates(q, states)
	if err != nil {
		return nil, err
	}
	res.ScannedRows = t.Len()
	return res, nil
}

// ResultFromStates assembles a one-row aggregate result from computed
// aggregate states; the bounded executor uses it for baseline variants
// that compute their own selections.
func ResultFromStates(q Query, states []AggState) (*Result, error) {
	schema := make(table.Schema, len(states))
	for i, s := range states {
		schema[i] = table.ColumnDef{Name: s.Spec.Name(), Type: column.Float64}
	}
	out, err := table.New(resultName(q), schema)
	if err != nil {
		return nil, err
	}
	row := make(table.Row, len(states))
	for i := range states {
		row[i] = states[i].Value()
	}
	if err := out.AppendRow(row); err != nil {
		return nil, err
	}
	return &Result{Table: out}, nil
}

// groupKey extracts a group identifier per row for BIGINT or VARCHAR
// grouping columns.
func groupKeys(t *table.Table, name string) (func(i int32) string, error) {
	col, err := t.Col(name)
	if err != nil {
		return nil, err
	}
	switch c := col.(type) {
	case *column.Int64Col:
		return func(i int32) string { return fmt.Sprintf("%d", c.Data[i]) }, nil
	case *column.StringCol:
		return func(i int32) string { return c.Value(i) }, nil
	default:
		return nil, fmt.Errorf("engine: GROUP BY %q: unsupported type %s", name, col.Type())
	}
}

// groupByAggregate evaluates a grouped aggregate query via hash grouping.
func groupByAggregate(t *table.Table, sel vec.Sel, q Query) (*Result, error) {
	key, err := groupKeys(t, q.GroupBy)
	if err != nil {
		return nil, err
	}
	// Materialise every aggregate argument once.
	args := make([][]float64, len(q.Aggs))
	for i, a := range q.Aggs {
		if a.Arg == nil {
			continue
		}
		vals, err := a.Arg.EvalF64(t)
		if err != nil {
			return nil, err
		}
		args[i] = vals
	}
	if sel == nil {
		sel = vec.NewSelAll(t.Len())
	}
	groups := make(map[string][]stats.Moments)
	order := make([]string, 0, 16) // deterministic first-seen order
	for _, row := range sel {
		k := key(row)
		ms, ok := groups[k]
		if !ok {
			ms = make([]stats.Moments, len(q.Aggs))
			order = append(order, k)
		}
		for i := range q.Aggs {
			if args[i] == nil {
				ms[i].Observe(1)
			} else {
				ms[i].Observe(args[i][row])
			}
		}
		groups[k] = ms
	}
	schema := make(table.Schema, 0, len(q.Aggs)+1)
	schema = append(schema, table.ColumnDef{Name: q.GroupBy, Type: column.String})
	for _, a := range q.Aggs {
		schema = append(schema, table.ColumnDef{Name: a.Name(), Type: column.Float64})
	}
	out, err := table.New(resultName(q), schema)
	if err != nil {
		return nil, err
	}
	for _, k := range order {
		row := make(table.Row, 0, len(q.Aggs)+1)
		row = append(row, k)
		for i, a := range q.Aggs {
			st := AggState{Spec: a, Moments: groups[k][i]}
			row = append(row, st.Value())
		}
		if err := out.AppendRow(row); err != nil {
			return nil, err
		}
	}
	res := &Result{Table: out, ScannedRows: t.Len()}
	return sortGroupedResult(res, q)
}

// sortGroupedResult applies ORDER BY / LIMIT to a grouped result.
func sortGroupedResult(res *Result, q Query) (*Result, error) {
	if q.OrderBy == "" && q.Limit == 0 {
		return res, nil
	}
	sel := vec.NewSelAll(res.Table.Len())
	if q.OrderBy != "" {
		keys, err := res.Table.Float64(q.OrderBy)
		if err != nil {
			return nil, fmt.Errorf("engine: ORDER BY %q must name an aggregate output: %w", q.OrderBy, err)
		}
		sort.SliceStable(sel, func(a, b int) bool {
			if q.Desc {
				return keys[sel[a]] > keys[sel[b]]
			}
			return keys[sel[a]] < keys[sel[b]]
		})
	}
	if q.Limit > 0 && len(sel) > q.Limit {
		sel = sel[:q.Limit]
	}
	out, err := res.Table.Project(res.Table.Name(), res.Table.Schema().Names(), sel)
	if err != nil {
		return nil, err
	}
	return &Result{Table: out, ScannedRows: res.ScannedRows}, nil
}

func resultName(q Query) string { return "result(" + q.Table + ")" }
