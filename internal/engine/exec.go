package engine

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"sciborq/internal/column"
	"sciborq/internal/hashtab"
	"sciborq/internal/stats"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// Result is a fully materialised query result.
type Result struct {
	Table *table.Table
	// ScannedRows is the number of base rows the executor touched
	// (zone-map-pruned morsels excluded); the cost model calibrates
	// against it.
	ScannedRows int
	// Stats reports the scan's morsel layout and zone-map pruning.
	Stats ScanStats
}

// Len returns the number of result rows.
func (r *Result) Len() int { return r.Table.Len() }

// Float64Col returns a float64 result column by name.
func (r *Result) Float64Col(name string) ([]float64, error) { return r.Table.Float64(name) }

// Scalar returns the single value of a one-row, one-column aggregate
// result column.
func (r *Result) Scalar(name string) (float64, error) {
	col, err := r.Table.Float64(name)
	if err != nil {
		return 0, err
	}
	if len(col) != 1 {
		return 0, fmt.Errorf("engine: column %q has %d rows, want 1", name, len(col))
	}
	return col[0], nil
}

// Executor evaluates queries against a catalog.
type Executor struct {
	cat  *table.Catalog
	opts ExecOptions
}

// NewExecutor returns an executor over the given catalog with default
// (parallel) execution options.
func NewExecutor(cat *table.Catalog) *Executor { return &Executor{cat: cat} }

// NewExecutorOpts returns an executor with explicit execution options.
func NewExecutorOpts(cat *table.Catalog, opts ExecOptions) *Executor {
	return &Executor{cat: cat, opts: opts}
}

// Run evaluates q against its table in the catalog.
func (e *Executor) Run(q Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	t, err := e.cat.Get(q.Table)
	if err != nil {
		return nil, err
	}
	return RunOnOpts(t, q, e.opts)
}

// RunOn evaluates q against an explicit table — the hook the bounded
// executor uses to aim one logical query at different impression layers.
// It uses the default execution options (parallel, one worker per CPU).
func RunOn(t *table.Table, q Query) (*Result, error) {
	return RunOnOpts(t, q, DefaultExecOptions())
}

// RunOnOpts is RunOn with explicit execution options. Aggregates run
// through the fused morsel pipeline (filter + partial aggregation per
// morsel, deterministic morsel-order merge); projections filter in
// parallel and materialise sequentially. The whole query runs over a
// snapshot of t taken here, so concurrent Loads on the source table
// are safe and invisible to the query.
func RunOnOpts(t *table.Table, q Query, opts ExecOptions) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	t = t.Snapshot()
	if len(q.Aggs) > 0 {
		drive := func(perMorsel func(m, lo, hi int, sel vec.Sel) error) (ScanStats, error) {
			return scanMorsels(t, t.Len(), q.Pred(), opts, perMorsel)
		}
		if q.GroupBy != "" {
			return groupByAggregate(t, q, opts, drive)
		}
		return aggregate(t, q, opts, drive)
	}
	sel, stats, err := filterSnapshot(t, q.Pred(), opts)
	if err != nil {
		return nil, err
	}
	return project(t, sel, q, stats)
}

// project materialises the selected columns, applying ORDER BY / LIMIT.
// A single "*" projection expands to the full schema.
func project(t *table.Table, sel vec.Sel, q Query, stats ScanStats) (*Result, error) {
	if len(q.Select) == 1 && q.Select[0] == "*" {
		q.Select = t.Schema().Names()
	}
	sel, err := orderAndLimit(t, sel, q)
	if err != nil {
		return nil, err
	}
	out, err := t.Project(resultName(q), q.Select, sel)
	if err != nil {
		return nil, err
	}
	return &Result{Table: out, ScannedRows: stats.ScannedRows, Stats: stats}, nil
}

// orderAndLimit sorts sel by the ORDER BY column and truncates to LIMIT.
func orderAndLimit(t *table.Table, sel vec.Sel, q Query) (vec.Sel, error) {
	if sel == nil {
		sel = vec.NewSelAll(t.Len())
	}
	if q.OrderBy != "" {
		keys, err := t.Float64(q.OrderBy)
		if err != nil {
			return nil, err
		}
		sorted := make(vec.Sel, len(sel))
		copy(sorted, sel)
		sort.SliceStable(sorted, func(a, b int) bool {
			if q.Desc {
				return keys[sorted[a]] > keys[sorted[b]]
			}
			return keys[sorted[a]] < keys[sorted[b]]
		})
		sel = sorted
	}
	if q.Limit > 0 && len(sel) > q.Limit {
		sel = sel[:q.Limit]
	}
	return sel, nil
}

// AggState carries the moments of one aggregate's input; the estimate
// package turns it into confidence intervals.
type AggState struct {
	Spec    AggSpec
	Moments stats.Moments
}

// Value returns the aggregate's exact value over the observed input.
func (s *AggState) Value() float64 {
	m := &s.Moments
	switch s.Spec.Func {
	case Count:
		return float64(m.N())
	case Sum:
		return m.Mean() * float64(m.N())
	case Avg:
		return m.Mean()
	case Min:
		return m.Min()
	case Max:
		return m.Max()
	case StdDev:
		return m.StdDev()
	}
	return math.NaN()
}

// AggregateStates computes per-aggregate input moments for q on t
// restricted to sel. It is the common core of plain and bounded
// aggregation.
func AggregateStates(t *table.Table, sel vec.Sel, aggs []AggSpec) ([]AggState, error) {
	states := make([]AggState, len(aggs))
	for i, a := range aggs {
		states[i].Spec = a
		if a.Arg == nil {
			// COUNT(*): every selected row contributes 1.
			n := sel.Len(t.Len())
			for k := 0; k < n; k++ {
				states[i].Moments.Observe(1)
			}
			continue
		}
		vals, err := a.Arg.EvalF64(t)
		if err != nil {
			return nil, err
		}
		states[i].Moments.ObserveAll(vec.GatherFloat64(vals, sel))
	}
	return states, nil
}

// aggArgs materialises every aggregate argument column once, before the
// morsel fan-out; workers then only read the shared slices.
func aggArgs(t *table.Table, aggs []AggSpec) ([][]float64, error) {
	args := make([][]float64, len(aggs))
	for i, a := range aggs {
		if a.Arg == nil {
			continue
		}
		vals, err := a.Arg.EvalF64(t)
		if err != nil {
			return nil, err
		}
		args[i] = vals
	}
	return args, nil
}

// scanDriver feeds per-morsel selections into an aggregation fold. The
// base driver (built in RunOnOpts) filters every morsel of a full
// scan; the prefiltered driver (RunOnFilteredOpts) partitions an
// already-computed selection by granule. Both hand morsels to the fold
// in the same (m, lo, hi) layout, so the partial-merge order — and with
// it every floating-point result — is identical between a cold scan
// and a recycled selection.
type scanDriver func(perMorsel func(m, lo, hi int, sel vec.Sel) error) (ScanStats, error)

// aggregate evaluates a global (ungrouped) aggregate query with the
// fused morsel pipeline: each morsel folds per-aggregate moments over
// the selection the driver hands it, and the partials merge in morsel
// order. t is the query snapshot taken by RunOnOpts.
func aggregate(t *table.Table, q Query, opts ExecOptions, drive scanDriver) (*Result, error) {
	n := t.Len()
	args, err := aggArgs(t, q.Aggs)
	if err != nil {
		return nil, err
	}
	partials := make([][]stats.Moments, opts.morselCount(n))
	scan, err := drive(func(m, lo, hi int, sel vec.Sel) error {
		ms := make([]stats.Moments, len(q.Aggs))
		forSel(sel, lo, hi, func(row int32) {
			for i := range q.Aggs {
				if args[i] == nil {
					ms[i].Observe(1) // COUNT(*)
				} else {
					ms[i].Observe(args[i][row])
				}
			}
		})
		partials[m] = ms
		return nil
	})
	if err != nil {
		return nil, err
	}
	states := make([]AggState, len(q.Aggs))
	for i, a := range q.Aggs {
		states[i].Spec = a
		for m := range partials {
			if partials[m] == nil {
				continue // zone-map-pruned morsel: no partial state
			}
			states[i].Moments.Merge(partials[m][i])
		}
	}
	res, err := ResultFromStates(q, states)
	if err != nil {
		return nil, err
	}
	res.ScannedRows = scan.ScannedRows
	res.Stats = scan
	return res, nil
}

// ResultFromStates assembles a one-row aggregate result from computed
// aggregate states; the bounded executor uses it for baseline variants
// that compute their own selections.
func ResultFromStates(q Query, states []AggState) (*Result, error) {
	schema := make(table.Schema, len(states))
	for i, s := range states {
		schema[i] = table.ColumnDef{Name: s.Spec.Name(), Type: column.Float64}
	}
	out, err := table.New(resultName(q), schema)
	if err != nil {
		return nil, err
	}
	row := make(table.Row, len(states))
	for i := range states {
		row[i] = states[i].Value()
	}
	if err := out.AppendRow(row); err != nil {
		return nil, err
	}
	return &Result{Table: out}, nil
}

// Grouping is the dict-coded view of a GROUP BY column: every row maps
// to a raw int64 hash key with no materialisation — BIGINT columns
// group on the stored value, VARCHAR columns on the dictionary code —
// and keys render to their output string once per group, not per row.
// It is shared with the estimate package, whose grouped estimates must
// agree with the engine on group keys and first-seen order.
type Grouping struct {
	str   bool
	i64   []int64           // BIGINT path: raw values
	codes []int32           // VARCHAR path: per-row dictionary codes
	dict  *column.StringCol // VARCHAR path: code -> string decoding
}

// GroupingFor resolves the GROUP BY column of t (a snapshot) to its
// hash-key view.
func GroupingFor(t *table.Table, name string) (Grouping, error) {
	col, err := t.Col(name)
	if err != nil {
		return Grouping{}, err
	}
	switch c := col.(type) {
	case *column.Int64Col:
		return Grouping{i64: c.Data}, nil
	case *column.StringCol:
		return Grouping{str: true, codes: c.Data, dict: c}, nil
	default:
		return Grouping{}, fmt.Errorf("engine: GROUP BY %q: unsupported type %s", name, col.Type())
	}
}

// Key returns row's raw group key.
func (g *Grouping) Key(row int32) int64 {
	if g.str {
		return int64(g.codes[row])
	}
	return g.i64[row]
}

// Render returns the output string for a group key.
func (g *Grouping) Render(key int64) string {
	if g.str {
		return g.dict.Word(int32(key))
	}
	return strconv.FormatInt(key, 10)
}

// groupPartial is one morsel's hash-grouped partial state: a pooled
// flat table assigning dense local group ids in first-seen order, and a
// pooled flat moments arena indexed [gid*naggs + agg].
type groupPartial struct {
	tab *hashtab.Int64Table
	ms  []stats.Moments
}

// groupByAggregate evaluates a grouped aggregate query via per-morsel
// hash grouping on the flat hashtab tables: each morsel assigns dense
// local group ids and folds aggregates into a flat moments arena (no
// string keys, no per-group slices); the coordinator merges partials in
// ascending morsel order through a global id table, so the global
// first-seen group order (and every floating-point merge) matches the
// sequential scan order exactly. Zone-map-pruned morsels leave empty
// partials, which merge as no-ops. t is the query snapshot.
func groupByAggregate(t *table.Table, q Query, opts ExecOptions, drive scanDriver) (*Result, error) {
	n := t.Len()
	grp, err := GroupingFor(t, q.GroupBy)
	if err != nil {
		return nil, err
	}
	args, err := aggArgs(t, q.Aggs)
	if err != nil {
		return nil, err
	}
	naggs := len(q.Aggs)
	partials := make([]groupPartial, opts.morselCount(n))
	scan, err := drive(func(m, lo, hi int, sel vec.Sel) error {
		p := groupPartial{tab: hashtab.GetTable(), ms: stats.GetMoments(0)}
		forSel(sel, lo, hi, func(row int32) {
			gid, fresh := p.tab.GetOrInsert(grp.Key(row))
			if fresh {
				for i := 0; i < naggs; i++ {
					p.ms = append(p.ms, stats.Moments{})
				}
			}
			base := int(gid) * naggs
			for i := 0; i < naggs; i++ {
				if args[i] == nil {
					p.ms[base+i].Observe(1) // COUNT(*)
				} else {
					p.ms[base+i].Observe(args[i][row])
				}
			}
		})
		partials[m] = p
		return nil
	})
	if err != nil {
		// Release whatever partials completed before the error.
		for _, p := range partials {
			if p.tab != nil {
				hashtab.PutTable(p.tab)
				stats.PutMoments(p.ms)
			}
		}
		return nil, err
	}
	// Merge in ascending morsel order through a global dense id table;
	// global ids are assigned in merge order, which is exactly the
	// sequential scan's first-seen group order.
	global := hashtab.NewInt64Table(0)
	var gms []stats.Moments
	for _, p := range partials {
		if p.tab == nil {
			continue // zone-map-pruned morsel: no partial state
		}
		for lid, key := range p.tab.Keys() {
			gid, fresh := global.GetOrInsert(key)
			if fresh {
				for i := 0; i < naggs; i++ {
					gms = append(gms, stats.Moments{})
				}
			}
			gbase, lbase := int(gid)*naggs, lid*naggs
			for i := 0; i < naggs; i++ {
				gms[gbase+i].Merge(p.ms[lbase+i])
			}
		}
		hashtab.PutTable(p.tab)
		stats.PutMoments(p.ms)
	}
	schema := make(table.Schema, 0, naggs+1)
	schema = append(schema, table.ColumnDef{Name: q.GroupBy, Type: column.String})
	for _, a := range q.Aggs {
		schema = append(schema, table.ColumnDef{Name: a.Name(), Type: column.Float64})
	}
	out, err := table.New(resultName(q), schema)
	if err != nil {
		return nil, err
	}
	for gid, key := range global.Keys() {
		row := make(table.Row, 0, naggs+1)
		row = append(row, grp.Render(key))
		for i, a := range q.Aggs {
			st := AggState{Spec: a, Moments: gms[gid*naggs+i]}
			row = append(row, st.Value())
		}
		if err := out.AppendRow(row); err != nil {
			return nil, err
		}
	}
	res := &Result{Table: out, ScannedRows: scan.ScannedRows, Stats: scan}
	return sortGroupedResult(res, q)
}

// sortGroupedResult applies ORDER BY / LIMIT to a grouped result.
func sortGroupedResult(res *Result, q Query) (*Result, error) {
	if q.OrderBy == "" && q.Limit == 0 {
		return res, nil
	}
	sel := vec.NewSelAll(res.Table.Len())
	if q.OrderBy != "" {
		keys, err := res.Table.Float64(q.OrderBy)
		if err != nil {
			return nil, fmt.Errorf("engine: ORDER BY %q must name an aggregate output: %w", q.OrderBy, err)
		}
		sort.SliceStable(sel, func(a, b int) bool {
			if q.Desc {
				return keys[sel[a]] > keys[sel[b]]
			}
			return keys[sel[a]] < keys[sel[b]]
		})
	}
	if q.Limit > 0 && len(sel) > q.Limit {
		sel = sel[:q.Limit]
	}
	out, err := res.Table.Project(res.Table.Name(), res.Table.Schema().Names(), sel)
	if err != nil {
		return nil, err
	}
	return &Result{Table: out, ScannedRows: res.ScannedRows, Stats: res.Stats}, nil
}

func resultName(q Query) string { return "result(" + q.Table + ")" }
