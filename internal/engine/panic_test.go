package engine

import (
	"errors"
	"sync/atomic"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/expr"
	"sciborq/internal/faultinject"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// panicPred is a user-defined predicate that panics on its Nth Filter
// call — the poisoned-row/buggy-UDF stand-in the recover guards exist
// for.
type panicPred struct {
	calls   atomic.Int64
	panicAt int64
}

func (p *panicPred) Filter(t *table.Table, sel vec.Sel) (vec.Sel, error) {
	if p.calls.Add(1) == p.panicAt {
		panic("panicPred: poisoned morsel")
	}
	return vec.Sel{}, nil
}

func (p *panicPred) Points() []expr.Point { return nil }
func (p *panicPred) String() string       { return "panics()" }

func panicTestTable(t *testing.T, n int) *table.Table {
	t.Helper()
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i)
	}
	tb := table.MustNew("panics", table.Schema{{Name: "x", Type: column.Float64}})
	if err := tb.AppendColumns([]column.Column{column.NewFloat64From("x", data)}); err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestMorselPanicBecomesError: a panic inside one morsel's evaluation —
// sequential or on a pool worker — surfaces as a *PanicError from the
// scan instead of crashing the process, and the pool survives to run
// the next query.
func TestMorselPanicBecomesError(t *testing.T) {
	const rows, morsel = 256, 16 // 16 morsels
	tb := panicTestTable(t, rows)
	for _, workers := range []int{1, 4} {
		pred := &panicPred{panicAt: 5}
		q := Query{Table: "panics", Where: pred, Aggs: []AggSpec{{Func: Count}}}
		opts := ExecOptions{Parallelism: workers, MorselRows: morsel}
		_, err := RunOnOpts(tb, q, opts)
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PanicError, got %v", workers, err)
		}
		if pe.Value != "panicPred: poisoned morsel" {
			t.Fatalf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: PanicError carries no stack", workers)
		}
		// The engine must still work after the recovered panic.
		res, err := RunOnOpts(tb, Query{Table: "panics", Aggs: []AggSpec{{Func: Count}}}, opts)
		if err != nil {
			t.Fatalf("workers=%d: scan after recovered panic failed: %v", workers, err)
		}
		if got, _ := res.Scalar("COUNT(*)"); got != rows {
			t.Fatalf("workers=%d: post-panic COUNT = %v, want %d", workers, got, rows)
		}
	}
}

// TestInjectedMorselFaults: the engine.morsel fault point injects
// per-morsel errors and panics; both surface as per-query errors and
// the fault-free path afterwards is untouched.
func TestInjectedMorselFaults(t *testing.T) {
	const rows, morsel = 256, 16
	tb := panicTestTable(t, rows)
	q := Query{Table: "panics", Where: expr.Cmp{Op: vec.Ge, Left: expr.ColRef{Name: "x"}, Right: 0}, Aggs: []AggSpec{{Func: Count}}}
	opts := ExecOptions{Parallelism: 4, MorselRows: morsel}

	plan := faultinject.NewPlan(
		faultinject.Fault{Point: faultinject.PointMorsel, Hit: 2, Kind: faultinject.KindError},
		faultinject.Fault{Point: faultinject.PointMorsel, Hit: 20, Kind: faultinject.KindPanic},
	)
	faultinject.Enable(plan)
	defer faultinject.Disable()

	if _, err := RunOnOpts(tb, q, opts); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	// Second query crosses hit 20: the injected panic must come back as
	// a *PanicError wrapping the injection identity.
	var pe *PanicError
	if _, err := RunOnOpts(tb, q, opts); !errors.As(err, &pe) {
		t.Fatalf("want *PanicError from injected panic, got %v", err)
	} else if _, ok := pe.Value.(*faultinject.InjectedPanic); !ok {
		t.Fatalf("PanicError value = %T, want *faultinject.InjectedPanic", pe.Value)
	}

	faultinject.Disable()
	res, err := RunOnOpts(tb, q, opts)
	if err != nil {
		t.Fatalf("fault-free query after chaos failed: %v", err)
	}
	if got, _ := res.Scalar("COUNT(*)"); got != rows {
		t.Fatalf("post-fault COUNT = %v, want %d", got, rows)
	}
}

// TestPanicReleasesPooledScratch: after a recovered morsel panic the
// selection pool still hands out sane scratch — the deferred PutSel in
// scanMorsels ran during the unwind (this is a smoke check; the -race
// chaos suite exercises it under load).
func TestPanicReleasesPooledScratch(t *testing.T) {
	const rows, morsel = 512, 16
	tb := panicTestTable(t, rows)
	opts := ExecOptions{Parallelism: 2, MorselRows: morsel}
	for i := 0; i < 8; i++ {
		pred := &panicPred{panicAt: 3}
		q := Query{Table: "panics", Where: pred, Aggs: []AggSpec{{Func: Count}}}
		if _, err := RunOnOpts(tb, q, opts); err == nil {
			t.Fatal("expected panic error")
		}
		// A real filter through the same pooled scratch must stay exact.
		sel, err := Filter(tb, expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "x"}, Right: 100}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(sel) != 100 {
			t.Fatalf("iteration %d: filter after panic returned %d rows, want 100", i, len(sel))
		}
	}
}
