package engine

import (
	"fmt"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/expr"
	"sciborq/internal/stats"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// mapGroupByReference replicates the pre-hashtab map-based GROUP BY:
// per-morsel map[string][]stats.Moments partials with string keys built
// per row, merged in ascending morsel order with first-seen group
// ordering. The hashtab path must stay bit-identical to it — same group
// order, same floating-point merge sequence — at every worker count.
func mapGroupByReference(t *testing.T, tb *table.Table, q Query, morselRows int) *Result {
	t.Helper()
	n := tb.Len()
	col, err := tb.Col(q.GroupBy)
	if err != nil {
		t.Fatal(err)
	}
	var key func(i int32) string
	switch c := col.(type) {
	case *column.Int64Col:
		key = func(i int32) string { return fmt.Sprintf("%d", c.Data[i]) }
	case *column.StringCol:
		key = func(i int32) string { return c.Value(i) }
	default:
		t.Fatalf("unsupported group column type %s", col.Type())
	}
	args := make([][]float64, len(q.Aggs))
	for i, a := range q.Aggs {
		if a.Arg == nil {
			continue
		}
		vals, err := a.Arg.EvalF64(tb)
		if err != nil {
			t.Fatal(err)
		}
		args[i] = vals
	}
	type partial struct {
		groups map[string][]stats.Moments
		order  []string
	}
	var partials []partial
	for lo := 0; lo < n; lo += morselRows {
		hi := min(lo+morselRows, n)
		sel, err := q.Pred().Filter(tb, vec.NewSelRange(lo, hi))
		if err != nil {
			t.Fatal(err)
		}
		p := partial{groups: make(map[string][]stats.Moments)}
		for _, row := range sel {
			k := key(row)
			ms, ok := p.groups[k]
			if !ok {
				ms = make([]stats.Moments, len(q.Aggs))
				p.order = append(p.order, k)
			}
			for i := range q.Aggs {
				if args[i] == nil {
					ms[i].Observe(1)
				} else {
					ms[i].Observe(args[i][row])
				}
			}
			p.groups[k] = ms
		}
		partials = append(partials, p)
	}
	groups := make(map[string][]stats.Moments)
	var order []string
	for _, p := range partials {
		for _, k := range p.order {
			ms, ok := groups[k]
			if !ok {
				groups[k] = p.groups[k]
				order = append(order, k)
				continue
			}
			for i := range ms {
				ms[i].Merge(p.groups[k][i])
			}
		}
	}
	schema := make(table.Schema, 0, len(q.Aggs)+1)
	schema = append(schema, table.ColumnDef{Name: q.GroupBy, Type: column.String})
	for _, a := range q.Aggs {
		schema = append(schema, table.ColumnDef{Name: a.Name(), Type: column.Float64})
	}
	out, err := table.New("result("+q.Table+")", schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range order {
		row := make(table.Row, 0, len(q.Aggs)+1)
		row = append(row, k)
		for i, a := range q.Aggs {
			st := AggState{Spec: a, Moments: groups[k][i]}
			row = append(row, st.Value())
		}
		if err := out.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	res := &Result{Table: out, ScannedRows: n}
	sorted, err := sortGroupedResult(res, q)
	if err != nil {
		t.Fatal(err)
	}
	return sorted
}

// TestHashGroupByMatchesMapReference is the hash-path property grid:
// BIGINT and VARCHAR group keys, filtered and unfiltered, single- and
// many-group shapes, against the map-based reference at workers
// 1/2/4/8.
func TestHashGroupByMatchesMapReference(t *testing.T) {
	tb := gridTable(t, 50_000)
	const morselRows = 4096
	aggs := []AggSpec{
		{Func: Count},
		{Func: Sum, Arg: expr.ColRef{Name: "v"}, Alias: "s"},
		{Func: Avg, Arg: expr.ColRef{Name: "v"}, Alias: "m"},
		{Func: StdDev, Arg: expr.ColRef{Name: "v"}, Alias: "sd"},
	}
	queries := map[string]Query{
		"bigint_unfiltered": {Table: "grid", GroupBy: "g", Aggs: aggs},
		"bigint_filtered": {
			Table: "grid", GroupBy: "g", Aggs: aggs,
			Where: expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 0.3, Hi: 0.6},
		},
		"bigint_sparse_filter": {
			// ~0.1% selectivity: most morsels contribute no groups.
			Table: "grid", GroupBy: "g", Aggs: aggs,
			Where: expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 0.5, Hi: 0.501},
		},
		"bigint_empty_filter": {
			// Nothing matches: the grouped result must be empty.
			Table: "grid", GroupBy: "g", Aggs: aggs,
			Where: expr.Cmp{Op: vec.Gt, Left: expr.ColRef{Name: "x"}, Right: 2},
		},
		"bigint_highcard": {
			// id is unique per row: every selected row is its own group.
			Table: "grid", GroupBy: "id", Aggs: aggs[:2],
			Where: expr.Between{Expr: expr.ColRef{Name: "x"}, Lo: 0.1, Hi: 0.12},
		},
		"varchar_unfiltered": {Table: "grid", GroupBy: "cat", Aggs: aggs},
		"varchar_filtered": {
			Table: "grid", GroupBy: "cat", Aggs: aggs,
			Where: expr.Or{
				L: expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "x"}, Right: 0.2},
				R: expr.StrEq{Col: "cat", Value: "QSO"},
			},
		},
		"varchar_ordered_limit": {
			Table: "grid", GroupBy: "cat", Aggs: aggs,
			OrderBy: "m", Desc: true, Limit: 2,
		},
	}
	for name, q := range queries {
		t.Run(name, func(t *testing.T) {
			want := mapGroupByReference(t, tb, q, morselRows)
			for _, workers := range []int{1, 2, 4, 8} {
				got, err := RunOnOpts(tb, q, ExecOptions{Parallelism: workers, MorselRows: morselRows})
				if err != nil {
					t.Fatal(err)
				}
				got.ScannedRows = want.ScannedRows // reference does not zone-prune
				sameResult(t, want, got)
			}
		})
	}
}

// mapJoinReference replicates the pre-hashtab map-based join:
// map[int64][]int32 build with per-key appends, sequential probe in
// left-row order.
func mapJoinReference(t *testing.T, left, right *table.Table, leftKey, rightKey string) (lsel, rsel vec.Sel) {
	t.Helper()
	lk, err := left.Int64(leftKey)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := right.Int64(rightKey)
	if err != nil {
		t.Fatal(err)
	}
	build := make(map[int64][]int32, len(rk))
	for i, k := range rk {
		build[k] = append(build[k], int32(i))
	}
	for i := range lk {
		for _, rrow := range build[lk[i]] {
			lsel = append(lsel, int32(i))
			rsel = append(rsel, rrow)
		}
	}
	return lsel, rsel
}

// joinCase builds one left/right table pair for the join grid.
func joinCase(t *testing.T, leftKeys, rightKeys []int64) (*table.Table, *table.Table) {
	t.Helper()
	left := table.MustNew("fact", table.Schema{
		{Name: "k", Type: column.Int64},
		{Name: "lv", Type: column.Float64},
	})
	lv := make([]float64, len(leftKeys))
	for i := range lv {
		lv[i] = float64(i) / 3
	}
	if err := left.AppendColumns([]column.Column{
		column.NewInt64From("k", leftKeys),
		column.NewFloat64From("lv", lv),
	}); err != nil {
		t.Fatal(err)
	}
	right := table.MustNew("dim", table.Schema{
		{Name: "k", Type: column.Int64},
		{Name: "rv", Type: column.Float64},
	})
	rv := make([]float64, len(rightKeys))
	for i := range rv {
		rv[i] = float64(i) * 7
	}
	if err := right.AppendColumns([]column.Column{
		column.NewInt64From("k", rightKeys),
		column.NewFloat64From("rv", rv),
	}); err != nil {
		t.Fatal(err)
	}
	return left, right
}

// seq returns n sequential keys modulo mod.
func seqKeys(n int, mod int64) []int64 {
	out := make([]int64, n)
	state := uint64(0x2545F4914F6CDD1D)
	for i := range out {
		state = state*6364136223846793005 + 1442695040888963407
		out[i] = int64(state) % mod
		if out[i] < 0 {
			out[i] = -out[i]
		}
	}
	return out
}

// TestHashJoinMatchesMapReference is the join property grid:
// duplicate-heavy and unique build keys, zero-match, all-match, and
// empty-side joins, against the map-based reference at workers 1/2/4/8.
func TestHashJoinMatchesMapReference(t *testing.T) {
	cases := map[string]struct {
		leftKeys, rightKeys []int64
	}{
		"unique_build":    {seqKeys(5000, 64), []int64{0, 1, 2, 3, 10, 63}},
		"duplicate_heavy": {seqKeys(5000, 16), append(seqKeys(300, 16), seqKeys(50, 8)...)},
		"all_match":       {seqKeys(5000, 8), []int64{0, 1, 2, 3, 4, 5, 6, 7}},
		"zero_match":      {seqKeys(5000, 8), []int64{100, 200, 300}},
		"empty_build":     {seqKeys(5000, 8), nil},
		"empty_probe":     {nil, []int64{1, 2, 3}},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			left, right := joinCase(t, c.leftKeys, c.rightKeys)
			wantL, wantR := mapJoinReference(t, left, right, "k", "k")
			lv, err := left.Float64("lv")
			if err != nil {
				t.Fatal(err)
			}
			rv, err := right.Float64("rv")
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				joined, err := HashJoinOpts(left, right, "k", "k", ExecOptions{Parallelism: workers, MorselRows: 512})
				if err != nil {
					t.Fatal(err)
				}
				if joined.Len() != len(wantL) {
					t.Fatalf("workers=%d: joined %d rows, want %d", workers, joined.Len(), len(wantL))
				}
				gotLV, err := joined.Float64("lv")
				if err != nil {
					t.Fatal(err)
				}
				gotRV, err := joined.Float64("dim.rv")
				if err != nil {
					// No name clash in this schema: rv keeps its name.
					gotRV, err = joined.Float64("rv")
					if err != nil {
						t.Fatal(err)
					}
				}
				for i := range wantL {
					if gotLV[i] != lv[wantL[i]] || gotRV[i] != rv[wantR[i]] {
						t.Fatalf("workers=%d row %d: got (%g,%g), want (%g,%g)",
							workers, i, gotLV[i], gotRV[i], lv[wantL[i]], rv[wantR[i]])
					}
				}
			}
		})
	}
}

// TestSemiJoinMatchesMapReference checks the hashtab-backed semi-join
// against a map-based key set, restricted and unrestricted.
func TestSemiJoinMatchesMapReference(t *testing.T) {
	left, right := joinCase(t, seqKeys(3000, 32), []int64{1, 3, 5, 7, 31})
	lk, err := left.Int64("k")
	if err != nil {
		t.Fatal(err)
	}
	rk, err := right.Int64("k")
	if err != nil {
		t.Fatal(err)
	}
	keys := make(map[int64]struct{}, len(rk))
	for _, k := range rk {
		keys[k] = struct{}{}
	}
	for _, restrict := range []vec.Sel{nil, {5, 6, 7, 100, 2999}} {
		var want vec.Sel
		want = vec.SelectFunc(len(lk), restrict, func(i int32) bool {
			_, ok := keys[lk[i]]
			return ok
		})
		got, err := SemiJoinSel(left, "k", right, "k", restrict)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("semi-join: got %d rows, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("semi-join row %d: got %d, want %d", i, got[i], want[i])
			}
		}
	}
}
