package engine

import (
	"fmt"

	"sciborq/internal/column"
	"sciborq/internal/hashtab"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// HashJoin performs an inner equi-join of left and right on BIGINT key
// columns (the foreign-key joins of the SkyServer schema: fact table to
// dimension tables). The result contains all left columns plus the
// non-key right columns, prefixed with the right table name on clashes.
//
// The build side is the right (dimension) table; the probe side streams
// the left (fact) table, the standard column-store FK-join shape.
// HashJoin probes with the default (parallel) execution options.
func HashJoin(left, right *table.Table, leftKey, rightKey string) (*table.Table, error) {
	return HashJoinOpts(left, right, leftKey, rightKey, DefaultExecOptions())
}

// HashJoinOpts is HashJoin with explicit execution options: the build
// side is hashed once, then probe morsels over the left table run on
// the worker pool. Per-morsel match lists concatenate in morsel order,
// so the output row order is identical to a sequential probe. Both
// sides are snapshotted on entry, so concurrent Loads are safe.
func HashJoinOpts(left, right *table.Table, leftKey, rightKey string, opts ExecOptions) (*table.Table, error) {
	left, right = left.Snapshot(), right.Snapshot()
	lk, err := left.Int64(leftKey)
	if err != nil {
		return nil, fmt.Errorf("engine: join left key: %w", err)
	}
	rk, err := right.Int64(rightKey)
	if err != nil {
		return nil, fmt.Errorf("engine: join right key: %w", err)
	}
	// Build: flat open-addressing index over the dimension keys, with
	// duplicate chains in a next-pointer arena (no per-key slices).
	build := hashtab.BuildInt64Index(rk)
	// Probe: collect matching row pairs per morsel into pooled scratch,
	// concatenate in morsel order, release the scratch.
	type matches struct{ l, r vec.Sel }
	parts := make([]matches, opts.morselCount(len(lk)))
	if err := forEachMorsel(len(lk), opts, func(m, lo, hi int) error {
		p := matches{l: vec.GetSel(hi - lo), r: vec.GetSel(hi - lo)}
		for i := lo; i < hi; i++ {
			for rrow := build.First(lk[i]); rrow >= 0; rrow = build.Next(rrow) {
				p.l = append(p.l, int32(i))
				p.r = append(p.r, rrow)
			}
		}
		parts[m] = p
		return nil
	}); err != nil {
		for _, p := range parts {
			vec.PutSel(p.l)
			vec.PutSel(p.r)
		}
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p.l)
	}
	// The combined selections are themselves pooled scratch: they die
	// with this call once the output columns are materialised. Non-nil
	// even when empty — a zero-match join is an empty result, not an
	// all-rows selection.
	lsel, rsel := vec.GetSel(total), vec.GetSel(total)
	defer func() {
		vec.PutSel(lsel)
		vec.PutSel(rsel)
	}()
	for _, p := range parts {
		lsel = append(lsel, p.l...)
		rsel = append(rsel, p.r...)
		vec.PutSel(p.l)
		vec.PutSel(p.r)
	}
	// Assemble output schema: left columns, then right minus its key.
	leftNames := left.Schema().Names()
	used := make(map[string]bool, len(leftNames))
	for _, n := range leftNames {
		used[n] = true
	}
	schema := make(table.Schema, 0, len(leftNames)+len(right.Schema()))
	schema = append(schema, left.Schema()...)
	type rightCol struct {
		src string // column name in right
		dst string // output name
	}
	var rightCols []rightCol
	for _, def := range right.Schema() {
		if def.Name == rightKey {
			continue
		}
		out := def.Name
		if used[out] {
			out = right.Name() + "." + def.Name
		}
		used[out] = true
		schema = append(schema, table.ColumnDef{Name: out, Type: def.Type})
		rightCols = append(rightCols, rightCol{src: def.Name, dst: out})
	}
	joined, err := table.New(left.Name()+"⋈"+right.Name(), schema)
	if err != nil {
		return nil, err
	}
	// Materialise all output columns with the matched selections.
	chunks := make([]column.Column, 0, len(schema))
	for _, n := range leftNames {
		c, err := left.Col(n)
		if err != nil {
			return nil, err
		}
		chunks = append(chunks, c.Slice(lsel))
	}
	for _, rc := range rightCols {
		c, err := right.Col(rc.src)
		if err != nil {
			return nil, err
		}
		sliced := c.Slice(rsel)
		chunks = append(chunks, renameColumn(sliced, rc.dst))
	}
	if err := joined.AppendColumns(chunks); err != nil {
		return nil, err
	}
	return joined, nil
}

// renameColumn returns a column identical to c but with a new name.
func renameColumn(c column.Column, name string) column.Column {
	switch cc := c.(type) {
	case *column.Float64Col:
		return column.NewFloat64From(name, cc.Data)
	case *column.Int64Col:
		return column.NewInt64From(name, cc.Data)
	case *column.StringCol:
		out := column.NewString(name)
		for i := 0; i < cc.Len(); i++ {
			out.Append(cc.Value(int32(i)))
		}
		return out
	case *column.BoolCol:
		out := column.NewBool(name)
		out.Data = append(out.Data, cc.Data...)
		return out
	}
	return c
}

// SemiJoinSel returns the positions of left rows whose key appears in
// right's key column — the cheap FK-existence filter used when a query
// only constrains a dimension. The key set is a flat hashtab table
// rather than a map[int64]struct{}. Both sides are snapshotted here, so
// concurrent Loads are safe: the scan sees a batch-atomic prefix of
// each table, and sel positions stay valid because tables are
// append-only — any earlier selection indexes a prefix of the snapshot.
func SemiJoinSel(left *table.Table, leftKey string, right *table.Table, rightKey string, sel vec.Sel) (vec.Sel, error) {
	left, right = left.Snapshot(), right.Snapshot()
	lk, err := left.Int64(leftKey)
	if err != nil {
		return nil, err
	}
	rk, err := right.Int64(rightKey)
	if err != nil {
		return nil, err
	}
	keys := hashtab.NewInt64Table(len(rk))
	for _, k := range rk {
		keys.GetOrInsert(k)
	}
	return vec.SelectFunc(len(lk), sel, func(i int32) bool {
		return keys.Contains(lk[i])
	}), nil
}
