// Package engine is the column-at-a-time execution engine of SciBORQ:
// filters produce selection vectors, aggregation and joins consume whole
// columns, and every intermediate is materialised — the property the
// paper relies on to re-target an in-flight query at a different
// impression layer (§3.2).
//
// Execution is morsel-driven and parallel: scans split into fixed-size
// contiguous morsels (ExecOptions.MorselRows, default 64K rows) that a
// worker pool sized by ExecOptions.Parallelism pulls from a shared
// queue. Each morsel filters its row range and folds partial aggregate
// states; partials merge in ascending morsel order, so every result is
// bit-for-bit reproducible at any parallelism level — Parallelism
// changes latency, never values. See ExecOptions for details.
package engine

import (
	"fmt"

	"sciborq/internal/expr"
)

// AggFunc enumerates the supported aggregate functions.
type AggFunc int

// Aggregate functions.
const (
	Count AggFunc = iota
	Sum
	Avg
	Min
	Max
	StdDev
)

// String returns the SQL name of the aggregate.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case StdDev:
		return "STDDEV"
	}
	return "?"
}

// AggSpec is one aggregate in a SELECT list.
type AggSpec struct {
	Func  AggFunc
	Arg   expr.Scalar // nil only for COUNT(*)
	Alias string
}

// Name returns the output column name for the aggregate.
func (a AggSpec) Name() string {
	if a.Alias != "" {
		return a.Alias
	}
	if a.Arg == nil {
		return fmt.Sprintf("%s(*)", a.Func)
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Arg)
}

// Query is the logical query consumed by the executor: a single-table
// (optionally FK-joined) select with WHERE, aggregates or projection,
// GROUP BY, ORDER BY and LIMIT — the shape of the SkyServer workload.
type Query struct {
	Table   string
	Where   expr.Predicate // nil means TRUE
	Aggs    []AggSpec      // aggregate query when non-empty
	Select  []string       // projection columns when Aggs is empty
	GroupBy string         // optional grouping column (BIGINT or VARCHAR)
	OrderBy string         // optional ordering column of the result
	Desc    bool           // descending order
	Limit   int            // 0 = unlimited
}

// Validate performs shape checks that do not need a catalog.
func (q Query) Validate() error {
	if q.Table == "" {
		return fmt.Errorf("engine: query has no table")
	}
	if len(q.Aggs) == 0 && len(q.Select) == 0 {
		return fmt.Errorf("engine: query selects nothing")
	}
	if len(q.Aggs) > 0 && len(q.Select) > 0 {
		return fmt.Errorf("engine: mixing aggregates and plain projection is not supported")
	}
	if q.GroupBy != "" && len(q.Aggs) == 0 {
		return fmt.Errorf("engine: GROUP BY requires aggregates")
	}
	if q.Limit < 0 {
		return fmt.Errorf("engine: negative LIMIT %d", q.Limit)
	}
	return nil
}

// Pred returns the query predicate, substituting TRUE for nil.
func (q Query) Pred() expr.Predicate {
	if q.Where == nil {
		return expr.TruePred{}
	}
	return q.Where
}
