package engine

import (
	"math"
	"reflect"
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

func photoTable(t *testing.T) *table.Table {
	t.Helper()
	tb := table.MustNew("PhotoObjAll", table.Schema{
		{Name: "objID", Type: column.Int64},
		{Name: "fieldID", Type: column.Int64},
		{Name: "ra", Type: column.Float64},
		{Name: "dec", Type: column.Float64},
		{Name: "rmag", Type: column.Float64},
		{Name: "type", Type: column.String},
	})
	rows := []table.Row{
		{int64(1), int64(10), 185.0, 0.0, 17.5, "GALAXY"},
		{int64(2), int64(10), 185.5, 0.5, 18.0, "GALAXY"},
		{int64(3), int64(11), 190.0, 2.0, 15.0, "STAR"},
		{int64(4), int64(12), 120.0, 45.0, 19.5, "QSO"},
		{int64(5), int64(11), 186.0, -0.5, 16.5, "GALAXY"},
		{int64(6), int64(99), 200.0, 30.0, 21.0, "STAR"},
	}
	if err := tb.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	return tb
}

func catalogWith(t *testing.T, tb *table.Table) *table.Catalog {
	t.Helper()
	cat := table.NewCatalog()
	if err := cat.Add(tb); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestQueryValidate(t *testing.T) {
	cases := []Query{
		{},           // no table
		{Table: "t"}, // selects nothing
		{Table: "t", Select: []string{"a"}, Aggs: []AggSpec{{Func: Count}}}, // mixed
		{Table: "t", Select: []string{"a"}, GroupBy: "g"},                   // groupby without aggs
		{Table: "t", Select: []string{"a"}, Limit: -1},                      // negative limit
	}
	for i, q := range cases {
		if err := q.Validate(); err == nil {
			t.Fatalf("case %d validated", i)
		}
	}
	ok := Query{Table: "t", Aggs: []AggSpec{{Func: Count}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAggSpecName(t *testing.T) {
	if (AggSpec{Func: Count}).Name() != "COUNT(*)" {
		t.Fatal("COUNT(*) name wrong")
	}
	a := AggSpec{Func: Avg, Arg: expr.ColRef{Name: "rmag"}}
	if a.Name() != "AVG(rmag)" {
		t.Fatalf("Name = %q", a.Name())
	}
	a.Alias = "m"
	if a.Name() != "m" {
		t.Fatal("alias not honoured")
	}
}

func TestCountAndAvg(t *testing.T) {
	tb := photoTable(t)
	ex := NewExecutor(catalogWith(t, tb))
	res, err := ex.Run(Query{
		Table: "PhotoObjAll",
		Where: expr.StrEq{Col: "type", Value: "GALAXY"},
		Aggs: []AggSpec{
			{Func: Count},
			{Func: Avg, Arg: expr.ColRef{Name: "rmag"}, Alias: "avg_r"},
			{Func: Sum, Arg: expr.ColRef{Name: "rmag"}, Alias: "sum_r"},
			{Func: Min, Arg: expr.ColRef{Name: "rmag"}, Alias: "min_r"},
			{Func: Max, Arg: expr.ColRef{Name: "rmag"}, Alias: "max_r"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Scalar("COUNT(*)"); got != 3 {
		t.Fatalf("count = %v", got)
	}
	if got, _ := res.Scalar("avg_r"); math.Abs(got-(17.5+18.0+16.5)/3) > 1e-12 {
		t.Fatalf("avg = %v", got)
	}
	if got, _ := res.Scalar("sum_r"); math.Abs(got-52.0) > 1e-12 {
		t.Fatalf("sum = %v", got)
	}
	if got, _ := res.Scalar("min_r"); got != 16.5 {
		t.Fatalf("min = %v", got)
	}
	if got, _ := res.Scalar("max_r"); got != 18.0 {
		t.Fatalf("max = %v", got)
	}
	if res.ScannedRows != 6 {
		t.Fatalf("ScannedRows = %d", res.ScannedRows)
	}
}

func TestStdDevAgg(t *testing.T) {
	tb := photoTable(t)
	res, err := RunOn(tb, Query{
		Table: "PhotoObjAll",
		Aggs:  []AggSpec{{Func: StdDev, Arg: expr.ColRef{Name: "rmag"}, Alias: "sd"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.Scalar("sd")
	if got <= 0 {
		t.Fatalf("stddev = %v", got)
	}
}

func TestEmptySelectionAggregates(t *testing.T) {
	tb := photoTable(t)
	res, err := RunOn(tb, Query{
		Table: "PhotoObjAll",
		Where: expr.StrEq{Col: "type", Value: "NEBULA"},
		Aggs: []AggSpec{
			{Func: Count},
			{Func: Avg, Arg: expr.ColRef{Name: "rmag"}, Alias: "a"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Scalar("COUNT(*)"); got != 0 {
		t.Fatalf("count over empty = %v", got)
	}
	if got, _ := res.Scalar("a"); got != 0 {
		t.Fatalf("avg over empty = %v (zero-value contract)", got)
	}
}

func TestProjection(t *testing.T) {
	tb := photoTable(t)
	res, err := RunOn(tb, Query{
		Table:  "PhotoObjAll",
		Where:  expr.Cmp{Op: vec.Gt, Left: expr.ColRef{Name: "dec"}, Right: 1.0},
		Select: []string{"objID", "ra"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("rows = %d", res.Len())
	}
	ra, _ := res.Float64Col("ra")
	if !reflect.DeepEqual(ra, []float64{190, 120, 200}) {
		t.Fatalf("ra = %v", ra)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	tb := photoTable(t)
	res, err := RunOn(tb, Query{
		Table:   "PhotoObjAll",
		Select:  []string{"objID", "rmag"},
		OrderBy: "rmag",
		Limit:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rmag, _ := res.Float64Col("rmag")
	if !reflect.DeepEqual(rmag, []float64{15.0, 16.5}) {
		t.Fatalf("ascending top2 = %v", rmag)
	}
	res, err = RunOn(tb, Query{
		Table:   "PhotoObjAll",
		Select:  []string{"rmag"},
		OrderBy: "rmag",
		Desc:    true,
		Limit:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rmag, _ = res.Float64Col("rmag")
	if !reflect.DeepEqual(rmag, []float64{21.0, 19.5}) {
		t.Fatalf("descending top2 = %v", rmag)
	}
}

func TestOrderByMissingColumn(t *testing.T) {
	tb := photoTable(t)
	_, err := RunOn(tb, Query{Table: "PhotoObjAll", Select: []string{"ra"}, OrderBy: "zzz"})
	if err == nil {
		t.Fatal("ORDER BY missing column accepted")
	}
}

func TestGroupBy(t *testing.T) {
	tb := photoTable(t)
	res, err := RunOn(tb, Query{
		Table:   "PhotoObjAll",
		GroupBy: "type",
		Aggs: []AggSpec{
			{Func: Count},
			{Func: Avg, Arg: expr.ColRef{Name: "rmag"}, Alias: "avg_r"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("groups = %d", res.Len())
	}
	// First-seen order: GALAXY, STAR, QSO.
	counts, _ := res.Float64Col("COUNT(*)")
	if !reflect.DeepEqual(counts, []float64{3, 2, 1}) {
		t.Fatalf("group counts = %v", counts)
	}
	avgs, _ := res.Float64Col("avg_r")
	if math.Abs(avgs[1]-18.0) > 1e-12 { // STAR: (15+21)/2
		t.Fatalf("star avg = %v", avgs[1])
	}
}

func TestGroupByInt64KeyWithOrderLimit(t *testing.T) {
	tb := photoTable(t)
	res, err := RunOn(tb, Query{
		Table:   "PhotoObjAll",
		GroupBy: "fieldID",
		Aggs:    []AggSpec{{Func: Count, Alias: "n"}},
		OrderBy: "n",
		Desc:    true,
		Limit:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("limited groups = %d", res.Len())
	}
	n, _ := res.Float64Col("n")
	if !reflect.DeepEqual(n, []float64{2, 2}) {
		t.Fatalf("top counts = %v", n)
	}
}

func TestGroupByUnsupportedType(t *testing.T) {
	tb := photoTable(t)
	_, err := RunOn(tb, Query{
		Table:   "PhotoObjAll",
		GroupBy: "ra",
		Aggs:    []AggSpec{{Func: Count}},
	})
	if err == nil {
		t.Fatal("GROUP BY DOUBLE accepted")
	}
}

func TestGroupByWithWhere(t *testing.T) {
	tb := photoTable(t)
	res, err := RunOn(tb, Query{
		Table:   "PhotoObjAll",
		Where:   expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "rmag"}, Right: 19.0},
		GroupBy: "type",
		Aggs:    []AggSpec{{Func: Count, Alias: "n"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, _ := res.Float64Col("n")
	if !reflect.DeepEqual(n, []float64{3, 1}) { // GALAXY 3, STAR 1
		t.Fatalf("filtered group counts = %v", n)
	}
}

func TestRunUnknownTable(t *testing.T) {
	ex := NewExecutor(table.NewCatalog())
	_, err := ex.Run(Query{Table: "missing", Aggs: []AggSpec{{Func: Count}}})
	if err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestScalarErrors(t *testing.T) {
	tb := photoTable(t)
	res, err := RunOn(tb, Query{Table: "PhotoObjAll", Select: []string{"ra"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Scalar("ra"); err == nil {
		t.Fatal("multi-row Scalar accepted")
	}
	if _, err := res.Scalar("missing"); err == nil {
		t.Fatal("missing column Scalar accepted")
	}
}

func dimensionTable(t *testing.T) *table.Table {
	t.Helper()
	tb := table.MustNew("Field", table.Schema{
		{Name: "fieldID", Type: column.Int64},
		{Name: "quality", Type: column.Float64},
		{Name: "run", Type: column.Int64},
	})
	rows := []table.Row{
		{int64(10), 0.9, int64(1000)},
		{int64(11), 0.7, int64(1001)},
		{int64(12), 0.5, int64(1002)},
	}
	if err := tb.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestHashJoin(t *testing.T) {
	fact := photoTable(t)
	dim := dimensionTable(t)
	joined, err := HashJoin(fact, dim, "fieldID", "fieldID")
	if err != nil {
		t.Fatal(err)
	}
	// fieldID 99 has no dimension row: inner join drops objID 6.
	if joined.Len() != 5 {
		t.Fatalf("joined rows = %d", joined.Len())
	}
	q, err := joined.Float64("quality")
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := joined.Int64("objID")
	for i, id := range ids {
		var want float64
		switch id {
		case 1, 2:
			want = 0.9
		case 3, 5:
			want = 0.7
		case 4:
			want = 0.5
		}
		if q[i] != want {
			t.Fatalf("objID %d joined quality %v, want %v", id, q[i], want)
		}
	}
}

func TestHashJoinDuplicateBuildKeys(t *testing.T) {
	left := table.MustNew("L", table.Schema{{Name: "k", Type: column.Int64}})
	right := table.MustNew("R", table.Schema{
		{Name: "k", Type: column.Int64},
		{Name: "v", Type: column.Float64},
	})
	_ = left.AppendBatch([]table.Row{{int64(1)}, {int64(2)}})
	_ = right.AppendBatch([]table.Row{{int64(1), 10.0}, {int64(1), 20.0}})
	joined, err := HashJoin(left, right, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() != 2 {
		t.Fatalf("m:n join rows = %d", joined.Len())
	}
}

func TestHashJoinNameClash(t *testing.T) {
	left := table.MustNew("L", table.Schema{
		{Name: "k", Type: column.Int64},
		{Name: "v", Type: column.Float64},
	})
	right := table.MustNew("R", table.Schema{
		{Name: "k", Type: column.Int64},
		{Name: "v", Type: column.Float64},
	})
	_ = left.AppendBatch([]table.Row{{int64(1), 1.0}})
	_ = right.AppendBatch([]table.Row{{int64(1), 2.0}})
	joined, err := HashJoin(left, right, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	if joined.Schema().Index("R.v") == -1 {
		t.Fatalf("clashing column not prefixed: %v", joined.Schema().Names())
	}
	v, _ := joined.Float64("R.v")
	if v[0] != 2.0 {
		t.Fatalf("prefixed value = %v", v)
	}
}

func TestHashJoinBadKeys(t *testing.T) {
	fact := photoTable(t)
	dim := dimensionTable(t)
	if _, err := HashJoin(fact, dim, "ra", "fieldID"); err == nil {
		t.Fatal("non-int left key accepted")
	}
	if _, err := HashJoin(fact, dim, "fieldID", "quality"); err == nil {
		t.Fatal("non-int right key accepted")
	}
}

func TestSemiJoinSel(t *testing.T) {
	fact := photoTable(t)
	dim := dimensionTable(t)
	sel, err := SemiJoinSel(fact, "fieldID", dim, "fieldID", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel, vec.Sel{0, 1, 2, 3, 4}) {
		t.Fatalf("semijoin sel = %v", sel)
	}
	sel, err = SemiJoinSel(fact, "fieldID", dim, "fieldID", vec.Sel{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sel, vec.Sel{4}) {
		t.Fatalf("restricted semijoin = %v", sel)
	}
}

func TestCostModel(t *testing.T) {
	m := CostModel{NsPerRow: 10, FixedNs: 1000}
	if got := m.Predict(100); got.Nanoseconds() != 2000 {
		t.Fatalf("Predict = %v", got)
	}
	if got := m.MaxRowsWithin(2000); got != 100 {
		t.Fatalf("MaxRowsWithin = %d", got)
	}
	if got := m.MaxRowsWithin(500); got != 0 {
		t.Fatalf("tiny budget rows = %d", got)
	}
	free := CostModel{NsPerRow: 0, FixedNs: 0}
	if free.MaxRowsWithin(1) <= 0 {
		t.Fatal("zero-cost model should allow everything")
	}
}

func TestCalibrateProducesUsableModel(t *testing.T) {
	m := Calibrate(50_000)
	if m.NsPerRow <= 0 {
		t.Fatalf("calibrated NsPerRow = %v", m.NsPerRow)
	}
	if m.Predict(1_000_000) <= 0 {
		t.Fatal("prediction not positive")
	}
	d := DefaultCostModel()
	if d.NsPerRow <= 0 || d.FixedNs <= 0 {
		t.Fatal("default model degenerate")
	}
}

func TestAggFuncString(t *testing.T) {
	want := map[AggFunc]string{Count: "COUNT", Sum: "SUM", Avg: "AVG", Min: "MIN", Max: "MAX", StdDev: "STDDEV"}
	for f, s := range want {
		if f.String() != s {
			t.Fatalf("%d String = %q", f, f.String())
		}
	}
}
