package engine

import (
	"testing"

	"sciborq/internal/column"
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// BenchmarkPanicGuardOverhead measures what the morsel recover guard
// costs on the warm (no-panic, injection-disabled) path. The guard is a
// deferred recover plus one atomic fault-registry load per morsel —
// amortised over a 64K-row morsel it must be noise. Arms:
//
//	bare    — the per-morsel closure invoked directly
//	guarded — the same closure through runMorselGuarded (production path)
//	scan    — a realistic filtered aggregate, whole pipeline under guard
func BenchmarkPanicGuardOverhead(b *testing.B) {
	fn := func(m, lo, hi int) error { return nil }

	b.Run("bare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fn(0, 0, 1); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("guarded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := runMorselGuarded(fn, 0, 0, 1); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("scan", func(b *testing.B) {
		const rows = 1 << 18
		data := make([]float64, rows)
		want := 0
		for i := range data {
			data[i] = float64(i % 1000)
			if i%1000 < 500 {
				want++
			}
		}
		tb := table.MustNew("bench", table.Schema{{Name: "x", Type: column.Float64}})
		if err := tb.AppendColumns([]column.Column{column.NewFloat64From("x", data)}); err != nil {
			b.Fatal(err)
		}
		q := Query{
			Table: "bench",
			Where: expr.Cmp{Op: vec.Lt, Left: expr.ColRef{Name: "x"}, Right: 500},
			Aggs:  []AggSpec{{Func: Count}},
		}
		opts := ExecOptions{Parallelism: 4}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := RunOnOpts(tb, q, opts)
			if err != nil {
				b.Fatal(err)
			}
			if got, _ := res.Scalar("COUNT(*)"); got != float64(want) {
				b.Fatalf("COUNT = %v", got)
			}
		}
	})
}
