package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"sciborq/internal/column"
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// DefaultMorselRows is the default morsel size: the number of base rows
// each scheduling unit covers. Morsel boundaries depend only on this
// value (never on the worker count), which is what makes results
// reproducible across parallelism levels.
const DefaultMorselRows = 64 * 1024

// ExecOptions controls morsel-driven parallel execution.
//
// A scan over n rows is split into ⌈n/MorselRows⌉ contiguous morsels;
// Parallelism workers pull morsel indices from a shared counter,
// evaluate the predicate and fold per-morsel partial aggregate states,
// and the coordinator merges the partials in ascending morsel order.
// Because the merge order is fixed by the morsel layout, every result —
// including floating-point SUM/AVG/STDDEV — is bit-identical for any
// Parallelism value; only wall-clock time changes. Tables no larger
// than one morsel take the original single-pass column-at-a-time path,
// so small-table results are also bit-identical to pre-morsel builds.
type ExecOptions struct {
	// Parallelism is the number of scan workers. Zero or negative means
	// GOMAXPROCS; 1 forces sequential execution.
	Parallelism int
	// MorselRows is the rows-per-morsel granule. Zero or negative means
	// DefaultMorselRows. It determines floating-point merge layout, so
	// fix it when bit-reproducibility across configurations matters.
	MorselRows int
}

// DefaultExecOptions returns the default configuration: one worker per
// available CPU, DefaultMorselRows-row morsels.
func DefaultExecOptions() ExecOptions { return ExecOptions{} }

// workers resolves the effective worker count.
func (o ExecOptions) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// morselRows resolves the effective morsel granule.
func (o ExecOptions) morselRows() int {
	if o.MorselRows > 0 {
		return o.MorselRows
	}
	return DefaultMorselRows
}

// morselCount returns the number of morsels covering n rows.
func (o ExecOptions) morselCount(n int) int {
	mr := o.morselRows()
	return (n + mr - 1) / mr
}

// forEachMorsel runs fn(m, lo, hi) for every morsel m covering [0, n),
// fanning out to min(workers, morsels) goroutines. fn must only write
// state owned by morsel m (typically partials[m]); shared inputs are
// read-only for the duration of the scan — queries never mutate tables,
// and running a Load concurrently with a query on the same table is not
// synchronised by the engine (callers serialise them). The first error
// in morsel order is returned, so error reporting is deterministic too.
func forEachMorsel(n int, opts ExecOptions, fn func(m, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	mr := opts.morselRows()
	morsels := opts.morselCount(n)
	workers := opts.workers()
	if workers > morsels {
		workers = morsels
	}
	if workers <= 1 {
		for m := 0; m < morsels; m++ {
			lo := m * mr
			hi := min(lo+mr, n)
			if err := fn(m, lo, hi); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, morsels)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m := int(next.Add(1)) - 1
				if m >= morsels {
					return
				}
				lo := m * mr
				hi := min(lo+mr, n)
				errs[m] = fn(m, lo, hi)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// isTruePred reports whether pred is the constant-true predicate.
func isTruePred(pred expr.Predicate) bool {
	if pred == nil {
		return true
	}
	_, ok := pred.(expr.TruePred)
	return ok
}

// preparePred rewrites pred so that every scalar argument whose
// evaluation allocates (Int64 widening, Arith intermediates, Const
// columns) is materialised exactly once before the morsel fan-out;
// without this, each morsel's pred.Filter call would re-materialise
// the full column, making the parallel path O(n × morsels). Raw
// float64 column references are left alone — they already evaluate to
// shared storage (and keep the Cmp fast path). Unknown predicate
// shapes pass through unchanged.
func preparePred(t *table.Table, pred expr.Predicate) (expr.Predicate, error) {
	switch p := pred.(type) {
	case expr.And:
		l, err := preparePred(t, p.L)
		if err != nil {
			return nil, err
		}
		r, err := preparePred(t, p.R)
		if err != nil {
			return nil, err
		}
		return expr.And{L: l, R: r}, nil
	case expr.Or:
		l, err := preparePred(t, p.L)
		if err != nil {
			return nil, err
		}
		r, err := preparePred(t, p.R)
		if err != nil {
			return nil, err
		}
		return expr.Or{L: l, R: r}, nil
	case expr.Not:
		inner, err := preparePred(t, p.P)
		if err != nil {
			return nil, err
		}
		return expr.Not{P: inner}, nil
	case expr.Cmp:
		left, err := prepareScalar(t, p.Left)
		if err != nil {
			return nil, err
		}
		return expr.Cmp{Op: p.Op, Left: left, Right: p.Right}, nil
	case expr.Between:
		e, err := prepareScalar(t, p.Expr)
		if err != nil {
			return nil, err
		}
		return expr.Between{Expr: e, Lo: p.Lo, Hi: p.Hi}, nil
	default:
		// StrEq (dictionary compare), Cone (raw column reads),
		// TruePred, and user-defined predicates: per-morsel cost is
		// already proportional to the morsel.
		return pred, nil
	}
}

// prepareScalar materialises s once unless it already evaluates to
// shared storage (a float64 column reference).
func prepareScalar(t *table.Table, s expr.Scalar) (expr.Scalar, error) {
	if ref, ok := s.(expr.ColRef); ok {
		if c, err := t.Col(ref.Name); err == nil {
			if _, isF64 := c.(*column.Float64Col); isF64 {
				return s, nil
			}
		}
		// Missing columns fall through so the error surfaces with the
		// original expression rendering.
	}
	vals, err := s.EvalF64(t)
	if err != nil {
		return nil, err
	}
	return expr.Materialized{Vals: vals, Desc: s.String()}, nil
}

// filterMorsel evaluates pred restricted to rows [lo, hi) of t. A nil
// return means every row of the morsel matched: the single-morsel case
// ([0, n)) passes a nil base selection so that its output is identical
// to an unrestricted sequential filter, and the TRUE predicate skips
// the per-morsel index-vector allocation entirely (forSel iterates the
// range directly).
func filterMorsel(t *table.Table, pred expr.Predicate, lo, hi, n int) (vec.Sel, error) {
	if isTruePred(pred) {
		return nil, nil
	}
	var base vec.Sel
	if lo != 0 || hi != n {
		base = vec.NewSelRange(lo, hi)
	}
	return pred.Filter(t, base)
}

// scanMorsels is the shared scan prologue of aggregation, grouping and
// filtering: prepare pred once for multi-morsel scans, then run
// perMorsel over every morsel of [0, n) with its filtered selection
// (nil sel = every row of the morsel). n is passed by the caller, NOT
// read here: capturing t.Len() before materialising shared input
// slices keeps every morsel index bounded by those slices' lengths
// (defence in depth — an append-only Load can only grow them). This
// ordering is NOT a licence for concurrent Load during a query: slice
// headers are re-read outside the table lock, so callers serialise
// loads against queries on the same table.
func scanMorsels(t *table.Table, n int, pred expr.Predicate, opts ExecOptions, perMorsel func(m, lo, hi int, sel vec.Sel) error) error {
	if opts.morselCount(n) > 1 {
		var err error
		if pred, err = preparePred(t, pred); err != nil {
			return err
		}
	}
	return forEachMorsel(n, opts, func(m, lo, hi int) error {
		sel, err := filterMorsel(t, pred, lo, hi, n)
		if err != nil {
			return err
		}
		return perMorsel(m, lo, hi, sel)
	})
}

// forSel invokes fn for every selected row; a nil sel means all rows of
// [lo, hi).
func forSel(sel vec.Sel, lo, hi int, fn func(row int32)) {
	if sel == nil {
		for i := int32(lo); i < int32(hi); i++ {
			fn(i)
		}
		return
	}
	for _, i := range sel {
		fn(i)
	}
}

// Filter evaluates pred over t with morsel-driven parallelism and
// returns the combined selection in ascending row order — exactly the
// rows a sequential pred.Filter(t, nil) would return. A nil return
// means "all rows" (TRUE predicate).
func Filter(t *table.Table, pred expr.Predicate, opts ExecOptions) (vec.Sel, error) {
	if isTruePred(pred) {
		return nil, nil
	}
	n := t.Len()
	if opts.morselCount(n) <= 1 {
		return pred.Filter(t, nil)
	}
	parts := make([]vec.Sel, opts.morselCount(n))
	err := scanMorsels(t, n, pred, opts, func(m, lo, hi int, sel vec.Sel) error {
		parts[m] = sel
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make(vec.Sel, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}
