package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"sciborq/internal/column"
	"sciborq/internal/expr"
	"sciborq/internal/faultinject"
	"sciborq/internal/table"
	"sciborq/internal/vec"
)

// PanicError is a panic recovered inside the morsel runner, converted
// into a per-query error: one poisoned row, a buggy user predicate, or
// an injected fault takes down that query alone — never the worker
// pool's goroutines, and never the process. The originating stack is
// preserved for the server's error log.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: panic during scan: %v", e.Value)
}

// runMorselGuarded executes one morsel unit with panic isolation: a
// panic in fn (predicate evaluation, aggregation, a user-defined
// predicate) is recovered into a *PanicError return, after fn's own
// deferred cleanups (pooled scratch release) have run. The
// faultinject.PointMorsel hook fires first, so chaos schedules can
// inject per-morsel errors, panics, and latency; disabled, the hook is
// one atomic load. The defer+recover pair costs a few nanoseconds per
// morsel — noise against the 64K rows a morsel evaluates (pinned by
// BenchmarkPanicGuardOverhead).
func runMorselGuarded(fn func(m, lo, hi int) error, m, lo, hi int) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	if err := faultinject.Fire(faultinject.PointMorsel); err != nil {
		return err
	}
	return fn(m, lo, hi)
}

// DefaultMorselRows is the default morsel size: the number of base rows
// each scheduling unit covers. Morsel boundaries depend only on this
// value (never on the worker count), which is what makes results
// reproducible across parallelism levels.
const DefaultMorselRows = 64 * 1024

// ExecOptions controls morsel-driven parallel execution.
//
// A scan over n rows is split into ⌈n/MorselRows⌉ contiguous morsels;
// Parallelism workers pull morsel indices from a shared counter,
// evaluate the predicate and fold per-morsel partial aggregate states,
// and the coordinator merges the partials in ascending morsel order.
// Because the merge order is fixed by the morsel layout, every result —
// including floating-point SUM/AVG/STDDEV — is bit-identical for any
// Parallelism value; only wall-clock time changes. Tables no larger
// than one morsel take the original single-pass column-at-a-time path,
// so small-table results are also bit-identical to pre-morsel builds.
type ExecOptions struct {
	// Parallelism is the number of scan workers. Zero or negative means
	// GOMAXPROCS; 1 forces sequential execution.
	Parallelism int
	// MorselRows is the rows-per-morsel granule. Zero or negative means
	// DefaultMorselRows. It determines floating-point merge layout, so
	// fix it when bit-reproducibility across configurations matters.
	MorselRows int
	// Ctx, when non-nil, cancels the scan cooperatively: every worker
	// checks it between morsels, so a cancelled query frees its workers
	// within one morsel boundary and the scan returns Ctx.Err(). This is
	// per-query state, not configuration — long-lived holders of
	// ExecOptions (a DB, an executor) keep it nil and stamp a copy per
	// query. A nil Ctx means "never cancelled" and costs nothing.
	Ctx context.Context
}

// DefaultExecOptions returns the default configuration: one worker per
// available CPU, DefaultMorselRows-row morsels.
func DefaultExecOptions() ExecOptions { return ExecOptions{} }

// workers resolves the effective worker count.
func (o ExecOptions) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// morselRows resolves the effective morsel granule.
func (o ExecOptions) morselRows() int {
	if o.MorselRows > 0 {
		return o.MorselRows
	}
	return DefaultMorselRows
}

// morselCount returns the number of morsels covering n rows.
func (o ExecOptions) morselCount(n int) int {
	mr := o.morselRows()
	return (n + mr - 1) / mr
}

// forEachMorsel runs fn(m, lo, hi) for every morsel m covering [0, n),
// fanning out to min(workers, morsels) goroutines. fn must only write
// state owned by morsel m (typically partials[m]); shared inputs are
// read-only for the duration of the scan — scans run over table
// snapshots (see scanMorsels), so a concurrent Load on the source
// table only writes rows the scan cannot see. The first error in
// morsel order is returned, so error reporting is deterministic too.
//
// When opts.Ctx is cancelled, workers stop pulling morsels at the next
// morsel boundary and the scan returns opts.Ctx.Err(); cancellation
// takes precedence over per-morsel errors because the partial state is
// abandoned either way.
//
// Every fn invocation runs under runMorselGuarded: a panic inside it —
// on a pool worker or on the caller's goroutine — surfaces as a
// *PanicError for this scan only, keeping the worker pool and the
// process alive.
func forEachMorsel(n int, opts ExecOptions, fn func(m, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	var done <-chan struct{}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return err
		}
		done = opts.Ctx.Done()
	}
	mr := opts.morselRows()
	morsels := opts.morselCount(n)
	workers := opts.workers()
	if workers > morsels {
		workers = morsels
	}
	if workers <= 1 {
		for m := 0; m < morsels; m++ {
			if done != nil {
				select {
				case <-done:
					return opts.Ctx.Err()
				default:
				}
			}
			lo := m * mr
			hi := min(lo+mr, n)
			if err := runMorselGuarded(fn, m, lo, hi); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, morsels)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				m := int(next.Add(1)) - 1
				if m >= morsels {
					return
				}
				lo := m * mr
				hi := min(lo+mr, n)
				errs[m] = runMorselGuarded(fn, m, lo, hi)
			}
		}()
	}
	wg.Wait()
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// isTruePred reports whether pred is the constant-true predicate.
func isTruePred(pred expr.Predicate) bool {
	if pred == nil {
		return true
	}
	_, ok := pred.(expr.TruePred)
	return ok
}

// preparePred rewrites pred so that every scalar argument whose
// evaluation allocates (Int64 widening, Arith intermediates, Const
// columns) is materialised exactly once before the morsel fan-out;
// without this, each morsel's pred.Filter call would re-materialise
// the full column, making the parallel path O(n × morsels). Raw
// float64 column references are left alone — they already evaluate to
// shared storage (and keep the Cmp fast path). Unknown predicate
// shapes pass through unchanged.
func preparePred(t *table.Table, pred expr.Predicate) (expr.Predicate, error) {
	switch p := pred.(type) {
	case expr.And:
		l, err := preparePred(t, p.L)
		if err != nil {
			return nil, err
		}
		r, err := preparePred(t, p.R)
		if err != nil {
			return nil, err
		}
		return expr.And{L: l, R: r}, nil
	case expr.Or:
		l, err := preparePred(t, p.L)
		if err != nil {
			return nil, err
		}
		r, err := preparePred(t, p.R)
		if err != nil {
			return nil, err
		}
		return expr.Or{L: l, R: r}, nil
	case expr.Not:
		inner, err := preparePred(t, p.P)
		if err != nil {
			return nil, err
		}
		return expr.Not{P: inner}, nil
	case expr.Cmp:
		left, err := prepareScalar(t, p.Left)
		if err != nil {
			return nil, err
		}
		return expr.Cmp{Op: p.Op, Left: left, Right: p.Right}, nil
	case expr.Between:
		e, err := prepareScalar(t, p.Expr)
		if err != nil {
			return nil, err
		}
		return expr.Between{Expr: e, Lo: p.Lo, Hi: p.Hi}, nil
	default:
		// StrEq (dictionary compare), Cone (raw column reads),
		// TruePred, and user-defined predicates: per-morsel cost is
		// already proportional to the morsel.
		return pred, nil
	}
}

// prepareScalar materialises s once unless it already evaluates to
// shared storage (a float64 column reference).
func prepareScalar(t *table.Table, s expr.Scalar) (expr.Scalar, error) {
	if ref, ok := s.(expr.ColRef); ok {
		if c, err := t.Col(ref.Name); err == nil {
			if _, isF64 := c.(*column.Float64Col); isF64 {
				return s, nil
			}
		}
		// Missing columns fall through so the error surfaces with the
		// original expression rendering.
	}
	vals, err := s.EvalF64(t)
	if err != nil {
		return nil, err
	}
	return expr.Materialized{Vals: vals, Desc: s.String()}, nil
}

// filterMorsel evaluates pred over rows [lo, hi) of t through the
// range-native predicate path: no [lo, hi) index vector is
// materialised, and the returned selection lives in vec's scratch pool
// (pooled reports whether the caller must release it with vec.PutSel
// after use). A nil selection (TRUE predicate) means every row of the
// morsel matched.
func filterMorsel(t *table.Table, pred expr.Predicate, lo, hi int) (sel vec.Sel, pooled bool, err error) {
	if isTruePred(pred) {
		return nil, false, nil
	}
	sel, err = expr.FilterRange(t, pred, lo, hi)
	return sel, true, err
}

// ScanStats reports what a morsel scan actually did: how many morsels
// the layout produced, how many zone-map pruning skipped outright, and
// the row counts on either side of that cut. ScannedRows is what the
// cost model should price — pruned morsels cost (almost) nothing.
type ScanStats struct {
	// Morsels is the number of morsels covering the scanned table.
	Morsels int
	// SkippedMorsels is how many of them zone maps proved empty of
	// matches, skipping predicate evaluation entirely.
	SkippedMorsels int
	// ScannedRows is the number of base rows actually evaluated.
	ScannedRows int
	// SkippedRows is the number of base rows in skipped morsels.
	SkippedRows int
}

// zoneCheck pairs one necessary predicate bound with the zone-mapped
// column it constrains.
type zoneCheck struct {
	zm     column.ZoneMapped
	lo, hi float64
}

// canSkip reports whether rows [lo, hi) provably contain no value
// inside the bound interval.
func (z zoneCheck) canSkip(lo, hi int) bool {
	mn, mx, ok := z.zm.ZoneBounds(lo, hi)
	return ok && (mx < z.lo || mn > z.hi)
}

// zoneChecks resolves pred's necessary column bounds (expr.BoundsOf)
// against t's zone-mapped columns. Bounds must come from the original
// predicate — preparePred rewrites scalars to Materialized, which
// erases the attribute names — so callers extract checks before
// preparing.
func zoneChecks(t *table.Table, pred expr.Predicate) []zoneCheck {
	bounds := expr.BoundsOf(pred)
	if len(bounds) == 0 {
		return nil
	}
	out := make([]zoneCheck, 0, len(bounds))
	for _, b := range bounds {
		col, err := t.Col(b.Attr)
		if err != nil {
			continue // unknown attr: the filter itself will report it
		}
		if zm, ok := col.(column.ZoneMapped); ok {
			out = append(out, zoneCheck{zm: zm, lo: b.Lo, hi: b.Hi})
		}
	}
	return out
}

// validatePred checks pred's column references against t without
// touching row data. Zone-map pruning can skip every morsel — and with
// them the predicate evaluation that would normally surface a bad
// reference — so pruned scans validate up front to keep error
// reporting independent of the stored values. Unknown predicate and
// scalar shapes pass (they report no bounds, so a conjunct of them
// alone never prunes without evaluating).
func validatePred(t *table.Table, pred expr.Predicate) error {
	switch p := pred.(type) {
	case expr.And:
		if err := validatePred(t, p.L); err != nil {
			return err
		}
		return validatePred(t, p.R)
	case expr.Or:
		if err := validatePred(t, p.L); err != nil {
			return err
		}
		return validatePred(t, p.R)
	case expr.Not:
		return validatePred(t, p.P)
	case expr.Cmp:
		return validateScalar(t, p.Left)
	case expr.Between:
		return validateScalar(t, p.Expr)
	case expr.StrEq:
		col, err := t.Col(p.Col)
		if err != nil {
			return err
		}
		if _, ok := col.(*column.StringCol); !ok {
			return fmt.Errorf("expr: column %q is %s, want VARCHAR", p.Col, col.Type())
		}
		return nil
	case expr.Cone:
		if _, err := t.Float64(p.RaCol); err != nil {
			return err
		}
		_, err := t.Float64(p.DecCol)
		return err
	default:
		return nil
	}
}

// validateScalar is validatePred for scalar sub-expressions.
func validateScalar(t *table.Table, s expr.Scalar) error {
	switch e := s.(type) {
	case expr.ColRef:
		col, err := t.Col(e.Name)
		if err != nil {
			return err
		}
		switch col.(type) {
		case *column.Float64Col, *column.Int64Col:
			return nil
		}
		return fmt.Errorf("expr: column %q has non-numeric type %s", e.Name, col.Type())
	case expr.Arith:
		if err := validateScalar(t, e.L); err != nil {
			return err
		}
		return validateScalar(t, e.R)
	default:
		return nil
	}
}

// scanMorsels is the shared scan prologue of aggregation, grouping and
// filtering: extract zone-map checks from the original predicate,
// prepare it once for multi-morsel scans, then run perMorsel over every
// morsel of [0, n) with its filtered selection (nil sel = every row of
// the morsel). Morsels whose zone maps prove no row can match are
// skipped without evaluating the predicate; perMorsel never sees them.
// The selection handed to perMorsel is pool-backed scratch valid only
// for the duration of the call — perMorsel copies if it retains.
//
// t must be a table snapshot (callers go through Table.Snapshot), which
// is what makes concurrent Load-vs-query on the source table safe: n
// and every column header were captured together under the table lock,
// and appenders only touch rows beyond them.
func scanMorsels(t *table.Table, n int, pred expr.Predicate, opts ExecOptions, perMorsel func(m, lo, hi int, sel vec.Sel) error) (ScanStats, error) {
	stats := ScanStats{Morsels: opts.morselCount(n), ScannedRows: n}
	checks := zoneChecks(t, pred)
	if len(checks) > 0 {
		// Pruning may skip every evaluation; surface bad references
		// deterministically first.
		if err := validatePred(t, pred); err != nil {
			return stats, err
		}
	}
	if opts.morselCount(n) > 1 {
		var err error
		if pred, err = preparePred(t, pred); err != nil {
			return stats, err
		}
	}
	var skippedMorsels, skippedRows atomic.Int64
	err := forEachMorsel(n, opts, func(m, lo, hi int) error {
		for _, zc := range checks {
			if zc.canSkip(lo, hi) {
				skippedMorsels.Add(1)
				skippedRows.Add(int64(hi - lo))
				return nil
			}
		}
		// The morsel survived pruning and will be read: account its
		// granules' residency with the table's pager (durable tables
		// larger than RAM; no-op branch for in-memory tables).
		t.TouchRange(lo, hi)
		sel, pooled, err := filterMorsel(t, pred, lo, hi)
		if err != nil {
			return err
		}
		// Deferred, not sequenced after perMorsel: if perMorsel panics,
		// the unwind (towards runMorselGuarded's recover) must still
		// return the pooled scratch.
		if pooled {
			defer vec.PutSel(sel)
		}
		return perMorsel(m, lo, hi, sel)
	})
	stats.SkippedMorsels = int(skippedMorsels.Load())
	stats.SkippedRows = int(skippedRows.Load())
	stats.ScannedRows = n - stats.SkippedRows
	return stats, err
}

// EstimateScanRows predicts how many base rows a scan of pred over t
// will actually evaluate after zone-map pruning, without executing it —
// the prune-aware input to cost-model layer picking. The walk costs
// O(morsels), not O(rows).
func EstimateScanRows(t *table.Table, pred expr.Predicate, opts ExecOptions) int {
	t = t.Snapshot()
	n := t.Len()
	if isTruePred(pred) {
		return n
	}
	checks := zoneChecks(t, pred)
	if len(checks) == 0 {
		return n
	}
	mr := opts.morselRows()
	scanned := 0
	for lo := 0; lo < n; lo += mr {
		hi := min(lo+mr, n)
		skip := false
		for _, zc := range checks {
			if zc.canSkip(lo, hi) {
				skip = true
				break
			}
		}
		if !skip {
			scanned += hi - lo
		}
	}
	return scanned
}

// forSel invokes fn for every selected row; a nil sel means all rows of
// [lo, hi).
func forSel(sel vec.Sel, lo, hi int, fn func(row int32)) {
	if sel == nil {
		for i := int32(lo); i < int32(hi); i++ {
			fn(i)
		}
		return
	}
	for _, i := range sel {
		fn(i)
	}
}

// Filter evaluates pred over t with morsel-driven parallelism and
// returns the combined selection in ascending row order — exactly the
// rows a sequential pred.Filter(t, nil) would return. A nil return
// means "all rows" (TRUE predicate). The scan runs over a snapshot of
// t, so it is safe against concurrent appends; positions refer to the
// snapshotted prefix.
func Filter(t *table.Table, pred expr.Predicate, opts ExecOptions) (vec.Sel, error) {
	sel, _, err := filterSnapshot(t.Snapshot(), pred, opts)
	return sel, err
}

// filterSnapshot is Filter over an already-snapshotted table, also
// reporting the scan statistics. The single-morsel case keeps the
// unrestricted sequential path (bit-identical to pre-morsel builds);
// everything larger runs the range-native pruned scan.
func filterSnapshot(t *table.Table, pred expr.Predicate, opts ExecOptions) (vec.Sel, ScanStats, error) {
	n := t.Len()
	stats := ScanStats{Morsels: opts.morselCount(n), ScannedRows: n}
	if isTruePred(pred) {
		return nil, stats, nil
	}
	if opts.morselCount(n) <= 1 {
		// Zone maps can still veto the whole (single-morsel) scan; an
		// explicit empty selection, NOT nil — nil means "all rows".
		for _, zc := range zoneChecks(t, pred) {
			if zc.canSkip(0, n) {
				if err := validatePred(t, pred); err != nil {
					return nil, stats, err
				}
				stats.SkippedMorsels, stats.SkippedRows, stats.ScannedRows = 1, n, 0
				return vec.Sel{}, stats, nil
			}
		}
		sel, err := pred.Filter(t, nil)
		return sel, stats, err
	}
	parts := make([]vec.Sel, opts.morselCount(n))
	stats, err := scanMorsels(t, n, pred, opts, func(m, lo, hi int, sel vec.Sel) error {
		parts[m] = append(vec.Sel(nil), sel...) // sel is pooled scratch
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make(vec.Sel, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, stats, nil
}
