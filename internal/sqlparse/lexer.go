// Package sqlparse implements the SQL front-end of SciBORQ: a lexer and
// parser for the query subset the paper's workload needs (single-table
// aggregates, cone search, boolean predicates, GROUP BY / ORDER BY /
// LIMIT) plus the bounded-query extensions of §3.2:
//
//	... WITHIN ERROR 0.05 CONFIDENCE 0.95   -- quality bound
//	... WITHIN TIME 5ms                     -- runtime bound
//
// The front-end is built for the repeated-query serving path: the lexer
// is a hand-rolled byte scanner that produces tokens on demand — token
// text is a slice of the input, never a copy — classifying bytes through
// precomputed 256-entry tables and recognising keywords through a
// length-bucketed table with ASCII case folding, so lexing performs no
// heap allocation at all. The parser pulls tokens through a two-token
// window and recycles its state through a sync.Pool, keeping a steady-
// state parse allocation down to the AST itself; the plan cache in
// internal/plancache removes even that for repeated statement shapes.
package sqlparse

import (
	"fmt"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString // single-quoted literal
	tokSymbol // punctuation and operators
)

// kw identifies a recognised keyword; kwNone marks a plain identifier.
// The reserved grammar keywords form a contiguous block so isReserved is
// a range test; aggregate names and the cone UDF are recognised but not
// reserved (they remain usable as column references).
type kw uint8

const (
	kwNone kw = iota
	// Reserved grammar keywords (kwSelect..kwConfidence).
	kwSelect
	kwFrom
	kwWhere
	kwGroup
	kwBy
	kwOrder
	kwLimit
	kwAnd
	kwOr
	kwNot
	kwBetween
	kwAs
	kwAsc
	kwDesc
	kwWithin
	kwError
	kwTime
	kwConfidence
	// Recognised but not reserved.
	kwCount
	kwSum
	kwAvg
	kwMin
	kwMax
	kwStdDev
	kwCone // fGetNearbyObjEq
)

// kwNames maps keyword ids to their canonical (upper-case) spelling for
// error messages and the keyword table.
var kwNames = [...]string{
	kwSelect: "SELECT", kwFrom: "FROM", kwWhere: "WHERE", kwGroup: "GROUP",
	kwBy: "BY", kwOrder: "ORDER", kwLimit: "LIMIT", kwAnd: "AND",
	kwOr: "OR", kwNot: "NOT", kwBetween: "BETWEEN", kwAs: "AS",
	kwAsc: "ASC", kwDesc: "DESC", kwWithin: "WITHIN", kwError: "ERROR",
	kwTime: "TIME", kwConfidence: "CONFIDENCE", kwCount: "COUNT",
	kwSum: "SUM", kwAvg: "AVG", kwMin: "MIN", kwMax: "MAX",
	kwStdDev: "STDDEV", kwCone: "FGETNEARBYOBJEQ",
}

type token struct {
	kind tokKind
	kw   kw     // keyword id when kind == tokIdent; kwNone otherwise
	text string // a slice of the input; identifiers kept verbatim
	pos  int    // byte offset in the input, for error messages
}

// Byte-class table. The scanner is byte-oriented with Latin-1 semantics:
// classes are computed from the unicode predicates applied to rune(b)
// for each single byte b, which reproduces the historical behaviour of
// calling unicode.IsSpace/IsLetter/IsDigit on one input byte at a time
// (so e.g. 0xA0 is space and 0xB5 'µ' is an identifier letter).
const (
	clsSpace = 1 << iota
	clsLetter
	clsDigit
	clsIdentCont // letter | digit | '_' | '.'
	clsSymbol    // one of ( ) , * = + - /
)

var byteClass [256]uint8

// upperTab folds ASCII lower-case to upper-case and leaves every other
// byte unchanged. For tokens this lexer can produce, ASCII folding is
// exactly equivalent to the strings.EqualFold/strings.ToUpper matching
// of the reference parser: the only non-ASCII runes that case-fold into
// ASCII (U+017F 'ſ', U+0131 'ı', U+212A 'K') all contain a continuation
// byte that is not letter-class, so they can never survive inside one
// identifier token.
var upperTab [256]byte

// kwEntry is one keyword in its length bucket, spelled upper-case.
type kwEntry struct {
	name string
	id   kw
}

// kwBuckets holds keywords bucketed by byte length, giving O(1)
// recognition: an identifier probes only the (tiny) bucket of its own
// length, comparing bytes through upperTab.
var kwBuckets [16][]kwEntry

func init() {
	for b := 0; b < 256; b++ {
		r := rune(b)
		var c uint8
		if unicode.IsSpace(r) {
			c |= clsSpace
		}
		if unicode.IsLetter(r) {
			c |= clsLetter
		}
		if unicode.IsDigit(r) {
			c |= clsDigit
		}
		if c&(clsLetter|clsDigit) != 0 || b == '_' || b == '.' {
			c |= clsIdentCont
		}
		switch b {
		case '(', ')', ',', '*', '=', '+', '-', '/':
			c |= clsSymbol
		}
		byteClass[b] = c
		upperTab[b] = byte(b)
		if b >= 'a' && b <= 'z' {
			upperTab[b] = byte(b - 'a' + 'A')
		}
	}
	for id := kwSelect; id <= kwCone; id++ {
		name := kwNames[id]
		kwBuckets[len(name)] = append(kwBuckets[len(name)], kwEntry{name: name, id: id})
	}
}

// keywordOf resolves an identifier to its keyword id (kwNone if plain).
func keywordOf(s string) kw {
	if len(s) >= len(kwBuckets) {
		return kwNone
	}
	for _, e := range kwBuckets[len(s)] {
		if asciiFoldEq(s, e.name) {
			return e.id
		}
	}
	return kwNone
}

// asciiFoldEq reports s == upper under ASCII case folding; upper must be
// upper-case ASCII and the same length as s.
func asciiFoldEq(s, upper string) bool {
	for i := 0; i < len(s); i++ {
		if upperTab[s[i]] != upper[i] {
			return false
		}
	}
	return true
}

// lexer scans tokens on demand from its frontier offset. It allocates
// nothing: token text aliases the input string. On a lexical error the
// frontier stays on the offending byte, so re-scanning after a parser
// backtrack reproduces the same error deterministically.
type lexer struct {
	input string
	off   int
}

// next scans and returns one token, advancing the frontier.
func (lx *lexer) next() (token, error) {
	input := lx.input
	n := len(input)
	i := lx.off
	var c byte
	for {
		for i < n && byteClass[input[i]]&clsSpace != 0 {
			i++
		}
		if i >= n {
			lx.off = n
			return token{kind: tokEOF, pos: n}, nil
		}
		c = input[i]
		if c != ';' {
			break
		}
		i++ // trailing semicolons are tolerated
	}
	switch {
	case c == '\'':
		j := i + 1
		for j < n && input[j] != '\'' {
			j++
		}
		if j >= n {
			lx.off = i
			return token{}, fmt.Errorf("sqlparse: unterminated string at offset %d", i)
		}
		lx.off = j + 1
		return token{kind: tokString, text: input[i+1 : j], pos: i}, nil
	case byteClass[c]&clsDigit != 0 || (c == '.' && i+1 < n && byteClass[input[i+1]]&clsDigit != 0):
		j := i
		seenDot, seenExp := false, false
		for j < n {
			d := input[j]
			if byteClass[d]&clsDigit != 0 {
				j++
				continue
			}
			if d == '.' && !seenDot && !seenExp {
				seenDot = true
				j++
				continue
			}
			if (d == 'e' || d == 'E') && !seenExp && j > i {
				seenExp = true
				j++
				if j < n && (input[j] == '+' || input[j] == '-') {
					j++
				}
				continue
			}
			break
		}
		// Duration suffixes (5ms, 2s, 100us) lex as one number token
		// with the unit attached; the parser splits them.
		for j < n && byteClass[input[j]]&clsLetter != 0 {
			j++
		}
		lx.off = j
		return token{kind: tokNumber, text: input[i:j], pos: i}, nil
	case byteClass[c]&clsLetter != 0 || c == '_':
		j := i
		for j < n && byteClass[input[j]]&clsIdentCont != 0 {
			j++
		}
		lx.off = j
		text := input[i:j]
		return token{kind: tokIdent, kw: keywordOf(text), text: text, pos: i}, nil
	case byteClass[c]&clsSymbol != 0:
		lx.off = i + 1
		return token{kind: tokSymbol, text: input[i : i+1], pos: i}, nil
	case c == '<':
		if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
			lx.off = i + 2
			return token{kind: tokSymbol, text: input[i : i+2], pos: i}, nil
		}
		lx.off = i + 1
		return token{kind: tokSymbol, text: input[i : i+1], pos: i}, nil
	case c == '>':
		if i+1 < n && input[i+1] == '=' {
			lx.off = i + 2
			return token{kind: tokSymbol, text: input[i : i+2], pos: i}, nil
		}
		lx.off = i + 1
		return token{kind: tokSymbol, text: input[i : i+1], pos: i}, nil
	default:
		lx.off = i
		return token{}, fmt.Errorf("sqlparse: unexpected character %q at offset %d", rune(c), i)
	}
}

// lex scans the whole input into a token slice (the historical API; kept
// for tests and tooling — production parsing pulls tokens on demand).
func lex(input string) ([]token, error) {
	var toks []token
	lx := lexer{input: input}
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
