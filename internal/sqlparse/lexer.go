// Package sqlparse implements the SQL front-end of SciBORQ: a lexer and
// recursive-descent parser for the query subset the paper's workload
// needs (single-table aggregates, cone search, boolean predicates,
// GROUP BY / ORDER BY / LIMIT) plus the bounded-query extensions of §3.2:
//
//	... WITHIN ERROR 0.05 CONFIDENCE 0.95   -- quality bound
//	... WITHIN TIME 5ms                     -- runtime bound
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString // single-quoted literal
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string // identifiers are kept verbatim; keywords matched case-insensitively
	pos  int    // byte offset in the input, for error messages
}

// lex splits input into tokens. It returns an error for unterminated
// strings or unexpected characters.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := i + 1
			for j < n && input[j] != '\'' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sqlparse: unterminated string at offset %d", i)
			}
			toks = append(toks, token{kind: tokString, text: input[i+1 : j], pos: i})
			i = j + 1
		case unicode.IsDigit(c) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			j := i
			seenDot, seenExp := false, false
			for j < n {
				d := input[j]
				if unicode.IsDigit(rune(d)) {
					j++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					j++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && j > i {
					seenExp = true
					j++
					if j < n && (input[j] == '+' || input[j] == '-') {
						j++
					}
					continue
				}
				break
			}
			// Duration suffixes (5ms, 2s, 100us) lex as one number token
			// with the unit attached; the parser splits them.
			for j < n && (unicode.IsLetter(rune(input[j]))) {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_' || input[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: input[i:j], pos: i})
			i = j
		case strings.ContainsRune("(),*=+-/", c):
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, token{kind: tokSymbol, text: input[i : i+2], pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokSymbol, text: "<", pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{kind: tokSymbol, text: ">=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokSymbol, text: ">", pos: i})
				i++
			}
		case c == ';':
			i++ // trailing semicolons are tolerated
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

// isKeyword reports whether tok is the given keyword (case-insensitive).
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
