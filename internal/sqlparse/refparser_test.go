package sqlparse

// This file retains the pre-rewrite SQL front-end — the allocating
// lex-then-parse pipeline — verbatim (modulo ref* renames), as the
// behavioural reference for the differential fuzz test: the rewritten
// on-demand lexer + Pratt parser must accept and reject exactly the
// same inputs and build identical statements. Do not "improve" this
// code; its value is that it does not change.

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"

	"sciborq/internal/engine"
	"sciborq/internal/expr"
	"sciborq/internal/vec"
)

// refLex is the historical whole-input lexer.
func refLex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := i + 1
			for j < n && input[j] != '\'' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sqlparse: unterminated string at offset %d", i)
			}
			toks = append(toks, token{kind: tokString, text: input[i+1 : j], pos: i})
			i = j + 1
		case unicode.IsDigit(c) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			j := i
			seenDot, seenExp := false, false
			for j < n {
				d := input[j]
				if unicode.IsDigit(rune(d)) {
					j++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					j++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && j > i {
					seenExp = true
					j++
					if j < n && (input[j] == '+' || input[j] == '-') {
						j++
					}
					continue
				}
				break
			}
			for j < n && (unicode.IsLetter(rune(input[j]))) {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_' || input[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: input[i:j], pos: i})
			i = j
		case strings.ContainsRune("(),*=+-/", c):
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, token{kind: tokSymbol, text: input[i : i+2], pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokSymbol, text: "<", pos: i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{kind: tokSymbol, text: ">=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokSymbol, text: ">", pos: i})
				i++
			}
		case c == ';':
			i++
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n})
	return toks, nil
}

// refTokIsKeyword is the historical keyword test (case-insensitive
// Unicode folding on identifier text).
func refTokIsKeyword(t token, kwd string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kwd)
}

// refParse is the historical Parse.
func refParse(sql string) (*Statement, error) {
	toks, err := refLex(sql)
	if err != nil {
		return nil, err
	}
	p := &refParser{toks: toks, input: sql}
	st, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !refTokIsKeyword(p.cur(), "") && p.cur().kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %q", p.cur().text)
	}
	return st, nil
}

type refParser struct {
	toks  []token
	pos   int
	input string
}

func (p *refParser) cur() token  { return p.toks[p.pos] }
func (p *refParser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *refParser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: %s (near offset %d in %q)",
		fmt.Sprintf(format, args...), p.cur().pos, truncate(p.input, 60))
}

func (p *refParser) expectKeyword(kwd string) error {
	if !refTokIsKeyword(p.cur(), kwd) {
		return p.errorf("expected %s, got %q", strings.ToUpper(kwd), p.cur().text)
	}
	p.pos++
	return nil
}

func (p *refParser) expectSymbol(sym string) error {
	if p.cur().kind != tokSymbol || p.cur().text != sym {
		return p.errorf("expected %q, got %q", sym, p.cur().text)
	}
	p.pos++
	return nil
}

func (p *refParser) acceptKeyword(kwd string) bool {
	if refTokIsKeyword(p.cur(), kwd) {
		p.pos++
		return true
	}
	return false
}

func (p *refParser) acceptSymbol(sym string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *refParser) parseSelect() (*Statement, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	var st Statement
	if err := p.parseSelectList(&st.Query); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if p.cur().kind != tokIdent {
		return nil, p.errorf("expected table name, got %q", p.cur().text)
	}
	st.Query.Table = p.next().text

	if p.acceptKeyword("WHERE") {
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		st.Query.Where = pred
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		if p.cur().kind != tokIdent {
			return nil, p.errorf("expected GROUP BY column, got %q", p.cur().text)
		}
		st.Query.GroupBy = p.next().text
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		if p.cur().kind != tokIdent {
			return nil, p.errorf("expected ORDER BY column, got %q", p.cur().text)
		}
		st.Query.OrderBy = p.next().text
		if p.acceptKeyword("DESC") {
			st.Query.Desc = true
		} else {
			p.acceptKeyword("ASC")
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		st.Query.Limit = n
	}
	for p.acceptKeyword("WITHIN") {
		switch {
		case p.acceptKeyword("ERROR"):
			v, err := p.parseNumber()
			if err != nil {
				return nil, err
			}
			if v <= 0 || v >= 1 {
				return nil, p.errorf("WITHIN ERROR wants a relative error in (0,1), got %g", v)
			}
			st.Bounds.MaxRelError = v
			st.Bounds.Confidence = 0.95
			if p.acceptKeyword("CONFIDENCE") {
				c, err := p.parseNumber()
				if err != nil {
					return nil, err
				}
				if c <= 0 || c >= 1 {
					return nil, p.errorf("CONFIDENCE wants a level in (0,1), got %g", c)
				}
				st.Bounds.Confidence = c
			}
		case p.acceptKeyword("TIME"):
			d, err := p.parseDuration()
			if err != nil {
				return nil, err
			}
			st.Bounds.MaxTime = d
		default:
			return nil, p.errorf("WITHIN must be followed by ERROR or TIME")
		}
	}
	if err := st.Query.Validate(); err != nil {
		return nil, err
	}
	return &st, nil
}

func (p *refParser) parseSelectList(q *engine.Query) error {
	if p.acceptSymbol("*") {
		q.Select = []string{"*"}
		return nil
	}
	for {
		if fn, ok := refAggKeyword(p.cur()); ok {
			spec, err := p.parseAgg(fn)
			if err != nil {
				return err
			}
			q.Aggs = append(q.Aggs, spec)
		} else if p.cur().kind == tokIdent {
			q.Select = append(q.Select, p.next().text)
		} else {
			return p.errorf("expected select item, got %q", p.cur().text)
		}
		if !p.acceptSymbol(",") {
			return nil
		}
	}
}

func refAggKeyword(t token) (engine.AggFunc, bool) {
	if t.kind != tokIdent {
		return 0, false
	}
	switch strings.ToUpper(t.text) {
	case "COUNT":
		return engine.Count, true
	case "SUM":
		return engine.Sum, true
	case "AVG":
		return engine.Avg, true
	case "MIN":
		return engine.Min, true
	case "MAX":
		return engine.Max, true
	case "STDDEV":
		return engine.StdDev, true
	}
	return 0, false
}

func (p *refParser) parseAgg(fn engine.AggFunc) (engine.AggSpec, error) {
	p.pos++ // consume function name
	var spec engine.AggSpec
	spec.Func = fn
	if err := p.expectSymbol("("); err != nil {
		return spec, err
	}
	if fn == engine.Count && p.acceptSymbol("*") {
		// COUNT(*): nil Arg.
	} else {
		arg, err := p.parseScalar()
		if err != nil {
			return spec, err
		}
		spec.Arg = arg
	}
	if err := p.expectSymbol(")"); err != nil {
		return spec, err
	}
	if p.acceptKeyword("AS") {
		if p.cur().kind != tokIdent {
			return spec, p.errorf("expected alias after AS, got %q", p.cur().text)
		}
		spec.Alias = p.next().text
	}
	return spec, nil
}

func (p *refParser) parseScalar() (expr.Scalar, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("+"):
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = expr.Arith{Op: expr.Add, L: left, R: right}
		case p.acceptSymbol("-"):
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = expr.Arith{Op: expr.Sub, L: left, R: right}
		default:
			return left, nil
		}
	}
}

func (p *refParser) parseTerm() (expr.Scalar, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("*"):
			right, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = expr.Arith{Op: expr.Mul, L: left, R: right}
		case p.acceptSymbol("/"):
			right, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = expr.Arith{Op: expr.Div, L: left, R: right}
		default:
			return left, nil
		}
	}
}

func (p *refParser) parseFactor() (expr.Scalar, error) {
	switch {
	case p.cur().kind == tokNumber:
		v, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		return expr.Const{V: v}, nil
	case p.cur().kind == tokIdent && !refIsReserved(p.cur().text):
		return expr.ColRef{Name: p.next().text}, nil
	case p.acceptSymbol("("):
		inner, err := p.parseScalar()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case p.acceptSymbol("-"):
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return expr.Arith{Op: expr.Sub, L: expr.Const{V: 0}, R: inner}, nil
	}
	return nil, p.errorf("expected scalar expression, got %q", p.cur().text)
}

func (p *refParser) parseOr() (expr.Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = expr.Or{L: left, R: right}
	}
	return left, nil
}

func (p *refParser) parseAnd() (expr.Predicate, error) {
	left, err := p.parseUnaryPred()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseUnaryPred()
		if err != nil {
			return nil, err
		}
		left = expr.And{L: left, R: right}
	}
	return left, nil
}

func (p *refParser) parseUnaryPred() (expr.Predicate, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseUnaryPred()
		if err != nil {
			return nil, err
		}
		return expr.Not{P: inner}, nil
	}
	if p.cur().kind == tokSymbol && p.cur().text == "(" {
		save := p.pos
		p.pos++
		inner, err := p.parseOr()
		if err == nil && p.acceptSymbol(")") {
			return inner, nil
		}
		p.pos = save
	}
	return p.parsePrimaryPred()
}

func (p *refParser) parsePrimaryPred() (expr.Predicate, error) {
	if refTokIsKeyword(p.cur(), "fGetNearbyObjEq") {
		return p.parseCone()
	}
	left, err := p.parseScalar()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		return expr.Between{Expr: left, Lo: lo, Hi: hi}, nil
	}
	op, err := p.parseCmpOp()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokString {
		ref, ok := left.(expr.ColRef)
		if !ok {
			return nil, p.errorf("string comparison requires a plain column on the left")
		}
		if op != vec.Eq && op != vec.Ne {
			return nil, p.errorf("strings support only = and <>")
		}
		return expr.StrEq{Col: ref.Name, Value: p.next().text, Neg: op == vec.Ne}, nil
	}
	rhs, err := p.parseNumber()
	if err != nil {
		return nil, err
	}
	return expr.Cmp{Op: op, Left: left, Right: rhs}, nil
}

func (p *refParser) parseCone() (expr.Predicate, error) {
	p.pos++ // consume function name
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	ra, err := p.parseNumber()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(","); err != nil {
		return nil, err
	}
	dec, err := p.parseNumber()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(","); err != nil {
		return nil, err
	}
	radius, err := p.parseNumber()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return expr.Cone{RaCol: "ra", DecCol: "dec", Ra0: ra, Dec0: dec, Radius: radius}, nil
}

func (p *refParser) parseCmpOp() (vec.CmpOp, error) {
	if p.cur().kind != tokSymbol {
		return 0, p.errorf("expected comparison operator, got %q", p.cur().text)
	}
	var op vec.CmpOp
	switch p.cur().text {
	case "=":
		op = vec.Eq
	case "<>":
		op = vec.Ne
	case "<":
		op = vec.Lt
	case "<=":
		op = vec.Le
	case ">":
		op = vec.Gt
	case ">=":
		op = vec.Ge
	default:
		return 0, p.errorf("unknown operator %q", p.cur().text)
	}
	p.pos++
	return op, nil
}

func (p *refParser) parseNumber() (float64, error) {
	neg := false
	if p.acceptSymbol("-") {
		neg = true
	}
	if p.cur().kind != tokNumber {
		return 0, p.errorf("expected number, got %q", p.cur().text)
	}
	text := p.next().text
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return 0, p.errorf("bad number %q: %v", text, err)
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *refParser) parseInt() (int, error) {
	v, err := p.parseNumber()
	if err != nil {
		return 0, err
	}
	n := int(v)
	if float64(n) != v || n < 0 {
		return 0, p.errorf("expected non-negative integer, got %g", v)
	}
	return n, nil
}

func (p *refParser) parseDuration() (time.Duration, error) {
	if p.cur().kind != tokNumber {
		return 0, p.errorf("expected duration, got %q", p.cur().text)
	}
	text := p.next().text
	d, err := time.ParseDuration(text)
	if err != nil {
		return 0, p.errorf("bad duration %q: %v", text, err)
	}
	if d <= 0 {
		return 0, p.errorf("duration must be positive, got %v", d)
	}
	return d, nil
}

func refIsReserved(s string) bool {
	switch strings.ToUpper(s) {
	case "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT",
		"AND", "OR", "NOT", "BETWEEN", "AS", "ASC", "DESC",
		"WITHIN", "ERROR", "TIME", "CONFIDENCE":
		return true
	}
	return false
}
