package sqlparse

import (
	"fmt"
	"strings"
	"time"
)

// Statement rendering: String turns a parsed statement back into SQL
// this package accepts, such that Parse(st.String()) reproduces the
// statement — the round-trip property FuzzParse enforces. Predicates
// and scalars already render parseable SQL-ish syntax through their own
// String methods; this file adds the clause structure and the bounded
// WITHIN extensions.

// String renders the statement as parseable SQL.
func (st *Statement) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	q := st.Query
	switch {
	case len(q.Aggs) > 0:
		for i, a := range q.Aggs {
			if i > 0 {
				b.WriteString(", ")
			}
			if a.Arg == nil {
				fmt.Fprintf(&b, "%s(*)", a.Func)
			} else {
				fmt.Fprintf(&b, "%s(%s)", a.Func, a.Arg)
			}
			if a.Alias != "" {
				fmt.Fprintf(&b, " AS %s", a.Alias)
			}
		}
	default:
		b.WriteString(strings.Join(q.Select, ", "))
	}
	fmt.Fprintf(&b, " FROM %s", q.Table)
	if q.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", q.Where)
	}
	if q.GroupBy != "" {
		fmt.Fprintf(&b, " GROUP BY %s", q.GroupBy)
	}
	if q.OrderBy != "" {
		fmt.Fprintf(&b, " ORDER BY %s", q.OrderBy)
		if q.Desc {
			b.WriteString(" DESC")
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	if st.Bounds.HasErrorBound() {
		fmt.Fprintf(&b, " WITHIN ERROR %g CONFIDENCE %g", st.Bounds.MaxRelError, st.Bounds.Confidence)
	}
	if st.Bounds.HasTimeBound() {
		fmt.Fprintf(&b, " WITHIN TIME %s", FormatDuration(st.Bounds.MaxTime))
	}
	return b.String()
}

// FormatDuration renders d in the single-unit form the lexer accepts:
// time.Duration.String() emits multi-unit spellings like "1m30s",
// which lex as two tokens, so the renderer picks the largest unit that
// divides d evenly instead ("90s", "1500us").
func FormatDuration(d time.Duration) string {
	units := []struct {
		d time.Duration
		s string
	}{
		{time.Hour, "h"},
		{time.Minute, "m"},
		{time.Second, "s"},
		{time.Millisecond, "ms"},
		{time.Microsecond, "us"},
	}
	for _, u := range units {
		if d%u.d == 0 {
			return fmt.Sprintf("%d%s", d/u.d, u.s)
		}
	}
	return fmt.Sprintf("%dns", d.Nanoseconds())
}
