package sqlparse

import (
	"strings"
	"testing"
	"testing/quick"

	"sciborq/internal/xrand"
)

// TestParseNeverPanics feeds the parser random token soup; it must
// return errors, never panic.
func TestParseNeverPanics(t *testing.T) {
	words := []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT",
		"AND", "OR", "NOT", "BETWEEN", "AS", "WITHIN", "ERROR", "TIME",
		"CONFIDENCE", "COUNT", "AVG", "SUM", "(", ")", "*", ",", "=",
		"<", ">", "<=", ">=", "<>", "+", "-", "/", "ra", "dec", "t",
		"'GALAXY'", "185", "0.05", "5ms", "fGetNearbyObjEq",
	}
	r := xrand.New(99)
	for trial := 0; trial < 5000; trial++ {
		n := 1 + r.Intn(20)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = words[r.Intn(len(words))]
		}
		sql := strings.Join(parts, " ")
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on %q: %v", sql, rec)
				}
			}()
			_, _ = Parse(sql)
		}()
	}
}

// TestLexNeverPanics feeds the lexer arbitrary strings.
func TestLexNeverPanics(t *testing.T) {
	f := func(s string) bool {
		defer func() {
			if rec := recover(); rec != nil {
				t.Fatalf("lex panic on %q: %v", s, rec)
			}
		}()
		_, _ = lex(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestParseValidQueriesAlwaysValidate: whatever Parse accepts must pass
// Query.Validate (the parser's output contract).
func TestParseValidQueriesAlwaysValidate(t *testing.T) {
	valid := []string{
		"SELECT * FROM t",
		"SELECT a, b, c FROM t WHERE a > 1 AND b < 2 OR NOT c = 3",
		"SELECT COUNT(*), SUM(a), AVG(b), MIN(c), MAX(d), STDDEV(e) FROM t",
		"SELECT AVG(a + b * c - 2 / d) AS x FROM t GROUP BY g ORDER BY x DESC LIMIT 7",
		"SELECT COUNT(*) FROM t WHERE fGetNearbyObjEq(1, -2, 0.5) WITHIN ERROR 0.5 WITHIN TIME 10ms",
		"select avg(a) from t where a between -1 and 1 within error 0.1 confidence 0.5",
	}
	for _, sql := range valid {
		st, err := Parse(sql)
		if err != nil {
			t.Fatalf("%q rejected: %v", sql, err)
		}
		if err := st.Query.Validate(); err != nil {
			t.Fatalf("%q produced invalid query: %v", sql, err)
		}
	}
}
