package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"sciborq/internal/engine"
	"sciborq/internal/expr"
	"sciborq/internal/vec"
)

// Bounds carries the SciBORQ bounded-query clauses parsed from the
// WITHIN extensions; zero values mean "no bound requested".
type Bounds struct {
	// MaxRelError is the requested relative error ε (WITHIN ERROR ε).
	MaxRelError float64
	// Confidence is the requested confidence level (CONFIDENCE c),
	// defaulting to 0.95 when an error bound is present.
	Confidence float64
	// MaxTime is the requested runtime budget (WITHIN TIME d).
	MaxTime time.Duration
}

// HasErrorBound reports whether a quality bound was requested.
func (b Bounds) HasErrorBound() bool { return b.MaxRelError > 0 }

// HasTimeBound reports whether a runtime bound was requested.
func (b Bounds) HasTimeBound() bool { return b.MaxTime > 0 }

// Statement is a parsed SQL statement: the engine query plus bounds.
type Statement struct {
	Query  engine.Query
	Bounds Bounds
}

// Parse parses one SELECT statement.
func Parse(sql string) (*Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: sql}
	st, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.cur().isKeyword("") && p.cur().kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %q", p.cur().text)
	}
	return st, nil
}

// MustParse is Parse but panics on error; for tests and examples.
func MustParse(sql string) *Statement {
	st, err := Parse(sql)
	if err != nil {
		panic(err)
	}
	return st
}

type parser struct {
	toks  []token
	pos   int
	input string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: %s (near offset %d in %q)",
		fmt.Sprintf(format, args...), p.cur().pos, truncate(p.input, 60))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func (p *parser) expectKeyword(kw string) error {
	if !p.cur().isKeyword(kw) {
		return p.errorf("expected %s, got %q", strings.ToUpper(kw), p.cur().text)
	}
	p.pos++
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	if p.cur().kind != tokSymbol || p.cur().text != sym {
		return p.errorf("expected %q, got %q", sym, p.cur().text)
	}
	p.pos++
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().isKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.cur().kind == tokSymbol && p.cur().text == sym {
		p.pos++
		return true
	}
	return false
}

// parseSelect parses:
//
//	SELECT list FROM ident [WHERE pred] [GROUP BY ident]
//	[ORDER BY ident [ASC|DESC]] [LIMIT n]
//	[WITHIN ERROR num [CONFIDENCE num]] [WITHIN TIME dur]
func (p *parser) parseSelect() (*Statement, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	var st Statement
	if err := p.parseSelectList(&st.Query); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if p.cur().kind != tokIdent {
		return nil, p.errorf("expected table name, got %q", p.cur().text)
	}
	st.Query.Table = p.next().text

	if p.acceptKeyword("WHERE") {
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		st.Query.Where = pred
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		if p.cur().kind != tokIdent {
			return nil, p.errorf("expected GROUP BY column, got %q", p.cur().text)
		}
		st.Query.GroupBy = p.next().text
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		if p.cur().kind != tokIdent {
			return nil, p.errorf("expected ORDER BY column, got %q", p.cur().text)
		}
		st.Query.OrderBy = p.next().text
		if p.acceptKeyword("DESC") {
			st.Query.Desc = true
		} else {
			p.acceptKeyword("ASC")
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		st.Query.Limit = n
	}
	for p.acceptKeyword("WITHIN") {
		switch {
		case p.acceptKeyword("ERROR"):
			v, err := p.parseNumber()
			if err != nil {
				return nil, err
			}
			if v <= 0 || v >= 1 {
				return nil, p.errorf("WITHIN ERROR wants a relative error in (0,1), got %g", v)
			}
			st.Bounds.MaxRelError = v
			st.Bounds.Confidence = 0.95
			if p.acceptKeyword("CONFIDENCE") {
				c, err := p.parseNumber()
				if err != nil {
					return nil, err
				}
				if c <= 0 || c >= 1 {
					return nil, p.errorf("CONFIDENCE wants a level in (0,1), got %g", c)
				}
				st.Bounds.Confidence = c
			}
		case p.acceptKeyword("TIME"):
			d, err := p.parseDuration()
			if err != nil {
				return nil, err
			}
			st.Bounds.MaxTime = d
		default:
			return nil, p.errorf("WITHIN must be followed by ERROR or TIME")
		}
	}
	if err := st.Query.Validate(); err != nil {
		return nil, err
	}
	return &st, nil
}

// parseSelectList fills either Aggs or Select.
func (p *parser) parseSelectList(q *engine.Query) error {
	if p.acceptSymbol("*") {
		q.Select = []string{"*"}
		return nil
	}
	for {
		if fn, ok := aggKeyword(p.cur()); ok {
			spec, err := p.parseAgg(fn)
			if err != nil {
				return err
			}
			q.Aggs = append(q.Aggs, spec)
		} else if p.cur().kind == tokIdent {
			q.Select = append(q.Select, p.next().text)
		} else {
			return p.errorf("expected select item, got %q", p.cur().text)
		}
		if !p.acceptSymbol(",") {
			return nil
		}
	}
}

// aggKeyword maps a token to an aggregate function.
func aggKeyword(t token) (engine.AggFunc, bool) {
	if t.kind != tokIdent {
		return 0, false
	}
	switch strings.ToUpper(t.text) {
	case "COUNT":
		return engine.Count, true
	case "SUM":
		return engine.Sum, true
	case "AVG":
		return engine.Avg, true
	case "MIN":
		return engine.Min, true
	case "MAX":
		return engine.Max, true
	case "STDDEV":
		return engine.StdDev, true
	}
	return 0, false
}

// parseAgg parses FN(arg) [AS alias].
func (p *parser) parseAgg(fn engine.AggFunc) (engine.AggSpec, error) {
	p.pos++ // consume function name
	var spec engine.AggSpec
	spec.Func = fn
	if err := p.expectSymbol("("); err != nil {
		return spec, err
	}
	if fn == engine.Count && p.acceptSymbol("*") {
		// COUNT(*): nil Arg.
	} else {
		arg, err := p.parseScalar()
		if err != nil {
			return spec, err
		}
		spec.Arg = arg
	}
	if err := p.expectSymbol(")"); err != nil {
		return spec, err
	}
	if p.acceptKeyword("AS") {
		if p.cur().kind != tokIdent {
			return spec, p.errorf("expected alias after AS, got %q", p.cur().text)
		}
		spec.Alias = p.next().text
	}
	return spec, nil
}

// parseScalar parses term (('+'|'-') term)*.
func (p *parser) parseScalar() (expr.Scalar, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("+"):
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = expr.Arith{Op: expr.Add, L: left, R: right}
		case p.acceptSymbol("-"):
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = expr.Arith{Op: expr.Sub, L: left, R: right}
		default:
			return left, nil
		}
	}
}

// parseTerm parses factor (('*'|'/') factor)*.
func (p *parser) parseTerm() (expr.Scalar, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("*"):
			right, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = expr.Arith{Op: expr.Mul, L: left, R: right}
		case p.acceptSymbol("/"):
			right, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = expr.Arith{Op: expr.Div, L: left, R: right}
		default:
			return left, nil
		}
	}
}

// parseFactor parses number | ident | '(' scalar ')' | '-' factor.
func (p *parser) parseFactor() (expr.Scalar, error) {
	switch {
	case p.cur().kind == tokNumber:
		v, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		return expr.Const{V: v}, nil
	case p.cur().kind == tokIdent && !isReserved(p.cur().text):
		return expr.ColRef{Name: p.next().text}, nil
	case p.acceptSymbol("("):
		inner, err := p.parseScalar()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case p.acceptSymbol("-"):
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return expr.Arith{Op: expr.Sub, L: expr.Const{V: 0}, R: inner}, nil
	}
	return nil, p.errorf("expected scalar expression, got %q", p.cur().text)
}

// parseOr parses and-expr (OR and-expr)*.
func (p *parser) parseOr() (expr.Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = expr.Or{L: left, R: right}
	}
	return left, nil
}

// parseAnd parses unary (AND unary)*.
func (p *parser) parseAnd() (expr.Predicate, error) {
	left, err := p.parseUnaryPred()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseUnaryPred()
		if err != nil {
			return nil, err
		}
		left = expr.And{L: left, R: right}
	}
	return left, nil
}

// parseUnaryPred parses NOT pred | '(' pred ')' | primary predicate.
func (p *parser) parseUnaryPred() (expr.Predicate, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseUnaryPred()
		if err != nil {
			return nil, err
		}
		return expr.Not{P: inner}, nil
	}
	// Lookahead for a parenthesised predicate vs a parenthesised scalar:
	// try predicate first, backtrack to scalar comparison on failure.
	if p.cur().kind == tokSymbol && p.cur().text == "(" {
		save := p.pos
		p.pos++
		inner, err := p.parseOr()
		if err == nil && p.acceptSymbol(")") {
			return inner, nil
		}
		p.pos = save
	}
	return p.parsePrimaryPred()
}

// parsePrimaryPred parses cone search, BETWEEN, string equality, and
// scalar comparisons.
func (p *parser) parsePrimaryPred() (expr.Predicate, error) {
	if p.cur().isKeyword("fGetNearbyObjEq") {
		return p.parseCone()
	}
	left, err := p.parseScalar()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		return expr.Between{Expr: left, Lo: lo, Hi: hi}, nil
	}
	op, err := p.parseCmpOp()
	if err != nil {
		return nil, err
	}
	// String comparison: only ident = 'str' or ident <> 'str'.
	if p.cur().kind == tokString {
		ref, ok := left.(expr.ColRef)
		if !ok {
			return nil, p.errorf("string comparison requires a plain column on the left")
		}
		if op != vec.Eq && op != vec.Ne {
			return nil, p.errorf("strings support only = and <>")
		}
		return expr.StrEq{Col: ref.Name, Value: p.next().text, Neg: op == vec.Ne}, nil
	}
	rhs, err := p.parseNumber()
	if err != nil {
		return nil, err
	}
	return expr.Cmp{Op: op, Left: left, Right: rhs}, nil
}

// parseCone parses fGetNearbyObjEq(ra, dec, radius), binding to the
// conventional SkyServer position columns ra/dec.
func (p *parser) parseCone() (expr.Predicate, error) {
	p.pos++ // consume function name
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	ra, err := p.parseNumber()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(","); err != nil {
		return nil, err
	}
	dec, err := p.parseNumber()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(","); err != nil {
		return nil, err
	}
	radius, err := p.parseNumber()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return expr.Cone{RaCol: "ra", DecCol: "dec", Ra0: ra, Dec0: dec, Radius: radius}, nil
}

// parseCmpOp parses a comparison operator token.
func (p *parser) parseCmpOp() (vec.CmpOp, error) {
	if p.cur().kind != tokSymbol {
		return 0, p.errorf("expected comparison operator, got %q", p.cur().text)
	}
	var op vec.CmpOp
	switch p.cur().text {
	case "=":
		op = vec.Eq
	case "<>":
		op = vec.Ne
	case "<":
		op = vec.Lt
	case "<=":
		op = vec.Le
	case ">":
		op = vec.Gt
	case ">=":
		op = vec.Ge
	default:
		return 0, p.errorf("unknown operator %q", p.cur().text)
	}
	p.pos++
	return op, nil
}

// parseNumber parses a plain numeric literal (with optional leading -).
func (p *parser) parseNumber() (float64, error) {
	neg := false
	if p.acceptSymbol("-") {
		neg = true
	}
	if p.cur().kind != tokNumber {
		return 0, p.errorf("expected number, got %q", p.cur().text)
	}
	text := p.next().text
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return 0, p.errorf("bad number %q: %v", text, err)
	}
	if neg {
		v = -v
	}
	return v, nil
}

// parseInt parses a non-negative integer literal.
func (p *parser) parseInt() (int, error) {
	v, err := p.parseNumber()
	if err != nil {
		return 0, err
	}
	n := int(v)
	if float64(n) != v || n < 0 {
		return 0, p.errorf("expected non-negative integer, got %g", v)
	}
	return n, nil
}

// parseDuration parses a Go-style duration literal (5ms, 2s, 100us, 1m).
func (p *parser) parseDuration() (time.Duration, error) {
	if p.cur().kind != tokNumber {
		return 0, p.errorf("expected duration, got %q", p.cur().text)
	}
	text := p.next().text
	d, err := time.ParseDuration(text)
	if err != nil {
		return 0, p.errorf("bad duration %q: %v", text, err)
	}
	if d <= 0 {
		return 0, p.errorf("duration must be positive, got %v", d)
	}
	return d, nil
}

// isReserved reports whether an identifier is a grammar keyword and so
// cannot be a column reference inside expressions.
func isReserved(s string) bool {
	switch strings.ToUpper(s) {
	case "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT",
		"AND", "OR", "NOT", "BETWEEN", "AS", "ASC", "DESC",
		"WITHIN", "ERROR", "TIME", "CONFIDENCE":
		return true
	}
	return false
}
