package sqlparse

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"sciborq/internal/engine"
	"sciborq/internal/expr"
	"sciborq/internal/vec"
)

// Bounds carries the SciBORQ bounded-query clauses parsed from the
// WITHIN extensions; zero values mean "no bound requested".
type Bounds struct {
	// MaxRelError is the requested relative error ε (WITHIN ERROR ε).
	MaxRelError float64
	// Confidence is the requested confidence level (CONFIDENCE c),
	// defaulting to 0.95 when an error bound is present.
	Confidence float64
	// MaxTime is the requested runtime budget (WITHIN TIME d).
	MaxTime time.Duration
}

// HasErrorBound reports whether a quality bound was requested.
func (b Bounds) HasErrorBound() bool { return b.MaxRelError > 0 }

// HasTimeBound reports whether a runtime bound was requested.
func (b Bounds) HasTimeBound() bool { return b.MaxTime > 0 }

// Statement is a parsed SQL statement: the engine query plus bounds.
type Statement struct {
	Query  engine.Query
	Bounds Bounds
}

// Parse parses one SELECT statement.
func Parse(sql string) (*Statement, error) {
	return parseWithLits(sql, nil)
}

// ParseBound re-parses sql substituting the i-th parameterisable numeric
// literal (in token order, as enumerated by Fingerprint) with lits[i].
// It is the binding half of plan-cache literal parameterisation: given a
// cached statement shape's representative SQL and the literal values
// extracted from a new statement of the same shape, it produces exactly
// the Statement a direct Parse of the new statement would — same control
// flow, same AST shape — without re-deriving any literal text.
func ParseBound(sql string, lits []float64) (*Statement, error) {
	return parseWithLits(sql, lits)
}

// MustParse is Parse but panics on error; for tests and examples.
func MustParse(sql string) *Statement {
	st, err := Parse(sql)
	if err != nil {
		panic(err)
	}
	return st
}

// parserPool recycles parser state across parses; a steady-state parse
// allocates only the statement's own AST.
var parserPool = sync.Pool{New: func() any { return new(parser) }}

func parseWithLits(sql string, lits []float64) (*Statement, error) {
	p := parserPool.Get().(*parser)
	p.init(sql, lits)
	st, perr := p.parseSelect()
	// A lexical error wins over the parse error it provoked: the byte
	// scanner's message names the offending offset directly (and matches
	// the historical lex-then-parse pipeline, which surfaced lexical
	// errors before parsing began).
	lexErr := p.lexErr
	if lexErr == nil && perr == nil && p.tok.kind != tokEOF {
		perr = p.errorf("unexpected trailing input %q", p.tok.text)
		lexErr = p.lexErr // trailing scan may itself have failed
	}
	p.release()
	if lexErr != nil {
		return nil, lexErr
	}
	if perr != nil {
		return nil, perr
	}
	return st, nil
}

// parser is the recursive-descent statement parser over the on-demand
// lexer. It keeps a two-token window (tok + ahead) over the scan
// frontier; backtracking saves and restores the window plus the lexer
// offset in O(1) and re-scans the abandoned region on the next pull.
type parser struct {
	lx     lexer
	tok    token // current token
	ahead  token // single lookahead slot (filled lazily)
	nahead int   // 0 or 1 tokens buffered in ahead
	lexErr error

	// Literal replay (plan-cache shape binding): when lits is non-nil,
	// parseNumber substitutes lits[litIdx] for each parameterisable
	// numeric literal, in token order. litOn turns off at the first
	// LIMIT/WITHIN keyword, mirroring Fingerprint's parameterisation
	// window.
	lits   []float64
	litIdx int
	litOn  bool
}

func (p *parser) init(sql string, lits []float64) {
	p.lx = lexer{input: sql}
	p.nahead = 0
	p.lexErr = nil
	p.lits = lits
	p.litIdx = 0
	p.litOn = true
	p.tok = p.pull()
}

func (p *parser) release() {
	p.lits = nil
	parserPool.Put(p)
}

// pull scans the next token, recording the first lexical error and
// returning an EOF sentinel for it (the error is re-raised by Parse).
func (p *parser) pull() token {
	t, err := p.lx.next()
	if err != nil {
		if p.lexErr == nil {
			p.lexErr = err
		}
		return token{kind: tokEOF, pos: len(p.lx.input)}
	}
	if t.kw == kwLimit || t.kw == kwWithin {
		// Literals at or beyond the first LIMIT/WITHIN are part of the
		// statement shape, not parameters; stop substituting.
		p.litOn = false
	}
	return t
}

func (p *parser) cur() token { return p.tok }

// advance moves the window one token forward.
func (p *parser) advance() {
	if p.nahead > 0 {
		p.tok = p.ahead
		p.nahead = 0
		return
	}
	p.tok = p.pull()
}

// take returns the current token and advances past it.
func (p *parser) take() token {
	t := p.tok
	p.advance()
	return t
}

// peek returns the token after the current one without consuming it.
func (p *parser) peek() token {
	if p.nahead == 0 {
		p.ahead = p.pull()
		p.nahead = 1
	}
	return p.ahead
}

// mark captures the full parser position for O(1) backtracking.
type mark struct {
	off    int
	tok    token
	ahead  token
	nahead int
	lexErr error
	litIdx int
	litOn  bool
}

func (p *parser) mark() mark {
	return mark{off: p.lx.off, tok: p.tok, ahead: p.ahead, nahead: p.nahead,
		lexErr: p.lexErr, litIdx: p.litIdx, litOn: p.litOn}
}

func (p *parser) reset(m mark) {
	p.lx.off = m.off
	p.tok = m.tok
	p.ahead = m.ahead
	p.nahead = m.nahead
	p.lexErr = m.lexErr
	p.litIdx = m.litIdx
	p.litOn = m.litOn
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: %s (near offset %d in %q)",
		fmt.Sprintf(format, args...), p.tok.pos, truncate(p.lx.input, 60))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func (p *parser) expectKeyword(id kw) error {
	if p.tok.kw != id {
		return p.errorf("expected %s, got %q", kwNames[id], p.tok.text)
	}
	p.advance()
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	if p.tok.kind != tokSymbol || p.tok.text != sym {
		return p.errorf("expected %q, got %q", sym, p.tok.text)
	}
	p.advance()
	return nil
}

func (p *parser) acceptKeyword(id kw) bool {
	if p.tok.kw == id {
		p.advance()
		return true
	}
	return false
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.tok.kind == tokSymbol && p.tok.text == sym {
		p.advance()
		return true
	}
	return false
}

// parseSelect parses:
//
//	SELECT list FROM ident [WHERE pred] [GROUP BY ident]
//	[ORDER BY ident [ASC|DESC]] [LIMIT n]
//	[WITHIN ERROR num [CONFIDENCE num]] [WITHIN TIME dur]
func (p *parser) parseSelect() (*Statement, error) {
	if err := p.expectKeyword(kwSelect); err != nil {
		return nil, err
	}
	var st Statement
	if err := p.parseSelectList(&st.Query); err != nil {
		return nil, err
	}
	if err := p.expectKeyword(kwFrom); err != nil {
		return nil, err
	}
	if p.tok.kind != tokIdent {
		return nil, p.errorf("expected table name, got %q", p.tok.text)
	}
	st.Query.Table = p.take().text

	if p.acceptKeyword(kwWhere) {
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		st.Query.Where = pred
	}
	if p.acceptKeyword(kwGroup) {
		if err := p.expectKeyword(kwBy); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIdent {
			return nil, p.errorf("expected GROUP BY column, got %q", p.tok.text)
		}
		st.Query.GroupBy = p.take().text
	}
	if p.acceptKeyword(kwOrder) {
		if err := p.expectKeyword(kwBy); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIdent {
			return nil, p.errorf("expected ORDER BY column, got %q", p.tok.text)
		}
		st.Query.OrderBy = p.take().text
		if p.acceptKeyword(kwDesc) {
			st.Query.Desc = true
		} else {
			p.acceptKeyword(kwAsc)
		}
	}
	if p.acceptKeyword(kwLimit) {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		st.Query.Limit = n
	}
	for p.acceptKeyword(kwWithin) {
		switch {
		case p.acceptKeyword(kwError):
			v, err := p.parseNumber()
			if err != nil {
				return nil, err
			}
			if v <= 0 || v >= 1 {
				return nil, p.errorf("WITHIN ERROR wants a relative error in (0,1), got %g", v)
			}
			st.Bounds.MaxRelError = v
			st.Bounds.Confidence = 0.95
			if p.acceptKeyword(kwConfidence) {
				c, err := p.parseNumber()
				if err != nil {
					return nil, err
				}
				if c <= 0 || c >= 1 {
					return nil, p.errorf("CONFIDENCE wants a level in (0,1), got %g", c)
				}
				st.Bounds.Confidence = c
			}
		case p.acceptKeyword(kwTime):
			d, err := p.parseDuration()
			if err != nil {
				return nil, err
			}
			st.Bounds.MaxTime = d
		default:
			return nil, p.errorf("WITHIN must be followed by ERROR or TIME")
		}
	}
	if err := st.Query.Validate(); err != nil {
		return nil, err
	}
	return &st, nil
}

// parseSelectList fills either Aggs or Select.
func (p *parser) parseSelectList(q *engine.Query) error {
	if p.acceptSymbol("*") {
		q.Select = []string{"*"}
		return nil
	}
	for {
		if fn, ok := aggKeyword(p.tok); ok {
			spec, err := p.parseAgg(fn)
			if err != nil {
				return err
			}
			q.Aggs = append(q.Aggs, spec)
		} else if p.tok.kind == tokIdent {
			q.Select = append(q.Select, p.take().text)
		} else {
			return p.errorf("expected select item, got %q", p.tok.text)
		}
		if !p.acceptSymbol(",") {
			return nil
		}
	}
}

// aggKeyword maps a token to an aggregate function.
func aggKeyword(t token) (engine.AggFunc, bool) {
	switch t.kw {
	case kwCount:
		return engine.Count, true
	case kwSum:
		return engine.Sum, true
	case kwAvg:
		return engine.Avg, true
	case kwMin:
		return engine.Min, true
	case kwMax:
		return engine.Max, true
	case kwStdDev:
		return engine.StdDev, true
	}
	return 0, false
}

// parseAgg parses FN(arg) [AS alias].
func (p *parser) parseAgg(fn engine.AggFunc) (engine.AggSpec, error) {
	p.advance() // consume function name
	var spec engine.AggSpec
	spec.Func = fn
	if err := p.expectSymbol("("); err != nil {
		return spec, err
	}
	if fn == engine.Count && p.acceptSymbol("*") {
		// COUNT(*): nil Arg.
	} else {
		arg, err := p.parseScalar()
		if err != nil {
			return spec, err
		}
		spec.Arg = arg
	}
	if err := p.expectSymbol(")"); err != nil {
		return spec, err
	}
	if p.acceptKeyword(kwAs) {
		if p.tok.kind != tokIdent {
			return spec, p.errorf("expected alias after AS, got %q", p.tok.text)
		}
		spec.Alias = p.take().text
	}
	return spec, nil
}

// Scalar operator binding powers for the Pratt loop: additive 10,
// multiplicative 20. Left associativity comes from recursing at bp+1.
func binOpOf(t token) (op expr.ArithOp, bp int, ok bool) {
	if t.kind != tokSymbol || len(t.text) != 1 {
		return 0, 0, false
	}
	switch t.text[0] {
	case '+':
		return expr.Add, 10, true
	case '-':
		return expr.Sub, 10, true
	case '*':
		return expr.Mul, 20, true
	case '/':
		return expr.Div, 20, true
	}
	return 0, 0, false
}

// parseScalar parses an arithmetic expression by precedence climbing —
// a single Pratt loop replacing the historical parseScalar/parseTerm
// nesting; the trees it builds are identical (left-associative, with
// '*' and '/' binding tighter than '+' and '-').
func (p *parser) parseScalar() (expr.Scalar, error) {
	return p.parseBinary(0)
}

func (p *parser) parseBinary(minBP int) (expr.Scalar, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		op, bp, ok := binOpOf(p.tok)
		if !ok || bp < minBP {
			return left, nil
		}
		p.advance()
		right, err := p.parseBinary(bp + 1)
		if err != nil {
			return nil, err
		}
		left = expr.Arith{Op: op, L: left, R: right}
	}
}

// parseFactor parses number | ident | '(' scalar ')' | '-' factor.
func (p *parser) parseFactor() (expr.Scalar, error) {
	switch {
	case p.tok.kind == tokNumber:
		v, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		return expr.Const{V: v}, nil
	case p.tok.kind == tokIdent && !isReserved(p.tok):
		return expr.ColRef{Name: p.take().text}, nil
	case p.acceptSymbol("("):
		inner, err := p.parseScalar()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case p.acceptSymbol("-"):
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return expr.Arith{Op: expr.Sub, L: expr.Const{V: 0}, R: inner}, nil
	}
	return nil, p.errorf("expected scalar expression, got %q", p.tok.text)
}

// parseOr parses and-expr (OR and-expr)*.
func (p *parser) parseOr() (expr.Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword(kwOr) {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = expr.Or{L: left, R: right}
	}
	return left, nil
}

// parseAnd parses unary (AND unary)*.
func (p *parser) parseAnd() (expr.Predicate, error) {
	left, err := p.parseUnaryPred()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword(kwAnd) {
		right, err := p.parseUnaryPred()
		if err != nil {
			return nil, err
		}
		left = expr.And{L: left, R: right}
	}
	return left, nil
}

// parseUnaryPred parses NOT pred | '(' pred ')' | primary predicate.
func (p *parser) parseUnaryPred() (expr.Predicate, error) {
	if p.acceptKeyword(kwNot) {
		inner, err := p.parseUnaryPred()
		if err != nil {
			return nil, err
		}
		return expr.Not{P: inner}, nil
	}
	// Lookahead for a parenthesised predicate vs a parenthesised scalar:
	// try predicate first, backtrack to scalar comparison on failure.
	if p.tok.kind == tokSymbol && p.tok.text == "(" {
		save := p.mark()
		p.advance()
		inner, err := p.parseOr()
		if err == nil && p.acceptSymbol(")") {
			return inner, nil
		}
		p.reset(save)
	}
	return p.parsePrimaryPred()
}

// parsePrimaryPred parses cone search, BETWEEN, string equality, and
// scalar comparisons.
func (p *parser) parsePrimaryPred() (expr.Predicate, error) {
	if p.tok.kw == kwCone {
		return p.parseCone()
	}
	left, err := p.parseScalar()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword(kwBetween) {
		lo, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword(kwAnd); err != nil {
			return nil, err
		}
		hi, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		return expr.Between{Expr: left, Lo: lo, Hi: hi}, nil
	}
	op, err := p.parseCmpOp()
	if err != nil {
		return nil, err
	}
	// String comparison: only ident = 'str' or ident <> 'str'.
	if p.tok.kind == tokString {
		ref, ok := left.(expr.ColRef)
		if !ok {
			return nil, p.errorf("string comparison requires a plain column on the left")
		}
		if op != vec.Eq && op != vec.Ne {
			return nil, p.errorf("strings support only = and <>")
		}
		return expr.StrEq{Col: ref.Name, Value: p.take().text, Neg: op == vec.Ne}, nil
	}
	rhs, err := p.parseNumber()
	if err != nil {
		return nil, err
	}
	return expr.Cmp{Op: op, Left: left, Right: rhs}, nil
}

// parseCone parses fGetNearbyObjEq(ra, dec, radius), binding to the
// conventional SkyServer position columns ra/dec.
func (p *parser) parseCone() (expr.Predicate, error) {
	p.advance() // consume function name
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	ra, err := p.parseNumber()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(","); err != nil {
		return nil, err
	}
	dec, err := p.parseNumber()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(","); err != nil {
		return nil, err
	}
	radius, err := p.parseNumber()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return expr.Cone{RaCol: "ra", DecCol: "dec", Ra0: ra, Dec0: dec, Radius: radius}, nil
}

// parseCmpOp parses a comparison operator token.
func (p *parser) parseCmpOp() (vec.CmpOp, error) {
	if p.tok.kind != tokSymbol {
		return 0, p.errorf("expected comparison operator, got %q", p.tok.text)
	}
	var op vec.CmpOp
	switch p.tok.text {
	case "=":
		op = vec.Eq
	case "<>":
		op = vec.Ne
	case "<":
		op = vec.Lt
	case "<=":
		op = vec.Le
	case ">":
		op = vec.Gt
	case ">=":
		op = vec.Ge
	default:
		return 0, p.errorf("unknown operator %q", p.tok.text)
	}
	p.advance()
	return op, nil
}

// parseNumber parses a plain numeric literal (with optional leading -).
// In literal-replay mode the parsed value is replaced by the next bound
// literal; the sign stays with the statement shape (the '-' token).
func (p *parser) parseNumber() (float64, error) {
	neg := false
	// Signed literal: a '-' counts only when the second window token is
	// a number (a dangling '-' is rejected either way).
	if p.tok.kind == tokSymbol && p.tok.text == "-" && p.peek().kind == tokNumber {
		p.advance()
		neg = true
	}
	if p.tok.kind != tokNumber {
		return 0, p.errorf("expected number, got %q", p.tok.text)
	}
	substitute := p.lits != nil && p.litOn
	t := p.take()
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, p.errorf("bad number %q: %v", t.text, err)
	}
	if substitute {
		if p.litIdx >= len(p.lits) {
			return 0, p.errorf("literal binding underflow at %q", t.text)
		}
		v = p.lits[p.litIdx]
		p.litIdx++
	}
	if neg {
		v = -v
	}
	return v, nil
}

// parseInt parses a non-negative integer literal.
func (p *parser) parseInt() (int, error) {
	v, err := p.parseNumber()
	if err != nil {
		return 0, err
	}
	n := int(v)
	if float64(n) != v || n < 0 {
		return 0, p.errorf("expected non-negative integer, got %g", v)
	}
	return n, nil
}

// parseDuration parses a Go-style duration literal (5ms, 2s, 100us, 1m).
func (p *parser) parseDuration() (time.Duration, error) {
	if p.tok.kind != tokNumber {
		return 0, p.errorf("expected duration, got %q", p.tok.text)
	}
	text := p.take().text
	d, err := time.ParseDuration(text)
	if err != nil {
		return 0, p.errorf("bad duration %q: %v", text, err)
	}
	if d <= 0 {
		return 0, p.errorf("duration must be positive, got %v", d)
	}
	return d, nil
}

// isReserved reports whether a token is a grammar keyword and so cannot
// be a column reference inside expressions. Aggregate names and the
// cone UDF are recognised but not reserved.
func isReserved(t token) bool {
	return t.kw >= kwSelect && t.kw <= kwConfidence
}
