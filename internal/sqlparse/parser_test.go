package sqlparse

import (
	"strings"
	"testing"
	"time"

	"sciborq/internal/engine"
	"sciborq/internal/expr"
	"sciborq/internal/vec"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT COUNT(*) FROM t WHERE ra >= 185.5 AND type = 'GALAXY'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatal("missing EOF token")
	}
	var texts []string
	for _, tk := range toks[:len(toks)-1] {
		texts = append(texts, tk.text)
	}
	want := "SELECT COUNT ( * ) FROM t WHERE ra >= 185.5 AND type = GALAXY"
	if got := strings.Join(texts, " "); got != want {
		t.Fatalf("tokens = %q, want %q", got, want)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := lex("SELECT @"); err == nil {
		t.Fatal("bad character accepted")
	}
}

func TestLexNumbersAndDurations(t *testing.T) {
	toks, err := lex("1.5e-3 5ms 42 .5")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1.5e-3", "5ms", "42", ".5"}
	for i, w := range want {
		if toks[i].kind != tokNumber || toks[i].text != w {
			t.Fatalf("token %d = %+v, want number %q", i, toks[i], w)
		}
	}
}

func TestParseSimpleAggregate(t *testing.T) {
	st, err := Parse("SELECT COUNT(*), AVG(rmag) AS m FROM PhotoObjAll WHERE ra > 180")
	if err != nil {
		t.Fatal(err)
	}
	q := st.Query
	if q.Table != "PhotoObjAll" || len(q.Aggs) != 2 {
		t.Fatalf("query = %+v", q)
	}
	if q.Aggs[0].Func != engine.Count || q.Aggs[0].Arg != nil {
		t.Fatalf("agg0 = %+v", q.Aggs[0])
	}
	if q.Aggs[1].Func != engine.Avg || q.Aggs[1].Alias != "m" {
		t.Fatalf("agg1 = %+v", q.Aggs[1])
	}
	cmp, ok := q.Where.(expr.Cmp)
	if !ok || cmp.Op != vec.Gt || cmp.Right != 180 {
		t.Fatalf("where = %+v", q.Where)
	}
}

func TestParseStar(t *testing.T) {
	st := MustParse("SELECT * FROM Galaxy LIMIT 100")
	if len(st.Query.Select) != 1 || st.Query.Select[0] != "*" {
		t.Fatalf("select = %v", st.Query.Select)
	}
	if st.Query.Limit != 100 {
		t.Fatalf("limit = %d", st.Query.Limit)
	}
}

func TestParsePaperQuery(t *testing.T) {
	// The paper's Figure 1 query shape.
	st, err := Parse("SELECT * FROM Galaxy WHERE fGetNearbyObjEq(185, 0, 3)")
	if err != nil {
		t.Fatal(err)
	}
	cone, ok := st.Query.Where.(expr.Cone)
	if !ok {
		t.Fatalf("where = %T", st.Query.Where)
	}
	if cone.Ra0 != 185 || cone.Dec0 != 0 || cone.Radius != 3 {
		t.Fatalf("cone = %+v", cone)
	}
	if cone.RaCol != "ra" || cone.DecCol != "dec" {
		t.Fatalf("cone columns = %+v", cone)
	}
}

func TestParseBooleanStructure(t *testing.T) {
	st := MustParse("SELECT COUNT(*) FROM t WHERE NOT (a > 1 OR b < 2) AND c = 'X'")
	and, ok := st.Query.Where.(expr.And)
	if !ok {
		t.Fatalf("top = %T", st.Query.Where)
	}
	if _, ok := and.L.(expr.Not); !ok {
		t.Fatalf("left = %T", and.L)
	}
	se, ok := and.R.(expr.StrEq)
	if !ok || se.Col != "c" || se.Value != "X" || se.Neg {
		t.Fatalf("right = %+v", and.R)
	}
}

func TestParseBetween(t *testing.T) {
	st := MustParse("SELECT COUNT(*) FROM t WHERE ra BETWEEN 120 AND 240")
	b, ok := st.Query.Where.(expr.Between)
	if !ok || b.Lo != 120 || b.Hi != 240 {
		t.Fatalf("between = %+v", st.Query.Where)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	st := MustParse("SELECT AVG(u - g * 2) AS colour FROM t")
	a, ok := st.Query.Aggs[0].Arg.(expr.Arith)
	if !ok || a.Op != expr.Sub {
		t.Fatalf("arg = %+v", st.Query.Aggs[0].Arg)
	}
	mul, ok := a.R.(expr.Arith)
	if !ok || mul.Op != expr.Mul {
		t.Fatalf("precedence wrong: right = %+v", a.R)
	}
}

func TestParseParenthesisedScalar(t *testing.T) {
	st := MustParse("SELECT SUM((u - g) / 2) FROM t")
	d, ok := st.Query.Aggs[0].Arg.(expr.Arith)
	if !ok || d.Op != expr.Div {
		t.Fatalf("arg = %+v", st.Query.Aggs[0].Arg)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	st := MustParse("SELECT COUNT(*) FROM t WHERE dec > -15.5")
	cmp := st.Query.Where.(expr.Cmp)
	if cmp.Right != -15.5 {
		t.Fatalf("rhs = %v", cmp.Right)
	}
	st = MustParse("SELECT AVG(-x) FROM t")
	if _, ok := st.Query.Aggs[0].Arg.(expr.Arith); !ok {
		t.Fatal("unary minus not parsed")
	}
}

func TestParseGroupOrderLimit(t *testing.T) {
	st := MustParse("SELECT COUNT(*) AS n FROM t GROUP BY type ORDER BY n DESC LIMIT 5")
	q := st.Query
	if q.GroupBy != "type" || q.OrderBy != "n" || !q.Desc || q.Limit != 5 {
		t.Fatalf("query = %+v", q)
	}
	st = MustParse("SELECT ra FROM t ORDER BY ra ASC")
	if st.Query.Desc {
		t.Fatal("ASC parsed as DESC")
	}
}

func TestParseWithinError(t *testing.T) {
	st := MustParse("SELECT AVG(rmag) FROM t WITHIN ERROR 0.05")
	if !st.Bounds.HasErrorBound() || st.Bounds.MaxRelError != 0.05 {
		t.Fatalf("bounds = %+v", st.Bounds)
	}
	if st.Bounds.Confidence != 0.95 {
		t.Fatalf("default confidence = %v", st.Bounds.Confidence)
	}
	st = MustParse("SELECT AVG(rmag) FROM t WITHIN ERROR 0.01 CONFIDENCE 0.99")
	if st.Bounds.MaxRelError != 0.01 || st.Bounds.Confidence != 0.99 {
		t.Fatalf("bounds = %+v", st.Bounds)
	}
}

func TestParseWithinTime(t *testing.T) {
	st := MustParse("SELECT COUNT(*) FROM t WITHIN TIME 5ms")
	if !st.Bounds.HasTimeBound() || st.Bounds.MaxTime != 5*time.Millisecond {
		t.Fatalf("bounds = %+v", st.Bounds)
	}
	// Both bounds together ("most representative result within 5 minutes").
	st = MustParse("SELECT AVG(r) FROM t WITHIN ERROR 0.1 WITHIN TIME 2s")
	if !st.Bounds.HasErrorBound() || !st.Bounds.HasTimeBound() {
		t.Fatalf("bounds = %+v", st.Bounds)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"INSERT INTO t VALUES (1)",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE ra >",
		"SELECT COUNT( FROM t",
		"SELECT * FROM t LIMIT -3",
		"SELECT * FROM t LIMIT 2.5",
		"SELECT * FROM t WITHIN ERROR 1.5",
		"SELECT * FROM t WITHIN ERROR 0.1 CONFIDENCE 2",
		"SELECT * FROM t WITHIN TIME abc",
		"SELECT * FROM t WITHIN BANANAS 4",
		"SELECT * FROM t WHERE type = 5 = 6",
		"SELECT * FROM t trailing junk",
		"SELECT AVG(x) FROM t GROUP BY",
		"SELECT * FROM t WHERE (a > 1",
		"SELECT * FROM t WHERE 'str' = type",
		"SELECT * FROM t WHERE type < 'GALAXY'",
		"SELECT * FROM t WHERE a + 1 = 'x'",
		"SELECT x, COUNT(*) FROM t", // mixed projection and aggregate
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("accepted bad SQL: %q", sql)
		}
	}
}

func TestParseWithinTimeDurations(t *testing.T) {
	cases := map[string]time.Duration{
		"100us": 100 * time.Microsecond,
		"250ms": 250 * time.Millisecond,
		"2s":    2 * time.Second,
		"1m":    time.Minute,
	}
	for lit, want := range cases {
		st, err := Parse("SELECT COUNT(*) FROM t WITHIN TIME " + lit)
		if err != nil {
			t.Fatalf("%s: %v", lit, err)
		}
		if st.Bounds.MaxTime != want {
			t.Fatalf("%s parsed as %v", lit, st.Bounds.MaxTime)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	st, err := Parse("select count(*) from t where ra between 1 and 2 group by g order by n desc limit 3")
	if err != nil {
		t.Fatal(err)
	}
	if st.Query.GroupBy != "g" || st.Query.Limit != 3 || !st.Query.Desc {
		t.Fatalf("query = %+v", st.Query)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad SQL")
		}
	}()
	MustParse("not sql")
}

func TestParsedQueryExecutesEndToEnd(t *testing.T) {
	// Sanity: the parser output is directly executable.
	st := MustParse("SELECT COUNT(*) AS n FROM t WHERE x BETWEEN 2 AND 4")
	if st.Query.Validate() != nil {
		t.Fatal("parsed query invalid")
	}
	if st.Query.Pred().String() != "x BETWEEN 2 AND 4" {
		t.Fatalf("pred = %s", st.Query.Pred())
	}
}
