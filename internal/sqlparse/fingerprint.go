package sqlparse

import (
	"encoding/binary"
	"strconv"
)

// Fingerprint bytes: tokens are separated by fpSep; a parameterised
// numeric literal collapses to fpNum (its value moves to the literal
// list); a string literal is encoded as fpStr + uvarint(byte length) +
// the literal bytes verbatim. String literals are the one token kind
// that can carry arbitrary bytes — including these control bytes — so
// their content is length-delimited rather than sentinel-delimited,
// keeping the whole encoding prefix-free: a literal embedding
// fpSep/fpNum/fpStr cannot re-parse as token boundaries and forge the
// fingerprint of a different statement. Every other token kind contains
// no byte below 0x20 (the lexer skips space-class control bytes and
// errors on the rest outside strings), so fpSep unambiguously delimits
// tokens and fingerprint equality implies token-sequence equality
// (modulo parameterised numeric literal values).
const (
	fpSep = 0x1F
	fpNum = 0x01
	fpStr = 0x02
)

// Fingerprint appends the statement-shape fingerprint of sql to shape
// and the values of its parameterisable numeric literals to lits,
// returning the extended slices. Two statements with equal fingerprints
// differ at most in numeric literal values, so they share one cached
// plan-cache shape: ParseBound(template, lits) reproduces exactly what
// Parse(sql) would build (see plancache). ok is false when sql cannot
// be fingerprinted (a lexical error) — callers fall back to Parse.
//
// Parameterisation covers plain numeric literals (those the parser
// reads via ParseFloat) up to the first LIMIT or WITHIN keyword:
// literals in LIMIT and the WITHIN bound clauses stay part of the shape
// because the parser validates their values structurally (integer
// limits, (0,1) error bounds), so substituting them could turn an
// accepted shape into a rejected statement. A '-' sign is shape, not
// value: the magnitude is the literal, matching parseNumber.
//
// Fingerprint performs no heap allocation beyond growing the two
// caller-owned slices; with pre-sized scratch it allocates nothing.
func Fingerprint(shape []byte, lits []float64, sql string) ([]byte, []float64, bool) {
	lx := lexer{input: sql}
	paramOn := true
	for {
		t, err := lx.next()
		if err != nil {
			return shape, lits, false
		}
		if t.kind == tokEOF {
			return shape, lits, true
		}
		shape = append(shape, fpSep)
		switch t.kind {
		case tokNumber:
			if paramOn {
				if v, perr := strconv.ParseFloat(t.text, 64); perr == nil {
					shape = append(shape, fpNum)
					lits = append(lits, v)
					continue
				}
			}
			// Duration-suffixed or unparseable numbers are shape bytes;
			// the parser treats their text as part of the grammar.
			shape = append(shape, t.text...)
		case tokString:
			shape = append(shape, fpStr)
			shape = binary.AppendUvarint(shape, uint64(len(t.text)))
			shape = append(shape, t.text...)
		default:
			if t.kw == kwLimit || t.kw == kwWithin {
				// Mirrors the parser's literal-replay window: from here
				// on, numbers are validated shape, not parameters.
				paramOn = false
			}
			shape = append(shape, t.text...)
		}
	}
}
