package sqlparse

import "strconv"

// Fingerprint bytes: tokens are separated by fpSep; a parameterised
// numeric literal collapses to fpNum (its value moves to the literal
// list); string literals are wrapped in fpStr so they cannot glue into
// neighbouring tokens. None of the three can occur inside token text
// (they are control bytes, which the lexer never includes in a token).
const (
	fpSep = 0x1F
	fpNum = 0x01
	fpStr = 0x02
)

// Fingerprint appends the statement-shape fingerprint of sql to shape
// and the values of its parameterisable numeric literals to lits,
// returning the extended slices. Two statements with equal fingerprints
// differ at most in numeric literal values, so they share one cached
// plan-cache shape: ParseBound(template, lits) reproduces exactly what
// Parse(sql) would build (see plancache). ok is false when sql cannot
// be fingerprinted (a lexical error) — callers fall back to Parse.
//
// Parameterisation covers plain numeric literals (those the parser
// reads via ParseFloat) up to the first LIMIT or WITHIN keyword:
// literals in LIMIT and the WITHIN bound clauses stay part of the shape
// because the parser validates their values structurally (integer
// limits, (0,1) error bounds), so substituting them could turn an
// accepted shape into a rejected statement. A '-' sign is shape, not
// value: the magnitude is the literal, matching parseNumber.
//
// Fingerprint performs no heap allocation beyond growing the two
// caller-owned slices; with pre-sized scratch it allocates nothing.
func Fingerprint(shape []byte, lits []float64, sql string) ([]byte, []float64, bool) {
	lx := lexer{input: sql}
	paramOn := true
	for {
		t, err := lx.next()
		if err != nil {
			return shape, lits, false
		}
		if t.kind == tokEOF {
			return shape, lits, true
		}
		shape = append(shape, fpSep)
		switch t.kind {
		case tokNumber:
			if paramOn {
				if v, perr := strconv.ParseFloat(t.text, 64); perr == nil {
					shape = append(shape, fpNum)
					lits = append(lits, v)
					continue
				}
			}
			// Duration-suffixed or unparseable numbers are shape bytes;
			// the parser treats their text as part of the grammar.
			shape = append(shape, t.text...)
		case tokString:
			shape = append(shape, fpStr)
			shape = append(shape, t.text...)
			shape = append(shape, fpStr)
		default:
			if t.kw == kwLimit || t.kw == kwWithin {
				// Mirrors the parser's literal-replay window: from here
				// on, numbers are validated shape, not parameters.
				paramOn = false
			}
			shape = append(shape, t.text...)
		}
	}
}
