package sqlparse

import (
	"testing"
	"time"
)

// fuzzSeeds is the seed corpus: the accepted statements of
// parser_test.go plus the WITHIN clause grammar corners and a few
// rejected shapes (the fuzzer mutates from both sides of the accept
// boundary).
var fuzzSeeds = []string{
	"SELECT COUNT(*) FROM t WHERE ra >= 185.5 AND type = 'GALAXY'",
	"SELECT COUNT(*), AVG(rmag) AS m FROM PhotoObjAll WHERE ra > 180",
	"SELECT * FROM Galaxy LIMIT 100",
	"SELECT * FROM Galaxy WHERE fGetNearbyObjEq(185, 0, 3)",
	"SELECT COUNT(*) FROM t WHERE NOT (a > 1 OR b < 2) AND c = 'X'",
	"SELECT COUNT(*) FROM t WHERE ra BETWEEN 120 AND 240",
	"SELECT AVG(u - g * 2) AS colour FROM t",
	"SELECT SUM((u - g) / 2) FROM t",
	"SELECT COUNT(*) FROM t WHERE dec > -15.5",
	"SELECT AVG(-x) FROM t",
	"SELECT COUNT(*) AS n FROM t GROUP BY type ORDER BY n DESC LIMIT 5",
	"SELECT ra FROM t ORDER BY ra ASC",
	"SELECT AVG(rmag) FROM t WITHIN ERROR 0.05",
	"SELECT AVG(rmag) FROM t WITHIN ERROR 0.01 CONFIDENCE 0.99",
	"SELECT COUNT(*) FROM t WITHIN TIME 5ms",
	"SELECT AVG(r) FROM t WITHIN ERROR 0.1 WITHIN TIME 2s",
	"SELECT MIN(x), MAX(x), STDDEV(x) FROM t WHERE s <> 'QSO' WITHIN TIME 1.5ms",
	"SELECT AVG(r) FROM t WITHIN TIME 90s",
	"SELECT COUNT(*) FROM t WHERE 5 < 3",
	"SELECT a.b FROM t WHERE x = 1e6;",
	"SELECT FROM t",
	"SELECT * FROM t WITHIN BANANAS 4",
	"SELECT 'unterminated",
}

// FuzzParse fuzzes the SQL front-end for two properties: Parse never
// panics, and every accepted statement round-trips — Parse → String →
// Parse succeeds and String is a fixed point (the re-parse renders
// identically, i.e. the rendering loses nothing the parser keeps).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		st, err := Parse(sql)
		if err != nil {
			return // rejected input: only the no-panic property applies
		}
		rendered := st.String()
		st2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("accepted %q but re-parse of rendering %q failed: %v", sql, rendered, err)
		}
		if again := st2.String(); again != rendered {
			t.Fatalf("rendering not a fixed point: %q -> %q -> %q", sql, rendered, again)
		}
	})
}

// TestFormatDurationSingleUnit pins the renderer to lexable spellings:
// time.Duration.String would emit "1m30s", which lexes as two tokens.
func TestFormatDurationSingleUnit(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{90 * time.Second, "90s"},
		{1500 * time.Microsecond, "1500us"},
		{2 * time.Hour, "2h"},
		{90 * time.Minute, "90m"},
		{5 * time.Millisecond, "5ms"},
		{1234 * time.Nanosecond, "1234ns"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
		st, err := Parse("SELECT COUNT(*) FROM t WITHIN TIME " + FormatDuration(c.d))
		if err != nil {
			t.Errorf("rendered duration %q does not parse: %v", FormatDuration(c.d), err)
		} else if st.Bounds.MaxTime != c.d {
			t.Errorf("duration round-trip %v -> %v", c.d, st.Bounds.MaxTime)
		}
	}
}

// TestStatementStringRoundTrip pins the seed corpus round-trip outside
// the fuzzer, so plain `go test` exercises it.
func TestStatementStringRoundTrip(t *testing.T) {
	for _, sql := range fuzzSeeds {
		st, err := Parse(sql)
		if err != nil {
			continue
		}
		rendered := st.String()
		st2, err := Parse(rendered)
		if err != nil {
			t.Errorf("%q rendered to unparseable %q: %v", sql, rendered, err)
			continue
		}
		if again := st2.String(); again != rendered {
			t.Errorf("fixed point violated: %q -> %q -> %q", sql, rendered, again)
		}
	}
}
