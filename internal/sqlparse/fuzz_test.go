package sqlparse

import (
	"reflect"
	"strconv"
	"testing"
	"time"
)

// fuzzSeeds is the seed corpus: the accepted statements of
// parser_test.go plus the WITHIN clause grammar corners and a few
// rejected shapes (the fuzzer mutates from both sides of the accept
// boundary).
var fuzzSeeds = []string{
	"SELECT COUNT(*) FROM t WHERE ra >= 185.5 AND type = 'GALAXY'",
	"SELECT COUNT(*), AVG(rmag) AS m FROM PhotoObjAll WHERE ra > 180",
	"SELECT * FROM Galaxy LIMIT 100",
	"SELECT * FROM Galaxy WHERE fGetNearbyObjEq(185, 0, 3)",
	"SELECT COUNT(*) FROM t WHERE NOT (a > 1 OR b < 2) AND c = 'X'",
	"SELECT COUNT(*) FROM t WHERE ra BETWEEN 120 AND 240",
	"SELECT AVG(u - g * 2) AS colour FROM t",
	"SELECT SUM((u - g) / 2) FROM t",
	"SELECT COUNT(*) FROM t WHERE dec > -15.5",
	"SELECT AVG(-x) FROM t",
	"SELECT COUNT(*) AS n FROM t GROUP BY type ORDER BY n DESC LIMIT 5",
	"SELECT ra FROM t ORDER BY ra ASC",
	"SELECT AVG(rmag) FROM t WITHIN ERROR 0.05",
	"SELECT AVG(rmag) FROM t WITHIN ERROR 0.01 CONFIDENCE 0.99",
	"SELECT COUNT(*) FROM t WITHIN TIME 5ms",
	"SELECT AVG(r) FROM t WITHIN ERROR 0.1 WITHIN TIME 2s",
	"SELECT MIN(x), MAX(x), STDDEV(x) FROM t WHERE s <> 'QSO' WITHIN TIME 1.5ms",
	"SELECT AVG(r) FROM t WITHIN TIME 90s",
	"SELECT COUNT(*) FROM t WHERE 5 < 3",
	"SELECT COUNT(*) FROM t WHERE s = 'a\x02\x1FAND\x1Ft2\x1F=\x1F\x02b'",
	"SELECT a.b FROM t WHERE x = 1e6;",
	"SELECT FROM t",
	"SELECT * FROM t WITHIN BANANAS 4",
	"SELECT 'unterminated",
}

// checkDifferential cross-checks one input against the retained
// reference implementation of the pre-rewrite front-end
// (refparser_test.go): identical accept/reject decision and, on accept,
// structurally identical ASTs.
func checkDifferential(t *testing.T, sql string) (*Statement, bool) {
	t.Helper()
	st, err := Parse(sql)
	stRef, errRef := refParse(sql)
	if (err == nil) != (errRef == nil) {
		t.Fatalf("accept/reject divergence on %q: new err=%v, reference err=%v", sql, err, errRef)
	}
	if err != nil {
		return nil, false
	}
	if !reflect.DeepEqual(st, stRef) {
		t.Fatalf("AST divergence on %q:\n  new: %#v\n  ref: %#v", sql, st, stRef)
	}
	return st, true
}

// checkRoundTrip verifies parse → render → parse reproduces the exact
// AST (not just a rendering fixed point): the plan cache keys on the
// canonical rendered form, so rendering must lose nothing.
func checkRoundTrip(t *testing.T, sql string, st *Statement) {
	t.Helper()
	rendered := st.String()
	st2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("accepted %q but re-parse of rendering %q failed: %v", sql, rendered, err)
	}
	if !reflect.DeepEqual(st2, st) {
		t.Fatalf("round-trip AST drift: %q -> %q:\n  first:  %#v\n  second: %#v", sql, rendered, st, st2)
	}
	if again := st2.String(); again != rendered {
		t.Fatalf("rendering not a fixed point: %q -> %q -> %q", sql, rendered, again)
	}
}

// checkFingerprint verifies the plan-cache parameterisation contract:
// every lexable statement fingerprints, and replaying the statement's
// own literals through ParseBound reproduces Parse exactly.
func checkFingerprint(t *testing.T, sql string, st *Statement) {
	t.Helper()
	shape, lits, ok := Fingerprint(nil, nil, sql)
	if !ok {
		t.Fatalf("accepted statement %q did not fingerprint", sql)
	}
	_ = shape
	st2, err := ParseBound(sql, lits)
	if err != nil {
		t.Fatalf("ParseBound(%q, own lits) failed: %v", sql, err)
	}
	if !reflect.DeepEqual(st2, st) {
		t.Fatalf("ParseBound with own literals diverged on %q:\n  Parse:      %#v\n  ParseBound: %#v", sql, st, st2)
	}
}

// FuzzParse fuzzes the SQL front-end for the full property set: Parse
// never panics; accept/reject and ASTs match the retained reference of
// the pre-rewrite parser; every accepted statement survives parse →
// render → parse structurally intact; and literal replay through
// Fingerprint/ParseBound reproduces Parse.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		st, ok := checkDifferential(t, sql)
		if !ok {
			return // rejected by both: only the no-panic property applies
		}
		checkRoundTrip(t, sql, st)
		checkFingerprint(t, sql, st)
	})
}

// TestDifferentialCorpus runs the differential, round-trip, and
// fingerprint properties over the seed corpus under plain `go test`.
func TestDifferentialCorpus(t *testing.T) {
	for _, sql := range fuzzSeeds {
		st, ok := checkDifferential(t, sql)
		if !ok {
			continue
		}
		checkRoundTrip(t, sql, st)
		checkFingerprint(t, sql, st)
	}
}

// TestFingerprintShapeSharing pins the parameterisation that lets
// literal-variant statements share one cached plan shape.
func TestFingerprintShapeSharing(t *testing.T) {
	a, aLits, ok := Fingerprint(nil, nil, "SELECT COUNT(*) FROM t WHERE x > 5")
	if !ok {
		t.Fatal("fingerprint failed")
	}
	b, bLits, ok := Fingerprint(nil, nil, "SELECT COUNT(*) FROM t WHERE x > 7")
	if !ok {
		t.Fatal("fingerprint failed")
	}
	if string(a) != string(b) {
		t.Fatalf("literal variants have different shapes:\n  %q\n  %q", a, b)
	}
	if len(aLits) != 1 || aLits[0] != 5 || len(bLits) != 1 || bLits[0] != 7 {
		t.Fatalf("literal extraction wrong: %v vs %v", aLits, bLits)
	}
	// Binding the second statement's literals into the first (the
	// template) must reproduce the second statement's AST.
	want := MustParse("SELECT COUNT(*) FROM t WHERE x > 7")
	got, err := ParseBound("SELECT COUNT(*) FROM t WHERE x > 5", bLits)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cross-binding diverged:\n  got:  %#v\n  want: %#v", got, want)
	}

	// LIMIT and WITHIN literals are shape, not parameters: variants must
	// NOT share a fingerprint (their values are validated structurally).
	l1, _, _ := Fingerprint(nil, nil, "SELECT * FROM t LIMIT 5")
	l2, _, _ := Fingerprint(nil, nil, "SELECT * FROM t LIMIT 9")
	if string(l1) == string(l2) {
		t.Fatal("LIMIT literals must stay part of the shape")
	}
	w1, _, _ := Fingerprint(nil, nil, "SELECT AVG(x) FROM t WITHIN ERROR 0.05")
	w2, _, _ := Fingerprint(nil, nil, "SELECT AVG(x) FROM t WITHIN ERROR 0.5")
	if string(w1) == string(w2) {
		t.Fatal("WITHIN literals must stay part of the shape")
	}
	// Predicate literals before a LIMIT still parameterise.
	p1, p1L, _ := Fingerprint(nil, nil, "SELECT * FROM t WHERE x > 3 LIMIT 10")
	p2, p2L, _ := Fingerprint(nil, nil, "SELECT * FROM t WHERE x > 4 LIMIT 10")
	if string(p1) != string(p2) {
		t.Fatal("predicate literals before LIMIT must parameterise")
	}
	if len(p1L) != 1 || p1L[0] != 3 || len(p2L) != 1 || p2L[0] != 4 {
		t.Fatalf("predicate literal extraction wrong: %v vs %v", p1L, p2L)
	}
}

// maskedToken is one lexed token with parameterisable numeric literal
// values masked out — the equivalence class Fingerprint is meant to
// compute.
type maskedToken struct {
	kind tokKind
	text string
}

// maskedTokens lexes sql into its fingerprint equivalence class,
// mirroring Fingerprint's parameterisation window exactly; ok is false
// on a lexical error.
func maskedTokens(sql string) ([]maskedToken, bool) {
	lx := lexer{input: sql}
	paramOn := true
	var out []maskedToken
	for {
		t, err := lx.next()
		if err != nil {
			return nil, false
		}
		if t.kind == tokEOF {
			return out, true
		}
		text := t.text
		switch t.kind {
		case tokNumber:
			if paramOn {
				if _, perr := strconv.ParseFloat(t.text, 64); perr == nil {
					text = "?"
				}
			}
		case tokString:
			// Verbatim: string content is never parameterised.
		default:
			if t.kw == kwLimit || t.kw == kwWithin {
				paramOn = false
			}
		}
		out = append(out, maskedToken{kind: t.kind, text: text})
	}
}

// checkFingerprintInjective asserts the injectivity direction of the
// fingerprint contract: equal shapes imply equal token sequences
// (modulo parameterised literal values). A violation means one
// statement can forge another's shared plan-cache shape.
func checkFingerprintInjective(t *testing.T, a, b string) {
	t.Helper()
	fpA, litsA, okA := Fingerprint(nil, nil, a)
	fpB, litsB, okB := Fingerprint(nil, nil, b)
	if !okA || !okB || string(fpA) != string(fpB) {
		return
	}
	if len(litsA) != len(litsB) {
		t.Fatalf("equal shapes with different literal counts: %q (%d) vs %q (%d)", a, len(litsA), b, len(litsB))
	}
	ta, _ := maskedTokens(a)
	tb, _ := maskedTokens(b)
	if !reflect.DeepEqual(ta, tb) {
		t.Fatalf("fingerprint collision: %q and %q share shape %q but lex differently", a, b, fpA)
	}
}

// FuzzFingerprintInjective fuzzes statement pairs for shape collisions.
func FuzzFingerprintInjective(f *testing.F) {
	f.Add("SELECT COUNT(*) FROM t WHERE s = 'a\x02\x1FAND\x1Ft2\x1F=\x1F\x02b'",
		"SELECT COUNT(*) FROM t WHERE s = 'a' AND t2 = 'b'")
	f.Add("SELECT * FROM t WHERE s = 'x'", "SELECT * FROM t WHERE s = 'x'")
	for i := 1; i < len(fuzzSeeds); i++ {
		f.Add(fuzzSeeds[i-1], fuzzSeeds[i])
	}
	f.Fuzz(func(t *testing.T, a, b string) {
		checkFingerprintInjective(t, a, b)
	})
}

// TestFingerprintStringInjection pins the fix for a cross-tenant shape
// forgery: a string literal embedding the fingerprint control bytes
// must not reproduce the fingerprint of a structurally different
// statement (shape templates are shared across tenants, so a collision
// would let one tenant's statement answer another tenant's query).
func TestFingerprintStringInjection(t *testing.T) {
	forged := "SELECT COUNT(*) FROM t WHERE s = 'a\x02\x1FAND\x1Ft2\x1F=\x1F\x02b'"
	honest := "SELECT COUNT(*) FROM t WHERE s = 'a' AND t2 = 'b'"
	fpF, litsF, ok := Fingerprint(nil, nil, forged)
	if !ok {
		t.Fatal("forged statement did not fingerprint")
	}
	fpH, litsH, ok := Fingerprint(nil, nil, honest)
	if !ok {
		t.Fatal("honest statement did not fingerprint")
	}
	if len(litsF) != 0 || len(litsH) != 0 {
		t.Fatalf("unexpected literals: %v vs %v", litsF, litsH)
	}
	if string(fpF) == string(fpH) {
		t.Fatalf("control-byte string literal forged the shape of a different statement: %q", fpF)
	}
	// String literals sharing concatenated bytes but split differently
	// must also stay distinct (the length prefix disambiguates).
	checkFingerprintInjective(t, forged, honest)
}

// TestFormatDurationSingleUnit pins the renderer to lexable spellings:
// time.Duration.String would emit "1m30s", which lexes as two tokens.
func TestFormatDurationSingleUnit(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{90 * time.Second, "90s"},
		{1500 * time.Microsecond, "1500us"},
		{2 * time.Hour, "2h"},
		{90 * time.Minute, "90m"},
		{5 * time.Millisecond, "5ms"},
		{1234 * time.Nanosecond, "1234ns"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
		st, err := Parse("SELECT COUNT(*) FROM t WITHIN TIME " + FormatDuration(c.d))
		if err != nil {
			t.Errorf("rendered duration %q does not parse: %v", FormatDuration(c.d), err)
		} else if st.Bounds.MaxTime != c.d {
			t.Errorf("duration round-trip %v -> %v", c.d, st.Bounds.MaxTime)
		}
	}
}

// TestStatementStringRoundTrip pins the seed corpus round-trip outside
// the fuzzer, so plain `go test` exercises it.
func TestStatementStringRoundTrip(t *testing.T) {
	for _, sql := range fuzzSeeds {
		st, err := Parse(sql)
		if err != nil {
			continue
		}
		rendered := st.String()
		st2, err := Parse(rendered)
		if err != nil {
			t.Errorf("%q rendered to unparseable %q: %v", sql, rendered, err)
			continue
		}
		if again := st2.String(); again != rendered {
			t.Errorf("fixed point violated: %q -> %q -> %q", sql, rendered, again)
		}
	}
}
