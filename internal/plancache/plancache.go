// Package plancache caches the query front-end's work — parse,
// canonicalisation, predicate key encoding — so the repeated statement
// shapes of an exploratory workload (the SkyServer pattern the paper
// targets: the same dashboard and zoom queries arriving over and over)
// go straight to the morsel executor.
//
// Three tiers serve a lookup:
//
//  1. Alias tier: the raw SQL string, byte for byte, maps to its plan.
//     This is the zero-allocation path — one read-locked map probe, an
//     atomic access stamp, a table identity check — and it is what a
//     serving workload hits in steady state.
//  2. Canonical tier: plans are keyed by (canonical rendered statement,
//     table ID, table version). Statements that differ in spelling but
//     not meaning — whitespace, keyword case, commuted conjuncts — remap
//     to one plan; the new spelling is registered as another alias.
//  3. Shape tier: sqlparse.Fingerprint collapses parameterisable numeric
//     literals, so "WHERE x > 5" and "WHERE x > 7" share one shape
//     entry. A shape hit replays the cached template through
//     sqlparse.ParseBound with the new literal values — same byte-exact
//     AST a full parse would build, without re-deriving the statement
//     structure — and admits the result as a new plan.
//
// Identity discipline follows the recycler's: plans embed the table's
// (ID, Version) pair. A version bump (every load) makes every plan for
// that table stale; staleness is caught lazily at lookup by comparing
// against the live table and eagerly by Invalidate/InvalidateTable from
// the load path. Memory is bounded by an LRU-by-bytes budget over plan
// cost (SQL strings + a fixed AST estimate); shape templates have their
// own smaller LRU byte bound so a flood of distinct shapes can neither
// grow without limit nor starve the plan tier of its budget. Access
// recency comes from an atomic logical clock so the hit path never
// takes the write lock.
package plancache

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"sciborq/internal/faultinject"
	"sciborq/internal/recycler"
	"sciborq/internal/sqlparse"
)

// DefaultBudget bounds the cache to 8 MiB of plan bytes by default —
// thousands of distinct statement spellings.
const DefaultBudget = 8 << 20

// planOverhead is the charged estimate for a plan's AST, prepared
// predicate, and bookkeeping beyond its strings.
const planOverhead = 512

// shapeOverhead is the charged estimate for a shape template's
// bookkeeping beyond its key and SQL strings.
const shapeOverhead = 64

// shapeBudgetDivisor sizes the shape tier's own byte bound as a
// fraction of the plan budget (floored at shapeBudgetMin so tiny plan
// budgets still hold a useful set of templates).
const (
	shapeBudgetDivisor = 8
	shapeBudgetMin     = 64 << 10
)

// Plan is one cached, immutable execution plan: the parsed statement
// plus every front-end derivation execution needs. All fields are
// read-only after Admit; the statement is shared by concurrent queries.
type Plan struct {
	// SQL is the canonical rendered form (canonical-tier key part).
	SQL string
	// Table is the target table name; TableID/TableVer the identity the
	// plan was built against.
	Table    string
	TableID  uint64
	TableVer uint64
	// Statement is the parsed statement. Executions share it; the
	// engine takes Query by value and never mutates the shared slices.
	Statement *sqlparse.Statement
	// Prep is the recycler-ready canonicalised WHERE predicate.
	Prep recycler.Prepared

	key     string // full canonical-tier key (SQL + identity suffix)
	bytes   int64
	stamp   atomic.Int64 // logical access clock; LRU evicts the smallest
	aliases []string     // raw spellings mapped to this plan (under c.mu)
	dead    atomic.Bool  // set once evicted; stale lookups stop re-admitting
}

// Stats reports one tenant's (or the aggregate "" tenant's) cache
// effectiveness.
type Stats struct {
	// Hits counts alias-tier hits: no parsing, no allocation.
	Hits int64
	// CanonHits counts statements remapped to an existing plan by
	// canonical form (parsed once, then aliased).
	CanonHits int64
	// ShapeHits counts literal-rebind hits: the statement shape was
	// cached and only literal values were replayed.
	ShapeHits int64
	// Misses counts full front-end runs (parse + canonicalise + admit).
	Misses int64
	// Invalidations counts plans dropped for table version staleness.
	Invalidations int64
	// Evictions counts plans dropped by the byte budget.
	Evictions int64
	// Entries/Bytes/Budget describe plan-tier residency (whole cache,
	// not per tenant; only set on the aggregate Stats).
	Entries int
	Bytes   int64
	Budget  int64
	// ShapeEntries/ShapeBytes/ShapeBudget/ShapeEvictions describe the
	// separately-bounded shape-template tier (aggregate only).
	ShapeEntries   int
	ShapeBytes     int64
	ShapeBudget    int64
	ShapeEvictions int64
}

// HitRate returns the fraction of lookups answered without a full
// front-end run.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.CanonHits + s.ShapeHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.CanonHits+s.ShapeHits) / float64(total)
}

// tenantStats aggregates per-tenant counters with atomics so the hit
// path stays lock-free beyond the cache's read lock.
type tenantStats struct {
	hits, canonHits, shapeHits, misses, invalidations atomic.Int64
}

func (t *tenantStats) snapshot() Stats {
	return Stats{
		Hits:          t.hits.Load(),
		CanonHits:     t.canonHits.Load(),
		ShapeHits:     t.shapeHits.Load(),
		Misses:        t.misses.Load(),
		Invalidations: t.invalidations.Load(),
	}
}

// template is one cached statement shape: the representative SQL text
// replayed by ParseBound with new literal values. Templates live in
// their own LRU-by-bytes tier (c.shapeBytes vs c.shapeBudget) and are
// dropped with their table's plans by InvalidateTable.
type template struct {
	sql   string
	nlits int
	table string
	bytes int64
	stamp atomic.Int64
}

// IdentityFn resolves a table name to its live (ID, Version) identity;
// ok is false for a dropped/unknown table. Callers install one bound
// function value at construction time so the hit path allocates no
// closures.
type IdentityFn func(table string) (id, ver uint64, ok bool)

// Cache is the statement/plan cache. All methods are safe for
// concurrent use.
type Cache struct {
	budget      int64
	shapeBudget int64
	ident       IdentityFn

	mu          sync.RWMutex
	aliases     map[string]*Plan
	plans       map[string]*Plan
	shapes      map[string]*template
	byTable     map[string]map[*Plan]struct{}
	bytes       int64
	shapeBytes  int64
	evicts      int64
	shapeEvicts int64
	invals      int64 // eager InvalidateTable drops (tenant-less)

	clock atomic.Int64

	statsMu sync.Mutex
	stats   map[string]*tenantStats

	// scratch recycles fingerprint buffers across lookups.
	scratch sync.Pool
}

type scratchBuf struct {
	shape []byte
	lits  []float64
}

// New returns a plan cache charging plans against budgetBytes (<= 0
// selects DefaultBudget). ident supplies live table identities for the
// lookup-time staleness check.
func New(budgetBytes int64, ident IdentityFn) *Cache {
	if budgetBytes <= 0 {
		budgetBytes = DefaultBudget
	}
	shapeBudget := budgetBytes / shapeBudgetDivisor
	if shapeBudget < shapeBudgetMin {
		shapeBudget = shapeBudgetMin
	}
	return &Cache{
		budget:      budgetBytes,
		shapeBudget: shapeBudget,
		ident:       ident,
		aliases:     make(map[string]*Plan),
		plans:       make(map[string]*Plan),
		shapes:      make(map[string]*template),
		byTable:     make(map[string]map[*Plan]struct{}),
		stats:       make(map[string]*tenantStats),
		scratch: sync.Pool{New: func() any {
			return &scratchBuf{shape: make([]byte, 0, 256), lits: make([]float64, 0, 8)}
		}},
	}
}

// tenant returns the counter block for a tenant, creating it on first
// use (the only allocation a tenant's first query pays).
func (c *Cache) tenant(name string) *tenantStats {
	c.statsMu.Lock()
	ts, ok := c.stats[name]
	if !ok {
		ts = &tenantStats{}
		c.stats[name] = ts
	}
	c.statsMu.Unlock()
	return ts
}

// Lookup serves the alias tier: the exact SQL spelling seen before, for
// a table still at the plan's version. Beyond a tenant's first-ever
// call (which allocates its counter block) a hit performs no heap
// allocation, given an allocation-free IdentityFn. A stale plan is
// dropped (counted as an invalidation; Admit will count the ensuing
// miss); nil means the caller must parse.
func (c *Cache) Lookup(tenant, sql string) *Plan {
	if faultinject.Fire(faultinject.PointPlanCache) != nil {
		// An injected lookup failure degrades to a full parse: the cache
		// is an optimisation, never a dependency.
		return nil
	}
	c.mu.RLock()
	pl := c.aliases[sql]
	c.mu.RUnlock()
	if pl == nil {
		return nil // Admit or BindShape counts the outcome
	}
	ts := c.tenant(tenant)
	if id, ver, ok := c.ident(pl.Table); !ok || id != pl.TableID || ver != pl.TableVer {
		c.Invalidate(pl)
		ts.invalidations.Add(1)
		return nil
	}
	pl.stamp.Store(c.clock.Add(1))
	ts.hits.Add(1)
	return pl
}

// Contains reports whether sql is cached under its exact spelling for a
// table still at the plan's version. Unlike Lookup it counts nothing
// and leaves the LRU clock alone — the serving layer's pre-admission
// syntax check (DB.CheckSQL) uses it so per-tenant counters and
// eviction order reflect only real executions. A stale entry just
// reports false; the execution path's Lookup handles invalidation.
func (c *Cache) Contains(sql string) bool {
	c.mu.RLock()
	pl := c.aliases[sql]
	c.mu.RUnlock()
	if pl == nil {
		return false
	}
	id, ver, ok := c.ident(pl.Table)
	return ok && id == pl.TableID && ver == pl.TableVer
}

// BindShape serves the shape tier after an alias miss: if the
// statement's literal-collapsed fingerprint matches a cached template,
// the template is replayed with the new literal values, yielding the
// exact Statement a full parse of sql would build. The boolean reports
// a shape hit; the caller still admits the bound statement as a plan
// (registering sql as an alias for next time).
func (c *Cache) BindShape(tenant, sql string) (*sqlparse.Statement, bool) {
	buf := c.scratch.Get().(*scratchBuf)
	shape, lits, ok := sqlparse.Fingerprint(buf.shape[:0], buf.lits[:0], sql)
	buf.shape, buf.lits = shape, lits
	if !ok {
		c.scratch.Put(buf)
		return nil, false
	}
	c.mu.RLock()
	tmpl := c.shapes[string(shape)]
	c.mu.RUnlock()
	if tmpl == nil || tmpl.nlits != len(lits) {
		c.scratch.Put(buf)
		return nil, false
	}
	st, err := sqlparse.ParseBound(tmpl.sql, lits)
	c.scratch.Put(buf)
	if err != nil {
		// The template parsed when admitted; a binding failure means the
		// shape aliased something unexpected. Fall back to a full parse.
		return nil, false
	}
	tmpl.stamp.Store(c.clock.Add(1))
	c.tenant(tenant).shapeHits.Add(1)
	return st, true
}

// planKey builds the canonical-tier key: rendered form + table identity.
func planKey(canonSQL string, id, ver uint64) string {
	k := make([]byte, 0, len(canonSQL)+17)
	k = append(k, canonSQL...)
	k = append(k, 0)
	k = binary.BigEndian.AppendUint64(k, id)
	k = binary.BigEndian.AppendUint64(k, ver)
	return string(k)
}

// Admit caches the front-end work for a just-parsed statement and
// registers sql as an alias for it. id/ver are the live identity of the
// statement's target table. The returned plan is never nil; equivalent
// spellings converge on the canonical tier's single plan. shapeHit
// marks admissions that came through BindShape (already counted there)
// so the tenant miss counters stay truthful.
func (c *Cache) Admit(tenant, sql string, st *sqlparse.Statement, id, ver uint64, shapeHit bool) *Plan {
	prep := recycler.Prepare(id, ver, st.Query.Where)
	canonSQL := canonicalSQL(st, &prep)
	key := planKey(canonSQL, id, ver)
	ts := c.tenant(tenant)

	c.mu.Lock()
	defer c.mu.Unlock()
	if pl, ok := c.plans[key]; ok {
		// Same canonical form and identity: just learn the new spelling.
		c.addAliasLocked(pl, sql)
		pl.stamp.Store(c.clock.Add(1))
		if !shapeHit {
			ts.canonHits.Add(1)
		}
		c.evictOverBudgetLocked()
		return pl
	}
	if !shapeHit {
		ts.misses.Add(1)
	}
	pl := &Plan{
		SQL:       canonSQL,
		Table:     st.Query.Table,
		TableID:   id,
		TableVer:  ver,
		Statement: st,
		Prep:      prep,
		key:       key,
		bytes:     int64(len(canonSQL)+len(key)) + planOverhead,
	}
	pl.stamp.Store(c.clock.Add(1))
	c.plans[key] = pl
	c.bytes += pl.bytes
	bucket := c.byTable[pl.Table]
	if bucket == nil {
		bucket = make(map[*Plan]struct{})
		c.byTable[pl.Table] = bucket
	}
	bucket[pl] = struct{}{}
	c.addAliasLocked(pl, sql)
	c.admitShapeLocked(pl.Table, sql)

	// A newer version supersedes every older plan of the same table:
	// those can never be looked up successfully again.
	for o := range bucket {
		if o.TableID == pl.TableID && o.TableVer < pl.TableVer {
			c.dropLocked(o)
		}
	}
	c.evictOverBudgetLocked()
	return pl
}

// addAliasLocked maps a raw spelling to a plan (idempotent).
func (c *Cache) addAliasLocked(pl *Plan, sql string) {
	if cur, ok := c.aliases[sql]; ok {
		if cur == pl {
			return
		}
		// The spelling re-resolved (e.g. to a newer version's plan).
		c.removeAliasLocked(cur, sql)
	}
	c.aliases[sql] = pl
	pl.aliases = append(pl.aliases, sql)
	c.bytes += int64(len(sql))
}

func (c *Cache) removeAliasLocked(pl *Plan, sql string) {
	for i, a := range pl.aliases {
		if a == sql {
			pl.aliases = append(pl.aliases[:i], pl.aliases[i+1:]...)
			c.bytes -= int64(len(sql))
			return
		}
	}
}

// admitShapeLocked registers sql's literal-collapsed shape template in
// the shape tier, charging it against the shape budget (not the plan
// budget: templates would otherwise crowd plans out of theirs).
func (c *Cache) admitShapeLocked(table, sql string) {
	buf := c.scratch.Get().(*scratchBuf)
	shape, lits, ok := sqlparse.Fingerprint(buf.shape[:0], buf.lits[:0], sql)
	buf.shape, buf.lits = shape, lits
	if ok {
		if tmpl, dup := c.shapes[string(shape)]; dup {
			tmpl.stamp.Store(c.clock.Add(1))
		} else {
			tmpl := &template{
				sql:   sql,
				nlits: len(lits),
				table: table,
				bytes: int64(len(shape)+len(sql)) + shapeOverhead,
			}
			tmpl.stamp.Store(c.clock.Add(1))
			c.shapes[string(shape)] = tmpl
			c.shapeBytes += tmpl.bytes
			c.evictShapesOverBudgetLocked()
		}
	}
	c.scratch.Put(buf)
}

// Invalidate drops one plan (all aliases included); used when a lookup
// finds the plan's table gone or at a newer version.
func (c *Cache) Invalidate(pl *Plan) {
	if pl.dead.Load() {
		return
	}
	c.mu.Lock()
	c.dropLocked(pl)
	c.mu.Unlock()
}

// InvalidateTable eagerly drops every plan for a table — the load path
// calls it so a version bump frees plan memory immediately instead of
// waiting for each alias to miss. The table's shape templates go with
// the plans: after a drop their replayed statements could never admit,
// and after a reload the next miss re-registers them at the new
// version.
func (c *Cache) InvalidateTable(table string) {
	c.mu.Lock()
	for pl := range c.byTable[table] {
		c.dropLocked(pl)
		c.invals++
	}
	for key, tmpl := range c.shapes {
		if tmpl.table == table {
			delete(c.shapes, key)
			c.shapeBytes -= tmpl.bytes
		}
	}
	c.mu.Unlock()
}

func (c *Cache) dropLocked(pl *Plan) {
	if pl.dead.Swap(true) {
		return
	}
	delete(c.plans, pl.key)
	for _, a := range pl.aliases {
		if c.aliases[a] == pl {
			delete(c.aliases, a)
		}
		c.bytes -= int64(len(a))
	}
	pl.aliases = nil
	if bucket := c.byTable[pl.Table]; bucket != nil {
		delete(bucket, pl)
		if len(bucket) == 0 {
			delete(c.byTable, pl.Table)
		}
	}
	c.bytes -= pl.bytes
}

// evictOverBudgetLocked drops least-recently-stamped plans until the
// byte budget holds. One scan snapshots every plan's stamp (stamps
// mutate concurrently under the read lock, so the sort must not reread
// them) and a single stamp-ordered pass evicts the batch — an
// over-budget burst costs O(n log n) once, not O(n) per victim.
func (c *Cache) evictOverBudgetLocked() {
	if c.bytes <= c.budget || len(c.plans) == 0 {
		return
	}
	type victim struct {
		pl    *Plan
		stamp int64
	}
	victims := make([]victim, 0, len(c.plans))
	for _, pl := range c.plans {
		victims = append(victims, victim{pl, pl.stamp.Load()})
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].stamp < victims[j].stamp })
	for _, v := range victims {
		if c.bytes <= c.budget {
			break
		}
		c.dropLocked(v.pl)
		c.evicts++
	}
}

// evictShapesOverBudgetLocked is the shape tier's counterpart: drop
// least-recently-used templates until the shape budget holds.
func (c *Cache) evictShapesOverBudgetLocked() {
	if c.shapeBytes <= c.shapeBudget || len(c.shapes) == 0 {
		return
	}
	type victim struct {
		key   string
		tmpl  *template
		stamp int64
	}
	victims := make([]victim, 0, len(c.shapes))
	for key, tmpl := range c.shapes {
		victims = append(victims, victim{key, tmpl, tmpl.stamp.Load()})
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].stamp < victims[j].stamp })
	for _, v := range victims {
		if c.shapeBytes <= c.shapeBudget {
			break
		}
		delete(c.shapes, v.key)
		c.shapeBytes -= v.tmpl.bytes
		c.shapeEvicts++
	}
}

// PlanUsage reports the plan tier's resident bytes (aliases included) —
// the usage feed for a global memory governor.
func (c *Cache) PlanUsage() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.bytes
}

// ShapeUsage reports the shape-template tier's resident bytes.
func (c *Cache) ShapeUsage() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.shapeBytes
}

// ShedPlans drops least-recently-used plans until roughly `bytes` bytes
// are freed (or the tier is empty), returning the bytes actually freed.
// This is the governor's coordinated-pressure hook: unlike the private
// budget eviction it fires regardless of the tier's own budget, because
// the authority asking has a view the tier lacks — total process
// pressure. Dropped plans are recomputable (one parse each), never data.
func (c *Cache) ShedPlans(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.plans) == 0 {
		return 0
	}
	type victim struct {
		pl    *Plan
		stamp int64
	}
	victims := make([]victim, 0, len(c.plans))
	for _, pl := range c.plans {
		victims = append(victims, victim{pl, pl.stamp.Load()})
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].stamp < victims[j].stamp })
	before := c.bytes
	for _, v := range victims {
		if before-c.bytes >= bytes {
			break
		}
		c.dropLocked(v.pl)
		c.evicts++
	}
	return before - c.bytes
}

// ShedShapes is ShedPlans for the shape-template tier: drop
// least-recently-used templates until roughly `bytes` bytes are freed.
// Templates are the cheapest state in the process to rebuild (a
// fingerprint on the next miss), which is why the governor sheds this
// tier first.
func (c *Cache) ShedShapes(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.shapes) == 0 {
		return 0
	}
	type victim struct {
		key   string
		tmpl  *template
		stamp int64
	}
	victims := make([]victim, 0, len(c.shapes))
	for key, tmpl := range c.shapes {
		victims = append(victims, victim{key, tmpl, tmpl.stamp.Load()})
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].stamp < victims[j].stamp })
	before := c.shapeBytes
	for _, v := range victims {
		if before-c.shapeBytes >= bytes {
			break
		}
		delete(c.shapes, v.key)
		c.shapeBytes -= v.tmpl.bytes
		c.shapeEvicts++
	}
	return before - c.shapeBytes
}

// StatsFor returns one tenant's counters.
func (c *Cache) StatsFor(tenant string) Stats {
	c.statsMu.Lock()
	ts := c.stats[tenant]
	c.statsMu.Unlock()
	if ts == nil {
		return Stats{}
	}
	return ts.snapshot()
}

// Stats aggregates all tenants and reports cache residency.
func (c *Cache) Stats() Stats {
	var out Stats
	c.statsMu.Lock()
	for _, ts := range c.stats {
		s := ts.snapshot()
		out.Hits += s.Hits
		out.CanonHits += s.CanonHits
		out.ShapeHits += s.ShapeHits
		out.Misses += s.Misses
		out.Invalidations += s.Invalidations
	}
	c.statsMu.Unlock()
	c.mu.RLock()
	out.Entries = len(c.plans)
	out.Bytes = c.bytes
	out.Budget = c.budget
	out.Evictions = c.evicts
	out.Invalidations += c.invals
	out.ShapeEntries = len(c.shapes)
	out.ShapeBytes = c.shapeBytes
	out.ShapeBudget = c.shapeBudget
	out.ShapeEvictions = c.shapeEvicts
	c.mu.RUnlock()
	return out
}

// StatsByTenant snapshots every tenant's counters (the default tenant
// under "").
func (c *Cache) StatsByTenant() map[string]Stats {
	c.statsMu.Lock()
	out := make(map[string]Stats, len(c.stats))
	for name, ts := range c.stats {
		out[name] = ts.snapshot()
	}
	c.statsMu.Unlock()
	return out
}

// canonicalSQL renders the statement with its WHERE clause in canonical
// form, so commuted/nested spellings of one predicate produce one key.
func canonicalSQL(st *sqlparse.Statement, prep *recycler.Prepared) string {
	if canon := prep.Canon(); canon != nil {
		cp := *st
		cp.Query.Where = canon
		return cp.String()
	}
	if st.Query.Where != nil {
		// TRUE-equivalent predicate: canonical form has no WHERE clause.
		cp := *st
		cp.Query.Where = nil
		return cp.String()
	}
	return st.String()
}
