package plancache

import (
	"fmt"
	"sync/atomic"
	"testing"

	"sciborq/internal/sqlparse"
)

// fakeIdent is a settable table-identity source standing in for the
// catalog.
type fakeIdent struct {
	id  atomic.Uint64
	ver atomic.Uint64
	ok  atomic.Bool
}

func newFakeIdent(id, ver uint64) *fakeIdent {
	f := &fakeIdent{}
	f.id.Store(id)
	f.ver.Store(ver)
	f.ok.Store(true)
	return f
}

func (f *fakeIdent) fn(string) (uint64, uint64, bool) {
	return f.id.Load(), f.ver.Load(), f.ok.Load()
}

func admit(t *testing.T, c *Cache, tenant, sql string, id, ver uint64, shapeHit bool) *Plan {
	t.Helper()
	st, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return c.Admit(tenant, sql, st, id, ver, shapeHit)
}

func TestAliasHit(t *testing.T) {
	ident := newFakeIdent(7, 1)
	c := New(0, ident.fn)
	sql := "SELECT COUNT(*) FROM t WHERE x > 5"
	if c.Lookup("", sql) != nil {
		t.Fatal("lookup before admit must miss")
	}
	pl := admit(t, c, "", sql, 7, 1, false)
	got := c.Lookup("", sql)
	if got != pl {
		t.Fatalf("alias lookup returned %p, want %p", got, pl)
	}
	st := c.StatsFor("")
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestCanonicalConvergence(t *testing.T) {
	ident := newFakeIdent(7, 1)
	c := New(0, ident.fn)
	a := admit(t, c, "", "SELECT COUNT(*) FROM t WHERE a > 1 AND b < 2", 7, 1, false)
	b := admit(t, c, "", "select count(*) from t where b < 2 and a > 1", 7, 1, false)
	if a != b {
		t.Fatalf("commuted spellings got distinct plans: %q vs %q", a.SQL, b.SQL)
	}
	// Both spellings now alias the one plan.
	if c.Lookup("", "SELECT COUNT(*) FROM t WHERE a > 1 AND b < 2") != a {
		t.Fatal("original spelling lost")
	}
	if c.Lookup("", "select count(*) from t where b < 2 and a > 1") != a {
		t.Fatal("commuted spelling not aliased")
	}
	st := c.StatsFor("")
	if st.CanonHits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 canon hit / 1 miss", st)
	}
}

func TestShapeBinding(t *testing.T) {
	ident := newFakeIdent(7, 1)
	c := New(0, ident.fn)
	admit(t, c, "", "SELECT COUNT(*) FROM t WHERE x > 5", 7, 1, false)
	st, ok := c.BindShape("", "SELECT COUNT(*) FROM t WHERE x > 7")
	if !ok {
		t.Fatal("literal variant did not bind against the cached shape")
	}
	want := sqlparse.MustParse("SELECT COUNT(*) FROM t WHERE x > 7")
	if st.String() != want.String() {
		t.Fatalf("bound statement %q, want %q", st, want)
	}
	if _, ok := c.BindShape("", "SELECT SUM(y) FROM t WHERE x > 7"); ok {
		t.Fatal("different shape must not bind")
	}
	if s := c.StatsFor(""); s.ShapeHits != 1 {
		t.Fatalf("stats = %+v, want 1 shape hit", s)
	}
}

func TestVersionStaleness(t *testing.T) {
	ident := newFakeIdent(7, 1)
	c := New(0, ident.fn)
	sql := "SELECT COUNT(*) FROM t WHERE x > 5"
	admit(t, c, "", sql, 7, 1, false)
	ident.ver.Store(2) // a load bumped the version
	if c.Lookup("", sql) != nil {
		t.Fatal("stale plan served after version bump")
	}
	if s := c.StatsFor(""); s.Invalidations != 1 {
		t.Fatalf("stats = %+v, want 1 invalidation", s)
	}
	// Re-admitting at the new version works and evicts nothing else.
	pl := admit(t, c, "", sql, 7, 2, false)
	if c.Lookup("", sql) != pl {
		t.Fatal("re-admitted plan not served")
	}
}

func TestNewVersionSupersedesOld(t *testing.T) {
	ident := newFakeIdent(7, 2)
	c := New(0, ident.fn)
	admit(t, c, "", "SELECT COUNT(*) FROM t WHERE x > 5", 7, 1, false)
	admit(t, c, "", "SELECT COUNT(*) FROM t WHERE y > 5", 7, 2, false)
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("old-version plan not superseded: %+v", s)
	}
}

func TestInvalidateTable(t *testing.T) {
	ident := newFakeIdent(7, 1)
	c := New(0, ident.fn)
	admit(t, c, "", "SELECT COUNT(*) FROM t WHERE x > 5", 7, 1, false)
	admit(t, c, "", "SELECT COUNT(*) FROM u WHERE x > 5", 7, 1, false)
	c.InvalidateTable("t")
	if c.Lookup("", "SELECT COUNT(*) FROM t WHERE x > 5") != nil {
		t.Fatal("invalidated table's plan still served")
	}
	if c.Lookup("", "SELECT COUNT(*) FROM u WHERE x > 5") == nil {
		t.Fatal("unrelated table's plan dropped")
	}
}

func TestBudgetEviction(t *testing.T) {
	ident := newFakeIdent(7, 1)
	c := New(2*planOverhead+256, ident.fn) // room for ~2 plans
	for i := 0; i < 8; i++ {
		admit(t, c, "", fmt.Sprintf("SELECT COUNT(*) FROM t WHERE x > %d AND y < %d", i, i), 7, 1, false)
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatalf("no evictions under a tight budget: %+v", s)
	}
	if s.Bytes > c.budget {
		t.Fatalf("bytes %d exceed budget %d", s.Bytes, c.budget)
	}
}

func TestPerTenantStats(t *testing.T) {
	ident := newFakeIdent(7, 1)
	c := New(0, ident.fn)
	sql := "SELECT COUNT(*) FROM t WHERE x > 5"
	admit(t, c, "alice", sql, 7, 1, false)
	c.Lookup("alice", sql)
	c.Lookup("bob", sql) // bob hits alice's plan; counted for bob
	by := c.StatsByTenant()
	if by["alice"].Hits != 1 || by["alice"].Misses != 1 {
		t.Fatalf("alice stats = %+v", by["alice"])
	}
	if by["bob"].Hits != 1 {
		t.Fatalf("bob stats = %+v", by["bob"])
	}
	agg := c.Stats()
	if agg.Hits != 2 || agg.Misses != 1 {
		t.Fatalf("aggregate stats = %+v", agg)
	}
}

// TestShapeBudget pins the shape tier's own bound: a flood of distinct
// statement shapes evicts old templates instead of growing without
// limit, and never touches the plan tier's budget.
func TestShapeBudget(t *testing.T) {
	ident := newFakeIdent(7, 1)
	c := New(0, ident.fn)
	c.shapeBudget = 2 << 10 // tighten so a few dozen templates overflow
	for i := 0; i < 200; i++ {
		admit(t, c, "", fmt.Sprintf("SELECT COUNT(*) FROM t WHERE col%d > 5", i), 7, 1, false)
	}
	s := c.Stats()
	if s.ShapeBytes > c.shapeBudget {
		t.Fatalf("shape bytes %d exceed shape budget %d", s.ShapeBytes, c.shapeBudget)
	}
	if s.ShapeEvictions == 0 {
		t.Fatalf("no shape evictions under a tight shape budget: %+v", s)
	}
	if s.ShapeEntries == 0 {
		t.Fatalf("shape tier emptied instead of bounded: %+v", s)
	}
	if s.Evictions != 0 {
		t.Fatalf("shape churn evicted plans from an unconstrained plan budget: %+v", s)
	}
	// A recently admitted shape survives LRU and still binds.
	if _, ok := c.BindShape("", "SELECT COUNT(*) FROM t WHERE col199 > 9"); !ok {
		t.Fatal("most recent shape template was evicted before older ones")
	}
}

// TestShapeBytesDoNotWedgePlans is a regression test: shape-template
// bytes used to be charged against the plan budget but were never
// evictable, so enough distinct shapes permanently evicted every plan.
// Shapes now have their own bound and the plan tier must stay usable.
func TestShapeBytesDoNotWedgePlans(t *testing.T) {
	ident := newFakeIdent(7, 1)
	c := New(2*1024, ident.fn) // tiny plan budget, default shape budget
	var last string
	for i := 0; i < 100; i++ {
		last = fmt.Sprintf("SELECT COUNT(*) FROM t WHERE col%d > 5", i)
		admit(t, c, "", last, 7, 1, false)
	}
	if c.Lookup("", last) == nil {
		t.Fatal("plan tier wedged: most recently admitted plan not resident")
	}
	if s := c.Stats(); s.Bytes > c.budget {
		t.Fatalf("plan bytes %d exceed budget %d", s.Bytes, c.budget)
	}
}

// TestInvalidateTableDropsShapes: a table's shape templates die with
// its plans, so a dropped table stops binding immediately while other
// tables' templates stay.
func TestInvalidateTableDropsShapes(t *testing.T) {
	ident := newFakeIdent(7, 1)
	c := New(0, ident.fn)
	admit(t, c, "", "SELECT COUNT(*) FROM t WHERE x > 5", 7, 1, false)
	admit(t, c, "", "SELECT COUNT(*) FROM u WHERE x > 5", 7, 1, false)
	c.InvalidateTable("t")
	if _, ok := c.BindShape("", "SELECT COUNT(*) FROM t WHERE x > 9"); ok {
		t.Fatal("invalidated table's shape template still binds")
	}
	if _, ok := c.BindShape("", "SELECT COUNT(*) FROM u WHERE x > 9"); !ok {
		t.Fatal("unrelated table's shape template dropped")
	}
}

// TestContainsDoesNotCount pins the CheckSQL probe's contract: it
// reports residency without skewing stats or the LRU clock (the server
// probes before every execution, so counting would double every hit
// onto the default tenant).
func TestContainsDoesNotCount(t *testing.T) {
	ident := newFakeIdent(7, 1)
	c := New(0, ident.fn)
	sql := "SELECT COUNT(*) FROM t WHERE x > 5"
	if c.Contains(sql) {
		t.Fatal("contains before admit")
	}
	admit(t, c, "", sql, 7, 1, false)
	clock := c.clock.Load()
	for i := 0; i < 10; i++ {
		if !c.Contains(sql) {
			t.Fatal("admitted statement not contained")
		}
	}
	if got := c.StatsFor(""); got.Hits != 0 || got.Misses != 1 {
		t.Fatalf("Contains counted: %+v", got)
	}
	if c.clock.Load() != clock {
		t.Fatal("Contains advanced the LRU clock")
	}
	ident.ver.Store(2)
	if c.Contains(sql) {
		t.Fatal("stale entry reported as contained")
	}
	if got := c.StatsFor(""); got.Invalidations != 0 {
		t.Fatalf("Contains counted an invalidation: %+v", got)
	}
}

// TestLookupZeroAlloc is the package-local half of the allocation gate
// (the end-to-end gate lives in bench_parse_test.go at the repo root):
// a warm alias-tier lookup must not allocate.
func TestLookupZeroAlloc(t *testing.T) {
	ident := newFakeIdent(7, 1)
	c := New(0, ident.fn)
	sql := "SELECT COUNT(*) FROM t WHERE x > 5 AND y < 3"
	admit(t, c, "", sql, 7, 1, false)
	c.Lookup("", sql) // warm the tenant counter block
	allocs := testing.AllocsPerRun(1000, func() {
		if c.Lookup("", sql) == nil {
			t.Fatal("unexpected miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Lookup allocates %v objects/op, want 0", allocs)
	}
}
