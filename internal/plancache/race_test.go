package plancache

import (
	"fmt"
	"sync"
	"testing"

	"sciborq/internal/sqlparse"
)

// TestConcurrentHitEvictVersionBump hammers one cache from three sides
// at once (run under -race in CI): readers looking up and shape-binding
// hot statements, writers admitting fresh plans under a budget tight
// enough to force eviction, and a version bumper invalidating the hot
// table. Every returned plan must carry a self-consistent identity.
func TestConcurrentHitEvictVersionBump(t *testing.T) {
	ident := newFakeIdent(7, 1)
	c := New(16*1024, ident.fn)

	hot := "SELECT COUNT(*) FROM t WHERE x > 5"
	st := sqlparse.MustParse(hot)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Version bumper: periodically advances the table version and
	// eagerly invalidates, like DB.Load does.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint64(2); v < 40; v++ {
			ident.ver.Store(v)
			c.InvalidateTable("t")
		}
		close(stop)
	}()

	// Writers: keep (re-)admitting the hot statement at the current
	// version plus a churn of distinct statements that overflow the
	// budget.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, ver, _ := ident.fn("t")
				c.Admit("", hot, st, 7, ver, false)
				churn := fmt.Sprintf("SELECT COUNT(*) FROM t WHERE x > %d AND y < %d", i, w)
				cst, err := sqlparse.Parse(churn)
				if err != nil {
					t.Error(err)
					return
				}
				c.Admit("churn", churn, cst, 7, ver, false)
				i++
			}
		}(w)
	}

	// Readers: alias lookups and shape bindings against the churn.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Contains(hot)
				if pl := c.Lookup("reader", hot); pl != nil {
					if pl.Table != "t" || pl.TableID != 7 {
						t.Errorf("reader %d: plan identity corrupted: %+v", r, pl)
						return
					}
					// The version check raced against the bumper at most
					// one step; the plan must at least be self-consistent.
					if pl.Statement == nil || pl.Prep.Key() == "" {
						t.Errorf("reader %d: incomplete plan served", r)
						return
					}
				}
				if bst, ok := c.BindShape("reader", fmt.Sprintf("SELECT COUNT(*) FROM t WHERE x > %d AND y < %d", i+1000, r)); ok {
					if bst.Query.Table != "t" {
						t.Errorf("reader %d: shape binding wrong table %q", r, bst.Query.Table)
						return
					}
				}
				i++
			}
		}(r)
	}

	wg.Wait()

	s := c.Stats()
	if s.Bytes > 16*1024 {
		t.Fatalf("budget overrun after churn: %+v", s)
	}
	if s.Bytes < 0 {
		t.Fatalf("negative byte accounting: %+v", s)
	}
	if s.ShapeBytes > s.ShapeBudget {
		t.Fatalf("shape budget overrun after churn: %+v", s)
	}
	if s.ShapeBytes < 0 {
		t.Fatalf("negative shape byte accounting: %+v", s)
	}
}
