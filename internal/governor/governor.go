// Package governor is the single memory authority for the serving
// stack. The recycler, the plan cache, and the plan cache's shape tier
// each keep their own byte-budgeted LRU — correct in isolation, but
// three independent silos cannot answer "the process is near its memory
// ceiling, who gives ground first?". The governor can: cache tiers
// register with it in shed-priority order, and when the sum of their
// usage crosses the global budget it sheds tiers in that order until
// the budget holds again.
//
// The shed order encodes replacement cost, cheapest first: shape
// templates (a re-fingerprint on the next miss), then plans (one parse
// each), then recycler selections (a scan each — the most expensive
// state to rebuild, shed last). This is the coordinated counterpart of
// each cache's private LRU.
//
// Pressure also degrades quality before availability. The bounded
// executor consults DegradeFactor at WITHIN TIME layer-pick time: under
// Elevated or Critical pressure the per-row cost inflates (×2, ×4), so
// time-bounded queries choose smaller impression layers — the paper's
// own quality knob — and the serving layer answers smaller instead of
// answering 503. Only at Critical, after shedding has already run, may
// the server start refusing work.
//
// Levels are recomputed by CheckNow — call it where memory actually
// moves (loads, periodically from the serving loop) — and cached in an
// atomic, so per-query gates (Level, DegradeFactor) never take a lock.
// InjectPressure forces a level for chaos and acceptance tests; the
// forced level also sheds, exactly as the real signal would.
package governor

import (
	"sync"
	"sync/atomic"
)

// Level is the governor's pressure reading.
type Level int32

const (
	// Nominal: usage comfortably inside the budget; no intervention.
	Nominal Level = iota
	// Elevated: usage crossed the high-water fraction; tiers have been
	// shed and bounded queries degrade to smaller layers (×2).
	Elevated
	// Critical: usage exceeds the budget even after shedding every
	// registered tier (or a forced signal says so). Bounded queries
	// degrade hard (×4) and the server may refuse work.
	Critical
)

// String names the level for stats and logs.
func (l Level) String() string {
	switch l {
	case Nominal:
		return "nominal"
	case Elevated:
		return "elevated"
	case Critical:
		return "critical"
	}
	return "unknown"
}

// highWaterNum/Den and lowWaterNum/Den bound the shed hysteresis:
// shedding starts when usage exceeds budget×high and stops once usage
// is back under budget×low, so the governor does not oscillate on the
// boundary.
const (
	highWaterNum, highWaterDen = 9, 10 // 0.9 × budget
	lowWaterNum, lowWaterDen   = 7, 10 // 0.7 × budget
)

// tier is one registered cache tier, in shed-priority order.
type tier struct {
	name  string
	usage func() int64
	shed  func(bytes int64) int64
}

// ShedEvent records one tier shed: which tier gave ground and how many
// bytes it freed. The ordered log is how tests assert the priority
// order (shape → plan → recycler).
type ShedEvent struct {
	Tier  string `json:"tier"`
	Freed int64  `json:"freed_bytes"`
}

// Stats is a point-in-time governor snapshot for /stats.
type Stats struct {
	Budget     int64  `json:"budget_bytes"`
	Usage      int64  `json:"usage_bytes"`
	Level      string `json:"level"`
	Forced     bool   `json:"forced"`
	Sheds      int64  `json:"sheds"`
	ShedBytes  int64  `json:"shed_bytes"`
	Checks     int64  `json:"checks"`
	TierUsages map[string]int64
}

// Governor coordinates the registered tiers against one byte budget.
type Governor struct {
	budget int64

	mu      sync.Mutex
	tiers   []tier
	shedLog []ShedEvent

	level  atomic.Int32 // cached Level for lock-free per-query gates
	forced atomic.Int32 // forced Level + 1; 0 = none

	checks    atomic.Int64
	sheds     atomic.Int64
	shedBytes atomic.Int64
}

// New builds a governor over budgetBytes of total cache memory.
// Budgets <= 0 are rejected by the caller (Open gates on the option
// being positive), so New does not validate.
func New(budgetBytes int64) *Governor {
	return &Governor{budget: budgetBytes}
}

// Register adds a cache tier under the governor's authority.
// Registration order IS shed priority: the first-registered tier gives
// ground first. usage reports the tier's resident bytes; shed frees up
// to the requested bytes (least-valuable state first) and returns how
// many it actually freed. Both are called under the governor's lock and
// must not call back into it.
func (g *Governor) Register(name string, usage func() int64, shed func(bytes int64) int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tiers = append(g.tiers, tier{name: name, usage: usage, shed: shed})
}

// Budget returns the configured byte budget.
func (g *Governor) Budget() int64 { return g.budget }

// Usage sums the registered tiers' resident bytes.
func (g *Governor) Usage() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.usageLocked()
}

func (g *Governor) usageLocked() int64 {
	var sum int64
	for _, t := range g.tiers {
		sum += t.usage()
	}
	return sum
}

// Level returns the cached pressure level — one atomic load, safe on
// every per-query path. It reflects the last CheckNow.
func (g *Governor) Level() Level { return Level(g.level.Load()) }

// DegradeFactor is the bounded executor's quality knob: the multiplier
// applied to the cost model's per-row rate at WITHIN TIME layer-pick
// time. Nominal 1 (no effect), Elevated 2, Critical 4 — under pressure
// a time promise buys fewer rows, so the pick degrades to a smaller
// impression layer instead of blowing the memory ceiling or the bound.
func (g *Governor) DegradeFactor() float64 {
	switch g.Level() {
	case Elevated:
		return 2
	case Critical:
		return 4
	}
	return 1
}

// InjectPressure forces the pressure level — the chaos suite's and the
// acceptance tests' memory-pressure signal. The forced level sheds
// immediately, exactly as a real usage reading at that level would,
// and pins Level until ReleasePressure.
func (g *Governor) InjectPressure(l Level) {
	g.forced.Store(int32(l) + 1)
	g.CheckNow()
}

// ReleasePressure removes a forced level; the next CheckNow recomputes
// from real usage.
func (g *Governor) ReleasePressure() {
	g.forced.Store(0)
	g.CheckNow()
}

// CheckNow recomputes pressure from tier usage (or the forced level),
// sheds tiers in registration order while over the low-water mark, and
// refreshes the cached Level. Call it where memory actually changes —
// after loads, periodically from the serving loop — and from tests
// after filling caches. Returns the resulting level.
func (g *Governor) CheckNow() Level {
	g.checks.Add(1)
	g.mu.Lock()
	defer g.mu.Unlock()

	usage := g.usageLocked()
	high := g.budget / highWaterDen * highWaterNum
	low := g.budget / lowWaterDen * lowWaterNum

	forced := Level(g.forced.Load() - 1)
	overHigh := usage > high
	if g.forced.Load() != 0 && forced >= Elevated {
		overHigh = true
	}

	if overHigh {
		// Shed in priority order until usage is back under low water —
		// under a forced Critical signal, shed every tier empty (the
		// signal says real memory is gone regardless of what the caches
		// report).
		target := low
		if forced == Critical {
			target = 0
		}
		for i := range g.tiers {
			if usage <= target {
				break
			}
			t := &g.tiers[i]
			freed := t.shed(usage - target)
			if freed > 0 {
				usage -= freed
				g.sheds.Add(1)
				g.shedBytes.Add(freed)
				g.shedLog = append(g.shedLog, ShedEvent{Tier: t.name, Freed: freed})
			}
		}
	}

	level := Nominal
	switch {
	case usage > g.budget:
		level = Critical
	case usage > low:
		level = Elevated
	}
	if g.forced.Load() != 0 {
		level = forced
	}
	g.level.Store(int32(level))
	return level
}

// ShedLog returns a copy of the ordered shed history — the record the
// acceptance test checks for shape → plan → recycler priority.
func (g *Governor) ShedLog() []ShedEvent {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]ShedEvent, len(g.shedLog))
	copy(out, g.shedLog)
	return out
}

// Stats snapshots the governor for /stats.
func (g *Governor) Stats() Stats {
	g.mu.Lock()
	usages := make(map[string]int64, len(g.tiers))
	var sum int64
	for _, t := range g.tiers {
		u := t.usage()
		usages[t.name] = u
		sum += u
	}
	g.mu.Unlock()
	return Stats{
		Budget:     g.budget,
		Usage:      sum,
		Level:      g.Level().String(),
		Forced:     g.forced.Load() != 0,
		Sheds:      g.sheds.Load(),
		ShedBytes:  g.shedBytes.Load(),
		Checks:     g.checks.Load(),
		TierUsages: usages,
	}
}
