package governor

import (
	"sync"
	"testing"
)

// fakeTier is a shim cache tier: a byte counter that sheds on request.
type fakeTier struct {
	mu    sync.Mutex
	bytes int64
}

func (f *fakeTier) usage() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bytes
}

func (f *fakeTier) shed(bytes int64) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	freed := bytes
	if freed > f.bytes {
		freed = f.bytes
	}
	f.bytes -= freed
	return freed
}

func newGov(budget int64, tiers ...*fakeTier) *Governor {
	g := New(budget)
	names := []string{"shapes", "plans", "recycler"}
	for i, t := range tiers {
		g.Register(names[i], t.usage, t.shed)
	}
	return g
}

func TestNominalNoShed(t *testing.T) {
	a, b := &fakeTier{bytes: 100}, &fakeTier{bytes: 100}
	g := newGov(1000, a, b)
	if lv := g.CheckNow(); lv != Nominal {
		t.Fatalf("level = %v, want Nominal", lv)
	}
	if got := g.Usage(); got != 200 {
		t.Fatalf("usage = %d", got)
	}
	if len(g.ShedLog()) != 0 {
		t.Fatalf("shed log not empty: %v", g.ShedLog())
	}
	if got := g.DegradeFactor(); got != 1 {
		t.Fatalf("degrade = %v, want 1", got)
	}
}

// TestShedPriorityOrder: over the high-water mark, tiers give ground in
// registration order — the first tier is drained before the second is
// touched, and the third is untouched if the first two free enough.
func TestShedPriorityOrder(t *testing.T) {
	shapes := &fakeTier{bytes: 300}
	plans := &fakeTier{bytes: 500}
	rec := &fakeTier{bytes: 400} // total 1200 over a 1000 budget
	g := newGov(1000, shapes, plans, rec)

	if lv := g.CheckNow(); lv != Nominal {
		t.Fatalf("post-shed level = %v, want Nominal", lv)
	}
	log := g.ShedLog()
	if len(log) == 0 {
		t.Fatal("no shed events recorded")
	}
	// Priority order: shapes drained first, then plans; recycler only if
	// still needed. Target is low water (700): shed 500 → shapes empty
	// (300) + plans 200.
	if log[0].Tier != "shapes" || log[0].Freed != 300 {
		t.Fatalf("first shed = %+v, want shapes/300", log[0])
	}
	if log[1].Tier != "plans" || log[1].Freed != 200 {
		t.Fatalf("second shed = %+v, want plans/200", log[1])
	}
	if len(log) > 2 {
		t.Fatalf("recycler shed despite earlier tiers sufficing: %v", log)
	}
	if rec.usage() != 400 {
		t.Fatalf("recycler touched: %d bytes left", rec.usage())
	}
	if got := g.Usage(); got != 700 {
		t.Fatalf("post-shed usage = %d, want 700 (low water)", got)
	}
}

func TestLevelThresholds(t *testing.T) {
	// Tier that refuses to shed, so levels reflect raw usage.
	stuck := func(int64) int64 { return 0 }
	tr := &fakeTier{bytes: 0}
	g := New(1000)
	g.Register("stuck", tr.usage, stuck)

	for _, tc := range []struct {
		bytes int64
		want  Level
	}{
		{600, Nominal},
		{750, Elevated}, // above low water (700), below high (900)
		{950, Elevated}, // shedding failed but still under budget
		{1100, Critical},
	} {
		tr.mu.Lock()
		tr.bytes = tc.bytes
		tr.mu.Unlock()
		if lv := g.CheckNow(); lv != tc.want {
			t.Fatalf("usage %d: level = %v, want %v", tc.bytes, lv, tc.want)
		}
		if lv := g.Level(); lv != tc.want {
			t.Fatalf("usage %d: cached level = %v, want %v", tc.bytes, lv, tc.want)
		}
	}
}

// TestInjectPressure: a forced Critical sheds every tier (the signal
// overrides what the caches report) and pins the level until released.
func TestInjectPressure(t *testing.T) {
	shapes, plans, rec := &fakeTier{bytes: 10}, &fakeTier{bytes: 20}, &fakeTier{bytes: 30}
	g := newGov(1_000_000, shapes, plans, rec)
	if lv := g.CheckNow(); lv != Nominal {
		t.Fatalf("level = %v, want Nominal", lv)
	}

	g.InjectPressure(Critical)
	if lv := g.Level(); lv != Critical {
		t.Fatalf("forced level = %v, want Critical", lv)
	}
	if got := g.DegradeFactor(); got != 4 {
		t.Fatalf("critical degrade = %v, want 4", got)
	}
	if u := g.Usage(); u != 0 {
		t.Fatalf("forced critical left %d bytes resident", u)
	}
	log := g.ShedLog()
	if len(log) != 3 || log[0].Tier != "shapes" || log[1].Tier != "plans" || log[2].Tier != "recycler" {
		t.Fatalf("shed order under forced pressure = %v", log)
	}

	g.ReleasePressure()
	if lv := g.Level(); lv != Nominal {
		t.Fatalf("released level = %v, want Nominal", lv)
	}
}

func TestInjectElevatedDegrades(t *testing.T) {
	g := newGov(1000, &fakeTier{})
	g.InjectPressure(Elevated)
	if got := g.DegradeFactor(); got != 2 {
		t.Fatalf("elevated degrade = %v, want 2", got)
	}
	g.ReleasePressure()
}

func TestStats(t *testing.T) {
	shapes := &fakeTier{bytes: 400}
	g := newGov(1000, shapes)
	g.CheckNow()
	s := g.Stats()
	if s.Budget != 1000 || s.Usage != 400 || s.Level != "nominal" || s.Forced {
		t.Fatalf("stats = %+v", s)
	}
	if s.TierUsages["shapes"] != 400 {
		t.Fatalf("tier usages = %v", s.TierUsages)
	}
	g.InjectPressure(Critical)
	s = g.Stats()
	if !s.Forced || s.Level != "critical" || s.Sheds == 0 || s.ShedBytes != 400 {
		t.Fatalf("forced stats = %+v", s)
	}
}
