package skyserver

import (
	"math"
	"testing"

	"sciborq/internal/engine"
	"sciborq/internal/expr"
	"sciborq/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Objects: -1, RaMin: 0, RaMax: 1, DecMin: 0, DecMax: 1}); err == nil {
		t.Fatal("negative objects accepted")
	}
	if _, err := New(Config{Objects: 1, RaMin: 1, RaMax: 1, DecMin: 0, DecMax: 1}); err == nil {
		t.Fatal("empty sky window accepted")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig(20000)
	db, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.PhotoObjAll.Len() != 20000 {
		t.Fatalf("fact rows = %d", db.PhotoObjAll.Len())
	}
	if db.Field.Len() != cfg.Fields {
		t.Fatalf("field rows = %d", db.Field.Len())
	}
	if db.PhotoTag.Len() != 20000 {
		t.Fatalf("tag rows = %d", db.PhotoTag.Len())
	}
	names := db.Catalog.Names()
	if len(names) != 3 {
		t.Fatalf("catalog tables = %v", names)
	}
}

func TestPositionsInWindow(t *testing.T) {
	cfg := DefaultConfig(10000)
	db, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := db.PhotoObjAll.Float64("ra")
	dec, _ := db.PhotoObjAll.Float64("dec")
	for i := range ra {
		if ra[i] < cfg.RaMin || ra[i] >= cfg.RaMax {
			t.Fatalf("ra[%d] = %v outside window", i, ra[i])
		}
		if dec[i] < cfg.DecMin || dec[i] >= cfg.DecMax {
			t.Fatalf("dec[%d] = %v outside window", i, dec[i])
		}
	}
}

func TestClusteringVisible(t *testing.T) {
	cfg := DefaultConfig(40000)
	db, _ := Generate(cfg)
	ra, _ := db.PhotoObjAll.Float64("ra")
	// Density near cluster 1 (165±6) must exceed uniform background.
	near, far := 0, 0
	for _, v := range ra {
		if math.Abs(v-165) < 6 {
			near++
		}
		if math.Abs(v-135) < 6 { // empty background region
			far++
		}
	}
	if near < far*2 {
		t.Fatalf("clustering invisible: near=%d far=%d", near, far)
	}
}

func TestTypeSkew(t *testing.T) {
	db, _ := Generate(DefaultConfig(30000))
	res, err := engine.RunOn(db.PhotoObjAll, engine.Query{
		Table:   "PhotoObjAll",
		GroupBy: "type",
		Aggs:    []engine.AggSpec{{Func: engine.Count, Alias: "n"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]float64{}
	keyCol := res.Table.MustCol("type")
	ns, _ := res.Float64Col("n")
	for i := 0; i < res.Len(); i++ {
		counts[keyCol.ValueString(int32(i))] = ns[i]
	}
	if counts["GALAXY"] < counts["STAR"] || counts["STAR"] < counts["QSO"] {
		t.Fatalf("type skew wrong: %v", counts)
	}
	frac := counts["GALAXY"] / 30000
	if frac < 0.5 || frac > 0.6 {
		t.Fatalf("galaxy fraction = %v", frac)
	}
}

func TestObjIDsUniqueAndDense(t *testing.T) {
	db, _ := Generate(DefaultConfig(5000))
	ids, _ := db.PhotoObjAll.Int64("objID")
	seen := make(map[int64]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate objID %d", id)
		}
		seen[id] = true
	}
	if !seen[0] || !seen[4999] {
		t.Fatal("objIDs not dense from 0")
	}
}

func TestFKIntegrity(t *testing.T) {
	db, _ := Generate(DefaultConfig(5000))
	joined, err := engine.HashJoin(db.PhotoObjAll, db.Field, "fieldID", "fieldID")
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() != 5000 {
		t.Fatalf("FK join lost rows: %d", joined.Len())
	}
	tagJoin, err := engine.HashJoin(db.PhotoObjAll, db.PhotoTag, "objID", "objID")
	if err != nil {
		t.Fatal(err)
	}
	if tagJoin.Len() != 5000 {
		t.Fatalf("tag join rows = %d", tagJoin.Len())
	}
}

func TestMagnitudesSane(t *testing.T) {
	db, _ := Generate(DefaultConfig(10000))
	r, _ := db.PhotoObjAll.Float64("r")
	var sum float64
	for _, v := range r {
		if v < 12 || v > 24 {
			t.Fatalf("r magnitude %v outside survey limits", v)
		}
		sum += v
	}
	if mean := sum / float64(len(r)); math.Abs(mean-18) > 0.5 {
		t.Fatalf("mean r = %v", mean)
	}
}

func TestGeneratorStreamsBatches(t *testing.T) {
	db, err := New(DefaultConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	gen := db.Generator(xrand.New(5))
	b1 := gen.NextBatch(100)
	b2 := gen.NextBatch(100)
	if err := db.PhotoObjAll.AppendBatch(b1); err != nil {
		t.Fatal(err)
	}
	if err := db.PhotoObjAll.AppendBatch(b2); err != nil {
		t.Fatal(err)
	}
	// objIDs continue across batches; mjd advances per batch.
	if b1[0][0].(int64) != 0 || b2[0][0].(int64) != 100 {
		t.Fatalf("objID continuity broken: %v, %v", b1[0][0], b2[0][0])
	}
	if b2[0][10].(int64) != b1[0][10].(int64)+1 {
		t.Fatalf("mjd did not advance: %v -> %v", b1[0][10], b2[0][10])
	}
}

func TestPaperQueryRuns(t *testing.T) {
	db, _ := Generate(DefaultConfig(20000))
	q := PaperQuery(165, 20, 3)
	res, err := engine.RunOn(db.PhotoObjAll, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("cone at cluster centre returned nothing")
	}
	// All results are galaxies within the cone.
	typeCol := res.Table.MustCol("type")
	ra, _ := res.Float64Col("ra")
	dec, _ := res.Float64Col("dec")
	for i := 0; i < res.Len(); i++ {
		if typeCol.ValueString(int32(i)) != "GALAXY" {
			t.Fatal("non-galaxy in Galaxy view result")
		}
		if expr.AngularSeparation(165, 20, ra[i], dec[i]) > 3 {
			t.Fatal("result outside cone")
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Generate(DefaultConfig(1000))
	b, _ := Generate(DefaultConfig(1000))
	raA, _ := a.PhotoObjAll.Float64("ra")
	raB, _ := b.PhotoObjAll.Float64("ra")
	for i := range raA {
		if raA[i] != raB[i] {
			t.Fatalf("generation not deterministic at row %d", i)
		}
	}
}
