// Package skyserver is the synthetic stand-in for the Sloan Digital Sky
// Survey warehouse of §2: a PhotoObjAll fact table with clustered sky
// positions and photometric magnitudes, dimension tables reachable by
// foreign-key joins, the Galaxy view, and the fGetNearbyObjEq cone
// search. The real 4 TB SkyServer is not redistributable; the generator
// reproduces the statistical properties SciBORQ's evaluation depends on
// (multi-modal positions, FK joins, type skew) at laptop scale.
package skyserver

import (
	"fmt"

	"sciborq/internal/column"
	"sciborq/internal/engine"
	"sciborq/internal/expr"
	"sciborq/internal/table"
	"sciborq/internal/xrand"
)

// Object types with SDSS-like skew: galaxies dominate, then stars.
var objectTypes = []struct {
	name string
	frac float64
}{
	{"GALAXY", 0.55},
	{"STAR", 0.35},
	{"QSO", 0.07},
	{"UNKNOWN", 0.03},
}

// Cluster is a galaxy cluster on the synthetic sky: objects concentrate
// around (Ra, Dec) with dispersion Sigma.
type Cluster struct {
	Ra, Dec float64
	Sigma   float64
	Weight  float64
}

// Config controls the synthetic sky.
type Config struct {
	// Objects is the PhotoObjAll row count.
	Objects int
	// Fields is the number of Field dimension rows; each object joins
	// to one field.
	Fields int
	// Clusters places galaxy clusters; objects fall into a cluster with
	// probability ClusterFrac, else uniform background.
	Clusters    []Cluster
	ClusterFrac float64
	// RaMin..DecMax bound the surveyed sky window.
	RaMin, RaMax   float64
	DecMin, DecMax float64
	Seed           uint64
}

// DefaultConfig returns the window used throughout the reproduction:
// ra ∈ [120, 240), dec ∈ [0, 60) — the ranges of the paper's Figures 4
// and 7 — with two galaxy clusters.
func DefaultConfig(objects int) Config {
	return Config{
		Objects: objects,
		Fields:  256,
		Clusters: []Cluster{
			{Ra: 165, Dec: 20, Sigma: 6, Weight: 0.6},
			{Ra: 205, Dec: 40, Sigma: 4, Weight: 0.4},
		},
		ClusterFrac: 0.35,
		RaMin:       120, RaMax: 240,
		DecMin: 0, DecMax: 60,
		Seed: 2011, // CIDR 2011
	}
}

// Database bundles the generated catalogue.
type Database struct {
	Catalog *table.Catalog
	// PhotoObjAll is the fact table.
	PhotoObjAll *table.Table
	// Field and PhotoTag are dimension tables.
	Field    *table.Table
	PhotoTag *table.Table
	cfg      Config
}

// PhotoObjSchema returns the fact-table schema.
func PhotoObjSchema() table.Schema {
	return table.Schema{
		{Name: "objID", Type: column.Int64},
		{Name: "fieldID", Type: column.Int64},
		{Name: "ra", Type: column.Float64},
		{Name: "dec", Type: column.Float64},
		{Name: "u", Type: column.Float64},
		{Name: "g", Type: column.Float64},
		{Name: "r", Type: column.Float64},
		{Name: "i", Type: column.Float64},
		{Name: "z", Type: column.Float64},
		{Name: "type", Type: column.String},
		{Name: "mjd", Type: column.Int64}, // observation date
		{Name: "clean", Type: column.Bool},
	}
}

// FieldSchema returns the Field dimension schema.
func FieldSchema() table.Schema {
	return table.Schema{
		{Name: "fieldID", Type: column.Int64},
		{Name: "run", Type: column.Int64},
		{Name: "camcol", Type: column.Int64},
		{Name: "quality", Type: column.Float64},
		{Name: "seeing", Type: column.Float64},
	}
}

// PhotoTagSchema returns the PhotoTag dimension schema (a thin
// "tag" projection keyed by objID, as in SDSS).
func PhotoTagSchema() table.Schema {
	return table.Schema{
		{Name: "objID", Type: column.Int64},
		{Name: "petroRad", Type: column.Float64},
		{Name: "extinction", Type: column.Float64},
	}
}

// New creates the empty table set for cfg.
func New(cfg Config) (*Database, error) {
	if cfg.Objects < 0 {
		return nil, fmt.Errorf("skyserver: negative object count %d", cfg.Objects)
	}
	if cfg.Fields <= 0 {
		cfg.Fields = 256
	}
	if !(cfg.RaMax > cfg.RaMin) || !(cfg.DecMax > cfg.DecMin) {
		return nil, fmt.Errorf("skyserver: empty sky window")
	}
	db := &Database{
		Catalog:     table.NewCatalog(),
		PhotoObjAll: table.MustNew("PhotoObjAll", PhotoObjSchema()),
		Field:       table.MustNew("Field", FieldSchema()),
		PhotoTag:    table.MustNew("PhotoTag", PhotoTagSchema()),
		cfg:         cfg,
	}
	for _, t := range []*table.Table{db.PhotoObjAll, db.Field, db.PhotoTag} {
		if err := db.Catalog.Add(t); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Generate creates the full catalogue in one shot.
func Generate(cfg Config) (*Database, error) {
	db, err := New(cfg)
	if err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)
	if err := db.generateFields(rng); err != nil {
		return nil, err
	}
	gen := db.Generator(rng.Split())
	rows := gen.NextBatch(cfg.Objects)
	if err := db.PhotoObjAll.AppendBatch(rows); err != nil {
		return nil, err
	}
	if err := db.appendTags(rows, rng.Split()); err != nil {
		return nil, err
	}
	return db, nil
}

// generateFields fills the Field dimension.
func (db *Database) generateFields(rng *xrand.RNG) error {
	rows := make([]table.Row, 0, db.cfg.Fields)
	for i := 0; i < db.cfg.Fields; i++ {
		rows = append(rows, table.Row{
			int64(i),
			int64(1000 + i/8),
			int64(1 + i%6),
			0.5 + rng.Float64()*0.5, // quality
			0.8 + rng.Float64()*1.2, // seeing, arcsec
		})
	}
	return db.Field.AppendBatch(rows)
}

// appendTags fills PhotoTag for the given fact rows.
func (db *Database) appendTags(objRows []table.Row, rng *xrand.RNG) error {
	rows := make([]table.Row, 0, len(objRows))
	for _, r := range objRows {
		rows = append(rows, table.Row{
			r[0],                     // objID
			0.5 + rng.ExpFloat64()*2, // Petrosian radius
			rng.Float64() * 0.3,      // extinction
		})
	}
	return db.PhotoTag.AppendBatch(rows)
}

// Generator streams fact rows; the loader uses it to simulate nightly
// ingests (§3.3).
type Generator struct {
	db   *Database
	rng  *xrand.RNG
	next int64
	mjd  int64
}

// Generator returns a row generator for the database.
func (db *Database) Generator(rng *xrand.RNG) *Generator {
	if rng == nil {
		rng = xrand.New(db.cfg.Seed + 1)
	}
	return &Generator{db: db, rng: rng, next: int64(db.PhotoObjAll.Len()), mjd: 55200}
}

// NextBatch produces n fact rows (one "nightly load"); each batch
// advances the observation date.
func (g *Generator) NextBatch(n int) []table.Row {
	rows := make([]table.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, g.nextRow())
	}
	g.mjd++ // one night per batch
	return rows
}

// nextRow generates one object.
func (g *Generator) nextRow() table.Row {
	cfg := g.db.cfg
	var ra, dec float64
	if len(cfg.Clusters) > 0 && g.rng.Float64() < cfg.ClusterFrac {
		c := g.pickCluster()
		for {
			ra = c.Ra + g.rng.NormFloat64()*c.Sigma
			dec = c.Dec + g.rng.NormFloat64()*c.Sigma
			if ra >= cfg.RaMin && ra < cfg.RaMax && dec >= cfg.DecMin && dec < cfg.DecMax {
				break
			}
		}
	} else {
		ra = cfg.RaMin + g.rng.Float64()*(cfg.RaMax-cfg.RaMin)
		dec = cfg.DecMin + g.rng.Float64()*(cfg.DecMax-cfg.DecMin)
	}
	typ := g.pickType()
	// Magnitudes: r around 18 ± 2 truncated to the survey limits,
	// with colour offsets per band.
	r := 18 + g.rng.NormFloat64()*2
	if r < 12 {
		r = 12
	}
	if r > 24 {
		r = 24
	}
	gMag := r + 0.6 + g.rng.NormFloat64()*0.3
	uMag := gMag + 1.2 + g.rng.NormFloat64()*0.5
	iMag := r - 0.3 + g.rng.NormFloat64()*0.2
	zMag := iMag - 0.2 + g.rng.NormFloat64()*0.2
	row := table.Row{
		g.next,
		int64(g.rng.Intn(cfg.Fields)),
		ra, dec,
		uMag, gMag, r, iMag, zMag,
		typ,
		g.mjd,
		g.rng.Float64() < 0.9,
	}
	g.next++
	return row
}

func (g *Generator) pickCluster() Cluster {
	var total float64
	for _, c := range g.db.cfg.Clusters {
		total += c.Weight
	}
	u := g.rng.Float64() * total
	for _, c := range g.db.cfg.Clusters {
		if u < c.Weight {
			return c
		}
		u -= c.Weight
	}
	return g.db.cfg.Clusters[len(g.db.cfg.Clusters)-1]
}

func (g *Generator) pickType() string {
	u := g.rng.Float64()
	for _, t := range objectTypes {
		if u < t.frac {
			return t.name
		}
		u -= t.frac
	}
	return objectTypes[len(objectTypes)-1].name
}

// GalaxyView returns the predicate implementing the paper's Galaxy view:
// PhotoObjAll restricted to galaxies with clean photometry.
func GalaxyView() expr.Predicate {
	return expr.StrEq{Col: "type", Value: "GALAXY"}
}

// FGetNearbyObjEq builds the paper's cone-search predicate over the
// fact table's positional columns.
func FGetNearbyObjEq(ra, dec, radius float64) expr.Cone {
	return expr.Cone{RaCol: "ra", DecCol: "dec", Ra0: ra, Dec0: dec, Radius: radius}
}

// PaperQuery is the Figure-1 query: galaxies near (ra, dec).
func PaperQuery(ra, dec, radius float64) engine.Query {
	return engine.Query{
		Table:  "PhotoObjAll",
		Where:  expr.And{L: GalaxyView(), R: FGetNearbyObjEq(ra, dec, radius)},
		Select: []string{"objID", "ra", "dec", "r", "type"},
	}
}
