// Package table implements relational tables over the SciBORQ column
// store: a schema, append-only columnar storage, typed row append, and
// consistent length bookkeeping across daily ingests.
//
// Tables are append-only by design — the paper's setting is a science
// warehouse filled by nightly loads; impressions are maintained during the
// append path (package loader), never by revisiting base data.
package table

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"sciborq/internal/column"
	"sciborq/internal/vec"
)

// tableIDs issues process-unique table identities. Two tables that
// merely share a name (a dropped-and-rebuilt table, a re-materialised
// sample) get distinct IDs, so identity-keyed caches can never confuse
// them even when their names and lengths coincide.
var tableIDs atomic.Uint64

func nextTableID() uint64 { return tableIDs.Add(1) }

// ColumnDef describes one column of a schema.
type ColumnDef struct {
	Name string
	Type column.Type
}

// Schema is an ordered set of column definitions.
type Schema []ColumnDef

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in schema order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Table is a named, append-only columnar table.
type Table struct {
	mu     sync.RWMutex
	name   string
	schema Schema
	cols   []column.Column
	byName map[string]int
	// id is the process-unique table identity; snapshots share their
	// source's id.
	id uint64
	// ver counts mutations (appends and rollback truncations). A
	// snapshot freezes the version it was taken at, so (id, ver)
	// uniquely names one immutable row-prefix state — the identity
	// discipline version-keyed caches rely on.
	ver uint64
	// snap marks point-in-time views produced by Snapshot: reads share
	// the source's value storage, appends are rejected.
	snap bool
	// pager, when non-nil, is the durable segment store backing this
	// table's column storage. Scans call TouchRange so the store can
	// account granule residency; snapshots inherit the pager (mapped
	// storage is never unmapped while the table lives, so snapshot
	// views stay valid).
	pager Pager
	// durable marks a table whose storage is owned by a segment store.
	// Direct appends are rejected: every row must flow through the
	// store's WAL (loader → store.LoadBatch) or durability would lie.
	durable bool
}

// Pager is implemented by the durable segment store. Touch accounts a
// scan over rows [lo, hi) for granule-residency tracking (LRU heat and
// byte-budgeted eviction of cold granules).
type Pager interface {
	Touch(lo, hi int)
}

// New creates an empty table with the given schema.
func New(name string, schema Schema) (*Table, error) {
	if len(schema) == 0 {
		return nil, fmt.Errorf("table %q: empty schema", name)
	}
	t := &Table{
		name:   name,
		schema: schema,
		cols:   make([]column.Column, len(schema)),
		byName: make(map[string]int, len(schema)),
		id:     nextTableID(),
	}
	for i, def := range schema {
		if def.Name == "" {
			return nil, fmt.Errorf("table %q: column %d has empty name", name, i)
		}
		if _, dup := t.byName[def.Name]; dup {
			return nil, fmt.Errorf("table %q: duplicate column %q", name, def.Name)
		}
		t.cols[i] = column.New(def.Name, def.Type)
		t.byName[def.Name] = i
	}
	return t, nil
}

// MustNew is New but panics on error; for static schemas.
func MustNew(name string, schema Schema) *Table {
	t, err := New(name, schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// ID returns the table's process-unique identity. Snapshots share the
// identity of their source table; independently created tables never
// share one, even when their names collide.
func (t *Table) ID() uint64 { return t.id }

// Version returns the table's mutation counter. It bumps on every
// append (and on batch-rollback truncation), so (ID, Version) uniquely
// names one immutable prefix state of the table — a same-length rebuild
// or truncate can never alias an older state. For a snapshot it is the
// version frozen at snapshot time.
func (t *Table) Version() uint64 {
	if t.snap {
		return t.ver
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.ver
}

// Schema returns the table schema (shared; callers must not mutate).
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.cols[0].Len()
}

// Col returns the named column, or an error if absent. The returned
// column is live storage: callers must treat it as read-only.
func (t *Table) Col(name string) (column.Column, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	i, ok := t.byName[name]
	if !ok {
		return nil, fmt.Errorf("table %q: no column %q (have %v)", t.name, name, t.schema.Names())
	}
	return t.cols[i], nil
}

// MustCol is Col but panics on error.
func (t *Table) MustCol(name string) column.Column {
	c, err := t.Col(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Float64 returns the raw data slice of a DOUBLE column.
func (t *Table) Float64(name string) ([]float64, error) {
	c, err := t.Col(name)
	if err != nil {
		return nil, err
	}
	fc, ok := c.(*column.Float64Col)
	if !ok {
		return nil, fmt.Errorf("table %q: column %q is %s, want DOUBLE", t.name, name, c.Type())
	}
	return fc.Data, nil
}

// Int64 returns the raw data slice of a BIGINT column.
func (t *Table) Int64(name string) ([]int64, error) {
	c, err := t.Col(name)
	if err != nil {
		return nil, err
	}
	ic, ok := c.(*column.Int64Col)
	if !ok {
		return nil, fmt.Errorf("table %q: column %q is %s, want BIGINT", t.name, name, c.Type())
	}
	return ic.Data, nil
}

// Snapshot returns an immutable point-in-time view of the table: the
// row count and every column header are captured under the table lock,
// so scans over the snapshot are safe against concurrent appends to the
// source table (appenders only write rows the snapshot cannot see).
// Value storage is shared, not copied — a snapshot costs a few slice
// headers plus the string dictionaries. Snapshots reject appends, and
// snapshotting a snapshot returns it unchanged.
func (t *Table) Snapshot() *Table {
	if t.snap {
		return t
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.cols[0].Len()
	cols := make([]column.Column, len(t.cols))
	for i, c := range t.cols {
		cols[i] = c.SnapshotView(n)
	}
	return &Table{name: t.name, schema: t.schema, cols: cols, byName: t.byName,
		id: t.id, ver: t.ver, snap: true, pager: t.pager}
}

// SetPager installs the durable segment store as this table's pager and
// marks the table durable: direct appends are rejected from here on —
// ingest must flow through the store so every acknowledged row is in
// the WAL. Call before the table starts serving queries; snapshots
// taken afterwards carry the pager.
func (t *Table) SetPager(p Pager) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pager = p
	t.durable = p != nil
}

// TouchRange reports a scan over rows [lo, hi) to the table's pager, if
// any. Nil-safe and cheap for in-memory tables (one predictable branch);
// for durable tables it feeds granule-residency accounting.
func (t *Table) TouchRange(lo, hi int) {
	if t.pager != nil {
		t.pager.Touch(lo, hi)
	}
}

// ExtendWith runs fn over the live column headers under the table's
// write lock and bumps the version on success — the hook the durable
// segment store uses to fold a WAL-acknowledged batch into mapped
// storage (swapping slice headers over the same mapping) atomically
// with respect to Snapshot. fn must leave all columns at equal lengths.
func (t *Table) ExtendWith(fn func(cols []column.Column) error) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.snap {
		return fmt.Errorf("table %q: cannot extend a snapshot", t.name)
	}
	if err := fn(t.cols); err != nil {
		return err
	}
	t.ver++
	return nil
}

// AdoptColumns replaces the table's column storage wholesale — the
// recovery path: the segment store rebuilds mapped columns from disk
// and installs them over the (empty or stale) in-memory ones. The new
// columns must match the schema order and types. Bumps the version.
func (t *Table) AdoptColumns(cols []column.Column) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.snap {
		return fmt.Errorf("table %q: cannot adopt columns into a snapshot", t.name)
	}
	if len(cols) != len(t.schema) {
		return fmt.Errorf("table %q: adopt %d columns, want %d", t.name, len(cols), len(t.schema))
	}
	n := cols[0].Len()
	for i, c := range cols {
		if c.Type() != t.schema[i].Type {
			return fmt.Errorf("table %q: adopt column %d is %s, want %s",
				t.name, i, c.Type(), t.schema[i].Type)
		}
		if c.Len() != n {
			return fmt.Errorf("table %q: adopt column %d length %d, want %d",
				t.name, i, c.Len(), n)
		}
	}
	t.cols = cols
	t.ver++
	return nil
}

// Row is one tuple in schema order. Values must match the column types:
// float64, int64, string, or bool.
type Row []any

// AppendRow appends one tuple. It validates arity and types.
func (t *Table) AppendRow(r Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.appendRowLocked(r)
}

func (t *Table) appendRowLocked(r Row) error {
	if t.snap {
		return fmt.Errorf("table %q: cannot append to a snapshot", t.name)
	}
	if t.durable {
		return fmt.Errorf("table %q: durable table, appends must go through the segment store", t.name)
	}
	if len(r) != len(t.cols) {
		return fmt.Errorf("table %q: row arity %d, want %d", t.name, len(r), len(t.cols))
	}
	// Validate the whole row before touching any column so a bad row
	// never leaves columns with unequal lengths.
	for i, v := range r {
		ok := false
		switch t.cols[i].(type) {
		case *column.Float64Col:
			_, ok = v.(float64)
		case *column.Int64Col:
			_, ok = v.(int64)
		case *column.StringCol:
			_, ok = v.(string)
		case *column.BoolCol:
			_, ok = v.(bool)
		}
		if !ok {
			return fmt.Errorf("table %q: column %q wants %s, got %T",
				t.name, t.schema[i].Name, t.schema[i].Type, v)
		}
	}
	for i, v := range r {
		switch c := t.cols[i].(type) {
		case *column.Float64Col:
			c.Append(v.(float64))
		case *column.Int64Col:
			c.Append(v.(int64))
		case *column.StringCol:
			c.Append(v.(string))
		case *column.BoolCol:
			c.Append(v.(bool))
		}
	}
	t.ver++
	return nil
}

// AppendBatch appends a batch of rows atomically: if any row fails
// validation, nothing is appended.
func (t *Table) AppendBatch(rows []Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	before := t.cols[0].Len()
	for k, r := range rows {
		if err := t.appendRowLocked(r); err != nil {
			t.truncateLocked(before)
			return fmt.Errorf("batch row %d: %w", k, err)
		}
	}
	return nil
}

// AppendColumns appends whole column chunks. All chunks must have equal
// length and match the schema order and types.
func (t *Table) AppendColumns(chunks []column.Column) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.snap {
		return fmt.Errorf("table %q: cannot append to a snapshot", t.name)
	}
	if t.durable {
		return fmt.Errorf("table %q: durable table, appends must go through the segment store", t.name)
	}
	if len(chunks) != len(t.cols) {
		return fmt.Errorf("table %q: %d chunks, want %d", t.name, len(chunks), len(t.cols))
	}
	n := chunks[0].Len()
	for i, ch := range chunks {
		if ch.Len() != n {
			return fmt.Errorf("table %q: chunk %d length %d, want %d", t.name, i, ch.Len(), n)
		}
	}
	before := t.cols[0].Len()
	for i, ch := range chunks {
		if err := t.cols[i].AppendFrom(ch, nil); err != nil {
			t.truncateLocked(before)
			return err
		}
	}
	t.ver++
	return nil
}

// truncateLocked drops rows beyond n; used only to roll back failed
// batches. It still bumps the version: content is unchanged but any
// in-between state must not alias, and a conservative bump is harmless.
func (t *Table) truncateLocked(n int) {
	t.ver++
	for i, c := range t.cols {
		if c.Len() <= n {
			continue
		}
		keep := vec.Sel(nil)
		if n > 0 {
			keep = vec.NewSelAll(n)
		} else {
			keep = vec.Sel{}
		}
		t.cols[i] = c.Slice(keep)
	}
}

// Project returns a new table containing the named columns restricted to
// sel, fully materialised.
func (t *Table) Project(name string, colNames []string, sel vec.Sel) (*Table, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	schema := make(Schema, 0, len(colNames))
	cols := make([]column.Column, 0, len(colNames))
	for _, cn := range colNames {
		i, ok := t.byName[cn]
		if !ok {
			return nil, fmt.Errorf("table %q: no column %q", t.name, cn)
		}
		schema = append(schema, t.schema[i])
		cols = append(cols, t.cols[i].Slice(sel))
	}
	out := &Table{name: name, schema: schema, cols: cols,
		byName: make(map[string]int, len(schema)), id: nextTableID()}
	for i, def := range schema {
		out.byName[def.Name] = i
	}
	return out, nil
}

// RowStrings renders row i for display, in schema order.
func (t *Table) RowStrings(i int32) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, len(t.cols))
	for k, c := range t.cols {
		out[k] = c.ValueString(i)
	}
	return out
}

// Catalog is a named collection of tables (the "database").
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Add registers a table; the name must be unused.
func (c *Catalog) Add(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[t.Name()]; dup {
		return fmt.Errorf("catalog: table %q already exists", t.Name())
	}
	c.tables[t.Name()] = t
	return nil
}

// Get returns the named table.
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no table %q (have %v)", name, c.namesLocked())
	}
	return t, nil
}

// Names returns the registered table names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.namesLocked()
}

func (c *Catalog) namesLocked() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Drop removes the named table.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; !ok {
		return fmt.Errorf("catalog: no table %q", name)
	}
	delete(c.tables, name)
	return nil
}
